package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestReadTextNeverPanics feeds randomized junk (and near-valid mutations)
// to the text parser: it must return an error or a valid graph, never
// panic or loop.
func TestReadTextNeverPanics(t *testing.T) {
	words := []string{"directed", "undirected", "nodes", "a", "b", "1", "-1",
		"1e308", "NaN", "#", "\t", "0.5", "99999999999", "x y z w"}
	check := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on seed %d: %v", seed, r)
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		for i := 0; i < rng.Intn(30); i++ {
			for j := 0; j < rng.Intn(5); j++ {
				sb.WriteString(words[rng.Intn(len(words))])
				sb.WriteByte(' ')
			}
			sb.WriteByte('\n')
		}
		g, err := ReadText(strings.NewReader(sb.String()))
		if err == nil {
			if verr := g.Validate(); verr != nil {
				t.Logf("seed %d: parser accepted invalid graph: %v", seed, verr)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestReadBinaryNeverPanics mutates valid binary payloads byte by byte:
// every corruption must surface as an error, not a panic or a structurally
// invalid graph.
func TestReadBinaryNeverPanics(t *testing.T) {
	b := NewBuilder(true)
	b.EnsureNodes(8)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		b.MustAddEdge(int32(rng.Intn(8)), int32(rng.Intn(8)), rng.Float64())
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, b.Finalize()); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for trial := 0; trial < 400; trial++ {
		mut := append([]byte(nil), valid...)
		pos := rng.Intn(len(mut))
		mut[pos] ^= byte(1 + rng.Intn(255))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutation at byte %d: %v", pos, r)
				}
			}()
			g, err := ReadBinary(bytes.NewReader(mut))
			if err == nil {
				if verr := g.Validate(); verr != nil {
					t.Fatalf("corrupt graph accepted (byte %d): %v", pos, verr)
				}
			}
		}()
	}
}
