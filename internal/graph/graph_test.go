package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func buildToy(t *testing.T, directed bool) *Graph {
	t.Helper()
	b := NewBuilder(directed)
	b.EnsureNodes(4)
	b.MustAddEdge(0, 1, 1.5)
	b.MustAddEdge(1, 2, 2.5)
	b.MustAddEdge(2, 3, 0.5)
	b.MustAddEdge(0, 3, 4.0)
	return b.Finalize()
}

func TestBuilderBasics(t *testing.T) {
	g := buildToy(t, false)
	if g.N() != 4 {
		t.Fatalf("N = %d, want 4", g.N())
	}
	if g.M() != 4 {
		t.Fatalf("M = %d, want 4", g.M())
	}
	if g.Directed() {
		t.Error("undirected graph reports directed")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUndirectedSymmetry(t *testing.T) {
	g := buildToy(t, false)
	if d := g.OutDegree(0); d != 2 {
		t.Errorf("deg(0) = %d, want 2", d)
	}
	if d := g.InDegree(0); d != 2 {
		t.Errorf("indeg(0) = %d, want 2", d)
	}
	ts, ws := g.Neighbors(0)
	rts, rws := g.RNeighbors(0)
	for i := range ts {
		if ts[i] != rts[i] || ws[i] != rws[i] {
			t.Error("undirected transpose should alias forward adjacency")
		}
	}
}

func TestDirectedTranspose(t *testing.T) {
	g := buildToy(t, true)
	if g.OutDegree(0) != 2 || g.InDegree(0) != 0 {
		t.Errorf("deg(0): out=%d in=%d, want 2/0", g.OutDegree(0), g.InDegree(0))
	}
	if g.OutDegree(3) != 0 || g.InDegree(3) != 2 {
		t.Errorf("deg(3): out=%d in=%d, want 0/2", g.OutDegree(3), g.InDegree(3))
	}
	// Every forward arc must appear reversed in the transpose.
	for u := int32(0); int(u) < g.N(); u++ {
		ts, ws := g.Neighbors(u)
		for i, v := range ts {
			found := false
			rts, rws := g.RNeighbors(v)
			for j, r := range rts {
				if r == u && rws[j] == ws[i] {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("arc %d->%d (w=%g) missing from transpose", u, v, ws[i])
			}
		}
	}
}

func TestAdjacencySorted(t *testing.T) {
	b := NewBuilder(false)
	b.EnsureNodes(5)
	b.MustAddEdge(0, 4, 1)
	b.MustAddEdge(0, 2, 1)
	b.MustAddEdge(0, 3, 1)
	b.MustAddEdge(0, 1, 1)
	g := b.Finalize()
	ts, _ := g.Neighbors(0)
	for i := 1; i < len(ts); i++ {
		if ts[i] < ts[i-1] {
			t.Fatalf("adjacency not sorted: %v", ts)
		}
	}
}

func TestLabels(t *testing.T) {
	b := NewBuilder(false)
	a := b.AddLabeledNode("alpha")
	c := b.AddLabeledNode("beta")
	if again := b.AddLabeledNode("alpha"); again != a {
		t.Errorf("duplicate label returned new node %d", again)
	}
	b.MustAddEdge(a, c, 1)
	g := b.Finalize()
	if !g.HasLabels() {
		t.Fatal("labels lost")
	}
	if g.Label(a) != "alpha" || g.Label(c) != "beta" {
		t.Errorf("labels: %q, %q", g.Label(a), g.Label(c))
	}
	if id, ok := g.NodeByLabel("beta"); !ok || id != c {
		t.Errorf("NodeByLabel(beta) = %d, %v", id, ok)
	}
	if _, ok := g.NodeByLabel("gamma"); ok {
		t.Error("unknown label resolved")
	}
}

func TestUnlabeledLabelIsID(t *testing.T) {
	g := buildToy(t, false)
	if g.HasLabels() {
		t.Fatal("unexpected labels")
	}
	if g.Label(2) != "2" {
		t.Errorf("Label(2) = %q", g.Label(2))
	}
}

func TestAddEdgeErrors(t *testing.T) {
	b := NewBuilder(false)
	b.EnsureNodes(2)
	if err := b.AddEdge(0, 5, 1); err == nil {
		t.Error("out-of-range target accepted")
	}
	if err := b.AddEdge(0, 1, -1); err == nil {
		t.Error("negative weight accepted")
	}
	if err := b.AddEdge(0, 1, math.NaN()); err == nil {
		t.Error("NaN weight accepted")
	}
	if err := b.AddEdge(0, 1, math.Inf(1)); err == nil {
		t.Error("Inf weight accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAddEdge did not panic")
		}
	}()
	b.MustAddEdge(0, 9, 1)
}

func TestDedupeKeepsMinWeight(t *testing.T) {
	b := NewBuilder(false)
	b.SetDedupe(true)
	b.EnsureNodes(2)
	b.MustAddEdge(0, 1, 3)
	b.MustAddEdge(1, 0, 1) // same undirected pair, lighter
	b.MustAddEdge(0, 1, 2)
	g := b.Finalize()
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	_, ws := g.Neighbors(0)
	if ws[0] != 1 {
		t.Errorf("dedupe kept weight %g, want 1", ws[0])
	}
}

func TestDedupeDirectedKeepsBothDirections(t *testing.T) {
	b := NewBuilder(true)
	b.SetDedupe(true)
	b.EnsureNodes(2)
	b.MustAddEdge(0, 1, 3)
	b.MustAddEdge(1, 0, 1)
	g := b.Finalize()
	if g.M() != 2 {
		t.Fatalf("directed dedupe merged opposite arcs: M = %d", g.M())
	}
}

func TestEdgesIteration(t *testing.T) {
	g := buildToy(t, false)
	var count int
	var total float64
	g.Edges(func(e Edge) bool {
		count++
		total += e.Weight
		if e.From > e.To {
			t.Errorf("undirected edge reported with From > To: %+v", e)
		}
		return true
	})
	if count != 4 {
		t.Errorf("iterated %d edges, want 4", count)
	}
	if total != g.TotalWeight() {
		t.Errorf("TotalWeight %g != sum %g", g.TotalWeight(), total)
	}
	// Early stop.
	count = 0
	g.Edges(func(Edge) bool { count++; return false })
	if count != 1 {
		t.Errorf("early stop iterated %d", count)
	}
}

func TestMaxOutDegreeNode(t *testing.T) {
	b := NewBuilder(false)
	b.EnsureNodes(4)
	b.MustAddEdge(1, 0, 1)
	b.MustAddEdge(1, 2, 1)
	b.MustAddEdge(1, 3, 1)
	g := b.Finalize()
	if v, d := g.MaxOutDegreeNode(); v != 1 || d != 3 {
		t.Errorf("MaxOutDegreeNode = %d/%d, want 1/3", v, d)
	}
	empty := NewBuilder(false).Finalize()
	if v, d := empty.MaxOutDegreeNode(); v != 0 || d != 0 {
		t.Errorf("empty MaxOutDegreeNode = %d/%d", v, d)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(false).Finalize()
	if g.N() != 0 || g.M() != 0 {
		t.Errorf("empty graph N=%d M=%d", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("empty graph invalid: %v", err)
	}
}

func TestIsolatedNodes(t *testing.T) {
	b := NewBuilder(false)
	b.EnsureNodes(10)
	b.MustAddEdge(0, 1, 1)
	g := b.Finalize()
	if g.N() != 10 {
		t.Fatalf("N = %d", g.N())
	}
	if g.OutDegree(7) != 0 {
		t.Error("isolated node has edges")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRandomGraphInvariants is a property test: arbitrary random edge lists
// must produce graphs that validate, conserve arc counts, and have
// involutive transposes.
func TestRandomGraphInvariants(t *testing.T) {
	check := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		m := rng.Intn(100)
		b := NewBuilder(directed)
		b.EnsureNodes(n)
		for i := 0; i < m; i++ {
			b.MustAddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), rng.Float64())
		}
		g := b.Finalize()
		if err := g.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		if g.M() != int64(m) {
			t.Logf("M = %d, want %d", g.M(), m)
			return false
		}
		// Degree sums equal arc counts in both orientations.
		var outSum, inSum int
		for v := 0; v < n; v++ {
			outSum += g.OutDegree(int32(v))
			inSum += g.InDegree(int32(v))
		}
		if outSum != inSum {
			t.Logf("degree sums differ: %d vs %d", outSum, inSum)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(func(seed int64) bool { return check(seed, false) }, cfg); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(seed int64) bool { return check(seed, true) }, cfg); err != nil {
		t.Error(err)
	}
}

func TestBuilderCounts(t *testing.T) {
	b := NewBuilder(true)
	if b.N() != 0 || b.NumEdges() != 0 {
		t.Error("fresh builder not empty")
	}
	v := b.AddNode()
	w := b.AddNode()
	b.MustAddEdge(v, w, 1)
	if b.N() != 2 || b.NumEdges() != 1 {
		t.Errorf("builder counts N=%d E=%d", b.N(), b.NumEdges())
	}
}
