package graph

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func sameGraph(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.N() != b.N() || a.M() != b.M() || a.Directed() != b.Directed() {
		t.Fatalf("shape mismatch: %d/%d/%v vs %d/%d/%v",
			a.N(), a.M(), a.Directed(), b.N(), b.M(), b.Directed())
	}
	for v := int32(0); int(v) < a.N(); v++ {
		at, aw := a.Neighbors(v)
		bt, bw := b.Neighbors(v)
		if len(at) != len(bt) {
			t.Fatalf("node %d: adjacency size %d vs %d", v, len(at), len(bt))
		}
		for i := range at {
			if at[i] != bt[i] || aw[i] != bw[i] {
				t.Fatalf("node %d arc %d: (%d,%g) vs (%d,%g)", v, i, at[i], aw[i], bt[i], bw[i])
			}
		}
		if a.Label(v) != b.Label(v) {
			t.Fatalf("node %d label %q vs %q", v, a.Label(v), b.Label(v))
		}
	}
}

func TestTextRoundTripLabeled(t *testing.T) {
	b := NewBuilder(false)
	x := b.AddLabeledNode("x")
	y := b.AddLabeledNode("y")
	z := b.AddLabeledNode("z")
	b.MustAddEdge(x, y, 1.25)
	b.MustAddEdge(y, z, 2.5)
	g := b.Finalize()

	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g, got)
}

func TestTextRoundTripNumericDirected(t *testing.T) {
	b := NewBuilder(true)
	b.EnsureNodes(5)
	b.MustAddEdge(0, 4, 0.5)
	b.MustAddEdge(4, 0, 1.5)
	b.MustAddEdge(2, 3, 2)
	g := b.Finalize()

	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.HasPrefix(text, "directed\n") {
		t.Errorf("missing header: %q", text)
	}
	if !strings.Contains(text, "nodes 5") {
		t.Errorf("missing nodes header: %q", text)
	}
	got, err := ReadText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g, got)
}

func TestReadTextCommentsAndBlanks(t *testing.T) {
	in := `# a comment
undirected

# another
a b 1.5
b c 2
`
	g, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Errorf("N=%d M=%d", g.N(), g.M())
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := map[string]string{
		"bad weight":      "a b xyz\n",
		"missing field":   "a b\n",
		"negative weight": "a b -1\n",
		"bad node count":  "nodes -3\n",
		"bad numeric":     "nodes 5\na b 1\n",
	}
	for name, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, directed := range []bool{false, true} {
		b := NewBuilder(directed)
		b.EnsureNodes(40)
		for i := 0; i < 120; i++ {
			b.MustAddEdge(int32(rng.Intn(40)), int32(rng.Intn(40)), rng.Float64()*10)
		}
		g := b.Finalize()
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		sameGraph(t, g, got)
	}
}

func TestBinaryRoundTripLabels(t *testing.T) {
	b := NewBuilder(false)
	u := b.AddLabeledNode("node with spaces")
	v := b.AddLabeledNode("ünïcode")
	b.MustAddEdge(u, v, 3)
	g := b.Finalize()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g, got)
	if id, ok := got.NodeByLabel("ünïcode"); !ok || id != v {
		t.Error("label index lost in binary round trip")
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOTAGRAPH")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestBinaryTruncated(t *testing.T) {
	b := NewBuilder(false)
	b.EnsureNodes(3)
	b.MustAddEdge(0, 1, 1)
	g := b.Finalize()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{7, 20, len(full) - 3} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b := NewBuilder(true)
	b.EnsureNodes(6)
	b.MustAddEdge(0, 5, 1)
	b.MustAddEdge(5, 2, 2)
	g := b.Finalize()

	for _, name := range []string{"g.txt", "g.rkg"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sameGraph(t, g, got)
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.rkg")); err == nil {
		t.Error("missing file accepted")
	}
}
