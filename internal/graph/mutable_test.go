package graph

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// buildTestGraph returns a small fixed graph for mutation tests.
func buildTestGraph(t *testing.T, directed bool) *Graph {
	t.Helper()
	b := NewBuilder(directed)
	for i := 0; i < 6; i++ {
		b.AddNode()
	}
	b.MustAddEdge(0, 1, 1.0)
	b.MustAddEdge(1, 2, 2.0)
	b.MustAddEdge(2, 3, 1.5)
	b.MustAddEdge(3, 4, 0.5)
	b.MustAddEdge(4, 5, 2.5)
	b.MustAddEdge(0, 5, 3.0)
	return b.Finalize()
}

// sameCSR reports whether two graphs have identical CSR adjacency —
// node count, direction, and every node's (targets, weights) span.
func sameCSR(a, b *Graph) bool {
	if a.N() != b.N() || a.M() != b.M() || a.Directed() != b.Directed() {
		return false
	}
	for u := int32(0); int(u) < a.N(); u++ {
		at, aw := a.Neighbors(u)
		bt, bw := b.Neighbors(u)
		if len(at) != len(bt) {
			return false
		}
		for i := range at {
			if at[i] != bt[i] || aw[i] != bw[i] {
				return false
			}
		}
		art, arw := a.RNeighbors(u)
		brt, brw := b.RNeighbors(u)
		if len(art) != len(brt) {
			return false
		}
		for i := range art {
			if art[i] != brt[i] || arw[i] != brw[i] {
				return false
			}
		}
	}
	return true
}

func TestEdgeStoreRoundTrip(t *testing.T) {
	for _, directed := range []bool{false, true} {
		g := buildTestGraph(t, directed)
		s := NewEdgeStore(g)
		if s.N() != g.N() || int64(s.M()) != g.M() || s.Directed() != directed {
			t.Fatalf("store shape mismatch: n=%d m=%d directed=%v", s.N(), s.M(), s.Directed())
		}
		if !sameCSR(g, s.Build()) {
			t.Fatalf("directed=%v: Build() of an unmutated store differs from the seed graph", directed)
		}
	}
}

func TestEdgeStoreApplySemantics(t *testing.T) {
	g := buildTestGraph(t, false)
	s := NewEdgeStore(g)

	// Insert a fresh edge; reinsertion of an existing pair fails.
	if err := s.Apply(InsertEdge(1, 4, 1.25)); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := s.Apply(InsertEdge(4, 1, 9)); !errors.Is(err, ErrEdgeExists) {
		t.Fatalf("duplicate insert (reversed pair, undirected): got %v, want ErrEdgeExists", err)
	}

	// Weight change of an existing and of a missing edge.
	if err := s.Apply(SetWeight(0, 1, 7.5)); err != nil {
		t.Fatalf("set_weight: %v", err)
	}
	if err := s.Apply(SetWeight(0, 3, 1)); !errors.Is(err, ErrEdgeNotFound) {
		t.Fatalf("set_weight on absent edge: got %v, want ErrEdgeNotFound", err)
	}

	// Delete an existing and then the now-absent edge.
	if err := s.Apply(DeleteEdge(2, 3)); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if err := s.Apply(DeleteEdge(2, 3)); !errors.Is(err, ErrEdgeNotFound) {
		t.Fatalf("double delete: got %v, want ErrEdgeNotFound", err)
	}

	// Vertex addition grows the id space; new ids become insertable.
	if err := s.Apply(AddVertices(2)); err != nil {
		t.Fatalf("add_vertex: %v", err)
	}
	if s.N() != 8 {
		t.Fatalf("N after AddVertices(2) = %d, want 8", s.N())
	}
	if err := s.Apply(InsertEdge(6, 7, 0.25)); err != nil {
		t.Fatalf("insert on fresh vertices: %v", err)
	}

	// Structural validation.
	if err := s.Apply(InsertEdge(0, 99, 1)); !errors.Is(err, ErrBadMutation) {
		t.Fatalf("out-of-range endpoint: got %v, want ErrBadMutation", err)
	}
	if err := s.Apply(InsertEdge(2, 4, math.NaN())); !errors.Is(err, ErrBadMutation) {
		t.Fatalf("NaN weight: got %v, want ErrBadMutation", err)
	}
	if err := s.Apply(InsertEdge(2, 4, -1)); !errors.Is(err, ErrBadMutation) {
		t.Fatalf("negative weight: got %v, want ErrBadMutation", err)
	}
	if err := s.Apply(Mutation{Op: 99}); !errors.Is(err, ErrBadMutation) {
		t.Fatalf("unknown op: got %v, want ErrBadMutation", err)
	}

	// The mutated store builds the same graph a from-scratch builder does.
	b := NewBuilder(false)
	b.EnsureNodes(8)
	b.MustAddEdge(0, 1, 7.5)
	b.MustAddEdge(1, 2, 2.0)
	b.MustAddEdge(3, 4, 0.5)
	b.MustAddEdge(4, 5, 2.5)
	b.MustAddEdge(0, 5, 3.0)
	b.MustAddEdge(1, 4, 1.25)
	b.MustAddEdge(6, 7, 0.25)
	if !sameCSR(s.Build(), b.Finalize()) {
		t.Fatal("mutated store's Build() differs from the from-scratch builder")
	}
}

func TestEdgeStoreAmbiguousParallelEdges(t *testing.T) {
	// Seed a graph with a recorded parallel edge; pair mutations must
	// refuse it, and other pairs must stay mutable.
	b := NewBuilder(false)
	b.EnsureNodes(3)
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(1, 0, 2) // parallel copy of {0,1}
	b.MustAddEdge(1, 2, 1)
	s := NewEdgeStore(b.Finalize())

	if err := s.Apply(DeleteEdge(0, 1)); !errors.Is(err, ErrAmbiguousEdge) {
		t.Fatalf("delete of parallel pair: got %v, want ErrAmbiguousEdge", err)
	}
	if err := s.Apply(SetWeight(0, 1, 5)); !errors.Is(err, ErrAmbiguousEdge) {
		t.Fatalf("set_weight of parallel pair: got %v, want ErrAmbiguousEdge", err)
	}
	if err := s.Apply(InsertEdge(0, 1, 5)); !errors.Is(err, ErrEdgeExists) {
		t.Fatalf("insert over parallel pair: got %v, want ErrEdgeExists", err)
	}
	if err := s.Apply(SetWeight(1, 2, 5)); err != nil {
		t.Fatalf("unrelated pair must stay mutable: %v", err)
	}
}

func TestEdgeStoreCloneIsolation(t *testing.T) {
	g := buildTestGraph(t, false)
	s := NewEdgeStore(g)
	c := s.Clone()
	if err := c.Apply(DeleteEdge(0, 1)); err != nil {
		t.Fatalf("clone delete: %v", err)
	}
	if err := c.Apply(SetWeight(1, 2, 9)); err != nil {
		t.Fatalf("clone set_weight: %v", err)
	}
	// The original still builds the seed graph.
	if !sameCSR(s.Build(), g) {
		t.Fatal("mutating a clone changed the original store")
	}
}

func TestWeightOnly(t *testing.T) {
	if !WeightOnly([]Mutation{SetWeight(0, 1, 2), SetWeight(1, 2, 3)}) {
		t.Fatal("all-set_weight batch reported as not weight-only")
	}
	if WeightOnly([]Mutation{SetWeight(0, 1, 2), DeleteEdge(1, 2)}) {
		t.Fatal("batch with a delete reported as weight-only")
	}
	if !WeightOnly(nil) {
		t.Fatal("empty batch should be vacuously weight-only")
	}
}

func TestPatchWeightMatchesRebuild(t *testing.T) {
	for _, directed := range []bool{false, true} {
		g := buildTestGraph(t, directed)
		s := NewEdgeStore(g)
		patches := []Mutation{
			SetWeight(0, 1, 4.25),
			SetWeight(3, 4, 0.125),
			SetWeight(0, 1, 0.75), // re-patch the same pair
		}
		for _, m := range patches {
			if err := s.Apply(m); err != nil {
				t.Fatalf("directed=%v apply: %v", directed, err)
			}
			g.PatchWeight(m.U, m.V, m.Weight)
		}
		if !sameCSR(g, s.Build()) {
			t.Fatalf("directed=%v: PatchWeight result differs from a rebuild", directed)
		}
	}
}

func TestPatchWeightSelfLoopAndPacked(t *testing.T) {
	b := NewBuilder(false)
	b.EnsureNodes(3)
	b.MustAddEdge(0, 0, 1.0) // self-loop: two parity arcs in one span
	b.MustAddEdge(0, 1, 2.0)
	b.MustAddEdge(1, 2, 3.0)
	g := b.Finalize()
	// Force the packed view into existence so PatchWeight must fix it too.
	fwd, _ := g.Packed()
	s := NewEdgeStore(g)

	for _, m := range []Mutation{SetWeight(0, 0, 9), SetWeight(1, 2, 0.5)} {
		if err := s.Apply(m); err != nil {
			t.Fatalf("apply: %v", err)
		}
		g.PatchWeight(m.U, m.V, m.Weight)
	}
	if !sameCSR(g, s.Build()) {
		t.Fatal("self-loop patch differs from a rebuild")
	}
	// Packed arcs must agree with the plain CSR after patching.
	for u := int32(0); int(u) < g.N(); u++ {
		targets, weights := g.Neighbors(u)
		arcs := fwd.Arcs(u)
		if len(arcs) != len(targets) {
			t.Fatalf("node %d: packed span %d vs CSR span %d", u, len(arcs), len(targets))
		}
		for i := range arcs {
			if arcs[i].To != targets[i] || arcs[i].W != weights[i] {
				t.Fatalf("node %d arc %d: packed (%d,%g) vs CSR (%d,%g)",
					u, i, arcs[i].To, arcs[i].W, targets[i], weights[i])
			}
		}
	}
}

// TestEdgeStoreRandomizedOracle drives a random mutation schedule and
// checks after every step that Build() matches a from-scratch builder
// over the mirrored edge set.
func TestEdgeStoreRandomizedOracle(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		g := buildTestGraph(t, false)
		s := NewEdgeStore(g)

		// Mirror state: unordered pair -> weight.
		type pair struct{ u, v int32 }
		norm := func(u, v int32) pair {
			if u > v {
				u, v = v, u
			}
			return pair{u, v}
		}
		mirror := map[pair]float64{}
		g.Edges(func(e Edge) bool {
			mirror[norm(e.From, e.To)] = e.Weight
			return true
		})
		n := g.N()

		for step := 0; step < 200; step++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			w := rng.Float64() * 4
			var m Mutation
			switch rng.Intn(4) {
			case 0:
				m = InsertEdge(u, v, w)
			case 1:
				m = DeleteEdge(u, v)
			case 2:
				m = SetWeight(u, v, w)
			case 3:
				m = AddVertices(1)
			}
			err := s.Apply(m)
			_, exists := mirror[norm(u, v)]
			switch m.Op {
			case MutInsertEdge:
				if exists {
					if !errors.Is(err, ErrEdgeExists) {
						t.Fatalf("seed %d step %d: insert over existing: %v", seed, step, err)
					}
				} else if err != nil {
					t.Fatalf("seed %d step %d: insert: %v", seed, step, err)
				} else {
					mirror[norm(u, v)] = w
				}
			case MutDeleteEdge:
				if !exists {
					if !errors.Is(err, ErrEdgeNotFound) {
						t.Fatalf("seed %d step %d: delete absent: %v", seed, step, err)
					}
				} else if err != nil {
					t.Fatalf("seed %d step %d: delete: %v", seed, step, err)
				} else {
					delete(mirror, norm(u, v))
				}
			case MutSetWeight:
				if !exists {
					if !errors.Is(err, ErrEdgeNotFound) {
						t.Fatalf("seed %d step %d: set_weight absent: %v", seed, step, err)
					}
				} else if err != nil {
					t.Fatalf("seed %d step %d: set_weight: %v", seed, step, err)
				} else {
					mirror[norm(u, v)] = w
				}
			case MutAddVertex:
				if err != nil {
					t.Fatalf("seed %d step %d: add_vertex: %v", seed, step, err)
				}
				n++
			}
			if step%40 != 0 {
				continue
			}
			b := NewBuilder(false)
			b.EnsureNodes(n)
			for p, pw := range mirror {
				b.MustAddEdge(p.u, p.v, pw)
			}
			if !sameCSR(s.Build(), b.Finalize()) {
				t.Fatalf("seed %d step %d: store Build() diverged from mirror", seed, step)
			}
		}
	}
}
