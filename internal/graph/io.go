package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// Text format
//
//	# comment lines and blank lines are ignored
//	directed | undirected          (header, optional; default undirected)
//	nodes <N>                      (optional; pre-sizes the id space)
//	<u> <v> <w>                    (one edge per line)
//
// Endpoints are decimal ids when the `nodes` header is present, otherwise
// arbitrary labels interned in first-seen order.

// ReadText parses the text edge-list format.
func ReadText(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	b := NewBuilder(false)
	headerDone := false
	numeric := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if !headerDone {
			switch fields[0] {
			case "directed":
				b = NewBuilder(true)
				continue
			case "undirected":
				b = NewBuilder(false)
				continue
			case "nodes":
				if len(fields) != 2 {
					return nil, fmt.Errorf("line %d: nodes header wants one argument", lineNo)
				}
				n, err := strconv.Atoi(fields[1])
				if err != nil || n < 0 || n > math.MaxInt32 {
					return nil, fmt.Errorf("line %d: bad node count %q", lineNo, fields[1])
				}
				b.EnsureNodes(n)
				numeric = true
				headerDone = true
				continue
			}
			headerDone = true
		}
		if fields[0] == "nodes" && len(fields) == 2 {
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 || n > math.MaxInt32 {
				return nil, fmt.Errorf("line %d: bad node count %q", lineNo, fields[1])
			}
			b.EnsureNodes(n)
			numeric = true
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("line %d: want `u v w`, got %q", lineNo, line)
		}
		w, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad weight %q: %v", lineNo, fields[2], err)
		}
		var u, v NodeID
		if numeric {
			uu, err1 := strconv.Atoi(fields[0])
			vv, err2 := strconv.Atoi(fields[1])
			if err1 != nil || err2 != nil || uu < 0 || vv < 0 ||
				uu >= math.MaxInt32 || vv >= math.MaxInt32 {
				return nil, fmt.Errorf("line %d: bad numeric endpoint in %q", lineNo, line)
			}
			b.EnsureNodes(uu + 1)
			b.EnsureNodes(vv + 1)
			u, v = int32(uu), int32(vv)
		} else {
			u = b.AddLabeledNode(fields[0])
			v = b.AddLabeledNode(fields[1])
		}
		if err := b.AddEdge(u, v, w); err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Finalize(), nil
}

// WriteText serializes g in the text edge-list format.
func WriteText(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	dir := "undirected"
	if g.Directed() {
		dir = "directed"
	}
	if _, err := fmt.Fprintln(bw, dir); err != nil {
		return err
	}
	if !g.HasLabels() {
		if _, err := fmt.Fprintf(bw, "nodes %d\n", g.N()); err != nil {
			return err
		}
	}
	var werr error
	g.Edges(func(e Edge) bool {
		_, werr = fmt.Fprintf(bw, "%s %s %g\n", g.Label(e.From), g.Label(e.To), e.Weight)
		return werr == nil
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

const binaryMagic = "RKGR1\n"

// WriteBinary serializes g in a compact little-endian binary format. The
// format stores the forward CSR only; transposes are rebuilt on load.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var flags uint32
	if g.Directed() {
		flags |= 1
	}
	if g.HasLabels() {
		flags |= 2
	}
	hdr := []uint64{uint64(flags), uint64(g.N()), uint64(len(g.targets)), uint64(g.numEdges)}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	for _, o := range g.offsets {
		if err := binary.Write(bw, binary.LittleEndian, o); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.targets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.weights); err != nil {
		return err
	}
	if g.HasLabels() {
		for _, l := range g.labels {
			if err := binary.Write(bw, binary.LittleEndian, uint32(len(l))); err != nil {
				return err
			}
			if _, err := bw.WriteString(l); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary format produced by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("bad magic %q", magic)
	}
	var hdr [4]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, err
		}
	}
	flags, n, arcs, m := uint32(hdr[0]), int(hdr[1]), int(hdr[2]), int64(hdr[3])
	if n < 0 || arcs < 0 || n > math.MaxInt32 {
		return nil, fmt.Errorf("corrupt header: n=%d arcs=%d", n, arcs)
	}
	g := &Graph{directed: flags&1 != 0, numEdges: m}
	var err error
	// Counts come from untrusted input: grow buffers chunk by chunk so a
	// corrupted header fails with a read error instead of a huge
	// allocation.
	if g.offsets, err = readInt64s(br, n+1); err != nil {
		return nil, err
	}
	if g.targets, err = readInt32s(br, arcs); err != nil {
		return nil, err
	}
	if g.weights, err = readFloat64s(br, arcs); err != nil {
		return nil, err
	}
	if flags&2 != 0 {
		g.labels = make([]string, n)
		g.labelIdx = make(map[string]NodeID, n)
		for i := 0; i < n; i++ {
			var ln uint32
			if err := binary.Read(br, binary.LittleEndian, &ln); err != nil {
				return nil, err
			}
			if ln > maxLabelBytes {
				return nil, fmt.Errorf("corrupt label length %d at node %d", ln, i)
			}
			buf := make([]byte, ln)
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, err
			}
			g.labels[i] = string(buf)
			g.labelIdx[g.labels[i]] = int32(i)
		}
	}
	// Validate the forward CSR before deriving the transpose: corrupted
	// offsets or out-of-range targets would otherwise index out of bounds
	// while transposing.
	if err := validateCSR(n, g.offsets, g.targets, g.weights); err != nil {
		return nil, fmt.Errorf("corrupt graph: %w", err)
	}
	if g.directed {
		g.toffsets, g.ttargets, g.tweights = transposeCSR(n, g.offsets, g.targets, g.weights)
	} else {
		g.toffsets, g.ttargets, g.tweights = g.offsets, g.targets, g.weights
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("corrupt graph: %w", err)
	}
	return g, nil
}

const (
	// readChunkElems bounds how many elements are allocated per read step
	// when the element count comes from an untrusted header.
	readChunkElems = 1 << 16
	// maxLabelBytes bounds a single label read from untrusted input.
	maxLabelBytes = 1 << 20
)

func readInt64s(r io.Reader, n int) ([]int64, error) {
	out := make([]int64, 0, min(n, readChunkElems))
	for len(out) < n {
		chunk := min(n-len(out), readChunkElems)
		out = append(out, make([]int64, chunk)...)
		if err := binary.Read(r, binary.LittleEndian, out[len(out)-chunk:]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func readInt32s(r io.Reader, n int) ([]int32, error) {
	out := make([]int32, 0, min(n, readChunkElems))
	for len(out) < n {
		chunk := min(n-len(out), readChunkElems)
		out = append(out, make([]int32, chunk)...)
		if err := binary.Read(r, binary.LittleEndian, out[len(out)-chunk:]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func readFloat64s(r io.Reader, n int) ([]float64, error) {
	out := make([]float64, 0, min(n, readChunkElems))
	for len(out) < n {
		chunk := min(n-len(out), readChunkElems)
		out = append(out, make([]float64, chunk)...)
		if err := binary.Read(r, binary.LittleEndian, out[len(out)-chunk:]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func transposeCSR(n int, offsets []int64, targets []int32, weights []float64) ([]int64, []int32, []float64) {
	toff := make([]int64, n+1)
	for _, v := range targets {
		toff[v+1]++
	}
	for i := 0; i < n; i++ {
		toff[i+1] += toff[i]
	}
	ttgt := make([]int32, len(targets))
	twgt := make([]float64, len(weights))
	next := make([]int64, n)
	copy(next, toff[:n])
	for u := 0; u < n; u++ {
		for i := offsets[u]; i < offsets[u+1]; i++ {
			v := targets[i]
			j := next[v]
			ttgt[j] = int32(u)
			twgt[j] = weights[i]
			next[v]++
		}
	}
	for u := 0; u < n; u++ {
		sortAdj(ttgt[toff[u]:toff[u+1]], twgt[toff[u]:toff[u+1]])
	}
	return toff, ttgt, twgt
}

// WriteFile writes g to path, choosing the binary format for a ".rkg"
// extension and text otherwise.
func WriteFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".rkg") {
		if err := WriteBinary(f, g); err != nil {
			return err
		}
	} else if err := WriteText(f, g); err != nil {
		return err
	}
	return f.Close()
}

// ReadFile loads a graph from path, dispatching on the ".rkg" extension.
func ReadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".rkg") {
		return ReadBinary(f)
	}
	return ReadText(f)
}
