// Package graph provides the weighted-graph substrate used by every engine
// in this repository: a compact CSR (compressed sparse row) representation
// of a directed or undirected graph with non-negative float64 edge weights,
// an incremental Builder, transpose views, and text/binary serialization.
//
// Node identifiers are dense int32 values in [0, N). Optional string labels
// can be attached for human-facing tools; all algorithms operate on ids.
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// NodeID identifies a node. IDs are dense: a graph with N nodes uses ids
// 0..N-1.
type NodeID = int32

// Edge is a single weighted edge, used by the Builder and by iteration
// helpers. For undirected graphs an Edge represents the unordered pair
// {From, To}.
type Edge struct {
	From   NodeID
	To     NodeID
	Weight float64
}

// Graph is an immutable weighted graph in CSR form. Use a Builder to
// construct one. The zero value is an empty undirected graph.
//
// For undirected graphs every edge appears in both adjacency lists, and the
// transpose accessors alias the forward arrays. For directed graphs the
// transpose CSR is materialized at Finalize time, so reverse traversals
// (needed by the SDS-tree, which explores distances *to* the query node)
// are as cheap as forward ones.
type Graph struct {
	directed bool
	numEdges int64 // logical edge count (each undirected edge counted once)

	offsets []int64
	targets []int32
	weights []float64

	toffsets []int64
	ttargets []int32
	tweights []float64

	labels   []string
	labelIdx map[string]NodeID
}

// N returns the number of nodes.
func (g *Graph) N() int {
	if g.offsets == nil {
		return 0
	}
	return len(g.offsets) - 1
}

// M returns the number of logical edges (an undirected edge counts once).
func (g *Graph) M() int64 { return g.numEdges }

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// OutDegree returns the out-degree of u (degree, for undirected graphs).
func (g *Graph) OutDegree(u NodeID) int {
	return int(g.offsets[u+1] - g.offsets[u])
}

// InDegree returns the in-degree of u (degree, for undirected graphs).
func (g *Graph) InDegree(u NodeID) int {
	return int(g.toffsets[u+1] - g.toffsets[u])
}

// Neighbors returns the forward adjacency of u as parallel slices of
// targets and weights. The returned slices alias internal storage and must
// not be modified.
func (g *Graph) Neighbors(u NodeID) ([]int32, []float64) {
	lo, hi := g.offsets[u], g.offsets[u+1]
	return g.targets[lo:hi], g.weights[lo:hi]
}

// RNeighbors returns the reverse adjacency of u (the adjacency of u in the
// transpose graph G^T). For undirected graphs this is identical to
// Neighbors. The returned slices alias internal storage.
func (g *Graph) RNeighbors(u NodeID) ([]int32, []float64) {
	lo, hi := g.toffsets[u], g.toffsets[u+1]
	return g.ttargets[lo:hi], g.tweights[lo:hi]
}

// HasLabels reports whether nodes carry string labels.
func (g *Graph) HasLabels() bool { return g.labels != nil }

// Label returns the label of u, or its decimal id when no labels are set.
func (g *Graph) Label(u NodeID) string {
	if g.labels == nil {
		return fmt.Sprintf("%d", u)
	}
	return g.labels[u]
}

// NodeByLabel returns the node with the given label.
func (g *Graph) NodeByLabel(label string) (NodeID, bool) {
	id, ok := g.labelIdx[label]
	return id, ok
}

// Edges calls fn for every logical edge. For undirected graphs each edge is
// reported once with From < To (self-loops with From == To). Iteration stops
// early if fn returns false.
func (g *Graph) Edges(fn func(Edge) bool) {
	n := g.N()
	for u := 0; u < n; u++ {
		lo, hi := g.offsets[u], g.offsets[u+1]
		selfParity := false
		for i := lo; i < hi; i++ {
			v, w := g.targets[i], g.weights[i]
			if !g.directed && v < int32(u) {
				continue // reported from the smaller endpoint
			}
			if !g.directed && v == int32(u) {
				// An undirected self-loop stores two identical parity arcs
				// in this span; report the logical edge once.
				selfParity = !selfParity
				if !selfParity {
					continue
				}
			}
			if !fn(Edge{From: int32(u), To: v, Weight: w}) {
				return
			}
		}
	}
}

// TotalWeight returns the sum of all logical edge weights.
func (g *Graph) TotalWeight() float64 {
	var sum float64
	g.Edges(func(e Edge) bool { sum += e.Weight; return true })
	return sum
}

// MaxOutDegreeNode returns the node with the largest out-degree (smallest id
// wins ties) and that degree. It returns (0, 0) for an empty graph.
func (g *Graph) MaxOutDegreeNode() (NodeID, int) {
	best, bestDeg := NodeID(0), -1
	for u := 0; u < g.N(); u++ {
		if d := g.OutDegree(int32(u)); d > bestDeg {
			best, bestDeg = int32(u), d
		}
	}
	if bestDeg < 0 {
		return 0, 0
	}
	return best, bestDeg
}

// Validate checks structural invariants: offset monotonicity, target range,
// non-negative finite weights, and (for undirected graphs) adjacency
// symmetry. It returns nil when the graph is well-formed.
func (g *Graph) Validate() error {
	n := g.N()
	if err := validateCSR(n, g.offsets, g.targets, g.weights); err != nil {
		return fmt.Errorf("forward CSR: %w", err)
	}
	if err := validateCSR(n, g.toffsets, g.ttargets, g.tweights); err != nil {
		return fmt.Errorf("transpose CSR: %w", err)
	}
	if !g.directed {
		for u := 0; u < n; u++ {
			ts, ws := g.Neighbors(int32(u))
			for i, v := range ts {
				if !hasArc(g, v, int32(u), ws[i]) {
					return fmt.Errorf("undirected graph missing mirror arc %d->%d (w=%g)", v, u, ws[i])
				}
			}
		}
	}
	return nil
}

func validateCSR(n int, offsets []int64, targets []int32, weights []float64) error {
	if len(offsets) != n+1 {
		return fmt.Errorf("offsets length %d, want %d", len(offsets), n+1)
	}
	if offsets[0] != 0 {
		return errors.New("offsets[0] != 0")
	}
	for i := 0; i < n; i++ {
		if offsets[i+1] < offsets[i] {
			return fmt.Errorf("offsets not monotone at %d", i)
		}
	}
	if got := offsets[n]; got != int64(len(targets)) {
		return fmt.Errorf("offsets[n]=%d, want len(targets)=%d", got, len(targets))
	}
	if len(targets) != len(weights) {
		return errors.New("targets and weights length mismatch")
	}
	for i, v := range targets {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("target %d out of range at arc %d", v, i)
		}
		w := weights[i]
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("invalid weight %g at arc %d", w, i)
		}
	}
	return nil
}

func hasArc(g *Graph, u, v NodeID, w float64) bool {
	ts, ws := g.Neighbors(u)
	for i, t := range ts {
		if t == v && ws[i] == w {
			return true
		}
	}
	return false
}

// Builder accumulates edges and produces an immutable Graph. The zero value
// builds an undirected graph; use NewBuilder to pick directedness. Builders
// are not safe for concurrent use.
type Builder struct {
	directed bool
	n        int32
	edges    []Edge
	labels   []string
	labelIdx map[string]NodeID
	dedupe   bool
}

// NewBuilder returns a Builder for a graph with the given directedness.
func NewBuilder(directed bool) *Builder {
	return &Builder{directed: directed}
}

// SetDedupe controls duplicate-edge handling at Finalize time. When enabled,
// parallel edges between the same ordered pair collapse to the minimum
// weight (the only weight shortest-path computations can observe).
func (b *Builder) SetDedupe(on bool) { b.dedupe = on }

// EnsureNodes grows the node count to at least n.
func (b *Builder) EnsureNodes(n int) {
	if int32(n) > b.n {
		b.n = int32(n)
	}
}

// AddNode appends a fresh node and returns its id.
func (b *Builder) AddNode() NodeID {
	id := b.n
	b.n++
	return id
}

// AddLabeledNode appends a fresh node with a label, returning the existing
// node when the label was already registered.
func (b *Builder) AddLabeledNode(label string) NodeID {
	if b.labelIdx == nil {
		b.labelIdx = make(map[string]NodeID)
	}
	if id, ok := b.labelIdx[label]; ok {
		return id
	}
	id := b.AddNode()
	for int32(len(b.labels)) < id {
		b.labels = append(b.labels, fmt.Sprintf("%d", len(b.labels)))
	}
	b.labels = append(b.labels, label)
	b.labelIdx[label] = id
	return id
}

// AddEdge records an edge. Endpoints must already exist (via AddNode,
// AddLabeledNode, or EnsureNodes). Weights must be non-negative and finite.
func (b *Builder) AddEdge(u, v NodeID, w float64) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("edge (%d,%d) references unknown node (n=%d)", u, v, b.n)
	}
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("edge (%d,%d) has invalid weight %g", u, v, w)
	}
	b.edges = append(b.edges, Edge{From: u, To: v, Weight: w})
	return nil
}

// MustAddEdge is AddEdge that panics on error; intended for tests and
// generators that construct edges programmatically.
func (b *Builder) MustAddEdge(u, v NodeID, w float64) {
	if err := b.AddEdge(u, v, w); err != nil {
		panic(err)
	}
}

// N returns the current node count.
func (b *Builder) N() int { return int(b.n) }

// NumEdges returns the number of edges recorded so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Finalize builds the immutable Graph. The Builder may be reused afterwards
// (its recorded edges are copied out, not shared).
func (b *Builder) Finalize() *Graph {
	edges := b.edges
	if b.dedupe {
		edges = dedupeEdges(edges, b.directed)
	}
	n := int(b.n)
	g := &Graph{directed: b.directed, numEdges: int64(len(edges))}
	if b.labels != nil {
		for int32(len(b.labels)) < b.n {
			b.labels = append(b.labels, fmt.Sprintf("%d", len(b.labels)))
		}
		g.labels = append([]string(nil), b.labels...)
		g.labelIdx = make(map[string]NodeID, len(g.labels))
		for i, l := range g.labels {
			g.labelIdx[l] = int32(i)
		}
	}

	g.offsets, g.targets, g.weights = buildCSR(n, edges, b.directed, false)
	if b.directed {
		g.toffsets, g.ttargets, g.tweights = buildCSR(n, edges, true, true)
	} else {
		g.toffsets, g.ttargets, g.tweights = g.offsets, g.targets, g.weights
	}
	return g
}

// buildCSR assembles a CSR from the edge list. For undirected graphs each
// edge contributes an arc in both directions; reverse selects the transpose
// orientation for directed graphs. Adjacency lists are sorted by (target,
// weight) for determinism.
func buildCSR(n int, edges []Edge, directed, reverse bool) ([]int64, []int32, []float64) {
	arcs := len(edges)
	if !directed {
		arcs *= 2
	}
	offsets := make([]int64, n+1)
	count := func(u NodeID) { offsets[u+1]++ }
	for _, e := range edges {
		from, to := e.From, e.To
		if reverse {
			from, to = to, from
		}
		count(from)
		if !directed {
			count(to)
		}
	}
	for i := 0; i < n; i++ {
		offsets[i+1] += offsets[i]
	}
	targets := make([]int32, arcs)
	weights := make([]float64, arcs)
	next := make([]int64, n)
	copy(next, offsets[:n])
	place := func(u, v NodeID, w float64) {
		i := next[u]
		targets[i] = v
		weights[i] = w
		next[u]++
	}
	for _, e := range edges {
		from, to := e.From, e.To
		if reverse {
			from, to = to, from
		}
		place(from, to, e.Weight)
		if !directed && from != to {
			place(to, from, e.Weight)
		} else if !directed {
			place(to, from, e.Weight) // keep arc parity for self-loops
		}
	}
	for u := 0; u < n; u++ {
		lo, hi := offsets[u], offsets[u+1]
		if hi-lo > 1 {
			sortAdj(targets[lo:hi], weights[lo:hi])
		}
	}
	return offsets, targets, weights
}

func sortAdj(targets []int32, weights []float64) {
	sort.Sort(&adjSorter{targets, weights})
}

type adjSorter struct {
	t []int32
	w []float64
}

func (s *adjSorter) Len() int { return len(s.t) }
func (s *adjSorter) Less(i, j int) bool {
	if s.t[i] != s.t[j] {
		return s.t[i] < s.t[j]
	}
	return s.w[i] < s.w[j]
}
func (s *adjSorter) Swap(i, j int) {
	s.t[i], s.t[j] = s.t[j], s.t[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
}

func dedupeEdges(edges []Edge, directed bool) []Edge {
	type key struct{ u, v NodeID }
	best := make(map[key]float64, len(edges))
	order := make([]key, 0, len(edges))
	for _, e := range edges {
		u, v := e.From, e.To
		if !directed && u > v {
			u, v = v, u
		}
		k := key{u, v}
		if w, ok := best[k]; !ok {
			best[k] = e.Weight
			order = append(order, k)
		} else if e.Weight < w {
			best[k] = e.Weight
		}
	}
	out := make([]Edge, 0, len(order))
	for _, k := range order {
		out = append(out, Edge{From: k.u, To: k.v, Weight: best[k]})
	}
	return out
}
