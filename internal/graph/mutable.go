package graph

import (
	"errors"
	"fmt"
	"math"
)

// Mutation errors, designed for errors.Is dispatch at serving boundaries
// (the live store wraps them into its invalid-argument family so /v1/mutate
// rejects them with 400s instead of 500s).
var (
	// ErrEdgeExists reports an InsertEdge for a pair already present.
	ErrEdgeExists = errors.New("graph: edge already exists")
	// ErrEdgeNotFound reports a DeleteEdge/SetWeight for an absent pair.
	ErrEdgeNotFound = errors.New("graph: edge not found")
	// ErrAmbiguousEdge reports a DeleteEdge/SetWeight touching a pair the
	// seed graph recorded more than once (parallel edges): the mutation
	// cannot tell which copy it means. The mutation API itself never
	// creates parallel edges.
	ErrAmbiguousEdge = errors.New("graph: parallel edges make the mutation ambiguous")
	// ErrBadMutation reports a structurally invalid mutation (unknown op,
	// out-of-range endpoint, invalid weight, non-positive vertex count).
	ErrBadMutation = errors.New("graph: invalid mutation")
)

// MutationOp selects what a Mutation does.
type MutationOp uint8

const (
	// MutInsertEdge adds edge (U, V) with Weight; the pair must be absent.
	MutInsertEdge MutationOp = iota + 1
	// MutDeleteEdge removes edge (U, V); the pair must be present.
	MutDeleteEdge
	// MutSetWeight changes the weight of existing edge (U, V) to Weight.
	MutSetWeight
	// MutAddVertex appends Count fresh isolated vertices (Count <= 0 means
	// one). U, V, and Weight are ignored.
	MutAddVertex
)

// String returns the wire name of the op (shared with internal/api).
func (op MutationOp) String() string {
	switch op {
	case MutInsertEdge:
		return "insert_edge"
	case MutDeleteEdge:
		return "delete_edge"
	case MutSetWeight:
		return "set_weight"
	case MutAddVertex:
		return "add_vertex"
	}
	return fmt.Sprintf("MutationOp(%d)", uint8(op))
}

// Mutation is one live-graph update. For undirected graphs (U, V) is the
// unordered pair {U, V}.
type Mutation struct {
	Op     MutationOp
	U, V   NodeID
	Weight float64
	// Count is the number of vertices MutAddVertex appends (<= 0 means 1).
	Count int
}

// InsertEdge returns an edge-insertion mutation.
func InsertEdge(u, v NodeID, w float64) Mutation {
	return Mutation{Op: MutInsertEdge, U: u, V: v, Weight: w}
}

// DeleteEdge returns an edge-deletion mutation.
func DeleteEdge(u, v NodeID) Mutation {
	return Mutation{Op: MutDeleteEdge, U: u, V: v}
}

// SetWeight returns a weight-change mutation.
func SetWeight(u, v NodeID, w float64) Mutation {
	return Mutation{Op: MutSetWeight, U: u, V: v, Weight: w}
}

// AddVertices returns a mutation appending count isolated vertices.
func AddVertices(count int) Mutation {
	return Mutation{Op: MutAddVertex, Count: count}
}

// pairKey normalizes an edge pair: undirected pairs store the smaller
// endpoint first so {u, v} and {v, u} address the same edge.
type pairKey struct{ u, v NodeID }

func (s *EdgeStore) key(u, v NodeID) pairKey {
	if !s.directed && u > v {
		u, v = v, u
	}
	return pairKey{u, v}
}

// EdgeStore is the mutable edge overlay behind a live graph: the full
// logical edge list plus a pair index, supporting edge insert/delete,
// weight change, and vertex addition. It is the source of truth a live
// backend rebuilds its immutable CSR Graph from — Build produces arrays
// byte-identical to a from-scratch Builder over the same edge multiset,
// because CSR adjacency is sorted by (target, weight) and therefore
// independent of edge order.
//
// Not safe for concurrent use; the live store serializes mutation batches.
type EdgeStore struct {
	directed bool
	n        int
	edges    []Edge
	pos      map[pairKey][]int32 // edge positions per normalized pair
}

// NewEdgeStore captures g's logical edges into a mutable store.
func NewEdgeStore(g *Graph) *EdgeStore {
	s := &EdgeStore{
		directed: g.Directed(),
		n:        g.N(),
		edges:    make([]Edge, 0, g.M()),
		pos:      make(map[pairKey][]int32, g.M()),
	}
	g.Edges(func(e Edge) bool {
		s.addRaw(e)
		return true
	})
	return s
}

// addRaw appends an edge without validation (seeding and clone paths).
func (s *EdgeStore) addRaw(e Edge) {
	k := s.key(e.From, e.To)
	s.pos[k] = append(s.pos[k], int32(len(s.edges)))
	s.edges = append(s.edges, e)
}

// N returns the node count.
func (s *EdgeStore) N() int { return s.n }

// M returns the logical edge count.
func (s *EdgeStore) M() int { return len(s.edges) }

// Directed reports edge orientation.
func (s *EdgeStore) Directed() bool { return s.directed }

// Clone returns a deep copy. Mutation batches apply against a clone so a
// mid-batch validation failure leaves the store untouched.
func (s *EdgeStore) Clone() *EdgeStore {
	cp := &EdgeStore{
		directed: s.directed,
		n:        s.n,
		edges:    append([]Edge(nil), s.edges...),
		pos:      make(map[pairKey][]int32, len(s.pos)),
	}
	for k, v := range s.pos {
		cp.pos[k] = append([]int32(nil), v...)
	}
	return cp
}

// checkEndpoints validates that both endpoints exist.
func (s *EdgeStore) checkEndpoints(u, v NodeID) error {
	if u < 0 || int(u) >= s.n || v < 0 || int(v) >= s.n {
		return fmt.Errorf("edge (%d,%d) references unknown node (n=%d): %w", u, v, s.n, ErrBadMutation)
	}
	return nil
}

func checkWeight(w float64) error {
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("invalid weight %g: %w", w, ErrBadMutation)
	}
	return nil
}

// uniquePos resolves a pair to its single edge position, with the typed
// not-found/ambiguous errors.
func (s *EdgeStore) uniquePos(u, v NodeID) (int32, error) {
	ps := s.pos[s.key(u, v)]
	switch len(ps) {
	case 0:
		return 0, fmt.Errorf("edge (%d,%d): %w", u, v, ErrEdgeNotFound)
	case 1:
		return ps[0], nil
	}
	return 0, fmt.Errorf("edge (%d,%d) recorded %d times: %w", u, v, len(ps), ErrAmbiguousEdge)
}

// Apply performs one mutation. On error the store is unchanged.
func (s *EdgeStore) Apply(m Mutation) error {
	switch m.Op {
	case MutInsertEdge:
		if err := s.checkEndpoints(m.U, m.V); err != nil {
			return err
		}
		if err := checkWeight(m.Weight); err != nil {
			return err
		}
		if len(s.pos[s.key(m.U, m.V)]) > 0 {
			return fmt.Errorf("edge (%d,%d): %w", m.U, m.V, ErrEdgeExists)
		}
		s.addRaw(Edge{From: m.U, To: m.V, Weight: m.Weight})
		return nil
	case MutDeleteEdge:
		if err := s.checkEndpoints(m.U, m.V); err != nil {
			return err
		}
		p, err := s.uniquePos(m.U, m.V)
		if err != nil {
			return err
		}
		s.removeAt(p)
		return nil
	case MutSetWeight:
		if err := s.checkEndpoints(m.U, m.V); err != nil {
			return err
		}
		if err := checkWeight(m.Weight); err != nil {
			return err
		}
		p, err := s.uniquePos(m.U, m.V)
		if err != nil {
			return err
		}
		s.edges[p].Weight = m.Weight
		return nil
	case MutAddVertex:
		count := m.Count
		if count <= 0 {
			count = 1
		}
		if s.n+count > math.MaxInt32 {
			return fmt.Errorf("vertex count %d+%d overflows node ids: %w", s.n, count, ErrBadMutation)
		}
		s.n += count
		return nil
	}
	return fmt.Errorf("op %d: %w", m.Op, ErrBadMutation)
}

// removeAt deletes the edge at position p by swap-remove, fixing up the
// pair index of the edge moved into the hole. Edge order does not matter:
// Build sorts adjacency by (target, weight) regardless.
func (s *EdgeStore) removeAt(p int32) {
	e := s.edges[p]
	k := s.key(e.From, e.To)
	s.dropPos(k, p)
	last := int32(len(s.edges) - 1)
	if p != last {
		moved := s.edges[last]
		s.edges[p] = moved
		mk := s.key(moved.From, moved.To)
		s.dropPos(mk, last)
		s.pos[mk] = append(s.pos[mk], p)
	}
	s.edges = s.edges[:last]
}

// dropPos removes one position from a pair's position list.
func (s *EdgeStore) dropPos(k pairKey, p int32) {
	ps := s.pos[k]
	for i, q := range ps {
		if q == p {
			ps[i] = ps[len(ps)-1]
			ps = ps[:len(ps)-1]
			break
		}
	}
	if len(ps) == 0 {
		delete(s.pos, k)
	} else {
		s.pos[k] = ps
	}
}

// Build materializes the current edge set as an immutable Graph,
// byte-identical to a from-scratch Builder over the same edges.
func (s *EdgeStore) Build() *Graph {
	b := NewBuilder(s.directed)
	b.EnsureNodes(s.n)
	for _, e := range s.edges {
		b.MustAddEdge(e.From, e.To, e.Weight)
	}
	return b.Finalize()
}

// WeightOnly reports whether every mutation in the batch is a weight
// change — the precondition for the in-place CSR patch path (PatchWeight):
// topology is untouched, so adjacency spans, packing, and node count all
// stay valid.
func WeightOnly(ms []Mutation) bool {
	for _, m := range ms {
		if m.Op != MutSetWeight {
			return false
		}
	}
	return true
}

// PatchWeight updates the weight of edge (u, v) in place in g's CSR
// arrays (forward, transpose, and any built packed views), producing
// arrays byte-identical to a rebuild with the new weight. It is only
// sound when the pair maps to a single logical edge (EdgeStore.Apply
// validates that before calling) — adjacency is sorted by (target,
// weight), so an arc whose target is unique in its span keeps its
// position under any weight.
//
// Callers must guarantee exclusive access: no traversal may be running
// (the live store's epoch barrier holds every reader out while patching).
func (g *Graph) PatchWeight(u, v NodeID, w float64) {
	g.patchArcs(g.offsets, g.targets, g.weights, u, v, w)
	if g.directed {
		g.patchArcs(g.toffsets, g.ttargets, g.tweights, v, u, w)
	} else if u != v {
		// Undirected mirror arc; transpose arrays alias forward ones.
		g.patchArcs(g.offsets, g.targets, g.weights, v, u, w)
	}
	if pv, ok := packedViews.Load(g); ok {
		p := pv.(*packed)
		if p.fwd != nil {
			patchPackedArcs(p.fwd, u, v, w)
			if u != v || g.directed {
				patchPackedArcs(p.rev, v, u, w)
			}
		}
	}
}

// patchArcs rewrites every arc u->v in one CSR orientation (multiple arcs
// only occur for undirected self-loops, whose two parity arcs are
// identical).
func (g *Graph) patchArcs(offsets []int64, targets []int32, weights []float64, u, v NodeID, w float64) {
	for i := offsets[u]; i < offsets[u+1]; i++ {
		if targets[i] == v {
			weights[i] = w
		}
	}
}

func patchPackedArcs(c *CSR, u, v NodeID, w float64) {
	for i := c.offsets[u]; i < c.offsets[u+1]; i++ {
		if c.arcs[i].To == v {
			c.arcs[i].W = w
		}
	}
}
