package graph

import (
	"math"
	"sync"
	"sync/atomic"
)

// Arc is one packed out-arc: target and weight interleaved, so the Dijkstra
// expand loop streams a single 16-byte-stride array instead of chasing two
// parallel slices (one int32 stream, one float64 stream) through the cache.
type Arc struct {
	To int32
	W  float64
}

// CSR is the packed compressed-sparse-row view of one orientation of a
// Graph: flat []int32 offsets plus an interleaved Arc array, built once
// from the adjacency arrays and immutable afterwards. It preserves the
// Graph's adjacency order exactly (sorted by (target, weight)), so a
// traversal over the packed view settles nodes byte-identically to one
// over the slice view.
//
// Offsets are int32 (half the size of the Graph's int64 offsets); a graph
// whose arc count overflows int32 cannot be packed and Packed returns nil,
// leaving callers on the slice path.
type CSR struct {
	offsets []int32
	arcs    []Arc
}

// N returns the number of nodes.
func (c *CSR) N() int { return len(c.offsets) - 1 }

// NumArcs returns the number of stored arcs (undirected edges count twice).
func (c *CSR) NumArcs() int { return len(c.arcs) }

// Arcs returns the out-arcs of u. The slice aliases internal storage and
// must not be modified.
func (c *CSR) Arcs(u int32) []Arc {
	return c.arcs[c.offsets[u]:c.offsets[u+1]]
}

// Degree returns the out-degree of u.
func (c *CSR) Degree(u int32) int {
	return int(c.offsets[u+1] - c.offsets[u])
}

// Bytes returns the memory footprint of the packed arrays.
func (c *CSR) Bytes() int64 {
	if c == nil {
		return 0
	}
	return int64(len(c.offsets))*4 + int64(len(c.arcs))*16
}

// packCSR builds the packed view from one orientation's adjacency arrays,
// or returns nil when the arc count does not fit int32 offsets.
func packCSR(offsets []int64, targets []int32, weights []float64) *CSR {
	if len(offsets) == 0 {
		return &CSR{offsets: []int32{0}}
	}
	if offsets[len(offsets)-1] > math.MaxInt32 {
		return nil
	}
	c := &CSR{
		offsets: make([]int32, len(offsets)),
		arcs:    make([]Arc, len(targets)),
	}
	for i, o := range offsets {
		c.offsets[i] = int32(o)
	}
	for i, t := range targets {
		c.arcs[i] = Arc{To: t, W: weights[i]}
	}
	return c
}

// packed holds a Graph's lazily built CSR views. Separate from Graph so the
// zero Graph value stays usable and serialization never sees it.
type packed struct {
	once  sync.Once
	fwd   *CSR
	rev   *CSR
	bytes atomic.Int64
}

var packedViews sync.Map // *Graph -> *packed

// Packed returns the packed forward and reverse CSR views of g, building
// them on first use (concurrency-safe; every caller shares one copy per
// graph). For undirected graphs the reverse view aliases the forward one.
// Both are nil when the graph's arc count overflows int32 offsets — callers
// must then stay on the Neighbors/RNeighbors slice path.
func (g *Graph) Packed() (fwd, rev *CSR) {
	pv, _ := packedViews.LoadOrStore(g, &packed{})
	p := pv.(*packed)
	p.once.Do(func() {
		p.fwd = packCSR(g.offsets, g.targets, g.weights)
		if p.fwd == nil {
			return
		}
		if g.directed {
			p.rev = packCSR(g.toffsets, g.ttargets, g.tweights)
			if p.rev == nil {
				p.fwd = nil
				return
			}
			p.bytes.Store(p.fwd.Bytes() + p.rev.Bytes())
		} else {
			p.rev = p.fwd
			p.bytes.Store(p.fwd.Bytes())
		}
	})
	return p.fwd, p.rev
}

// CSRBytes reports the memory footprint of g's packed CSR views: 0 until
// Packed has been called (the views are lazy), the packed byte count
// afterwards. Safe to call concurrently with Packed.
func (g *Graph) CSRBytes() int64 {
	pv, ok := packedViews.Load(g)
	if !ok {
		return 0
	}
	return pv.(*packed).bytes.Load()
}
