package graph

import (
	"math/rand"
	"strings"
	"testing"
)

// loaderEdgeCases are text-format graphs exercising the loader paths that
// feed CSR construction: duplicate edges (with and without dedupe
// semantics — ReadText keeps parallel edges), self-loops, zero-weight
// edges, and isolated vertices (declared by the nodes header but never
// referenced by an edge).
var loaderEdgeCases = map[string]string{
	"duplicate-edges": `undirected
nodes 4
0 1 2.0
0 1 2.0
1 2 1.0
`,
	"self-loops": `directed
nodes 3
0 0 1.0
0 1 2.0
1 1 0.5
`,
	"zero-weight": `undirected
nodes 4
0 1 0
1 2 0
2 3 1.5
`,
	"isolated-vertices": `undirected
nodes 6
1 2 1.0
4 1 2.5
`,
	"directed-mixed": `directed
nodes 5
0 1 1.0
1 0 2.0
2 2 0
3 0 0.25
0 3 0.25
`,
}

// TestPackedMatchesAdjacency asserts, for every loader edge case, that the
// packed CSR views reproduce the adjacency slices arc for arc, in order,
// in both orientations.
func TestPackedMatchesAdjacency(t *testing.T) {
	for name, text := range loaderEdgeCases {
		t.Run(name, func(t *testing.T) {
			g, err := ReadText(strings.NewReader(text))
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			assertPackedMatches(t, g)
		})
	}
}

func assertPackedMatches(t *testing.T, g *Graph) {
	t.Helper()
	fwd, rev := g.Packed()
	if fwd == nil || rev == nil {
		t.Fatal("Packed returned nil for an int32-sized graph")
	}
	if !g.Directed() && fwd != rev {
		t.Error("undirected reverse view does not alias the forward view")
	}
	if fwd.N() != g.N() {
		t.Fatalf("packed N=%d, graph N=%d", fwd.N(), g.N())
	}
	for v := int32(0); int(v) < g.N(); v++ {
		ts, ws := g.Neighbors(v)
		arcs := fwd.Arcs(v)
		if len(arcs) != len(ts) || fwd.Degree(v) != len(ts) {
			t.Fatalf("node %d: packed degree %d, adjacency %d", v, len(arcs), len(ts))
		}
		for i, a := range arcs {
			if a.To != ts[i] || a.W != ws[i] {
				t.Fatalf("node %d arc %d: packed (%d,%g), adjacency (%d,%g)", v, i, a.To, a.W, ts[i], ws[i])
			}
		}
		rts, rws := g.RNeighbors(v)
		rarcs := rev.Arcs(v)
		if len(rarcs) != len(rts) {
			t.Fatalf("node %d: packed in-degree %d, adjacency %d", v, len(rarcs), len(rts))
		}
		for i, a := range rarcs {
			if a.To != rts[i] || a.W != rws[i] {
				t.Fatalf("node %d reverse arc %d: packed (%d,%g), adjacency (%d,%g)", v, i, a.To, a.W, rts[i], rws[i])
			}
		}
	}
}

// TestPackedRoundTrip fuzz-style: random graphs (directed and undirected,
// with self-loops, duplicate and zero-weight edges, isolated vertices) are
// packed and then unpacked back into adjacency form, which must match the
// original arrays exactly — adjacency → CSR → adjacency is lossless.
func TestPackedRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		directed := rng.Intn(2) == 0
		n := 1 + rng.Intn(40)
		b := NewBuilder(directed)
		b.SetDedupe(rng.Intn(2) == 0)
		b.EnsureNodes(n) // some vertices stay isolated
		edges := rng.Intn(3 * n)
		for i := 0; i < edges; i++ {
			u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			w := float64(rng.Intn(5)) / 2 // zero weights and ties included
			if directed || u != v || rng.Intn(2) == 0 {
				b.MustAddEdge(u, v, w)
			}
		}
		g := b.Finalize()
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		assertPackedMatches(t, g)

		// Unpack: rebuild int64 offsets + parallel arrays from the packed
		// view and compare with the originals.
		fwd, _ := g.Packed()
		offsets := make([]int64, len(g.offsets))
		targets := make([]int32, 0, len(g.targets))
		weights := make([]float64, 0, len(g.weights))
		for v := 0; v < fwd.N(); v++ {
			for _, a := range fwd.Arcs(int32(v)) {
				targets = append(targets, a.To)
				weights = append(weights, a.W)
			}
			offsets[v+1] = int64(len(targets))
		}
		if len(targets) != len(g.targets) {
			t.Fatalf("seed %d: round trip arc count %d, want %d", seed, len(targets), len(g.targets))
		}
		for i := range offsets {
			if offsets[i] != g.offsets[i] {
				t.Fatalf("seed %d: offsets diverge at %d", seed, i)
			}
		}
		for i := range targets {
			if targets[i] != g.targets[i] || weights[i] != g.weights[i] {
				t.Fatalf("seed %d: arc %d diverges: (%d,%g) vs (%d,%g)",
					seed, i, targets[i], weights[i], g.targets[i], g.weights[i])
			}
		}
	}
}

// TestPackedIdempotent: Packed is built once and shared; CSRBytes is 0
// before the first Packed call and stable afterwards.
func TestPackedIdempotent(t *testing.T) {
	b := NewBuilder(false)
	b.EnsureNodes(3)
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(1, 2, 2)
	g := b.Finalize()
	if got := g.CSRBytes(); got != 0 {
		t.Errorf("CSRBytes before Packed = %d, want 0 (views are lazy)", got)
	}
	f1, r1 := g.Packed()
	f2, r2 := g.Packed()
	if f1 != f2 || r1 != r2 {
		t.Error("Packed rebuilt the views on a second call")
	}
	want := f1.Bytes() // undirected: reverse aliases forward
	if got := g.CSRBytes(); got != want {
		t.Errorf("CSRBytes = %d, want %d", got, want)
	}
	if f1.NumArcs() != 4 { // undirected edges count twice
		t.Errorf("NumArcs = %d, want 4", f1.NumArcs())
	}
}

// TestPackedEmptyGraph covers the zero-node and zero-edge corners.
func TestPackedEmptyGraph(t *testing.T) {
	g := NewBuilder(true).Finalize()
	fwd, rev := g.Packed()
	if fwd == nil || rev == nil {
		t.Fatal("Packed returned nil for an empty graph")
	}
	if fwd.N() != 0 || fwd.NumArcs() != 0 {
		t.Errorf("empty graph packed to N=%d arcs=%d", fwd.N(), fwd.NumArcs())
	}
}
