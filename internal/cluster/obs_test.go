package cluster

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"rkranks/internal/core"
	"rkranks/internal/gen"
	"rkranks/internal/graph"
	"rkranks/internal/obs"
	"rkranks/internal/server"
)

// bootRecordingShard is bootShardServer with the flight recorder set to
// capture every request, and the Server returned so the test can read
// the recorder back.
func bootRecordingShard(t *testing.T, g *graph.Graph, shards, shard int) (*server.Server, *httptest.Server) {
	t.Helper()
	mask, err := ShardMask(g, Modulo{}, shards, shard, nil)
	if err != nil {
		t.Fatal(err)
	}
	pool := core.NewPool(g, core.Options{Candidates: mask}, 2)
	srv, err := server.New(server.Config{
		Pool:               pool,
		Graph:              g,
		SlowQueryThreshold: -1,
		HealthExtra: map[string]any{
			"shard":             fmt.Sprintf("%d/%d", shard, shards),
			"shard_partitioner": "modulo",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestTracePropagatesAcrossShards: a coordinator-side trace's request ID
// rides the X-Request-Id header into every remote shard server, so the
// shard-side flight-recorder records stitch to the coordinator's trace;
// and the coordinator's own trace carries the scatter round with one
// child span per shard.
func TestTracePropagatesAcrossShards(t *testing.T) {
	g := gen.DBLPLike(gen.DBLPLikeParams{Nodes: 200, AttachPerNode: 4, ExtraCollabFactor: 0.5, Seed: 3})
	const shards = 2
	servers := make([]*server.Server, shards)
	backends := make([]ShardBackend, shards)
	for i := 0; i < shards; i++ {
		srv, ts := bootRecordingShard(t, g, shards, i)
		servers[i] = srv
		rs, err := NewRemoteShard(context.Background(), ts.URL, RemoteExpect{
			Nodes: g.N(), Shard: fmt.Sprintf("%d/%d", i, shards), Partitioner: "modulo",
		})
		if err != nil {
			t.Fatal(err)
		}
		backends[i] = rs
	}
	coord, err := New(backends, Config{})
	if err != nil {
		t.Fatal(err)
	}

	const rid = "stitched-trace-0001"
	tr := obs.NewTrace(rid, "query")
	defer tr.Release()
	ctx := obs.ContextWithTrace(context.Background(), tr)
	if _, err := coord.QueryContext(ctx, core.Dynamic, 7, 10); err != nil {
		t.Fatal(err)
	}

	// Both shard servers must have recorded the coordinator's ID: one
	// request, one stitched trace across three processes.
	for i, srv := range servers {
		snap := srv.Recorder().Snapshot()
		found := false
		for _, rec := range snap.Slow {
			if rec.RequestID == rid {
				found = true
				if rec.Route != "query" {
					t.Errorf("shard %d recorded route %q, want query", i, rec.Route)
				}
			}
		}
		if !found {
			t.Errorf("shard %d never saw request ID %q; records: %+v", i, rid, snap.Slow)
		}
	}

	// The coordinator trace holds the scatter round as a parent span plus
	// one child span per shard.
	var parents, children int
	for _, sp := range tr.Spans() {
		if sp.Stage != obs.StageScatterRound1 {
			continue
		}
		if sp.Shard < 0 {
			parents++
		} else {
			children++
		}
	}
	if parents != 1 || children != shards {
		t.Errorf("scatter.round1 spans: %d parents, %d children; want 1 and %d", parents, children, shards)
	}
}
