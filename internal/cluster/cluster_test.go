package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"rkranks/internal/core"
	"rkranks/internal/gen"
	"rkranks/internal/graph"
	"rkranks/internal/hub"
	"rkranks/internal/rank"
	"rkranks/internal/ridx"
	tg "rkranks/internal/testgraphs"
	"rkranks/internal/workload"
)

var allAlgorithms = []core.Algorithm{core.Naive, core.Static, core.Dynamic, core.Indexed}

// tieHeavy builds a random graph with weights from {1, 2}: pervasive
// distance (and rank) ties, the adversarial regime for the merge's
// boundary-tie certification.
func tieHeavy(seed int64, directed bool, n int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(directed)
	b.SetDedupe(true)
	b.EnsureNodes(n)
	m := n * (2 + rng.Intn(3))
	for i := 0; i < m; i++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u != v {
			b.MustAddEdge(u, v, float64(1+rng.Intn(2)))
		}
	}
	return b.Finalize()
}

func sharedIndex(t testing.TB, g *graph.Graph, maxK int) *ridx.ShardedIndex {
	t.Helper()
	ix, err := ridx.BuildSharded(g, ridx.BuildParams{
		Hubs: hub.Select(g, hub.DegreeFirst, g.N()/8+1, hub.Options{}),
		M:    g.N()/4 + 1,
		K:    maxK,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func entriesEqual(a, b []rank.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestClusterEquivalence is the acceptance-criteria test: for every test
// graph and all four algorithms, coordinator results over 1/2/4/8 shards
// (both partitioners) are byte-identical — entries AND ranks — to a
// single-node Pool.Query.
func TestClusterEquivalence(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"toy", tg.Toy()},
		{"path", tg.Path(40)},
		{"tie-undirected", tieHeavy(5, false, 60)},
		{"tie-directed", tieHeavy(9, true, 60)},
		{"dblp", gen.DBLPLike(gen.DBLPLikeParams{Nodes: 300, AttachPerNode: 4, ExtraCollabFactor: 0.5, Seed: 7})},
	}
	for _, tc := range graphs {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			maxK := 16
			singleIx := sharedIndex(t, g, maxK)
			single, err := core.NewPoolWithIndex(g, core.Options{}, 2, singleIx)
			if err != nil {
				t.Fatal(err)
			}
			queries := workload.Random(g, 6, 17)
			for _, shards := range []int{1, 2, 4, 8} {
				for _, part := range []Partitioner{Modulo{}, DegreeBalanced{}} {
					clusterIx := sharedIndex(t, g, maxK)
					coord, err := NewLocal(g, core.Options{}, part, shards, 2, clusterIx, Config{})
					if err != nil {
						t.Fatal(err)
					}
					for _, algo := range allAlgorithms {
						for _, q := range queries {
							for _, k := range []int{1, 3, 10} {
								want, err := single.Query(algo, q, k)
								if err != nil {
									t.Fatal(err)
								}
								got, err := coord.Query(algo, q, k)
								if err != nil {
									t.Fatalf("%s shards=%d %v q=%d k=%d: %v", part.Name(), shards, algo, q, k, err)
								}
								if !entriesEqual(got.Entries, want.Entries) {
									t.Fatalf("%s shards=%d %v q=%d k=%d diverged:\n cluster %v\n single  %v",
										part.Name(), shards, algo, q, k, got.Entries, want.Entries)
								}
								if got.Partial {
									t.Fatalf("healthy cluster returned a partial result")
								}
							}
						}
					}
					if err := coord.Close(); err != nil {
						t.Fatal(err)
					}
				}
			}
		})
	}
}

// TestClusterEquivalenceBichromatic shards a bichromatic workload: the
// global candidate class intersects with the shard masks while the
// counted class stays global, and results must still match single-node.
func TestClusterEquivalenceBichromatic(t *testing.T) {
	road, stores := gen.RoadNetwork(gen.RoadNetworkParams{Rows: 12, Cols: 12, KeepProb: 0.3, Stores: 24, Seed: 5})
	candidates, counted := gen.StoreClasses(road.N(), stores)
	opts := core.Options{Candidates: candidates, Counted: counted}
	single := core.NewPool(road, opts, 2)

	var queryPool []int32
	for v := 0; v < road.N(); v++ {
		if counted[v] {
			queryPool = append(queryPool, int32(v))
		}
	}
	queries := workload.RandomFrom(queryPool, 5, 23)
	for _, shards := range []int{2, 4, 8} {
		coord, err := NewLocal(road, opts, DegreeBalanced{}, shards, 2, nil, Config{})
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range []core.Algorithm{core.Naive, core.Static, core.Dynamic} {
			for _, q := range queries {
				for _, k := range []int{1, 5} {
					want, err := single.Query(algo, q, k)
					if err != nil {
						t.Fatal(err)
					}
					got, err := coord.Query(algo, q, k)
					if err != nil {
						t.Fatalf("shards=%d %v q=%d k=%d: %v", shards, algo, q, k, err)
					}
					if !entriesEqual(got.Entries, want.Entries) {
						t.Fatalf("shards=%d %v q=%d k=%d diverged:\n cluster %v\n single  %v",
							shards, algo, q, k, got.Entries, want.Entries)
					}
				}
			}
		}
	}
}

// TestClusterEquivalenceEvolvingIndex interleaves Indexed queries on a
// single-node pool and a 4-shard cluster whose shards share their own
// concurrent index. The two indexes evolve DIFFERENT contents (different
// query mixes feed them), which must not matter: canonical results are
// index-state independent.
func TestClusterEquivalenceEvolvingIndex(t *testing.T) {
	g := tieHeavy(21, false, 80)
	maxK := 16
	single, err := core.NewPoolWithIndex(g, core.Options{}, 2, sharedIndex(t, g, maxK))
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewLocal(g, core.Options{}, Modulo{}, 4, 2, sharedIndex(t, g, maxK), Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 60; round++ {
		q := int32(rng.Intn(g.N()))
		k := 1 + rng.Intn(maxK-1)
		// Skew the cluster's index evolution: extra traffic only it sees.
		if round%3 == 0 {
			if _, err := coord.Query(core.Indexed, int32(rng.Intn(g.N())), 1+rng.Intn(5)); err != nil {
				t.Fatal(err)
			}
		}
		want, err := single.Query(core.Indexed, q, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := coord.Query(core.Indexed, q, k)
		if err != nil {
			t.Fatal(err)
		}
		if !entriesEqual(got.Entries, want.Entries) {
			t.Fatalf("round %d q=%d k=%d diverged as indexes evolved:\n cluster %v\n single  %v",
				round, q, k, got.Entries, want.Entries)
		}
	}
}

// TestClusterConcurrentQueries exercises the scatter path under -race:
// many goroutines querying one coordinator (shared evolving index) must
// stay race-free and each byte-identical to single-node.
func TestClusterConcurrentQueries(t *testing.T) {
	g := gen.DBLPLike(gen.DBLPLikeParams{Nodes: 250, AttachPerNode: 4, ExtraCollabFactor: 0.5, Seed: 13})
	coord, err := NewLocal(g, core.Options{}, DegreeBalanced{}, 4, 2, sharedIndex(t, g, 16), Config{})
	if err != nil {
		t.Fatal(err)
	}
	single, err := core.NewPoolWithIndex(g, core.Options{}, 2, sharedIndex(t, g, 16))
	if err != nil {
		t.Fatal(err)
	}
	queries := workload.Random(g, 24, 31)
	results, err := coord.QueryMany(core.Indexed, queries, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		want, err := single.Query(core.Indexed, q, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !entriesEqual(results[i].Entries, want.Entries) {
			t.Fatalf("q=%d diverged under concurrency:\n cluster %v\n single  %v", q, results[i].Entries, want.Entries)
		}
	}
}

// TestRankFloorPruningReducesTransfer is the acceptance-criteria counter
// assertion: on the figure6-style workload, the floor-pruned gather must
// move measurably fewer entries than the naive full-k gather — and still
// answer byte-identically.
func TestRankFloorPruningReducesTransfer(t *testing.T) {
	g := gen.DBLPLike(gen.DBLPLikeParams{Nodes: 400, AttachPerNode: 5, ExtraCollabFactor: 0.5, Seed: 29})
	const shards, k = 4, 20
	pruned, err := NewLocal(g, core.Options{}, DegreeBalanced{}, shards, 1, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NewLocal(g, core.Options{}, DegreeBalanced{}, shards, 1, nil, Config{NaiveGather: true})
	if err != nil {
		t.Fatal(err)
	}
	queries := workload.Random(g, 10, 41)
	for _, q := range queries {
		a, err := pruned.Query(core.Dynamic, q, k)
		if err != nil {
			t.Fatal(err)
		}
		b, err := naive.Query(core.Dynamic, q, k)
		if err != nil {
			t.Fatal(err)
		}
		if !entriesEqual(a.Entries, b.Entries) {
			t.Fatalf("q=%d: pruned and naive gathers disagree", q)
		}
	}
	ps := pruned.ClusterSnapshot().(*Snapshot)
	ns := naive.ClusterSnapshot().(*Snapshot)
	if ns.EntriesTransferred != int64(len(queries)*shards*k) {
		t.Fatalf("naive gather moved %d entries, want %d", ns.EntriesTransferred, len(queries)*shards*k)
	}
	if ps.EntriesTransferred >= ns.EntriesTransferred {
		t.Fatalf("rank-floor pruning did not reduce transfer: %d vs naive %d", ps.EntriesTransferred, ns.EntriesTransferred)
	}
	if ps.ShortCircuited == 0 {
		t.Error("no shard was ever short-circuited by its floor")
	}
	t.Logf("transfer: pruned %d vs naive %d entries (%.0f%% saved), %d short-circuits, %d escalations",
		ps.EntriesTransferred, ns.EntriesTransferred,
		100*(1-float64(ps.EntriesTransferred)/float64(ns.EntriesTransferred)),
		ps.ShortCircuited, ps.Escalations)
}

// TestMergeForcesEscalationOnBoundaryTie pins the tie-exactness of the
// certification: floors and cutoffs compare as (rank, node id) pairs, so
// a shard whose floor RANK merely equals the cutoff rank is only settled
// when its witness node id also clears the cutoff's.
func TestMergeForcesEscalationOnBoundaryTie(t *testing.T) {
	mk := func(k int, entries ...rank.Entry) *core.Result {
		return &core.Result{K: k, Entries: entries}
	}
	// Shard 0 returned 2 of k0=2 entries: floor witness (rank 5, node 8).
	// Shard 1 returned (rank 5, node 9) as the merged cutoff at k=2...
	results := []*core.Result{
		mk(2, rank.Entry{Node: 8, Rank: 5}, rank.Entry{Node: 12, Rank: 5}),
		mk(2, rank.Entry{Node: 3, Rank: 4}, rank.Entry{Node: 9, Rank: 5}),
	}
	merged := mergeTopK(results, 3)
	want := []rank.Entry{{Node: 3, Rank: 4}, {Node: 8, Rank: 5}, {Node: 9, Rank: 5}}
	if !entriesEqual(merged, want) {
		t.Fatalf("merge = %v, want %v", merged, want)
	}
	// Cutoff is (5, 9); shard 0's floor witness is (5, 12): 12 >= 9, so a
	// withheld candidate orders after (5, 12) > (5, 9) — settled.
	escalate, short := unsettledShards(results, merged, 3)
	if len(escalate) != 0 || short != 2 {
		t.Fatalf("escalate=%v short=%d, want none/2", escalate, short)
	}
	// Now k=4: merged has every entry, cutoff (5, 12) == shard 0's own
	// witness; a withheld (5, 13) could never beat it — but shard 1's
	// floor witness (5, 9) does NOT clear (5, 12): a withheld (5, 10)
	// would tie-break in. Shard 1 must escalate.
	merged = mergeTopK(results, 4)
	if len(merged) != 4 {
		t.Fatalf("merged %d entries, want 4", len(merged))
	}
	// Both shards answered at k0=2 < 4 and neither is exhausted; shard
	// 0's floor (5,12) clears the cutoff (5,12) while shard 1's (5,9)
	// does not — only shard 1 escalates.
	escalate, short = unsettledShards(results, merged, 4)
	if len(escalate) != 1 || escalate[0] != 1 || short != 1 {
		t.Fatalf("escalate=%v short=%d, want [1]/1", escalate, short)
	}
	f0 := results[0].Floor()
	f1 := results[1].Floor()
	cutoff := merged[3]
	if !f0.Clears(cutoff) {
		t.Errorf("floor (5,12) should clear cutoff %v", cutoff)
	}
	if f1.Clears(cutoff) {
		t.Errorf("floor (5,9) must NOT clear cutoff %v: a withheld (5,10) would tie-break in", cutoff)
	}
}

// flakyShard wraps a backend and fails on command.
type flakyShard struct {
	ShardBackend
	fail func() bool
}

func (f *flakyShard) Query(ctx context.Context, a core.Algorithm, q int32, k int) (*core.Result, error) {
	if f.fail() {
		return nil, errors.New("injected shard failure")
	}
	return f.ShardBackend.Query(ctx, a, q, k)
}

func localShards(t *testing.T, g *graph.Graph, shards int) []ShardBackend {
	t.Helper()
	backends := make([]ShardBackend, shards)
	for i := range backends {
		ls, err := NewLocalShard(g, core.Options{}, Modulo{}, shards, i, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		backends[i] = ls
	}
	return backends
}

// TestDegradedModeFlagsPartial: with one shard failing, the default mode
// answers from the healthy shards, flags Partial, and returns exactly the
// single-node result minus the dead shard's candidates.
func TestDegradedModeFlagsPartial(t *testing.T) {
	g := tg.Path(30)
	backends := localShards(t, g, 3)
	dead := 1
	backends[dead] = &flakyShard{ShardBackend: backends[dead], fail: func() bool { return true }}
	coord, err := New(backends, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Query(core.Dynamic, 0, 5)
	if err != nil {
		t.Fatalf("degraded mode refused the query: %v", err)
	}
	if !res.Partial {
		t.Error("degraded result not flagged Partial")
	}
	for _, e := range res.Entries {
		if int(e.Node)%3 == dead {
			t.Errorf("entry %v belongs to the dead shard", e)
		}
	}

	// Strict mode refuses the same situation with a typed 503.
	strict, err := New(localShardsWithDead(t, g, 3, dead), Config{StrictConsistency: true})
	if err != nil {
		t.Fatal(err)
	}
	_, err = strict.Query(core.Dynamic, 0, 5)
	if !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("strict mode error = %v, want ErrShardUnavailable", err)
	}
}

func localShardsWithDead(t *testing.T, g *graph.Graph, shards, dead int) []ShardBackend {
	backends := localShards(t, g, shards)
	backends[dead] = &flakyShard{ShardBackend: backends[dead], fail: func() bool { return true }}
	return backends
}

// TestHealthTrackingTripsAndRecovers: consecutive failures trip a shard
// (queries stop waiting on it), and after the backoff the next query
// probes it again and restores full results.
func TestHealthTrackingTripsAndRecovers(t *testing.T) {
	g := tg.Path(20)
	backends := localShards(t, g, 2)
	down := true
	backends[1] = &flakyShard{ShardBackend: backends[1], fail: func() bool { return down }}
	coord, err := New(backends, Config{FailureThreshold: 2, RetryBackoff: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Two failures trip the shard.
	for i := 0; i < 2; i++ {
		res, err := coord.Query(core.Dynamic, 0, 4)
		if err != nil || !res.Partial {
			t.Fatalf("attempt %d: res=%+v err=%v", i, res, err)
		}
	}
	snap := coord.ClusterSnapshot().(*Snapshot)
	if snap.Shards[1].Available {
		t.Fatal("shard 1 should be tripped")
	}
	// Recover the backend; after the backoff a query probes and heals it.
	down = false
	time.Sleep(60 * time.Millisecond)
	res, err := coord.Query(core.Dynamic, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Error("recovered cluster still partial")
	}
	snap = coord.ClusterSnapshot().(*Snapshot)
	if !snap.Shards[1].Available {
		t.Error("shard 1 still marked down after recovery")
	}
}

// TestSnapshotShape sanity-checks the /statsz cluster section counters.
func TestSnapshotShape(t *testing.T) {
	g := tg.Path(25)
	coord, err := NewLocal(g, core.Options{}, Modulo{}, 2, 1, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for q := int32(0); q < 5; q++ {
		if _, err := coord.Query(core.Dynamic, q, 6); err != nil {
			t.Fatal(err)
		}
	}
	snap := coord.ClusterSnapshot().(*Snapshot)
	if snap.Queries != 5 {
		t.Errorf("queries = %d, want 5", snap.Queries)
	}
	if len(snap.Shards) != 2 {
		t.Fatalf("shards = %d", len(snap.Shards))
	}
	for _, s := range snap.Shards {
		if s.Queries == 0 {
			t.Errorf("shard %d never queried", s.ID)
		}
		if s.InFlight != 0 {
			t.Errorf("shard %d in-flight gauge stuck at %d", s.ID, s.InFlight)
		}
		if !s.Available {
			t.Errorf("shard %d unavailable", s.ID)
		}
	}
	if snap.EntriesTransferred == 0 || snap.Coordinator.Window == 0 || snap.MaxShard.Window == 0 {
		t.Errorf("snapshot missing data: %+v", snap)
	}
	if fmt.Sprint(snap.Shards[0].Backend) == "" {
		t.Error("shard description empty")
	}
}

// TestValidationFailsFast: malformed requests are rejected before any
// shard RPC, with the same typed errors a pool reports.
func TestValidationFailsFast(t *testing.T) {
	g := tg.Path(10)
	coord, err := NewLocal(g, core.Options{}, Modulo{}, 2, 1, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Query(core.Dynamic, 0, 0); !errors.Is(err, core.ErrInvalidK) {
		t.Errorf("k=0 error = %v", err)
	}
	if _, err := coord.Query(core.Algorithm(9), 0, 3); !errors.Is(err, core.ErrUnknownAlgorithm) {
		t.Errorf("bad algorithm error = %v", err)
	}
	if _, err := coord.Query(core.Dynamic, 999, 3); !errors.Is(err, core.ErrInvalidQueryNode) {
		t.Errorf("bad query node error = %v", err)
	}
	if _, err := coord.Query(core.Indexed, 0, 3); !errors.Is(err, core.ErrIndexRequired) {
		t.Errorf("indexed on index-free cluster error = %v", err)
	}
}
