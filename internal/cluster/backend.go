package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"rkranks/internal/api"
	"rkranks/internal/core"
	"rkranks/internal/graph"
	"rkranks/internal/live"
	"rkranks/internal/rank"
	"rkranks/internal/ridx"
)

// A ShardBackend answers reverse k-ranks queries for one vertex shard: the
// canonical top-k among the shard's candidates, with ranks counted over
// the whole graph. Implementations must be safe for concurrent use — the
// coordinator scatters to every shard in parallel and may overlap queries.
type ShardBackend interface {
	// Query returns the shard-local canonical top-k. A result shorter
	// than k means the shard's candidate class is exhausted (the rank
	// floor the coordinator derives is then vacuous; see core.Floor).
	Query(ctx context.Context, a core.Algorithm, q int32, k int) (*core.Result, error)
	// QueryBatch answers many queries in ONE round trip — one result per
	// query, in input order, each with the same shard-local canonical
	// semantics as Query. The coordinator's batch scatter leans on it to
	// spend one RPC per shard per /v1/batch instead of one per query.
	QueryBatch(ctx context.Context, a core.Algorithm, queries []int32, k int) ([]*core.Result, error)
	// Size hints how many queries the backend can serve concurrently
	// (engine slots); the coordinator budgets batch fan-out with it.
	Size() int
	// Indexed reports whether the backend serves Indexed queries.
	Indexed() bool
	// Describe labels the backend in /statsz and logs.
	Describe() string
	// Close releases backend resources.
	Close() error
}

// LocalShard serves a shard from an in-process engine pool whose
// Candidates mask restricts results to the shard's vertices.
type LocalShard struct {
	pool *core.Pool
	desc string
}

// NewLocalShard builds the shard'th of shards in-process backends over g:
// an engine pool whose candidate class is the partitioner's mask for that
// shard, intersected with opts.Candidates when the caller is already
// bichromatic. ix, when non-nil, must be a concurrency-safe index covering
// g; passing the SAME index to every local shard is both safe and
// desirable — all shards then feed one set of dictionaries, exactly like a
// single-node pool.
func NewLocalShard(g *graph.Graph, opts core.Options, part Partitioner, shards, shard, poolSize int, ix ridx.Index) (*LocalShard, error) {
	mask, err := ShardMask(g, part, shards, shard, opts.Candidates)
	if err != nil {
		return nil, err
	}
	opts.Candidates = mask
	var pool *core.Pool
	if ix != nil {
		if pool, err = core.NewPoolWithIndex(g, opts, poolSize, ix); err != nil {
			return nil, err
		}
	} else {
		pool = core.NewPool(g, opts, poolSize)
	}
	return &LocalShard{
		pool: pool,
		desc: fmt.Sprintf("local[%d/%d %s]", shard, shards, part.Name()),
	}, nil
}

// Pool exposes the shard's pool (tests and occupancy introspection).
func (s *LocalShard) Pool() *core.Pool { return s.pool }

// Query implements ShardBackend.
func (s *LocalShard) Query(ctx context.Context, a core.Algorithm, q int32, k int) (*core.Result, error) {
	return s.pool.QueryContext(ctx, a, q, k)
}

// QueryBatch implements ShardBackend; concurrency is bounded by the
// shard's pool size.
func (s *LocalShard) QueryBatch(ctx context.Context, a core.Algorithm, queries []int32, k int) ([]*core.Result, error) {
	return s.pool.QueryManyContext(ctx, a, queries, k)
}

// Generation exposes the shard pool's answer-set generation for response
// caches keyed on it (see core.Pool.Generation).
func (s *LocalShard) Generation() uint64 { return s.pool.Generation() }

// Size implements ShardBackend.
func (s *LocalShard) Size() int { return s.pool.Size() }

// Indexed implements ShardBackend.
func (s *LocalShard) Indexed() bool { return s.pool.Indexed() }

// HubLabeled reports whether the shard's pool serves HubLabel queries
// (the coordinator's capability probe; see Coordinator.HubLabeled).
func (s *LocalShard) HubLabeled() bool { return s.pool.HubLabeled() }

// HubLabelBytes reports the shard labeling's memory footprint for the
// coordinator's /statsz sum.
func (s *LocalShard) HubLabelBytes() int64 { return s.pool.HubLabelBytes() }

// Describe implements ShardBackend.
func (s *LocalShard) Describe() string { return s.desc }

// Close implements ShardBackend.
func (s *LocalShard) Close() error { return nil }

// RemoteShard serves a shard from a remote rkserve instance (booted with
// -shard i/P so its pool's candidate class is that shard's mask) through
// the /v1/query wire contract.
type RemoteShard struct {
	client     *api.Client
	url        string
	size       int
	indexed    bool
	hubLabeled bool
}

// RemoteExpect is what a coordinator requires of a remote backend before
// trusting its answers in a merge. Zero-valued fields are not checked.
type RemoteExpect struct {
	// Nodes is the graph's node count: shards booted on different graphs
	// are the most common cluster misconfiguration.
	Nodes int
	// Shard is the ownership spec "i/P" the backend must have been booted
	// with (rkserve -shard, published on its /healthz). Merging assumes
	// DISJOINT candidate classes, so a duplicated, swapped, or full-graph
	// backend would answer silently wrong — this check refuses it at
	// startup instead.
	Shard string
	// Partitioner is the partitioner name the shard masks must come from;
	// only meaningful together with Shard.
	Partitioner string
}

// NewRemoteShard dials url's /healthz to learn the backend's capacity and
// index state, and verifies it against expect.
func NewRemoteShard(ctx context.Context, url string, expect RemoteExpect) (*RemoteShard, error) {
	c := api.NewClient(url)
	doc, err := c.Health(ctx)
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %s: %w", url, err)
	}
	size := 1
	if v, ok := doc["pool_size"].(float64); ok && v >= 1 {
		size = int(v)
	}
	indexed, _ := doc["indexed"].(bool)
	hubLabeled, _ := doc["hub_labeled"].(bool)
	if expect.Nodes > 0 {
		if v, ok := doc["graph_nodes"].(float64); !ok || int(v) != expect.Nodes {
			return nil, fmt.Errorf("cluster: shard %s serves a %v-node graph, coordinator expects %d", url, doc["graph_nodes"], expect.Nodes)
		}
	}
	if expect.Shard != "" {
		if got, _ := doc["shard"].(string); got != expect.Shard {
			return nil, fmt.Errorf("cluster: backend %s publishes shard spec %q, coordinator expects %q (boot it with rkserve -shard %s; a duplicate or full-graph backend would merge silently wrong)",
				url, got, expect.Shard, expect.Shard)
		}
		if expect.Partitioner != "" {
			if got, _ := doc["shard_partitioner"].(string); got != expect.Partitioner {
				return nil, fmt.Errorf("cluster: backend %s partitions with %q, coordinator expects %q: shard ownership would not line up",
					url, doc["shard_partitioner"], expect.Partitioner)
			}
		}
	}
	return &RemoteShard{client: c, url: url, size: size, indexed: indexed, hubLabeled: hubLabeled}, nil
}

// Query implements ShardBackend, mapping wire errors back to the typed
// errors the engine layer would have returned in process: client-fault
// responses to the core.ErrInvalidArgument family, deadline expiry to
// context.DeadlineExceeded. 429s keep their api.StatusError (with the
// parsed Retry-After) so the coordinator can aggregate overload hints;
// everything else is a shard availability failure.
func (s *RemoteShard) Query(ctx context.Context, a core.Algorithm, q int32, k int) (*core.Result, error) {
	resp, err := s.client.Query(ctx, api.AlgorithmOf(a), q, k, 0)
	if err != nil {
		return nil, s.mapError(err)
	}
	return wireResult(resp, q, k), nil
}

// mapError translates a wire error into the typed error the engine layer
// would have returned in process (see Query's contract).
func (s *RemoteShard) mapError(err error) error {
	var se *api.StatusError
	if errors.As(err, &se) {
		switch se.Status {
		case http.StatusBadRequest:
			return fmt.Errorf("cluster: shard %s rejected the request: %s: %w", s.url, se.Msg, core.ErrInvalidArgument)
		case http.StatusGatewayTimeout:
			return fmt.Errorf("cluster: shard %s: %s: %w", s.url, se.Msg, context.DeadlineExceeded)
		}
	}
	return err
}

// wireResult rebuilds a core.Result from its wire form, including the
// generation stamp the coordinator's merge-consistency check compares.
func wireResult(resp *api.QueryResponse, q int32, k int) *core.Result {
	entries := make([]rank.Entry, len(resp.Entries))
	for i, e := range resp.Entries {
		entries[i] = rank.Entry{Node: e.Node, Rank: e.Rank}
	}
	res := &core.Result{Query: q, K: k, Entries: entries, Partial: resp.Partial, Generation: resp.Generation}
	if resp.Stats != nil {
		res.Stats = *resp.Stats
	}
	return res
}

// QueryBatch implements ShardBackend with a single /v1/batch round trip,
// the wire counterpart of the coordinator's batch scatter. Errors map
// exactly like Query's.
func (s *RemoteShard) QueryBatch(ctx context.Context, a core.Algorithm, queries []int32, k int) ([]*core.Result, error) {
	resp, err := s.client.Batch(ctx, api.AlgorithmOf(a), queries, k, 0)
	if err != nil {
		return nil, s.mapError(err)
	}
	if len(resp.Results) != len(queries) {
		return nil, fmt.Errorf("cluster: shard %s answered %d of %d batch queries", s.url, len(resp.Results), len(queries))
	}
	out := make([]*core.Result, len(queries))
	for i := range resp.Results {
		out[i] = wireResult(&resp.Results[i], queries[i], k)
	}
	return out, nil
}

// Size implements ShardBackend.
func (s *RemoteShard) Size() int { return s.size }

// Indexed implements ShardBackend.
func (s *RemoteShard) Indexed() bool { return s.indexed }

// HubLabeled reports whether the remote backend published hub-label
// capability on its /healthz (rkserve booted with -hub-load or -hub-count).
func (s *RemoteShard) HubLabeled() bool { return s.hubLabeled }

// Describe implements ShardBackend.
func (s *RemoteShard) Describe() string { return "remote[" + s.url + "]" }

// Close implements ShardBackend.
func (s *RemoteShard) Close() error { return nil }

// Mutate fans one mutation batch to the remote backend's /v1/mutate. A
// 501 means the backend was booted without live mutations; the
// coordinator maps it to ImmutableShardError.
func (s *RemoteShard) Mutate(ctx context.Context, ms []graph.Mutation) (live.MutateInfo, error) {
	resp, err := s.client.Mutate(ctx, ms, 0)
	if err != nil {
		return live.MutateInfo{}, s.mapError(err)
	}
	return live.MutateInfo{
		Applied:    resp.Applied,
		Generation: resp.Generation,
		Rebuilt:    resp.Rebuilt,
		Nodes:      resp.Nodes,
		Edges:      resp.Edges,
	}, nil
}

// ProbeGeneration asks the remote backend its current graph generation
// over /statsz. The mutate retry guard uses it to detect a batch the
// server committed even though the response was lost in transit —
// re-sending such a batch would double-apply it.
func (s *RemoteShard) ProbeGeneration(ctx context.Context) (uint64, error) {
	doc, err := s.client.Stats(ctx)
	if err != nil {
		return 0, err
	}
	return doc.Generation, nil
}

// LiveShard serves a shard from an in-process live store: the mutable
// counterpart of LocalShard. Its candidate mask is recomputed from the
// partitioner on every topology rebuild, so vertices added after boot
// still land in exactly one shard's candidate class. Unlike LocalShard
// pools, live shards do NOT share a dynamic index — each store owns its
// index lifecycle (a rebuild swaps in a fresh one per shard).
type LiveShard struct {
	store *live.Store
	desc  string
}

// NewLiveShard builds the shard'th of shards live backends over g. cfg is
// the per-shard live configuration; its CandidateFunc is overwritten with
// the partitioner's mask (cfg.Options.Candidates, when set, restricts it,
// bichromatic-style, and is extended with true for post-boot vertices).
func NewLiveShard(g *graph.Graph, cfg live.Config, part Partitioner, shards, shard int) (*LiveShard, error) {
	if part == nil {
		part = Modulo{}
	}
	restrict := cfg.Options.Candidates
	cfg.CandidateFunc = func(g2 *graph.Graph) ([]bool, error) {
		return ShardMask(g2, part, shards, shard, growMask(restrict, g2.N()))
	}
	// Every shard needs a PRIVATE graph: weight patches rewrite the CSR
	// arrays in place under the owning store's epoch barrier, which
	// cannot hold out another shard's readers. The copy is byte-identical
	// to g (CSR construction is canonical), so answers are unaffected.
	store, err := live.NewStore(graph.NewEdgeStore(g).Build(), cfg)
	if err != nil {
		return nil, err
	}
	return &LiveShard{
		store: store,
		desc:  fmt.Sprintf("live[%d/%d %s]", shard, shards, part.Name()),
	}, nil
}

// growMask extends a class mask to n nodes, admitting post-boot vertices.
func growMask(mask []bool, n int) []bool {
	if mask == nil || len(mask) >= n {
		return mask
	}
	out := make([]bool, n)
	copy(out, mask)
	for i := len(mask); i < n; i++ {
		out[i] = true
	}
	return out
}

// Store exposes the shard's live store (tests and introspection).
func (s *LiveShard) Store() *live.Store { return s.store }

// Query implements ShardBackend.
func (s *LiveShard) Query(ctx context.Context, a core.Algorithm, q int32, k int) (*core.Result, error) {
	return s.store.QueryContext(ctx, a, q, k)
}

// QueryBatch implements ShardBackend.
func (s *LiveShard) QueryBatch(ctx context.Context, a core.Algorithm, queries []int32, k int) ([]*core.Result, error) {
	return s.store.QueryManyContext(ctx, a, queries, k)
}

// Mutate applies one batch to the shard's store.
func (s *LiveShard) Mutate(ctx context.Context, ms []graph.Mutation) (live.MutateInfo, error) {
	return s.store.Mutate(ctx, ms)
}

// Generation exposes the store's graph generation (cache keying and the
// coordinator's merge-consistency check).
func (s *LiveShard) Generation() uint64 { return s.store.Generation() }

// MutationSnapshot exposes the store's mutation counters for the
// coordinator's /statsz aggregation.
func (s *LiveShard) MutationSnapshot() any { return s.store.MutationSnapshot() }

// Size implements ShardBackend.
func (s *LiveShard) Size() int { return s.store.Size() }

// Indexed implements ShardBackend.
func (s *LiveShard) Indexed() bool { return s.store.Indexed() }

// HubLabeled reports whether the shard serves HubLabel queries (possibly
// through the store's Dynamic fallback while relabeling).
func (s *LiveShard) HubLabeled() bool { return s.store.HubLabeled() }

// HubLabelBytes reports the shard labeling's footprint.
func (s *LiveShard) HubLabelBytes() int64 { return s.store.HubLabelBytes() }

// Describe implements ShardBackend.
func (s *LiveShard) Describe() string { return s.desc }

// Close implements ShardBackend.
func (s *LiveShard) Close() error { return nil }

// overloadHint extracts the Retry-After of a shard 429, reporting whether
// err is an overload shed at all.
func overloadHint(err error) (time.Duration, bool) {
	var se *api.StatusError
	if errors.As(err, &se) && se.Status == http.StatusTooManyRequests {
		return se.RetryAfter, true
	}
	return 0, false
}

// immutableRemote reports a 501 from a remote shard's /v1/mutate.
func immutableRemote(err error) bool {
	var se *api.StatusError
	return errors.As(err, &se) && se.Status == http.StatusNotImplemented
}

// fatalQueryError reports errors the coordinator must propagate verbatim
// instead of treating as shard failures: request-validation errors (the
// caller's fault, identical on every shard) and context cancellation or
// expiry (the caller's deadline, not the shard's health).
func fatalQueryError(err error) bool {
	return errors.Is(err, core.ErrInvalidArgument) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}
