package cluster

import (
	"context"
	"net/http/httptest"
	"testing"

	"rkranks/internal/api"
	"rkranks/internal/core"
	"rkranks/internal/gen"
	"rkranks/internal/obs"
	"rkranks/internal/ridx"
	"rkranks/internal/server"
)

// bootIndexLeader serves a pool whose shared index is wrapped in
// ridx.Replicated — the configuration `rkserve -build-index` runs —
// over real HTTP, and returns the wrapper for driving refinement.
func bootIndexLeader(t *testing.T, logCap int) (*ridx.Replicated, *httptest.Server) {
	t.Helper()
	g := gen.DBLPLike(gen.DBLPLikeParams{Nodes: 200, AttachPerNode: 4, Seed: 21})
	sh, err := ridx.BuildSharded(g, ridx.BuildParams{Hubs: []int32{0, 1, 2, 3}, M: 40, K: 50}, 0)
	if err != nil {
		t.Fatal(err)
	}
	repl := ridx.NewReplicated(sh, logCap)
	pool, err := core.NewPoolWithIndex(g, core.Options{}, 2, repl)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Pool: pool, Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return repl, ts
}

func indexStatesEqual(t *testing.T, got, want ridx.Index) {
	t.Helper()
	if got.N() != want.N() {
		t.Fatalf("N: %d vs %d", got.N(), want.N())
	}
	for u := int32(0); u < int32(want.N()); u++ {
		if g, w := got.Check(u), want.Check(u); g != w {
			t.Fatalf("Check(%d) = %d, want %d", u, g, w)
		}
	}
	for v := int32(0); v < int32(want.N()); v++ {
		g, w := got.Reverse(v), want.Reverse(v)
		if len(g) != len(w) {
			t.Fatalf("Reverse(%d): %v vs %v", v, g, w)
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("Reverse(%d)[%d]: %v vs %v", v, i, g[i], w[i])
			}
		}
	}
}

// teach drives n exact facts into an index the way refinement would.
func teach(ix ridx.Index, n int, salt int32) {
	nodes := int32(ix.N())
	for i := int32(0); i < int32(n); i++ {
		v := (i*13 + salt) % nodes
		u := (i*7 + salt + 1) % nodes
		ix.Offer(v, u, (i+salt)%40+1)
		if i%6 == 0 {
			ix.RaiseCheck(u, (i+salt)%15+1)
		}
	}
}

// TestIndexFollowerEndToEnd: a cold replica bootstraps from a leader's
// HTTP snapshot, follows deltas incrementally, and falls back to a full
// re-sync when the leader invalidates (generation change) — converging
// on the leader's exact dictionary state at every step.
func TestIndexFollowerEndToEnd(t *testing.T) {
	leader, ts := bootIndexLeader(t, 0)
	teach(leader, 150, 0)

	ctx := context.Background()
	client := api.NewClient(ts.URL)
	om := obs.NewMetrics(nil)

	repl, seq, gn, err := BootstrapIndex(ctx, client, 0)
	if err != nil {
		t.Fatal(err)
	}
	if seq != leader.Seq() || gn != leader.Generation() {
		t.Fatalf("bootstrap cursor/gen = %d/%d, want %d/%d", seq, gn, leader.Seq(), leader.Generation())
	}
	indexStatesEqual(t, repl, leader)

	// Incremental: the leader keeps learning; one sync converges.
	teach(leader, 80, 1000)
	f := NewIndexFollower(repl, client, seq, gn, IndexFollowerConfig{Metrics: om})
	applied, err := f.SyncOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if applied == 0 {
		t.Fatal("sync applied no deltas though the leader learned 80 facts")
	}
	indexStatesEqual(t, repl, leader)
	if om.IndexDeltasApplied.Value() != int64(applied) {
		t.Errorf("deltas applied counter = %d, want %d", om.IndexDeltasApplied.Value(), applied)
	}
	if f.Cursor() != leader.Seq() {
		t.Errorf("cursor = %d, want leader seq %d", f.Cursor(), leader.Seq())
	}

	// Idempotent when caught up.
	if n, err := f.SyncOnce(ctx); err != nil || n != 0 {
		t.Fatalf("caught-up sync: applied %d err %v", n, err)
	}

	// Leader invalidates (e.g. a mutation epoch): generation changes, log
	// resets. The follower must fall back to a snapshot re-sync, not
	// keep stale pre-invalidation answers.
	leader.Invalidate()
	teach(leader, 40, 5000)
	if _, err := f.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	indexStatesEqual(t, repl, leader)
	if repl.Generation() != leader.Generation() {
		t.Errorf("follower generation = %d, want %d", repl.Generation(), leader.Generation())
	}
	if om.IndexSnapshotsLoaded.Value() < 1 {
		t.Error("generation change did not trigger a snapshot re-sync")
	}
}

// TestIndexFollowerLeaderBehindKeepsLocalFacts: a leader that comes
// back with a LOWER index generation than the follower's (a restart
// legitimately restarts the generation) must not make the follower
// discard its local facts — the local index is at least as fresh, and
// its generation can never be lowered to match (RaiseGeneration is
// monotonic), so the old Invalidate-on-any-difference behavior threw
// away the fresher state and churned full re-syncs (regression). The
// older snapshot merges in and polling resumes cleanly.
func TestIndexFollowerLeaderBehindKeepsLocalFacts(t *testing.T) {
	leaderA, tsA := bootIndexLeader(t, 0)
	teach(leaderA, 60, 0)
	ctx := context.Background()
	om := obs.NewMetrics(nil)

	repl, cursor, gn, err := BootstrapIndex(ctx, api.NewClient(tsA.URL), 0)
	if err != nil {
		t.Fatal(err)
	}
	// The follower's answer set moves past any leader's: two local
	// invalidation epochs, then freshly learned local facts.
	repl.BumpGeneration()
	repl.BumpGeneration()
	teach(repl, 50, 9000)
	localGen := repl.Generation()
	n := int32(repl.N())
	prevCheck := make([]int32, n)
	for u := int32(0); u < n; u++ {
		prevCheck[u] = repl.Check(u)
	}

	// "Restarted" leader: fresh index, one invalidation epoch — its
	// generation (1) is nonzero but BELOW the follower's.
	leaderB, tsB := bootIndexLeader(t, 0)
	leaderB.Invalidate()
	teach(leaderB, 40, 500)
	if leaderB.Generation() >= localGen {
		t.Fatalf("leader generation %d not below follower's %d; test setup broken", leaderB.Generation(), localGen)
	}

	f := NewIndexFollower(repl, api.NewClient(tsB.URL), cursor, gn, IndexFollowerConfig{Metrics: om})
	if _, err := f.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if om.IndexSnapshotsLoaded.Value() != 1 {
		t.Fatalf("snapshots loaded = %d, want exactly 1", om.IndexSnapshotsLoaded.Value())
	}
	// Local facts survived the merge: check bounds are monotone, so any
	// bound that dropped means the follower was invalidated.
	for u := int32(0); u < n; u++ {
		if repl.Check(u) < prevCheck[u] {
			t.Fatalf("Check(%d) dropped %d -> %d: local facts were discarded for an older leader", u, prevCheck[u], repl.Check(u))
		}
	}
	if repl.Generation() != localGen {
		t.Errorf("follower generation %d changed to %d despite being ahead of the leader", localGen, repl.Generation())
	}

	// Steady state: no repeated snapshot churn once the leader generation
	// is recorded.
	if applied, err := f.SyncOnce(ctx); err != nil || applied != 0 {
		t.Fatalf("second sync: applied %d err %v, want idle", applied, err)
	}
	if om.IndexSnapshotsLoaded.Value() != 1 {
		t.Errorf("snapshots loaded = %d after steady-state poll, want still 1 (re-sync churn)", om.IndexSnapshotsLoaded.Value())
	}
}

// TestIndexFollowerTruncationResync: a follower that fell further behind
// than the leader's bounded delta log recovers through the snapshot
// path and still converges.
func TestIndexFollowerTruncationResync(t *testing.T) {
	leader, ts := bootIndexLeader(t, 16)
	teach(leader, 30, 0)

	ctx := context.Background()
	client := api.NewClient(ts.URL)
	om := obs.NewMetrics(nil)
	repl, seq, gn, err := BootstrapIndex(ctx, client, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := NewIndexFollower(repl, client, seq, gn, IndexFollowerConfig{Metrics: om})

	// Far more new deltas than the cap-16 log retains.
	teach(leader, 200, 3000)
	if _, err := f.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	indexStatesEqual(t, repl, leader)
	if om.IndexSnapshotsLoaded.Value() < 1 {
		t.Error("log truncation did not trigger a snapshot re-sync")
	}
}
