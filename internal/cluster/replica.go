package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rkranks/internal/core"
	"rkranks/internal/graph"
	"rkranks/internal/live"
	"rkranks/internal/obs"
	"rkranks/internal/ridx"
)

// maxMutationLog bounds the group's replayable mutation-batch log. A
// replica that missed more batches than the log retains cannot be
// caught up in process (it stays out of rotation until an operator
// restarts it against a healthy sibling's snapshot).
const maxMutationLog = 256

// errReplicaLagging marks a replica skipped by Mutate because its
// generation is behind the group's serving generation; it will receive
// the batch via ordered catch-up replay instead.
var errReplicaLagging = errors.New("cluster: replica lagging serving generation; deferred to catch-up")

// loggedBatch is one successfully applied mutation batch, kept for
// replaying to replicas that missed it.
type loggedBatch struct {
	gen uint64 // generation the batch advanced the group to
	ms  []graph.Mutation
}

// ReplicaGroup is N backends serving the SAME shard mask, presented to
// the coordinator as one ShardBackend. Queries are load-balanced
// round-robin across the replicas in rotation; a query that fails on
// one replica retries on a sibling (counted in
// rkranks_replica_failovers_total) before the group reports failure, so
// a single replica loss never degrades answers. Each replica has its
// own half-open health tracking, identical to the coordinator's
// per-shard tracking.
//
// # Rotation and generation
//
// A replica is in rotation iff it is healthy AND its graph generation
// matches the group's serving generation — the maximum generation among
// healthy replicas. Group Generation() reports exactly that serving
// generation, so the response cache's key always matches the generation
// of the replica that actually answers: a stale replica mid-catch-up
// can never poison the cache with old-generation answers filed under
// the new generation's key.
//
// # Mutations and catch-up
//
// Mutate fans each batch to EVERY replica in lockstep and succeeds when
// at least one replica applied it (the group can then serve at the new
// generation); while the serving generation is regressed below the
// group's high-water mark it refuses batches instead (see Mutate).
// Applied batches are logged; a replica that was down
// while batches landed is caught up by replaying the batches it missed
// — in order, each advancing its generation by one — before it rejoins
// rotation (rkranks_replica_catchups_total). Index state transfers
// separately via snapshot + delta streaming (/v1/index/snapshot, see
// IndexFollower), which replicas use to inherit learned refinements
// rather than correctness-critical graph state.
type ReplicaGroup struct {
	replicas []ShardBackend
	cfg      Config
	health   []shardHealth
	om       *obs.Metrics
	desc     string
	cursor   atomic.Uint64

	// catchMu admits one catch-up at a time; queries that cannot claim
	// it just skip the lagging replica.
	catchMu sync.Mutex

	// muMu serializes group mutations and guards mulog.
	muMu  sync.Mutex
	mulog []loggedBatch

	// highWater is the newest generation ever observed on any replica or
	// logged by a batch, independent of health. Mutations are refused
	// while the serving generation is below it: a regressed group
	// accepting a batch would reuse an already-logged generation number
	// for different content (see Mutate).
	highWater atomic.Uint64
}

// NewReplicaGroup builds a group over replicas of one shard mask. The
// replicas must be interchangeable: same graph, same candidate class
// (the coordinator's RemoteExpect checks enforce this for remote
// replicas; the local constructors build them from one partitioner).
func NewReplicaGroup(replicas []ShardBackend, cfg Config) (*ReplicaGroup, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("cluster: a replica group needs at least one backend")
	}
	om := cfg.Metrics
	if om == nil {
		om = obs.NewMetrics(nil)
	}
	desc := "group["
	for i, b := range replicas {
		if i > 0 {
			desc += " "
		}
		desc += b.Describe()
	}
	desc += "]"
	return &ReplicaGroup{
		replicas: replicas,
		cfg:      cfg,
		health:   make([]shardHealth, len(replicas)),
		om:       om,
		desc:     desc,
	}, nil
}

// Replicas returns the group's backends (tests and introspection).
func (g *ReplicaGroup) Replicas() []ShardBackend { return g.replicas }

// backendGeneration probes a backend's graph generation (0 when the
// backend has none — immutable groups never leave generation 0).
func backendGeneration(b ShardBackend) uint64 {
	if gp, ok := b.(interface{ Generation() uint64 }); ok {
		return gp.Generation()
	}
	return 0
}

// servingGeneration is the group's target: the maximum generation among
// healthy replicas. Only replicas AT this generation serve queries. If
// every up-to-date replica is unhealthy, the target regresses to the
// best healthy replica — it then serves its (older) answers stamped
// with its own generation, which stays self-consistent: Generation()
// reports the same regressed value, and cross-shard merges against
// newer groups are refused by the generation-skew check. Mutations are
// refused while regressed (see Mutate), so the group can never mint a
// generation number colliding with a logged batch it is missing.
//
// When NO replica is healthy the target falls back to the maximum over
// ALL replicas: returning 0 would strand every half-open probe in a
// generation mismatch — released without ever issuing a call, so
// record(true) never runs — locking the group out permanently even
// after the replicas recover.
func (g *ReplicaGroup) servingGeneration() uint64 {
	threshold := g.cfg.failureThreshold()
	var target, all uint64
	anyHealthy := false
	for i, b := range g.replicas {
		gen := backendGeneration(b)
		if gen > all {
			all = gen
		}
		if !g.health[i].healthy(threshold) {
			continue
		}
		anyHealthy = true
		if gen > target {
			target = gen
		}
	}
	g.raiseHighWater(all)
	if !anyHealthy {
		return all
	}
	return target
}

// raiseHighWater records the newest generation ever observed or logged,
// independent of replica health (see Mutate's regressed-group guard).
func (g *ReplicaGroup) raiseHighWater(gen uint64) {
	for {
		cur := g.highWater.Load()
		if gen <= cur || g.highWater.CompareAndSwap(cur, gen) {
			return
		}
	}
}

// Generation implements the response-cache generation probe: the
// serving replica's generation (see servingGeneration), NOT a blanket
// maximum over all replicas — a restarted replica still catching up
// must neither drag the key down nor serve under it.
func (g *ReplicaGroup) Generation() uint64 { return g.servingGeneration() }

// InRotation counts replicas currently eligible to serve (healthy and
// at the serving generation).
func (g *ReplicaGroup) InRotation() int {
	threshold := g.cfg.failureThreshold()
	target := g.servingGeneration()
	n := 0
	for i, b := range g.replicas {
		if g.health[i].healthy(threshold) && backendGeneration(b) == target {
			n++
		}
	}
	return n
}

// replicaCall routes one call across the group: round-robin from the
// cursor over replicas admitted by health tracking, catching up lagging
// replicas when possible, failing over to the next sibling on error.
func replicaCall[T any](ctx context.Context, g *ReplicaGroup, call func(b ShardBackend) (T, error)) (T, error) {
	var zero T
	n := len(g.replicas)
	start := int(g.cursor.Add(1) % uint64(n))
	target := g.servingGeneration()
	now := time.Now()
	threshold := g.cfg.failureThreshold()
	var lastErr error
	attempted := false
	for off := 0; off < n; off++ {
		i := (start + off) % n
		if !g.health[i].claimProbe(now, threshold) {
			continue
		}
		// A replica BEHIND the target (just revived, missed mutation
		// batches) must not serve stale answers: replay what it missed
		// first, and skip it when the log cannot get it to the serving
		// generation. A replica AHEAD of the target — the target
		// regressed because every up-to-date sibling is tripped — serves
		// anyway: its answers are at least as fresh, and letting its
		// probe issue a real call is the only way its health, and with it
		// the serving generation, can recover.
		if gen := backendGeneration(g.replicas[i]); gen < target && !g.catchUp(ctx, i, gen, target) {
			g.health[i].releaseProbe()
			continue
		}
		if attempted {
			g.om.ReplicaFailovers.Inc()
		}
		attempted = true
		out, err := call(g.replicas[i])
		failure := err != nil && !fatalQueryError(err)
		if _, isOverload := overloadHint(err); isOverload {
			failure = false // shedding is the admission layer working, not ill health
		}
		g.health[i].record(!failure, threshold, g.cfg.retryBackoff())
		if err == nil {
			return out, nil
		}
		if fatalQueryError(err) {
			return zero, err
		}
		lastErr = err
	}
	if lastErr != nil {
		return zero, lastErr
	}
	return zero, errors.New("no replica in rotation")
}

// catchUp replays the mutation batches replica i missed, bringing it
// from generation cur to target. One catch-up runs at a time; callers
// that lose the TryLock skip the replica this query. Returns whether
// the replica reached the serving generation.
func (g *ReplicaGroup) catchUp(ctx context.Context, i int, cur, target uint64) bool {
	m, ok := g.replicas[i].(shardMutator)
	if !ok {
		return false
	}
	if !g.catchMu.TryLock() {
		return false
	}
	defer g.catchMu.Unlock()
	for cur < target {
		ms, ok := g.batchFor(cur + 1)
		if !ok {
			return false // fell off the bounded log; needs operator help
		}
		info, err := m.Mutate(ctx, ms)
		if err != nil {
			return false
		}
		if info.Generation <= cur {
			return false // not advancing; bail rather than loop
		}
		cur = info.Generation
	}
	g.om.ReplicaCatchups.Inc()
	return true
}

// recoverToHighWater replays logged batches into healthy replicas that
// sit behind the group's high-water generation — the best-effort path
// out of a regressed group (see Mutate). Called WITHOUT muMu held:
// catch-up replay acquires it per batch lookup.
func (g *ReplicaGroup) recoverToHighWater(ctx context.Context) {
	hwm := g.highWater.Load()
	if hwm == 0 {
		return
	}
	threshold := g.cfg.failureThreshold()
	for i, b := range g.replicas {
		if !g.health[i].healthy(threshold) {
			continue
		}
		if gen := backendGeneration(b); gen < hwm {
			g.catchUp(ctx, i, gen, hwm)
		}
	}
}

// generationProber is the over-the-wire generation probe (RemoteShard
// asks /statsz); in-process backends expose Generation directly.
type generationProber interface {
	ProbeGeneration(ctx context.Context) (uint64, error)
}

// currentGeneration reads a backend's CURRENT generation for the mutate
// retry guard: in process via Generation, remotely via a /statsz probe.
// ok=false means the backend has no generation concept or the probe
// failed, so an applied-but-errored batch cannot be detected and the
// caller falls back to the plain retry.
func currentGeneration(ctx context.Context, b ShardBackend) (uint64, bool) {
	if gp, ok := b.(interface{ Generation() uint64 }); ok {
		return gp.Generation(), true
	}
	if gp, ok := b.(generationProber); ok {
		if gen, err := gp.ProbeGeneration(ctx); err == nil {
			return gen, true
		}
	}
	return 0, false
}

// batchFor finds the logged batch that advanced the group to gen.
func (g *ReplicaGroup) batchFor(gen uint64) ([]graph.Mutation, bool) {
	g.muMu.Lock()
	defer g.muMu.Unlock()
	for _, b := range g.mulog {
		if b.gen == gen {
			return b.ms, true
		}
	}
	return nil, false
}

// logBatch records an applied batch for later catch-up replay.
// Caller holds muMu.
func (g *ReplicaGroup) logBatch(gen uint64, ms []graph.Mutation) {
	g.raiseHighWater(gen)
	for _, b := range g.mulog {
		if b.gen == gen {
			// Defensive: Mutate's regressed-group guard makes a colliding
			// generation unreachable, but a second batch must never shadow
			// the content already logged under this number — catch-up
			// replay and the recovering up-to-date replica must agree on
			// what each generation contains.
			return
		}
	}
	if len(g.mulog) >= maxMutationLog {
		drop := maxMutationLog / 2
		g.mulog = append(g.mulog[:0], g.mulog[drop:]...)
	}
	g.mulog = append(g.mulog, loggedBatch{gen: gen, ms: append([]graph.Mutation(nil), ms...)})
}

// Query implements ShardBackend with replica failover.
func (g *ReplicaGroup) Query(ctx context.Context, a core.Algorithm, q int32, k int) (*core.Result, error) {
	return replicaCall(ctx, g, func(b ShardBackend) (*core.Result, error) {
		return b.Query(ctx, a, q, k)
	})
}

// QueryBatch implements ShardBackend; the whole batch fails over
// together (shard answers must come from ONE replica so the rank-floor
// certificates stay coherent).
func (g *ReplicaGroup) QueryBatch(ctx context.Context, a core.Algorithm, queries []int32, k int) ([]*core.Result, error) {
	return replicaCall(ctx, g, func(b ShardBackend) ([]*core.Result, error) {
		return b.QueryBatch(ctx, a, queries, k)
	})
}

// Mutate fans one batch to every replica in lockstep (see the type
// docs): the group stays mutable while at least one replica applies the
// batch, and replicas that failed drop out of rotation by generation
// until caught up. A group whose serving generation REGRESSED below its
// high-water mark (every replica holding the newest batches is out of
// rotation) refuses the batch with GroupRegressedError after a
// best-effort catch-up: minting target+1 again would collide with the
// generation number already logged under different content.
func (g *ReplicaGroup) Mutate(ctx context.Context, ms []graph.Mutation) (live.MutateInfo, error) {
	muts := make([]shardMutator, len(g.replicas))
	for i, b := range g.replicas {
		m, ok := b.(shardMutator)
		if !ok {
			return live.MutateInfo{}, &ImmutableShardError{Shard: i}
		}
		muts[i] = m
	}

	// Best-effort recovery BEFORE the regressed-group guard below: replay
	// logged batches into healthy replicas sitting behind the high-water
	// generation, so a group whose newest replica tripped accepts
	// mutations again without waiting for that replica to heal. Runs
	// outside muMu — catch-up replay takes it per batch lookup.
	g.recoverToHighWater(ctx)

	g.muMu.Lock()
	defer g.muMu.Unlock()

	// A generation-lagging replica must NOT receive this batch directly:
	// applying it would advance the replica's generation number while its
	// graph still misses the batches in between — a replica claiming a
	// generation whose content it does not have. Lagging replicas advance
	// only through catch-up replay, which applies missed batches in
	// order; here they are simply skipped (no health penalty — lagging is
	// not illness).
	target := g.servingGeneration()
	if hwm := g.highWater.Load(); target < hwm {
		return live.MutateInfo{}, &GroupRegressedError{Serving: target, HighWater: hwm}
	}
	infos := make([]live.MutateInfo, len(muts))
	errs := make([]error, len(muts))
	var wg sync.WaitGroup
	for i, m := range muts {
		if backendGeneration(g.replicas[i]) != target {
			errs[i] = errReplicaLagging
			continue
		}
		wg.Add(1)
		go func(i int, m shardMutator) {
			defer wg.Done()
			preGen, preKnown := currentGeneration(ctx, g.replicas[i])
			infos[i], errs[i] = m.Mutate(ctx, ms)
			if errs[i] == nil || fatalQueryError(errs[i]) || immutableRemote(errs[i]) {
				return
			}
			// A non-fatal error does NOT prove the batch was not applied:
			// a remote transport can fail after the server committed it.
			// Blindly re-sending would double-apply the batch and advance
			// this replica two generations ahead of its siblings, with no
			// catch-up batch for the hole — so retry only when the
			// replica's generation provably did not move, and count an
			// advanced generation as an apply.
			if gen, ok := currentGeneration(ctx, g.replicas[i]); preKnown && ok && gen > preGen {
				infos[i], errs[i] = live.MutateInfo{Applied: len(ms), Generation: gen}, nil
				return
			}
			infos[i], errs[i] = m.Mutate(ctx, ms)
			if errs[i] == nil || fatalQueryError(errs[i]) || immutableRemote(errs[i]) {
				return
			}
			if gen, ok := currentGeneration(ctx, g.replicas[i]); preKnown && ok && gen > preGen {
				infos[i], errs[i] = live.MutateInfo{Applied: len(ms), Generation: gen}, nil
			}
		}(i, m)
	}
	wg.Wait()

	okIdx := -1
	failed := map[int]error{}
	for i, err := range errs {
		switch {
		case err == nil:
			if okIdx < 0 {
				okIdx = i
			}
		case errors.Is(err, errReplicaLagging):
			failed[i] = err
		case immutableRemote(err):
			return live.MutateInfo{}, &ImmutableShardError{Shard: i}
		case errors.Is(err, core.ErrInvalidArgument):
			// Bad batch: every replica refused identically, none applied.
			return live.MutateInfo{}, err
		default:
			failed[i] = err
			g.health[i].record(false, g.cfg.failureThreshold(), g.cfg.retryBackoff())
		}
	}
	if okIdx < 0 {
		return live.MutateInfo{}, &MutationError{Failed: failed}
	}
	g.logBatch(infos[okIdx].Generation, ms)
	return infos[okIdx], nil
}

// Size implements ShardBackend: reads are load-balanced, so the group's
// concurrent capacity is the sum over its replicas.
func (g *ReplicaGroup) Size() int {
	total := 0
	for _, b := range g.replicas {
		total += b.Size()
	}
	if total < 1 {
		total = 1
	}
	return total
}

// Indexed implements ShardBackend: any replica may answer, so the
// capability holds only when all replicas have it.
func (g *ReplicaGroup) Indexed() bool {
	for _, b := range g.replicas {
		if !b.Indexed() {
			return false
		}
	}
	return true
}

// HubLabeled reports the capability only when every replica has it
// (same reasoning as Indexed).
func (g *ReplicaGroup) HubLabeled() bool {
	for _, b := range g.replicas {
		hl, ok := b.(interface{ HubLabeled() bool })
		if !ok || !hl.HubLabeled() {
			return false
		}
	}
	return true
}

// HubLabelBytes reports the largest replica labeling: replicas hold
// copies of the same labeling, so summing would double-count.
func (g *ReplicaGroup) HubLabelBytes() int64 {
	var max int64
	for _, b := range g.replicas {
		if hb, ok := b.(interface{ HubLabelBytes() int64 }); ok {
			if v := hb.HubLabelBytes(); v > max {
				max = v
			}
		}
	}
	return max
}

// MutationSnapshot aggregates the replicas' mutation counters for
// /statsz (nil when no replica is live).
func (g *ReplicaGroup) MutationSnapshot() any {
	out := make(map[string]any)
	for i, b := range g.replicas {
		if msn, ok := b.(interface{ MutationSnapshot() any }); ok {
			out[fmt.Sprintf("replica_%d", i)] = msn.MutationSnapshot()
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Describe implements ShardBackend.
func (g *ReplicaGroup) Describe() string { return g.desc }

// Close implements ShardBackend.
func (g *ReplicaGroup) Close() error {
	var first error
	for _, b := range g.replicas {
		if err := b.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// NewLocalReplicated builds an in-process replicated cluster: shards
// groups of replicas immutable engine pools each, all sharing ix when
// non-nil (one set of dictionaries, exactly like NewLocal). replicas
// <= 1 degenerates to NewLocal's ungrouped backends.
func NewLocalReplicated(g *graph.Graph, opts core.Options, part Partitioner, shards, replicas, poolSize int, ix ridx.Index, cfg Config) (*Coordinator, error) {
	if replicas <= 1 {
		return NewLocal(g, opts, part, shards, poolSize, ix, cfg)
	}
	if part == nil {
		part = Modulo{}
	}
	backends := make([]ShardBackend, shards)
	for i := 0; i < shards; i++ {
		members := make([]ShardBackend, replicas)
		for r := 0; r < replicas; r++ {
			ls, err := NewLocalShard(g, opts, part, shards, i, poolSize, ix)
			if err != nil {
				return nil, err
			}
			members[r] = ls
		}
		rg, err := NewReplicaGroup(members, cfg)
		if err != nil {
			return nil, err
		}
		backends[i] = rg
	}
	return New(backends, cfg)
}

// NewLocalLiveReplicated builds an in-process replicated MUTABLE
// cluster: shards groups of replicas live stores each. Every replica
// owns a private graph copy and (when indexMaxK > 0) its own dynamic
// index, exactly like NewLocalLive's shards; the group fans mutation
// batches to all of them in lockstep.
func NewLocalLiveReplicated(g *graph.Graph, base live.Config, indexMaxK int, part Partitioner, shards, replicas int, cfg Config) (*Coordinator, error) {
	if replicas <= 1 {
		return NewLocalLive(g, base, indexMaxK, part, shards, cfg)
	}
	if part == nil {
		part = Modulo{}
	}
	backends := make([]ShardBackend, shards)
	for i := 0; i < shards; i++ {
		members := make([]ShardBackend, replicas)
		for r := 0; r < replicas; r++ {
			shardCfg := base
			if indexMaxK > 0 {
				shardCfg.Index = ridx.NewSharded(g.N(), indexMaxK)
			}
			ls, err := NewLiveShard(g, shardCfg, part, shards, i)
			if err != nil {
				return nil, err
			}
			members[r] = ls
		}
		rg, err := NewReplicaGroup(members, cfg)
		if err != nil {
			return nil, err
		}
		backends[i] = rg
	}
	return New(backends, cfg)
}

var (
	_ ShardBackend = (*ReplicaGroup)(nil)
	_ shardMutator = (*ReplicaGroup)(nil)
)
