package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"rkranks/internal/cache"
	"rkranks/internal/core"
	"rkranks/internal/gen"
	"rkranks/internal/graph"
	tg "rkranks/internal/testgraphs"
	"rkranks/internal/workload"
)

// QueryBatch lets the failure injection cover batch RPCs too (embedding
// alone would bypass fail()).
func (f *flakyShard) QueryBatch(ctx context.Context, a core.Algorithm, queries []int32, k int) ([]*core.Result, error) {
	if f.fail() {
		return nil, errors.New("injected shard failure")
	}
	return f.ShardBackend.QueryBatch(ctx, a, queries, k)
}

// TestBatchScatterEquivalence is the acceptance-criteria matrix for the
// batch path: for all four algorithms across 1/2/4/8 shards, a batch
// scatter — uncached, and cache-wrapped on both a cold and a warm pass —
// answers byte-identically to the per-query scatter and to a single-node
// pool, node ids included.
func TestBatchScatterEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func() *graph.Graph
	}{
		{"tie-undirected", func() *graph.Graph { return tieHeavy(5, false, 60) }},
		{"dblp", func() *graph.Graph {
			return gen.DBLPLike(gen.DBLPLikeParams{Nodes: 250, AttachPerNode: 4, ExtraCollabFactor: 0.5, Seed: 7})
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.build()
			maxK := 16
			single, err := core.NewPoolWithIndex(g, core.Options{}, 2, sharedIndex(t, g, maxK))
			if err != nil {
				t.Fatal(err)
			}
			queries := workload.Random(g, 8, 19)
			for _, shards := range []int{1, 2, 4, 8} {
				batched, err := NewLocal(g, core.Options{}, Modulo{}, shards, 2, sharedIndex(t, g, maxK), Config{})
				if err != nil {
					t.Fatal(err)
				}
				perQuery, err := NewLocal(g, core.Options{}, Modulo{}, shards, 2, sharedIndex(t, g, maxK), Config{PerQueryScatter: true})
				if err != nil {
					t.Fatal(err)
				}
				cached, err := cache.NewBackend(batched, cache.Config{MaxBytes: 4 << 20})
				if err != nil {
					t.Fatal(err)
				}
				for _, algo := range allAlgorithms {
					for _, k := range []int{1, 3, 10} {
						want := make([]*core.Result, len(queries))
						for i, q := range queries {
							if want[i], err = single.Query(algo, q, k); err != nil {
								t.Fatal(err)
							}
						}
						batchRes, err := batched.QueryMany(algo, queries, k)
						if err != nil {
							t.Fatalf("batch shards=%d %v k=%d: %v", shards, algo, k, err)
						}
						pqRes, err := perQuery.QueryMany(algo, queries, k)
						if err != nil {
							t.Fatal(err)
						}
						coldRes, err := cached.QueryManyContext(context.Background(), algo, queries, k)
						if err != nil {
							t.Fatal(err)
						}
						warmRes, err := cached.QueryManyContext(context.Background(), algo, queries, k)
						if err != nil {
							t.Fatal(err)
						}
						for i := range queries {
							for variant, got := range map[string]*core.Result{
								"batch": batchRes[i], "per-query": pqRes[i],
								"cached-cold": coldRes[i], "cached-warm": warmRes[i],
							} {
								if !entriesEqual(got.Entries, want[i].Entries) {
									t.Fatalf("%s shards=%d %v q=%d k=%d diverged:\n got    %v\n single %v",
										variant, shards, algo, queries[i], k, got.Entries, want[i].Entries)
								}
								if got.Partial {
									t.Fatalf("healthy cluster flagged %s result partial", variant)
								}
							}
						}
					}
				}
				if err := batched.Close(); err != nil {
					t.Fatal(err)
				}
				_ = perQuery.Close()
			}
		})
	}
}

// TestBatchScatterEvolvingSharedIndex interleaves cached batches,
// uncached batches, and skewed extra traffic over DIFFERENTLY evolving
// shared indexes; canonical results must stay byte-identical throughout,
// so the cache (keyed on an unchanged generation) is never wrong to hit.
func TestBatchScatterEvolvingSharedIndex(t *testing.T) {
	g := tieHeavy(21, false, 80)
	maxK := 16
	single, err := core.NewPoolWithIndex(g, core.Options{}, 2, sharedIndex(t, g, maxK))
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewLocal(g, core.Options{}, Modulo{}, 4, 2, sharedIndex(t, g, maxK), Config{})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := cache.NewBackend(coord, cache.Config{MaxBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 25; round++ {
		// Skew the cluster index's evolution: traffic only it sees.
		if _, err := coord.Query(core.Indexed, int32(rng.Intn(g.N())), 1+rng.Intn(5)); err != nil {
			t.Fatal(err)
		}
		batch := make([]int32, 6)
		for i := range batch {
			batch[i] = int32(rng.Intn(g.N()))
		}
		k := 1 + rng.Intn(maxK-1)
		got, err := cached.QueryManyContext(context.Background(), core.Indexed, batch, k)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range batch {
			want, err := single.Query(core.Indexed, q, k)
			if err != nil {
				t.Fatal(err)
			}
			if !entriesEqual(got[i].Entries, want.Entries) {
				t.Fatalf("round %d q=%d k=%d diverged as indexes evolved:\n cached cluster %v\n single         %v",
					round, q, k, got[i].Entries, want.Entries)
			}
		}
	}
}

// TestBatchOneShardTripped: a batch over a cluster with one dead shard
// fails with the typed 503 in strict mode and degrades to Partial
// results (correct for the healthy candidate classes) otherwise.
func TestBatchOneShardTripped(t *testing.T) {
	g := tg.Path(30)
	const dead = 1
	queries := []int32{0, 3, 9}

	strict, err := New(localShardsWithDead(t, g, 3, dead), Config{StrictConsistency: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := strict.QueryMany(core.Dynamic, queries, 5); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("strict batch error = %v, want ErrShardUnavailable", err)
	}

	degraded, err := New(localShardsWithDead(t, g, 3, dead), Config{})
	if err != nil {
		t.Fatal(err)
	}
	results, err := degraded.QueryMany(core.Dynamic, queries, 5)
	if err != nil {
		t.Fatalf("degraded batch refused: %v", err)
	}
	for i, res := range results {
		if !res.Partial {
			t.Errorf("degraded result %d not flagged Partial", i)
		}
		for _, e := range res.Entries {
			if int(e.Node)%3 == dead {
				t.Errorf("result %d entry %v belongs to the dead shard", i, e)
			}
		}
	}
}

// TestBatchRPCCounters: with rank-floor pruning disabled (full-k first
// round) a batch costs exactly ONE RPC per shard, and the /statsz
// counters say so.
func TestBatchRPCCounters(t *testing.T) {
	g := tg.Path(40)
	const shards, k = 2, 6
	coord, err := NewLocal(g, core.Options{}, Modulo{}, shards, 1, nil, Config{FirstRoundK: k})
	if err != nil {
		t.Fatal(err)
	}
	queries := []int32{1, 5, 9, 13, 17}
	if _, err := coord.QueryMany(core.Dynamic, queries, k); err != nil {
		t.Fatal(err)
	}
	snap := coord.ClusterSnapshot().(*Snapshot)
	if snap.Batches != 1 {
		t.Errorf("batches = %d, want 1", snap.Batches)
	}
	if snap.BatchRPCs != shards {
		t.Errorf("batch RPCs = %d, want exactly %d (one per shard)", snap.BatchRPCs, shards)
	}
	if snap.BatchQueries != int64(len(queries)) {
		t.Errorf("batch queries = %d, want %d", snap.BatchQueries, len(queries))
	}
	for _, s := range snap.Shards {
		if s.Queries != 1 {
			t.Errorf("shard %d served %d RPCs, want 1", s.ID, s.Queries)
		}
	}
	if snap.Batch.Window != 1 {
		t.Errorf("batch latency window = %d, want 1", snap.Batch.Window)
	}

	// With the reduced first round, escalations may add RPCs but never
	// more than one extra round per shard.
	pruned, err := NewLocal(g, core.Options{}, Modulo{}, shards, 1, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pruned.QueryMany(core.Dynamic, queries, k); err != nil {
		t.Fatal(err)
	}
	ps := pruned.ClusterSnapshot().(*Snapshot)
	if ps.BatchRPCs < shards || ps.BatchRPCs > 2*shards {
		t.Errorf("pruned batch RPCs = %d, want within [%d, %d]", ps.BatchRPCs, shards, 2*shards)
	}
}

// TestRemoteBatchScatter: the batch path over real HTTP shard backends —
// one /v1/batch per shard — stays byte-identical to single-node.
func TestRemoteBatchScatter(t *testing.T) {
	g := gen.DBLPLike(gen.DBLPLikeParams{Nodes: 200, AttachPerNode: 4, ExtraCollabFactor: 0.5, Seed: 3})
	const shards = 2
	backends := make([]ShardBackend, shards)
	for i := 0; i < shards; i++ {
		ts := bootShardServer(t, g, Modulo{}, shards, i)
		rs, err := NewRemoteShard(context.Background(), ts.URL, RemoteExpect{
			Nodes: g.N(), Shard: fmt.Sprintf("%d/%d", i, shards), Partitioner: "modulo",
		})
		if err != nil {
			t.Fatal(err)
		}
		backends[i] = rs
	}
	coord, err := New(backends, Config{})
	if err != nil {
		t.Fatal(err)
	}
	single := core.NewPool(g, core.Options{}, 2)
	queries := workload.Random(g, 6, 7)
	results, err := coord.QueryMany(core.Dynamic, queries, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		want, err := single.Query(core.Dynamic, q, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !entriesEqual(results[i].Entries, want.Entries) {
			t.Fatalf("q=%d diverged over HTTP batch scatter:\n cluster %v\n single  %v", q, results[i].Entries, want.Entries)
		}
	}
	snap := coord.ClusterSnapshot().(*Snapshot)
	if snap.Batches != 1 || snap.BatchRPCs < shards {
		t.Errorf("batch counters off: %+v", snap)
	}
}

// TestCoordinatorGeneration: the cache-key generation probe moves when
// any local shard's shared index is invalidated, and reports the common
// (maximum) shard generation rather than a sum — so it agrees with the
// generation mutation fan-outs report.
func TestCoordinatorGeneration(t *testing.T) {
	g := tg.Path(20)
	ix := sharedIndex(t, g, 8)
	coord, err := NewLocal(g, core.Options{}, Modulo{}, 2, 1, ix, Config{})
	if err != nil {
		t.Fatal(err)
	}
	before := coord.Generation()
	ix.BumpGeneration()
	after := coord.Generation()
	if after <= before {
		t.Errorf("generation did not advance: %d -> %d", before, after)
	}
	// Both shards share one index: its generation IS the cluster's.
	if after != ix.Generation() {
		t.Errorf("coordinator generation %d, shared index at %d", after, ix.Generation())
	}
}
