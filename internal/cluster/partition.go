package cluster

import (
	"fmt"
	"sort"

	"rkranks/internal/graph"
)

// A Partitioner splits a graph's vertex set into disjoint shards. Shards
// partition the CANDIDATE class only: every shard still holds the whole
// graph (ranks are global shortest-path properties and cannot be computed
// from a subgraph), but answers queries for its own vertices alone, which
// divides the dominant query cost — the rank refinements — across shards.
type Partitioner interface {
	// Name is the canonical partitioner name ("modulo", "degree").
	Name() string
	// Masks returns one candidate mask per shard. The masks are disjoint
	// and cover every node, and the assignment is deterministic: every
	// process partitioning the same graph the same way agrees on shard
	// ownership, which is what lets remote rkserve shards be booted
	// independently with just a -shard i/P flag.
	Masks(g *graph.Graph, shards int) [][]bool
}

// Modulo assigns node v to shard v % P: zero-state, O(N), and perfectly
// balanced by node count. Degree skew (power-law graphs) can still leave
// one shard with most of the refinement work; DegreeBalanced addresses
// that.
type Modulo struct{}

// Name implements Partitioner.
func (Modulo) Name() string { return "modulo" }

// Masks implements Partitioner.
func (Modulo) Masks(g *graph.Graph, shards int) [][]bool {
	masks := newMasks(g.N(), shards)
	for v := 0; v < g.N(); v++ {
		masks[v%shards][v] = true
	}
	return masks
}

// DegreeBalanced assigns nodes to shards by greedy longest-processing-time
// scheduling on degree: nodes in decreasing degree order (ties by id) go
// to the shard with the smallest accumulated degree (ties by shard id).
// Refinement cost correlates with how central a candidate is, so balancing
// total degree balances per-shard query work far better than node counts
// on power-law graphs — the same motivation as ReHub's balanced hub
// partitions.
type DegreeBalanced struct{}

// Name implements Partitioner.
func (DegreeBalanced) Name() string { return "degree" }

// Masks implements Partitioner.
func (DegreeBalanced) Masks(g *graph.Graph, shards int) [][]bool {
	n := g.N()
	deg := make([]int64, n)
	for v := 0; v < n; v++ {
		deg[v] = int64(g.OutDegree(int32(v)))
		if g.Directed() {
			deg[v] += int64(g.InDegree(int32(v)))
		}
	}
	order := make([]int32, n)
	for v := range order {
		order[v] = int32(v)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if deg[a] != deg[b] {
			return deg[a] > deg[b]
		}
		return a < b
	})
	masks := newMasks(n, shards)
	load := make([]int64, shards)
	for _, v := range order {
		best := 0
		for s := 1; s < shards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		masks[best][v] = true
		// The +1 keeps zero-degree nodes spreading round-robin instead of
		// all landing on shard 0.
		load[best] += deg[v] + 1
	}
	return masks
}

func newMasks(n, shards int) [][]bool {
	if shards < 1 {
		panic(fmt.Sprintf("cluster: shard count %d < 1", shards))
	}
	masks := make([][]bool, shards)
	for i := range masks {
		masks[i] = make([]bool, n)
	}
	return masks
}

// ParsePartitioner resolves a user-facing name.
func ParsePartitioner(name string) (Partitioner, error) {
	switch name {
	case "", "modulo":
		return Modulo{}, nil
	case "degree":
		return DegreeBalanced{}, nil
	}
	return nil, fmt.Errorf("cluster: unknown partitioner %q (want modulo|degree)", name)
}

// ShardMask returns the candidate mask of one shard, optionally
// intersected with a global candidate class (bichromatic queries): a node
// is a candidate of shard i iff the partitioner assigns it there AND the
// global class admits it.
func ShardMask(g *graph.Graph, p Partitioner, shards, shard int, global []bool) ([]bool, error) {
	if shard < 0 || shard >= shards {
		return nil, fmt.Errorf("cluster: shard %d out of range [0,%d)", shard, shards)
	}
	if global != nil && len(global) != g.N() {
		return nil, fmt.Errorf("cluster: global candidate mask covers %d nodes, graph has %d", len(global), g.N())
	}
	mask := p.Masks(g, shards)[shard]
	if global != nil {
		for v := range mask {
			mask[v] = mask[v] && global[v]
		}
	}
	return mask, nil
}
