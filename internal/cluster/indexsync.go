package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"rkranks/internal/api"
	"rkranks/internal/obs"
	"rkranks/internal/ridx"
)

// Index replication, follower side: a cold-started replica bootstraps
// its dynamic index from a leader's /v1/index/snapshot and then keeps
// absorbing the leader's refinement deltas, so it serves with a warm
// index it never had to derive from its own traffic. All facts are
// exact and commute with local refinement (see ridx.Replicated), so the
// follower's own queries keep teaching its index while the stream runs,
// and it can itself lead further replicas.

// BootstrapIndex fetches a leader's index snapshot and returns it as a
// replication-ready index, along with the delta cursor and leader
// generation to hand to NewIndexFollower. logCap sizes the follower's
// own delta log (<= 0 for the default).
func BootstrapIndex(ctx context.Context, client *api.Client, logCap int) (*ridx.Replicated, uint64, uint64, error) {
	body, seq, gen, err := client.IndexSnapshot(ctx)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("cluster: index snapshot fetch: %w", err)
	}
	defer body.Close()
	sh, err := ridx.ReadSharded(body)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("cluster: index snapshot parse: %w", err)
	}
	repl := ridx.NewReplicated(sh, logCap)
	repl.RaiseGeneration(gen)
	return repl, seq, gen, nil
}

// IndexFollowerConfig tunes an IndexFollower. The zero value is sane.
type IndexFollowerConfig struct {
	// Interval is the delta poll period (<= 0 defaults to 2s).
	Interval time.Duration
	// Metrics records snapshot/delta progress counters (nil uses
	// standalone instruments).
	Metrics *obs.Metrics
	// Logger receives sync failures (nil stays silent; failures are
	// retried on the next tick either way).
	Logger *slog.Logger
}

// IndexFollower keeps a local replicated index converged with a
// leader's by polling /v1/index/deltas. When the leader's log no longer
// reaches the follower's cursor, or the leader's index generation
// changed, the follower falls back to a full snapshot re-sync (Absorb —
// sound because both sides serve the same immutable graph). Not safe
// for concurrent use; run one per index, typically via Run.
type IndexFollower struct {
	repl      *ridx.Replicated
	client    *api.Client
	cursor    uint64
	leaderGen uint64
	cfg       IndexFollowerConfig
	om        *obs.Metrics

	// lastResyncGen/resyncsAtGen detect a re-sync loop: repeated full
	// snapshot re-syncs at one unchanged leader generation mean the
	// incremental stream never gets a chance (e.g. the leader's delta
	// log truncates faster than the poll interval) and deserve a loud
	// log instead of silent churn.
	lastResyncGen uint64
	resyncsAtGen  int
}

// NewIndexFollower builds a follower resuming from cursor/leaderGen (as
// returned by BootstrapIndex, or 0/0 to start with a forced snapshot
// re-sync on the first poll).
func NewIndexFollower(repl *ridx.Replicated, client *api.Client, cursor, leaderGen uint64, cfg IndexFollowerConfig) *IndexFollower {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	om := cfg.Metrics
	if om == nil {
		om = obs.NewMetrics(nil)
	}
	return &IndexFollower{repl: repl, client: client, cursor: cursor, leaderGen: leaderGen, cfg: cfg, om: om}
}

// Cursor returns the next delta sequence the follower will request.
func (f *IndexFollower) Cursor() uint64 { return f.cursor }

// SyncOnce drains the leader's available deltas (possibly over several
// batches), returning how many were fetched and applied.
func (f *IndexFollower) SyncOnce(ctx context.Context) (applied int, err error) {
	for {
		if ctx.Err() != nil {
			return applied, ctx.Err()
		}
		resp, err := f.client.IndexDeltas(ctx, f.cursor, 0)
		if err != nil {
			return applied, err
		}
		if resp.SnapshotRequired || resp.IndexGeneration != f.leaderGen {
			if err := f.resync(ctx); err != nil {
				return applied, err
			}
			continue
		}
		ds, err := api.DecodeDeltas(resp.Deltas)
		if err != nil {
			return applied, err
		}
		f.repl.Apply(ds)
		f.repl.RaiseGeneration(resp.IndexGeneration)
		f.om.IndexDeltasApplied.Add(int64(len(ds)))
		applied += len(ds)
		f.cursor = resp.Next
		if len(resp.Deltas) == 0 {
			return applied, nil
		}
	}
}

// resync absorbs a full leader snapshot and resets the cursor: the
// recovery path when the incremental stream cannot continue.
func (f *IndexFollower) resync(ctx context.Context) error {
	body, seq, gen, err := f.client.IndexSnapshot(ctx)
	if err != nil {
		return fmt.Errorf("cluster: index re-sync fetch: %w", err)
	}
	defer body.Close()
	snap, err := ridx.Read(body)
	if err != nil {
		return fmt.Errorf("cluster: index re-sync parse: %w", err)
	}
	// A re-sync at the leader generation we last synced against (log
	// truncation) merges: every fact both sides hold is exact, so local
	// refinements survive. A leader-generation CHANGE means the leader
	// discarded its answer set — keeping local facts derived under the
	// old one would resurrect exactly the answers the invalidation
	// exists to retract, so discard first. The comparison is against the
	// last SYNCED leader generation, not the local index's: a leader
	// that restarted BEHIND the follower (its generation legitimately
	// restarts lower) must not trigger a discard — the local generation
	// can never be lowered to match (RaiseGeneration is monotonic), and
	// the local facts, derived under a generation at least as new, are
	// the fresher ones to keep; the older snapshot simply merges in.
	if gen != f.leaderGen && gen >= f.repl.Generation() {
		f.repl.Invalidate()
	}
	if gen == f.lastResyncGen {
		f.resyncsAtGen++
		if f.resyncsAtGen >= 3 && f.cfg.Logger != nil {
			f.cfg.Logger.Warn("index follower keeps falling back to full snapshot re-syncs at an unchanged leader generation; the leader's delta log may truncate faster than the poll interval",
				"leader_generation", gen, "consecutive_resyncs", f.resyncsAtGen)
		}
	} else {
		f.lastResyncGen, f.resyncsAtGen = gen, 1
	}
	f.repl.Absorb(snap)
	f.repl.RaiseGeneration(gen)
	f.cursor = seq
	f.leaderGen = gen
	f.om.IndexSnapshotsLoaded.Inc()
	return nil
}

// Run polls until ctx is done. Sync failures are logged (when a logger
// is configured) and retried on the next tick — a leader restart must
// not kill its followers.
func (f *IndexFollower) Run(ctx context.Context) {
	t := time.NewTicker(f.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if _, err := f.SyncOnce(ctx); err != nil && ctx.Err() == nil && f.cfg.Logger != nil {
				f.cfg.Logger.Warn("index delta sync failed; will retry", "err", err)
			}
		}
	}
}
