package cluster

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"rkranks/internal/core"
	"rkranks/internal/graph"
	"rkranks/internal/live"
	"rkranks/internal/obs"
	tg "rkranks/internal/testgraphs"
	"rkranks/internal/workload"
)

// flakyReplica wraps one replica with switchable query and mutation
// failures (atomics: the switches flip while the group races).
type flakyReplica struct {
	ShardBackend
	failQuery  atomic.Bool
	failMutate atomic.Bool
}

func (f *flakyReplica) Query(ctx context.Context, a core.Algorithm, q int32, k int) (*core.Result, error) {
	if f.failQuery.Load() {
		return nil, errors.New("injected replica failure")
	}
	return f.ShardBackend.Query(ctx, a, q, k)
}

func (f *flakyReplica) QueryBatch(ctx context.Context, a core.Algorithm, queries []int32, k int) ([]*core.Result, error) {
	if f.failQuery.Load() {
		return nil, errors.New("injected replica failure")
	}
	return f.ShardBackend.QueryBatch(ctx, a, queries, k)
}

func (f *flakyReplica) Mutate(ctx context.Context, ms []graph.Mutation) (live.MutateInfo, error) {
	if f.failMutate.Load() {
		return live.MutateInfo{}, errors.New("injected mutate failure")
	}
	return f.ShardBackend.(shardMutator).Mutate(ctx, ms)
}

func (f *flakyReplica) Generation() uint64 {
	if gp, ok := f.ShardBackend.(interface{ Generation() uint64 }); ok {
		return gp.Generation()
	}
	return 0
}

// replicatedCoordinator hand-builds a shards x 2 coordinator with
// replica 0 of every group wrapped in a flakyReplica, so tests can kill
// exactly one replica per group.
func replicatedCoordinator(t *testing.T, g *graph.Graph, shards int, liveMode bool, cfg Config) (*Coordinator, []*flakyReplica, []*ReplicaGroup) {
	t.Helper()
	var flakies []*flakyReplica
	var groups []*ReplicaGroup
	backends := make([]ShardBackend, shards)
	for i := 0; i < shards; i++ {
		members := make([]ShardBackend, 2)
		for r := 0; r < 2; r++ {
			var b ShardBackend
			var err error
			if liveMode {
				b, err = NewLiveShard(g, live.Config{PoolSize: 1}, Modulo{}, shards, i)
			} else {
				b, err = NewLocalShard(g, core.Options{}, Modulo{}, shards, i, 1, nil)
			}
			if err != nil {
				t.Fatal(err)
			}
			if r == 0 {
				fr := &flakyReplica{ShardBackend: b}
				flakies = append(flakies, fr)
				b = fr
			}
			members[r] = b
		}
		rg, err := NewReplicaGroup(members, cfg)
		if err != nil {
			t.Fatal(err)
		}
		groups = append(groups, rg)
		backends[i] = rg
	}
	coord, err := New(backends, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return coord, flakies, groups
}

// TestReplicaFailoverByteIdentity is the tentpole acceptance test: a
// 2-shard x 2-replica cluster answers byte-identically to a single-node
// pool — and never Partial — while one replica of EVERY group is down,
// while it recovers, and while the kill switch flips concurrently with
// a running batch (-race target).
func TestReplicaFailoverByteIdentity(t *testing.T) {
	g := tieHeavy(33, false, 80)
	om := obs.NewMetrics(nil)
	cfg := Config{Metrics: om, FailureThreshold: 1, RetryBackoff: time.Millisecond}
	coord, flakies, groups := replicatedCoordinator(t, g, 2, false, cfg)
	defer coord.Close()
	single := core.NewPool(g, core.Options{}, 2)
	queries := workload.Random(g, 24, 7)

	check := func(phase string) {
		t.Helper()
		results, err := coord.QueryMany(core.Dynamic, queries, 8)
		if err != nil {
			t.Fatalf("%s: %v", phase, err)
		}
		for i, q := range queries {
			want, err := single.Query(core.Dynamic, q, 8)
			if err != nil {
				t.Fatal(err)
			}
			if results[i].Partial {
				t.Fatalf("%s: q=%d flagged Partial despite a healthy sibling", phase, q)
			}
			if !entriesEqual(results[i].Entries, want.Entries) {
				t.Fatalf("%s: q=%d diverged:\n group  %v\n single %v", phase, q, results[i].Entries, want.Entries)
			}
		}
	}

	check("all replicas up")
	for _, f := range flakies {
		f.failQuery.Store(true)
	}
	check("one replica per group down")
	if om.ReplicaFailovers.Value() == 0 {
		t.Error("no failover was counted while a replica per group was down")
	}
	for _, f := range flakies {
		f.failQuery.Store(false)
	}
	time.Sleep(2 * time.Millisecond) // let the 1ms probe backoff expire
	check("replicas recovered")

	// Kill switch flipping mid-batch, racing the scatter.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			for _, f := range flakies {
				f.failQuery.Store(true)
			}
			time.Sleep(500 * time.Microsecond)
			for _, f := range flakies {
				f.failQuery.Store(false)
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()
	for round := 0; round < 5; round++ {
		check("mid-batch kill")
	}
	close(done)

	for i, rg := range groups {
		if n := rg.InRotation(); n == 0 {
			t.Errorf("group %d has no replica in rotation after recovery", i)
		}
	}
}

// TestReplicaGroupServingGeneration is the stale-replica cache-poisoning
// regression: while one replica lags behind by missed mutation batches,
// the group's Generation() — the response cache's key — must equal the
// SERVING replica's generation, every answer must be stamped with
// exactly that generation, and the lagging replica must stay out of
// rotation until catch-up replays what it missed.
func TestReplicaGroupServingGeneration(t *testing.T) {
	g := tg.Path(30)
	om := obs.NewMetrics(nil)
	cfg := Config{Metrics: om}
	ctx := context.Background()

	healthy, err := NewLiveShard(g, live.Config{PoolSize: 1}, Modulo{}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	lagBase, err := NewLiveShard(g, live.Config{PoolSize: 1}, Modulo{}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	lag := &flakyReplica{ShardBackend: lagBase}
	rg, err := NewReplicaGroup([]ShardBackend{healthy, lag}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := rg.Generation()
	if rg.InRotation() != 2 {
		t.Fatalf("fresh group rotation = %d, want 2", rg.InRotation())
	}

	// Two batches land while the lagging replica refuses mutations.
	lag.failMutate.Store(true)
	for i, w := range []float64{2.5, 3.5} {
		info, err := rg.Mutate(ctx, []graph.Mutation{graph.SetWeight(0, 1, w)})
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if info.Generation != base+uint64(i)+1 {
			t.Fatalf("batch %d advanced to generation %d, want %d", i, info.Generation, base+uint64(i)+1)
		}
	}
	serving := base + 2

	if got := rg.Generation(); got != serving {
		t.Fatalf("group generation = %d, want serving replica's %d", got, serving)
	}
	if rg.InRotation() != 1 {
		t.Fatalf("rotation = %d, want 1 (lagging replica excluded)", rg.InRotation())
	}
	// Every answer the group produces must carry the generation the
	// cache would key it under — a stale replica serving old answers
	// under the new key is exactly the poisoning this guards against.
	for q := int32(0); q < 6; q++ {
		res, err := rg.Query(ctx, core.Dynamic, q, 4)
		if err != nil {
			t.Fatal(err)
		}
		if res.Generation != rg.Generation() {
			t.Fatalf("q=%d served generation %d under cache key generation %d", q, res.Generation, rg.Generation())
		}
	}
	if lag.Generation() != base {
		t.Fatalf("lagging replica advanced to %d without catch-up", lag.Generation())
	}

	// Heal the replica: the next queries replay both missed batches (in
	// order, from the group's log) before it serves again.
	lag.failMutate.Store(false)
	for q := int32(0); q < 6 && rg.InRotation() < 2; q++ {
		if _, err := rg.Query(ctx, core.Dynamic, q, 4); err != nil {
			t.Fatal(err)
		}
	}
	if rg.InRotation() != 2 {
		t.Fatalf("rotation = %d after heal, want 2", rg.InRotation())
	}
	if lag.Generation() != serving {
		t.Fatalf("caught-up replica at generation %d, want %d", lag.Generation(), serving)
	}
	if om.ReplicaCatchups.Value() == 0 {
		t.Error("catch-up was not counted")
	}
}

// TestLiveReplicatedByteIdentity drives a 2x2 LIVE cluster through
// mutation batches and queries in lockstep with a single-node live
// store, killing one replica per group for the middle batches: answers
// must stay byte-identical and non-Partial throughout, and the revived
// replicas must catch up (replaying missed batches) before rejoining.
func TestLiveReplicatedByteIdentity(t *testing.T) {
	g := tg.Path(40)
	om := obs.NewMetrics(nil)
	cfg := Config{Metrics: om}
	ctx := context.Background()
	coord, flakies, groups := replicatedCoordinator(t, g, 2, true, cfg)
	defer coord.Close()
	single, err := live.NewStore(g, live.Config{PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	queries := workload.Random(g, 8, 11)

	check := func(round int) {
		t.Helper()
		for _, q := range queries {
			want, err := single.QueryContext(ctx, core.Dynamic, q, 5)
			if err != nil {
				t.Fatal(err)
			}
			got, err := coord.Query(core.Dynamic, q, 5)
			if err != nil {
				t.Fatalf("round %d q=%d: %v", round, q, err)
			}
			if got.Partial {
				t.Fatalf("round %d q=%d: Partial with healthy siblings", round, q)
			}
			if !entriesEqual(got.Entries, want.Entries) {
				t.Fatalf("round %d q=%d diverged:\n cluster %v\n single  %v", round, q, got.Entries, want.Entries)
			}
		}
	}

	for round := 0; round < 6; round++ {
		// Rounds 2-3 run with one replica per group refusing everything.
		if round == 2 {
			for _, f := range flakies {
				f.failQuery.Store(true)
				f.failMutate.Store(true)
			}
		}
		if round == 4 {
			for _, f := range flakies {
				f.failQuery.Store(false)
				f.failMutate.Store(false)
			}
		}
		batch := []graph.Mutation{graph.SetWeight(int32(round), int32(round)+1, float64(round)+2)}
		wantInfo, err := single.Mutate(ctx, batch)
		if err != nil {
			t.Fatal(err)
		}
		gotInfo, err := coord.Mutate(ctx, batch)
		if err != nil {
			t.Fatalf("round %d mutate: %v", round, err)
		}
		if gotInfo.Generation != wantInfo.Generation {
			t.Fatalf("round %d generation %d, want %d", round, gotInfo.Generation, wantInfo.Generation)
		}
		check(round)
	}

	// Post-heal queries must have driven catch-up on both groups.
	for i, rg := range groups {
		for q := int32(0); q < 8 && rg.InRotation() < 2; q++ {
			if _, err := rg.Query(ctx, core.Dynamic, q, 4); err != nil {
				t.Fatal(err)
			}
		}
		if rg.InRotation() != 2 {
			t.Errorf("group %d rotation = %d after heal, want 2", i, rg.InRotation())
		}
	}
	if om.ReplicaCatchups.Value() == 0 {
		t.Error("no catch-up was counted for the revived replicas")
	}
	check(99)
}

// TestCoordinatorMutateImmutableReplicaGroup: a replica group of
// immutable shards must surface ImmutableShardError (501) through the
// coordinator, not be miscounted as a generic mutation failure (503).
func TestCoordinatorMutateImmutableReplicaGroup(t *testing.T) {
	g := tg.Path(20)
	members := localShards(t, g, 2)
	rg, err := NewReplicaGroup(members, Config{})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := New([]ShardBackend{rg}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = coord.Mutate(context.Background(), []graph.Mutation{graph.SetWeight(0, 1, 2)})
	var ise *ImmutableShardError
	if !errors.As(err, &ise) {
		t.Fatalf("error = %v, want ImmutableShardError", err)
	}
}
