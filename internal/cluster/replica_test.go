package cluster

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"rkranks/internal/core"
	"rkranks/internal/graph"
	"rkranks/internal/live"
	"rkranks/internal/obs"
	tg "rkranks/internal/testgraphs"
	"rkranks/internal/workload"
)

// flakyReplica wraps one replica with switchable query and mutation
// failures (atomics: the switches flip while the group races).
type flakyReplica struct {
	ShardBackend
	failQuery  atomic.Bool
	failMutate atomic.Bool
}

func (f *flakyReplica) Query(ctx context.Context, a core.Algorithm, q int32, k int) (*core.Result, error) {
	if f.failQuery.Load() {
		return nil, errors.New("injected replica failure")
	}
	return f.ShardBackend.Query(ctx, a, q, k)
}

func (f *flakyReplica) QueryBatch(ctx context.Context, a core.Algorithm, queries []int32, k int) ([]*core.Result, error) {
	if f.failQuery.Load() {
		return nil, errors.New("injected replica failure")
	}
	return f.ShardBackend.QueryBatch(ctx, a, queries, k)
}

func (f *flakyReplica) Mutate(ctx context.Context, ms []graph.Mutation) (live.MutateInfo, error) {
	if f.failMutate.Load() {
		return live.MutateInfo{}, errors.New("injected mutate failure")
	}
	return f.ShardBackend.(shardMutator).Mutate(ctx, ms)
}

func (f *flakyReplica) Generation() uint64 {
	if gp, ok := f.ShardBackend.(interface{ Generation() uint64 }); ok {
		return gp.Generation()
	}
	return 0
}

// replicatedCoordinator hand-builds a shards x 2 coordinator with
// replica 0 of every group wrapped in a flakyReplica, so tests can kill
// exactly one replica per group.
func replicatedCoordinator(t *testing.T, g *graph.Graph, shards int, liveMode bool, cfg Config) (*Coordinator, []*flakyReplica, []*ReplicaGroup) {
	t.Helper()
	var flakies []*flakyReplica
	var groups []*ReplicaGroup
	backends := make([]ShardBackend, shards)
	for i := 0; i < shards; i++ {
		members := make([]ShardBackend, 2)
		for r := 0; r < 2; r++ {
			var b ShardBackend
			var err error
			if liveMode {
				b, err = NewLiveShard(g, live.Config{PoolSize: 1}, Modulo{}, shards, i)
			} else {
				b, err = NewLocalShard(g, core.Options{}, Modulo{}, shards, i, 1, nil)
			}
			if err != nil {
				t.Fatal(err)
			}
			if r == 0 {
				fr := &flakyReplica{ShardBackend: b}
				flakies = append(flakies, fr)
				b = fr
			}
			members[r] = b
		}
		rg, err := NewReplicaGroup(members, cfg)
		if err != nil {
			t.Fatal(err)
		}
		groups = append(groups, rg)
		backends[i] = rg
	}
	coord, err := New(backends, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return coord, flakies, groups
}

// TestReplicaFailoverByteIdentity is the tentpole acceptance test: a
// 2-shard x 2-replica cluster answers byte-identically to a single-node
// pool — and never Partial — while one replica of EVERY group is down,
// while it recovers, and while the kill switch flips concurrently with
// a running batch (-race target).
func TestReplicaFailoverByteIdentity(t *testing.T) {
	g := tieHeavy(33, false, 80)
	om := obs.NewMetrics(nil)
	cfg := Config{Metrics: om, FailureThreshold: 1, RetryBackoff: time.Millisecond}
	coord, flakies, groups := replicatedCoordinator(t, g, 2, false, cfg)
	defer coord.Close()
	single := core.NewPool(g, core.Options{}, 2)
	queries := workload.Random(g, 24, 7)

	check := func(phase string) {
		t.Helper()
		results, err := coord.QueryMany(core.Dynamic, queries, 8)
		if err != nil {
			t.Fatalf("%s: %v", phase, err)
		}
		for i, q := range queries {
			want, err := single.Query(core.Dynamic, q, 8)
			if err != nil {
				t.Fatal(err)
			}
			if results[i].Partial {
				t.Fatalf("%s: q=%d flagged Partial despite a healthy sibling", phase, q)
			}
			if !entriesEqual(results[i].Entries, want.Entries) {
				t.Fatalf("%s: q=%d diverged:\n group  %v\n single %v", phase, q, results[i].Entries, want.Entries)
			}
		}
	}

	check("all replicas up")
	for _, f := range flakies {
		f.failQuery.Store(true)
	}
	check("one replica per group down")
	if om.ReplicaFailovers.Value() == 0 {
		t.Error("no failover was counted while a replica per group was down")
	}
	for _, f := range flakies {
		f.failQuery.Store(false)
	}
	time.Sleep(2 * time.Millisecond) // let the 1ms probe backoff expire
	check("replicas recovered")

	// Kill switch flipping mid-batch, racing the scatter.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			for _, f := range flakies {
				f.failQuery.Store(true)
			}
			time.Sleep(500 * time.Microsecond)
			for _, f := range flakies {
				f.failQuery.Store(false)
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()
	for round := 0; round < 5; round++ {
		check("mid-batch kill")
	}
	close(done)

	for i, rg := range groups {
		if n := rg.InRotation(); n == 0 {
			t.Errorf("group %d has no replica in rotation after recovery", i)
		}
	}
}

// TestReplicaGroupServingGeneration is the stale-replica cache-poisoning
// regression: while one replica lags behind by missed mutation batches,
// the group's Generation() — the response cache's key — must equal the
// SERVING replica's generation, every answer must be stamped with
// exactly that generation, and the lagging replica must stay out of
// rotation until catch-up replays what it missed.
func TestReplicaGroupServingGeneration(t *testing.T) {
	g := tg.Path(30)
	om := obs.NewMetrics(nil)
	cfg := Config{Metrics: om}
	ctx := context.Background()

	healthy, err := NewLiveShard(g, live.Config{PoolSize: 1}, Modulo{}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	lagBase, err := NewLiveShard(g, live.Config{PoolSize: 1}, Modulo{}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	lag := &flakyReplica{ShardBackend: lagBase}
	rg, err := NewReplicaGroup([]ShardBackend{healthy, lag}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := rg.Generation()
	if rg.InRotation() != 2 {
		t.Fatalf("fresh group rotation = %d, want 2", rg.InRotation())
	}

	// Two batches land while the lagging replica refuses mutations.
	lag.failMutate.Store(true)
	for i, w := range []float64{2.5, 3.5} {
		info, err := rg.Mutate(ctx, []graph.Mutation{graph.SetWeight(0, 1, w)})
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if info.Generation != base+uint64(i)+1 {
			t.Fatalf("batch %d advanced to generation %d, want %d", i, info.Generation, base+uint64(i)+1)
		}
	}
	serving := base + 2

	if got := rg.Generation(); got != serving {
		t.Fatalf("group generation = %d, want serving replica's %d", got, serving)
	}
	if rg.InRotation() != 1 {
		t.Fatalf("rotation = %d, want 1 (lagging replica excluded)", rg.InRotation())
	}
	// Every answer the group produces must carry the generation the
	// cache would key it under — a stale replica serving old answers
	// under the new key is exactly the poisoning this guards against.
	for q := int32(0); q < 6; q++ {
		res, err := rg.Query(ctx, core.Dynamic, q, 4)
		if err != nil {
			t.Fatal(err)
		}
		if res.Generation != rg.Generation() {
			t.Fatalf("q=%d served generation %d under cache key generation %d", q, res.Generation, rg.Generation())
		}
	}
	if lag.Generation() != base {
		t.Fatalf("lagging replica advanced to %d without catch-up", lag.Generation())
	}

	// Heal the replica: the next queries replay both missed batches (in
	// order, from the group's log) before it serves again.
	lag.failMutate.Store(false)
	for q := int32(0); q < 6 && rg.InRotation() < 2; q++ {
		if _, err := rg.Query(ctx, core.Dynamic, q, 4); err != nil {
			t.Fatal(err)
		}
	}
	if rg.InRotation() != 2 {
		t.Fatalf("rotation = %d after heal, want 2", rg.InRotation())
	}
	if lag.Generation() != serving {
		t.Fatalf("caught-up replica at generation %d, want %d", lag.Generation(), serving)
	}
	if om.ReplicaCatchups.Value() == 0 {
		t.Error("catch-up was not counted")
	}
}

// TestLiveReplicatedByteIdentity drives a 2x2 LIVE cluster through
// mutation batches and queries in lockstep with a single-node live
// store, killing one replica per group for the middle batches: answers
// must stay byte-identical and non-Partial throughout, and the revived
// replicas must catch up (replaying missed batches) before rejoining.
func TestLiveReplicatedByteIdentity(t *testing.T) {
	g := tg.Path(40)
	om := obs.NewMetrics(nil)
	cfg := Config{Metrics: om}
	ctx := context.Background()
	coord, flakies, groups := replicatedCoordinator(t, g, 2, true, cfg)
	defer coord.Close()
	single, err := live.NewStore(g, live.Config{PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	queries := workload.Random(g, 8, 11)

	check := func(round int) {
		t.Helper()
		for _, q := range queries {
			want, err := single.QueryContext(ctx, core.Dynamic, q, 5)
			if err != nil {
				t.Fatal(err)
			}
			got, err := coord.Query(core.Dynamic, q, 5)
			if err != nil {
				t.Fatalf("round %d q=%d: %v", round, q, err)
			}
			if got.Partial {
				t.Fatalf("round %d q=%d: Partial with healthy siblings", round, q)
			}
			if !entriesEqual(got.Entries, want.Entries) {
				t.Fatalf("round %d q=%d diverged:\n cluster %v\n single  %v", round, q, got.Entries, want.Entries)
			}
		}
	}

	for round := 0; round < 6; round++ {
		// Rounds 2-3 run with one replica per group refusing everything.
		if round == 2 {
			for _, f := range flakies {
				f.failQuery.Store(true)
				f.failMutate.Store(true)
			}
		}
		if round == 4 {
			for _, f := range flakies {
				f.failQuery.Store(false)
				f.failMutate.Store(false)
			}
		}
		batch := []graph.Mutation{graph.SetWeight(int32(round), int32(round)+1, float64(round)+2)}
		wantInfo, err := single.Mutate(ctx, batch)
		if err != nil {
			t.Fatal(err)
		}
		gotInfo, err := coord.Mutate(ctx, batch)
		if err != nil {
			t.Fatalf("round %d mutate: %v", round, err)
		}
		if gotInfo.Generation != wantInfo.Generation {
			t.Fatalf("round %d generation %d, want %d", round, gotInfo.Generation, wantInfo.Generation)
		}
		check(round)
	}

	// Post-heal queries must have driven catch-up on both groups.
	for i, rg := range groups {
		for q := int32(0); q < 8 && rg.InRotation() < 2; q++ {
			if _, err := rg.Query(ctx, core.Dynamic, q, 4); err != nil {
				t.Fatal(err)
			}
		}
		if rg.InRotation() != 2 {
			t.Errorf("group %d rotation = %d after heal, want 2", i, rg.InRotation())
		}
	}
	if om.ReplicaCatchups.Value() == 0 {
		t.Error("no catch-up was counted for the revived replicas")
	}
	check(99)
}

// TestReplicaGroupAllTrippedRecovery: when EVERY replica is tripped the
// serving generation must fall back to the replicas' actual generations
// instead of 0 — otherwise every half-open probe sees a generation
// mismatch, is released without issuing a call (so record(true) never
// runs), and the group stays down forever even after the replicas
// recover (regression).
func TestReplicaGroupAllTrippedRecovery(t *testing.T) {
	g := tg.Path(20)
	cfg := Config{FailureThreshold: 1, RetryBackoff: time.Millisecond}
	ctx := context.Background()
	var flakies []*flakyReplica
	members := make([]ShardBackend, 2)
	for r := range members {
		b, err := NewLiveShard(g, live.Config{PoolSize: 1}, Modulo{}, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		fr := &flakyReplica{ShardBackend: b}
		flakies = append(flakies, fr)
		members[r] = fr
	}
	rg, err := NewReplicaGroup(members, cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, f := range flakies {
		f.failQuery.Store(true)
	}
	// One query attempts (and trips) every replica: threshold 1.
	if _, err := rg.Query(ctx, core.Dynamic, 0, 3); err == nil {
		t.Fatal("query succeeded with every replica failing")
	}
	// The all-tripped group must keep reporting the replicas' real
	// generation (live stores start at 1), or recovery probes can never
	// match the target.
	if gen := rg.Generation(); gen == 0 {
		t.Fatal("all-tripped group reports generation 0; probes can never match it")
	}

	for _, f := range flakies {
		f.failQuery.Store(false)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := rg.Query(ctx, core.Dynamic, 0, 3); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("group never recovered after every replica healed")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReplicaGroupRegressedGenerationMutate: when the sole replica
// holding the newest batches trips, the serving generation regresses.
// Mutations must then be REFUSED (minting the next generation number
// again would collide with an already-logged batch of different
// content), the tripped up-to-date replica's probe must still execute
// real calls (it is ahead of the regressed target, not stale), and once
// the group re-converges mutations resume with every logged generation
// unique.
func TestReplicaGroupRegressedGenerationMutate(t *testing.T) {
	g := tg.Path(30)
	om := obs.NewMetrics(nil)
	// Threshold 3: the lagging replica collects mutate-failure penalties
	// (one per directly-fanned batch) and must stay HEALTHY-but-lagging,
	// while query failures trip the up-to-date replica.
	cfg := Config{Metrics: om, FailureThreshold: 3, RetryBackoff: time.Millisecond}
	ctx := context.Background()
	mk := func() *flakyReplica {
		t.Helper()
		b, err := NewLiveShard(g, live.Config{PoolSize: 1}, Modulo{}, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		return &flakyReplica{ShardBackend: b}
	}
	up, lag := mk(), mk()
	rg, err := NewReplicaGroup([]ShardBackend{up, lag}, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Two batches land on the up-to-date replica only.
	lag.failMutate.Store(true)
	for i := 0; i < 2; i++ {
		if _, err := rg.Mutate(ctx, []graph.Mutation{graph.SetWeight(0, 1, float64(i) + 2)}); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	if up.Generation() != 3 || lag.Generation() != 1 {
		t.Fatalf("generations up=%d lag=%d, want 3/1", up.Generation(), lag.Generation())
	}

	// Trip the up-to-date replica (three consecutive failures): the
	// lagging sibling cannot catch up (it still refuses replay), so every
	// query fails, and the serving generation regresses to the sibling's.
	up.failQuery.Store(true)
	for i := 0; i < 3; i++ {
		if _, err := rg.Query(ctx, core.Dynamic, 0, 3); err == nil {
			t.Fatal("query succeeded though the up-to-date replica fails and the sibling cannot catch up")
		}
	}
	if got := rg.Generation(); got != 1 {
		t.Fatalf("regressed serving generation = %d, want 1", got)
	}

	// The regressed group must refuse mutations: the lagging replica
	// still refuses catch-up replay, and generation 2 is already logged.
	var gre *GroupRegressedError
	if _, err := rg.Mutate(ctx, []graph.Mutation{graph.SetWeight(1, 2, 9)}); !errors.As(err, &gre) {
		t.Fatalf("mutation on regressed group: err = %v, want GroupRegressedError", err)
	}

	// The tripped replica sits AHEAD of the regressed target; its probe
	// must still issue real calls so it can recover — not be skipped on
	// the generation mismatch forever.
	up.failQuery.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for rg.Generation() != 3 {
		if _, err := rg.Query(ctx, core.Dynamic, 0, 3); err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("tripped up-to-date replica never recovered; serving generation stuck below its own")
		}
		time.Sleep(time.Millisecond)
	}

	// Once replay is accepted again, the next mutation first catches the
	// lagging replica up from the batch log, then applies everywhere.
	lag.failMutate.Store(false)
	info, err := rg.Mutate(ctx, []graph.Mutation{graph.SetWeight(1, 2, 9)})
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 4 {
		t.Fatalf("post-recovery batch advanced to generation %d, want 4", info.Generation)
	}
	if up.Generation() != 4 || lag.Generation() != 4 {
		t.Fatalf("generations up=%d lag=%d after recovery, want 4/4", up.Generation(), lag.Generation())
	}
	if om.ReplicaCatchups.Value() == 0 {
		t.Error("catch-up replay was not counted")
	}

	// The collision this all guards against: every logged generation
	// holds exactly one batch.
	rg.muMu.Lock()
	seen := map[uint64]bool{}
	for _, b := range rg.mulog {
		if seen[b.gen] {
			t.Errorf("generation %d logged twice with different content", b.gen)
		}
		seen[b.gen] = true
	}
	rg.muMu.Unlock()
}

// ghostFailReplica applies mutation batches but reports a transport
// failure AFTER the inner backend committed — the "response lost on the
// wire" case.
type ghostFailReplica struct {
	ShardBackend
	fail  atomic.Bool
	calls atomic.Int32
}

func (m *ghostFailReplica) Mutate(ctx context.Context, ms []graph.Mutation) (live.MutateInfo, error) {
	m.calls.Add(1)
	info, err := m.ShardBackend.(shardMutator).Mutate(ctx, ms)
	if err == nil && m.fail.Load() {
		return live.MutateInfo{}, errors.New("transport dropped the committed response")
	}
	return info, err
}

func (m *ghostFailReplica) Generation() uint64 {
	return m.ShardBackend.(interface{ Generation() uint64 }).Generation()
}

// TestReplicaGroupMutateAppliedDespiteError: a replica that APPLIES a
// batch but fails to deliver the response must not have the batch
// re-sent — that would double-apply it and advance the replica two
// generations ahead of its siblings, with no catch-up batch for the
// hole (regression). The retry guard probes the generation instead.
func TestReplicaGroupMutateAppliedDespiteError(t *testing.T) {
	g := tg.Path(20)
	ctx := context.Background()
	mk := func() ShardBackend {
		t.Helper()
		b, err := NewLiveShard(g, live.Config{PoolSize: 1}, Modulo{}, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	ghost := &ghostFailReplica{ShardBackend: mk()}
	ghost.fail.Store(true)
	rg, err := NewReplicaGroup([]ShardBackend{ghost, mk()}, Config{})
	if err != nil {
		t.Fatal(err)
	}

	info, err := rg.Mutate(ctx, []graph.Mutation{graph.SetWeight(0, 1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if got := ghost.calls.Load(); got != 1 {
		t.Fatalf("batch sent %d times to the failing replica, want 1 (re-sending double-applies)", got)
	}
	if info.Generation != 2 {
		t.Fatalf("batch advanced to generation %d, want 2", info.Generation)
	}
	if ghost.Generation() != 2 {
		t.Fatalf("ghost replica at generation %d, want 2 (exactly one apply)", ghost.Generation())
	}
}

// TestCoordinatorMutateImmutableReplicaGroup: a replica group of
// immutable shards must surface ImmutableShardError (501) through the
// coordinator, not be miscounted as a generic mutation failure (503).
func TestCoordinatorMutateImmutableReplicaGroup(t *testing.T) {
	g := tg.Path(20)
	members := localShards(t, g, 2)
	rg, err := NewReplicaGroup(members, Config{})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := New([]ShardBackend{rg}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = coord.Mutate(context.Background(), []graph.Mutation{graph.SetWeight(0, 1, 2)})
	var ise *ImmutableShardError
	if !errors.As(err, &ise) {
		t.Fatalf("error = %v, want ImmutableShardError", err)
	}
}
