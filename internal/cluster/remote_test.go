package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"rkranks/internal/core"
	"rkranks/internal/gen"
	"rkranks/internal/graph"
	"rkranks/internal/server"
	tg "rkranks/internal/testgraphs"
	"rkranks/internal/workload"
)

// bootShardServer serves one vertex shard over real HTTP: a masked pool
// behind internal/server with the shard spec published on /healthz,
// exactly what `rkserve -shard i/P` runs.
func bootShardServer(t *testing.T, g *graph.Graph, part Partitioner, shards, shard int) *httptest.Server {
	t.Helper()
	mask, err := ShardMask(g, part, shards, shard, nil)
	if err != nil {
		t.Fatal(err)
	}
	pool := core.NewPool(g, core.Options{Candidates: mask}, 2)
	srv, err := server.New(server.Config{
		Pool:  pool,
		Graph: g,
		HealthExtra: map[string]any{
			"shard":             fmt.Sprintf("%d/%d", shard, shards),
			"shard_partitioner": part.Name(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestRemoteShardEquivalence runs the scatter-gather over real HTTP shard
// backends and checks byte-identity with single-node results.
func TestRemoteShardEquivalence(t *testing.T) {
	g := gen.DBLPLike(gen.DBLPLikeParams{Nodes: 200, AttachPerNode: 4, ExtraCollabFactor: 0.5, Seed: 3})
	const shards = 2
	backends := make([]ShardBackend, shards)
	for i := 0; i < shards; i++ {
		ts := bootShardServer(t, g, Modulo{}, shards, i)
		rs, err := NewRemoteShard(context.Background(), ts.URL, RemoteExpect{
			Nodes: g.N(), Shard: fmt.Sprintf("%d/%d", i, shards), Partitioner: "modulo",
		})
		if err != nil {
			t.Fatal(err)
		}
		backends[i] = rs
	}
	coord, err := New(backends, Config{})
	if err != nil {
		t.Fatal(err)
	}
	single := core.NewPool(g, core.Options{}, 2)
	for _, q := range workload.Random(g, 5, 7) {
		for _, k := range []int{1, 4, 12} {
			want, err := single.Query(core.Dynamic, q, k)
			if err != nil {
				t.Fatal(err)
			}
			got, err := coord.Query(core.Dynamic, q, k)
			if err != nil {
				t.Fatalf("q=%d k=%d: %v", q, k, err)
			}
			if !entriesEqual(got.Entries, want.Entries) {
				t.Fatalf("q=%d k=%d diverged over HTTP:\n cluster %v\n single  %v", q, k, got.Entries, want.Entries)
			}
		}
	}
	// Wire errors map back to the typed family: a bad k is the caller's
	// fault, not a shard failure.
	if _, err := coord.Query(core.Indexed, 0, 5); !errors.Is(err, core.ErrInvalidArgument) {
		t.Errorf("indexed on index-free remote shards: %v", err)
	}
}

// TestRemoteShardRejectsMisconfiguration: wrong graph, duplicated or
// swapped shard specs, full-graph backends, and partitioner mismatches
// are all refused at dial time — every one of them would otherwise merge
// silently wrong (overlapping or missing candidate classes).
func TestRemoteShardRejectsMisconfiguration(t *testing.T) {
	g := tg.Path(50)
	ts := bootShardServer(t, g, Modulo{}, 2, 0) // publishes shard 0/2, modulo
	cases := map[string]RemoteExpect{
		"wrong node count":     {Nodes: 51},
		"swapped shard index":  {Nodes: 50, Shard: "1/2"},
		"wrong shard count":    {Nodes: 50, Shard: "0/4"},
		"wrong partitioner":    {Nodes: 50, Shard: "0/2", Partitioner: "degree"},
		"full-graph expected?": {Nodes: 50, Shard: "0/1"},
	}
	for name, expect := range cases {
		if _, err := NewRemoteShard(context.Background(), ts.URL, expect); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := NewRemoteShard(context.Background(), ts.URL, RemoteExpect{
		Nodes: 50, Shard: "0/2", Partitioner: "modulo",
	}); err != nil {
		t.Fatalf("matching shard refused: %v", err)
	}
	// A backend WITHOUT a published shard spec (plain rkserve) must be
	// refused when the coordinator expects shard ownership.
	plain := httptest.NewServer(func() *server.Server {
		srv, err := server.New(server.Config{Pool: core.NewPool(g, core.Options{}, 1), Graph: g})
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}().Handler())
	t.Cleanup(plain.Close)
	if _, err := NewRemoteShard(context.Background(), plain.URL, RemoteExpect{Nodes: 50, Shard: "0/2"}); err == nil {
		t.Error("full-graph backend accepted as shard 0/2")
	}
	if _, err := NewRemoteShard(context.Background(), plain.URL, RemoteExpect{Nodes: 50}); err != nil {
		t.Errorf("single-backend degenerate cluster refused: %v", err)
	}
}

// fakeShard serves /healthz like a real shard but sheds every query with
// 429 and a fixed Retry-After.
func fakeOverloadedShard(t *testing.T, nodes, retryAfterSec int) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"status":"ok","graph_nodes":` +
			itoa(nodes) + `,"pool_size":2,"indexed":false}`))
	})
	mux.HandleFunc("POST /v1/query", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", itoa(retryAfterSec))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = w.Write([]byte(`{"error":"overloaded","code":"overloaded"}`))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestCoordinatorPropagatesMaxRetryAfter: when several shards shed with
// 429, the coordinator's error carries the MAXIMUM shard hint — never its
// own estimate, never the minimum.
func TestCoordinatorPropagatesMaxRetryAfter(t *testing.T) {
	g := tg.Path(40)
	healthy := bootShardServer(t, g, Modulo{}, 3, 0)
	slow := fakeOverloadedShard(t, g.N(), 7)
	fast := fakeOverloadedShard(t, g.N(), 3)

	backends := make([]ShardBackend, 0, 3)
	for _, url := range []string{healthy.URL, slow.URL, fast.URL} {
		rs, err := NewRemoteShard(context.Background(), url, RemoteExpect{Nodes: g.N()})
		if err != nil {
			t.Fatal(err)
		}
		backends = append(backends, rs)
	}
	coord, err := New(backends, Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = coord.Query(core.Dynamic, 1, 5)
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("error = %v, want OverloadedError", err)
	}
	if oe.RetryAfter != 7*time.Second {
		t.Errorf("RetryAfter = %v, want the max shard hint 7s", oe.RetryAfter)
	}
	if len(oe.Shards) != 2 {
		t.Errorf("overloaded shards = %v, want both fakes", oe.Shards)
	}
	// Overload must not trip health tracking: the shards stay available.
	snap := coord.ClusterSnapshot().(*Snapshot)
	for _, s := range snap.Shards {
		if !s.Available {
			t.Errorf("shard %d tripped by 429s", s.ID)
		}
	}
}
