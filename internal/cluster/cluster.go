// Package cluster serves reverse k-ranks queries across multiple shard
// backends: the cross-process scaling layer the ROADMAP points at, built
// behind the exact query semantics of internal/core and the wire contract
// of internal/server.
//
// # Why vertex shards work
//
// Rank(p, q) is a global shortest-path property — it cannot be computed
// from a subgraph — so the graph itself is not partitioned. What IS
// partitioned is the candidate class: shard i answers queries for its own
// vertices only (an Options.Candidates mask), which divides the dominant
// query cost, the per-candidate rank refinements, across shards. Every
// shard still holds the whole graph, like the partitioned hub labelings
// of ReHub partition label work rather than topology.
//
// # Scatter-gather with rank-floor pruning
//
// The coordinator fans a query out to all P shards at a reduced result
// size k0 ~ k/P + slack. Because results are canonical (the minimum k0
// entries by (rank, node id) — see core.Result), a full shard answer
// certifies a rank floor: every candidate the shard withheld orders
// strictly after its last returned entry. After merging round one, a
// shard whose floor clears the merged k-th entry can be short-circuited —
// none of its remaining candidates can enter the global top-k — and only
// the rest are re-fetched at full k. Boundary ties are handled exactly:
// floors and cutoffs compare as (rank, node id) pairs, so a withheld
// candidate that would tie-break into the result always forces the
// escalation. Two rounds always suffice: a full-k shard answer's floor
// clears any merged cutoff by construction.
//
// The merged result is therefore byte-identical to a single-node
// Pool.Query over the unsharded candidate class, for all four algorithms,
// while transferring far fewer than P*k entries per query.
//
// # Degradation
//
// Per-shard health tracking trips a backend after consecutive failures
// and retries it after a backoff. Under Config.StrictConsistency a query
// touching an unavailable shard fails with ErrShardUnavailable (HTTP
// 503); in the default degraded mode the coordinator answers from the
// healthy shards and marks the result Partial. Shard 429s are aggregated
// into an OverloadedError carrying the MAXIMUM shard Retry-After.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rkranks/internal/core"
	"rkranks/internal/graph"
	"rkranks/internal/live"
	"rkranks/internal/obs"
	"rkranks/internal/ridx"
)

// firstRoundSlack pads the auto first-round k above the uniform share
// k/P: candidate quality is never perfectly uniform across shards, and a
// couple of spare entries per shard prevent most escalations.
const firstRoundSlack = 2

// Config tunes a Coordinator. The zero value is production-sane.
type Config struct {
	// StrictConsistency refuses queries (ErrShardUnavailable, HTTP 503)
	// whenever any shard is unavailable, instead of answering partially.
	StrictConsistency bool

	// FirstRoundK overrides the size of the first scatter round
	// (0 = auto: ceil(k/P) + 2, capped at k). Values >= k disable
	// rank-floor pruning — every shard then answers at full k in one
	// round.
	FirstRoundK int

	// NaiveGather forces the single-round full-k scatter, the baseline
	// the serving_cluster experiment compares rank-floor pruning against.
	NaiveGather bool

	// PerQueryScatter disables batch scatter: QueryManyContext scatters
	// every query of a batch independently (one RPC per shard PER QUERY,
	// the pre-batch baseline the serving_batch experiment compares
	// against) instead of one RPC per shard per batch.
	PerQueryScatter bool

	// FailureThreshold is how many consecutive failures trip a shard
	// (<= 0 defaults to 3).
	FailureThreshold int

	// RetryBackoff is how long a tripped shard is skipped before the
	// next query probes it again (<= 0 defaults to 5s).
	RetryBackoff time.Duration

	// Metrics backs the coordinator counters with the shared instrument
	// catalog, so /metrics and the /statsz cluster section read the same
	// storage. Nil uses standalone (unregistered) instruments.
	Metrics *obs.Metrics
}

func (c *Config) failureThreshold() int {
	if c.FailureThreshold <= 0 {
		return 3
	}
	return c.FailureThreshold
}

func (c *Config) retryBackoff() time.Duration {
	if c.RetryBackoff <= 0 {
		return 5 * time.Second
	}
	return c.RetryBackoff
}

// shardHealth is one backend's failure tracking: consecutive failures
// trip it for a backoff window; after the window, exactly ONE query at a
// time is admitted as the half-open probe (claimProbe) while everyone
// else keeps skipping the shard — a tripped backend under heavy traffic
// must not absorb the whole query population's connect latency the
// instant its backoff expires.
type shardHealth struct {
	mu        sync.Mutex
	fails     int
	downUntil time.Time
	probing   bool
}

// claimProbe reports whether a query may use the shard, claiming the
// half-open probe slot when the shard is tripped but due for one.
func (h *shardHealth) claimProbe(now time.Time, threshold int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.fails < threshold {
		return true
	}
	if now.After(h.downUntil) && !h.probing {
		h.probing = true
		return true
	}
	return false
}

// healthy is the read-only view for /statsz: it never claims the probe.
func (h *shardHealth) healthy(threshold int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fails < threshold
}

// releaseProbe returns an unused probe claim (a query refused before
// scattering). Harmless on shards that were simply healthy.
func (h *shardHealth) releaseProbe() {
	h.mu.Lock()
	h.probing = false
	h.mu.Unlock()
}

func (h *shardHealth) record(ok bool, threshold int, backoff time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.probing = false
	if ok {
		h.fails = 0
		return
	}
	h.fails++
	if h.fails >= threshold {
		h.downUntil = time.Now().Add(backoff)
	}
}

// Coordinator scatters reverse k-ranks queries across shard backends and
// merges the answers with rank-floor pruning. It implements the
// server.Backend interface, so internal/server serves a cluster through
// the unchanged /v1/query contract. Safe for concurrent use.
type Coordinator struct {
	backends []ShardBackend
	cfg      Config
	health   []shardHealth
	metrics  *metrics
	closed   atomic.Bool

	// mutateMu serializes cluster-wide mutation batches so shard
	// generations advance in lockstep: batch n lands everywhere before
	// batch n+1 starts anywhere.
	mutateMu sync.Mutex
}

// New builds a coordinator over the given shard backends. The backends
// must partition one graph's candidate class between them (NewLocalShard
// and rkserve -shard both derive masks from the same deterministic
// partitioners, so agreeing on (partitioner, P) is enough).
func New(backends []ShardBackend, cfg Config) (*Coordinator, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("cluster: at least one shard backend is required")
	}
	return &Coordinator{
		backends: backends,
		cfg:      cfg,
		health:   make([]shardHealth, len(backends)),
		metrics:  newMetrics(len(backends), cfg.Metrics),
	}, nil
}

// NewLocal builds an in-process cluster: one masked engine pool per shard
// over g, all sharing ix when non-nil (exactly like a single NewPoolWithIndex
// pool, just partitioned). poolSize sizes each shard's pool (<= 0 derives
// a default that splits the machine across shards).
func NewLocal(g *graph.Graph, opts core.Options, part Partitioner, shards, poolSize int, ix ridx.Index, cfg Config) (*Coordinator, error) {
	if part == nil {
		part = Modulo{}
	}
	backends := make([]ShardBackend, shards)
	for i := 0; i < shards; i++ {
		ls, err := NewLocalShard(g, opts, part, shards, i, poolSize, ix)
		if err != nil {
			return nil, err
		}
		backends[i] = ls
	}
	return New(backends, cfg)
}

// NewLocalLive builds an in-process MUTABLE cluster: one live store per
// vertex shard over g, each owning its masked candidate class, pool, and
// (when indexMaxK > 0) its own empty concurrency-safe index that learns
// from the shard's traffic. base carries the shared live configuration;
// its Index and CandidateFunc fields are overwritten per shard (live
// shards cannot share one index — each store swaps in a fresh one on
// topology rebuilds). The coordinator's Mutate fans batches to every
// shard.
func NewLocalLive(g *graph.Graph, base live.Config, indexMaxK int, part Partitioner, shards int, cfg Config) (*Coordinator, error) {
	if part == nil {
		part = Modulo{}
	}
	backends := make([]ShardBackend, shards)
	for i := 0; i < shards; i++ {
		shardCfg := base
		if indexMaxK > 0 {
			shardCfg.Index = ridx.NewSharded(g.N(), indexMaxK)
		}
		ls, err := NewLiveShard(g, shardCfg, part, shards, i)
		if err != nil {
			return nil, err
		}
		backends[i] = ls
	}
	return New(backends, cfg)
}

// ShardCount returns the number of shard backends.
func (c *Coordinator) ShardCount() int { return len(c.backends) }

// Size implements server.Backend: the cluster's concurrent-query capacity
// is its bottleneck shard's, since every query occupies one engine slot
// on every shard.
func (c *Coordinator) Size() int {
	size := c.backends[0].Size()
	for _, b := range c.backends[1:] {
		if s := b.Size(); s < size {
			size = s
		}
	}
	if size < 1 {
		size = 1
	}
	return size
}

// Indexed implements server.Backend: Indexed queries are serveable only
// when every shard has an index.
func (c *Coordinator) Indexed() bool {
	for _, b := range c.backends {
		if !b.Indexed() {
			return false
		}
	}
	return true
}

// HubLabeled implements the serving-layer capability probe: HubLabel
// queries are serveable only when every shard holds a hub labeling.
func (c *Coordinator) HubLabeled() bool {
	for _, b := range c.backends {
		hl, ok := b.(interface{ HubLabeled() bool })
		if !ok || !hl.HubLabeled() {
			return false
		}
	}
	return true
}

// HubLabelBytes implements the /statsz footprint probe: the sum of the
// shard labelings' footprints (remote shards, which do not expose one,
// contribute 0 — their bytes live in their own /statsz).
func (c *Coordinator) HubLabelBytes() int64 {
	var total int64
	for _, b := range c.backends {
		if hb, ok := b.(interface{ HubLabelBytes() int64 }); ok {
			total += hb.HubLabelBytes()
		}
	}
	return total
}

// Generation implements the response-cache answer-set-generation probe:
// the maximum of the shard backends' generations (remote shards, which
// do not expose one, contribute 0). Mutation fan-outs keep live shards
// in lockstep, so in the healthy state this IS the cluster's common
// generation — the one Mutate reports and merged results are stamped
// with. It is also sound as a cache key: a complete (cacheable) merge
// only exists when every generation-bearing shard agrees on a value G,
// and the maximum equals exactly that G — skewed states can never
// produce a complete result under a colliding key. A ReplicaGroup
// backend reports its SERVING replica's generation here (never a
// catching-up replica's), which keeps the same argument sound under
// replication; see ReplicaGroup.Generation.
func (c *Coordinator) Generation() uint64 {
	var gen uint64
	for _, b := range c.backends {
		if gp, ok := b.(interface{ Generation() uint64 }); ok {
			if g := gp.Generation(); g > gen {
				gen = g
			}
		}
	}
	return gen
}

// ClusterSnapshot implements the server /statsz probe.
func (c *Coordinator) ClusterSnapshot() any {
	snap := c.metrics.snapshot()
	for i := range snap.Shards {
		snap.Shards[i].Backend = c.backends[i].Describe()
		snap.Shards[i].Size = c.backends[i].Size()
		snap.Shards[i].Available = c.health[i].healthy(c.cfg.failureThreshold())
	}
	return &snap
}

// Close releases every backend.
func (c *Coordinator) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	var first error
	for _, b := range c.backends {
		if err := b.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Query is QueryContext with a background context.
func (c *Coordinator) Query(a core.Algorithm, q int32, k int) (*core.Result, error) {
	return c.QueryContext(context.Background(), a, q, k)
}

// shardOut is one shard RPC's outcome.
type shardOut struct {
	shard   int
	res     *core.Result
	err     error
	elapsed time.Duration
}

// gatherState accumulates a query's rounds.
type gatherState struct {
	results     []*core.Result // latest result per shard, nil = none
	stats       core.Stats     // work summed over every round
	maxShard    time.Duration
	transferred int
	partial     bool
	overloaded  []int
	retryAfter  time.Duration
	fatal       error
	firstFail   *ShardError
	answered    int
}

// skewRetries is how many times a query whose merge observed mixed graph
// generations is re-scattered before GenerationSkewError surfaces. A
// mutation batch's swap window is microseconds per shard, so one retry
// almost always lands entirely after it; persistent skew means the shards
// genuinely diverged (a partially failed mutation fan-out).
const skewRetries = 2

// QueryContext answers one reverse k-ranks query by scatter-gather:
// round one at the reduced first-round k, rank-floor certification, then
// a full-k round for only the shards the merge could not certify. The
// request context (deadline, cancellation) is passed through to every
// shard RPC.
//
// Merges are generation-consistent: when shard answers carry live-store
// generation stamps, a merge across two generations (a mutation batch
// landed mid-scatter) is refused and the whole scatter retried; see
// GenerationSkewError.
func (c *Coordinator) QueryContext(ctx context.Context, a core.Algorithm, q int32, k int) (*core.Result, error) {
	if err := core.ValidateRequest(a, k); err != nil {
		return nil, err
	}
	for attempt := 0; ; attempt++ {
		res, err := c.queryOnce(ctx, a, q, k)
		var gs *GenerationSkewError
		if errors.As(err, &gs) && attempt < skewRetries && ctx.Err() == nil {
			c.metrics.skewRetries.Inc()
			continue
		}
		return res, err
	}
}

// queryOnce is one scatter-gather attempt of QueryContext.
func (c *Coordinator) queryOnce(ctx context.Context, a core.Algorithm, q int32, k int) (*core.Result, error) {
	start := time.Now()
	P := len(c.backends)

	targets, skipped := c.availableShards()
	if len(skipped) > 0 && c.cfg.StrictConsistency {
		// Release any half-open probe slots this query claimed: the
		// query is refused before it could run them, and a stuck probing
		// flag would lock the shard out of recovery.
		for _, i := range targets {
			c.health[i].releaseProbe()
		}
		return nil, &ShardError{Shard: skipped[0], Err: errors.New("tripped by health tracking")}
	}
	if len(targets) == 0 {
		return nil, &ShardError{Shard: skipped[0], Err: errors.New("no shard available")}
	}

	st := &gatherState{results: make([]*core.Result, P), partial: len(skipped) > 0}
	k0 := c.firstRoundK(k, P)
	// r1 is the round's parent span; summary attributes land on it after
	// the merge below (the *Span stays valid — it lives in the trace).
	r1 := c.gatherRound(ctx, a, q, k0, targets, st, obs.StageScatterRound1)
	if err := c.roundError(st); err != nil {
		return nil, err
	}

	var escalate []int
	shortCircuited := 0
	if k0 < k {
		merged := mergeTopK(st.results, k)
		escalate, shortCircuited = unsettledShards(st.results, merged, k)
		if len(escalate) > 0 {
			c.gatherRound(ctx, a, q, k, escalate, st, obs.StageScatterRound2)
			if err := c.roundError(st); err != nil {
				return nil, err
			}
		}
	}
	r1.SetAttr("short_circuited", int64(shortCircuited))
	r1.SetAttr("escalations", int64(len(escalate)))

	if st.answered == 0 {
		if st.firstFail != nil {
			return nil, st.firstFail
		}
		return nil, &ShardError{Shard: targets[0], Err: errors.New("no shard answered")}
	}

	gen, skewed := commonGeneration(st.results)
	if skewed {
		return nil, &GenerationSkewError{Query: q, Generations: distinctGenerations(st.results)}
	}
	r1.SetAttr("generation", int64(gen))
	res := &core.Result{
		Query:      q,
		K:          k,
		Entries:    mergeTopK(st.results, k),
		Partial:    st.partial,
		Generation: gen,
		Stats:      st.stats,
	}
	c.metrics.observeQuery(time.Since(start), st.maxShard, st.transferred, len(escalate), shortCircuited, st.partial)
	return res, nil
}

// commonGeneration extracts the one generation stamp a set of shard
// answers agrees on. Zero stamps mean "backend without live mutations"
// (live stores start at generation 1) and are ignored; two distinct
// nonzero stamps mean a mutation landed between shard answers and the
// merge must be refused.
func commonGeneration(results []*core.Result) (gen uint64, skewed bool) {
	for _, r := range results {
		if r == nil || r.Generation == 0 {
			continue
		}
		if gen == 0 {
			gen = r.Generation
			continue
		}
		if r.Generation != gen {
			return 0, true
		}
	}
	return gen, false
}

// distinctGenerations lists the distinct nonzero stamps, ascending (error
// reporting only).
func distinctGenerations(results []*core.Result) []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	for _, r := range results {
		if r != nil && r.Generation != 0 && !seen[r.Generation] {
			seen[r.Generation] = true
			out = append(out, r.Generation)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// availableShards splits the shard ids by health state, claiming the
// half-open probe slot of any tripped shard whose backoff has expired
// (at most one concurrent query probes a tripped shard).
func (c *Coordinator) availableShards() (targets, skipped []int) {
	now := time.Now()
	threshold := c.cfg.failureThreshold()
	for i := range c.backends {
		if c.health[i].claimProbe(now, threshold) {
			targets = append(targets, i)
		} else {
			skipped = append(skipped, i)
		}
	}
	return targets, skipped
}

// firstRoundK sizes the first scatter round.
func (c *Coordinator) firstRoundK(k, shards int) int {
	if c.cfg.NaiveGather || shards == 1 {
		return k
	}
	k0 := c.cfg.FirstRoundK
	if k0 <= 0 {
		k0 = (k+shards-1)/shards + firstRoundSlack
	}
	if k0 > k {
		k0 = k
	}
	if k0 < 1 {
		k0 = 1
	}
	return k0
}

// gatherRound scatters one round to the target shards in parallel and
// folds the outcomes into st. Failed shards keep whatever result an
// earlier round produced (degraded mode serves it, flagged Partial).
// The round is one parent span of the request trace with a per-shard
// child span each; the returned parent span (nil when untraced) lets
// the caller attach merge-time attributes after the round closed.
func (c *Coordinator) gatherRound(ctx context.Context, a core.Algorithm, q int32, k int, targets []int, st *gatherState, stage obs.Stage) *obs.Span {
	tr := obs.FromContext(ctx)
	psp := tr.Begin(stage)
	psp.SetAttr("shards", int64(len(targets)))
	psp.SetAttr("k", int64(k))
	outs := make([]shardOut, len(targets))
	var wg sync.WaitGroup
	for idx, shard := range targets {
		wg.Add(1)
		go func(idx, shard int) {
			defer wg.Done()
			sm := c.metrics.shards[shard]
			sm.inFlight.Add(1)
			csp := tr.BeginShard(stage, shard)
			t0 := time.Now()
			res, err := c.backends[shard].Query(ctx, a, q, k)
			elapsed := time.Since(t0)
			if err == nil {
				csp.SetAttr("entries", int64(len(res.Entries)))
			} else {
				csp.SetAttr("error", 1)
			}
			tr.End(csp)
			sm.inFlight.Add(-1)
			c.metrics.observeShard(shard, elapsed, err)
			failure := err != nil && !fatalQueryError(err)
			if _, isOverload := overloadHint(err); isOverload {
				failure = false // shedding load is the admission layer working, not ill health
			}
			c.health[shard].record(!failure, c.cfg.failureThreshold(), c.cfg.retryBackoff())
			outs[idx] = shardOut{shard: shard, res: res, err: err, elapsed: elapsed}
		}(idx, shard)
	}
	wg.Wait()

	for _, o := range outs {
		if o.err == nil {
			st.results[o.shard] = o.res
			st.stats.Add(o.res.Stats)
			st.transferred += len(o.res.Entries)
			st.answered++
			if o.res.Partial {
				st.partial = true
			}
			if o.elapsed > st.maxShard {
				st.maxShard = o.elapsed
			}
			continue
		}
		if fatalQueryError(o.err) {
			if st.fatal == nil {
				st.fatal = o.err
			}
			continue
		}
		if ra, ok := overloadHint(o.err); ok {
			st.overloaded = append(st.overloaded, o.shard)
			if ra > st.retryAfter {
				st.retryAfter = ra
			}
			continue
		}
		st.partial = true
		if st.firstFail == nil {
			st.firstFail = &ShardError{Shard: o.shard, Err: o.err}
		}
	}
	tr.End(psp)
	return psp
}

// roundError turns a round's fatal outcomes into the query's error:
// request faults and context expiry propagate verbatim, any shard 429
// makes the whole query a 429 with the max shard Retry-After, and in
// strict mode the first shard failure refuses the query.
func (c *Coordinator) roundError(st *gatherState) error {
	if st.fatal != nil {
		return st.fatal
	}
	if len(st.overloaded) > 0 {
		return &OverloadedError{Shards: st.overloaded, RetryAfter: st.retryAfter}
	}
	if c.cfg.StrictConsistency && st.firstFail != nil {
		return st.firstFail
	}
	return nil
}

// QueryMany is QueryManyContext with a background context.
func (c *Coordinator) QueryMany(a core.Algorithm, queries []int32, k int) ([]*core.Result, error) {
	return c.QueryManyContext(context.Background(), a, queries, k)
}

// QueryManyContext implements the batch entry point of server.Backend
// with batch scatter: ONE RPC per shard carries every query of the batch
// at the reduced first-round k, each query is merged and certified with
// the same rank-floor rules as QueryContext, and only the (shard, query)
// pairs the merge could not certify ride a grouped second round — again
// at most one RPC per shard. Results are byte-identical to scattering
// each query alone (see batchScatter), in input order.
//
// Config.PerQueryScatter restores the old behavior — one scatter-gather
// per query, pipelined up to the cluster's bottleneck capacity (Size) by
// the shared core.FanOut loop — as the comparison baseline.
func (c *Coordinator) QueryManyContext(ctx context.Context, a core.Algorithm, queries []int32, k int) ([]*core.Result, error) {
	if err := core.ValidateRequest(a, k); err != nil {
		return nil, err
	}
	if c.cfg.PerQueryScatter {
		return core.FanOut(ctx, c.Size(), queries, func(ctx context.Context, q int32) (*core.Result, error) {
			return c.QueryContext(ctx, a, q, k)
		})
	}
	return c.batchScatter(ctx, a, queries, k)
}

// shardMutator is the per-shard mutation capability (LiveShard in
// process, RemoteShard over /v1/mutate).
type shardMutator interface {
	Mutate(ctx context.Context, ms []graph.Mutation) (live.MutateInfo, error)
}

// Mutate implements the server Mutator probe for a cluster: one mutation
// batch is fanned to EVERY shard backend — each holds the whole graph, so
// each applies the whole batch — and the coordinator serializes batches
// so shard generations advance in lockstep. A shard that fails its first
// attempt is retried once; surviving failures return a MutationError and
// leave the cluster generation-skewed, which the query path detects and
// refuses to merge across (see GenerationSkewError) — correctness is
// preserved, availability degrades until the shards converge.
func (c *Coordinator) Mutate(ctx context.Context, ms []graph.Mutation) (live.MutateInfo, error) {
	muts := make([]shardMutator, len(c.backends))
	for i, b := range c.backends {
		m, ok := b.(shardMutator)
		if !ok {
			return live.MutateInfo{}, &ImmutableShardError{Shard: i}
		}
		muts[i] = m
	}
	c.mutateMu.Lock()
	defer c.mutateMu.Unlock()

	infos := make([]live.MutateInfo, len(muts))
	errs := make([]error, len(muts))
	var wg sync.WaitGroup
	for i, m := range muts {
		wg.Add(1)
		go func(i int, m shardMutator) {
			defer wg.Done()
			preGen, preKnown := currentGeneration(ctx, c.backends[i])
			infos[i], errs[i] = m.Mutate(ctx, ms)
			if errs[i] == nil || fatalQueryError(errs[i]) || immutableRemote(errs[i]) || isImmutableShard(errs[i]) {
				return
			}
			// One retry absorbs transient shard hiccups; validation errors
			// and 501s would fail identically again. The retry is guarded:
			// a non-fatal error does not prove the batch was not applied
			// (a remote transport can fail after the server committed it),
			// and re-sending an applied batch would double-apply it on
			// this shard alone — so a generation that provably advanced
			// counts as an apply instead.
			if gen, ok := currentGeneration(ctx, c.backends[i]); preKnown && ok && gen > preGen {
				infos[i], errs[i] = live.MutateInfo{Applied: len(ms), Generation: gen}, nil
				return
			}
			infos[i], errs[i] = m.Mutate(ctx, ms)
			if errs[i] == nil || fatalQueryError(errs[i]) || immutableRemote(errs[i]) || isImmutableShard(errs[i]) {
				return
			}
			if gen, ok := currentGeneration(ctx, c.backends[i]); preKnown && ok && gen > preGen {
				infos[i], errs[i] = live.MutateInfo{Applied: len(ms), Generation: gen}, nil
			}
		}(i, m)
	}
	wg.Wait()

	failed := map[int]error{}
	for i, err := range errs {
		switch {
		case err == nil:
		case immutableRemote(err) || isImmutableShard(err):
			// A remote 501, or a replica group whose members are
			// immutable: surface the typed error (mapped to HTTP 501).
			return live.MutateInfo{}, &ImmutableShardError{Shard: i}
		case errors.Is(err, core.ErrInvalidArgument):
			// The batch itself is bad; every shard refused it identically
			// and none applied it, so the cluster is still converged.
			return live.MutateInfo{}, err
		default:
			failed[i] = err
		}
	}
	if len(failed) > 0 {
		return live.MutateInfo{}, &MutationError{Failed: failed}
	}
	info := infos[0]
	for _, in := range infos[1:] {
		info.Rebuilt = info.Rebuilt || in.Rebuilt
	}
	return info, nil
}

// MutationSnapshot aggregates the shards' mutation counters for /statsz
// (nil when no shard is live).
func (c *Coordinator) MutationSnapshot() any {
	out := make(map[string]any)
	for i, b := range c.backends {
		if msn, ok := b.(interface{ MutationSnapshot() any }); ok {
			out[fmt.Sprintf("shard_%d", i)] = msn.MutationSnapshot()
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

var (
	_ ShardBackend = (*LocalShard)(nil)
	_ ShardBackend = (*RemoteShard)(nil)
	_ ShardBackend = (*LiveShard)(nil)
	_ shardMutator = (*LiveShard)(nil)
	_ shardMutator = (*RemoteShard)(nil)
)
