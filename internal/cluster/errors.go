package cluster

import (
	"errors"
	"fmt"
	"net/http"
	"time"
)

// ErrShardUnavailable is the root of every shard-availability error: a
// backend that cannot be reached, keeps failing, or is tripped by the
// coordinator's health tracking. Under Config.StrictConsistency the
// coordinator surfaces it for the whole query (internal/server maps it to
// 503); in degraded mode it is only returned when NO shard could answer.
var ErrShardUnavailable = errors.New("cluster: shard unavailable")

// ShardError reports a failure of one shard backend, wrapping
// ErrShardUnavailable for errors.Is dispatch.
type ShardError struct {
	Shard int
	Err   error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("cluster: shard %d unavailable: %v", e.Shard, e.Err)
}

func (e *ShardError) Unwrap() error { return ErrShardUnavailable }

// HTTPStatus implements the server error-mapping probe: a query refused
// for shard unavailability is a 503, like a draining server — the load
// balancer should try a replica.
func (e *ShardError) HTTPStatus() (int, string) {
	return http.StatusServiceUnavailable, "shard_unavailable"
}

// OverloadedError reports that one or more shards shed the query with
// 429. RetryAfter is the MAXIMUM hint across the overloaded shards: the
// query cannot succeed until the slowest-recovering shard admits again,
// so the coordinator must not substitute its own (shorter) queue
// estimate.
type OverloadedError struct {
	// Shards lists the overloaded shard ids.
	Shards []int
	// RetryAfter is the largest Retry-After any overloaded shard sent.
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("cluster: shards %v overloaded (retry after %v)", e.Shards, e.RetryAfter)
}

// HTTPStatus implements the server error-mapping probe.
func (e *OverloadedError) HTTPStatus() (int, string) {
	return http.StatusTooManyRequests, "overloaded"
}

// RetryAfterHint implements the server Retry-After probe.
func (e *OverloadedError) RetryAfterHint() time.Duration { return e.RetryAfter }
