package cluster

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"rkranks/internal/api"
)

// ErrShardUnavailable is the root of every shard-availability error: a
// backend that cannot be reached, keeps failing, or is tripped by the
// coordinator's health tracking. Under Config.StrictConsistency the
// coordinator surfaces it for the whole query (internal/server maps it to
// 503); in degraded mode it is only returned when NO shard could answer.
var ErrShardUnavailable = errors.New("cluster: shard unavailable")

// ShardError reports a failure of one shard backend, wrapping
// ErrShardUnavailable for errors.Is dispatch.
type ShardError struct {
	Shard int
	Err   error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("cluster: shard %d unavailable: %v", e.Shard, e.Err)
}

func (e *ShardError) Unwrap() error { return ErrShardUnavailable }

// HTTPStatus implements the server error-mapping probe: a query refused
// for shard unavailability is a 503, like a draining server — the load
// balancer should try a replica.
func (e *ShardError) HTTPStatus() (int, string) {
	return http.StatusServiceUnavailable, "shard_unavailable"
}

// OverloadedError reports that one or more shards shed the query with
// 429. RetryAfter is the MAXIMUM hint across the overloaded shards: the
// query cannot succeed until the slowest-recovering shard admits again,
// so the coordinator must not substitute its own (shorter) queue
// estimate.
type OverloadedError struct {
	// Shards lists the overloaded shard ids.
	Shards []int
	// RetryAfter is the largest Retry-After any overloaded shard sent.
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("cluster: shards %v overloaded (retry after %v)", e.Shards, e.RetryAfter)
}

// HTTPStatus implements the server error-mapping probe.
func (e *OverloadedError) HTTPStatus() (int, string) {
	return http.StatusTooManyRequests, "overloaded"
}

// RetryAfterHint implements the server Retry-After probe.
func (e *OverloadedError) RetryAfterHint() time.Duration { return e.RetryAfter }

// GenerationSkewError reports a merge the coordinator refused because
// shard answers carried different graph generations: a mutation batch was
// landing while the query scattered, and a result merged across two
// generations would be silently wrong. The coordinator retries the whole
// scatter a few times before surfacing this; by then the skew is real
// (e.g. a mutation fan-out partially failed), and the caller should retry
// once the shards converge.
type GenerationSkewError struct {
	// Query is the query node whose merge was refused.
	Query int32
	// Generations is the distinct generation stamps observed (ascending).
	Generations []uint64
}

func (e *GenerationSkewError) Error() string {
	return fmt.Sprintf("cluster: query %d observed shards on graph generations %v mid-mutation; retry", e.Query, e.Generations)
}

// HTTPStatus implements the server error-mapping probe: skew is a
// transient consistency refusal, 503 like an unavailable shard.
func (e *GenerationSkewError) HTTPStatus() (int, string) {
	return http.StatusServiceUnavailable, api.CodeGenerationSkew
}

// ImmutableShardError reports a mutation fanned to a shard backend that
// cannot apply it (a LocalShard or a remote rkserve booted without -live).
type ImmutableShardError struct {
	Shard int
}

func (e *ImmutableShardError) Error() string {
	return fmt.Sprintf("cluster: shard %d serves an immutable graph; mutations need every shard live-enabled", e.Shard)
}

// HTTPStatus implements the server error-mapping probe.
func (e *ImmutableShardError) HTTPStatus() (int, string) {
	return http.StatusNotImplemented, api.CodeUnimplemented
}

// isImmutableShard reports an ImmutableShardError anywhere in err's
// chain (a replica group surfaces one when its members are immutable).
func isImmutableShard(err error) bool {
	var ise *ImmutableShardError
	return errors.As(err, &ise)
}

// GroupRegressedError reports a mutation batch refused by a replica
// group whose serving generation regressed below its high-water
// generation: every replica holding the newest logged batches is out of
// rotation, so accepting a new batch would mint a generation number the
// batch log already holds with DIFFERENT content — and once the
// up-to-date replica recovers, replicas with divergent graphs would
// report identical generations, silently breaking byte-identical
// answers and cache keying. The group heals itself (catch-up replay
// from the batch log, or the up-to-date replica's recovery probe);
// callers should retry.
type GroupRegressedError struct {
	// Serving is the group's current (regressed) serving generation.
	Serving uint64
	// HighWater is the newest generation the group ever observed or
	// logged.
	HighWater uint64
}

func (e *GroupRegressedError) Error() string {
	return fmt.Sprintf("cluster: replica group serving generation %d regressed below high-water %d; mutations refused until the group re-converges", e.Serving, e.HighWater)
}

// HTTPStatus implements the server error-mapping probe: a transient
// availability refusal, 503 like a failed mutation fan-out.
func (e *GroupRegressedError) HTTPStatus() (int, string) {
	return http.StatusServiceUnavailable, "group_regressed"
}

// MutationError reports a mutation batch that failed on one or more
// shards after the coordinator's retry. The cluster's shard generations
// may now be skewed: queries refuse to merge across generations (see
// GenerationSkewError), so the cluster stays correct but degraded until
// the failed shards recover or are re-fed the batch.
type MutationError struct {
	// Failed maps shard id to its final error.
	Failed map[int]error
}

func (e *MutationError) Error() string {
	ids := make([]int, 0, len(e.Failed))
	for i := range e.Failed {
		ids = append(ids, i)
	}
	sort.Ints(ids)
	var first error
	if len(ids) > 0 {
		first = e.Failed[ids[0]]
	}
	return fmt.Sprintf("cluster: mutation batch failed on shards %v (first: %v); shard generations may be skewed until they recover", ids, first)
}

// HTTPStatus implements the server error-mapping probe: like a shard
// availability failure, the caller should retry against a converged
// cluster.
func (e *MutationError) HTTPStatus() (int, string) {
	return http.StatusServiceUnavailable, "mutation_failed"
}
