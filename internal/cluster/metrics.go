package cluster

import (
	"sync"
	"sync/atomic"
	"time"

	"rkranks/internal/obs"
	"rkranks/internal/stats"
)

// latWindow sizes the recent-latency rings (coordinator, max-shard, and
// per-shard): big enough for stable p99, small enough to track current
// behavior.
const latWindow = 1024

// latRing is a fixed-size latency window with percentile snapshots.
type latRing struct {
	buf [latWindow]float64 // seconds
	n   int
	idx int
}

func (r *latRing) observe(d time.Duration) {
	r.buf[r.idx] = d.Seconds()
	r.idx = (r.idx + 1) % latWindow
	if r.n < latWindow {
		r.n++
	}
}

func (r *latRing) snapshot() LatencySnapshot {
	if r.n == 0 {
		return LatencySnapshot{}
	}
	window := make([]float64, r.n)
	copy(window, r.buf[:r.n])
	return LatencySnapshot{
		P50:    1000 * stats.Percentile(window, 50),
		P99:    1000 * stats.Percentile(window, 99),
		Mean:   1000 * stats.Mean(window),
		Window: r.n,
	}
}

// LatencySnapshot reports percentiles over a recent-latency window, in
// milliseconds. Field names are part of the /statsz wire format.
type LatencySnapshot struct {
	P50    float64 `json:"p50"`
	P99    float64 `json:"p99"`
	Mean   float64 `json:"mean"`
	Window int     `json:"window"`
}

// metrics aggregates coordinator telemetry. The monotone counters are
// obs instruments — /statsz reads them back with Value(), so the cluster
// section and /metrics are one storage. The mutex guards the percentile
// rings (which /metrics does not carry; Prometheus derives distribution
// from the stage histograms instead); the per-shard in-flight gauges are
// atomics so the scatter hot path touches the lock once per query, not
// once per shard RPC.
type metrics struct {
	mu sync.Mutex

	queries        *obs.Counter
	partials       *obs.Counter
	failures       *obs.Counter // shard-level failures observed
	escalations    *obs.Counter // round-2 shard fetches
	shortCircuited *obs.Counter // shards settled by their round-1 floor
	transferred    *obs.Counter // result entries moved coordinator-ward
	skewRetries    *obs.Counter // re-scatters forced by generation skew

	batches      *obs.Counter // batch scatters served
	batchRPCs    *obs.Counter // shard RPCs spent on batch scatters (all rounds)
	batchQueries *obs.Counter // queries carried by batch scatters

	coord    latRing // whole scatter-gather-merge per query
	maxShard latRing // slowest shard RPC per query
	batch    latRing // whole batch scatter-merge per batch

	shards []*shardMetrics
}

type shardMetrics struct {
	inFlight atomic.Int64

	mu      sync.Mutex
	queries int64
	errors  int64
	lat     latRing
}

func newMetrics(shards int, om *obs.Metrics) *metrics {
	if om == nil {
		om = obs.NewMetrics(nil)
	}
	m := &metrics{
		queries:        om.ClusterQueries,
		partials:       om.ClusterPartials,
		failures:       om.ClusterShardFailures,
		escalations:    om.ClusterEscalations,
		shortCircuited: om.ClusterShortCircuited,
		transferred:    om.ClusterTransferred,
		skewRetries:    om.SkewRetries,
		batches:        om.ClusterBatches,
		batchRPCs:      om.ClusterBatchRPCs,
		batchQueries:   om.ClusterBatchQueries,
		shards:         make([]*shardMetrics, shards),
	}
	for i := range m.shards {
		m.shards[i] = &shardMetrics{}
	}
	return m
}

// observeShard records one shard RPC.
func (m *metrics) observeShard(shard int, elapsed time.Duration, err error) {
	s := m.shards[shard]
	s.mu.Lock()
	s.queries++
	if err != nil {
		s.errors++
	} else {
		s.lat.observe(elapsed)
	}
	s.mu.Unlock()
	if err != nil {
		m.failures.Inc()
	}
}

// observeQuery records one coordinator query's aggregate outcome.
func (m *metrics) observeQuery(elapsed, maxShard time.Duration, transferred, escalated, shortCircuited int, partial bool) {
	m.queries.Inc()
	if partial {
		m.partials.Inc()
	}
	m.transferred.Add(int64(transferred))
	m.escalations.Add(int64(escalated))
	m.shortCircuited.Add(int64(shortCircuited))
	m.mu.Lock()
	defer m.mu.Unlock()
	m.coord.observe(elapsed)
	if maxShard > 0 {
		m.maxShard.observe(maxShard)
	}
}

// observeBatch records one batch scatter's aggregate outcome. The
// transfer, escalation, and short-circuit units are (shard, query) pairs,
// the same units the per-query path counts, so the savings columns stay
// comparable across both scatter modes.
func (m *metrics) observeBatch(elapsed, maxShard time.Duration, rpcs, queries, transferred, escalated, shortCircuited int) {
	m.batches.Inc()
	m.batchRPCs.Add(int64(rpcs))
	m.batchQueries.Add(int64(queries))
	m.transferred.Add(int64(transferred))
	m.escalations.Add(int64(escalated))
	m.shortCircuited.Add(int64(shortCircuited))
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batch.observe(elapsed)
	if maxShard > 0 {
		m.maxShard.observe(maxShard)
	}
}

// Snapshot is the cluster section of /statsz. Field names are a frozen
// wire format: add, never rename.
type Snapshot struct {
	Queries        int64 `json:"queries"`
	PartialResults int64 `json:"partial_results"`
	ShardFailures  int64 `json:"shard_failures"`

	// EntriesTransferred counts result entries moved from shards to the
	// coordinator. Rank-floor pruning exists to keep it far below
	// shards x k x queries (what a naive full-k gather moves).
	EntriesTransferred int64 `json:"entries_transferred"`
	// Escalations counts round-2 full-k shard fetches (a shard whose
	// round-1 floor could not certify the merged cutoff).
	Escalations int64 `json:"escalations"`
	// ShortCircuited counts shards whose round-1 floor already cleared
	// the merged cutoff, so their remaining candidates were never
	// transferred.
	ShortCircuited int64 `json:"short_circuited"`
	// SkewRetries counts scatters re-run because shard answers spanned
	// two graph generations (a mutation landed mid-scatter).
	SkewRetries int64 `json:"skew_retries"`

	// Batches counts /v1/batch scatters; BatchRPCs the shard round trips
	// they spent (all rounds — with no escalations, exactly one per shard
	// per batch); BatchQueries the queries they carried. BatchRPCs over
	// BatchQueries is the RPCs-per-query figure batch scatter exists to
	// shrink (the per-query path spends at least one RPC per shard per
	// QUERY).
	Batches      int64 `json:"batches"`
	BatchRPCs    int64 `json:"batch_rpcs"`
	BatchQueries int64 `json:"batch_queries"`

	// Coordinator is the full scatter-gather-merge latency;
	// MaxShard is the slowest shard RPC within each query. The gap
	// between them is the merge + fan-out overhead the coordinator adds
	// over its slowest shard. Batch is the whole-batch latency of batch
	// scatters.
	Coordinator LatencySnapshot `json:"coordinator_ms"`
	MaxShard    LatencySnapshot `json:"max_shard_ms"`
	Batch       LatencySnapshot `json:"batch_ms"`

	Shards []ShardSnapshot `json:"shards"`
}

// ShardSnapshot is one shard's health and load view.
type ShardSnapshot struct {
	ID        int             `json:"id"`
	Backend   string          `json:"backend"`
	Available bool            `json:"available"`
	Size      int             `json:"size"`
	InFlight  int64           `json:"in_flight"`
	Queries   int64           `json:"queries"`
	Errors    int64           `json:"errors"`
	Latency   LatencySnapshot `json:"latency_ms"`
}

func (m *metrics) snapshot() Snapshot {
	m.mu.Lock()
	snap := Snapshot{
		Queries:            m.queries.Value(),
		PartialResults:     m.partials.Value(),
		ShardFailures:      m.failures.Value(),
		EntriesTransferred: m.transferred.Value(),
		Escalations:        m.escalations.Value(),
		ShortCircuited:     m.shortCircuited.Value(),
		SkewRetries:        m.skewRetries.Value(),
		Batches:            m.batches.Value(),
		BatchRPCs:          m.batchRPCs.Value(),
		BatchQueries:       m.batchQueries.Value(),
		Coordinator:        m.coord.snapshot(),
		MaxShard:           m.maxShard.snapshot(),
		Batch:              m.batch.snapshot(),
		Shards:             make([]ShardSnapshot, len(m.shards)),
	}
	m.mu.Unlock()
	for i, s := range m.shards {
		s.mu.Lock()
		snap.Shards[i] = ShardSnapshot{
			ID:       i,
			InFlight: s.inFlight.Load(),
			Queries:  s.queries,
			Errors:   s.errors,
			Latency:  s.lat.snapshot(),
		}
		s.mu.Unlock()
	}
	return snap
}
