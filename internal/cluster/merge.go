package cluster

import (
	"rkranks/internal/core"
	"rkranks/internal/rank"
)

// mergeTopK folds per-shard canonical results into the global canonical
// top-k. Shard candidate classes are disjoint, so the union has no
// duplicates and a plain (rank, node id) sort of the union's best
// prefixes is exactly what a single-node engine would return.
func mergeTopK(results []*core.Result, k int) []rank.Entry {
	var merged []rank.Entry
	for _, res := range results {
		if res != nil {
			merged = append(merged, res.Entries...)
		}
	}
	rank.SortEntries(merged)
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged
}

// unsettledShards decides, after a first gather round, which shards the
// merged prefix cannot yet certify: a shard is settled when its rank
// floor proves every candidate it withheld orders strictly after the
// merged k-th entry (or when it withheld nothing). Everything else must
// be re-fetched at full k. The certification is exact under the canonical
// result semantics — including boundary ties, which compare by (rank,
// node id) pair, never by rank alone.
//
// It returns the escalation set and the number of shards short-circuited
// by their floor (the scatter-gather saving the /statsz counters report).
func unsettledShards(results []*core.Result, merged []rank.Entry, k int) (escalate []int, shortCircuited int) {
	var cutoff rank.Entry
	complete := len(merged) >= k
	if complete {
		cutoff = merged[k-1]
	}
	for shard, res := range results {
		if res == nil || res.K >= k {
			// Unavailable (nothing to escalate) or already asked at full
			// k (its floor clears any cutoff the merge can produce; see
			// the round-2 invariant in QueryContext).
			continue
		}
		f := res.Floor()
		settled := f.Exhausted || (complete && f.Clears(cutoff))
		if settled {
			shortCircuited++
		} else {
			escalate = append(escalate, shard)
		}
	}
	return escalate, shortCircuited
}
