package cluster

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"rkranks/internal/core"
	"rkranks/internal/graph"
	"rkranks/internal/live"
)

// churnGraph builds a parallel-edge-free random graph for mutation tests.
func churnGraph(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(false)
	b.EnsureNodes(n)
	seen := map[[2]int32]bool{}
	for i := 1; i < n; i++ {
		for tries := 0; tries < 3; tries++ {
			u, v := int32(i), int32(rng.Intn(i))
			k := [2]int32{v, u}
			if seen[k] {
				continue
			}
			seen[k] = true
			b.MustAddEdge(u, v, 0.25+rng.Float64()*4)
			if tries == 0 && rng.Intn(2) == 1 {
				continue
			}
			break
		}
	}
	return b.Finalize()
}

// TestLocalLiveEquivalence: a live cluster answers byte-identically to a
// single-node pool before any mutation, across shard counts.
func TestLocalLiveEquivalence(t *testing.T) {
	g := churnGraph(40, 3)
	single := core.NewPool(g, core.Options{}, 2)
	for _, shards := range []int{1, 2, 4} {
		coord, err := NewLocalLive(g, live.Config{PoolSize: 1}, 0, Modulo{}, shards, Config{})
		if err != nil {
			t.Fatal(err)
		}
		for q := int32(0); q < 40; q += 5 {
			want, err := single.Query(core.Dynamic, q, 6)
			if err != nil {
				t.Fatal(err)
			}
			got, err := coord.Query(core.Dynamic, q, 6)
			if err != nil {
				t.Fatalf("shards=%d q=%d: %v", shards, q, err)
			}
			if !entriesEqual(got.Entries, want.Entries) {
				t.Fatalf("shards=%d q=%d: %v vs single %v", shards, q, got.Entries, want.Entries)
			}
			if got.Generation != 1 {
				t.Fatalf("shards=%d q=%d: generation %d, want 1", shards, q, got.Generation)
			}
		}
		coord.Close()
	}
}

// TestLiveClusterLockstep: a mutation fan-out leaves every shard at the
// same generation, and the coordinator reports it.
func TestLiveClusterLockstep(t *testing.T) {
	g := churnGraph(30, 5)
	coord, err := NewLocalLive(g, live.Config{PoolSize: 1}, 0, Modulo{}, 4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ctx := context.Background()
	var edge graph.Edge
	g.Edges(func(e graph.Edge) bool { edge = e; return false })

	for i := 0; i < 3; i++ {
		info, err := coord.Mutate(ctx, []graph.Mutation{
			graph.SetWeight(edge.From, edge.To, float64(i+2)),
		})
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		want := uint64(2 + i)
		if info.Generation != want {
			t.Fatalf("batch %d: generation %d, want %d", i, info.Generation, want)
		}
		for s, b := range coord.backends {
			gp := b.(interface{ Generation() uint64 })
			if gp.Generation() != want {
				t.Fatalf("batch %d: shard %d at generation %d, want %d", i, s, gp.Generation(), want)
			}
		}
		if coord.Generation() != want {
			t.Fatalf("batch %d: coordinator reports %d, want %d", i, coord.Generation(), want)
		}
	}
	if coord.MutationSnapshot() == nil {
		t.Fatal("live cluster reports no mutation snapshot")
	}

	// Validation failures reject the whole fan-out before touching any shard.
	if _, err := coord.Mutate(ctx, []graph.Mutation{graph.InsertEdge(0, 999, 1)}); !errors.Is(err, core.ErrInvalidArgument) {
		t.Fatalf("invalid fan-out: %v", err)
	}
	if coord.Generation() != 4 {
		t.Fatalf("rejected fan-out moved the generation to %d", coord.Generation())
	}
}

// TestLiveClusterChurnNeverMixesGenerations is the mid-churn consistency
// contract: while mutation batches land concurrently with queries, every
// successful query's entries must be EXACTLY the answer for the single
// generation it is stamped with — never a merge of two. Observations are
// recorded during churn and verified afterwards against per-generation
// snapshot graphs.
func TestLiveClusterChurnNeverMixesGenerations(t *testing.T) {
	const n, k = 36, 4
	g := churnGraph(n, 11)
	coord, err := NewLocalLive(g, live.Config{PoolSize: 1}, 0, Modulo{}, 4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ctx := context.Background()

	// Per-generation snapshots, maintained by the mutator and read only
	// after the churn stops.
	snapshots := map[uint64]*graph.Graph{1: g}
	es := graph.NewEdgeStore(g)

	var pairs [][2]int32
	g.Edges(func(e graph.Edge) bool {
		pairs = append(pairs, [2]int32{e.From, e.To})
		return true
	})

	var stop atomic.Bool
	var wg sync.WaitGroup
	observations := make([][]*core.Result, 3)
	queried := make([][]int32, 3)
	errs := make(chan error, 4)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(500 + r)))
			for !stop.Load() {
				q := int32(rng.Intn(n))
				res, err := coord.QueryContext(ctx, core.Dynamic, q, k)
				if err != nil {
					var gs *GenerationSkewError
					if errors.As(err, &gs) {
						continue // legitimate under heavy churn: retries exhausted
					}
					errs <- err
					return
				}
				observations[r] = append(observations[r], res)
				queried[r] = append(queried[r], q)
			}
		}(r)
	}

	rng := rand.New(rand.NewSource(99))
	for batch := 0; batch < 15; batch++ {
		var ms []graph.Mutation
		if batch%3 == 2 {
			// Topology change: toggle a fresh pair (rebuild path).
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			m := graph.InsertEdge(u, v, 1.5)
			if err := es.Clone().Apply(m); err != nil {
				m = graph.DeleteEdge(u, v)
				if err := es.Clone().Apply(m); err != nil {
					continue
				}
			}
			ms = []graph.Mutation{m}
		} else {
			p := pairs[rng.Intn(len(pairs))]
			ms = []graph.Mutation{graph.SetWeight(p[0], p[1], 0.25+rng.Float64()*4)}
		}
		info, err := coord.Mutate(ctx, ms)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		for _, m := range ms {
			if err := es.Apply(m); err != nil {
				t.Fatalf("mirror apply: %v", err)
			}
		}
		snapshots[info.Generation] = es.Build()
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Verify every observation against its generation's snapshot.
	verified := 0
	oracles := map[uint64]*core.Engine{}
	for r := range observations {
		var lastGen uint64
		for i, res := range observations[r] {
			if res.Generation < lastGen {
				t.Fatalf("reader %d: generation moved backwards %d -> %d", r, lastGen, res.Generation)
			}
			lastGen = res.Generation
			snap, ok := snapshots[res.Generation]
			if !ok {
				t.Fatalf("reader %d: result stamped with unknown generation %d", r, res.Generation)
			}
			oracle := oracles[res.Generation]
			if oracle == nil {
				oracle = core.NewEngine(snap, core.Options{})
				oracles[res.Generation] = oracle
			}
			want, err := oracle.Query(core.Dynamic, queried[r][i], k)
			if err != nil {
				t.Fatal(err)
			}
			if !entriesEqual(res.Entries, want.Entries) {
				t.Fatalf("reader %d gen %d q=%d: %v, snapshot oracle %v",
					r, res.Generation, queried[r][i], res.Entries, want.Entries)
			}
			verified++
		}
	}
	if verified == 0 {
		t.Fatal("churn produced no successful observations")
	}
}
