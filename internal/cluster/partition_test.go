package cluster

import (
	"testing"

	"rkranks/internal/gen"
	tg "rkranks/internal/testgraphs"
)

func TestPartitionersCoverDisjointly(t *testing.T) {
	g := gen.DBLPLike(gen.DBLPLikeParams{Nodes: 500, AttachPerNode: 4, ExtraCollabFactor: 0.5, Seed: 3})
	for _, part := range []Partitioner{Modulo{}, DegreeBalanced{}} {
		for _, shards := range []int{1, 2, 3, 8} {
			masks := part.Masks(g, shards)
			if len(masks) != shards {
				t.Fatalf("%s/%d: %d masks", part.Name(), shards, len(masks))
			}
			for v := 0; v < g.N(); v++ {
				owners := 0
				for _, m := range masks {
					if m[v] {
						owners++
					}
				}
				if owners != 1 {
					t.Fatalf("%s/%d: node %d owned by %d shards", part.Name(), shards, v, owners)
				}
			}
		}
	}
}

func TestModuloAssignment(t *testing.T) {
	g := tg.Path(10)
	masks := Modulo{}.Masks(g, 3)
	for v := 0; v < g.N(); v++ {
		if !masks[v%3][v] {
			t.Fatalf("node %d not in shard %d", v, v%3)
		}
	}
}

func TestDegreeBalancedBalancesLoad(t *testing.T) {
	// Power-law-ish graph: degree balance should beat modulo's worst
	// shard by a clear margin.
	g := gen.DBLPLike(gen.DBLPLikeParams{Nodes: 1000, AttachPerNode: 6, ExtraCollabFactor: 0.5, Seed: 11})
	load := func(masks [][]bool) (min, max int64) {
		min = int64(1) << 60
		for _, m := range masks {
			var sum int64
			for v, in := range m {
				if in {
					sum += int64(g.OutDegree(int32(v)))
				}
			}
			if sum < min {
				min = sum
			}
			if sum > max {
				max = sum
			}
		}
		return min, max
	}
	dmin, dmax := load(DegreeBalanced{}.Masks(g, 4))
	if dmin == 0 || float64(dmax)/float64(dmin) > 1.05 {
		t.Errorf("degree-balanced shard degree spread %d..%d exceeds 5%%", dmin, dmax)
	}

	// Determinism: same inputs, same masks.
	a := DegreeBalanced{}.Masks(g, 4)
	b := DegreeBalanced{}.Masks(g, 4)
	for s := range a {
		for v := range a[s] {
			if a[s][v] != b[s][v] {
				t.Fatalf("degree partitioner nondeterministic at shard %d node %d", s, v)
			}
		}
	}
}

func TestParsePartitioner(t *testing.T) {
	for name, want := range map[string]string{"": "modulo", "modulo": "modulo", "degree": "degree"} {
		p, err := ParsePartitioner(name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if p.Name() != want {
			t.Errorf("%q parsed to %s", name, p.Name())
		}
	}
	if _, err := ParsePartitioner("bogus"); err == nil {
		t.Error("bogus partitioner accepted")
	}
}

func TestShardMaskIntersectsGlobalClass(t *testing.T) {
	g := tg.Path(12)
	global := make([]bool, g.N())
	for v := 0; v < g.N(); v += 2 {
		global[v] = true
	}
	mask, err := ShardMask(g, Modulo{}, 3, 1, global)
	if err != nil {
		t.Fatal(err)
	}
	for v := range mask {
		want := v%3 == 1 && global[v]
		if mask[v] != want {
			t.Errorf("node %d: mask %v, want %v", v, mask[v], want)
		}
	}
	if _, err := ShardMask(g, Modulo{}, 3, 3, nil); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if _, err := ShardMask(g, Modulo{}, 3, 0, make([]bool, 5)); err == nil {
		t.Error("mismatched global mask accepted")
	}
}
