package cluster

import (
	"context"
	"errors"
	"time"

	"rkranks/internal/core"
	"rkranks/internal/obs"
)

// batchState accumulates one batch scatter's rounds.
//
// perShard[shard][qi] is shard's latest answer for batch query qi (nil
// when the shard has not answered it); the per-query merge reads one
// column of that matrix. Error folding mirrors gatherState, but a shard
// failure taints EVERY query of the batch that still needed the shard —
// with one RPC carrying them all, they fail or degrade together.
type batchState struct {
	perShard [][]*core.Result
	stats    []core.Stats
	partial  []bool

	maxShard    time.Duration
	transferred int
	rpcs        int
	answered    int // shards that answered the last round they were asked in
	overloaded  []int
	retryAfter  time.Duration
	fatal       error
	firstFail   *ShardError
}

// batchScatter answers a whole batch with at most two RPCs per shard:
// round one sends every query to every available shard at the reduced
// first-round k, then each query is merged independently and its
// uncertified shards are collected; round two sends each such shard one
// RPC with exactly the queries it must re-answer at full k. The
// per-query certification logic is unsettledShards — the same rule the
// single-query path uses — so every merged result is byte-identical to a
// per-query scatter (and to a single node).
func (c *Coordinator) batchScatter(ctx context.Context, a core.Algorithm, queries []int32, k int) ([]*core.Result, error) {
	if len(queries) == 0 {
		return []*core.Result{}, nil
	}
	start := time.Now()
	P := len(c.backends)

	targets, skipped := c.availableShards()
	if len(skipped) > 0 && c.cfg.StrictConsistency {
		for _, i := range targets {
			c.health[i].releaseProbe()
		}
		return nil, &ShardError{Shard: skipped[0], Err: errors.New("tripped by health tracking")}
	}
	if len(targets) == 0 {
		return nil, &ShardError{Shard: skipped[0], Err: errors.New("no shard available")}
	}

	st := &batchState{
		perShard: make([][]*core.Result, P),
		stats:    make([]core.Stats, len(queries)),
		partial:  make([]bool, len(queries)),
	}
	for i := range st.perShard {
		st.perShard[i] = make([]*core.Result, len(queries))
	}
	if len(skipped) > 0 {
		for qi := range st.partial {
			st.partial[qi] = true
		}
	}

	// Round 1: every query to every target shard, reduced k.
	all := make([]int, len(queries))
	for i := range all {
		all[i] = i
	}
	round1 := make(map[int][]int, len(targets))
	for _, shard := range targets {
		round1[shard] = all
	}
	k0 := c.firstRoundK(k, P)
	c.batchRound(ctx, a, queries, k0, round1, st, obs.StageScatterRound1)
	if err := c.roundErrorBatch(st); err != nil {
		return nil, err
	}

	// Certify per query; group the escalations by shard.
	escalations := 0
	shortCircuited := 0
	if k0 < k {
		round2 := make(map[int][]int)
		column := make([]*core.Result, P)
		for qi := range queries {
			for s := 0; s < P; s++ {
				column[s] = st.perShard[s][qi]
			}
			merged := mergeTopK(column, k)
			escalate, settled := unsettledShards(column, merged, k)
			shortCircuited += settled
			for _, shard := range escalate {
				round2[shard] = append(round2[shard], qi)
			}
			escalations += len(escalate)
		}
		if len(round2) > 0 {
			c.batchRound(ctx, a, queries, k, round2, st, obs.StageScatterRound2)
			if err := c.roundErrorBatch(st); err != nil {
				return nil, err
			}
		}
	}

	if st.answered == 0 {
		if st.firstFail != nil {
			return nil, st.firstFail
		}
		return nil, &ShardError{Shard: targets[0], Err: errors.New("no shard answered")}
	}

	results := make([]*core.Result, len(queries))
	column := make([]*core.Result, P)
	var skewed []int
	for qi, q := range queries {
		for s := 0; s < P; s++ {
			column[s] = st.perShard[s][qi]
		}
		gen, skew := commonGeneration(column)
		if skew {
			// A mutation batch landed between this query's shard answers;
			// its column cannot be merged. Collect it for a clean re-scatter
			// below instead of failing the whole batch.
			skewed = append(skewed, qi)
			continue
		}
		results[qi] = &core.Result{
			Query:      q,
			K:          k,
			Entries:    mergeTopK(column, k),
			Partial:    st.partial[qi],
			Generation: gen,
			Stats:      st.stats[qi],
		}
	}
	// Re-scatter skewed queries one by one through the single-query path,
	// which carries its own skew retry loop; a failure there means the
	// shards genuinely diverged and the batch surfaces it.
	for _, qi := range skewed {
		res, err := c.QueryContext(ctx, a, queries[qi], k)
		if err != nil {
			return nil, err
		}
		results[qi] = res
	}
	c.metrics.observeBatch(time.Since(start), st.maxShard, st.rpcs, len(queries),
		st.transferred, escalations, shortCircuited)
	return results, nil
}

// batchRound issues one RPC per requested shard, carrying that shard's
// query subset, and folds the outcomes into st. reqs maps shard id to
// the batch positions it must answer at k.
func (c *Coordinator) batchRound(ctx context.Context, a core.Algorithm, queries []int32, k int, reqs map[int][]int, st *batchState, stage obs.Stage) {
	tr := obs.FromContext(ctx)
	psp := tr.Begin(stage)
	psp.SetAttr("shards", int64(len(reqs)))
	psp.SetAttr("k", int64(k))
	type out struct {
		shard   int
		idxs    []int
		res     []*core.Result
		err     error
		elapsed time.Duration
	}
	outs := make(chan out, len(reqs))
	for shard, idxs := range reqs {
		go func(shard int, idxs []int) {
			qs := make([]int32, len(idxs))
			for j, qi := range idxs {
				qs[j] = queries[qi]
			}
			sm := c.metrics.shards[shard]
			sm.inFlight.Add(1)
			csp := tr.BeginShard(stage, shard)
			csp.SetAttr("queries", int64(len(qs)))
			t0 := time.Now()
			res, err := c.backends[shard].QueryBatch(ctx, a, qs, k)
			elapsed := time.Since(t0)
			if err != nil {
				csp.SetAttr("error", 1)
			}
			tr.End(csp)
			sm.inFlight.Add(-1)
			c.metrics.observeShard(shard, elapsed, err)
			failure := err != nil && !fatalQueryError(err)
			if _, isOverload := overloadHint(err); isOverload {
				failure = false // shedding load is the admission layer working, not ill health
			}
			c.health[shard].record(!failure, c.cfg.failureThreshold(), c.cfg.retryBackoff())
			outs <- out{shard: shard, idxs: idxs, res: res, err: err, elapsed: elapsed}
		}(shard, idxs)
	}

	for range reqs {
		o := <-outs
		st.rpcs++
		if o.err == nil {
			st.answered++
			for j, qi := range o.idxs {
				res := o.res[j]
				st.perShard[o.shard][qi] = res
				st.stats[qi].Add(res.Stats)
				st.transferred += len(res.Entries)
				if res.Partial {
					st.partial[qi] = true
				}
			}
			if o.elapsed > st.maxShard {
				st.maxShard = o.elapsed
			}
			continue
		}
		if fatalQueryError(o.err) {
			if st.fatal == nil {
				st.fatal = o.err
			}
			continue
		}
		if ra, ok := overloadHint(o.err); ok {
			st.overloaded = append(st.overloaded, o.shard)
			if ra > st.retryAfter {
				st.retryAfter = ra
			}
			continue
		}
		// Availability failure: every query that still needed this shard
		// degrades (earlier-round answers, if any, keep serving).
		for _, qi := range o.idxs {
			st.partial[qi] = true
		}
		if st.firstFail == nil {
			st.firstFail = &ShardError{Shard: o.shard, Err: o.err}
		}
	}
	tr.End(psp)
}

// roundErrorBatch is roundError for batch rounds.
func (c *Coordinator) roundErrorBatch(st *batchState) error {
	if st.fatal != nil {
		return st.fatal
	}
	if len(st.overloaded) > 0 {
		return &OverloadedError{Shards: st.overloaded, RetryAfter: st.retryAfter}
	}
	if c.cfg.StrictConsistency && st.firstFail != nil {
		return st.firstFail
	}
	return nil
}
