package topk

import (
	"math"
	"testing"

	"rkranks/internal/gen"
	"rkranks/internal/rank"
	"rkranks/internal/sssp"
	tg "rkranks/internal/testgraphs"
)

func TestTopKToy(t *testing.T) {
	g := tg.Toy()
	res := TopK(g, tg.Alice, 3)
	want := []struct {
		node int32
		dist float64
	}{{tg.Bob, 1.0}, {tg.Eric, 1.2}, {tg.Caroline, 1.3}}
	if len(res) != 3 {
		t.Fatalf("len = %d", len(res))
	}
	for i, w := range want {
		if res[i].Node != w.node || math.Abs(res[i].Dist-w.dist) > 1e-9 {
			t.Errorf("topk[%d] = %+v, want %+v", i, res[i], w)
		}
	}
}

// TestReverseTopKToy pins the worked numbers of Example 1: reverse top-2 of
// Alice is empty; reverse top-2 of Eric includes all six researchers.
func TestReverseTopKToy(t *testing.T) {
	g := tg.Toy()
	if res := ReverseTopK(g, tg.Alice, 2); len(res) != 0 {
		t.Errorf("reverse top-2 of Alice = %v, want empty", res)
	}
	res := ReverseTopK(g, tg.Eric, 2)
	if len(res) != 6 {
		t.Fatalf("reverse top-2 of Eric has %d nodes, want 6: %v", len(res), res)
	}
	for _, e := range res {
		if want := tg.ToyRankMatrix[e.Node][tg.Eric]; e.Rank != want {
			t.Errorf("rank(%s,Eric) = %d, want %d", tg.ToyNames[e.Node], e.Rank, want)
		}
	}
}

// TestReverseTopKAgainstBruteForce: on random graphs the SDS-pruned
// evaluation must return exactly {p : Rank(p,q) <= k}.
func TestReverseTopKAgainstBruteForce(t *testing.T) {
	for _, directed := range []bool{false, true} {
		g := gen.GNM(45, 160, directed, 6)
		s := sssp.New(g)
		for q := int32(0); q < 45; q += 6 {
			for _, k := range []int{1, 3, 7} {
				got := ReverseTopK(g, q, k)
				var want []rank.Entry
				for p := int32(0); int(p) < g.N(); p++ {
					if p == q {
						continue
					}
					if r := rank.Of(s, p, q); r != rank.Unreachable && r <= int32(k) {
						want = append(want, rank.Entry{Node: p, Rank: r})
					}
				}
				rank.SortEntries(want)
				if len(got) != len(want) {
					t.Fatalf("directed=%v q=%d k=%d: got %v want %v", directed, q, k, got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("directed=%v q=%d k=%d: got %v want %v", directed, q, k, got, want)
					}
				}
			}
		}
	}
}

// TestReverseTopKBichromaticAgainstBruteForce validates the class-aware
// variant on random store/community splits.
func TestReverseTopKBichromaticAgainstBruteForce(t *testing.T) {
	g, stores := gen.RoadNetwork(gen.RoadNetworkParams{Rows: 7, Cols: 7, KeepProb: 0.5, Stores: 8, Seed: 12})
	candidates, counted := gen.StoreClasses(g.N(), stores)
	s := sssp.New(g)
	dist := make([]float64, g.N())
	for _, q := range stores {
		for _, k := range []int{1, 2, 4} {
			got := ReverseTopKBichromatic(g, q, k, candidates, counted)
			var want []rank.Entry
			for p := int32(0); int(p) < g.N(); p++ {
				if p == q || !candidates[p] {
					continue
				}
				sssp.AllDistances(s, p, dist)
				if math.IsInf(dist[q], 1) {
					continue
				}
				cnt := int32(0)
				for v := int32(0); int(v) < g.N(); v++ {
					if v != q && int(v) != int(p) && counted[v] && dist[v] < dist[q] {
						cnt++
					}
				}
				if cnt+1 <= int32(k) {
					want = append(want, rank.Entry{Node: p, Rank: cnt + 1})
				}
			}
			rank.SortEntries(want)
			if len(got) != len(want) {
				t.Fatalf("q=%d k=%d: got %d want %d entries", q, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("q=%d k=%d: %v vs %v", q, k, got, want)
				}
			}
		}
	}
}

// TestReverseTopKBichromaticNilClasses reduces to the monochromatic query.
func TestReverseTopKBichromaticNilClasses(t *testing.T) {
	g := tg.Toy()
	a := ReverseTopK(g, tg.Eric, 2)
	b := ReverseTopKBichromatic(g, tg.Eric, 2, nil, nil)
	if len(a) != len(b) {
		t.Fatalf("%v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%v vs %v", a, b)
		}
	}
}

func TestListsShape(t *testing.T) {
	g := tg.Toy()
	lists := Lists(g, 3)
	if len(lists) != g.N() {
		t.Fatalf("lists = %d", len(lists))
	}
	for v, l := range lists {
		if len(l) != 3 {
			t.Errorf("list[%d] has %d entries", v, len(l))
		}
		for i := 1; i < len(l); i++ {
			if l[i].Dist < l[i-1].Dist {
				t.Errorf("list[%d] not sorted", v)
			}
		}
	}
}

func TestReverseSizesAndStats(t *testing.T) {
	g := tg.Toy()
	lists := Lists(g, 2)
	sizes := ReverseSizes(lists, 2)
	// Eric is in everyone's top-2 (column Eric of Table 1 has ranks <= 2
	// for all others).
	if sizes[tg.Eric] != 6 {
		t.Errorf("reverse top-2 size of Eric = %d, want 6", sizes[tg.Eric])
	}
	if sizes[tg.Alice] != 0 {
		t.Errorf("reverse top-2 size of Alice = %d, want 0", sizes[tg.Alice])
	}
	st := Sizes(sizes, 2, 1, 6)
	if st.Largest != 6 {
		t.Errorf("largest = %d", st.Largest)
	}
	if st.Empty < 1 {
		t.Errorf("empty = %d", st.Empty)
	}
	if st.Large != 1 { // only Eric reaches the >=6 cap
		t.Errorf("large = %d", st.Large)
	}
	if st.TotalNodes != 7 || st.K != 2 {
		t.Errorf("stats meta: %+v", st)
	}
}

func TestAgreementRateBounds(t *testing.T) {
	g := tg.Toy()
	lists := Lists(g, 3)
	rate := AgreementRate(lists, 3)
	if rate < 0 || rate > 1 {
		t.Fatalf("rate = %g", rate)
	}
	// On a 2-node path agreement is total.
	p := tg.Path(2)
	if r := AgreementRate(Lists(p, 1), 1); r != 1 {
		t.Errorf("2-path agreement = %g", r)
	}
	// Empty lists: NaN.
	if r := AgreementRate(nil, 1); !math.IsNaN(r) {
		t.Errorf("empty agreement = %g", r)
	}
}

// TestAgreementDirected: on a directed cycle nobody's top-1 is mutual
// (0 -> 1 but 1's nearest is 2).
func TestAgreementDirected(t *testing.T) {
	g := tg.Cycle(4)
	if r := AgreementRate(Lists(g, 1), 1); r != 0 {
		t.Errorf("cycle agreement = %g, want 0", r)
	}
}
