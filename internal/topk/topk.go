// Package topk implements the comparison queries used by the paper's
// effectiveness study (Section 6.2): top-k (k nearest nodes by shortest
// path), reverse top-k (all nodes having q among their k nearest), batch
// top-k lists, and the agreement-rate analytics of Table 4.
package topk

import (
	"math"

	"rkranks/internal/graph"
	"rkranks/internal/rank"
	"rkranks/internal/sssp"
)

// TopK returns the k nearest nodes to q (excluding q), nearest first.
func TopK(g *graph.Graph, q int32, k int) []sssp.Result {
	return sssp.KNN(sssp.New(g), q, k)
}

// ReverseTopK returns every node p with Rank(p, q) <= k — the nodes that
// have q among their k nearest (ties included, per Definition 1's tie-aware
// rank). The result size is unbounded: this is precisely the imbalance the
// reverse k-ranks query fixes.
//
// Evaluation reuses the SDS-tree idea: traverse the transpose graph from q
// in distance order and rank-refine each reached node with an abort at k;
// by Theorem 1, the subtree below a failed node cannot qualify and is
// pruned.
func ReverseTopK(g *graph.Graph, q int32, k int) []rank.Entry {
	tree := sssp.New(g)
	ref := sssp.New(g)
	tree.ResetReverse(q)
	var out []rank.Entry
	for {
		v, d, ok := tree.Pop()
		if !ok {
			break
		}
		if v == q {
			tree.Expand(v, d)
			continue
		}
		r, exact := rank.OfBounded(ref, v, q, int32(k), sssp.Cutoff(d))
		if exact && r <= int32(k) {
			out = append(out, rank.Entry{Node: v, Rank: r})
			tree.Expand(v, d)
		}
	}
	rank.SortEntries(out)
	return out
}

// ReverseTopKBichromatic is the bichromatic variant of ReverseTopK
// (Definitions 3-4): it returns every candidate-class node p with
// bichromatic Rank(p, q) <= k, where ranks count only the counted class.
// Nil class slices admit every node, reducing to the monochromatic query.
// Used by the paper's Figure-5 case study, where the reverse top-1 query
// of a store returns the communities whose nearest store it is.
func ReverseTopKBichromatic(g *graph.Graph, q int32, k int, candidates, counted []bool) []rank.Entry {
	tree := sssp.New(g)
	ref := sssp.New(g)
	tree.ResetReverse(q)
	var out []rank.Entry
	for {
		v, d, ok := tree.Pop()
		if !ok {
			break
		}
		if v == q {
			tree.Expand(v, d)
			continue
		}
		if candidates != nil && !candidates[v] {
			// Non-candidates cannot be results but carry shortest paths.
			tree.Expand(v, d)
			continue
		}
		r, exact := rank.OfBoundedIn(ref, v, q, int32(k), sssp.Cutoff(d), counted)
		if exact && r <= int32(k) {
			out = append(out, rank.Entry{Node: v, Rank: r})
		}
		// Lemma 1 transfer to children: unchanged when v is counted,
		// weakened by one when it is not (the child may be a counted
		// member of v's strictly-closer set).
		cb := r
		if counted != nil && !counted[v] && cb > 0 {
			cb--
		}
		if cb <= int32(k) {
			tree.Expand(v, d)
		}
	}
	rank.SortEntries(out)
	return out
}

// Lists computes the top-kmax lists of every node: lists[v] holds v's kmax
// nearest nodes in nondecreasing distance order. Cost is |V| bounded
// Dijkstra runs; intended for the batch analytics of Tables 3-4 on
// experiment-scale graphs.
func Lists(g *graph.Graph, kmax int) [][]sssp.Result {
	n := g.N()
	lists := make([][]sssp.Result, n)
	s := sssp.New(g)
	for v := 0; v < n; v++ {
		lists[v] = sssp.KNN(s, int32(v), kmax)
	}
	return lists
}

// SizeStats summarizes reverse top-k result-set sizes over all query nodes,
// mirroring the rows of Table 3.
type SizeStats struct {
	K          int
	Largest    int // largest result-set size
	Empty      int // query nodes with empty results
	Small      int // query nodes with <= SmallCap results
	Large      int // query nodes with >= LargeCap results
	SmallCap   int
	LargeCap   int
	TotalNodes int
}

// ReverseSizes derives, from precomputed top-kmax lists, the reverse top-k
// result-set size of every node: sizes[v] = |{p : v among p's k nearest}|.
// k must not exceed the kmax the lists were built with.
func ReverseSizes(lists [][]sssp.Result, k int) []int {
	sizes := make([]int, len(lists))
	for _, l := range lists {
		for i := 0; i < k && i < len(l); i++ {
			sizes[l[i].Node]++
		}
	}
	return sizes
}

// Sizes computes Table-3 statistics from per-node reverse top-k sizes.
func Sizes(sizes []int, k, smallCap, largeCap int) SizeStats {
	st := SizeStats{K: k, SmallCap: smallCap, LargeCap: largeCap, TotalNodes: len(sizes)}
	for _, s := range sizes {
		if s > st.Largest {
			st.Largest = s
		}
		if s == 0 {
			st.Empty++
		}
		if s <= smallCap {
			st.Small++
		}
		if s >= largeCap {
			st.Large++
		}
	}
	return st
}

// AgreementRate computes the Table-4 metric: among all (i, j) pairs with j
// in i's top-k, the fraction where i is also in j's top-k.
func AgreementRate(lists [][]sssp.Result, k int) float64 {
	n := len(lists)
	member := make(map[int64]bool, n*k)
	key := func(i, j int32) int64 { return int64(i)<<32 | int64(uint32(j)) }
	for i, l := range lists {
		for x := 0; x < k && x < len(l); x++ {
			member[key(int32(i), l[x].Node)] = true
		}
	}
	var total, agree int64
	for i, l := range lists {
		for x := 0; x < k && x < len(l); x++ {
			total++
			if member[key(l[x].Node, int32(i))] {
				agree++
			}
		}
	}
	if total == 0 {
		return math.NaN()
	}
	return float64(agree) / float64(total)
}
