package obs

import (
	"flag"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildCatalog produces a deterministic registry exercising every
// instrument kind the catalog defines.
func buildCatalog() *Registry {
	reg := NewRegistry()
	m := NewMetrics(reg)

	// Materialize the route series the server creates at startup, in a
	// scrambled order to prove exposition sorts them.
	for _, route := range []string{"query", "batch", "mutate", "other"} {
		m.Requests.With(route)
		m.RequestSeconds.With(route)
	}
	m.Responses.With("query", "2xx").Add(3)
	m.Responses.With("query", "5xx").Inc()
	m.Responses.With("batch", "2xx").Inc()

	m.Requests.With("query").Add(4)
	m.Shed.Inc()
	m.QueriesOK.Add(3)
	m.RequestSeconds.With("query").Observe(0.003)
	m.StageSeconds[StageAdmission].Observe(0.0002)
	m.StageSeconds[StageEngineRefine].Observe(0.002)

	m.CacheHits.Add(2)
	m.CacheMisses.Inc()
	m.ClusterQueries.Inc()
	m.ClusterShortCircuited.Add(3)
	m.SkewRetries.Inc()
	m.MutationBatches.Inc()
	m.MutationOps.Add(5)
	m.MutationApplySeconds.Observe(0.05)
	m.EngineRefinements.Add(120)
	m.LabelPruned.Add(80)
	m.LabelFallbacks.Add(7)
	m.SlowQueries.Inc()

	m.RegisterGauge("rkranks_in_flight_requests", func() float64 { return 2 })
	m.RegisterGauge("rkranks_generation", func() float64 { return 5 })
	return reg
}

// TestPrometheusGolden pins the full exposition — every metric name,
// label set, help line, and bucket layout — to a golden file. A diff
// here means the wire catalog changed: update the golden AND the README
// metrics table.
func TestPrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := buildCatalog().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	const golden = "testdata/metrics.golden"
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition diverged from golden; run `go test ./internal/obs -run Golden -update` if intentional.\ngot:\n%s", got)
	}
}

// TestPrometheusFormatValid line-checks the exposition against the text
// format grammar: HELP/TYPE pairs, legal metric and label names, float
// values, cumulative non-decreasing buckets ending at +Inf.
func TestPrometheusFormatValid(t *testing.T) {
	var b strings.Builder
	if err := buildCatalog().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (\+Inf|-?[0-9.e+-]+)$`)
	comment := regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$`)
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) < 10 {
		t.Fatalf("suspiciously short exposition: %d lines", len(lines))
	}
	for _, line := range lines {
		if strings.HasPrefix(line, "#") {
			if !comment.MatchString(line) {
				t.Errorf("bad comment line: %q", line)
			}
			continue
		}
		if !sample.MatchString(line) {
			t.Errorf("bad sample line: %q", line)
		}
	}
	for _, want := range []string{
		"rkranks_stage_duration_seconds_bucket{stage=\"engine.refine\",le=\"+Inf\"}",
		"rkranks_request_duration_seconds_count{route=\"query\"}",
		"rkranks_generation_skew_retries_total 1",
		"# TYPE rkranks_cache_hits_total counter",
		"# TYPE rkranks_in_flight_requests gauge",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestHistogramBucketsCumulative checks the cumulative invariant and
// the +Inf terminal bucket equals _count.
func TestHistogramBucketsCumulative(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("x_seconds", "test", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.005, 0.005, 0.05, 5} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`x_seconds_bucket{le="0.001"} 1`,
		`x_seconds_bucket{le="0.01"} 3`,
		`x_seconds_bucket{le="0.1"} 4`,
		`x_seconds_bucket{le="+Inf"} 5`,
		`x_seconds_count 5`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q in:\n%s", want, b.String())
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
}

func TestNilRegistryAndHandles(t *testing.T) {
	m := NewMetrics(nil) // must not panic, instruments must work
	m.CacheHits.Inc()
	if got := m.CacheHits.Value(); got != 1 {
		t.Errorf("unregistered counter = %d", got)
	}
	m.StageSeconds[StageCacheLookup].Observe(0.001)
	m.RegisterGauge("rkranks_generation", func() float64 { return 1 })

	var nilC *Counter
	nilC.Inc()
	nilC.Add(5)
	var nilH *Histogram
	nilH.Observe(1)
	var nilR *Registry
	if err := nilR.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	reg.NewCounter("dup_total", "y")
}

func TestUnknownGaugePanics(t *testing.T) {
	m := NewMetrics(NewRegistry())
	defer func() {
		if recover() == nil {
			t.Error("unknown gauge name did not panic")
		}
	}()
	m.RegisterGauge("rkranks_not_in_catalog", func() float64 { return 0 })
}

func TestRegistryHandler(t *testing.T) {
	rec := httptest.NewRecorder()
	buildCatalog().Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "rkranks_requests_total{route=\"query\"} 4") {
		t.Errorf("handler body missing incremented counter:\n%s", rec.Body.String())
	}
}
