package obs

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"math/rand/v2"
	"sync"
	"time"
)

// Stage identifies a typed span within a request trace. The set is
// closed: every stage maps to one rkranks_stage_duration_seconds series,
// and the flight recorder renders the same names, so the two surfaces
// agree by construction.
type Stage uint8

const (
	// StageAdmission is the wait for an in-flight slot (admission control).
	StageAdmission Stage = iota
	// StageCacheLookup is the response-cache probe (hit, miss, or join).
	StageCacheLookup
	// StageCacheFlight is the wait for a coalesced singleflight to finish.
	StageCacheFlight
	// StageScatterRound1 is the first scatter-gather round at reduced k.
	StageScatterRound1
	// StageScatterRound2 is the escalation round at full k.
	StageScatterRound2
	// StageEngineRefine is engine dispatch for non-label algorithms.
	StageEngineRefine
	// StageLabelScan is engine dispatch for HubLabel queries (label scan
	// interleaved with fallback refinement).
	StageLabelScan
	// StageLiveSnapshot is the wait for a consistent live-store snapshot.
	StageLiveSnapshot

	numStages
)

// NumStages is the number of defined span stages.
const NumStages = int(numStages)

var stageNames = [NumStages]string{
	"admission",
	"cache.lookup",
	"cache.flight",
	"scatter.round1",
	"scatter.round2",
	"engine.refine",
	"label.scan",
	"live.snapshot",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

const (
	maxSpans = 32
	maxAttrs = 6
)

// Attr is a typed span attribute. Values are int64 only — no interface
// boxing, no allocation.
type Attr struct {
	Key   string
	Value int64
}

// Span is one timed stage inside a trace. Spans live in a fixed array
// inside the Trace; a *Span stays valid until the trace is released.
type Span struct {
	Stage Stage
	Shard int32 // owning shard for per-shard child spans, -1 otherwise
	Start time.Duration
	End   time.Duration
	nattr uint8
	attrs [maxAttrs]Attr
}

// SetAttr attaches a typed attribute. Beyond maxAttrs the attribute is
// dropped silently; nil receivers no-op.
func (sp *Span) SetAttr(key string, v int64) {
	if sp == nil {
		return
	}
	if int(sp.nattr) < len(sp.attrs) {
		sp.attrs[sp.nattr] = Attr{Key: key, Value: v}
		sp.nattr++
	}
}

// Attrs returns the attached attributes.
func (sp *Span) Attrs() []Attr {
	if sp == nil {
		return nil
	}
	return sp.attrs[:sp.nattr]
}

// Attr returns the named attribute.
func (sp *Span) Attr(key string) (int64, bool) {
	if sp == nil {
		return 0, false
	}
	for _, a := range sp.attrs[:sp.nattr] {
		if a.Key == key {
			return a.Value, true
		}
	}
	return 0, false
}

// Duration is the span's elapsed time.
func (sp *Span) Duration() time.Duration {
	if sp == nil {
		return 0
	}
	return sp.End - sp.Start
}

// Trace is one request's span collection. Traces are pooled and hold
// their spans inline, so steady-state tracing allocates nothing. Begin
// is safe to call from concurrent goroutines (shard fan-out); each
// returned *Span must then be written only by its claiming goroutine.
type Trace struct {
	id    string
	route string
	start time.Time

	mu      sync.Mutex
	n       int
	dropped int
	spans   [maxSpans]Span
}

var tracePool = sync.Pool{New: func() any { return new(Trace) }}

// NewTrace returns a pooled trace stamped with the request ID and route
// class. Release it when the request (and any recorder copy) is done.
func NewTrace(id, route string) *Trace {
	t := tracePool.Get().(*Trace)
	t.Reset(id, route)
	return t
}

// Reset rearms the trace in place for a new request.
func (t *Trace) Reset(id, route string) {
	t.id = id
	t.route = route
	t.start = time.Now()
	t.n = 0
	t.dropped = 0
}

// Release returns the trace to the pool. The caller must drop every
// *Span and Spans() slice first.
func (t *Trace) Release() {
	if t == nil {
		return
	}
	tracePool.Put(t)
}

// ID returns the request ID the trace was stamped with.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Route returns the route class ("query", "batch", "mutate", ...).
func (t *Trace) Route() string {
	if t == nil {
		return ""
	}
	return t.route
}

// StartTime returns the trace's zero offset.
func (t *Trace) StartTime() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Begin opens a span for stage. It returns nil (safe to use) when the
// trace is nil or full; spans beyond capacity are counted as dropped.
func (t *Trace) Begin(stage Stage) *Span {
	return t.BeginShard(stage, -1)
}

// BeginShard opens a per-shard child span.
func (t *Trace) BeginShard(stage Stage, shard int) *Span {
	if t == nil {
		return nil
	}
	off := time.Since(t.start)
	t.mu.Lock()
	if t.n >= len(t.spans) {
		t.dropped++
		t.mu.Unlock()
		return nil
	}
	sp := &t.spans[t.n]
	t.n++
	t.mu.Unlock()
	sp.Stage = stage
	sp.Shard = int32(shard)
	sp.Start = off
	sp.End = 0
	sp.nattr = 0
	return sp
}

// End closes a span. Nil trace or span no-ops.
func (t *Trace) End(sp *Span) {
	if t == nil || sp == nil {
		return
	}
	sp.End = time.Since(t.start)
}

// Spans returns the recorded spans. Call only after every concurrent
// Begin caller has synchronized with this goroutine (request complete);
// the slice aliases trace storage and dies with Release.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	n := t.n
	t.mu.Unlock()
	return t.spans[:n]
}

// Dropped reports spans discarded because the trace was full.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Attr returns the named attribute from the most recent span of the
// given stage.
func (t *Trace) Attr(stage Stage, key string) (int64, bool) {
	if t == nil {
		return 0, false
	}
	spans := t.Spans()
	for i := len(spans) - 1; i >= 0; i-- {
		if spans[i].Stage == stage {
			if v, ok := spans[i].Attr(key); ok {
				return v, true
			}
		}
	}
	return 0, false
}

type traceKey struct{}

// ContextWithTrace attaches a trace to the context; every layer below
// (cache, cluster, engine, live store) picks it up via FromContext.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the context's trace, or nil. All Trace and Span
// methods accept the nil result, so callers never branch.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// RequestIDFromContext returns the request ID carried by the context's
// trace, or "". The API client injects it into the X-Request-Id header
// so rkcluster traces stitch across machines.
func RequestIDFromContext(ctx context.Context) string {
	return FromContext(ctx).ID()
}

// NewRequestID returns a fresh 128-bit hex request ID.
func NewRequestID() string {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], rand.Uint64())
	binary.LittleEndian.PutUint64(b[8:], rand.Uint64())
	return hex.EncodeToString(b[:])
}
