// Package obs is the observability substrate: a dependency-free metrics
// registry with Prometheus text exposition, a canonical catalog of every
// instrument the serving stack emits (metrics.go), an allocation-free
// per-request trace (trace.go), and a slow-query flight recorder
// (recorder.go).
//
// Instrument NAMES live only in this package. Other packages receive
// handles (via Metrics) and call Inc/Add/Observe; CI rejects instrument
// construction anywhere else so /metrics, /statsz, and the docs can
// never drift apart.
package obs

import (
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry collects instruments and renders them in the Prometheus text
// exposition format (version 0.0.4). A nil *Registry is valid: every
// constructor on it returns a working, unregistered instrument, which is
// how components run standalone in tests without a metrics endpoint.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

type family struct {
	name   string
	help   string
	typ    string // "counter" | "gauge" | "histogram"
	labels []string

	mu     sync.Mutex
	series []*series
	gauge  func() float64 // gauge families have exactly one sampled series
}

type series struct {
	labelVals []string
	c         *Counter
	h         *Histogram
}

func (r *Registry) register(name, help, typ string, labels []string) *family {
	f := &family{name: name, help: help, typ: typ, labels: labels}
	if r == nil {
		return f
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic("obs: duplicate metric registration: " + name)
	}
	r.byName[name] = f
	r.fams = append(r.fams, f)
	return f
}

// Counter is a monotonically increasing int64. Nil receivers no-op so
// unwired components never have to branch.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative n is ignored: counters are monotone).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// NewCounter registers a scalar counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.register(name, help, "counter", nil)
	c := &Counter{}
	f.series = append(f.series, &series{c: c})
	return c
}

// CounterVec is a family of counters keyed by label values.
type CounterVec struct {
	fam    *family
	mu     sync.Mutex
	byKey  map[string]*Counter
	labels []string
}

// NewCounterVec registers a labelled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{
		fam:    r.register(name, help, "counter", labels),
		byKey:  make(map[string]*Counter),
		labels: labels,
	}
}

// With returns the counter for the given label values, creating it on
// first use. Handles are stable: fetch once, reuse forever.
func (v *CounterVec) With(vals ...string) *Counter {
	if len(vals) != len(v.labels) {
		panic("obs: label cardinality mismatch for " + v.fam.name)
	}
	key := strings.Join(vals, "\xff")
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.byKey[key]; ok {
		return c
	}
	c := &Counter{}
	v.byKey[key] = c
	v.fam.mu.Lock()
	v.fam.series = append(v.fam.series, &series{labelVals: append([]string(nil), vals...), c: c})
	v.fam.mu.Unlock()
	return c
}

// DefBuckets are the default latency buckets, in seconds: 100µs to 10s.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with cumulative exposition.
// Observe is lock-free. Nil receivers no-op.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last bucket is +Inf
	sum    atomic.Uint64  // float64 bits
	count  atomic.Int64
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	return &Histogram{
		bounds: buckets,
		counts: make([]atomic.Int64, len(buckets)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// NewHistogram registers a scalar histogram. Nil buckets selects
// DefBuckets.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, "histogram", nil)
	h := newHistogram(buckets)
	f.series = append(f.series, &series{h: h})
	return h
}

// HistogramVec is a family of histograms keyed by label values.
type HistogramVec struct {
	fam     *family
	mu      sync.Mutex
	byKey   map[string]*Histogram
	labels  []string
	buckets []float64
}

// NewHistogramVec registers a labelled histogram family.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{
		fam:     r.register(name, help, "histogram", labels),
		byKey:   make(map[string]*Histogram),
		labels:  labels,
		buckets: buckets,
	}
}

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(vals ...string) *Histogram {
	if len(vals) != len(v.labels) {
		panic("obs: label cardinality mismatch for " + v.fam.name)
	}
	key := strings.Join(vals, "\xff")
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.byKey[key]; ok {
		return h
	}
	h := newHistogram(v.buckets)
	v.byKey[key] = h
	v.fam.mu.Lock()
	v.fam.series = append(v.fam.series, &series{labelVals: append([]string(nil), vals...), h: h})
	v.fam.mu.Unlock()
	return h
}

// NewGauge registers a gauge sampled from fn at scrape time. Gauges are
// pull-only: components expose a closure over state they already track
// instead of maintaining a second copy.
func (r *Registry) NewGauge(name, help string, fn func() float64) {
	f := r.register(name, help, "gauge", nil)
	f.gauge = fn
}

// WritePrometheus renders every registered family in the text exposition
// format. Families appear in registration order; series within a family
// are sorted by label values, so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		f.write(&b)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(b *strings.Builder) {
	b.WriteString("# HELP ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(f.help))
	b.WriteString("\n# TYPE ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(f.typ)
	b.WriteByte('\n')

	if f.gauge != nil {
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(formatFloat(f.gauge()))
		b.WriteByte('\n')
		return
	}

	f.mu.Lock()
	ss := make([]*series, len(f.series))
	copy(ss, f.series)
	f.mu.Unlock()
	sort.Slice(ss, func(i, j int) bool {
		a, c := ss[i].labelVals, ss[j].labelVals
		for k := range a {
			if a[k] != c[k] {
				return a[k] < c[k]
			}
		}
		return false
	})

	for _, s := range ss {
		switch {
		case s.c != nil:
			writeName(b, f.name, f.labels, s.labelVals, "")
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(s.c.Value(), 10))
			b.WriteByte('\n')
		case s.h != nil:
			s.h.write(b, f.name, f.labels, s.labelVals)
		}
	}
}

func (h *Histogram) write(b *strings.Builder, name string, labels, vals []string) {
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeName(b, name+"_bucket", labels, vals, formatFloat(bound))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(cum, 10))
		b.WriteByte('\n')
	}
	cum += h.counts[len(h.bounds)].Load()
	writeName(b, name+"_bucket", labels, vals, "+Inf")
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(cum, 10))
	b.WriteByte('\n')
	writeName(b, name+"_sum", labels, vals, "")
	b.WriteByte(' ')
	b.WriteString(formatFloat(h.Sum()))
	b.WriteByte('\n')
	writeName(b, name+"_count", labels, vals, "")
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(h.Count(), 10))
	b.WriteByte('\n')
}

// writeName emits name{label="val",...} with an optional trailing le
// bucket label.
func writeName(b *strings.Builder, name string, labels, vals []string, le string) {
	b.WriteString(name)
	if len(labels) == 0 && le == "" {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// Handler serves the registry in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
