package obs

import (
	"encoding/json"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"strings"
	"sync"
	"time"
)

// RecorderConfig configures the slow-query flight recorder.
type RecorderConfig struct {
	// SlowThreshold marks a request slow when its total latency meets or
	// exceeds it. Zero or negative means every request is slow (the
	// debugging posture: -slow-query-ms 0).
	SlowThreshold time.Duration
	// RingSize bounds the slow ring (default 64).
	RingSize int
	// SampleSize bounds the reservoir of normal requests (default 32).
	SampleSize int
	// Logger, when set, receives a structured event per slow request.
	Logger *slog.Logger
}

const (
	defaultRingSize   = 64
	defaultSampleSize = 32
)

// Recorder keeps complete traces for slow requests in a bounded ring,
// plus a reservoir sample of normal ones for baseline comparison. It
// copies traces into TraceRecords on capture, so callers release their
// pooled Trace immediately after Observe.
type Recorder struct {
	threshold time.Duration
	logger    *slog.Logger

	mu      sync.Mutex
	seen    uint64
	slowN   uint64
	slow    []TraceRecord // ring, oldest first up to ringIdx wrap
	ringIdx int
	sample  []TraceRecord // reservoir (Algorithm R)
	ringCap int
	sampCap int
}

// NewRecorder builds a recorder. A nil *Recorder is valid and inert.
func NewRecorder(cfg RecorderConfig) *Recorder {
	r := &Recorder{
		threshold: cfg.SlowThreshold,
		logger:    cfg.Logger,
		ringCap:   cfg.RingSize,
		sampCap:   cfg.SampleSize,
	}
	if r.ringCap <= 0 {
		r.ringCap = defaultRingSize
	}
	if r.sampCap <= 0 {
		r.sampCap = defaultSampleSize
	}
	return r
}

// Threshold returns the configured slow threshold.
func (r *Recorder) Threshold() time.Duration {
	if r == nil {
		return 0
	}
	return r.threshold
}

// TraceRecord is a completed trace, flattened for the requestz dump.
type TraceRecord struct {
	RequestID    string       `json:"request_id"`
	Route        string       `json:"route"`
	Status       int          `json:"status"`
	Start        time.Time    `json:"start"`
	TotalMS      float64      `json:"total_ms"`
	Slow         bool         `json:"slow"`
	SpansDropped int          `json:"spans_dropped,omitempty"`
	Spans        []SpanRecord `json:"spans"`
}

// SpanRecord is one span of a TraceRecord.
type SpanRecord struct {
	Stage      string           `json:"stage"`
	Shard      *int             `json:"shard,omitempty"`
	StartMS    float64          `json:"start_ms"`
	DurationMS float64          `json:"duration_ms"`
	Attrs      map[string]int64 `json:"attrs,omitempty"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func makeRecord(t *Trace, status int, total time.Duration, slow bool) TraceRecord {
	spans := t.Spans()
	rec := TraceRecord{
		RequestID:    t.ID(),
		Route:        t.Route(),
		Status:       status,
		Start:        t.StartTime(),
		TotalMS:      ms(total),
		Slow:         slow,
		SpansDropped: t.Dropped(),
		Spans:        make([]SpanRecord, 0, len(spans)),
	}
	for i := range spans {
		sp := &spans[i]
		sr := SpanRecord{
			Stage:      sp.Stage.String(),
			StartMS:    ms(sp.Start),
			DurationMS: ms(sp.Duration()),
		}
		if sp.Shard >= 0 {
			shard := int(sp.Shard)
			sr.Shard = &shard
		}
		if attrs := sp.Attrs(); len(attrs) > 0 {
			sr.Attrs = make(map[string]int64, len(attrs))
			for _, a := range attrs {
				sr.Attrs[a.Key] = a.Value
			}
		}
		rec.Spans = append(rec.Spans, sr)
	}
	return rec
}

// Observe feeds one completed request. It copies what it keeps; the
// caller still owns (and should Release) the trace. Returns whether the
// request was classified slow.
func (r *Recorder) Observe(t *Trace, status int, total time.Duration) bool {
	if r == nil || t == nil {
		return false
	}
	slow := total >= r.threshold
	r.mu.Lock()
	r.seen++
	if slow {
		r.slowN++
		rec := makeRecord(t, status, total, true)
		if len(r.slow) < r.ringCap {
			r.slow = append(r.slow, rec)
		} else {
			r.slow[r.ringIdx] = rec
			r.ringIdx = (r.ringIdx + 1) % r.ringCap
		}
	} else {
		// Reservoir-sample normal requests (Algorithm R) so requestz
		// always shows what "fine" looks like next to what is slow.
		if len(r.sample) < r.sampCap {
			r.sample = append(r.sample, makeRecord(t, status, total, false))
		} else if j := rand.Uint64N(r.seen); j < uint64(r.sampCap) {
			r.sample[j] = makeRecord(t, status, total, false)
		}
	}
	r.mu.Unlock()

	if slow && r.logger != nil {
		r.logSlow(t, status, total)
	}
	return slow
}

func (r *Recorder) logSlow(t *Trace, status int, total time.Duration) {
	spans := t.Spans()
	var b strings.Builder
	for i := range spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(spans[i].Stage.String())
		b.WriteByte('=')
		b.WriteString(spans[i].Duration().String())
	}
	r.logger.Warn("slow query",
		"request_id", t.ID(),
		"route", t.Route(),
		"status", status,
		"elapsed_ms", ms(total),
		"threshold_ms", ms(r.threshold),
		"spans", b.String(),
	)
}

// RecorderSnapshot is the GET /debug/requestz document.
type RecorderSnapshot struct {
	ThresholdMS float64       `json:"threshold_ms"`
	Seen        uint64        `json:"seen"`
	SlowTotal   uint64        `json:"slow_total"`
	Slow        []TraceRecord `json:"slow"`    // newest first
	Sampled     []TraceRecord `json:"sampled"` // reservoir of normal requests
}

// Snapshot returns the retained traces, slow ones newest-first.
func (r *Recorder) Snapshot() RecorderSnapshot {
	if r == nil {
		return RecorderSnapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := RecorderSnapshot{
		ThresholdMS: ms(r.threshold),
		Seen:        r.seen,
		SlowTotal:   r.slowN,
		Slow:        make([]TraceRecord, 0, len(r.slow)),
		Sampled:     append([]TraceRecord(nil), r.sample...),
	}
	// The ring is oldest-first starting at ringIdx; emit newest-first.
	for i := len(r.slow) - 1; i >= 0; i-- {
		snap.Slow = append(snap.Slow, r.slow[(r.ringIdx+i)%len(r.slow)])
	}
	return snap
}

// Handler serves the recorder snapshot as indented JSON.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}
