package obs

import (
	"context"
	"regexp"
	"sync"
	"testing"
	"time"
)

func TestStageNames(t *testing.T) {
	want := map[Stage]string{
		StageAdmission:     "admission",
		StageCacheLookup:   "cache.lookup",
		StageCacheFlight:   "cache.flight",
		StageScatterRound1: "scatter.round1",
		StageScatterRound2: "scatter.round2",
		StageEngineRefine:  "engine.refine",
		StageLabelScan:     "label.scan",
		StageLiveSnapshot:  "live.snapshot",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("Stage(%d) = %q, want %q", s, s.String(), name)
		}
	}
	if Stage(200).String() != "unknown" {
		t.Errorf("out-of-range stage = %q", Stage(200).String())
	}
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace("rid-1", "query")
	defer tr.Release()

	sp := tr.Begin(StageAdmission)
	time.Sleep(time.Millisecond)
	sp.SetAttr("queued", 1)
	tr.End(sp)

	sp2 := tr.BeginShard(StageScatterRound1, 3)
	tr.End(sp2)

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d", len(spans))
	}
	if spans[0].Stage != StageAdmission || spans[0].Shard != -1 {
		t.Errorf("span0 = %+v", spans[0])
	}
	if spans[0].Duration() < time.Millisecond {
		t.Errorf("span0 duration = %v", spans[0].Duration())
	}
	if v, ok := spans[0].Attr("queued"); !ok || v != 1 {
		t.Errorf("attr queued = %d, %v", v, ok)
	}
	if spans[1].Shard != 3 {
		t.Errorf("shard span = %+v", spans[1])
	}
	if v, ok := tr.Attr(StageAdmission, "queued"); !ok || v != 1 {
		t.Errorf("trace attr lookup = %d, %v", v, ok)
	}
	if _, ok := tr.Attr(StageEngineRefine, "queued"); ok {
		t.Error("attr found for absent stage")
	}
}

func TestTraceConcurrentShardSpans(t *testing.T) {
	tr := NewTrace("rid-c", "query")
	defer tr.Release()
	var wg sync.WaitGroup
	for shard := 0; shard < 8; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			sp := tr.BeginShard(StageScatterRound1, shard)
			sp.SetAttr("entries", int64(shard))
			tr.End(sp)
		}(shard)
	}
	wg.Wait()
	spans := tr.Spans()
	if len(spans) != 8 {
		t.Fatalf("spans = %d", len(spans))
	}
	seen := map[int32]int64{}
	for i := range spans {
		v, _ := spans[i].Attr("entries")
		seen[spans[i].Shard] = v
	}
	for shard := int32(0); shard < 8; shard++ {
		if seen[shard] != int64(shard) {
			t.Errorf("shard %d attr = %d", shard, seen[shard])
		}
	}
}

func TestTraceOverflowDrops(t *testing.T) {
	tr := NewTrace("rid-o", "query")
	defer tr.Release()
	for i := 0; i < maxSpans+5; i++ {
		sp := tr.Begin(StageEngineRefine)
		tr.End(sp) // nil-safe past capacity
	}
	if got := len(tr.Spans()); got != maxSpans {
		t.Errorf("spans = %d, want %d", got, maxSpans)
	}
	if tr.Dropped() != 5 {
		t.Errorf("dropped = %d, want 5", tr.Dropped())
	}
}

func TestTraceReusedAfterRelease(t *testing.T) {
	tr := NewTrace("first", "query")
	tr.Begin(StageAdmission)
	tr.Release()
	tr2 := NewTrace("second", "batch")
	defer tr2.Release()
	if tr2.ID() != "second" || tr2.Route() != "batch" {
		t.Errorf("reset trace = %q/%q", tr2.ID(), tr2.Route())
	}
	if len(tr2.Spans()) != 0 || tr2.Dropped() != 0 {
		t.Error("pooled trace kept stale spans")
	}
}

func TestContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Error("empty context yielded a trace")
	}
	if RequestIDFromContext(context.Background()) != "" {
		t.Error("empty context yielded a request ID")
	}
	tr := NewTrace("rid-ctx", "query")
	defer tr.Release()
	ctx := ContextWithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Error("trace did not round-trip")
	}
	if RequestIDFromContext(ctx) != "rid-ctx" {
		t.Errorf("request id = %q", RequestIDFromContext(ctx))
	}
}

func TestNewRequestID(t *testing.T) {
	hex32 := regexp.MustCompile(`^[0-9a-f]{32}$`)
	a, b := NewRequestID(), NewRequestID()
	if !hex32.MatchString(a) {
		t.Errorf("request id %q not 32 hex chars", a)
	}
	if a == b {
		t.Error("consecutive request IDs collided")
	}
}

// TestSpanZeroAlloc pins the tracing hot path: opening, annotating, and
// closing spans on a live trace allocates nothing. This is what lets
// the engine and cluster record spans inside the ≤2 allocs/query gate.
func TestSpanZeroAlloc(t *testing.T) {
	tr := NewTrace("rid-alloc", "query")
	defer tr.Release()
	ctx := ContextWithTrace(context.Background(), tr)
	allocs := testing.AllocsPerRun(200, func() {
		tr.Reset("rid-alloc", "query")
		got := FromContext(ctx)
		sp := got.Begin(StageEngineRefine)
		sp.SetAttr("refinements", 42)
		got.End(sp)
		sp2 := got.BeginShard(StageScatterRound1, 1)
		got.End(sp2)
	})
	if allocs != 0 {
		t.Errorf("span lifecycle allocates %v/op, want 0", allocs)
	}
}

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	sp := tr.Begin(StageAdmission)
	if sp != nil {
		t.Fatal("nil trace returned a span")
	}
	sp.SetAttr("x", 1)
	tr.End(sp)
	tr.Release()
	if tr.ID() != "" || tr.Route() != "" || len(tr.Spans()) != 0 || tr.Dropped() != 0 {
		t.Error("nil trace not inert")
	}
	if _, ok := tr.Attr(StageAdmission, "x"); ok {
		t.Error("nil trace had attrs")
	}
}
