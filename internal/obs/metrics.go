package obs

// Metrics is the canonical instrument catalog: every counter and
// histogram the serving stack emits is defined here, once, with its
// Prometheus name and help text. Components receive a *Metrics and use
// the handles; they never construct instruments themselves (CI lints
// for registration outside this package).
//
// Naming conventions (see CONTRIBUTING):
//   - everything is prefixed rkranks_
//   - counters end in _total, durations in _seconds
//   - label cardinality is closed and tiny (route class, stage, status
//     class) — never a query, node ID, or request ID
type Metrics struct {
	reg *Registry

	// HTTP surface.
	Requests       *CounterVec // route
	Responses      *CounterVec // route, class
	Shed           *Counter
	RequestSeconds *HistogramVec // route
	QueriesOK      *Counter

	// Per-stage trace latency, indexable by Stage with no allocation.
	StageSeconds [NumStages]*Histogram

	// Response cache.
	CacheHits      *Counter
	CacheMisses    *Counter
	CacheCoalesced *Counter
	CacheInserts   *Counter
	CacheEvictions *Counter

	// Scatter-gather cluster.
	ClusterQueries        *Counter
	ClusterPartials       *Counter
	ClusterEscalations    *Counter
	ClusterShortCircuited *Counter
	ClusterTransferred    *Counter
	ClusterShardFailures  *Counter
	ClusterBatches        *Counter
	ClusterBatchRPCs      *Counter
	ClusterBatchQueries   *Counter
	SkewRetries           *Counter

	// Live mutation pipeline.
	MutationBatches      *Counter
	MutationOps          *Counter
	MutationPatches      *Counter
	MutationRebuilds     *Counter
	MutationRelabels     *Counter
	MutationApplySeconds *Histogram

	// Engine decision counters (aggregated from per-query core.Stats).
	EngineRefinements      *Counter
	EnginePruned           *Counter
	EngineIndexHits        *Counter
	EngineSharedTraversals *Counter
	LabelPruned            *Counter
	LabelFallbacks         *Counter

	// Replica groups and index replication.
	ReplicaFailovers     *Counter
	ReplicaCatchups      *Counter
	IndexSnapshotsServed *Counter
	IndexDeltasServed    *Counter
	IndexSnapshotsLoaded *Counter
	IndexDeltasApplied   *Counter

	// Flight recorder.
	SlowQueries *Counter
}

// NewMetrics builds the full catalog against r. A nil registry yields
// working, unregistered instruments — the default for components wired
// without a metrics endpoint (most tests).
func NewMetrics(r *Registry) *Metrics {
	m := &Metrics{reg: r}

	m.Requests = r.NewCounterVec("rkranks_requests_total",
		"HTTP requests received, by route class.", "route")
	m.Responses = r.NewCounterVec("rkranks_responses_total",
		"HTTP responses sent, by route class and status class.", "route", "class")
	m.Shed = r.NewCounter("rkranks_requests_shed_total",
		"Requests rejected by admission control (503/429).")
	m.RequestSeconds = r.NewHistogramVec("rkranks_request_duration_seconds",
		"End-to-end request latency, by route class.", nil, "route")
	m.QueriesOK = r.NewCounter("rkranks_queries_ok_total",
		"Individual queries answered successfully (batch queries counted singly).")

	stageSeconds := r.NewHistogramVec("rkranks_stage_duration_seconds",
		"Per-stage latency decomposed from request traces.", nil, "stage")
	for s := 0; s < NumStages; s++ {
		m.StageSeconds[s] = stageSeconds.With(Stage(s).String())
	}

	m.CacheHits = r.NewCounter("rkranks_cache_hits_total",
		"Response cache hits.")
	m.CacheMisses = r.NewCounter("rkranks_cache_misses_total",
		"Response cache misses (includes coalesced joins).")
	m.CacheCoalesced = r.NewCounter("rkranks_cache_coalesced_total",
		"Misses that joined an in-flight identical query instead of computing.")
	m.CacheInserts = r.NewCounter("rkranks_cache_inserts_total",
		"Entries inserted into the response cache.")
	m.CacheEvictions = r.NewCounter("rkranks_cache_evictions_total",
		"Entries evicted from the response cache (LRU or generation turnover).")

	m.ClusterQueries = r.NewCounter("rkranks_cluster_queries_total",
		"Scatter-gather queries coordinated.")
	m.ClusterPartials = r.NewCounter("rkranks_cluster_partials_total",
		"Coordinated queries answered Partial (at least one shard missing).")
	m.ClusterEscalations = r.NewCounter("rkranks_cluster_escalations_total",
		"Second-round shard escalations (rank floor not certified at reduced k).")
	m.ClusterShortCircuited = r.NewCounter("rkranks_cluster_shards_short_circuited_total",
		"Shards certified by the rank floor and skipped in round two.")
	m.ClusterTransferred = r.NewCounter("rkranks_cluster_entries_transferred_total",
		"Result entries moved coordinator-ward across all rounds.")
	m.ClusterShardFailures = r.NewCounter("rkranks_cluster_shard_failures_total",
		"Shard RPC failures observed by the coordinator.")
	m.ClusterBatches = r.NewCounter("rkranks_cluster_batches_total",
		"Batch scatters coordinated.")
	m.ClusterBatchRPCs = r.NewCounter("rkranks_cluster_batch_rpcs_total",
		"Shard RPCs issued by batch scatters.")
	m.ClusterBatchQueries = r.NewCounter("rkranks_cluster_batch_queries_total",
		"Queries carried by batch scatters.")
	m.SkewRetries = r.NewCounter("rkranks_generation_skew_retries_total",
		"Scatter retries because shard answers spanned two graph generations.")

	m.MutationBatches = r.NewCounter("rkranks_mutation_batches_total",
		"Mutation batches applied to the live store.")
	m.MutationOps = r.NewCounter("rkranks_mutation_ops_total",
		"Individual mutation operations applied.")
	m.MutationPatches = r.NewCounter("rkranks_mutation_patches_total",
		"Mutation batches applied as in-place CSR patches.")
	m.MutationRebuilds = r.NewCounter("rkranks_mutation_rebuilds_total",
		"Mutation batches that forced a full graph rebuild.")
	m.MutationRelabels = r.NewCounter("rkranks_mutation_relabels_total",
		"Background hub-label rebuilds completed after mutations.")
	m.MutationApplySeconds = r.NewHistogram("rkranks_mutation_apply_seconds",
		"Latency of applying one mutation batch (barrier wait included).", nil)

	m.EngineRefinements = r.NewCounter("rkranks_engine_refinements_total",
		"Candidate refinements performed (exact rank computations).")
	m.EnginePruned = r.NewCounter("rkranks_engine_pruned_total",
		"Candidates pruned by bound before refinement.")
	m.EngineIndexHits = r.NewCounter("rkranks_engine_index_hits_total",
		"Refinements answered from the dynamic index.")
	m.EngineSharedTraversals = r.NewCounter("rkranks_engine_shared_traversals_total",
		"Batch queries answered from a shared traversal.")
	m.LabelPruned = r.NewCounter("rkranks_label_pruned_total",
		"Candidates settled purely from hub-label bounds.")
	m.LabelFallbacks = r.NewCounter("rkranks_label_fallbacks_total",
		"Hub-label candidates that needed Dijkstra fallback refinement.")

	m.ReplicaFailovers = r.NewCounter("rkranks_replica_failovers_total",
		"Queries retried on a sibling replica after a replica failed.")
	m.ReplicaCatchups = r.NewCounter("rkranks_replica_catchups_total",
		"Replicas readmitted to rotation after catching up missed mutation batches.")
	m.IndexSnapshotsServed = r.NewCounter("rkranks_index_snapshots_served_total",
		"Index snapshots served over /v1/index/snapshot.")
	m.IndexDeltasServed = r.NewCounter("rkranks_index_deltas_served_total",
		"Index deltas served over /v1/index/deltas (individual updates).")
	m.IndexSnapshotsLoaded = r.NewCounter("rkranks_index_snapshots_loaded_total",
		"Index snapshots fetched from a leader and absorbed by this replica.")
	m.IndexDeltasApplied = r.NewCounter("rkranks_index_deltas_applied_total",
		"Index deltas fetched from a leader and applied by this replica.")

	m.SlowQueries = r.NewCounter("rkranks_slow_queries_total",
		"Requests captured by the flight recorder as over-threshold.")

	return m
}

// Registry returns the registry the catalog is bound to (nil when
// standalone).
func (m *Metrics) Registry() *Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// gaugeDefs is the closed set of gauge names components may register a
// source for. Keeping names here (with their help text) keeps the
// catalog canonical even though the sampled state lives elsewhere.
var gaugeDefs = map[string]string{
	"rkranks_in_flight_requests": "Requests currently holding an in-flight slot.",
	"rkranks_queued_requests":    "Requests waiting in the admission queue.",
	"rkranks_draining":           "1 while the server is draining for shutdown.",
	"rkranks_pool_size":          "Engines in the query pool.",
	"rkranks_generation":         "Current graph generation.",
	"rkranks_cache_bytes":        "Bytes held by the response cache.",
	"rkranks_cache_entries":      "Entries held by the response cache.",
	"rkranks_csr_bytes":          "Bytes held by the CSR graph layout.",
	"rkranks_hub_label_bytes":    "Bytes held by the hub labeling.",
}

// RegisterGauge wires a sampling source for one of the known gauges.
// Unknown names panic: gauge names are part of the catalog and must be
// added to gaugeDefs (and the docs) first.
func (m *Metrics) RegisterGauge(name string, fn func() float64) {
	help, ok := gaugeDefs[name]
	if !ok {
		panic("obs: unknown gauge " + name + " — add it to gaugeDefs")
	}
	if m == nil || m.reg == nil {
		return
	}
	m.reg.NewGauge(name, help, fn)
}
