package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func observeOne(r *Recorder, id string, total time.Duration, status int) bool {
	tr := NewTrace(id, "query")
	sp := tr.Begin(StageEngineRefine)
	sp.SetAttr("refinements", 7)
	tr.End(sp)
	slow := r.Observe(tr, status, total)
	tr.Release()
	return slow
}

func TestRecorderThreshold(t *testing.T) {
	r := NewRecorder(RecorderConfig{SlowThreshold: 10 * time.Millisecond})
	if observeOne(r, "fast", 2*time.Millisecond, 200) {
		t.Error("2ms classified slow at 10ms threshold")
	}
	if !observeOne(r, "slow", 50*time.Millisecond, 200) {
		t.Error("50ms not classified slow at 10ms threshold")
	}
	snap := r.Snapshot()
	if snap.SlowTotal != 1 || snap.Seen != 2 {
		t.Errorf("snapshot counts = slow %d seen %d", snap.SlowTotal, snap.Seen)
	}
	if len(snap.Slow) != 1 || snap.Slow[0].RequestID != "slow" {
		t.Fatalf("slow ring = %+v", snap.Slow)
	}
	if len(snap.Sampled) != 1 || snap.Sampled[0].RequestID != "fast" {
		t.Fatalf("sample = %+v", snap.Sampled)
	}
	rec := snap.Slow[0]
	if !rec.Slow || rec.Status != 200 || rec.TotalMS != 50 {
		t.Errorf("record = %+v", rec)
	}
	if len(rec.Spans) != 1 || rec.Spans[0].Stage != "engine.refine" || rec.Spans[0].Attrs["refinements"] != 7 {
		t.Errorf("spans = %+v", rec.Spans)
	}
}

// TestRecorderZeroThresholdRecordsEverything is the debugging posture:
// -slow-query-ms 0 makes every request a captured slow query.
func TestRecorderZeroThresholdRecordsEverything(t *testing.T) {
	r := NewRecorder(RecorderConfig{SlowThreshold: 0})
	for i := 0; i < 3; i++ {
		if !observeOne(r, fmt.Sprintf("r%d", i), time.Microsecond, 200) {
			t.Error("request not captured at zero threshold")
		}
	}
	snap := r.Snapshot()
	if snap.SlowTotal != 3 || len(snap.Slow) != 3 {
		t.Errorf("slow = %d/%d", snap.SlowTotal, len(snap.Slow))
	}
}

// TestRecorderRingEviction fills the ring past capacity and checks the
// oldest traces fall off while order stays newest-first.
func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(RecorderConfig{SlowThreshold: 0, RingSize: 4})
	for i := 0; i < 10; i++ {
		observeOne(r, fmt.Sprintf("q%d", i), time.Millisecond, 200)
	}
	snap := r.Snapshot()
	if snap.SlowTotal != 10 {
		t.Errorf("slow total = %d", snap.SlowTotal)
	}
	var ids []string
	for _, rec := range snap.Slow {
		ids = append(ids, rec.RequestID)
	}
	want := []string{"q9", "q8", "q7", "q6"}
	if strings.Join(ids, ",") != strings.Join(want, ",") {
		t.Errorf("ring = %v, want %v", ids, want)
	}
}

// TestRecorderReservoirBounded: the sample of normal requests never
// exceeds its cap no matter how many requests flow through.
func TestRecorderReservoirBounded(t *testing.T) {
	r := NewRecorder(RecorderConfig{SlowThreshold: time.Hour, SampleSize: 8})
	for i := 0; i < 500; i++ {
		observeOne(r, fmt.Sprintf("n%d", i), time.Millisecond, 200)
	}
	snap := r.Snapshot()
	if len(snap.Sampled) != 8 {
		t.Errorf("reservoir = %d, want 8", len(snap.Sampled))
	}
	if len(snap.Slow) != 0 || snap.SlowTotal != 0 {
		t.Errorf("slow = %d/%d, want none", snap.SlowTotal, len(snap.Slow))
	}
	if snap.Seen != 500 {
		t.Errorf("seen = %d", snap.Seen)
	}
}

func TestRecorderSlowLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	r := NewRecorder(RecorderConfig{SlowThreshold: 0, Logger: logger})
	observeOne(r, "logged-rid", 3*time.Millisecond, 200)
	var ev map[string]any
	if err := json.Unmarshal(buf.Bytes(), &ev); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, buf.String())
	}
	if ev["msg"] != "slow query" || ev["request_id"] != "logged-rid" {
		t.Errorf("event = %v", ev)
	}
	if spans, _ := ev["spans"].(string); !strings.Contains(spans, "engine.refine=") {
		t.Errorf("spans summary = %v", ev["spans"])
	}
}

func TestRecorderHandler(t *testing.T) {
	r := NewRecorder(RecorderConfig{SlowThreshold: 0})
	observeOne(r, "h1", time.Millisecond, 200)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requestz", nil))
	var snap RecorderSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("requestz not JSON: %v", err)
	}
	if len(snap.Slow) != 1 || snap.Slow[0].RequestID != "h1" {
		t.Errorf("requestz = %+v", snap)
	}
}

func TestNilRecorderInert(t *testing.T) {
	var r *Recorder
	if r.Observe(nil, 200, time.Second) {
		t.Error("nil recorder classified slow")
	}
	if r.Threshold() != 0 {
		t.Error("nil recorder threshold")
	}
	snap := r.Snapshot()
	if snap.Seen != 0 {
		t.Error("nil recorder snapshot")
	}
}
