// Package pqueue implements an indexed 4-ary min-heap over dense int32
// node ids with float64 priorities and decrease-key support.
//
// The queue is built once per graph size and reused across queries: Reset is
// O(1) thanks to epoch-stamped bookkeeping, so a query touching t nodes
// costs O(t log t) regardless of the graph size. This matters for the
// reverse k-ranks engines, which run thousands of small partial Dijkstra
// searches over multi-million-node graphs.
//
// Layout: heap slots hold (priority, node) pairs, so every sift comparison
// reads one contiguous 16-byte entry instead of chasing heap[i] into a
// scattered per-node priority array — the dependent load that otherwise
// dominates pop-heavy workloads. A 4-ary slot scan stays within one cache
// line of the pair array. Per-node state (priority for lookups, heap slot,
// epoch stamp) is one packed 16-byte record, touched once per push or
// slot move, never inside a comparison.
package pqueue

// entry is one heap slot: the node and the priority it is queued with.
type entry struct {
	prio float64
	node int32
}

// nodeMeta is the per-node record: current (or final, once popped)
// priority, heap slot, and the epoch the record belongs to. 16 bytes, so
// four nodes share a cache line.
type nodeMeta struct {
	prio  float64
	pos   int32
	stamp uint32
}

// Queue is an indexed min-heap. The zero value is unusable; call New.
// Queues are not safe for concurrent use.
type Queue struct {
	meta  []nodeMeta
	heap  []entry
	epoch uint32
}

const popped = int32(-1)

// New returns a queue over node ids [0, n).
func New(n int) *Queue {
	return &Queue{
		meta: make([]nodeMeta, n),
		heap: make([]entry, 0, 64),
	}
}

// Grow widens the id space to at least n, preserving current contents.
func (q *Queue) Grow(n int) {
	if n <= len(q.meta) {
		return
	}
	meta := make([]nodeMeta, n)
	copy(meta, q.meta)
	q.meta = meta
}

// Cap returns the size of the id space.
func (q *Queue) Cap() int { return len(q.meta) }

// Reset empties the queue in O(1).
func (q *Queue) Reset() {
	q.heap = q.heap[:0]
	q.epoch++
	if q.epoch == 0 { // epoch wrapped: clear stamps for safety
		clear(q.meta)
		q.epoch = 1
	}
}

// Len returns the number of queued nodes.
func (q *Queue) Len() int { return len(q.heap) }

// Contains reports whether v is currently queued (pushed and not popped).
func (q *Queue) Contains(v int32) bool {
	m := &q.meta[v]
	return m.stamp == q.epoch && m.pos != popped
}

// Seen reports whether v was pushed at any point since the last Reset,
// whether or not it has been popped.
func (q *Queue) Seen(v int32) bool { return q.meta[v].stamp == q.epoch }

// Popped reports whether v was pushed and subsequently popped since the
// last Reset. It is Seen(v) && !Contains(v) collapsed into a single
// record read — the settled check of every Dijkstra wrapper runs
// through here.
func (q *Queue) Popped(v int32) bool {
	m := &q.meta[v]
	return m.stamp == q.epoch && m.pos == popped
}

// Priority returns the current priority of a queued node v. If v was popped
// it returns the priority it was popped with. The result is unspecified
// when !Seen(v).
func (q *Queue) Priority(v int32) float64 { return q.meta[v].prio }

// Push inserts v with priority p, or lowers v's priority to p when v is
// already queued with a higher priority. It reports whether the queue
// changed (false when v is queued with priority <= p, or already popped).
func (q *Queue) Push(v int32, p float64) bool {
	m := &q.meta[v]
	if m.stamp != q.epoch {
		// Fast path: first touch of v this epoch. Append and sift up;
		// up() writes the slot, so no slot bookkeeping is needed here.
		m.stamp = q.epoch
		m.prio = p
		q.heap = append(q.heap, entry{p, v})
		q.up(len(q.heap) - 1)
		return true
	}
	if m.pos == popped || m.prio <= p {
		return false
	}
	m.prio = p
	i := int(m.pos)
	q.heap[i].prio = p
	q.up(i)
	return true
}

// Min returns the node and priority PopMin would return, without removing
// it. ok is false when the queue is empty.
func (q *Queue) Min() (v int32, p float64, ok bool) {
	if len(q.heap) == 0 {
		return -1, 0, false
	}
	e := q.heap[0]
	return e.node, e.prio, true
}

// PopMin removes and returns the queued node with the smallest priority,
// breaking ties toward the smaller node id for determinism.
func (q *Queue) PopMin() (int32, float64) {
	root := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.meta[q.heap[0].node].pos = 0
	q.heap = q.heap[:last]
	if last > 0 {
		q.down(0)
	}
	q.meta[root.node].pos = popped
	return root.node, root.prio
}

// less orders heap entries by (priority, node id) — the deterministic
// tie-break every engine relies on.
func less(a, b entry) bool {
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.node < b.node
}

func (q *Queue) up(i int) {
	e := q.heap[i]
	for i > 0 {
		pi := (i - 1) >> 2
		p := q.heap[pi]
		if !less(e, p) {
			break
		}
		q.heap[i] = p
		q.meta[p.node].pos = int32(i)
		i = pi
	}
	q.heap[i] = e
	q.meta[e.node].pos = int32(i)
}

func (q *Queue) down(i int) {
	e := q.heap[i]
	n := len(q.heap)
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		bi := c
		b := q.heap[c]
		for j := c + 1; j < end; j++ {
			if h := q.heap[j]; less(h, b) {
				bi, b = j, h
			}
		}
		if !less(b, e) {
			break
		}
		q.heap[i] = b
		q.meta[b.node].pos = int32(i)
		i = bi
	}
	q.heap[i] = e
	q.meta[e.node].pos = int32(i)
}
