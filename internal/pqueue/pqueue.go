// Package pqueue implements an indexed binary min-heap over dense int32
// node ids with float64 priorities and decrease-key support.
//
// The queue is built once per graph size and reused across queries: Reset is
// O(1) thanks to epoch-stamped bookkeeping, so a query touching t nodes
// costs O(t log t) regardless of the graph size. This matters for the
// reverse k-ranks engines, which run thousands of small partial Dijkstra
// searches over multi-million-node graphs.
package pqueue

// Queue is an indexed min-heap. The zero value is unusable; call New.
// Queues are not safe for concurrent use.
type Queue struct {
	prio  []float64
	heap  []int32
	pos   []int32 // heap slot of a node, or popped/absent (see stamp)
	stamp []uint32
	epoch uint32
}

const popped = int32(-1)

// New returns a queue over node ids [0, n).
func New(n int) *Queue {
	return &Queue{
		prio:  make([]float64, n),
		heap:  make([]int32, 0, 64),
		pos:   make([]int32, n),
		stamp: make([]uint32, n),
	}
}

// Grow widens the id space to at least n, preserving current contents.
func (q *Queue) Grow(n int) {
	if n <= len(q.pos) {
		return
	}
	prio := make([]float64, n)
	copy(prio, q.prio)
	pos := make([]int32, n)
	copy(pos, q.pos)
	stamp := make([]uint32, n)
	copy(stamp, q.stamp)
	q.prio, q.pos, q.stamp = prio, pos, stamp
}

// Cap returns the size of the id space.
func (q *Queue) Cap() int { return len(q.pos) }

// Reset empties the queue in O(1).
func (q *Queue) Reset() {
	q.heap = q.heap[:0]
	q.epoch++
	if q.epoch == 0 { // epoch wrapped: clear stamps for safety
		for i := range q.stamp {
			q.stamp[i] = 0
		}
		q.epoch = 1
	}
}

// Len returns the number of queued nodes.
func (q *Queue) Len() int { return len(q.heap) }

// Contains reports whether v is currently queued (pushed and not popped).
func (q *Queue) Contains(v int32) bool {
	return q.stamp[v] == q.epoch && q.pos[v] != popped
}

// Seen reports whether v was pushed at any point since the last Reset,
// whether or not it has been popped.
func (q *Queue) Seen(v int32) bool { return q.stamp[v] == q.epoch }

// Priority returns the current priority of a queued node v. If v was popped
// it returns the priority it was popped with. The result is unspecified
// when !Seen(v).
func (q *Queue) Priority(v int32) float64 { return q.prio[v] }

// Push inserts v with priority p, or lowers v's priority to p when v is
// already queued with a higher priority. It reports whether the queue
// changed (false when v is queued with priority <= p, or already popped).
func (q *Queue) Push(v int32, p float64) bool {
	if q.stamp[v] != q.epoch {
		q.stamp[v] = q.epoch
		q.prio[v] = p
		q.pos[v] = int32(len(q.heap))
		q.heap = append(q.heap, v)
		q.up(len(q.heap) - 1)
		return true
	}
	if q.pos[v] == popped || q.prio[v] <= p {
		return false
	}
	q.prio[v] = p
	q.up(int(q.pos[v]))
	return true
}

// PopMin removes and returns the queued node with the smallest priority,
// breaking ties toward the smaller node id for determinism.
func (q *Queue) PopMin() (int32, float64) {
	v := q.heap[0]
	p := q.prio[v]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.pos[q.heap[0]] = 0
	q.heap = q.heap[:last]
	if last > 0 {
		q.down(0)
	}
	q.pos[v] = popped
	return v, p
}

func (q *Queue) less(a, b int32) bool {
	pa, pb := q.prio[a], q.prio[b]
	if pa != pb {
		return pa < pb
	}
	return a < b
}

func (q *Queue) up(i int) {
	node := q.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(node, q.heap[parent]) {
			break
		}
		q.heap[i] = q.heap[parent]
		q.pos[q.heap[i]] = int32(i)
		i = parent
	}
	q.heap[i] = node
	q.pos[node] = int32(i)
}

func (q *Queue) down(i int) {
	node := q.heap[i]
	n := len(q.heap)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		child := l
		if r := l + 1; r < n && q.less(q.heap[r], q.heap[l]) {
			child = r
		}
		if !q.less(q.heap[child], node) {
			break
		}
		q.heap[i] = q.heap[child]
		q.pos[q.heap[i]] = int32(i)
		i = child
	}
	q.heap[i] = node
	q.pos[node] = int32(i)
}
