// Package pqueue implements an indexed 4-ary min-heap over dense int32
// node ids with float64 priorities and decrease-key support.
//
// The queue is built once per graph size and reused across queries: Reset is
// O(1) thanks to epoch-stamped bookkeeping, so a query touching t nodes
// costs O(t log t) regardless of the graph size. This matters for the
// reverse k-ranks engines, which run thousands of small partial Dijkstra
// searches over multi-million-node graphs.
//
// The heap is 4-ary rather than binary: rank refinements are pop-heavy
// (every queued node is eventually popped or abandoned), and a 4-ary
// layout halves the sift-down depth while keeping the per-level child
// scan inside one cache line of the heap array. Sifts cache the moving
// node's priority in a register instead of re-loading prio[heap[i]] per
// comparison.
package pqueue

// Queue is an indexed min-heap. The zero value is unusable; call New.
// Queues are not safe for concurrent use.
type Queue struct {
	prio  []float64
	heap  []int32
	pos   []int32 // heap slot of a node, or popped/absent (see stamp)
	stamp []uint32
	epoch uint32
}

const popped = int32(-1)

// New returns a queue over node ids [0, n).
func New(n int) *Queue {
	return &Queue{
		prio:  make([]float64, n),
		heap:  make([]int32, 0, 64),
		pos:   make([]int32, n),
		stamp: make([]uint32, n),
	}
}

// Grow widens the id space to at least n, preserving current contents.
func (q *Queue) Grow(n int) {
	if n <= len(q.pos) {
		return
	}
	prio := make([]float64, n)
	copy(prio, q.prio)
	pos := make([]int32, n)
	copy(pos, q.pos)
	stamp := make([]uint32, n)
	copy(stamp, q.stamp)
	q.prio, q.pos, q.stamp = prio, pos, stamp
}

// Cap returns the size of the id space.
func (q *Queue) Cap() int { return len(q.pos) }

// Reset empties the queue in O(1).
func (q *Queue) Reset() {
	q.heap = q.heap[:0]
	q.epoch++
	if q.epoch == 0 { // epoch wrapped: clear stamps for safety
		clear(q.stamp)
		q.epoch = 1
	}
}

// Len returns the number of queued nodes.
func (q *Queue) Len() int { return len(q.heap) }

// Contains reports whether v is currently queued (pushed and not popped).
func (q *Queue) Contains(v int32) bool {
	return q.stamp[v] == q.epoch && q.pos[v] != popped
}

// Seen reports whether v was pushed at any point since the last Reset,
// whether or not it has been popped.
func (q *Queue) Seen(v int32) bool { return q.stamp[v] == q.epoch }

// Popped reports whether v was pushed and subsequently popped since the
// last Reset. It is Seen(v) && !Contains(v) collapsed into a single
// stamped-array read — the settled check of every Dijkstra wrapper runs
// through here.
func (q *Queue) Popped(v int32) bool {
	return q.stamp[v] == q.epoch && q.pos[v] == popped
}

// Priority returns the current priority of a queued node v. If v was popped
// it returns the priority it was popped with. The result is unspecified
// when !Seen(v).
func (q *Queue) Priority(v int32) float64 { return q.prio[v] }

// Push inserts v with priority p, or lowers v's priority to p when v is
// already queued with a higher priority. It reports whether the queue
// changed (false when v is queued with priority <= p, or already popped).
func (q *Queue) Push(v int32, p float64) bool {
	if q.stamp[v] != q.epoch {
		// Fast path: first touch of v this epoch. Append and sift up;
		// up() writes pos[v], so no slot bookkeeping is needed here.
		q.stamp[v] = q.epoch
		q.prio[v] = p
		q.heap = append(q.heap, v)
		q.up(len(q.heap) - 1)
		return true
	}
	if q.pos[v] == popped || q.prio[v] <= p {
		return false
	}
	q.prio[v] = p
	q.up(int(q.pos[v]))
	return true
}

// Min returns the node and priority PopMin would return, without removing
// it. ok is false when the queue is empty.
func (q *Queue) Min() (v int32, p float64, ok bool) {
	if len(q.heap) == 0 {
		return -1, 0, false
	}
	v = q.heap[0]
	return v, q.prio[v], true
}

// PopMin removes and returns the queued node with the smallest priority,
// breaking ties toward the smaller node id for determinism.
func (q *Queue) PopMin() (int32, float64) {
	v := q.heap[0]
	p := q.prio[v]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.pos[q.heap[0]] = 0
	q.heap = q.heap[:last]
	if last > 0 {
		q.down(0)
	}
	q.pos[v] = popped
	return v, p
}

func (q *Queue) up(i int) {
	node := q.heap[i]
	np := q.prio[node]
	for i > 0 {
		pi := (i - 1) >> 2
		pn := q.heap[pi]
		pp := q.prio[pn]
		if np > pp || (np == pp && node > pn) {
			break
		}
		q.heap[i] = pn
		q.pos[pn] = int32(i)
		i = pi
	}
	q.heap[i] = node
	q.pos[node] = int32(i)
}

func (q *Queue) down(i int) {
	node := q.heap[i]
	np := q.prio[node]
	n := len(q.heap)
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		bi := c
		bn := q.heap[c]
		bp := q.prio[bn]
		for j := c + 1; j < end; j++ {
			hn := q.heap[j]
			hp := q.prio[hn]
			if hp < bp || (hp == bp && hn < bn) {
				bi, bn, bp = j, hn, hp
			}
		}
		if bp > np || (bp == np && bn > node) {
			break
		}
		q.heap[i] = bn
		q.pos[bn] = int32(i)
		i = bi
	}
	q.heap[i] = node
	q.pos[node] = int32(i)
}
