package pqueue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPushPopOrdering(t *testing.T) {
	q := New(10)
	q.Reset()
	q.Push(3, 2.5)
	q.Push(7, 0.5)
	q.Push(1, 1.5)
	wantOrder := []int32{7, 1, 3}
	wantPrio := []float64{0.5, 1.5, 2.5}
	for i := range wantOrder {
		v, p := q.PopMin()
		if v != wantOrder[i] || p != wantPrio[i] {
			t.Fatalf("pop %d = (%d,%g), want (%d,%g)", i, v, p, wantOrder[i], wantPrio[i])
		}
	}
	if q.Len() != 0 {
		t.Error("queue not empty")
	}
}

func TestDecreaseKey(t *testing.T) {
	q := New(5)
	q.Reset()
	q.Push(0, 10)
	q.Push(1, 5)
	if !q.Push(0, 1) {
		t.Fatal("decrease-key rejected")
	}
	if q.Push(0, 3) {
		t.Error("increase accepted")
	}
	v, p := q.PopMin()
	if v != 0 || p != 1 {
		t.Fatalf("pop = (%d,%g), want (0,1)", v, p)
	}
}

func TestPushAfterPopIgnored(t *testing.T) {
	q := New(5)
	q.Reset()
	q.Push(2, 1)
	q.PopMin()
	if q.Push(2, 0.1) {
		t.Error("re-push of settled node accepted")
	}
	if q.Contains(2) {
		t.Error("settled node reported queued")
	}
	if !q.Seen(2) {
		t.Error("settled node not seen")
	}
}

func TestTieBreakByID(t *testing.T) {
	q := New(10)
	q.Reset()
	q.Push(9, 1)
	q.Push(2, 1)
	q.Push(5, 1)
	want := []int32{2, 5, 9}
	for _, w := range want {
		if v, _ := q.PopMin(); v != w {
			t.Fatalf("tie order broke: got %d want %d", v, w)
		}
	}
}

func TestResetIsolation(t *testing.T) {
	q := New(4)
	q.Reset()
	q.Push(0, 1)
	q.Push(1, 2)
	q.Reset()
	if q.Len() != 0 {
		t.Fatal("reset left entries")
	}
	if q.Seen(0) || q.Contains(1) {
		t.Error("stale state visible after reset")
	}
	q.Push(1, 9)
	if p := q.Priority(1); p != 9 {
		t.Errorf("priority %g after reset, want 9", p)
	}
}

func TestEpochWraparound(t *testing.T) {
	q := New(3)
	q.epoch = ^uint32(0) - 1 // force the wrap path
	q.Reset()
	q.Push(0, 1)
	q.Reset() // wraps to 0 -> must clear stamps and restart at 1
	if q.Seen(0) {
		t.Error("stale Seen after epoch wrap")
	}
	q.Push(0, 2)
	if v, p := q.PopMin(); v != 0 || p != 2 {
		t.Errorf("post-wrap pop = (%d,%g)", v, p)
	}
}

func TestGrow(t *testing.T) {
	q := New(2)
	q.Reset()
	q.Push(1, 5)
	q.Grow(10)
	if q.Cap() != 10 {
		t.Fatalf("Cap = %d", q.Cap())
	}
	q.Push(9, 1)
	if v, _ := q.PopMin(); v != 9 {
		t.Errorf("pop after grow = %d, want 9", v)
	}
	if v, _ := q.PopMin(); v != 1 {
		t.Errorf("pre-grow entry lost")
	}
	q.Grow(5) // shrink request is a no-op
	if q.Cap() != 10 {
		t.Error("Grow shrank the queue")
	}
}

// TestAgainstSortReference is a property test: any push/decrease sequence
// must pop in exactly the order of the final priorities with id tie-break.
func TestAgainstSortReference(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		q := New(n)
		q.Reset()
		final := map[int32]float64{}
		ops := rng.Intn(200)
		for i := 0; i < ops; i++ {
			v := int32(rng.Intn(n))
			p := float64(rng.Intn(50)) / 4
			if cur, ok := final[v]; !ok || p < cur {
				if q.Push(v, p) {
					final[v] = p
				}
			} else {
				q.Push(v, p) // should be a no-op
			}
		}
		type pair struct {
			v int32
			p float64
		}
		var want []pair
		for v, p := range final {
			want = append(want, pair{v, p})
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].p != want[j].p {
				return want[i].p < want[j].p
			}
			return want[i].v < want[j].v
		})
		if q.Len() != len(want) {
			return false
		}
		for _, w := range want {
			v, p := q.PopMin()
			if v != w.v || p != w.p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestInterleavedPopPush mixes pops into the stream, mirroring Dijkstra's
// access pattern, and verifies the pop sequence is globally nondecreasing.
func TestInterleavedPopPush(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	q := New(500)
	for trial := 0; trial < 20; trial++ {
		q.Reset()
		last := -1.0
		pops := 0
		for i := 0; i < 400; i++ {
			if q.Len() > 0 && rng.Intn(3) == 0 {
				_, p := q.PopMin()
				// Dijkstra property requires monotone pops only when new
				// priorities are >= the last pop; enforce that in pushes.
				if p < last {
					t.Fatalf("pop went backwards: %g after %g", p, last)
				}
				last = p
				pops++
				continue
			}
			v := int32(rng.Intn(500))
			base := last
			if base < 0 {
				base = 0
			}
			q.Push(v, base+rng.Float64())
		}
		_ = pops
	}
}

// FuzzPopOrder drives the queue with an arbitrary op stream (pushes,
// decrease-keys, interleaved pops) using heavily quantized priorities so
// ties are the common case, and asserts every pop matches a reference
// sort by (priority, node id) of the nodes still queued. Run with
// `go test -fuzz=FuzzPopOrder` to search beyond the seed corpus.
func FuzzPopOrder(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	f.Add([]byte{255, 128, 7, 7, 7, 3, 3, 9, 200, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const n = 16
		q := New(n)
		q.Reset()
		final := map[int32]float64{}
		for i := 0; i+1 < len(ops); i += 2 {
			if ops[i]&0x80 != 0 && q.Len() > 0 {
				wv, wp := popReference(final)
				v, p := q.PopMin()
				if v != wv || p != wp {
					t.Fatalf("op %d: popped (%d,%g), reference (%d,%g)", i, v, p, wv, wp)
				}
				delete(final, v)
				continue
			}
			v := int32(ops[i] % n)
			p := float64(ops[i+1] % 8) // few distinct values -> dense ties
			if _, ok := final[v]; ok || q.Seen(v) {
				if cur, ok := final[v]; ok && p < cur && q.Push(v, p) {
					final[v] = p
				} else {
					q.Push(v, p) // increase or re-push of popped: no-op
				}
				continue
			}
			if q.Push(v, p) {
				final[v] = p
			}
		}
		for q.Len() > 0 {
			wv, wp := popReference(final)
			v, p := q.PopMin()
			if v != wv || p != wp {
				t.Fatalf("drain: popped (%d,%g), reference (%d,%g)", v, p, wv, wp)
			}
			delete(final, v)
		}
		if len(final) != 0 {
			t.Fatalf("queue drained but reference still holds %v", final)
		}
	})
}

// popReference returns the (node, priority) pair a correct queue must pop
// next: smallest priority, smaller id on ties.
func popReference(final map[int32]float64) (int32, float64) {
	best := int32(-1)
	bp := 0.0
	for v, p := range final {
		if best < 0 || p < bp || (p == bp && v < best) {
			best, bp = v, p
		}
	}
	return best, bp
}

func TestMinPeek(t *testing.T) {
	q := New(4)
	q.Reset()
	if _, _, ok := q.Min(); ok {
		t.Error("Min on empty queue reported ok")
	}
	q.Push(2, 3.5)
	q.Push(1, 1.5)
	if v, p, ok := q.Min(); !ok || v != 1 || p != 1.5 {
		t.Errorf("Min = (%d,%g,%v), want (1,1.5,true)", v, p, ok)
	}
	if q.Len() != 2 {
		t.Error("Min consumed an entry")
	}
	if v, _ := q.PopMin(); v != 1 {
		t.Error("Min disagreed with PopMin")
	}
}

func TestPopped(t *testing.T) {
	q := New(3)
	q.Reset()
	q.Push(1, 1)
	if q.Popped(1) || q.Popped(2) {
		t.Error("Popped true before any pop")
	}
	q.PopMin()
	if !q.Popped(1) {
		t.Error("Popped false after pop")
	}
	if q.Popped(2) {
		t.Error("never-seen node reported popped")
	}
	q.Reset()
	if q.Popped(1) {
		t.Error("Popped survived Reset")
	}
}

func TestPriorityOfPopped(t *testing.T) {
	q := New(3)
	q.Reset()
	q.Push(1, 4.5)
	q.PopMin()
	if p := q.Priority(1); p != 4.5 {
		t.Errorf("popped priority = %g, want 4.5", p)
	}
}
