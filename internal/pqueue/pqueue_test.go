package pqueue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPushPopOrdering(t *testing.T) {
	q := New(10)
	q.Reset()
	q.Push(3, 2.5)
	q.Push(7, 0.5)
	q.Push(1, 1.5)
	wantOrder := []int32{7, 1, 3}
	wantPrio := []float64{0.5, 1.5, 2.5}
	for i := range wantOrder {
		v, p := q.PopMin()
		if v != wantOrder[i] || p != wantPrio[i] {
			t.Fatalf("pop %d = (%d,%g), want (%d,%g)", i, v, p, wantOrder[i], wantPrio[i])
		}
	}
	if q.Len() != 0 {
		t.Error("queue not empty")
	}
}

func TestDecreaseKey(t *testing.T) {
	q := New(5)
	q.Reset()
	q.Push(0, 10)
	q.Push(1, 5)
	if !q.Push(0, 1) {
		t.Fatal("decrease-key rejected")
	}
	if q.Push(0, 3) {
		t.Error("increase accepted")
	}
	v, p := q.PopMin()
	if v != 0 || p != 1 {
		t.Fatalf("pop = (%d,%g), want (0,1)", v, p)
	}
}

func TestPushAfterPopIgnored(t *testing.T) {
	q := New(5)
	q.Reset()
	q.Push(2, 1)
	q.PopMin()
	if q.Push(2, 0.1) {
		t.Error("re-push of settled node accepted")
	}
	if q.Contains(2) {
		t.Error("settled node reported queued")
	}
	if !q.Seen(2) {
		t.Error("settled node not seen")
	}
}

func TestTieBreakByID(t *testing.T) {
	q := New(10)
	q.Reset()
	q.Push(9, 1)
	q.Push(2, 1)
	q.Push(5, 1)
	want := []int32{2, 5, 9}
	for _, w := range want {
		if v, _ := q.PopMin(); v != w {
			t.Fatalf("tie order broke: got %d want %d", v, w)
		}
	}
}

func TestResetIsolation(t *testing.T) {
	q := New(4)
	q.Reset()
	q.Push(0, 1)
	q.Push(1, 2)
	q.Reset()
	if q.Len() != 0 {
		t.Fatal("reset left entries")
	}
	if q.Seen(0) || q.Contains(1) {
		t.Error("stale state visible after reset")
	}
	q.Push(1, 9)
	if p := q.Priority(1); p != 9 {
		t.Errorf("priority %g after reset, want 9", p)
	}
}

func TestEpochWraparound(t *testing.T) {
	q := New(3)
	q.epoch = ^uint32(0) - 1 // force the wrap path
	q.Reset()
	q.Push(0, 1)
	q.Reset() // wraps to 0 -> must clear stamps and restart at 1
	if q.Seen(0) {
		t.Error("stale Seen after epoch wrap")
	}
	q.Push(0, 2)
	if v, p := q.PopMin(); v != 0 || p != 2 {
		t.Errorf("post-wrap pop = (%d,%g)", v, p)
	}
}

func TestGrow(t *testing.T) {
	q := New(2)
	q.Reset()
	q.Push(1, 5)
	q.Grow(10)
	if q.Cap() != 10 {
		t.Fatalf("Cap = %d", q.Cap())
	}
	q.Push(9, 1)
	if v, _ := q.PopMin(); v != 9 {
		t.Errorf("pop after grow = %d, want 9", v)
	}
	if v, _ := q.PopMin(); v != 1 {
		t.Errorf("pre-grow entry lost")
	}
	q.Grow(5) // shrink request is a no-op
	if q.Cap() != 10 {
		t.Error("Grow shrank the queue")
	}
}

// TestAgainstSortReference is a property test: any push/decrease sequence
// must pop in exactly the order of the final priorities with id tie-break.
func TestAgainstSortReference(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		q := New(n)
		q.Reset()
		final := map[int32]float64{}
		ops := rng.Intn(200)
		for i := 0; i < ops; i++ {
			v := int32(rng.Intn(n))
			p := float64(rng.Intn(50)) / 4
			if cur, ok := final[v]; !ok || p < cur {
				if q.Push(v, p) {
					final[v] = p
				}
			} else {
				q.Push(v, p) // should be a no-op
			}
		}
		type pair struct {
			v int32
			p float64
		}
		var want []pair
		for v, p := range final {
			want = append(want, pair{v, p})
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].p != want[j].p {
				return want[i].p < want[j].p
			}
			return want[i].v < want[j].v
		})
		if q.Len() != len(want) {
			return false
		}
		for _, w := range want {
			v, p := q.PopMin()
			if v != w.v || p != w.p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestInterleavedPopPush mixes pops into the stream, mirroring Dijkstra's
// access pattern, and verifies the pop sequence is globally nondecreasing.
func TestInterleavedPopPush(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	q := New(500)
	for trial := 0; trial < 20; trial++ {
		q.Reset()
		last := -1.0
		pops := 0
		for i := 0; i < 400; i++ {
			if q.Len() > 0 && rng.Intn(3) == 0 {
				_, p := q.PopMin()
				// Dijkstra property requires monotone pops only when new
				// priorities are >= the last pop; enforce that in pushes.
				if p < last {
					t.Fatalf("pop went backwards: %g after %g", p, last)
				}
				last = p
				pops++
				continue
			}
			v := int32(rng.Intn(500))
			base := last
			if base < 0 {
				base = 0
			}
			q.Push(v, base+rng.Float64())
		}
		_ = pops
	}
}

func TestPriorityOfPopped(t *testing.T) {
	q := New(3)
	q.Reset()
	q.Push(1, 4.5)
	q.PopMin()
	if p := q.Priority(1); p != 4.5 {
		t.Errorf("popped priority = %g, want 4.5", p)
	}
}
