package pqueue

import (
	"math/rand"
	"testing"
)

// Micro-benchmarks guarding the 4-ary heap layout. Run with -benchmem:
// none of these may allocate in steady state, the push-heavy workload must
// be no slower than the binary heap it replaced, and the pop-heavy one
// faster (shallower sift-downs).

const benchN = 1 << 14

func benchKeys(n int) []float64 {
	rng := rand.New(rand.NewSource(42))
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = rng.Float64() * 1e3
	}
	return keys
}

// BenchmarkPushPop is the full Dijkstra-shaped cycle: fill the queue with
// random priorities (push-heavy phase), then drain it (pop-heavy phase,
// where the 4-ary sift-down earns its keep).
func BenchmarkPushPop(b *testing.B) {
	keys := benchKeys(benchN)
	q := New(benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Reset()
		for v, p := range keys {
			q.Push(int32(v), p)
		}
		for q.Len() > 0 {
			q.PopMin()
		}
	}
}

// BenchmarkPush isolates the push-heavy half (never-seen fast path).
func BenchmarkPush(b *testing.B) {
	keys := benchKeys(benchN)
	q := New(benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Reset()
		for v, p := range keys {
			q.Push(int32(v), p)
		}
	}
}

// BenchmarkPop isolates the pop-heavy half.
func BenchmarkPop(b *testing.B) {
	keys := benchKeys(benchN)
	q := New(benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		q.Reset()
		for v, p := range keys {
			q.Push(int32(v), p)
		}
		b.StartTimer()
		for q.Len() > 0 {
			q.PopMin()
		}
	}
}

// BenchmarkDecreaseKey stresses the decrease-key path: every node is
// pushed once, then repeatedly lowered toward zero, as happens when dense
// frontiers keep finding shorter paths.
func BenchmarkDecreaseKey(b *testing.B) {
	keys := benchKeys(benchN)
	q := New(benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Reset()
		for v, p := range keys {
			q.Push(int32(v), p+1e3)
		}
		for round := 1; round <= 4; round++ {
			f := 1 - float64(round)/5
			for v, p := range keys {
				q.Push(int32(v), (p+1e3)*f)
			}
		}
	}
}
