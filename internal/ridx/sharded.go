package ridx

import (
	"io"
	"sync"
	"sync/atomic"

	"rkranks/internal/graph"
	"rkranks/internal/rank"
	"rkranks/internal/sssp"
)

// stripeCount is the number of lock stripes of a ShardedIndex. Nodes map
// to stripes by id, so concurrent queries touching different regions of
// the dictionary rarely contend. 256 stripes keep the fixed overhead of an
// index small (a few KB) while leaving collision probability negligible
// for any realistic goroutine count.
const stripeCount = 256

// ShardedIndex is the concurrency-safe Index implementation: the Reverse
// Rank Dictionary is guarded by per-stripe RWMutexes (stripe = node id mod
// stripeCount) and the Check Dictionary by atomics.
//
// Entry lists are copy-on-write: Offer publishes a freshly allocated list
// under the stripe's write lock and never mutates a published one, so the
// slice Reverse returns is an immutable snapshot the caller may hold
// across further index updates — exactly what the indexed engine needs
// when it seeds a query's result heap while sibling queries keep writing.
//
// Check bounds are monotone (they only grow), so RaiseCheck is a CAS loop
// and Check a plain atomic load. No lock covers both dictionaries; the one
// cross-dictionary invariant — Check(u) bounds only pairs without a
// recorded witness entry — is maintained by publication order instead:
// writers offer witness entries before raising the bound they justify, and
// readers applying a bound to a specific pair read Check before Reverse
// (see Engine.refine and the indexed engine's candidate loop in core).
type ShardedIndex struct {
	maxK int
	hubs []int32
	// check is accessed only through atomic operations.
	check []int32
	// rrd[v] is guarded by mu[v%stripeCount]; published lists are
	// immutable.
	rrd [][]rank.Entry
	mu  [stripeCount]sync.RWMutex
	gen atomic.Uint64
}

// NewSharded returns an empty concurrency-safe index over n nodes
// supporting reverse k-ranks queries with k <= maxK.
func NewSharded(n, maxK int) *ShardedIndex {
	if maxK < 1 {
		panic("ridx: maxK must be >= 1")
	}
	return newSharded(n, maxK)
}

func newSharded(n, maxK int) *ShardedIndex {
	return &ShardedIndex{
		maxK:  maxK,
		check: make([]int32, n),
		rrd:   make([][]rank.Entry, n),
	}
}

// BuildSharded precomputes a concurrency-safe index with worker goroutines
// (workers <= 0 uses GOMAXPROCS). Unlike BuildParallel, workers feed one
// shared sharded index directly instead of merging private partials — the
// stripes absorb the contention, and commuting updates make the result
// identical to a serial Build regardless of scheduling.
func BuildSharded(g *graph.Graph, p BuildParams, workers int) (*ShardedIndex, error) {
	if err := checkParams(p); err != nil {
		return nil, err
	}
	hubs := p.eligibleHubs()
	ix := newSharded(g.N(), p.K)
	ix.hubs = hubs
	forEachHub(g, hubs, clampWorkers(workers, len(hubs)), func(_ int, s *sssp.Search, h int32) {
		addHub(ix, s, h, p.M, p.Counted)
	})
	return ix, nil
}

// stripe returns the lock guarding node v's entry list.
func (ix *ShardedIndex) stripe(v int32) *sync.RWMutex {
	return &ix.mu[uint32(v)%stripeCount]
}

// MaxK returns the largest query k the index supports.
func (ix *ShardedIndex) MaxK() int { return ix.maxK }

// Hubs returns the hub nodes the index was built from.
func (ix *ShardedIndex) Hubs() []int32 { return ix.hubs }

// N returns the number of nodes covered.
func (ix *ShardedIndex) N() int { return len(ix.check) }

// Concurrent reports that a ShardedIndex may be shared freely between
// goroutines.
func (ix *ShardedIndex) Concurrent() bool { return true }

// Generation returns the answer-set generation (see Index.Generation).
func (ix *ShardedIndex) Generation() uint64 { return ix.gen.Load() }

// BumpGeneration advances the answer-set generation. Call it after an
// operation that could change what queries answer (an index swapped in
// from disk over live traffic, a wholesale invalidation); plain Offer /
// RaiseCheck refinement never requires one.
func (ix *ShardedIndex) BumpGeneration() { ix.gen.Add(1) }

// Invalidate clears both dictionaries and advances the generation (see
// Index.Invalidate). Callers must hold an exclusive barrier over every
// engine sharing the index (the live store quiesces its pool first): the
// clear itself takes the stripe locks, but a concurrently running query
// could otherwise interleave stale pre-mutation facts back in between the
// clear and the barrier release.
func (ix *ShardedIndex) Invalidate() {
	for u := range ix.check {
		atomic.StoreInt32(&ix.check[u], 0)
	}
	for s := 0; s < stripeCount && s < len(ix.rrd); s++ {
		ix.mu[s].Lock()
		for v := s; v < len(ix.rrd); v += stripeCount {
			ix.rrd[v] = nil
		}
		ix.mu[s].Unlock()
	}
	ix.gen.Add(1)
}

// Check returns the Check Dictionary bound for u. The bound is certified
// at the moment of the load; it can only grow afterwards, so acting on a
// stale value is safe (just less sharp).
func (ix *ShardedIndex) Check(u int32) int32 {
	return atomic.LoadInt32(&ix.check[u])
}

// RaiseCheck raises the Check Dictionary bound for u; bounds only grow.
// Concurrent raises settle on the maximum.
func (ix *ShardedIndex) RaiseCheck(u, bound int32) {
	for {
		cur := atomic.LoadInt32(&ix.check[u])
		if bound <= cur {
			return
		}
		if atomic.CompareAndSwapInt32(&ix.check[u], cur, bound) {
			return
		}
	}
}

// Reverse returns the stored reverse-rank list of v, ordered by
// (rank, node). The returned slice is an immutable snapshot: it stays
// valid (but may become stale) across concurrent Offer calls.
func (ix *ShardedIndex) Reverse(v int32) []rank.Entry {
	mu := ix.stripe(v)
	mu.RLock()
	list := ix.rrd[v]
	mu.RUnlock()
	return list
}

// LookupRank returns Rank(u, v) when the pair is recorded.
func (ix *ShardedIndex) LookupRank(v, u int32) (int32, bool) {
	return lookupRank(ix.Reverse(v), u)
}

// Offer records Rank(u, v) = r in the Reverse Rank Dictionary of v (see
// SerialIndex.Offer). The new list is published copy-on-write under the
// stripe's write lock. Re-offers of recorded pairs — the steady state of
// a warmed-up serving pool, since every refinement re-offers its settled
// nodes — are rejected under the shared read lock so they never block
// concurrent readers. The rejection stays valid at the write lock: lists
// only improve, so an insertion position past maxK can only move further
// out, and a recorded (u, rank) pair never changes (ranks are exact).
func (ix *ShardedIndex) Offer(v, u, r int32) bool {
	mu := ix.stripe(v)
	mu.RLock()
	pos, dup := offerPos(ix.rrd[v], u, r)
	mu.RUnlock()
	if dup || pos >= ix.maxK {
		return false
	}
	mu.Lock()
	list, changed := offerToList(ix.rrd[v], u, r, ix.maxK, false)
	if changed {
		ix.rrd[v] = list
	}
	mu.Unlock()
	return changed
}

// Entries returns the total number of reverse-rank entries stored. Under
// concurrent writes the count is a lower bound on the final total (each
// stripe is read atomically, but stripes are visited in sequence).
func (ix *ShardedIndex) Entries() int64 {
	var n int64
	for s := 0; s < stripeCount && s < len(ix.rrd); s++ {
		ix.mu[s].RLock()
		for v := s; v < len(ix.rrd); v += stripeCount {
			n += int64(len(ix.rrd[v]))
		}
		ix.mu[s].RUnlock()
	}
	return n
}

// SizeBytes estimates the in-memory footprint of the index payload.
func (ix *ShardedIndex) SizeBytes() int64 {
	return sizeBytes(int64(len(ix.check)), ix.Entries())
}

// Snapshot returns a SerialIndex copy of the current state. Under
// concurrent writes each dictionary slot is internally consistent (exact
// facts only), though slots may be captured at slightly different times.
func (ix *ShardedIndex) Snapshot() *SerialIndex {
	cp := &SerialIndex{
		maxK:  ix.maxK,
		hubs:  append([]int32(nil), ix.hubs...),
		check: make([]int32, len(ix.check)),
		rrd:   make([][]rank.Entry, len(ix.rrd)),
	}
	for u := range ix.check {
		cp.check[u] = atomic.LoadInt32(&ix.check[u])
	}
	// Published lists are immutable, but the serial copy mutates its lists
	// in place, so each list is deep-copied rather than shared. One RLock
	// per stripe (not per node) keeps the pass cheap on large graphs.
	for s := 0; s < stripeCount && s < len(ix.rrd); s++ {
		ix.mu[s].RLock()
		for v := s; v < len(ix.rrd); v += stripeCount {
			if list := ix.rrd[v]; len(list) > 0 {
				cp.rrd[v] = append([]rank.Entry(nil), list...)
			}
		}
		ix.mu[s].RUnlock()
	}
	return cp
}

// Write serializes a consistent snapshot of the index in the shared
// on-disk format.
func (ix *ShardedIndex) Write(w io.Writer) error {
	snap := ix.Snapshot()
	return snap.Write(w)
}
