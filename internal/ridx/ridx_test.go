package ridx

import (
	"bytes"
	"strings"
	"testing"

	"rkranks/internal/rank"
	tg "rkranks/internal/testgraphs"
)

func TestOfferOrderingAndCap(t *testing.T) {
	ix := New(5, 3)
	v := int32(0)
	ix.Offer(v, 10, 5)
	ix.Offer(v, 11, 2)
	ix.Offer(v, 12, 8)
	ix.Offer(v, 13, 1) // evicts rank 8
	got := ix.Reverse(v)
	want := []rank.Entry{{Node: 13, Rank: 1}, {Node: 11, Rank: 2}, {Node: 10, Rank: 5}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if ix.Offer(v, 99, 9) {
		t.Error("offer beyond full worse list accepted")
	}
}

func TestOfferDuplicateIgnored(t *testing.T) {
	ix := New(3, 2)
	if !ix.Offer(0, 7, 3) {
		t.Fatal("first offer rejected")
	}
	if ix.Offer(0, 7, 3) {
		t.Error("duplicate offer accepted")
	}
	if len(ix.Reverse(0)) != 1 {
		t.Error("duplicate stored")
	}
}

func TestOfferTieBreaksByNode(t *testing.T) {
	ix := New(2, 2)
	ix.Offer(0, 9, 4)
	ix.Offer(0, 3, 4)
	got := ix.Reverse(0)
	if got[0].Node != 3 || got[1].Node != 9 {
		t.Errorf("tie order: %v", got)
	}
}

func TestLookupRank(t *testing.T) {
	ix := New(2, 4)
	ix.Offer(1, 5, 2)
	if r, ok := ix.LookupRank(1, 5); !ok || r != 2 {
		t.Errorf("LookupRank = %d/%v", r, ok)
	}
	if _, ok := ix.LookupRank(1, 6); ok {
		t.Error("missing pair found")
	}
	if _, ok := ix.LookupRank(0, 5); ok {
		t.Error("wrong node found")
	}
}

func TestRaiseCheckMonotone(t *testing.T) {
	ix := New(2, 2)
	ix.RaiseCheck(0, 5)
	ix.RaiseCheck(0, 3) // lower: ignored
	if c := ix.Check(0); c != 5 {
		t.Errorf("Check = %d, want 5", c)
	}
	ix.RaiseCheck(0, 9)
	if c := ix.Check(0); c != 9 {
		t.Errorf("Check = %d, want 9", c)
	}
}

// TestBuildToyIndex mirrors the paper's Figure 3: hubs {Sid, Frank, Bob,
// Eric} with M=3, K=2. The Reverse Rank Dictionary contents match the
// paper; the Check Dictionary stores the tie-aware rank of the last settled
// node (see the package comment), which equals the paper's step count (3)
// except for Sid, whose 2nd and 3rd nearest (Bob, Caroline) tie at rank 2.
func TestBuildToyIndex(t *testing.T) {
	g := tg.Toy()
	hubs := []int32{tg.Sid, tg.Frank, tg.Bob, tg.Eric}
	ix, err := Build(g, BuildParams{Hubs: hubs, M: 3, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ix.MaxK() != 2 {
		t.Errorf("MaxK = %d", ix.MaxK())
	}
	if len(ix.Hubs()) != 4 {
		t.Errorf("Hubs = %v", ix.Hubs())
	}

	// Paper Figure 3, Reverse Rank Dictionary (top-2 per node). One entry
	// differs deliberately: under tie-aware ranks (Definition 1) Sid ranks
	// Caroline 2 — Bob and Caroline tie at distance 1.2 from Sid — while
	// the paper's step-count gives 3, so Sid (id 3) displaces Eric (id 4)
	// from Caroline's list on the (rank, node) tie-break.
	wantRRD := map[int32][]rank.Entry{
		tg.Alice:    {{Node: tg.Bob, Rank: 3}},
		tg.Bob:      {{Node: tg.Eric, Rank: 1}, {Node: tg.Sid, Rank: 2}},
		tg.Caroline: {{Node: tg.Bob, Rank: 2}, {Node: tg.Sid, Rank: 2}},
		tg.Eric:     {{Node: tg.Bob, Rank: 1}, {Node: tg.Sid, Rank: 1}},
		tg.Frank:    {{Node: tg.Eric, Rank: 3}},
		tg.George:   {{Node: tg.Frank, Rank: 1}},
	}
	for node, want := range wantRRD {
		got := ix.Reverse(node)
		if len(got) != len(want) {
			t.Errorf("RRD[%s] = %v, want %v", tg.ToyNames[node], got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("RRD[%s][%d] = %v, want %v", tg.ToyNames[node], i, got[i], want[i])
			}
		}
	}

	// Check Dictionary: Frank, Bob, Eric searched 3 tie-free steps -> 3;
	// Sid's 3rd settled node (Caroline) ties Bob at rank 2 -> safe bound 2.
	wantCheck := map[int32]int32{tg.Sid: 2, tg.Frank: 3, tg.Bob: 3, tg.Eric: 3}
	for hub, want := range wantCheck {
		if got := ix.Check(hub); got != want {
			t.Errorf("Check[%s] = %d, want %d", tg.ToyNames[hub], got, want)
		}
	}
	if ix.Check(tg.Alice) != 0 {
		t.Error("non-hub has a check bound")
	}
}

func TestBuildSmallComponentExhausts(t *testing.T) {
	g := tg.Path(3) // from node 0 only 2 others exist
	ix, err := Build(g, BuildParams{Hubs: []int32{0}, M: 10, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Whole component settled: the check bound certifies "unreachable".
	if ix.Check(0) != int32(rank.Unreachable) {
		t.Errorf("exhausted check = %d", ix.Check(0))
	}
	if len(ix.Reverse(1)) != 1 || ix.Reverse(1)[0].Rank != 1 {
		t.Errorf("RRD[1] = %v", ix.Reverse(1))
	}
}

func TestBuildParamsValidation(t *testing.T) {
	g := tg.Path(3)
	if _, err := Build(g, BuildParams{Hubs: []int32{0}, M: 0, K: 1}); err == nil {
		t.Error("M=0 accepted")
	}
	if _, err := Build(g, BuildParams{Hubs: []int32{0}, M: 1, K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
}

func TestNewPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(maxK=0) did not panic")
		}
	}()
	New(3, 0)
}

func TestCloneIsDeep(t *testing.T) {
	ix := New(3, 2)
	ix.Offer(0, 1, 1)
	ix.RaiseCheck(1, 4)
	cp := ix.Clone()
	cp.Offer(0, 2, 2)
	cp.RaiseCheck(1, 9)
	if len(ix.Reverse(0)) != 1 {
		t.Error("clone mutation leaked into original RRD")
	}
	if ix.Check(1) != 4 {
		t.Error("clone mutation leaked into original check dict")
	}
}

func TestEntriesAndSize(t *testing.T) {
	ix := New(4, 2)
	if ix.Entries() != 0 {
		t.Error("fresh index has entries")
	}
	ix.Offer(0, 1, 1)
	ix.Offer(2, 1, 3)
	if ix.Entries() != 2 {
		t.Errorf("Entries = %d", ix.Entries())
	}
	if ix.SizeBytes() <= 0 {
		t.Error("non-positive size")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	g := tg.Toy()
	ix, err := Build(g, BuildParams{Hubs: []int32{tg.Bob, tg.Eric}, M: 4, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	ix.RaiseCheck(tg.Alice, 2)
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxK() != ix.MaxK() || got.N() != ix.N() || got.Entries() != ix.Entries() {
		t.Fatalf("shape mismatch after round trip")
	}
	for v := int32(0); int(v) < ix.N(); v++ {
		if got.Check(v) != ix.Check(v) {
			t.Errorf("check[%d] %d vs %d", v, got.Check(v), ix.Check(v))
		}
		a, b := ix.Reverse(v), got.Reverse(v)
		if len(a) != len(b) {
			t.Fatalf("rrd[%d] length", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("rrd[%d][%d]: %v vs %v", v, i, a[i], b[i])
			}
		}
	}
}

// TestReadCorruptedNeverPanics mutates a valid serialized index byte by
// byte: every corruption must produce an error or a loadable index, never
// a panic or an absurd allocation.
func TestReadCorruptedNeverPanics(t *testing.T) {
	g := tg.Toy()
	ix, err := Build(g, BuildParams{Hubs: []int32{tg.Bob, tg.Eric, tg.Sid}, M: 4, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for pos := 0; pos < len(valid); pos++ {
		for _, flip := range []byte{0x01, 0x80, 0xFF} {
			mut := append([]byte(nil), valid...)
			mut[pos] ^= flip
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic mutating byte %d with %x: %v", pos, flip, r)
					}
				}()
				_, _ = Read(bytes.NewReader(mut))
			}()
		}
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("garbage")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}
