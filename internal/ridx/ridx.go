// Package ridx implements the reverse k-ranks index of Section 5 of the
// paper: a Check Dictionary recording how far single-source searches from
// each node have already looked, and a Reverse Rank Dictionary holding, for
// every node v, the best (at most K) known (u, Rank(u, v)) pairs.
//
// The index is seeded by running an M-step SSSP from each of H hub nodes
// (Section 5.2) and is refined dynamically as queries run (Section 5.3):
// every rank refinement performed by the indexed engine feeds its settled
// nodes back into both dictionaries, so the index keeps getting better.
//
// # Implementations and concurrency
//
// Index is an interface over two implementations sharing one on-disk
// format:
//
//   - SerialIndex — the plain single-goroutine structure. Fastest for a
//     dedicated engine; not safe for concurrent use.
//   - ShardedIndex — lock-striped dictionaries (per-stripe RWMutex with
//     copy-on-write entry lists, atomic Check bounds). Safe for any mix of
//     concurrent readers and writers, so one index can back a whole pool
//     of indexed engines and keep learning from all of them at once.
//
// Dictionary updates commute: entries are exact (u, Rank(u, v)) facts kept
// best-maxK by (rank, node), and Check bounds only grow. Interleaving
// updates from concurrent queries therefore yields the same dictionaries
// as any serial ordering of those updates — the sharded index accepts
// writes from many engines without coordination beyond its stripes.
//
// # Check Dictionary semantics
//
// Check(u) = c is a certified lower bound: for any node v that is NOT
// recorded in Reverse(v) with source u, Rank(u, v) >= c. The paper stores
// the number of SSSP steps taken from u; under distance ties that count can
// exceed the true rank of an unsettled node, so this implementation stores
// the tie-aware rank of the last settled node instead, which is provably
// safe (an unsettled node is at least as far as the last settled one, hence
// ranks no better). Without ties the two definitions coincide.
package ridx

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"rkranks/internal/graph"
	"rkranks/internal/rank"
	"rkranks/internal/sssp"
)

// Index is the two-dictionary structure of Section 5.2, as an interface
// over the serial and sharded implementations. All methods operate on
// exact facts (see the package docs), so every implementation answers
// queries identically; they differ only in whether concurrent use is safe
// (reported by Concurrent).
type Index interface {
	// MaxK returns the largest query k the index supports.
	MaxK() int
	// Hubs returns the hub nodes the index was built from.
	Hubs() []int32
	// N returns the number of nodes covered.
	N() int
	// Check returns the Check Dictionary bound for u (0 when u was never
	// the source of a recorded search).
	Check(u int32) int32
	// RaiseCheck raises the Check Dictionary bound for u; bounds only grow
	// (each recorded search certifies at least what previous ones did).
	RaiseCheck(u, bound int32)
	// Reverse returns the stored reverse-rank list of v, ordered by
	// (rank, node). Callers must not modify the returned slice. For the
	// serial index it aliases mutable storage and must not be held across
	// Offer calls; the sharded index returns an immutable snapshot.
	Reverse(v int32) []rank.Entry
	// LookupRank returns Rank(u, v) when the pair is recorded.
	LookupRank(v, u int32) (int32, bool)
	// Offer records Rank(u, v) = r in the Reverse Rank Dictionary of v,
	// keeping only the best maxK entries ordered by (rank, node). Ranks are
	// exact, so a re-offered pair is ignored. It reports whether the
	// dictionary changed.
	Offer(v, u, r int32) bool
	// Entries returns the total number of reverse-rank entries stored.
	Entries() int64
	// SizeBytes estimates the in-memory footprint of the index payload.
	SizeBytes() int64
	// Write serializes the index; both implementations produce the same
	// format, readable by Read (serial) or ReadSharded (sharded).
	Write(w io.Writer) error
	// Concurrent reports whether the index is safe for concurrent use by
	// multiple engines (true only for ShardedIndex). Pools require it
	// before accepting Indexed queries.
	Concurrent() bool
	// Generation is the index's answer-set generation, starting at 0.
	// Ordinary refinement (Offer/RaiseCheck) never moves it: dictionary
	// updates are monotone exact facts, so canonical query results are
	// identical before and after them. BumpGeneration moves it when the
	// index is invalidated or replaced wholesale — response caches key
	// cached answers on the generation so a bump orphans them all.
	Generation() uint64
	// BumpGeneration advances Generation (see there).
	BumpGeneration()
	// Invalidate clears both dictionaries and advances the generation:
	// the invalidate-on-touch path of the live mutation pipeline. A graph
	// mutation can lower recorded ranks and certified Check bounds, so
	// every stored fact becomes untrustworthy at once; after a wholesale
	// clear the index re-learns from subsequent query refinements exactly
	// as it did from a cold start. Canonical results are index-state
	// independent, so answers stay byte-identical throughout.
	Invalidate()
}

// SerialIndex is the single-goroutine Index implementation. It is not safe
// for concurrent use: the indexed query engine both reads and writes it.
// Use ShardedIndex (or SerialIndex.Sharded) to share an index between
// engines.
type SerialIndex struct {
	maxK  int
	hubs  []int32
	check []int32
	rrd   [][]rank.Entry
	gen   uint64
}

// New returns an empty serial index over n nodes supporting reverse
// k-ranks queries with k <= maxK.
func New(n, maxK int) *SerialIndex {
	if maxK < 1 {
		panic("ridx: maxK must be >= 1")
	}
	return &SerialIndex{
		maxK:  maxK,
		check: make([]int32, n),
		rrd:   make([][]rank.Entry, n),
	}
}

// BuildParams configures Build.
type BuildParams struct {
	Hubs []int32 // hub nodes to precompute from
	M    int     // SSSP steps per hub (number of nearest nodes ranked)
	K    int     // maximum k supported by queries against this index

	// Counted optionally restricts rank counting to a node class
	// (bichromatic mode, Definition 3). Nil counts every node.
	Counted []bool

	// Candidates optionally restricts which hubs contribute entries
	// (bichromatic mode, Definition 4): only candidate-class nodes can be
	// query results, so only they may occupy Reverse Rank Dictionary
	// slots — a slot held by a non-candidate would break the eviction
	// argument behind the Check Dictionary prune (k of the at most maxK
	// better-ranked entries must themselves be eligible results).
	// Non-candidate hubs are skipped. Nil admits every hub.
	Candidates []bool
}

// Build precomputes a serial index: an M-step ranked SSSP from every hub
// (Section 5.2). The per-hub cost is O(M log M + E*) where E* is the number
// of arcs incident to the M settled nodes.
func Build(g *graph.Graph, p BuildParams) (*SerialIndex, error) {
	if err := checkParams(p); err != nil {
		return nil, err
	}
	ix := New(g.N(), p.K)
	ix.hubs = p.eligibleHubs()
	s := sssp.New(g)
	for _, h := range ix.hubs {
		addHub(ix, s, h, p.M, p.Counted)
	}
	return ix, nil
}

// eligibleHubs filters the hub list to candidate-class nodes (see the
// Candidates field).
func (p BuildParams) eligibleHubs() []int32 {
	out := make([]int32, 0, len(p.Hubs))
	for _, h := range p.Hubs {
		if p.Candidates == nil || p.Candidates[h] {
			out = append(out, h)
		}
	}
	return out
}

// addHub runs the M-step ranked SSSP from hub and feeds the results into
// ix. It works against the Index interface so serial builds, parallel
// merge builds, and direct-to-sharded builds share one definition.
func addHub(ix Index, s *sssp.Search, hub int32, m int, counted []bool) {
	s.Reset(hub)
	strictBelow := 0
	settledCounted := 0
	level := math.Inf(-1)
	last := int32(0)
	for settledCounted < m {
		v, d, ok := s.Next()
		if !ok {
			// Whole reachable component settled: any node absent from the
			// dictionaries is unreachable from hub.
			last = math.MaxInt32
			break
		}
		if v == hub {
			continue
		}
		if counted != nil && !counted[v] {
			continue
		}
		if d > level {
			strictBelow = settledCounted
			level = d
		}
		settledCounted++
		r := int32(strictBelow + 1)
		ix.Offer(v, hub, r)
		last = r
	}
	ix.RaiseCheck(hub, last)
}

func checkParams(p BuildParams) error {
	if p.M < 1 {
		return fmt.Errorf("ridx: M must be >= 1, got %d", p.M)
	}
	if p.K < 1 {
		return fmt.Errorf("ridx: K must be >= 1, got %d", p.K)
	}
	return nil
}

// MaxK returns the largest query k the index supports.
func (ix *SerialIndex) MaxK() int { return ix.maxK }

// Hubs returns the hub nodes the index was built from.
func (ix *SerialIndex) Hubs() []int32 { return ix.hubs }

// N returns the number of nodes covered.
func (ix *SerialIndex) N() int { return len(ix.check) }

// Concurrent reports that a SerialIndex must not be shared between
// goroutines.
func (ix *SerialIndex) Concurrent() bool { return false }

// Generation returns the answer-set generation (see Index.Generation).
func (ix *SerialIndex) Generation() uint64 { return ix.gen }

// BumpGeneration advances the answer-set generation.
func (ix *SerialIndex) BumpGeneration() { ix.gen++ }

// Invalidate clears both dictionaries and advances the generation (see
// Index.Invalidate). MaxK and the hub list are preserved: they describe
// the index's shape, not graph-dependent facts.
func (ix *SerialIndex) Invalidate() {
	for i := range ix.check {
		ix.check[i] = 0
	}
	for i := range ix.rrd {
		ix.rrd[i] = nil
	}
	ix.gen++
}

// Check returns the Check Dictionary bound for u (0 when u was never the
// source of a recorded search).
func (ix *SerialIndex) Check(u int32) int32 { return ix.check[u] }

// RaiseCheck raises the Check Dictionary bound for u; bounds only grow
// (each recorded search certifies at least what previous ones did).
func (ix *SerialIndex) RaiseCheck(u, bound int32) {
	if bound > ix.check[u] {
		ix.check[u] = bound
	}
}

// Reverse returns the stored reverse-rank list of v, ordered by
// (rank, node). The returned slice aliases index storage; callers must not
// modify it and must not hold it across Offer calls.
func (ix *SerialIndex) Reverse(v int32) []rank.Entry { return ix.rrd[v] }

// LookupRank returns Rank(u, v) when the pair is recorded.
func (ix *SerialIndex) LookupRank(v, u int32) (int32, bool) {
	return lookupRank(ix.rrd[v], u)
}

func lookupRank(list []rank.Entry, u int32) (int32, bool) {
	for _, e := range list {
		if e.Node == u {
			return e.Rank, true
		}
	}
	return 0, false
}

// offerPos locates where (u, r) would sit in a (rank, node)-ordered entry
// list; dup reports that u is already recorded (ranks are exact, so a
// re-offer is always a no-op).
func offerPos(list []rank.Entry, u, r int32) (pos int, dup bool) {
	for _, e := range list {
		if e.Node == u {
			return 0, true
		}
	}
	pos = len(list)
	for i, e := range list {
		if r < e.Rank || (r == e.Rank && u < e.Node) {
			return i, false
		}
	}
	return pos, false
}

// offerToList merges (u, r) into a best-maxK entry list ordered by
// (rank, node). When inPlace is true the input slice is mutated (serial
// index); otherwise a changed list is a fresh allocation and the input is
// left intact (copy-on-write for the sharded index, whose readers hold
// published slices without locks). changed reports whether the dictionary
// gained or reordered an entry.
func offerToList(list []rank.Entry, u, r int32, maxK int, inPlace bool) (out []rank.Entry, changed bool) {
	pos, dup := offerPos(list, u, r)
	if dup || pos >= maxK {
		return list, false
	}
	if inPlace {
		if len(list) < maxK {
			list = append(list, rank.Entry{})
		}
		copy(list[pos+1:], list[pos:])
		list[pos] = rank.Entry{Node: u, Rank: r}
		return list, true
	}
	n := len(list) + 1
	if n > maxK {
		n = maxK
	}
	fresh := make([]rank.Entry, n)
	copy(fresh, list[:pos])
	fresh[pos] = rank.Entry{Node: u, Rank: r}
	copy(fresh[pos+1:], list[pos:])
	return fresh, true
}

// Offer records Rank(u, v) = r in the Reverse Rank Dictionary of v, keeping
// only the best maxK entries ordered by (rank, node). Ranks are exact, so a
// re-offered pair is ignored. It reports whether the dictionary changed.
func (ix *SerialIndex) Offer(v, u, r int32) bool {
	list, changed := offerToList(ix.rrd[v], u, r, ix.maxK, true)
	if changed {
		ix.rrd[v] = list
	}
	return changed
}

// Entries returns the total number of reverse-rank entries stored.
func (ix *SerialIndex) Entries() int64 {
	var n int64
	for _, l := range ix.rrd {
		n += int64(len(l))
	}
	return n
}

// SizeBytes estimates the in-memory footprint of the index payload
// (dictionary entries and check bounds), mirroring the "Index Size" columns
// of Tables 6-9.
func (ix *SerialIndex) SizeBytes() int64 {
	return sizeBytes(int64(len(ix.check)), ix.Entries())
}

func sizeBytes(n, entries int64) int64 {
	const entryBytes = 8 // int32 node + int32 rank
	return n*4 + entries*entryBytes + n*24
}

// Clone returns a deep copy; used by experiments that reset the index
// between query batches (Table 14).
func (ix *SerialIndex) Clone() *SerialIndex {
	cp := &SerialIndex{
		maxK:  ix.maxK,
		hubs:  append([]int32(nil), ix.hubs...),
		check: append([]int32(nil), ix.check...),
		rrd:   make([][]rank.Entry, len(ix.rrd)),
	}
	for i, l := range ix.rrd {
		if len(l) > 0 {
			cp.rrd[i] = append([]rank.Entry(nil), l...)
		}
	}
	return cp
}

// Sharded converts the index into a ShardedIndex safe for concurrent use,
// taking ownership of the entry lists (the receiver must not be used
// afterwards). The conversion is O(n) pointer moves, not a deep copy.
func (ix *SerialIndex) Sharded() *ShardedIndex {
	sh := newSharded(len(ix.check), ix.maxK)
	sh.hubs = ix.hubs
	copy(sh.check, ix.check)
	copy(sh.rrd, ix.rrd)
	ix.rrd = nil
	return sh
}

const indexMagic = "RKIX1\n"

// readInt32s reads n little-endian int32 values, growing the buffer chunk
// by chunk so untrusted counts fail with a read error rather than a huge
// allocation.
func readInt32s(r io.Reader, n int) ([]int32, error) {
	const chunkElems = 1 << 16
	out := make([]int32, 0, minInt(n, chunkElems))
	for len(out) < n {
		c := minInt(n-len(out), chunkElems)
		out = append(out, make([]int32, c)...)
		if err := binary.Read(r, binary.LittleEndian, out[len(out)-c:]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Write serializes the index.
func (ix *SerialIndex) Write(w io.Writer) error {
	return writeIndex(w, ix.maxK, ix.hubs, ix.check, ix.rrd, ix.Entries())
}

// writeIndex emits the shared on-disk format from raw dictionary state;
// both implementations funnel through it (the sharded index passes a
// consistent snapshot).
func writeIndex(w io.Writer, maxK int, hubs, check []int32, rrd [][]rank.Entry, entries int64) error {
	if _, err := io.WriteString(w, indexMagic); err != nil {
		return err
	}
	hdr := []uint64{uint64(maxK), uint64(len(check)), uint64(len(hubs)), uint64(entries)}
	for _, h := range hdr {
		if err := binary.Write(w, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(w, binary.LittleEndian, hubs); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, check); err != nil {
		return err
	}
	for _, l := range rrd {
		if err := binary.Write(w, binary.LittleEndian, uint32(len(l))); err != nil {
			return err
		}
		for _, e := range l {
			if err := binary.Write(w, binary.LittleEndian, [2]int32{e.Node, e.Rank}); err != nil {
				return err
			}
		}
	}
	return nil
}

// Read deserializes an index written by Write (either implementation; the
// on-disk format is shared). Use ReadSharded, or Sharded on the result, to
// obtain a concurrency-safe index instead.
func Read(r io.Reader) (*SerialIndex, error) {
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, err
	}
	if string(magic) != indexMagic {
		return nil, fmt.Errorf("ridx: bad magic %q", magic)
	}
	var hdr [4]uint64
	for i := range hdr {
		if err := binary.Read(r, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, err
		}
	}
	// Header fields are untrusted: bound them before allocating.
	maxK, n, nhubs := hdr[0], hdr[1], hdr[2]
	if maxK < 1 || maxK > math.MaxInt32 || n > math.MaxInt32 || nhubs > n {
		return nil, fmt.Errorf("ridx: corrupt header: K=%d n=%d hubs=%d", maxK, n, nhubs)
	}
	// Read the variable-length payloads before allocating the O(n) rrd
	// table, so a corrupted n fails on a short read instead of a giant
	// allocation (the chunked reader grows with actual file content).
	hubs, err := readInt32s(r, int(nhubs))
	if err != nil {
		return nil, err
	}
	check, err := readInt32s(r, int(n))
	if err != nil {
		return nil, err
	}
	ix := &SerialIndex{maxK: int(maxK), hubs: hubs, check: check, rrd: make([][]rank.Entry, n)}
	for v := range ix.rrd {
		var ln uint32
		if err := binary.Read(r, binary.LittleEndian, &ln); err != nil {
			return nil, err
		}
		if int(ln) > ix.maxK {
			return nil, fmt.Errorf("ridx: list for %d longer than K", v)
		}
		if ln == 0 {
			continue
		}
		list := make([]rank.Entry, ln)
		for i := range list {
			var pair [2]int32
			if err := binary.Read(r, binary.LittleEndian, &pair); err != nil {
				return nil, err
			}
			list[i] = rank.Entry{Node: pair[0], Rank: pair[1]}
		}
		ix.rrd[v] = list
	}
	return ix, nil
}

// ReadSharded deserializes an index written by Write into a ShardedIndex
// safe for concurrent use.
func ReadSharded(r io.Reader) (*ShardedIndex, error) {
	ix, err := Read(r)
	if err != nil {
		return nil, err
	}
	return ix.Sharded(), nil
}
