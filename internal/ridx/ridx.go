// Package ridx implements the reverse k-ranks index of Section 5 of the
// paper: a Check Dictionary recording how far single-source searches from
// each node have already looked, and a Reverse Rank Dictionary holding, for
// every node v, the best (at most K) known (u, Rank(u, v)) pairs.
//
// The index is seeded by running an M-step SSSP from each of H hub nodes
// (Section 5.2) and is refined dynamically as queries run (Section 5.3):
// every rank refinement performed by the indexed engine feeds its settled
// nodes back into both dictionaries, so the index keeps getting better.
//
// # Check Dictionary semantics
//
// Check(u) = c is a certified lower bound: for any node v that is NOT
// recorded in Reverse(v) with source u, Rank(u, v) >= c. The paper stores
// the number of SSSP steps taken from u; under distance ties that count can
// exceed the true rank of an unsettled node, so this implementation stores
// the tie-aware rank of the last settled node instead, which is provably
// safe (an unsettled node is at least as far as the last settled one, hence
// ranks no better). Without ties the two definitions coincide.
package ridx

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"rkranks/internal/graph"
	"rkranks/internal/rank"
	"rkranks/internal/sssp"
)

// Index is the two-dictionary structure of Section 5.2. It is not safe for
// concurrent use: the indexed query engine both reads and writes it.
type Index struct {
	maxK  int
	hubs  []int32
	check []int32
	rrd   [][]rank.Entry
}

// New returns an empty index over n nodes supporting reverse k-ranks
// queries with k <= maxK.
func New(n, maxK int) *Index {
	if maxK < 1 {
		panic("ridx: maxK must be >= 1")
	}
	return &Index{
		maxK:  maxK,
		check: make([]int32, n),
		rrd:   make([][]rank.Entry, n),
	}
}

// BuildParams configures Build.
type BuildParams struct {
	Hubs []int32 // hub nodes to precompute from
	M    int     // SSSP steps per hub (number of nearest nodes ranked)
	K    int     // maximum k supported by queries against this index

	// Counted optionally restricts rank counting to a node class
	// (bichromatic mode, Definition 3). Nil counts every node.
	Counted []bool

	// Candidates optionally restricts which hubs contribute entries
	// (bichromatic mode, Definition 4): only candidate-class nodes can be
	// query results, so only they may occupy Reverse Rank Dictionary
	// slots — a slot held by a non-candidate would break the eviction
	// argument behind the Check Dictionary prune (k of the at most maxK
	// better-ranked entries must themselves be eligible results).
	// Non-candidate hubs are skipped. Nil admits every hub.
	Candidates []bool
}

// Build precomputes the index: an M-step ranked SSSP from every hub
// (Section 5.2). The per-hub cost is O(M log M + E*) where E* is the number
// of arcs incident to the M settled nodes.
func Build(g *graph.Graph, p BuildParams) (*Index, error) {
	if err := checkParams(p); err != nil {
		return nil, err
	}
	ix := New(g.N(), p.K)
	ix.hubs = p.eligibleHubs()
	s := sssp.New(g)
	for _, h := range ix.hubs {
		ix.addHub(s, h, p.M, p.Counted)
	}
	return ix, nil
}

// eligibleHubs filters the hub list to candidate-class nodes (see the
// Candidates field).
func (p BuildParams) eligibleHubs() []int32 {
	out := make([]int32, 0, len(p.Hubs))
	for _, h := range p.Hubs {
		if p.Candidates == nil || p.Candidates[h] {
			out = append(out, h)
		}
	}
	return out
}

func (ix *Index) addHub(s *sssp.Search, hub int32, m int, counted []bool) {
	s.Reset(hub)
	strictBelow := 0
	settledCounted := 0
	level := math.Inf(-1)
	last := int32(0)
	for settledCounted < m {
		v, d, ok := s.Next()
		if !ok {
			// Whole reachable component settled: any node absent from the
			// dictionaries is unreachable from hub.
			last = math.MaxInt32
			break
		}
		if v == hub {
			continue
		}
		if counted != nil && !counted[v] {
			continue
		}
		if d > level {
			strictBelow = settledCounted
			level = d
		}
		settledCounted++
		r := int32(strictBelow + 1)
		ix.Offer(v, hub, r)
		last = r
	}
	ix.RaiseCheck(hub, last)
}

func checkParams(p BuildParams) error {
	if p.M < 1 {
		return fmt.Errorf("ridx: M must be >= 1, got %d", p.M)
	}
	if p.K < 1 {
		return fmt.Errorf("ridx: K must be >= 1, got %d", p.K)
	}
	return nil
}

// MaxK returns the largest query k the index supports.
func (ix *Index) MaxK() int { return ix.maxK }

// Hubs returns the hub nodes the index was built from.
func (ix *Index) Hubs() []int32 { return ix.hubs }

// N returns the number of nodes covered.
func (ix *Index) N() int { return len(ix.check) }

// Check returns the Check Dictionary bound for u (0 when u was never the
// source of a recorded search).
func (ix *Index) Check(u int32) int32 { return ix.check[u] }

// RaiseCheck raises the Check Dictionary bound for u; bounds only grow
// (each recorded search certifies at least what previous ones did).
func (ix *Index) RaiseCheck(u, bound int32) {
	if bound > ix.check[u] {
		ix.check[u] = bound
	}
}

// Reverse returns the stored reverse-rank list of v, ordered by
// (rank, node). The returned slice aliases index storage; callers must not
// modify it and must not hold it across Offer calls.
func (ix *Index) Reverse(v int32) []rank.Entry { return ix.rrd[v] }

// LookupRank returns Rank(u, v) when the pair is recorded.
func (ix *Index) LookupRank(v, u int32) (int32, bool) {
	for _, e := range ix.rrd[v] {
		if e.Node == u {
			return e.Rank, true
		}
	}
	return 0, false
}

// Offer records Rank(u, v) = r in the Reverse Rank Dictionary of v, keeping
// only the best maxK entries ordered by (rank, node). Ranks are exact, so a
// re-offered pair is ignored. It reports whether the dictionary changed.
func (ix *Index) Offer(v, u int32, r int32) bool {
	list := ix.rrd[v]
	for _, e := range list {
		if e.Node == u {
			return false // already recorded (ranks are exact)
		}
	}
	pos := len(list)
	for i, e := range list {
		if r < e.Rank || (r == e.Rank && u < e.Node) {
			pos = i
			break
		}
	}
	if pos >= ix.maxK {
		return false
	}
	if len(list) < ix.maxK {
		list = append(list, rank.Entry{})
	}
	copy(list[pos+1:], list[pos:])
	list[pos] = rank.Entry{Node: u, Rank: r}
	ix.rrd[v] = list
	return true
}

// Entries returns the total number of reverse-rank entries stored.
func (ix *Index) Entries() int64 {
	var n int64
	for _, l := range ix.rrd {
		n += int64(len(l))
	}
	return n
}

// SizeBytes estimates the in-memory footprint of the index payload
// (dictionary entries and check bounds), mirroring the "Index Size" columns
// of Tables 6-9.
func (ix *Index) SizeBytes() int64 {
	const entryBytes = 8 // int32 node + int32 rank
	return int64(len(ix.check))*4 + ix.Entries()*entryBytes + int64(len(ix.rrd))*24
}

// Clone returns a deep copy; used by experiments that reset the index
// between query batches (Table 14).
func (ix *Index) Clone() *Index {
	cp := &Index{
		maxK:  ix.maxK,
		hubs:  append([]int32(nil), ix.hubs...),
		check: append([]int32(nil), ix.check...),
		rrd:   make([][]rank.Entry, len(ix.rrd)),
	}
	for i, l := range ix.rrd {
		if len(l) > 0 {
			cp.rrd[i] = append([]rank.Entry(nil), l...)
		}
	}
	return cp
}

const indexMagic = "RKIX1\n"

// readInt32s reads n little-endian int32 values, growing the buffer chunk
// by chunk so untrusted counts fail with a read error rather than a huge
// allocation.
func readInt32s(r io.Reader, n int) ([]int32, error) {
	const chunkElems = 1 << 16
	out := make([]int32, 0, minInt(n, chunkElems))
	for len(out) < n {
		c := minInt(n-len(out), chunkElems)
		out = append(out, make([]int32, c)...)
		if err := binary.Read(r, binary.LittleEndian, out[len(out)-c:]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Write serializes the index.
func (ix *Index) Write(w io.Writer) error {
	if _, err := io.WriteString(w, indexMagic); err != nil {
		return err
	}
	hdr := []uint64{uint64(ix.maxK), uint64(len(ix.check)), uint64(len(ix.hubs)), uint64(ix.Entries())}
	for _, h := range hdr {
		if err := binary.Write(w, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(w, binary.LittleEndian, ix.hubs); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, ix.check); err != nil {
		return err
	}
	for _, l := range ix.rrd {
		if err := binary.Write(w, binary.LittleEndian, uint32(len(l))); err != nil {
			return err
		}
		for _, e := range l {
			if err := binary.Write(w, binary.LittleEndian, [2]int32{e.Node, e.Rank}); err != nil {
				return err
			}
		}
	}
	return nil
}

// Read deserializes an index written by Write.
func Read(r io.Reader) (*Index, error) {
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, err
	}
	if string(magic) != indexMagic {
		return nil, fmt.Errorf("ridx: bad magic %q", magic)
	}
	var hdr [4]uint64
	for i := range hdr {
		if err := binary.Read(r, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, err
		}
	}
	// Header fields are untrusted: bound them before allocating.
	maxK, n, nhubs := hdr[0], hdr[1], hdr[2]
	if maxK < 1 || maxK > math.MaxInt32 || n > math.MaxInt32 || nhubs > n {
		return nil, fmt.Errorf("ridx: corrupt header: K=%d n=%d hubs=%d", maxK, n, nhubs)
	}
	// Read the variable-length payloads before allocating the O(n) rrd
	// table, so a corrupted n fails on a short read instead of a giant
	// allocation (the chunked reader grows with actual file content).
	hubs, err := readInt32s(r, int(nhubs))
	if err != nil {
		return nil, err
	}
	check, err := readInt32s(r, int(n))
	if err != nil {
		return nil, err
	}
	ix := &Index{maxK: int(maxK), hubs: hubs, check: check, rrd: make([][]rank.Entry, n)}
	for v := range ix.rrd {
		var ln uint32
		if err := binary.Read(r, binary.LittleEndian, &ln); err != nil {
			return nil, err
		}
		if int(ln) > ix.maxK {
			return nil, fmt.Errorf("ridx: list for %d longer than K", v)
		}
		if ln == 0 {
			continue
		}
		list := make([]rank.Entry, ln)
		for i := range list {
			var pair [2]int32
			if err := binary.Read(r, binary.LittleEndian, &pair); err != nil {
				return nil, err
			}
			list[i] = rank.Entry{Node: pair[0], Rank: pair[1]}
		}
		ix.rrd[v] = list
	}
	return ix, nil
}
