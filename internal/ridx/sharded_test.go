package ridx

import (
	"bytes"
	"sync"
	"testing"

	"rkranks/internal/gen"
	"rkranks/internal/hub"
	"rkranks/internal/rank"
	tg "rkranks/internal/testgraphs"
)

// assertSameIndex fails unless both indexes hold identical dictionaries.
func assertSameIndex(t *testing.T, got, want Index) {
	t.Helper()
	if got.N() != want.N() || got.MaxK() != want.MaxK() || got.Entries() != want.Entries() {
		t.Fatalf("shape: n=%d/%d K=%d/%d entries=%d/%d",
			got.N(), want.N(), got.MaxK(), want.MaxK(), got.Entries(), want.Entries())
	}
	for v := int32(0); int(v) < want.N(); v++ {
		if got.Check(v) != want.Check(v) {
			t.Fatalf("check[%d] = %d, want %d", v, got.Check(v), want.Check(v))
		}
		a, b := got.Reverse(v), want.Reverse(v)
		if len(a) != len(b) {
			t.Fatalf("rrd[%d] size %d, want %d", v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("rrd[%d][%d] = %v, want %v", v, i, a[i], b[i])
			}
		}
	}
}

// TestBuildShardedEquivalence: direct-to-sharded parallel construction must
// match serial construction for any worker count (Offer commutes).
func TestBuildShardedEquivalence(t *testing.T) {
	g := gen.DBLPLike(gen.DBLPLikeParams{Nodes: 400, AttachPerNode: 4, Seed: 3})
	params := BuildParams{
		Hubs: hub.Select(g, hub.DegreeFirst, 40, hub.Options{}),
		M:    80,
		K:    8,
	}
	want, err := Build(g, params)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 3, 8} {
		got, err := BuildSharded(g, params, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		assertSameIndex(t, got, want)
		if !got.Concurrent() || want.Concurrent() {
			t.Fatal("Concurrent flags inverted")
		}
	}
}

func TestBuildShardedValidation(t *testing.T) {
	g := gen.GNM(10, 20, false, 1)
	if _, err := BuildSharded(g, BuildParams{Hubs: []int32{0}, M: 0, K: 1}, 2); err == nil {
		t.Error("M=0 accepted")
	}
	if _, err := BuildSharded(g, BuildParams{Hubs: []int32{0}, M: 1, K: 0}, 2); err == nil {
		t.Error("K=0 accepted")
	}
	ix, err := BuildSharded(g, BuildParams{Hubs: nil, M: 1, K: 1}, 4)
	if err != nil || ix.Entries() != 0 {
		t.Errorf("empty hub set: %v, %v", ix, err)
	}
}

func TestNewShardedPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSharded(maxK=0) did not panic")
		}
	}()
	NewSharded(3, 0)
}

// TestShardedRoundTrip: both implementations share one on-disk format in
// both directions.
func TestShardedRoundTrip(t *testing.T) {
	g := tg.Toy()
	serial, err := Build(g, BuildParams{Hubs: []int32{tg.Bob, tg.Eric, tg.Sid}, M: 4, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	sharded := serial.Clone().Sharded()
	assertSameIndex(t, sharded, serial)

	var buf bytes.Buffer
	if err := sharded.Write(&buf); err != nil {
		t.Fatal(err)
	}
	backSerial, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertSameIndex(t, backSerial, serial)

	backSharded, err := ReadSharded(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertSameIndex(t, backSharded, serial)
	if !backSharded.Concurrent() {
		t.Error("ReadSharded returned a non-concurrent index")
	}
}

// TestShardedSnapshotIsolated: mutating a snapshot (or the live index after
// snapshotting) must not leak through shared storage.
func TestShardedSnapshotIsolated(t *testing.T) {
	sh := NewSharded(4, 2)
	sh.Offer(1, 2, 5)
	sh.Offer(1, 3, 4)
	snap := sh.Snapshot()
	// Fill node 1's list in the snapshot: in-place insertion shifts
	// entries, which must not corrupt the live list.
	snap.Offer(1, 0, 1)
	if r, ok := sh.LookupRank(1, 0); ok {
		t.Errorf("snapshot write leaked into live index: rank %d", r)
	}
	sh.Offer(1, 0, 2)
	if _, ok := snap.LookupRank(1, 0); !ok {
		// Snapshot has its own (0, 1) entry from above; the live offer
		// must not have displaced it.
		t.Error("live write disturbed snapshot")
	}
}

// TestShardedConcurrentMutation hammers one sharded index from many
// goroutines mixing reads and writes; run under -race this is the package's
// memory-safety proof, and afterwards every recorded fact must still be a
// fact some writer offered, with lists sorted and bounded by K.
func TestShardedConcurrentMutation(t *testing.T) {
	const (
		n       = 64
		maxK    = 4
		writers = 8
		offers  = 400
	)
	ix := NewSharded(n, maxK)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint32(w*2654435761 + 1)
			for i := 0; i < offers; i++ {
				rng = rng*1664525 + 1013904223
				v := int32(rng % n)
				u := int32(w) // one source node per writer: ranks stay exact
				r := int32(v%7 + 1)
				ix.Offer(v, u, r)
				ix.RaiseCheck(u, r)
				// Concurrent readers on the same stripe.
				if got, ok := ix.LookupRank(v, u); ok && got != r {
					t.Errorf("LookupRank(%d,%d) = %d, want %d", v, u, got, r)
				}
				_ = ix.Reverse(v)
				_ = ix.Check(u)
			}
		}(w)
	}
	wg.Wait()
	for v := int32(0); v < n; v++ {
		list := ix.Reverse(v)
		if len(list) > maxK {
			t.Fatalf("rrd[%d] has %d entries > K=%d", v, len(list), maxK)
		}
		for i, e := range list {
			if e.Rank != v%7+1 {
				t.Errorf("rrd[%d][%d] rank %d, want %d", v, i, e.Rank, v%7+1)
			}
			if i > 0 {
				prev := list[i-1]
				if e.Rank < prev.Rank || (e.Rank == prev.Rank && e.Node <= prev.Node) {
					t.Errorf("rrd[%d] not sorted at %d: %v, %v", v, i, prev, e)
				}
			}
		}
	}
	if ix.SizeBytes() <= 0 {
		t.Error("SizeBytes not positive")
	}
}

// TestShardedReverseSnapshotStable: a slice returned by Reverse must stay
// intact while the index keeps evolving (copy-on-write contract).
func TestShardedReverseSnapshotStable(t *testing.T) {
	ix := NewSharded(2, 3)
	ix.Offer(0, 5, 2)
	ix.Offer(0, 6, 3)
	snap := ix.Reverse(0)
	saved := append([]rank.Entry(nil), snap...)
	ix.Offer(0, 4, 1) // displaces within the list
	ix.Offer(0, 3, 1) // evicts the tail
	for i := range saved {
		if snap[i] != saved[i] {
			t.Fatalf("held Reverse slice mutated at %d: %v != %v", i, snap[i], saved[i])
		}
	}
}
