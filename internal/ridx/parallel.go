package ridx

import (
	"runtime"
	"sync"

	"rkranks/internal/graph"
	"rkranks/internal/sssp"
)

// BuildParallel builds the same serial index as Build using worker
// goroutines (workers <= 0 uses GOMAXPROCS). Hub searches are independent,
// so each worker accumulates a private partial index over its share of
// hubs; the partials are then merged by re-offering every entry. The
// result is identical to Build's regardless of worker count or scheduling,
// because Offer is order-independent: entries are exact (u, rank) facts
// and the per-node list keeps the best maxK by (rank, node).
//
// For an index that will be shared by concurrent engines afterwards, use
// BuildSharded instead, which writes a ShardedIndex directly.
func BuildParallel(g *graph.Graph, p BuildParams, workers int) (*SerialIndex, error) {
	if err := checkParams(p); err != nil {
		return nil, err
	}
	hubs := p.eligibleHubs()
	workers = clampWorkers(workers, len(hubs))
	out := New(g.N(), p.K)
	out.hubs = hubs
	if workers <= 1 {
		forEachHub(g, hubs, 1, func(_ int, s *sssp.Search, h int32) {
			addHub(out, s, h, p.M, p.Counted)
		})
		return out, nil
	}

	partials := make([]*SerialIndex, workers)
	for w := range partials {
		partials[w] = New(g.N(), p.K)
	}
	forEachHub(g, hubs, workers, func(w int, s *sssp.Search, h int32) {
		addHub(partials[w], s, h, p.M, p.Counted)
	})

	for _, part := range partials {
		for v, list := range part.rrd {
			for _, e := range list {
				out.Offer(int32(v), e.Node, e.Rank)
			}
		}
		for u, c := range part.check {
			out.RaiseCheck(int32(u), c)
		}
	}
	return out, nil
}

// clampWorkers resolves a requested worker count against the hub count:
// <= 0 means GOMAXPROCS, never more workers than hubs, never fewer than 1.
func clampWorkers(workers, hubs int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > hubs {
		workers = hubs
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// forEachHub invokes fn(worker, search, hub) for every hub across workers
// goroutines (already clamped by clampWorkers), one private sssp.Search
// per worker; workers <= 1 runs inline with no goroutine. Hubs are dealt
// round-robin, so worker w sees hubs w, w+workers, ... — fn must be safe
// for concurrent invocation across different workers (BuildSharded streams
// all workers into one shared ShardedIndex; BuildParallel gives each
// worker its own partial via the worker id).
func forEachHub(g *graph.Graph, hubs []int32, workers int, fn func(w int, s *sssp.Search, h int32)) {
	if workers <= 1 {
		s := sssp.New(g)
		for _, h := range hubs {
			fn(0, s, h)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := sssp.New(g)
			for i := w; i < len(hubs); i += workers {
				fn(w, s, hubs[i])
			}
		}(w)
	}
	wg.Wait()
}
