package ridx

import (
	"runtime"
	"sync"

	"rkranks/internal/graph"
	"rkranks/internal/sssp"
)

// BuildParallel builds the same index as Build using worker goroutines
// (workers <= 0 uses GOMAXPROCS). Hub searches are independent, so each
// worker accumulates a private partial index over its share of hubs; the
// partials are then merged by re-offering every entry. The result is
// identical to Build's regardless of worker count or scheduling, because
// Offer is order-independent: entries are exact (u, rank) facts and the
// per-node list keeps the best maxK by (rank, node).
func BuildParallel(g *graph.Graph, p BuildParams, workers int) (*Index, error) {
	if err := checkParams(p); err != nil {
		return nil, err
	}
	hubs := p.eligibleHubs()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(hubs) {
		workers = len(hubs)
	}
	out := New(g.N(), p.K)
	out.hubs = hubs
	if workers <= 1 {
		s := sssp.New(g)
		for _, h := range hubs {
			out.addHub(s, h, p.M, p.Counted)
		}
		return out, nil
	}

	partials := make([]*Index, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			part := New(g.N(), p.K)
			s := sssp.New(g)
			for i := w; i < len(hubs); i += workers {
				part.addHub(s, hubs[i], p.M, p.Counted)
			}
			partials[w] = part
		}(w)
	}
	wg.Wait()

	for _, part := range partials {
		for v, list := range part.rrd {
			for _, e := range list {
				out.Offer(int32(v), e.Node, e.Rank)
			}
		}
		for u, c := range part.check {
			out.RaiseCheck(int32(u), c)
		}
	}
	return out, nil
}
