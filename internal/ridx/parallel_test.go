package ridx

import (
	"testing"

	"rkranks/internal/gen"
	"rkranks/internal/hub"
)

// TestBuildParallelEquivalence: parallel construction must be
// bit-identical to serial construction for any worker count.
func TestBuildParallelEquivalence(t *testing.T) {
	g := gen.DBLPLike(gen.DBLPLikeParams{Nodes: 400, AttachPerNode: 4, Seed: 3})
	params := BuildParams{
		Hubs: hub.Select(g, hub.DegreeFirst, 40, hub.Options{}),
		M:    80,
		K:    8,
	}
	want, err := Build(g, params)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8, 100} {
		got, err := BuildParallel(g, params, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Entries() != want.Entries() || got.MaxK() != want.MaxK() {
			t.Fatalf("workers=%d: shape %d/%d vs %d/%d",
				workers, got.Entries(), got.MaxK(), want.Entries(), want.MaxK())
		}
		for v := int32(0); int(v) < g.N(); v++ {
			if got.Check(v) != want.Check(v) {
				t.Fatalf("workers=%d: check[%d] %d vs %d", workers, v, got.Check(v), want.Check(v))
			}
			a, b := got.Reverse(v), want.Reverse(v)
			if len(a) != len(b) {
				t.Fatalf("workers=%d: rrd[%d] size %d vs %d", workers, v, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("workers=%d: rrd[%d][%d] %v vs %v", workers, v, i, a[i], b[i])
				}
			}
		}
	}
}

func TestBuildParallelValidation(t *testing.T) {
	g := gen.GNM(10, 20, false, 1)
	if _, err := BuildParallel(g, BuildParams{Hubs: []int32{0}, M: 0, K: 1}, 2); err == nil {
		t.Error("M=0 accepted")
	}
	if _, err := BuildParallel(g, BuildParams{Hubs: []int32{0}, M: 1, K: 0}, 2); err == nil {
		t.Error("K=0 accepted")
	}
	// Zero hubs is legal: an empty but usable index.
	ix, err := BuildParallel(g, BuildParams{Hubs: nil, M: 1, K: 1}, 4)
	if err != nil || ix.Entries() != 0 {
		t.Errorf("empty hub set: %v, %v", ix, err)
	}
}

func TestBuildParallelDefaultWorkers(t *testing.T) {
	g := gen.GNM(50, 120, false, 2)
	params := BuildParams{Hubs: []int32{1, 2, 3, 4, 5}, M: 10, K: 3}
	ix, err := BuildParallel(g, params, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Build(g, params)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Entries() != want.Entries() {
		t.Errorf("entries %d vs %d", ix.Entries(), want.Entries())
	}
}
