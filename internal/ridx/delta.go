package ridx

import (
	"io"
	"sync"

	"rkranks/internal/rank"
)

// Delta operation kinds. The values are part of the replication wire
// protocol (internal/api maps them to JSON): add, never renumber.
const (
	// DeltaOffer records Rank(U, V) = R in the Reverse Rank Dictionary
	// of V.
	DeltaOffer uint8 = 1
	// DeltaCheck raises the Check Dictionary bound of U to R (V unused).
	DeltaCheck uint8 = 2
)

// Delta is one state-changing dictionary update, replayable on any
// replica of the same graph. Both operation kinds carry exact facts —
// an Offer is an exact (u, Rank(u, v)) pair and a RaiseCheck a
// certified bound — so deltas are idempotent (re-applying is a no-op)
// and commute with each other and with concurrent local refinement.
// A delta stream may therefore be applied out of order across writers,
// duplicated, or overlapped with a snapshot without corrupting the
// follower; only the per-writer order (witness offers before the check
// bound they justify) must be preserved, and the log guarantees it
// because each writer appends its offer before its raise.
type Delta struct {
	Op      uint8
	V, U, R int32
}

// defaultDeltaLog bounds the replication log: ~64K deltas is roughly
// 1 MB and covers minutes of steady-state refinement (a warmed-up pool
// rejects most re-offers before they reach the log). A follower whose
// cursor falls off the tail re-syncs from a full snapshot.
const defaultDeltaLog = 1 << 16

// Replicated wraps a ShardedIndex with a bounded, sequence-numbered log
// of its state-changing updates, making the index's learned state
// shippable: a leader serves WriteSnapshot + DeltasSince and a follower
// replays them with Absorb + Apply, inheriting refinements instead of
// re-deriving them from its own queries.
//
// Correctness of snapshot + delta replay: WriteSnapshot captures the
// log sequence BEFORE copying the dictionaries, so every update is
// either in the snapshot or in the deltas at or after the returned
// sequence (an update logs itself only after the dictionaries already
// hold it). The two sets may overlap; idempotence absorbs the overlap.
//
// Invalidate and BumpGeneration reset the log: previously streamed
// deltas describe a discarded answer set, so followers at any older
// cursor are told (via DeltasSince ok=false and the generation carried
// on the wire) to re-sync from a fresh snapshot.
//
// Replicated implements Index and is safe for concurrent use; it adds
// one short mutex-guarded append to state-changing calls only, so the
// steady-state read path (and rejected re-offers) pay nothing.
type Replicated struct {
	inner *ShardedIndex

	mu   sync.Mutex
	log  []Delta
	base uint64 // sequence number of log[0]
	cap  int
}

// NewReplicated wraps inner with a delta log of at most logCap entries
// (<= 0 uses a default of 64K). The wrapper owns the index's
// state-changing path: callers must route every Offer/RaiseCheck
// through the wrapper, or the log will miss updates.
func NewReplicated(inner *ShardedIndex, logCap int) *Replicated {
	if logCap <= 0 {
		logCap = defaultDeltaLog
	}
	return &Replicated{inner: inner, cap: logCap}
}

// Inner exposes the wrapped sharded index.
func (r *Replicated) Inner() *ShardedIndex { return r.inner }

// append logs one state-changing update, dropping the oldest half of
// the log when full (amortized O(1); truncated followers fall back to a
// snapshot).
func (r *Replicated) append(d Delta) {
	r.mu.Lock()
	if len(r.log) >= r.cap {
		drop := r.cap / 2
		if drop < 1 {
			drop = 1
		}
		r.base += uint64(drop)
		r.log = append(r.log[:0], r.log[drop:]...)
	}
	r.log = append(r.log, d)
	r.mu.Unlock()
}

// reset discards the log; any follower cursor before the new base now
// requires a snapshot.
func (r *Replicated) reset() {
	r.mu.Lock()
	r.base += uint64(len(r.log))
	r.log = r.log[:0]
	r.mu.Unlock()
}

// Seq returns the sequence number the next logged delta will get.
func (r *Replicated) Seq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.base + uint64(len(r.log))
}

// DeltasSince returns up to max logged deltas starting at sequence
// since, with the cursor to pass next time. ok=false means the log no
// longer reaches back to since (truncated or reset) and the follower
// must re-sync from a snapshot. max <= 0 means no limit.
func (r *Replicated) DeltasSince(since uint64, max int) (ds []Delta, next uint64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	end := r.base + uint64(len(r.log))
	if since < r.base {
		return nil, end, false
	}
	if since >= end {
		return nil, end, true
	}
	n := end - since
	if max > 0 && uint64(max) < n {
		n = uint64(max)
	}
	start := since - r.base
	ds = append([]Delta(nil), r.log[start:start+n]...)
	return ds, since + n, true
}

// SnapshotState captures a consistent copy of the index together with
// the delta cursor and generation a follower should resume from. The
// sequence is read before the copy (see the type docs), so replaying
// deltas from seq over the snapshot converges on the leader's state.
func (r *Replicated) SnapshotState() (snap *SerialIndex, seq uint64, gen uint64) {
	seq = r.Seq()
	gen = r.inner.Generation()
	return r.inner.Snapshot(), seq, gen
}

// WriteSnapshot serializes a consistent snapshot in the shared ridx
// on-disk format and returns the cursor/generation pair for it.
func (r *Replicated) WriteSnapshot(w io.Writer) (seq uint64, gen uint64, err error) {
	snap, seq, gen := r.SnapshotState()
	return seq, gen, snap.Write(w)
}

// Apply replays a batch of deltas in order, reporting how many changed
// the dictionaries. Applied changes are re-logged, so a follower can
// itself lead further replicas.
func (r *Replicated) Apply(ds []Delta) (applied int) {
	for _, d := range ds {
		switch d.Op {
		case DeltaOffer:
			if r.Offer(d.V, d.U, d.R) {
				applied++
			}
		case DeltaCheck:
			if d.R > r.inner.Check(d.U) {
				r.RaiseCheck(d.U, d.R)
				applied++
			}
		}
	}
	return applied
}

// Absorb merges every fact of a snapshot into the index: the full
// re-sync path when a follower's cursor fell off the leader's log. The
// snapshot's check bounds are raised only after its witness entries are
// offered, preserving the cross-dictionary invariant throughout.
// Absorbing a snapshot of the same graph is always sound — facts are
// exact and commute with local refinement — and idempotent.
func (r *Replicated) Absorb(snap *SerialIndex) (applied int) {
	for v, list := range snap.rrd {
		for _, e := range list {
			if r.Offer(int32(v), e.Node, e.Rank) {
				applied++
			}
		}
	}
	for u, bound := range snap.check {
		if bound > r.inner.Check(int32(u)) {
			r.RaiseCheck(int32(u), bound)
			applied++
		}
	}
	return applied
}

// RaiseGeneration raises the index generation to at least gen,
// monotonically. Followers call it with the leader's generation so
// caches keyed on Generation agree across the replica set; raising it
// merely orphans cache entries, which is always sound.
func (r *Replicated) RaiseGeneration(gen uint64) {
	for {
		cur := r.inner.gen.Load()
		if gen <= cur {
			return
		}
		if r.inner.gen.CompareAndSwap(cur, gen) {
			return
		}
	}
}

// MaxK implements Index.
func (r *Replicated) MaxK() int { return r.inner.MaxK() }

// Hubs implements Index.
func (r *Replicated) Hubs() []int32 { return r.inner.Hubs() }

// N implements Index.
func (r *Replicated) N() int { return r.inner.N() }

// Check implements Index.
func (r *Replicated) Check(u int32) int32 { return r.inner.Check(u) }

// RaiseCheck implements Index, logging the raise when it changes the
// bound. The pre-check races with concurrent raises, so an occasional
// no-op raise is logged; replaying it is harmless (bounds are monotone).
func (r *Replicated) RaiseCheck(u, bound int32) {
	if bound <= r.inner.Check(u) {
		return
	}
	r.inner.RaiseCheck(u, bound)
	r.append(Delta{Op: DeltaCheck, U: u, R: bound})
}

// Reverse implements Index.
func (r *Replicated) Reverse(v int32) []rank.Entry { return r.inner.Reverse(v) }

// LookupRank implements Index.
func (r *Replicated) LookupRank(v, u int32) (int32, bool) { return r.inner.LookupRank(v, u) }

// Offer implements Index, logging the update when the dictionary
// changed.
func (r *Replicated) Offer(v, u, rk int32) bool {
	changed := r.inner.Offer(v, u, rk)
	if changed {
		r.append(Delta{Op: DeltaOffer, V: v, U: u, R: rk})
	}
	return changed
}

// Entries implements Index.
func (r *Replicated) Entries() int64 { return r.inner.Entries() }

// SizeBytes implements Index.
func (r *Replicated) SizeBytes() int64 { return r.inner.SizeBytes() }

// Write implements Index (a consistent snapshot, no cursor; use
// WriteSnapshot to also obtain the replication cursor).
func (r *Replicated) Write(w io.Writer) error { return r.inner.Write(w) }

// Concurrent implements Index.
func (r *Replicated) Concurrent() bool { return true }

// Generation implements Index.
func (r *Replicated) Generation() uint64 { return r.inner.Generation() }

// BumpGeneration implements Index; the log resets because streamed
// deltas describe the discarded answer set.
func (r *Replicated) BumpGeneration() {
	r.inner.BumpGeneration()
	r.reset()
}

// Invalidate implements Index; the log resets (see BumpGeneration).
func (r *Replicated) Invalidate() {
	r.inner.Invalidate()
	r.reset()
}

var _ Index = (*Replicated)(nil)
