package ridx

import (
	"bytes"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// feed drives n pseudo-random exact facts through an index the way
// query refinement would: offers, with an occasional check raise
// justified by prior offers (witness-before-bound order).
func feed(ix Index, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	nodes := int32(ix.N())
	for i := 0; i < n; i++ {
		v, u := rng.Int31n(nodes), rng.Int31n(nodes)
		ix.Offer(v, u, 1+rng.Int31n(50))
		if i%7 == 0 {
			ix.RaiseCheck(u, 1+rng.Int31n(20))
		}
	}
}

// stateEqual compares the full dictionary state of two indexes.
func stateEqual(t *testing.T, got, want Index) {
	t.Helper()
	if got.N() != want.N() {
		t.Fatalf("N: %d vs %d", got.N(), want.N())
	}
	for u := int32(0); u < int32(want.N()); u++ {
		if g, w := got.Check(u), want.Check(u); g != w {
			t.Fatalf("Check(%d) = %d, want %d", u, g, w)
		}
	}
	for v := int32(0); v < int32(want.N()); v++ {
		g, w := got.Reverse(v), want.Reverse(v)
		if len(g) == 0 && len(w) == 0 {
			continue
		}
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("Reverse(%d) = %v, want %v", v, g, w)
		}
	}
}

// TestReplicatedSnapshotDeltaReplay is the tentpole correctness test:
// a follower bootstrapped from a leader's serialized snapshot and then
// fed the leader's deltas converges on exactly the leader's dictionary
// state, including updates that raced the snapshot.
func TestReplicatedSnapshotDeltaReplay(t *testing.T) {
	leader := NewReplicated(NewSharded(60, 8), 0)
	feed(leader, 400, 1)

	var buf bytes.Buffer
	seq, gen, err := leader.WriteSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 0 {
		t.Fatalf("immutable leader generation = %d, want 0", gen)
	}

	// Leader keeps learning after the snapshot was cut.
	feed(leader, 300, 2)

	sh, err := ReadSharded(&buf)
	if err != nil {
		t.Fatal(err)
	}
	follower := NewReplicated(sh, 0)

	// Drain in small batches to exercise the cursor arithmetic.
	cursor := seq
	preApply := follower.Seq()
	for {
		ds, next, ok := leader.DeltasSince(cursor, 17)
		if !ok {
			t.Fatalf("cursor %d fell off an un-truncated log", cursor)
		}
		if len(ds) == 0 {
			break
		}
		follower.Apply(ds)
		cursor = next
	}
	stateEqual(t, follower, leader)
	if follower.Seq() == preApply {
		t.Fatal("Apply did not re-log any delta; the follower could not lead further replicas")
	}

	// Chained replication: a third replica bootstrapped from the
	// FOLLOWER's snapshot + deltas also converges on the leader's state.
	var buf2 bytes.Buffer
	seq2, _, err := follower.WriteSnapshot(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	sh2, err := ReadSharded(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	third := NewReplicated(sh2, 0)
	ds, _, ok := follower.DeltasSince(seq2, 0)
	if !ok {
		t.Fatalf("follower log unreadable from its own snapshot cursor %d", seq2)
	}
	third.Apply(ds)
	stateEqual(t, third, leader)
}

// TestDeltasSinceTruncation: a cursor older than the bounded log's base
// reports ok=false (snapshot required); the tail stays readable.
func TestDeltasSinceTruncation(t *testing.T) {
	r := NewReplicated(NewSharded(30, 4), 8)
	for i := int32(0); i < 20; i++ {
		r.Offer(i%30, (i+1)%30, i+1)
	}
	if _, next, ok := r.DeltasSince(0, 0); ok {
		t.Fatal("cursor 0 should have fallen off a cap-8 log")
	} else if next != r.Seq() {
		t.Fatalf("truncation next = %d, want Seq %d", next, r.Seq())
	}
	if ds, next, ok := r.DeltasSince(r.Seq(), 0); !ok || len(ds) != 0 || next != r.Seq() {
		t.Fatalf("caught-up cursor: ds=%v next=%d ok=%v", ds, next, ok)
	}
}

// TestInvalidateResetsLog: invalidation discards the log and bumps the
// generation — the two signals a follower uses to fall back to a fresh
// snapshot instead of replaying deltas of a discarded answer set.
func TestInvalidateResetsLog(t *testing.T) {
	r := NewReplicated(NewSharded(30, 4), 0)
	feed(r, 50, 3)
	old := uint64(0)
	gen := r.Generation()

	r.Invalidate()
	if r.Generation() != gen+1 {
		t.Fatalf("generation = %d, want %d", r.Generation(), gen+1)
	}
	if _, _, ok := r.DeltasSince(old, 0); ok {
		t.Fatal("pre-invalidate cursor must require a snapshot")
	}
	if r.Entries() != 0 {
		t.Fatalf("invalidated index still holds %d entries", r.Entries())
	}
	// A fully caught-up cursor stays readable (empty); the generation
	// change is what tells that follower to re-sync.
	if ds, _, ok := r.DeltasSince(r.Seq(), 0); !ok || len(ds) != 0 {
		t.Fatalf("caught-up cursor after reset: ds=%v ok=%v", ds, ok)
	}
}

// TestAbsorbIdempotent: absorbing the same snapshot twice changes
// nothing the second time.
func TestAbsorbIdempotent(t *testing.T) {
	leader := NewReplicated(NewSharded(40, 6), 0)
	feed(leader, 200, 4)
	snap, _, _ := leader.SnapshotState()

	follower := NewReplicated(NewSharded(40, 6), 0)
	if n := follower.Absorb(snap); n == 0 {
		t.Fatal("first absorb applied nothing")
	}
	stateEqual(t, follower, leader)
	if n := follower.Absorb(snap); n != 0 {
		t.Fatalf("second absorb applied %d updates, want 0", n)
	}
	stateEqual(t, follower, leader)
}

// TestRaiseGenerationMonotone: RaiseGeneration only moves forward.
func TestRaiseGenerationMonotone(t *testing.T) {
	r := NewReplicated(NewSharded(10, 4), 0)
	r.RaiseGeneration(5)
	if g := r.Generation(); g != 5 {
		t.Fatalf("generation = %d, want 5", g)
	}
	r.RaiseGeneration(3)
	if g := r.Generation(); g != 5 {
		t.Fatalf("generation regressed to %d", g)
	}
}

// TestReplicatedConcurrent hammers a leader with concurrent refinement
// while a follower streams snapshots and deltas off it (-race target);
// after a final drain the follower state must equal the leader's.
func TestReplicatedConcurrent(t *testing.T) {
	leader := NewReplicated(NewSharded(50, 8), 0)
	follower := NewReplicated(NewSharded(50, 8), 0)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			feed(leader, 300, seed)
		}(int64(w + 10))
	}

	// Concurrent reader: bootstrap mid-write, then stream deltas.
	wg.Add(1)
	var cursor uint64
	go func() {
		defer wg.Done()
		snap, seq, _ := leader.SnapshotState()
		follower.Absorb(snap)
		cursor = seq
		for i := 0; i < 50; i++ {
			ds, next, ok := leader.DeltasSince(cursor, 64)
			if !ok {
				snap, seq, _ := leader.SnapshotState()
				follower.Absorb(snap)
				cursor = seq
				continue
			}
			follower.Apply(ds)
			cursor = next
		}
	}()
	wg.Wait()

	// Writers are done: one final drain reaches the fixed point.
	for {
		ds, next, ok := leader.DeltasSince(cursor, 0)
		if !ok {
			t.Fatal("final cursor fell off the log")
		}
		if len(ds) == 0 {
			break
		}
		follower.Apply(ds)
		cursor = next
	}
	stateEqual(t, follower, leader)
}
