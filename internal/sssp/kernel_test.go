package sssp

import (
	"strings"
	"testing"

	"rkranks/internal/gen"
	"rkranks/internal/graph"
)

// kernelGraphs spans the shapes whose traversal the engines run: the
// loader edge cases (duplicates, self-loops, zero weights, isolated
// vertices) plus generated topologies.
func kernelGraphs(t testing.TB) map[string]*graph.Graph {
	t.Helper()
	gs := map[string]*graph.Graph{
		"dblp-like":     gen.DBLPLike(gen.DBLPLikeParams{Nodes: 300, AttachPerNode: 4, Seed: 1}),
		"epinions-like": gen.EpinionsLike(gen.EpinionsLikeParams{Nodes: 300, OutPerNode: 4, BackEdgeProb: 0.3, Seed: 2}),
		"sparse":        gen.GNM(200, 300, false, 3),
	}
	for name, text := range map[string]string{
		"edge-cases": `directed
nodes 6
0 0 1.0
0 1 0
1 0 2.0
1 2 1.0
2 3 0
3 1 0.5
`,
		"isolated": `undirected
nodes 5
0 1 1.0
`,
	} {
		g, err := graph.ReadText(strings.NewReader(text))
		if err != nil {
			t.Fatal(err)
		}
		gs[name] = g
	}
	return gs
}

// TestPackedKernelMatchesSlices runs full traversals over the packed CSR
// and the adjacency-slice kernels and asserts identical settle order,
// distances, and (for tree-tracking searches) parents and depths — the
// CSR port must answer exactly like the adjacency form on every loader
// edge case.
func TestPackedKernelMatchesSlices(t *testing.T) {
	for name, g := range kernelGraphs(t) {
		t.Run(name, func(t *testing.T) {
			packed, slice := New(g), New(g)
			slice.DisablePacked()
			for src := int32(0); int(src) < g.N(); src++ {
				for _, reverse := range []bool{false, true} {
					if reverse {
						packed.ResetReverse(src)
						slice.ResetReverse(src)
					} else {
						packed.Reset(src)
						slice.Reset(src)
					}
					for {
						pv, pd, pok := packed.Next()
						sv, sd, sok := slice.Next()
						if pok != sok || pv != sv || pd != sd {
							t.Fatalf("src=%d reverse=%v: packed (%d,%g,%v), slices (%d,%g,%v)",
								src, reverse, pv, pd, pok, sv, sd, sok)
						}
						if !pok {
							break
						}
						if packed.Parent(pv) != slice.Parent(pv) || packed.Depth(pv) != slice.Depth(pv) {
							t.Fatalf("src=%d reverse=%v node=%d: packed tree (%d,%d), slices (%d,%d)",
								src, reverse, pv, packed.Parent(pv), packed.Depth(pv), slice.Parent(pv), slice.Depth(pv))
						}
					}
				}
			}
		})
	}
}

// TestLiteKernelMatches drives the refinement kernel (NewLite +
// PopExpandBounded) against the tree-tracking search and asserts identical
// settle sequences under a distance bound, on both kernel variants.
func TestLiteKernelMatches(t *testing.T) {
	for name, g := range kernelGraphs(t) {
		t.Run(name, func(t *testing.T) {
			lite, full := NewLite(g), New(g)
			lites := NewLite(g)
			lites.DisablePacked()
			for src := int32(0); int(src) < g.N(); src++ {
				for _, bound := range []float64{0.5, 2.5, 1e18} {
					lite.Reset(src)
					full.Reset(src)
					lites.Reset(src)
					for {
						lv, ld, lok := lite.PopExpandBounded(bound)
						fv, fd, fok := full.PopExpandBounded(bound)
						sv, sd, sok := lites.PopExpandBounded(bound)
						if lok != fok || lv != fv || ld != fd || sok != fok || sv != fv || sd != fd {
							t.Fatalf("src=%d bound=%g: lite (%d,%g,%v), full (%d,%g,%v), lite-slices (%d,%g,%v)",
								src, bound, lv, ld, lok, fv, fd, fok, sv, sd, sok)
						}
						if !lok {
							break
						}
					}
				}
			}
		})
	}
}

// benchGraph is the kernel benchmark workload: large enough that the
// packed-vs-slice layout difference shows, small enough for -benchtime=100x
// CI runs.
func benchGraph() *graph.Graph {
	return gen.DBLPLike(gen.DBLPLikeParams{Nodes: 20000, AttachPerNode: 6, Seed: 42})
}

func runKernel(b *testing.B, s *Search, n int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Reset(int32(i % n))
		for {
			if _, _, ok := s.PopExpandBounded(1e18); !ok {
				break
			}
		}
	}
}

// BenchmarkKernelCSR / BenchmarkKernelAdjacency compare the packed and
// slice traversal kernels on identical full SSSP runs; CI pins GOGC=off
// and fixed iteration counts so the pair is comparable per-PR.
func BenchmarkKernelCSR(b *testing.B) {
	g := benchGraph()
	runKernel(b, New(g), g.N())
}

func BenchmarkKernelAdjacency(b *testing.B) {
	g := benchGraph()
	s := New(g)
	s.DisablePacked()
	runKernel(b, s, g.N())
}

// BenchmarkKernelCSRLite is the refinement configuration: packed arcs, no
// shortest-path-tree bookkeeping.
func BenchmarkKernelCSRLite(b *testing.B) {
	g := benchGraph()
	runKernel(b, NewLite(g), g.N())
}
