// Package sssp provides single-source shortest-path primitives (Dijkstra)
// over the graph substrate, designed for the access patterns of reverse
// k-ranks processing:
//
//   - incremental settle-order iteration (Pop/Expand), so callers can stop
//     early, skip subtree expansion, or interleave bookkeeping per settled
//     node — exactly what the SDS-tree framework needs;
//   - reverse-graph traversal for computing distances *to* a node;
//   - O(touched) per-query cost via epoch-reset workspaces.
//
// The expand loops iterate the graph's packed CSR view (graph.Packed): one
// interleaved Arc{target, weight} stream per node instead of two parallel
// slices, which halves the pointer traffic of the relaxation inner loop.
// Graphs too large for int32 CSR offsets fall back to the adjacency-slice
// path transparently.
//
// A Search is bound to one graph and reused across many runs; it is not
// safe for concurrent use (use one Search per goroutine).
package sssp

import (
	"math"

	"rkranks/internal/graph"
	"rkranks/internal/pqueue"
)

// Search is a reusable Dijkstra traversal over a fixed graph.
type Search struct {
	g       *graph.Graph
	q       *pqueue.Queue
	parent  []int32
	depth   []int32
	fwd     *graph.CSR // packed forward view, nil when the graph overflows int32 offsets
	rev     *graph.CSR // packed reverse view (aliases fwd for undirected graphs)
	cur     *graph.CSR // view for the current run's direction, nil on the slice path
	reverse bool
	lite    bool
	settled int
}

// New returns a Search over g.
func New(g *graph.Graph) *Search {
	n := g.N()
	fwd, rev := g.Packed()
	return &Search{
		g:      g,
		q:      pqueue.New(n),
		parent: make([]int32, n),
		depth:  make([]int32, n),
		fwd:    fwd,
		rev:    rev,
	}
}

// NewLite returns a Search that skips shortest-path-tree bookkeeping:
// Parent and Depth are unavailable (no per-settle parent/depth writes, no
// per-relaxation parent store), which makes it the cheapest traversal for
// callers that only consume settle order and distances — the rank
// refinement inner loop in particular.
func NewLite(g *graph.Graph) *Search {
	fwd, rev := g.Packed()
	return &Search{
		g:    g,
		q:    pqueue.New(g.N()),
		fwd:  fwd,
		rev:  rev,
		lite: true,
	}
}

// DisablePacked forces this Search onto the adjacency-slice path, as if the
// graph were too large to pack. It exists so tests and benchmarks can
// compare the two kernels; production callers never need it.
func (s *Search) DisablePacked() {
	s.fwd, s.rev, s.cur = nil, nil, nil
}

// Graph returns the graph this search traverses.
func (s *Search) Graph() *graph.Graph { return s.g }

// Reset prepares a forward traversal from src (distances d(src, v)).
func (s *Search) Reset(src int32) { s.reset(src, false) }

// ResetReverse prepares a traversal of the transpose graph from src, so the
// reported distances are d(v, src) in the original graph. For undirected
// graphs this is identical to Reset.
func (s *Search) ResetReverse(src int32) { s.reset(src, true) }

func (s *Search) reset(src int32, reverse bool) {
	s.q.Reset()
	s.reverse = reverse
	if reverse {
		s.cur = s.rev
	} else {
		s.cur = s.fwd
	}
	s.settled = 0
	s.q.Push(src, 0)
	if !s.lite {
		s.parent[src] = -1
	}
}

// Pop settles and returns the nearest unsettled node without relaxing its
// out-arcs. Call Expand to continue the search through it, or skip Expand to
// prune its (shortest-path tree) subtree. ok is false when the frontier is
// exhausted.
func (s *Search) Pop() (v int32, dist float64, ok bool) {
	if s.q.Len() == 0 {
		return -1, 0, false
	}
	v, dist = s.q.PopMin()
	s.settled++
	if !s.lite {
		if p := s.parent[v]; p >= 0 {
			s.depth[v] = s.depth[p] + 1
		} else {
			s.depth[v] = 0
		}
	}
	return v, dist, true
}

// Peek returns the node Pop would settle next, without settling it. ok is
// false when the frontier is exhausted. The speculative refinement
// coordinator uses this to test a pop against its lookahead safety bound
// before committing to it.
func (s *Search) Peek() (v int32, dist float64, ok bool) {
	return s.q.Min()
}

// PopExpandBounded fuses Pop with ExpandBounded for the rank-refinement
// inner loop, where every settled node is expanded immediately and the
// per-node cost of two exported calls is measurable. The returned node has
// already been expanded; a caller that decides to stop after inspecting it
// simply abandons the search (the one extra expansion is harmless — the
// queue is reset before reuse, and with maxDist set to the refinement
// cutoff most of its relaxations are dropped anyway).
func (s *Search) PopExpandBounded(maxDist float64) (v int32, dist float64, ok bool) {
	if s.q.Len() == 0 {
		return -1, 0, false
	}
	v, dist = s.q.PopMin()
	s.settled++
	if c := s.cur; c != nil && s.lite {
		// Hottest variant: packed arcs, no tree bookkeeping.
		for _, a := range c.Arcs(v) {
			nd := dist + a.W
			if nd > maxDist {
				continue
			}
			s.q.Push(a.To, nd)
		}
		return v, dist, true
	}
	if !s.lite {
		if p := s.parent[v]; p >= 0 {
			s.depth[v] = s.depth[p] + 1
		} else {
			s.depth[v] = 0
		}
	}
	s.ExpandBounded(v, dist, maxDist)
	return v, dist, true
}

// Expand relaxes the out-arcs of a node previously returned by Pop, where
// dist is the distance Pop reported for it.
func (s *Search) Expand(v int32, dist float64) {
	if c := s.cur; c != nil {
		if s.lite {
			for _, a := range c.Arcs(v) {
				s.q.Push(a.To, dist+a.W)
			}
			return
		}
		for _, a := range c.Arcs(v) {
			if s.q.Push(a.To, dist+a.W) {
				s.parent[a.To] = v
			}
		}
		return
	}
	var ts []int32
	var ws []float64
	if s.reverse {
		ts, ws = s.g.RNeighbors(v)
	} else {
		ts, ws = s.g.Neighbors(v)
	}
	if s.lite {
		for i, t := range ts {
			s.q.Push(t, dist+ws[i])
		}
		return
	}
	for i, t := range ts {
		if s.q.Push(t, dist+ws[i]) {
			s.parent[t] = v
		}
	}
}

// ExpandBounded relaxes the out-arcs of v but drops relaxations whose
// tentative distance exceeds maxDist. Rank refinement uses this with
// maxDist = d(p, q) (known from the SDS-tree): nodes farther than the
// refinement target can never settle before it, so their queue entries are
// pure overhead (Algorithm 2, line 13 of the paper). A dropped node is
// re-offered if a shorter path to it is found later, so settle order below
// maxDist is unaffected.
func (s *Search) ExpandBounded(v int32, dist, maxDist float64) {
	if c := s.cur; c != nil {
		if s.lite {
			for _, a := range c.Arcs(v) {
				nd := dist + a.W
				if nd > maxDist {
					continue
				}
				s.q.Push(a.To, nd)
			}
			return
		}
		for _, a := range c.Arcs(v) {
			nd := dist + a.W
			if nd > maxDist {
				continue
			}
			if s.q.Push(a.To, nd) {
				s.parent[a.To] = v
			}
		}
		return
	}
	var ts []int32
	var ws []float64
	if s.reverse {
		ts, ws = s.g.RNeighbors(v)
	} else {
		ts, ws = s.g.Neighbors(v)
	}
	if s.lite {
		for i, t := range ts {
			nd := dist + ws[i]
			if nd > maxDist {
				continue
			}
			s.q.Push(t, nd)
		}
		return
	}
	for i, t := range ts {
		nd := dist + ws[i]
		if nd > maxDist {
			continue
		}
		if s.q.Push(t, nd) {
			s.parent[t] = v
		}
	}
}

// Next settles the nearest unsettled node and relaxes its out-arcs
// (Pop followed by Expand).
func (s *Search) Next() (v int32, dist float64, ok bool) {
	v, dist, ok = s.Pop()
	if ok {
		s.Expand(v, dist)
	}
	return v, dist, ok
}

// Settled reports whether v has been settled in the current run. This is
// on the hot path of every refinement's settle-log application, so it is a
// single stamped-array read (pqueue.Popped) rather than Seen && !Contains.
func (s *Search) Settled(v int32) bool { return s.q.Popped(v) }

// Reached reports whether v has been touched (settled or queued).
func (s *Search) Reached(v int32) bool { return s.q.Seen(v) }

// SettledCount returns the number of nodes settled so far.
func (s *Search) SettledCount() int { return s.settled }

// Dist returns the distance of v: final if v is settled, tentative if
// queued. ok is false when v has not been reached.
func (s *Search) Dist(v int32) (float64, bool) {
	if !s.q.Seen(v) {
		return 0, false
	}
	return s.q.Priority(v), true
}

// Parent returns v's predecessor on its current shortest path, or -1 for
// the source. Only meaningful when Reached(v), and never for a NewLite
// search (lite searches do not track the shortest-path tree).
func (s *Search) Parent(v int32) int32 { return s.parent[v] }

// Depth returns v's hop depth in the shortest-path tree (source = 0). Only
// meaningful once v is settled, and never for a NewLite search.
func (s *Search) Depth(v int32) int32 { return s.depth[v] }

// Frontier returns the number of queued (not yet settled) nodes.
func (s *Search) Frontier() int { return s.q.Len() }

// Cutoff inflates a shortest-path distance by a relative epsilon for use as
// an ExpandBounded bound. Floating-point addition is not associative: a
// path summed source-to-target can round differently from the same path
// summed target-to-source, so a cutoff taken verbatim from a reverse-graph
// traversal can be one ulp short of the forward-summed distance and drop
// the final push to the target. Inflating the cutoff only admits a few
// extra frontier nodes; it never changes settle order below the bound.
func Cutoff(d float64) float64 { return d + d*1e-9 }

// Result is a settled node together with its shortest-path distance.
type Result struct {
	Node int32
	Dist float64
}

// Distance runs Dijkstra from src until dst settles and returns d(src, dst).
// ok is false when dst is unreachable.
func Distance(s *Search, src, dst int32) (float64, bool) {
	s.Reset(src)
	for {
		v, d, more := s.Next()
		if !more {
			return math.Inf(1), false
		}
		if v == dst {
			return d, true
		}
	}
}

// KNN returns the k nearest nodes to src (excluding src itself) in
// nondecreasing distance order, fewer if the reachable component is smaller.
// Ties are broken by node id (smaller first), consistently with the rest of
// the repository.
func KNN(s *Search, src int32, k int) []Result {
	s.Reset(src)
	out := make([]Result, 0, k)
	for len(out) < k {
		v, d, ok := s.Next()
		if !ok {
			break
		}
		if v == src {
			continue
		}
		out = append(out, Result{Node: v, Dist: d})
	}
	return out
}

// RankedResult is a settled node with its distance and tie-aware rank:
// Rank = 1 + |{p : d(src,p) < d(src,node)}|, per Definition 1 of the paper,
// so equidistant nodes share a rank.
type RankedResult struct {
	Node int32
	Dist float64
	Rank int32
}

// NearestWithRanks settles up to m nodes from src (excluding src) and
// returns them in settle order with tie-aware ranks. It is the
// precomputation primitive for the hub index (Section 5.2).
func NearestWithRanks(s *Search, src int32, m int) []RankedResult {
	s.Reset(src)
	out := make([]RankedResult, 0, m)
	strictBelow := 0
	level := math.Inf(-1)
	settledOthers := 0
	for len(out) < m {
		v, d, ok := s.Next()
		if !ok {
			break
		}
		if v == src {
			continue
		}
		if d > level {
			strictBelow = settledOthers
			level = d
		}
		settledOthers++
		out = append(out, RankedResult{Node: v, Dist: d, Rank: int32(strictBelow + 1)})
	}
	return out
}

// AllDistances runs a full SSSP from src and fills dist (length >= g.N())
// with d(src, v), using +Inf for unreachable nodes. It returns the number of
// reached nodes.
func AllDistances(s *Search, src int32, dist []float64) int {
	inf := math.Inf(1)
	for i := range dist[:s.g.N()] {
		dist[i] = inf
	}
	s.Reset(src)
	reached := 0
	for {
		v, d, ok := s.Next()
		if !ok {
			return reached
		}
		dist[v] = d
		reached++
	}
}
