package sssp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rkranks/internal/gen"
	"rkranks/internal/graph"
	tg "rkranks/internal/testgraphs"
)

// bellmanFord is the independent reference implementation.
func bellmanFord(g *graph.Graph, src int32, reverse bool) []float64 {
	n := g.N()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for u := int32(0); int(u) < n; u++ {
			if math.IsInf(dist[u], 1) {
				continue
			}
			var ts []int32
			var ws []float64
			if reverse {
				ts, ws = g.RNeighbors(u)
			} else {
				ts, ws = g.Neighbors(u)
			}
			for i, v := range ts {
				if nd := dist[u] + ws[i]; nd < dist[v] {
					dist[v] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

// TestDijkstraAgainstBellmanFord is the core SSSP property test across
// random directed and undirected graphs.
func TestDijkstraAgainstBellmanFord(t *testing.T) {
	check := func(seed int64, directed, reverse bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := gen.GNM(n, rng.Intn(4*n), directed, seed)
		s := New(g)
		src := int32(rng.Intn(n))
		want := bellmanFord(g, src, reverse)
		dist := make([]float64, n)
		if reverse {
			// AllDistances is forward-only; drive the search manually.
			for i := range dist {
				dist[i] = math.Inf(1)
			}
			s.ResetReverse(src)
			for {
				v, d, ok := s.Next()
				if !ok {
					break
				}
				dist[v] = d
			}
		} else {
			AllDistances(s, src, dist)
		}
		for v := 0; v < n; v++ {
			a, b := dist[v], want[v]
			if math.IsInf(a, 1) != math.IsInf(b, 1) {
				t.Logf("seed=%d v=%d reachability: %g vs %g", seed, v, a, b)
				return false
			}
			if !math.IsInf(a, 1) && math.Abs(a-b) > 1e-9 {
				t.Logf("seed=%d v=%d: %g vs %g", seed, v, a, b)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	for _, directed := range []bool{false, true} {
		for _, reverse := range []bool{false, true} {
			directed, reverse := directed, reverse
			if err := quick.Check(func(seed int64) bool { return check(seed, directed, reverse) }, cfg); err != nil {
				t.Errorf("directed=%v reverse=%v: %v", directed, reverse, err)
			}
		}
	}
}

func TestSettleOrderNondecreasing(t *testing.T) {
	g := gen.GNM(80, 300, false, 3)
	s := New(g)
	s.Reset(0)
	last := -1.0
	for {
		_, d, ok := s.Next()
		if !ok {
			break
		}
		if d < last {
			t.Fatalf("settle order decreased: %g after %g", d, last)
		}
		last = d
	}
}

func TestParentsFormShortestPathTree(t *testing.T) {
	g := gen.GNM(50, 200, false, 9)
	s := New(g)
	dist := make([]float64, g.N())
	AllDistances(s, 7, dist)
	for v := int32(0); int(v) < g.N(); v++ {
		if !s.Settled(v) || v == 7 {
			continue
		}
		p := s.Parent(v)
		if p < 0 {
			t.Fatalf("settled node %d has no parent", v)
		}
		// The parent edge must certify the distance.
		ts, ws := g.Neighbors(p)
		ok := false
		for i, u := range ts {
			if u == v && math.Abs(dist[p]+ws[i]-dist[v]) < 1e-9 {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("parent edge %d->%d does not certify dist", p, v)
		}
		if s.Depth(v) != s.Depth(p)+1 {
			t.Errorf("depth(%d)=%d, parent depth %d", v, s.Depth(v), s.Depth(p))
		}
	}
}

func TestPopWithoutExpandPrunes(t *testing.T) {
	// Path 0-1-2-3: popping 1 without expanding must leave 2,3 unreached.
	g := tg.Path(4)
	s := New(g)
	s.Reset(0)
	v, d, ok := s.Pop()
	if !ok || v != 0 {
		t.Fatalf("first pop = %d", v)
	}
	s.Expand(v, d)
	v, _, _ = s.Pop() // node 1, not expanded
	if v != 1 {
		t.Fatalf("second pop = %d", v)
	}
	if _, _, ok := s.Pop(); ok {
		t.Error("pruned subtree still reachable")
	}
	if s.Reached(2) || s.Reached(3) {
		t.Error("pruned nodes were reached")
	}
}

func TestExpandBoundedDropsFar(t *testing.T) {
	g := tg.Path(5)
	s := New(g)
	s.Reset(0)
	v, d, _ := s.Pop()
	s.ExpandBounded(v, d, 0.5) // all edges weigh 1 -> nothing enqueued
	if s.Frontier() != 0 {
		t.Error("bounded expand enqueued beyond the bound")
	}
	if _, _, ok := s.Pop(); ok {
		t.Error("unexpected frontier")
	}
}

func TestExpandBoundedReofferViaShorterPath(t *testing.T) {
	// Triangle: 0-2 weighs 3 (dropped by bound 2.5), 0-1-2 weighs 2.
	b := graph.NewBuilder(false)
	b.EnsureNodes(3)
	b.MustAddEdge(0, 2, 3)
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(1, 2, 1)
	g := b.Finalize()
	s := New(g)
	s.Reset(0)
	for {
		v, d, ok := s.Pop()
		if !ok {
			break
		}
		s.ExpandBounded(v, d, 2.5)
		if v == 2 && d != 2 {
			t.Errorf("node 2 settled at %g, want 2", d)
		}
	}
	if !s.Settled(2) {
		t.Error("node 2 never settled despite path below bound")
	}
}

func TestDistance(t *testing.T) {
	g := tg.Toy()
	s := New(g)
	d, ok := Distance(s, tg.Alice, tg.George)
	if !ok || math.Abs(d-2.3) > 1e-9 {
		t.Errorf("d(Alice,George) = %g, %v; want 2.3", d, ok)
	}
	disc := tg.Path(3)
	b := graph.NewBuilder(false)
	b.EnsureNodes(4)
	b.MustAddEdge(0, 1, 1)
	// node 2,3 disconnected
	disc = b.Finalize()
	s2 := New(disc)
	if _, ok := Distance(s2, 0, 3); ok {
		t.Error("unreachable node reported reachable")
	}
}

func TestKNNOnToy(t *testing.T) {
	g := tg.Toy()
	s := New(g)
	res := KNN(s, tg.Alice, 3)
	want := []int32{tg.Bob, tg.Eric, tg.Caroline}
	if len(res) != 3 {
		t.Fatalf("len = %d", len(res))
	}
	for i, w := range want {
		if res[i].Node != w {
			t.Errorf("knn[%d] = %d, want %d", i, res[i].Node, w)
		}
	}
	// Larger k than the component: capped.
	res = KNN(s, tg.Alice, 100)
	if len(res) != 6 {
		t.Errorf("capped knn len = %d, want 6", len(res))
	}
}

func TestNearestWithRanksTies(t *testing.T) {
	// Star with tied spokes: 1,2,3 at distance 1, node 4 at distance 2.
	g := tg.Star([]float64{1, 1, 1, 2})
	s := New(g)
	res := NearestWithRanks(s, 0, 4)
	if len(res) != 4 {
		t.Fatalf("len = %d", len(res))
	}
	for i := 0; i < 3; i++ {
		if res[i].Rank != 1 {
			t.Errorf("tied spoke rank = %d, want 1", res[i].Rank)
		}
	}
	if res[3].Rank != 4 {
		t.Errorf("far spoke rank = %d, want 4", res[3].Rank)
	}
}

func TestNearestWithRanksExhausts(t *testing.T) {
	g := tg.Path(3)
	s := New(g)
	res := NearestWithRanks(s, 0, 99)
	if len(res) != 2 {
		t.Fatalf("len = %d, want 2", len(res))
	}
}

func TestCutoffMonotone(t *testing.T) {
	for _, d := range []float64{0, 1e-12, 1, 12345.678, math.Inf(1)} {
		c := Cutoff(d)
		if c < d {
			t.Errorf("Cutoff(%g) = %g < input", d, c)
		}
	}
	if Cutoff(0) != 0 {
		t.Error("Cutoff(0) != 0")
	}
}

func TestReverseOnDirectedCycle(t *testing.T) {
	g := tg.Cycle(4) // 0->1->2->3->0
	s := New(g)
	s.ResetReverse(0)
	// Distances TO node 0: d(3,0)=1, d(2,0)=2, d(1,0)=3.
	want := map[int32]float64{0: 0, 3: 1, 2: 2, 1: 3}
	for {
		v, d, ok := s.Next()
		if !ok {
			break
		}
		if want[v] != d {
			t.Errorf("d(%d -> 0) = %g, want %g", v, d, want[v])
		}
	}
}

// TestPopExpandBoundedMatchesSplitCalls: the fused call must settle the
// exact same (node, dist) sequence as Pop followed by ExpandBounded, for
// any bound, on forward and reverse traversals.
func TestPopExpandBoundedMatchesSplitCalls(t *testing.T) {
	for _, directed := range []bool{false, true} {
		g := gen.GNM(120, 500, directed, 61)
		a, b := New(g), New(g)
		for _, src := range []int32{0, 7, 63} {
			for _, maxDist := range []float64{math.Inf(1), 3.5, 0.9} {
				a.Reset(src)
				b.Reset(src)
				for {
					v1, d1, ok1 := a.PopExpandBounded(maxDist)
					v2, d2, ok2 := b.Pop()
					if ok2 {
						b.ExpandBounded(v2, d2, maxDist)
					}
					if ok1 != ok2 || v1 != v2 || d1 != d2 {
						t.Fatalf("directed=%v src=%d max=%g: fused (%d,%g,%v) vs split (%d,%g,%v)",
							directed, src, maxDist, v1, d1, ok1, v2, d2, ok2)
					}
					if !ok1 {
						break
					}
					if a.Settled(v1) != b.Settled(v1) || a.Depth(v1) != b.Depth(v1) || a.Parent(v1) != b.Parent(v1) {
						t.Fatalf("bookkeeping diverged at node %d", v1)
					}
				}
			}
		}
	}
}

// TestPeek: Peek must preview the next Pop without consuming it.
func TestPeekPreviewsPop(t *testing.T) {
	g := gen.GNM(60, 200, false, 62)
	s := New(g)
	s.Reset(3)
	for {
		pv, pd, pok := s.Peek()
		v, d, ok := s.Pop()
		if pok != ok || pv != v || pd != d {
			t.Fatalf("Peek (%d,%g,%v) disagrees with Pop (%d,%g,%v)", pv, pd, pok, v, d, ok)
		}
		if !ok {
			break
		}
		s.Expand(v, d)
	}
}
