package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"rkranks/internal/graph"
	"rkranks/internal/obs"
)

// Client is the typed HTTP client for the v1 wire protocol: rkserve and
// rkcluster instances, query/batch/mutate/statsz. It is promoted to the
// public surface as rkranks.Client; the rkbench load generator, the
// serving_http experiment, the cluster coordinator's remote shards, and
// the smoke tests all speak through it instead of hand-rolling requests.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for a server at base (e.g.
// "http://127.0.0.1:8080"). The underlying http.Client reuses
// connections; one Client is safe for concurrent use.
func NewClient(base string) *Client {
	return &Client{
		base: base,
		hc: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        512,
				MaxIdleConnsPerHost: 512,
				IdleConnTimeout:     30 * time.Second,
			},
		},
	}
}

// StatusError reports a non-2xx response, carrying the wire error code so
// callers can branch (e.g. count 429s separately under load).
type StatusError struct {
	Status int
	Code   string
	Msg    string
	// RetryAfter is the parsed Retry-After header of a 429/503 response
	// (zero when absent). A cluster coordinator propagates the maximum
	// across overloaded shards instead of inventing its own estimate.
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("api: HTTP %d (%s): %s", e.Status, e.Code, e.Msg)
}

// Health fetches /healthz. It returns the decoded document even for a 503
// (draining) response, with the StatusError alongside.
func (c *Client) Health(ctx context.Context) (map[string]any, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("api: bad /healthz body: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		status, _ := doc["status"].(string)
		return doc, &StatusError{Status: resp.StatusCode, Code: status, Msg: "unhealthy"}
	}
	return doc, nil
}

// Stats fetches /statsz.
func (c *Client) Stats(ctx context.Context) (*Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/statsz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, &StatusError{Status: resp.StatusCode, Code: CodeInternal, Msg: "statsz failed"}
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("api: bad /statsz body: %w", err)
	}
	return &snap, nil
}

// Query posts one reverse k-ranks query. algorithm may be empty (server
// default); timeout 0 uses the server default deadline.
func (c *Client) Query(ctx context.Context, algorithm Algorithm, q int32, k int, timeout time.Duration) (*QueryResponse, error) {
	body := QueryRequest{Algorithm: algorithm, Q: q, K: k, TimeoutMS: timeout.Milliseconds()}
	var resp QueryResponse
	if err := c.post(ctx, "/v1/query", body, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Batch posts a multi-query request backed by Pool.QueryMany.
func (c *Client) Batch(ctx context.Context, algorithm Algorithm, queries []int32, k int, timeout time.Duration) (*BatchResponse, error) {
	body := BatchRequest{Algorithm: algorithm, Queries: queries, K: k, TimeoutMS: timeout.Milliseconds()}
	var resp BatchResponse
	if err := c.post(ctx, "/v1/batch", body, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Mutate posts one atomic mutation batch to /v1/mutate. When it returns
// without error the batch is fully applied: the response carries the new
// graph generation and subsequent queries observe the mutated graph.
func (c *Client) Mutate(ctx context.Context, ms []graph.Mutation, timeout time.Duration) (*MutateResponse, error) {
	body := MutateRequest{Mutations: make([]Mutation, len(ms)), TimeoutMS: timeout.Milliseconds()}
	for i, m := range ms {
		body.Mutations[i] = MutationOf(m)
	}
	var resp MutateResponse
	if err := c.post(ctx, "/v1/mutate", body, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (c *Client) post(ctx context.Context, path string, body, dst any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	// Propagate the caller's request ID so a cluster coordinator's trace
	// stitches across its shard servers: the shard adopts the inbound ID
	// instead of generating its own, and both access logs share one key.
	if rid := obs.RequestIDFromContext(ctx); rid != "" {
		req.Header.Set("X-Request-Id", rid)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		var e ErrorBody
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			e = ErrorBody{Code: CodeInternal, Message: "unreadable error body"}
		}
		se := &StatusError{Status: resp.StatusCode, Code: e.Code, Msg: e.Message}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			se.RetryAfter = time.Duration(secs) * time.Second
		} else if e.RetryAfterSec > 0 {
			se.RetryAfter = time.Duration(e.RetryAfterSec) * time.Second
		}
		return se
	}
	return json.NewDecoder(resp.Body).Decode(dst)
}

// drainClose empties and closes a response body so the transport can
// reuse the connection.
func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, body)
	_ = body.Close()
}
