package api

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"rkranks/internal/ridx"
)

// Index replication wire surface: a leader serves its dynamic index as
// a binary snapshot plus a JSON stream of refinement deltas, and
// followers inherit the learned state instead of re-deriving it. The
// types here are the single definition shared by the server handlers,
// the typed client, and the cluster's follower loop — no hand-rolled
// HTTP anywhere.

// Headers carried by /v1/index/snapshot responses. Values are base-10
// uint64. Like JSON field names, header names are wire protocol: add,
// never rename.
const (
	// HeaderIndexSeq is the delta cursor a follower should resume from
	// after absorbing the snapshot body.
	HeaderIndexSeq = "X-Index-Seq"
	// HeaderIndexGeneration is the leader's index generation at snapshot
	// time.
	HeaderIndexGeneration = "X-Index-Generation"
)

// IndexDelta operation names (IndexDelta.Op).
const (
	// DeltaOpOffer records Rank(U, V) = R in node V's reverse-rank list.
	DeltaOpOffer = "offer"
	// DeltaOpCheck raises node U's Check Dictionary bound to R.
	DeltaOpCheck = "check"
)

// IndexDelta is one replayable dictionary update (see ridx.Delta, which
// it mirrors field for field).
type IndexDelta struct {
	Op string `json:"op"`
	V  int32  `json:"v,omitempty"`
	U  int32  `json:"u"`
	R  int32  `json:"r"`
}

// DeltasOf converts logged index deltas to their wire form (the
// replication analogue of MutationOf).
func DeltasOf(ds []ridx.Delta) []IndexDelta {
	out := make([]IndexDelta, len(ds))
	for i, d := range ds {
		switch d.Op {
		case ridx.DeltaOffer:
			out[i] = IndexDelta{Op: DeltaOpOffer, V: d.V, U: d.U, R: d.R}
		case ridx.DeltaCheck:
			out[i] = IndexDelta{Op: DeltaOpCheck, U: d.U, R: d.R}
		}
	}
	return out
}

// DecodeDeltas converts wire deltas back to replayable form (the
// replication analogue of DecodeMutations).
func DecodeDeltas(ds []IndexDelta) ([]ridx.Delta, error) {
	out := make([]ridx.Delta, len(ds))
	for i, d := range ds {
		switch d.Op {
		case DeltaOpOffer:
			out[i] = ridx.Delta{Op: ridx.DeltaOffer, V: d.V, U: d.U, R: d.R}
		case DeltaOpCheck:
			out[i] = ridx.Delta{Op: ridx.DeltaCheck, U: d.U, R: d.R}
		default:
			return nil, fmt.Errorf("api: delta %d: unknown op %q", i, d.Op)
		}
	}
	return out, nil
}

// IndexDeltasResponse is the GET /v1/index/deltas?since=N document.
type IndexDeltasResponse struct {
	// Since echoes the request cursor; Next is the cursor for the next
	// poll. Next == Since means the follower is caught up.
	Since uint64 `json:"since"`
	Next  uint64 `json:"next"`
	// IndexGeneration is the leader's index generation. A follower that
	// sees it change must treat its local state as orphaned and re-sync
	// from a snapshot.
	IndexGeneration uint64 `json:"index_generation"`
	// SnapshotRequired reports that the leader's log no longer reaches
	// back to Since (truncation or invalidation): Deltas is empty and
	// the follower must re-fetch /v1/index/snapshot.
	SnapshotRequired bool         `json:"snapshot_required,omitempty"`
	Deltas           []IndexDelta `json:"deltas,omitempty"`
	RequestID        string       `json:"request_id,omitempty"`
}

// ReplicationSnapshot is the /statsz "replication" section, present when
// the backend serves a replicated index. On a leader the loaded/applied
// counters stay 0; on a follower they record progress against its
// leader. The CI smoke test asserts the index_snapshot_* counters after
// restarting a replica.
type ReplicationSnapshot struct {
	IndexSeq             uint64 `json:"index_seq"`
	IndexGeneration      uint64 `json:"index_generation"`
	IndexSnapshotsServed int64  `json:"index_snapshots_served"`
	IndexDeltasServed    int64  `json:"index_deltas_served"`
	IndexSnapshotsLoaded int64  `json:"index_snapshots_loaded"`
	IndexDeltasApplied   int64  `json:"index_deltas_applied"`
}

// IndexSnapshot fetches the leader's index snapshot. The returned body
// streams the shared ridx on-disk format (parse with ridx.ReadSharded);
// the caller must close it. seq is the delta cursor to resume from and
// gen the leader's index generation at snapshot time.
func (c *Client) IndexSnapshot(ctx context.Context) (body io.ReadCloser, seq, gen uint64, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/index/snapshot", nil)
	if err != nil {
		return nil, 0, 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, 0, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		defer drainClose(resp.Body)
		var e ErrorBody
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			e = ErrorBody{Code: CodeInternal, Message: "unreadable error body"}
		}
		return nil, 0, 0, &StatusError{Status: resp.StatusCode, Code: e.Code, Msg: e.Message}
	}
	seq, err = parseUintHeader(resp, HeaderIndexSeq)
	if err == nil {
		gen, err = parseUintHeader(resp, HeaderIndexGeneration)
	}
	if err != nil {
		drainClose(resp.Body)
		return nil, 0, 0, err
	}
	return resp.Body, seq, gen, nil
}

// IndexDeltas fetches up to max deltas from cursor since (max <= 0
// leaves the batch size to the server).
func (c *Client) IndexDeltas(ctx context.Context, since uint64, max int) (*IndexDeltasResponse, error) {
	url := fmt.Sprintf("%s/v1/index/deltas?since=%d", c.base, since)
	if max > 0 {
		url += fmt.Sprintf("&max=%d", max)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		var e ErrorBody
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			e = ErrorBody{Code: CodeInternal, Message: "unreadable error body"}
		}
		return nil, &StatusError{Status: resp.StatusCode, Code: e.Code, Msg: e.Message}
	}
	var out IndexDeltasResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("api: bad /v1/index/deltas body: %w", err)
	}
	return &out, nil
}

func parseUintHeader(resp *http.Response, name string) (uint64, error) {
	v, err := strconv.ParseUint(resp.Header.Get(name), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("api: bad %s header %q", name, resp.Header.Get(name))
	}
	return v, nil
}
