package api

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Topology is the declarative cluster layout consumed by rkcluster's
// -topology flag (and promoted to the public surface as
// rkranks.Topology). It replaces the positional -shards/-backends flag
// spec: one JSON document names every shard group with its replica set,
// plus the coordinator-level options that used to be scattered across
// flags. Zero values mean the documented defaults throughout, matching
// the options convention of the rest of the surface.
//
// Remote form — each entry of Shards is one shard group; replicas are
// rkserve base URLs all serving the same shard mask (shard i of
// len(Shards)):
//
//	{
//	  "shards": [
//	    {"replicas": ["http://10.0.0.1:8081", "http://10.0.0.2:8081"]},
//	    {"replicas": ["http://10.0.0.3:8081", "http://10.0.0.4:8081"]}
//	  ]
//	}
//
// Local form — in-process shards, mainly for development and tests:
//
//	{"local": {"shards": 2, "replicas": 2, "live": true}}
type Topology struct {
	// Partitioner names the vertex partitioner every shard must agree
	// on: "modulo" (default) or "degree".
	Partitioner string `json:"partitioner,omitempty"`
	// StrictConsistency refuses degraded (Partial) answers when a shard
	// group is unavailable, failing the query instead.
	StrictConsistency bool `json:"strict_consistency,omitempty"`
	// FirstRoundK overrides the reduced per-shard k of scatter round
	// one (0 = adaptive default).
	FirstRoundK int `json:"first_round_k,omitempty"`
	// CacheMB adds a coordinator-level response cache of this budget
	// (0 = no cache).
	CacheMB int `json:"cache_mb,omitempty"`

	// Exactly one of Local / Shards describes the shard layout; both
	// empty means one local unreplicated shard.
	Local  *LocalTopology  `json:"local,omitempty"`
	Shards []TopologyShard `json:"shards,omitempty"`
}

// TopologyShard is one remote shard group: the replica set serving that
// shard's mask.
type TopologyShard struct {
	Replicas []string `json:"replicas"`
}

// LocalTopology describes in-process shards.
type LocalTopology struct {
	Shards   int  `json:"shards,omitempty"`    // shard groups (0 = 1)
	Replicas int  `json:"replicas,omitempty"`  // replicas per group (0 = 1)
	Live     bool `json:"live,omitempty"`      // mutable shards (/v1/mutate)
	PoolSize int  `json:"pool_size,omitempty"` // engines per shard (0 = derived default)
}

// ReplicaCount reports the configured replicas per shard group, with
// zero defaulted.
func (l *LocalTopology) ReplicaCount() int {
	if l == nil || l.Replicas < 1 {
		return 1
	}
	return l.Replicas
}

// ShardCount reports the configured shard groups, with zero defaulted.
func (l *LocalTopology) ShardCount() int {
	if l == nil || l.Shards < 1 {
		return 1
	}
	return l.Shards
}

// Validate checks the topology's internal consistency. It returns plain
// errors; rkranks.ValidateTopology wraps them in ErrInvalidOptions.
func (t *Topology) Validate() error {
	if t == nil {
		return fmt.Errorf("api: nil topology")
	}
	switch t.Partitioner {
	case "", "modulo", "degree":
	default:
		return fmt.Errorf("api: unknown partitioner %q (want modulo or degree)", t.Partitioner)
	}
	if t.FirstRoundK < 0 {
		return fmt.Errorf("api: first_round_k must be >= 0, got %d", t.FirstRoundK)
	}
	if t.CacheMB < 0 {
		return fmt.Errorf("api: cache_mb must be >= 0, got %d", t.CacheMB)
	}
	if t.Local != nil && len(t.Shards) > 0 {
		return fmt.Errorf("api: topology must not set both local and shards")
	}
	if t.Local != nil {
		if t.Local.Shards < 0 || t.Local.Replicas < 0 || t.Local.PoolSize < 0 {
			return fmt.Errorf("api: local shard/replica/pool counts must be >= 0")
		}
	}
	for i, s := range t.Shards {
		if len(s.Replicas) == 0 {
			return fmt.Errorf("api: shard %d has no replicas", i)
		}
		for j, u := range s.Replicas {
			if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
				return fmt.Errorf("api: shard %d replica %d: %q is not an http(s) URL", i, j, u)
			}
		}
	}
	return nil
}

// ReadTopology decodes and validates a topology document. Unknown
// fields are rejected so a typoed option fails loudly instead of
// silently meaning its default.
func ReadTopology(r io.Reader) (*Topology, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var t Topology
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("api: bad topology document: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}
