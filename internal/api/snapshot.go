package api

import "rkranks/internal/core"

// Snapshot is the /statsz document. Field names are part of the wire
// protocol: add, never rename.
type Snapshot struct {
	UptimeSec float64 `json:"uptime_sec"`

	RequestsTotal int64            `json:"requests_total"`
	StatusClasses map[string]int64 `json:"status_classes"`
	SheddedTotal  int64            `json:"shedded_total"`

	QPS10s float64 `json:"qps_10s"`
	QPS60s float64 `json:"qps_60s"`

	// Latency is the query-route window (kept under its historic name so
	// existing dashboards read the same series); LatencyByRoute splits the
	// windows per route class ("query", "batch", "mutate", "other") so a
	// burst of slow mutations can no longer skew the query percentiles.
	Latency        LatencySnapshot            `json:"latency_ms"`
	LatencyByRoute map[string]LatencySnapshot `json:"latency_ms_by_route,omitempty"`

	PoolSize int  `json:"pool_size"`
	InFlight int  `json:"in_flight"`
	Queued   int  `json:"queued"`
	Draining bool `json:"draining"`

	// QueryStats sums the engine work counters (refinements, index hits,
	// seeded entries, ...) over every request that reached the pool —
	// the serving-level view of how much the shared index is paying off.
	QueryStats   core.Stats `json:"query_stats"`
	QueriesOK    int64      `json:"queries_ok"`
	IndexHitRate float64    `json:"index_hit_rate"`

	// BatchSharedTraversals mirrors QueryStats' counter of refinements the
	// batch executor resolved by settle-log replay instead of a fresh
	// search, and TraversalReuseRatio is its share of all refinements — the
	// serving-level view of how much shared-traversal batching is paying
	// off (0 on a workload of standalone queries).
	BatchSharedTraversals int64   `json:"batch_shared_traversals"`
	TraversalReuseRatio   float64 `json:"traversal_reuse_ratio"`

	// CSRBytes is the memory footprint of the packed CSR graph views the
	// backend's engines traverse (probed through decorator Unwrap chains;
	// the server's own graph answers when the backend doesn't). 0 until a
	// query has forced the views to build.
	CSRBytes int64 `json:"csr_bytes"`

	// HubLabelBytes is the memory footprint of the hub labeling the
	// backend's engines answer HubLabel queries from (probed like CSRBytes;
	// for a cluster, the sum over local shards). 0 without a labeling.
	HubLabelBytes int64 `json:"hub_label_bytes"`

	// LabelFallbackRate is the share of HubLabel candidate decisions the
	// labeling could NOT certify, forcing a CSR Dijkstra refinement:
	// LabelFallbacks / (LabelFallbacks + LabelPruned) over QueryStats.
	// Low is good — it measures how much of the rank work the precomputed
	// labels absorb. 0 when no HubLabel queries ran.
	LabelFallbackRate float64 `json:"label_fallback_rate"`

	// Generation is the backend's graph/answer-set generation: 0 forever
	// on immutable backends, bumped once per applied mutation batch on
	// live ones. The CI smoke test asserts the bump after /v1/mutate.
	Generation uint64 `json:"generation"`

	// Mutations is the live-mutation section — applied batch/op counters,
	// patch-vs-rebuild split, relabel progress — present only when the
	// backend serves /v1/mutate (see live.Snapshot for the schema). Typed
	// any to keep the wire package free of a live dependency; clients
	// decode it as a generic document.
	Mutations any `json:"mutations,omitempty"`

	// Cluster is the coordinator section — per-shard occupancy, health,
	// and the scatter-gather latency breakdown — present only when the
	// backend is a cluster (see cluster.Snapshot for the schema). Typed
	// any to keep the server free of a cluster dependency; clients decode
	// it as a generic document.
	Cluster any `json:"cluster,omitempty"`

	// Cache is the response-cache section — hit/coalesce/eviction
	// counters and byte occupancy — present only when the backend is
	// wrapped in a cache decorator (see cache.Snapshot for the schema).
	Cache any `json:"cache,omitempty"`

	// Replication is the index-replication section — delta cursor,
	// index generation, snapshot/delta traffic counters — present only
	// when the backend serves a replicated index (see
	// ReplicationSnapshot for the schema).
	Replication *ReplicationSnapshot `json:"replication,omitempty"`
}

// LatencySnapshot reports percentiles over the recent-latency window, in
// milliseconds.
type LatencySnapshot struct {
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
	Mean   float64 `json:"mean"`
	Window int     `json:"window"`
}
