// Package api defines the versioned wire protocol of the serving layer —
// the one place the request/response documents, the error envelope, and
// the error codes live. internal/server implements the endpoints,
// internal/cluster speaks it to remote shards, and Client (client.go) is
// the typed HTTP client; all three share these definitions so the wire
// surface cannot drift apart per package.
//
// Endpoints:
//
//	POST /v1/query   QueryRequest  -> QueryResponse
//	POST /v1/batch   BatchRequest  -> BatchResponse
//	POST /v1/mutate  MutateRequest -> MutateResponse
//	GET  /healthz    (ad-hoc document; see server)
//	GET  /statsz     Snapshot
//
// Every non-2xx response carries the one error envelope:
//
//	{"code": "overloaded", "message": "...", "retry_after": 10}
//
// Field names are part of the wire protocol: add, never rename.
package api

import (
	"fmt"

	"rkranks/internal/core"
	"rkranks/internal/graph"
)

// Algorithm is the wire form of a query engine name. Typed so decode-time
// validation rejects unknown names at the API boundary instead of deep in
// the pool.
type Algorithm string

// Wire algorithm names, matching core.Algorithm.String.
const (
	AlgoNaive    Algorithm = "naive"
	AlgoStatic   Algorithm = "static"
	AlgoDynamic  Algorithm = "dynamic"
	AlgoIndexed  Algorithm = "indexed"
	AlgoHubLabel Algorithm = "hublabel"
)

// Core resolves the wire name to the engine constant. The empty string
// resolves to fallback (the server's default algorithm).
func (a Algorithm) Core(fallback core.Algorithm) (core.Algorithm, error) {
	if a == "" {
		return fallback, nil
	}
	return core.ParseAlgorithm(string(a))
}

// AlgorithmOf returns the wire name of an engine constant.
func AlgorithmOf(a core.Algorithm) Algorithm { return Algorithm(a.String()) }

// Error codes of the wire protocol, stable for clients to branch on.
const (
	CodeInvalidArgument  = "invalid_argument"
	CodeOverloaded       = "overloaded"
	CodeDraining         = "draining"
	CodeDeadlineExceeded = "deadline_exceeded"
	CodeCanceled         = "canceled"
	CodeInternal         = "internal"
	// CodeUnimplemented marks an endpoint the backend cannot serve (e.g.
	// /v1/mutate against an immutable backend).
	CodeUnimplemented = "unimplemented"
	// CodeGenerationSkew marks a cluster answer refused because shards
	// were observed on different graph generations mid-mutation; the
	// request is safe to retry.
	CodeGenerationSkew = "generation_skew"
)

// ErrorBody is the error envelope every non-2xx response carries.
type ErrorBody struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
	// RetryAfterSec mirrors the Retry-After header on 429/503 responses
	// (0 when the response carries no hint).
	RetryAfterSec int `json:"retry_after,omitempty"`
	// RequestID echoes the request's X-Request-Id (server-generated when
	// the request carried none), so an error — a 503 generation_skew, a
	// shed 429 — correlates with its access-log line and trace.
	RequestID string `json:"request_id,omitempty"`
}

// QueryRequest is the /v1/query request document.
type QueryRequest struct {
	// Algorithm is naive|static|dynamic|indexed|hublabel; empty uses the
	// server default.
	Algorithm Algorithm `json:"algorithm,omitempty"`
	Q         int32     `json:"q"`
	K         int       `json:"k"`
	// TimeoutMS is the per-request deadline in milliseconds; 0 uses the
	// server default, values above the server cap are clamped.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// BatchRequest is the /v1/batch request document.
type BatchRequest struct {
	Algorithm Algorithm `json:"algorithm,omitempty"`
	Queries   []int32   `json:"queries"`
	K         int       `json:"k"`
	TimeoutMS int64     `json:"timeout_ms,omitempty"`
}

// Entry is one (node, rank) result pair on the wire.
type Entry struct {
	Node int32 `json:"node"`
	Rank int32 `json:"rank"`
}

// QueryResponse is the /v1/query response document (and each element of a
// batch response).
type QueryResponse struct {
	Query     int32     `json:"query"`
	K         int       `json:"k"`
	Algorithm Algorithm `json:"algorithm"`
	Entries   []Entry   `json:"entries"`
	// Partial marks a degraded cluster answer: one or more shards were
	// unavailable, so entries owned by them may be missing. Single-node
	// servers never set it.
	Partial bool `json:"partial,omitempty"`
	// Generation is the graph generation the answer was computed on
	// (0 for backends without live mutations). A cluster coordinator
	// verifies it across shards so a merge never mixes generations.
	Generation uint64      `json:"generation,omitempty"`
	ElapsedMS  float64     `json:"elapsed_ms"`
	Stats      *core.Stats `json:"stats,omitempty"`
	// RequestID echoes the request's X-Request-Id (server-generated when
	// the request carried none). Empty on batch elements — the enclosing
	// BatchResponse carries the batch's ID once.
	RequestID string `json:"request_id,omitempty"`
}

// BatchResponse is the /v1/batch response document.
type BatchResponse struct {
	Algorithm Algorithm       `json:"algorithm"`
	K         int             `json:"k"`
	Results   []QueryResponse `json:"results"`
	ElapsedMS float64         `json:"elapsed_ms"`
	RequestID string          `json:"request_id,omitempty"`
}

// Mutation op names on the wire, matching graph.MutationOp.String.
const (
	OpInsertEdge = "insert_edge"
	OpDeleteEdge = "delete_edge"
	OpSetWeight  = "set_weight"
	OpAddVertex  = "add_vertex"
)

// Mutation is one live-graph update on the wire.
type Mutation struct {
	// Op is insert_edge|delete_edge|set_weight|add_vertex.
	Op string `json:"op"`
	U  int32  `json:"u,omitempty"`
	V  int32  `json:"v,omitempty"`
	// Weight applies to insert_edge and set_weight.
	Weight float64 `json:"weight,omitempty"`
	// Count is how many vertices add_vertex appends (0 means 1).
	Count int `json:"count,omitempty"`
}

// Graph decodes the wire mutation into the typed graph mutation,
// validating the op name (endpoint-range and weight validation happen in
// the edge store, where the graph is known).
func (m Mutation) Graph() (graph.Mutation, error) {
	switch m.Op {
	case OpInsertEdge:
		return graph.InsertEdge(m.U, m.V, m.Weight), nil
	case OpDeleteEdge:
		return graph.DeleteEdge(m.U, m.V), nil
	case OpSetWeight:
		return graph.SetWeight(m.U, m.V, m.Weight), nil
	case OpAddVertex:
		return graph.AddVertices(m.Count), nil
	}
	return graph.Mutation{}, fmt.Errorf("unknown mutation op %q (want %s|%s|%s|%s)",
		m.Op, OpInsertEdge, OpDeleteEdge, OpSetWeight, OpAddVertex)
}

// MutationOf encodes a typed graph mutation into its wire form.
func MutationOf(m graph.Mutation) Mutation {
	return Mutation{Op: m.Op.String(), U: m.U, V: m.V, Weight: m.Weight, Count: m.Count}
}

// DecodeMutations decodes a wire batch, failing on the first invalid op.
func DecodeMutations(ms []Mutation) ([]graph.Mutation, error) {
	out := make([]graph.Mutation, len(ms))
	for i, m := range ms {
		gm, err := m.Graph()
		if err != nil {
			return nil, fmt.Errorf("mutation %d: %w", i, err)
		}
		out[i] = gm
	}
	return out, nil
}

// MutateRequest is the /v1/mutate request document: one atomic batch —
// either every mutation applies or none does.
type MutateRequest struct {
	Mutations []Mutation `json:"mutations"`
	TimeoutMS int64      `json:"timeout_ms,omitempty"`
}

// MutateResponse is the /v1/mutate response document. The batch is fully
// applied when it arrives: subsequent queries observe the new graph.
type MutateResponse struct {
	// Applied is the number of mutations applied (the whole batch).
	Applied int `json:"applied"`
	// Generation is the graph generation after the batch; every applied
	// batch advances it, orphaning cached answers.
	Generation uint64 `json:"generation"`
	// Rebuilt reports the expensive path: the CSR graph was rebuilt and
	// atomically swapped (topology changed). False means the batch was
	// weight-only and patched in place under the epoch barrier.
	Rebuilt bool `json:"rebuilt"`
	// Nodes and Edges describe the graph after the batch.
	Nodes     int     `json:"nodes"`
	Edges     int64   `json:"edges"`
	ElapsedMS float64 `json:"elapsed_ms"`
	RequestID string  `json:"request_id,omitempty"`
}
