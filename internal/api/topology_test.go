package api

import (
	"strings"
	"testing"
)

func TestReadTopologyRemote(t *testing.T) {
	doc := `{
	  "partitioner": "degree",
	  "strict_consistency": true,
	  "first_round_k": 12,
	  "cache_mb": 64,
	  "shards": [
	    {"replicas": ["http://a:8081", "http://b:8081"]},
	    {"replicas": ["https://c:8081"]}
	  ]
	}`
	topo, err := ReadTopology(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if topo.Partitioner != "degree" || !topo.StrictConsistency || topo.FirstRoundK != 12 || topo.CacheMB != 64 {
		t.Errorf("options lost in decode: %+v", topo)
	}
	if len(topo.Shards) != 2 || len(topo.Shards[0].Replicas) != 2 {
		t.Errorf("shard layout lost: %+v", topo.Shards)
	}
}

func TestReadTopologyLocalDefaults(t *testing.T) {
	topo, err := ReadTopology(strings.NewReader(`{"local": {"live": true}}`))
	if err != nil {
		t.Fatal(err)
	}
	if topo.Local.ShardCount() != 1 || topo.Local.ReplicaCount() != 1 {
		t.Errorf("zero counts must default to 1, got %d/%d", topo.Local.ShardCount(), topo.Local.ReplicaCount())
	}
	if !topo.Local.Live {
		t.Error("live flag lost")
	}
	// An absent local section is also nil-safe.
	var l *LocalTopology
	if l.ShardCount() != 1 || l.ReplicaCount() != 1 {
		t.Errorf("nil LocalTopology defaults = %d/%d, want 1/1", l.ShardCount(), l.ReplicaCount())
	}
}

func TestReadTopologyRejections(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"unknown field", `{"shard_count": 3}`},
		{"typoed nested field", `{"local": {"shard": 2}}`},
		{"bad partitioner", `{"partitioner": "random"}`},
		{"negative first_round_k", `{"first_round_k": -1}`},
		{"negative cache_mb", `{"cache_mb": -5}`},
		{"both local and shards", `{"local": {"shards": 2}, "shards": [{"replicas": ["http://a"]}]}`},
		{"negative local counts", `{"local": {"replicas": -1}}`},
		{"shard without replicas", `{"shards": [{"replicas": []}]}`},
		{"non-http replica", `{"shards": [{"replicas": ["a:8081"]}]}`},
		{"not json", `shards: [a, b]`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadTopology(strings.NewReader(tc.doc)); err == nil {
				t.Fatalf("accepted %s", tc.doc)
			}
		})
	}
}

func TestValidateNilTopology(t *testing.T) {
	var topo *Topology
	if err := topo.Validate(); err == nil {
		t.Fatal("nil topology validated")
	}
}
