// Package workload builds the query workloads used by the paper's
// experimental protocols (Section 6.3): uniform random query nodes,
// maximum-degree and minimum-degree query sets (Tables 12-13), and class-
// restricted workloads for bichromatic experiments.
package workload

import (
	"math/rand"
	"sort"

	"rkranks/internal/graph"
)

// Random returns count query nodes drawn uniformly without replacement
// (with replacement once count exceeds the node count).
func Random(g *graph.Graph, count int, seed int64) []int32 {
	return RandomFrom(allNodes(g.N()), count, seed)
}

// RandomFrom draws count queries uniformly from the given candidate pool,
// without replacement while the pool lasts.
func RandomFrom(pool []int32, count int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int32, 0, count)
	perm := rng.Perm(len(pool))
	for _, i := range perm {
		if len(out) == count {
			return out
		}
		out = append(out, pool[i])
	}
	for len(out) < count && len(pool) > 0 {
		out = append(out, pool[rng.Intn(len(pool))])
	}
	return out
}

// MaxDegree returns the count nodes with the largest out-degree (ties by
// smaller id), the paper's "queries with max degree" workload.
func MaxDegree(g *graph.Graph, count int) []int32 {
	return byDegree(g, count, true)
}

// MinDegree returns the count nodes with the smallest out-degree (ties by
// smaller id), the paper's "queries with min degree" workload.
func MinDegree(g *graph.Graph, count int) []int32 {
	return byDegree(g, count, false)
}

func byDegree(g *graph.Graph, count int, max bool) []int32 {
	ids := allNodes(g.N())
	sort.Slice(ids, func(i, j int) bool {
		di, dj := g.OutDegree(ids[i]), g.OutDegree(ids[j])
		if di != dj {
			if max {
				return di > dj
			}
			return di < dj
		}
		return ids[i] < ids[j]
	})
	if count > len(ids) {
		count = len(ids)
	}
	return append([]int32(nil), ids[:count]...)
}

// Class returns the nodes for which member[v] is true, in id order; used to
// build bichromatic query pools (e.g. store nodes).
func Class(member []bool) []int32 {
	var out []int32
	for v, ok := range member {
		if ok {
			out = append(out, int32(v))
		}
	}
	return out
}

func allNodes(n int) []int32 {
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	return ids
}
