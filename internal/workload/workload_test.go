package workload

import (
	"testing"

	"rkranks/internal/gen"
	tg "rkranks/internal/testgraphs"
)

func TestRandomUniqueAndDeterministic(t *testing.T) {
	g := gen.GNM(50, 100, false, 1)
	qs := Random(g, 20, 7)
	if len(qs) != 20 {
		t.Fatalf("len = %d", len(qs))
	}
	seen := map[int32]bool{}
	for _, q := range qs {
		if q < 0 || int(q) >= g.N() {
			t.Fatalf("query %d out of range", q)
		}
		if seen[q] {
			t.Fatalf("duplicate query %d with pool larger than count", q)
		}
		seen[q] = true
	}
	again := Random(g, 20, 7)
	for i := range qs {
		if qs[i] != again[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestRandomWithReplacementBeyondPool(t *testing.T) {
	g := tg.Path(3)
	qs := Random(g, 10, 1)
	if len(qs) != 10 {
		t.Fatalf("len = %d", len(qs))
	}
}

func TestRandomFromEmptyPool(t *testing.T) {
	if qs := RandomFrom(nil, 5, 1); len(qs) != 0 {
		t.Errorf("empty pool produced %v", qs)
	}
}

func TestMaxMinDegree(t *testing.T) {
	g := tg.Star([]float64{1, 1, 1}) // node 0 degree 3, spokes degree 1
	max := MaxDegree(g, 1)
	if len(max) != 1 || max[0] != 0 {
		t.Errorf("MaxDegree = %v", max)
	}
	min := MinDegree(g, 2)
	if len(min) != 2 || min[0] != 1 || min[1] != 2 {
		t.Errorf("MinDegree = %v (want spokes in id order)", min)
	}
	if got := MaxDegree(g, 100); len(got) != g.N() {
		t.Errorf("overcount not clamped: %d", len(got))
	}
}

func TestMaxDegreeOrdering(t *testing.T) {
	g := gen.DBLPLike(gen.DBLPLikeParams{Nodes: 150, AttachPerNode: 3, Seed: 2})
	qs := MaxDegree(g, 10)
	for i := 1; i < len(qs); i++ {
		if g.OutDegree(qs[i]) > g.OutDegree(qs[i-1]) {
			t.Fatal("degrees not nonincreasing")
		}
	}
	qs = MinDegree(g, 10)
	for i := 1; i < len(qs); i++ {
		if g.OutDegree(qs[i]) < g.OutDegree(qs[i-1]) {
			t.Fatal("degrees not nondecreasing")
		}
	}
}

func TestClass(t *testing.T) {
	member := []bool{false, true, false, true, true}
	got := Class(member)
	want := []int32{1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if Class(nil) != nil {
		t.Error("nil class should be empty")
	}
}
