package ppr

import (
	"math"
	"testing"

	"rkranks/internal/gen"
	"rkranks/internal/graph"
	"rkranks/internal/rank"
	tg "rkranks/internal/testgraphs"
)

var testParams = Params{Alpha: 0.15}

func TestScoresAreADistribution(t *testing.T) {
	for _, g := range []*graph.Graph{
		tg.Toy(),
		tg.Cycle(6),
		gen.GNM(40, 120, true, 3),
		gen.GNM(40, 20, false, 4), // disconnected
	} {
		for src := int32(0); int(src) < g.N(); src += 7 {
			scores, err := Scores(g, src, testParams)
			if err != nil {
				t.Fatal(err)
			}
			var sum float64
			for _, s := range scores {
				if s < -1e-12 {
					t.Fatalf("negative score %g", s)
				}
				sum += s
			}
			if math.Abs(sum-1) > 1e-6 {
				t.Fatalf("scores sum to %g, want 1", sum)
			}
			if scores[src] <= 0 {
				t.Fatal("source has no mass")
			}
		}
	}
}

func TestScoresLocality(t *testing.T) {
	// On a path, PPR mass decays with hop distance from the source.
	g := tg.Path(6)
	scores, err := Scores(g, 0, testParams)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 5; v++ {
		if scores[v] <= scores[v+1] {
			t.Errorf("mass does not decay: score[%d]=%g <= score[%d]=%g",
				v, scores[v], v+1, scores[v+1])
		}
	}
}

func TestScoresDangling(t *testing.T) {
	// Directed edge into a sink: the sink's mass must teleport home, and
	// the vector stays a distribution.
	b := graph.NewBuilder(true)
	b.EnsureNodes(3)
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(0, 2, 1)
	g := b.Finalize()
	scores, err := Scores(g, 0, testParams)
	if err != nil {
		t.Fatal(err)
	}
	sum := scores[0] + scores[1] + scores[2]
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("sum = %g", sum)
	}
	if math.Abs(scores[1]-scores[2]) > 1e-9 {
		t.Errorf("symmetric sinks differ: %g vs %g", scores[1], scores[2])
	}
}

func TestRankBasics(t *testing.T) {
	g := tg.Path(4)
	if r, err := Rank(g, 1, 1, testParams); err != nil || r != 0 {
		t.Errorf("self rank = %d, %v", r, err)
	}
	r, err := Rank(g, 0, 1, testParams)
	if err != nil || r != 1 {
		t.Errorf("Rank(0,1) = %d, %v; want 1", r, err)
	}
	r, err = Rank(g, 0, 3, testParams)
	if err != nil || r != 3 {
		t.Errorf("Rank(0,3) = %d, %v; want 3", r, err)
	}
}

func TestRankUnreachable(t *testing.T) {
	b := graph.NewBuilder(true)
	b.EnsureNodes(3)
	b.MustAddEdge(0, 1, 1)
	g := b.Finalize()
	r, err := Rank(g, 1, 0, testParams)
	if err != nil {
		t.Fatal(err)
	}
	if r != rank.Unreachable {
		t.Errorf("rank against the arrow = %d, want Unreachable", r)
	}
}

func TestReverseKRanksFixedSize(t *testing.T) {
	g := gen.DBLPLike(gen.DBLPLikeParams{Nodes: 60, AttachPerNode: 3, Seed: 5})
	for _, k := range []int{1, 3, 7} {
		res, err := ReverseKRanks(g, 10, k, testParams)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != k {
			t.Fatalf("k=%d returned %d entries", k, len(res))
		}
		for i := 1; i < len(res); i++ {
			if res[i-1].Rank > res[i].Rank {
				t.Fatal("results out of order")
			}
		}
		// Each reported rank must be truthful.
		for _, e := range res {
			truth, err := Rank(g, e.Node, 10, testParams)
			if err != nil {
				t.Fatal(err)
			}
			if truth != e.Rank {
				t.Errorf("entry %v, truth %d", e, truth)
			}
		}
	}
}

func TestReverseKRanksDiffersFromShortestPath(t *testing.T) {
	// PPR favors structurally central nodes; shortest-path ranks favor
	// pure distance. On a weighted star + chain they can disagree — the
	// point of the future-work extension.
	g := gen.DBLPLike(gen.DBLPLikeParams{Nodes: 80, AttachPerNode: 3, Seed: 9})
	pprRes, err := ReverseKRanks(g, 40, 5, testParams)
	if err != nil {
		t.Fatal(err)
	}
	spRes := rank.BruteForceReverse(g, 40, 5)
	if len(pprRes) != 5 || len(spRes) != 5 {
		t.Fatalf("sizes %d/%d", len(pprRes), len(spRes))
	}
	// Not asserting inequality node-by-node (they can coincide on easy
	// queries); assert both are valid and log the comparison.
	t.Logf("ppr: %v", pprRes)
	t.Logf("sp:  %v", spRes)
}

func TestTopKPPR(t *testing.T) {
	g := tg.Path(5)
	res, err := TopK(g, 0, 3, testParams)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 || res[0].Node != 1 || res[0].Rank != 1 {
		t.Fatalf("TopK = %v", res)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Rank < res[i-1].Rank {
			t.Fatal("ranks not nondecreasing")
		}
	}
}

func TestParamValidation(t *testing.T) {
	g := tg.Path(3)
	if _, err := Scores(g, 0, Params{Alpha: 0}); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := Scores(g, 0, Params{Alpha: 1}); err == nil {
		t.Error("alpha=1 accepted")
	}
	if _, err := Scores(g, 9, testParams); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := ReverseKRanks(g, 0, 0, testParams); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := ReverseKRanks(g, 9, 1, testParams); err == nil {
		t.Error("bad query accepted")
	}
}
