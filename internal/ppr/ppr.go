// Package ppr implements reverse k-ranks under Personalized PageRank
// proximity — the extension the paper's conclusion names as future work
// ("we plan to study reverse k-ranks queries for other node similarity
// measures (i.e. PageRank, Personalized PageRank and SimRank), which
// require radically different approaches").
//
// This is a reference implementation, not an indexed engine: PPR proximity
// is not a metric, none of the SDS-tree bounds (Lemmas 1-4) carry over,
// and the authors explicitly defer the efficient algorithms. What a
// reference implementation does enable is (a) a correct oracle to develop
// such algorithms against, and (b) small-scale studies of how PPR-based
// reverse k-ranks answers differ from shortest-path ones.
//
// Rank semantics mirror Definition 1 with proximity inverted: node t's
// rank from s is 1 + |{p : ppr_s(p) > ppr_s(t)}| — higher personalized
// score means nearer. Ties share ranks, exactly like the distance-based
// rank.
package ppr

import (
	"fmt"
	"sort"

	"rkranks/internal/graph"
	"rkranks/internal/rank"
)

// Params configures the PPR power iteration.
type Params struct {
	// Alpha is the restart (teleport) probability; the PPR literature
	// defaults to 0.15-0.2. Must be in (0, 1).
	Alpha float64
	// Iterations bounds the power iterations; 0 uses a default of 50.
	Iterations int
	// Epsilon stops iterating early when the L1 change drops below it;
	// 0 uses 1e-9.
	Epsilon float64
}

func (p *Params) normalize() error {
	if p.Alpha <= 0 || p.Alpha >= 1 {
		return fmt.Errorf("ppr: Alpha must be in (0,1), got %g", p.Alpha)
	}
	if p.Iterations <= 0 {
		p.Iterations = 50
	}
	if p.Epsilon <= 0 {
		p.Epsilon = 1e-9
	}
	return nil
}

// Scores computes the Personalized PageRank vector of source by power
// iteration over the row-stochastic transition matrix derived from edge
// weights (weight-proportional transition probabilities). Dangling nodes
// teleport back to the source, keeping the vector a distribution.
func Scores(g *graph.Graph, source int32, p Params) ([]float64, error) {
	if err := p.normalize(); err != nil {
		return nil, err
	}
	n := g.N()
	if source < 0 || int(source) >= n {
		return nil, fmt.Errorf("ppr: source %d out of range [0,%d)", source, n)
	}
	// Precompute out-weight sums.
	outSum := make([]float64, n)
	for u := 0; u < n; u++ {
		_, ws := g.Neighbors(int32(u))
		for _, w := range ws {
			outSum[u] += w
		}
	}
	cur := make([]float64, n)
	next := make([]float64, n)
	cur[source] = 1
	for iter := 0; iter < p.Iterations; iter++ {
		for i := range next {
			next[i] = 0
		}
		dangling := 0.0
		for u := 0; u < n; u++ {
			mass := cur[u]
			if mass == 0 {
				continue
			}
			if outSum[u] == 0 {
				dangling += mass
				continue
			}
			ts, ws := g.Neighbors(int32(u))
			scale := (1 - p.Alpha) * mass / outSum[u]
			for i, v := range ts {
				next[v] += scale * ws[i]
			}
			dangling += 0 // explicit: non-dangling mass handled above
		}
		// Teleport: alpha of all mass plus the full dangling mass returns
		// to the source.
		teleport := p.Alpha*(1-dangling) + dangling
		next[source] += teleport
		var delta float64
		for i := range next {
			d := next[i] - cur[i]
			if d < 0 {
				d = -d
			}
			delta += d
		}
		cur, next = next, cur
		if delta < p.Epsilon {
			break
		}
	}
	return cur, nil
}

// Rank computes the PPR analogue of Rank(s, t): 1 plus the number of nodes
// with strictly higher personalized score from s than t has (ties share
// ranks, the source itself is excluded). It returns rank.Unreachable when
// t's score is zero (t absorbs no probability from s).
func Rank(g *graph.Graph, s, t int32, p Params) (int32, error) {
	if s == t {
		return 0, nil
	}
	scores, err := Scores(g, s, p)
	if err != nil {
		return 0, err
	}
	if scores[t] == 0 {
		return rank.Unreachable, nil
	}
	higher := int32(0)
	for v, sc := range scores {
		if int32(v) == s || int32(v) == t {
			continue
		}
		if sc > scores[t] {
			higher++
		}
	}
	return higher + 1, nil
}

// ReverseKRanks answers a reverse k-ranks query under PPR proximity by
// brute force: one PPR vector per node (O(|V|) power iterations). Results
// are the k nodes ranking q highest, ordered by (rank, node id) —
// identical semantics to the shortest-path engines, different proximity.
func ReverseKRanks(g *graph.Graph, q int32, k int, p Params) ([]rank.Entry, error) {
	if k < 1 {
		return nil, fmt.Errorf("ppr: k must be >= 1, got %d", k)
	}
	if q < 0 || int(q) >= g.N() {
		return nil, fmt.Errorf("ppr: query %d out of range [0,%d)", q, g.N())
	}
	var all []rank.Entry
	for s := int32(0); int(s) < g.N(); s++ {
		if s == q {
			continue
		}
		r, err := Rank(g, s, q, p)
		if err != nil {
			return nil, err
		}
		if r == rank.Unreachable {
			continue
		}
		all = append(all, rank.Entry{Node: s, Rank: r})
	}
	rank.SortEntries(all)
	if len(all) > k {
		all = all[:k]
	}
	return all, nil
}

// TopK returns the k nodes with the highest personalized score from q
// (the PPR analogue of the k-NN query), highest first, ties by node id.
func TopK(g *graph.Graph, q int32, k int, p Params) ([]rank.Entry, error) {
	scores, err := Scores(g, q, p)
	if err != nil {
		return nil, err
	}
	type cand struct {
		node  int32
		score float64
	}
	cands := make([]cand, 0, g.N()-1)
	for v, sc := range scores {
		if int32(v) != q && sc > 0 {
			cands = append(cands, cand{int32(v), sc})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].node < cands[j].node
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]rank.Entry, len(cands))
	strictAbove := 0
	last := -1.0
	for i, c := range cands {
		if c.score != last {
			strictAbove = i
			last = c.score
		}
		out[i] = rank.Entry{Node: c.node, Rank: int32(strictAbove + 1)}
	}
	return out, nil
}
