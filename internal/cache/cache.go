// Package cache is a look-aside response cache for reverse k-ranks
// backends: a sharded-LRU, byte-budgeted store of canonical query results
// with singleflight coalescing, wired as a composable decorator around
// anything that serves the server.Backend method set (a core.Pool or a
// cluster.Coordinator).
//
// # Why caching is safe here
//
// Results are canonical — the minimum k entries by (rank, node id),
// independent of engine, index state, pruning order, and shard layout
// (see core.Result) — so a cached answer for (algorithm, query node, k)
// is byte-identical to what the backend would recompute, even while a
// shared dynamic index keeps refining underneath: refinements are
// monotone exact facts that never change a canonical result. The one
// thing that CAN invalidate a cached answer is the backend's answer set
// being replaced wholesale (an index swapped in over live traffic), and
// that is what the generation component of the key guards: entries carry
// the generation they were computed under, a bump orphans them all, and
// the orphans age out of the LRU.
//
// # Coalescing
//
// Concurrent duplicate queries admit ONE backend permit: the first miss
// becomes the flight leader, every concurrent duplicate joins as a
// follower and waits on the leader's result. The flight runs on a
// reference-counted context detached from any single caller — a follower
// that cancels stops waiting immediately (its own context error), the
// flight is canceled only when EVERY waiter has walked away, and a
// leader whose caller gives up does not take its followers' answer down
// with it.
package cache

import (
	"sync"

	"rkranks/internal/core"
	"rkranks/internal/obs"
)

// defaultShards is the lock-shard count of the LRU: enough that
// concurrent lookups from a serving pool rarely contend, few enough that
// the per-shard byte budgets stay meaningful at small cache sizes.
const defaultShards = 16

// entryOverhead approximates the fixed per-entry footprint beyond the
// result entries themselves: key, list links, map bucket share, Result
// header and Stats block.
const entryOverhead = 256

// Config sizes a Cache.
type Config struct {
	// MaxBytes is the cache-wide byte budget (> 0). The budget is split
	// evenly across shards; a result too large for its shard's budget is
	// served but never stored.
	MaxBytes int64
	// Shards overrides the lock-shard count (0 = 16).
	Shards int
	// Metrics backs the cache counters with the shared instrument
	// catalog, so /metrics and the /statsz cache section read the same
	// storage. Nil uses standalone (unregistered) instruments.
	Metrics *obs.Metrics
}

// key identifies one cacheable response. Generation is the backend's
// answer-set generation at lookup time: entries written under an older
// generation can never be returned again (their key no longer occurs).
type key struct {
	algo core.Algorithm
	q    int32
	k    int
	gen  uint64
}

// entry is one cached result on its shard's LRU list.
type entry struct {
	key        key
	res        *core.Result
	size       int64
	prev, next *entry
}

// shard is one lock stripe: an LRU map plus the in-flight registry for
// the keys that hash here. One mutex guards both so the
// lookup-or-join-or-lead decision is atomic.
type shard struct {
	mu       sync.Mutex
	entries  map[key]*entry
	flights  map[key]*flight
	head     *entry // most recently used
	tail     *entry // next eviction victim
	bytes    int64
	maxBytes int64
}

// Cache is the sharded LRU store. Create with New; most callers want the
// NewBackend decorator instead of using the store directly.
type Cache struct {
	shards []*shard

	// Counters are obs instruments (possibly registered on a /metrics
	// registry); Stats reads them back, so the two surfaces are one.
	hits      *obs.Counter
	misses    *obs.Counter
	coalesced *obs.Counter
	inserts   *obs.Counter
	evictions *obs.Counter
}

// New returns an empty cache with cfg's byte budget.
func New(cfg Config) *Cache {
	n := cfg.Shards
	if n <= 0 {
		n = defaultShards
	}
	perShard := cfg.MaxBytes / int64(n)
	if perShard < 1 {
		perShard = 1
	}
	m := cfg.Metrics
	if m == nil {
		m = obs.NewMetrics(nil)
	}
	c := &Cache{
		shards:    make([]*shard, n),
		hits:      m.CacheHits,
		misses:    m.CacheMisses,
		coalesced: m.CacheCoalesced,
		inserts:   m.CacheInserts,
		evictions: m.CacheEvictions,
	}
	for i := range c.shards {
		c.shards[i] = &shard{
			entries:  make(map[key]*entry),
			flights:  make(map[key]*flight),
			maxBytes: perShard,
		}
	}
	return c
}

// shardFor maps a key to its lock stripe. Query node is the only
// well-spread component; algorithm, k, and generation mostly repeat.
func (c *Cache) shardFor(k key) *shard {
	h := uint32(k.q)*2654435761 + uint32(k.k)*40503 + uint32(k.algo) + uint32(k.gen)
	return c.shards[h%uint32(len(c.shards))]
}

// resultSize estimates the bytes a cached result occupies.
func resultSize(res *core.Result) int64 {
	return entryOverhead + 8*int64(len(res.Entries))
}

// --- intrusive LRU list (shard.mu held) ---------------------------------

func (s *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard) moveFront(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// lookup returns the cached entry and refreshes its recency.
func (s *shard) lookup(k key) *entry {
	e := s.entries[k]
	if e != nil {
		s.moveFront(e)
	}
	return e
}

// insert admits a result, evicting from the LRU tail until the shard is
// back under budget. Oversized results are skipped (served, not stored).
// Re-inserting an existing key refreshes the stored result in place.
func (c *Cache) insert(s *shard, k key, res *core.Result) {
	size := resultSize(res)
	if size > s.maxBytes {
		return
	}
	if old := s.entries[k]; old != nil {
		s.bytes -= old.size
		old.res, old.size = res, size
		s.bytes += size
		s.moveFront(old)
		return
	}
	e := &entry{key: k, res: res, size: size}
	s.entries[k] = e
	s.pushFront(e)
	s.bytes += size
	c.inserts.Add(1)
	for s.bytes > s.maxBytes && s.tail != nil && s.tail != e {
		victim := s.tail
		s.unlink(victim)
		delete(s.entries, victim.key)
		s.bytes -= victim.size
		c.evictions.Add(1)
	}
}

// Snapshot is the cache section of /statsz. Field names are wire format:
// add, never rename.
type Snapshot struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Coalesced int64   `json:"coalesced"`
	HitRate   float64 `json:"hit_rate"`
	Inserts   int64   `json:"inserts"`
	Evictions int64   `json:"evictions"`
	Entries   int64   `json:"entries"`
	Bytes     int64   `json:"bytes"`
	MaxBytes  int64   `json:"max_bytes"`
	InFlight  int     `json:"in_flight"`
}

// Stats returns the cache counters and current occupancy.
func (c *Cache) Stats() Snapshot {
	snap := Snapshot{
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Coalesced: c.coalesced.Value(),
		Inserts:   c.inserts.Value(),
		Evictions: c.evictions.Value(),
	}
	for _, s := range c.shards {
		s.mu.Lock()
		snap.Entries += int64(len(s.entries))
		snap.Bytes += s.bytes
		snap.MaxBytes += s.maxBytes
		snap.InFlight += len(s.flights)
		s.mu.Unlock()
	}
	if lookups := snap.Hits + snap.Misses + snap.Coalesced; lookups > 0 {
		snap.HitRate = float64(snap.Hits) / float64(lookups)
	}
	return snap
}
