package cache

import (
	"context"
	"errors"
	"fmt"

	"rkranks/internal/core"
	"rkranks/internal/obs"
)

// Target is what a Backend decorates: the query surface of the
// server.Backend contract, satisfied by core.Pool and
// cluster.Coordinator. The package deliberately re-declares the method
// set instead of importing internal/server, so the dependency arrow
// stays cache -> core and the server can probe a cache through the same
// interface assertions it uses for clusters.
type Target interface {
	QueryContext(ctx context.Context, a core.Algorithm, q int32, k int) (*core.Result, error)
	QueryManyContext(ctx context.Context, a core.Algorithm, queries []int32, k int) ([]*core.Result, error)
	Size() int
	Indexed() bool
}

// generationer is the optional answer-set-generation probe (core.Pool,
// cluster.Coordinator). A target without one is permanently generation 0,
// which is correct for backends whose answers can never be invalidated.
type generationer interface {
	Generation() uint64
}

// Backend decorates a Target with the response cache and singleflight
// coalescing. It satisfies server.Backend, so it drops between an HTTP
// server and its pool or coordinator unchanged:
//
//	cached, _ := cache.NewBackend(pool, cache.Config{MaxBytes: 64 << 20})
//	server.New(server.Config{Backend: cached, Graph: g})
//
// Cached results are shared: callers must treat Result.Entries as
// immutable (every current caller — the HTTP encoder, the cluster merge
// — only reads them).
type Backend struct {
	inner Target
	gen   generationer // nil when the target has no generation
	cache *Cache
}

// NewBackend wraps inner with a response cache of cfg's budget.
func NewBackend(inner Target, cfg Config) (*Backend, error) {
	if inner == nil {
		return nil, fmt.Errorf("cache: NewBackend requires a target backend")
	}
	if cfg.MaxBytes <= 0 {
		return nil, fmt.Errorf("cache: Config.MaxBytes must be > 0, got %d", cfg.MaxBytes)
	}
	b := &Backend{inner: inner, cache: New(cfg)}
	if gp, ok := inner.(generationer); ok {
		b.gen = gp
	}
	return b, nil
}

// Size implements server.Backend.
func (b *Backend) Size() int { return b.inner.Size() }

// Indexed implements server.Backend.
func (b *Backend) Indexed() bool { return b.inner.Indexed() }

// Unwrap exposes the decorated backend, so servers can probe the chain
// for capabilities the cache does not re-implement (shard counts,
// cluster snapshots).
func (b *Backend) Unwrap() any { return b.inner }

// CacheSnapshot implements the server /statsz probe.
func (b *Backend) CacheSnapshot() any {
	snap := b.cache.Stats()
	return &snap
}

// Cache exposes the underlying store (tests, direct invalidation).
func (b *Backend) Cache() *Cache { return b.cache }

// CacheBytes and CacheEntries are the gauge probes behind the
// rkranks_cache_bytes / rkranks_cache_entries metrics: the server finds
// them through the Unwrap chain and registers sampling sources, so the
// cache itself never touches the registry.
func (b *Backend) CacheBytes() int64 { return b.cache.Stats().Bytes }

// CacheEntries reports the current entry count (see CacheBytes).
func (b *Backend) CacheEntries() int64 { return b.cache.Stats().Entries }

// generation reads the target's current answer-set generation.
func (b *Backend) generation() uint64 {
	if b.gen == nil {
		return 0
	}
	return b.gen.Generation()
}

// cacheable reports whether a completed flight outcome may be stored: a
// successful, complete (non-Partial) result. Degraded cluster answers
// are served to their waiters but never cached — the missing shard's
// candidates would otherwise stay missing long after the shard healed.
func cacheable(res *core.Result, err error) bool {
	return err == nil && res != nil && !res.Partial
}

// staleFlight reports that a joined flight failed with a cancellation
// that was not ours: every earlier waiter abandoned it (canceling the
// group context) in the window before it left the registry. The caller
// should retry — it can only have joined as a follower, so as the
// retry's leader it holds a live ticket and cannot see the same
// spurious cancellation again (termination). Deadline errors are NOT
// stale: group contexts carry no deadline, so those are real backend
// outcomes (e.g. a shard's own server-side timeout) that a retry would
// just repeat.
func staleFlight(err error, ctx context.Context) bool {
	return err != nil && errors.Is(err, context.Canceled) && ctx.Err() == nil
}

// QueryContext implements server.Backend: look aside, then either join
// the key's in-flight leader or become it. The leader consumes exactly
// one inner-backend permit no matter how many duplicates arrive while it
// runs.
func (b *Backend) QueryContext(ctx context.Context, a core.Algorithm, q int32, k int) (*core.Result, error) {
	if err := core.ValidateRequest(a, k); err != nil {
		return nil, err
	}
	kk := key{algo: a, q: q, k: k, gen: b.generation()}
	s := b.cache.shardFor(kk)

	// The lookup span covers the atomic hit-or-join-or-lead decision; the
	// flight span is always measured waiter-side (f.wait), never inside
	// the detached flight goroutine, so a recorder reading the trace after
	// the request cannot race a still-running abandoned flight.
	tr := obs.FromContext(ctx)
	sp := tr.Begin(obs.StageCacheLookup)

	s.mu.Lock()
	if e := s.lookup(kk); e != nil {
		s.mu.Unlock()
		b.cache.hits.Add(1)
		sp.SetAttr("hit", 1)
		tr.End(sp)
		return e.res, nil
	}
	if f := s.flights[kk]; f != nil {
		f.group.join()
		s.mu.Unlock()
		b.cache.coalesced.Add(1)
		sp.SetAttr("coalesced", 1)
		tr.End(sp)
		fsp := tr.Begin(obs.StageCacheFlight)
		res, err := f.wait(ctx)
		tr.End(fsp)
		if staleFlight(err, ctx) {
			// The flight died of abandonment (every earlier waiter left
			// and the group context was canceled) in the window before
			// finish removed it from the registry. Our caller is still
			// live, so run the query again rather than surfacing someone
			// else's cancellation.
			return b.QueryContext(ctx, a, q, k)
		}
		return res, err
	}
	grp := newGroup(ctx)
	f := newFlight(grp)
	grp.join() // the leader's own waiter ticket
	s.flights[kk] = f
	s.mu.Unlock()
	b.cache.misses.Add(1)
	sp.SetAttr("miss", 1)
	tr.End(sp)

	// The query itself runs detached from this caller: if the leader
	// walks away, followers still get the answer, and the engine permit
	// is released early only when every waiter is gone. The flight runs
	// on the group context (shared by every waiter), so the trace stays
	// out of it by construction.
	go func() {
		res, err := b.inner.QueryContext(grp.ctx, a, q, k)
		b.finish(s, kk, f, res, err)
		grp.cancel()
	}()
	fsp := tr.Begin(obs.StageCacheFlight)
	fsp.SetAttr("leader", 1)
	res, err := f.wait(ctx)
	tr.End(fsp)
	return res, err
}

// finish publishes one flight's outcome: removes it from the registry
// (no joiner can land on a completed flight), stores cacheable results,
// and wakes the waiters.
func (b *Backend) finish(s *shard, kk key, f *flight, res *core.Result, err error) {
	s.mu.Lock()
	delete(s.flights, kk)
	if cacheable(res, err) {
		b.cache.insert(s, kk, res)
	}
	s.mu.Unlock()
	f.complete(res, err)
}

// QueryManyContext implements the batch entry point. Hits answer from
// the store, duplicates (within the batch or against concurrent
// traffic) coalesce onto one flight, and the remaining fresh misses go
// to the inner backend as ONE QueryManyContext call — which a cluster
// coordinator serves with one RPC per shard, so caching composes with
// batch scatter instead of decomposing it.
func (b *Backend) QueryManyContext(ctx context.Context, a core.Algorithm, queries []int32, k int) ([]*core.Result, error) {
	if err := core.ValidateRequest(a, k); err != nil {
		return nil, err
	}
	gen := b.generation()
	results := make([]*core.Result, len(queries))

	// One lookup span covers the whole classification pass; per-query
	// spans would overflow the trace on large batches.
	tr := obs.FromContext(ctx)
	sp := tr.Begin(obs.StageCacheLookup)
	var nHits, nMisses, nCoalesced int64

	// Classification pass: every index resolves to a hit or a flight.
	grp := newGroup(ctx)
	byFlight := make(map[*flight][]int)
	local := make(map[key]*flight, len(queries)) // flights this batch already waits on
	var freshQueries []int32
	var freshKeys []key
	var freshFlights []*flight
	for i, q := range queries {
		kk := key{algo: a, q: q, k: k, gen: gen}
		if f, ok := local[kk]; ok {
			// Intra-batch duplicate: ride the flight this batch already
			// waits on instead of taking another ticket.
			b.cache.coalesced.Add(1)
			nCoalesced++
			byFlight[f] = append(byFlight[f], i)
			continue
		}
		s := b.cache.shardFor(kk)
		s.mu.Lock()
		if e := s.lookup(kk); e != nil {
			s.mu.Unlock()
			b.cache.hits.Add(1)
			nHits++
			results[i] = e.res
			continue
		}
		if f := s.flights[kk]; f != nil {
			f.group.join()
			s.mu.Unlock()
			b.cache.coalesced.Add(1)
			nCoalesced++
			local[kk] = f
			byFlight[f] = append(byFlight[f], i)
			continue
		}
		f := newFlight(grp)
		grp.join()
		s.flights[kk] = f
		s.mu.Unlock()
		b.cache.misses.Add(1)
		nMisses++
		local[kk] = f
		freshQueries = append(freshQueries, q)
		freshKeys = append(freshKeys, kk)
		freshFlights = append(freshFlights, f)
		byFlight[f] = append(byFlight[f], i)
	}
	sp.SetAttr("hits", nHits)
	sp.SetAttr("misses", nMisses)
	sp.SetAttr("coalesced", nCoalesced)
	tr.End(sp)

	if len(freshQueries) > 0 {
		go func() {
			rs, err := b.inner.QueryManyContext(grp.ctx, a, freshQueries, k)
			for j, f := range freshFlights {
				var res *core.Result
				if err == nil && j < len(rs) {
					res = rs[j]
				}
				b.finish(b.cache.shardFor(freshKeys[j]), freshKeys[j], f, res, err)
			}
			grp.cancel()
		}()
	} else {
		// No fresh flights: drop the unused group context.
		grp.cancel()
	}

	var firstErr error
	var retry []int // indices whose joined flight died of abandonment
	fsp := tr.Begin(obs.StageCacheFlight)
	fsp.SetAttr("flights", int64(len(byFlight)))
	for f, idxs := range byFlight {
		res, err := f.wait(ctx)
		if err != nil {
			if staleFlight(err, ctx) {
				retry = append(retry, idxs...)
				continue
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		for _, i := range idxs {
			results[i] = res
		}
	}
	tr.End(fsp)
	if firstErr != nil {
		// Match Pool/Coordinator batch semantics: the first error fails
		// the batch.
		return nil, firstErr
	}
	if len(retry) > 0 {
		// Re-run the positions that joined flights abandoned by every
		// earlier waiter (see staleFlight); this batch is still live.
		qs := make([]int32, len(retry))
		for j, i := range retry {
			qs[j] = queries[i]
		}
		rs, err := b.QueryManyContext(ctx, a, qs, k)
		if err != nil {
			return nil, err
		}
		for j, i := range retry {
			results[i] = rs[j]
		}
	}
	return results, nil
}
