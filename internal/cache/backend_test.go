package cache

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"rkranks/internal/core"
	"rkranks/internal/gen"
	"rkranks/internal/hub"
	"rkranks/internal/rank"
	"rkranks/internal/ridx"
	tg "rkranks/internal/testgraphs"
	"rkranks/internal/workload"
)

var allAlgorithms = []core.Algorithm{core.Naive, core.Static, core.Dynamic, core.Indexed}

func entriesEqual(a, b []rank.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCachedEquivalenceAllAlgorithms: cache on and off produce
// byte-identical entries for every algorithm, and the second pass is
// served from the store.
func TestCachedEquivalenceAllAlgorithms(t *testing.T) {
	g := gen.DBLPLike(gen.DBLPLikeParams{Nodes: 200, AttachPerNode: 4, ExtraCollabFactor: 0.5, Seed: 3})
	ix, err := ridx.BuildSharded(g, ridx.BuildParams{
		Hubs: hub.Select(g, hub.DegreeFirst, g.N()/8+1, hub.Options{}),
		M:    g.N()/4 + 1,
		K:    16,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := core.NewPoolWithIndex(g, core.Options{}, 2, ix)
	if err != nil {
		t.Fatal(err)
	}
	plain := core.NewPool(g, core.Options{}, 1)
	cached, err := NewBackend(pool, Config{MaxBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	queries := workload.Random(g, 5, 11)
	for _, algo := range allAlgorithms {
		for _, q := range queries {
			for _, k := range []int{1, 3, 10} {
				want, err := plain.Query(algo, q, k)
				if algo == core.Indexed {
					want, err = pool.Query(algo, q, k)
				}
				if err != nil {
					t.Fatal(err)
				}
				for pass := 0; pass < 2; pass++ {
					got, err := cached.QueryContext(context.Background(), algo, q, k)
					if err != nil {
						t.Fatalf("%v q=%d k=%d pass %d: %v", algo, q, k, pass, err)
					}
					if !entriesEqual(got.Entries, want.Entries) {
						t.Fatalf("%v q=%d k=%d pass %d diverged:\n cached %v\n direct %v",
							algo, q, k, pass, got.Entries, want.Entries)
					}
				}
			}
		}
	}
	snap := cached.CacheSnapshot().(*Snapshot)
	if snap.Hits == 0 || snap.Misses == 0 {
		t.Errorf("expected both hits and misses, got %+v", snap)
	}
	if snap.Hits < snap.Misses {
		t.Errorf("second passes should all hit: %+v", snap)
	}
}

// TestCoalescingAdmitsOnePermit is the permit-accounting assertion:
// many concurrent duplicates of one query occupy at most ONE pool
// engine, and exactly one inner query runs.
func TestCoalescingAdmitsOnePermit(t *testing.T) {
	g := gen.DBLPLike(gen.DBLPLikeParams{Nodes: 400, AttachPerNode: 5, ExtraCollabFactor: 0.5, Seed: 7})
	pool := core.NewPool(g, core.Options{}, 4)
	cached, err := NewBackend(pool, Config{MaxBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	const waiters = 16
	var wg sync.WaitGroup
	results := make([]*core.Result, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := cached.QueryContext(context.Background(), core.Dynamic, 42, 8)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i := 1; i < waiters; i++ {
		if !entriesEqual(results[i].Entries, results[0].Entries) {
			t.Fatalf("waiter %d saw a different result", i)
		}
	}
	if peak := pool.PeakOccupancy(); peak != 1 {
		t.Errorf("peak pool occupancy = %d, want 1 (duplicates must share one permit)", peak)
	}
	snap := cached.CacheSnapshot().(*Snapshot)
	if snap.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 leader", snap.Misses)
	}
	if snap.Coalesced+snap.Hits != waiters-1 {
		t.Errorf("coalesced %d + hits %d != %d followers", snap.Coalesced, snap.Hits, waiters-1)
	}
}

// TestFollowerCancellationMidFlight: a follower whose context dies while
// the leader computes returns its own context error immediately; the
// leader is unaffected and completes.
func TestFollowerCancellationMidFlight(t *testing.T) {
	target := &countingTarget{calls: make(chan int32, 4), block: make(chan struct{})}
	cached, err := NewBackend(target, Config{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}

	leaderDone := make(chan error, 1)
	go func() {
		_, err := cached.QueryContext(context.Background(), core.Dynamic, 1, 3)
		leaderDone <- err
	}()
	<-target.calls // the leader's flight is now in the target

	ctx, cancel := context.WithCancel(context.Background())
	followerDone := make(chan error, 1)
	go func() {
		_, err := cached.QueryContext(ctx, core.Dynamic, 1, 3)
		followerDone <- err
	}()
	// The follower must have joined (coalesced counter) before we cancel.
	waitFor(t, func() bool { return cached.CacheSnapshot().(*Snapshot).Coalesced == 1 })
	cancel()
	select {
	case err := <-followerDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("follower error = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled follower still waiting on the leader's flight")
	}

	close(target.block) // let the leader finish
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader failed after follower cancellation: %v", err)
	}
	if snap := cached.CacheSnapshot().(*Snapshot); snap.Entries != 1 {
		t.Errorf("completed flight not cached: %+v", snap)
	}
}

// TestAllWaitersGoneCancelsFlight: when the last waiter walks away the
// flight's execution context is canceled, releasing the engine permit
// early instead of computing for nobody.
func TestAllWaitersGoneCancelsFlight(t *testing.T) {
	target := &countingTarget{
		calls:   make(chan int32, 1),
		block:   make(chan struct{}),
		ctxErrs: make(chan error, 1),
	}
	cached, err := NewBackend(target, Config{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := cached.QueryContext(ctx, core.Dynamic, 5, 3)
		done <- err
	}()
	<-target.calls
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader error = %v, want context.Canceled", err)
	}
	select {
	case err := <-target.ctxErrs:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("execution context ended with %v, want cancellation", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("execution context never canceled after every waiter left")
	}
	if snap := cached.CacheSnapshot().(*Snapshot); snap.Entries != 0 {
		t.Errorf("failed flight was cached: %+v", snap)
	}
}

// TestPartialResultsNotCached: degraded (Partial) answers serve their
// waiters but never enter the store.
func TestPartialResultsNotCached(t *testing.T) {
	target := &countingTarget{calls: make(chan int32, 4), partial: true}
	cached, err := NewBackend(target, Config{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err := cached.QueryContext(context.Background(), core.Dynamic, 9, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Partial {
			t.Fatal("partial flag lost")
		}
	}
	snap := cached.CacheSnapshot().(*Snapshot)
	if snap.Misses != 2 || snap.Hits != 0 || snap.Entries != 0 {
		t.Errorf("partial results must not cache: %+v", snap)
	}
}

// TestErrorsNotCached: a failed flight is retried by the next query.
func TestErrorsNotCached(t *testing.T) {
	boom := errors.New("backend down")
	target := &countingTarget{calls: make(chan int32, 4), err: boom}
	cached, err := NewBackend(target, Config{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := cached.QueryContext(context.Background(), core.Dynamic, 3, 3); !errors.Is(err, boom) {
			t.Fatalf("error = %v, want backend error", err)
		}
	}
	if len(target.calls) != 2 {
		t.Errorf("inner calls = %d, want 2 (errors must not cache)", len(target.calls))
	}
}

// TestBatchDeduplicatesAndGroupsMisses: a batch resolves hits from the
// store, coalesces intra-batch duplicates onto one flight, and sends the
// fresh misses to the inner backend as ONE grouped call.
func TestBatchDeduplicatesAndGroupsMisses(t *testing.T) {
	var mu sync.Mutex
	var innerBatches [][]int32
	target := &recordingTarget{onBatch: func(qs []int32) {
		mu.Lock()
		innerBatches = append(innerBatches, append([]int32(nil), qs...))
		mu.Unlock()
	}}
	cached, err := NewBackend(target, Config{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// Seed the store with query 7.
	if _, err := cached.QueryContext(context.Background(), core.Dynamic, 7, 3); err != nil {
		t.Fatal(err)
	}

	batch := []int32{7, 1, 2, 1, 7, 2, 3}
	results, err := cached.QueryManyContext(context.Background(), core.Dynamic, batch, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range batch {
		if results[i] == nil || results[i].Query != q {
			t.Fatalf("results[%d] = %+v, want query %d", i, results[i], q)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(innerBatches) != 1 {
		t.Fatalf("inner batch calls = %d, want 1 grouped call", len(innerBatches))
	}
	if want := []int32{1, 2, 3}; !int32sEqual(innerBatches[0], want) {
		t.Errorf("inner batch = %v, want unique misses %v", innerBatches[0], want)
	}
	snap := cached.CacheSnapshot().(*Snapshot)
	if snap.Hits != 2 { // 7 twice
		t.Errorf("hits = %d, want 2", snap.Hits)
	}
	if snap.Coalesced != 2 { // second 1 and second 2
		t.Errorf("coalesced = %d, want 2", snap.Coalesced)
	}
}

// TestGenerationBumpInvalidates: bumping the shared index generation
// orphans every cached answer; the next query recomputes.
func TestGenerationBumpInvalidates(t *testing.T) {
	g := tg.Toy()
	ix, err := ridx.BuildSharded(g, ridx.BuildParams{Hubs: []int32{0}, M: 3, K: 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := core.NewPoolWithIndex(g, core.Options{}, 1, ix)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := NewBackend(pool, Config{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	first, err := cached.QueryContext(context.Background(), core.Indexed, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cached.QueryContext(context.Background(), core.Indexed, 0, 3); err != nil {
		t.Fatal(err)
	}
	if snap := cached.CacheSnapshot().(*Snapshot); snap.Hits != 1 {
		t.Fatalf("warm lookup missed: %+v", snap)
	}

	ix.BumpGeneration()
	res, err := cached.QueryContext(context.Background(), core.Indexed, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	snap := cached.CacheSnapshot().(*Snapshot)
	if snap.Misses != 2 {
		t.Errorf("post-bump lookup served stale generation: %+v", snap)
	}
	if !entriesEqual(res.Entries, first.Entries) {
		t.Errorf("recomputed entries diverged (canonical results are generation-independent): %v vs %v", res.Entries, first.Entries)
	}
}

// recordingTarget answers instantly and reports batch compositions.
type recordingTarget struct {
	onBatch func([]int32)
}

func (r *recordingTarget) QueryContext(ctx context.Context, a core.Algorithm, q int32, k int) (*core.Result, error) {
	return &core.Result{Query: q, K: k, Entries: []rank.Entry{{Node: q + 1, Rank: 1}}}, nil
}

func (r *recordingTarget) QueryManyContext(ctx context.Context, a core.Algorithm, queries []int32, k int) ([]*core.Result, error) {
	if r.onBatch != nil {
		r.onBatch(queries)
	}
	out := make([]*core.Result, len(queries))
	for i, q := range queries {
		out[i], _ = r.QueryContext(ctx, a, q, k)
	}
	return out, nil
}

func (r *recordingTarget) Size() int     { return 2 }
func (r *recordingTarget) Indexed() bool { return false }

func int32sEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never held")
}

// staleFlightTarget blocks its first call until canceled, then holds the
// error back until released — pinning a flight in the window between
// group cancellation and registry removal. Later calls succeed.
type staleFlightTarget struct {
	mu       sync.Mutex
	calls    int
	canceled chan struct{}
	release  chan struct{}
}

func (s *staleFlightTarget) QueryContext(ctx context.Context, a core.Algorithm, q int32, k int) (*core.Result, error) {
	s.mu.Lock()
	s.calls++
	first := s.calls == 1
	s.mu.Unlock()
	if first {
		<-ctx.Done()
		close(s.canceled)
		<-s.release
		return nil, ctx.Err()
	}
	return &core.Result{Query: q, K: k, Entries: []rank.Entry{{Node: q + 1, Rank: 1}}}, nil
}

func (s *staleFlightTarget) QueryManyContext(ctx context.Context, a core.Algorithm, queries []int32, k int) ([]*core.Result, error) {
	out := make([]*core.Result, len(queries))
	for i, q := range queries {
		res, err := s.QueryContext(ctx, a, q, k)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

func (s *staleFlightTarget) Size() int     { return 2 }
func (s *staleFlightTarget) Indexed() bool { return false }

// TestJoiningAbandonedFlightRetries: a request that joins a flight whose
// every earlier waiter already left (group canceled, not yet removed
// from the registry) must not surface the stranger's cancellation — it
// retries and succeeds.
func TestJoiningAbandonedFlightRetries(t *testing.T) {
	target := &staleFlightTarget{canceled: make(chan struct{}), release: make(chan struct{})}
	cached, err := NewBackend(target, Config{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, err := cached.QueryContext(ctx, core.Dynamic, 4, 3)
		leaderDone <- err
	}()
	// Abandon the flight: the leader leaves, the group cancels, but the
	// target holds the flight un-finished until release.
	cancel()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader error = %v", err)
	}
	<-target.canceled

	joinerDone := make(chan error, 1)
	var joinerRes *core.Result
	go func() {
		res, err := cached.QueryContext(context.Background(), core.Dynamic, 4, 3)
		joinerRes = res
		joinerDone <- err
	}()
	// The joiner must be on the dying flight before it completes.
	waitFor(t, func() bool { return cached.CacheSnapshot().(*Snapshot).Coalesced == 1 })
	close(target.release)
	select {
	case err := <-joinerDone:
		if err != nil {
			t.Fatalf("joiner surfaced the abandoned flight's cancellation: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("joiner never completed")
	}
	if joinerRes == nil || len(joinerRes.Entries) != 1 {
		t.Fatalf("joiner result = %+v", joinerRes)
	}
}
