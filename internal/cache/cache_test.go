package cache

import (
	"context"
	"fmt"
	"testing"

	"rkranks/internal/core"
	"rkranks/internal/rank"
)

// storeResult builds a distinguishable result for store-level tests.
func storeResult(q int32, entries int) *core.Result {
	res := &core.Result{Query: q, K: entries}
	for i := 0; i < entries; i++ {
		res.Entries = append(res.Entries, rank.Entry{Node: int32(i), Rank: int32(i + 1)})
	}
	return res
}

// TestLRUEvictsOldestWithinBudget: a one-shard cache over a tight byte
// budget keeps the most recently used entries and its byte gauge under
// budget.
func TestLRUEvictsOldestWithinBudget(t *testing.T) {
	budget := int64(3 * (entryOverhead + 8*4))
	c := New(Config{MaxBytes: budget, Shards: 1})
	s := c.shards[0]
	for q := int32(0); q < 10; q++ {
		s.mu.Lock()
		c.insert(s, key{algo: core.Dynamic, q: q, k: 4}, storeResult(q, 4))
		s.mu.Unlock()
	}
	snap := c.Stats()
	if snap.Bytes > budget {
		t.Errorf("bytes %d exceed budget %d", snap.Bytes, budget)
	}
	if snap.Entries != 3 {
		t.Errorf("entries = %d, want 3", snap.Entries)
	}
	if snap.Evictions != 7 {
		t.Errorf("evictions = %d, want 7", snap.Evictions)
	}
	// The three most recent keys survive; the earliest are gone.
	s.mu.Lock()
	defer s.mu.Unlock()
	for q := int32(7); q < 10; q++ {
		if s.lookup(key{algo: core.Dynamic, q: q, k: 4}) == nil {
			t.Errorf("recent key q=%d evicted", q)
		}
	}
	if s.lookup(key{algo: core.Dynamic, q: 0, k: 4}) != nil {
		t.Error("oldest key survived over budget")
	}
}

// TestLRULookupRefreshesRecency: touching an old entry protects it from
// the next eviction.
func TestLRULookupRefreshesRecency(t *testing.T) {
	budget := int64(2 * (entryOverhead + 8*2))
	c := New(Config{MaxBytes: budget, Shards: 1})
	s := c.shards[0]
	k0 := key{algo: core.Dynamic, q: 0, k: 2}
	k1 := key{algo: core.Dynamic, q: 1, k: 2}
	s.mu.Lock()
	c.insert(s, k0, storeResult(0, 2))
	c.insert(s, k1, storeResult(1, 2))
	s.lookup(k0) // refresh: k1 becomes the eviction victim
	c.insert(s, key{algo: core.Dynamic, q: 2, k: 2}, storeResult(2, 2))
	if s.lookup(k0) == nil {
		t.Error("refreshed entry was evicted")
	}
	if s.lookup(k1) != nil {
		t.Error("stale entry survived")
	}
	s.mu.Unlock()
}

// TestOversizedResultNotStored: a result bigger than the shard budget is
// skipped rather than thrashing the whole shard.
func TestOversizedResultNotStored(t *testing.T) {
	c := New(Config{MaxBytes: entryOverhead + 8, Shards: 1})
	s := c.shards[0]
	s.mu.Lock()
	c.insert(s, key{q: 1, k: 100}, storeResult(1, 100))
	s.mu.Unlock()
	if snap := c.Stats(); snap.Entries != 0 || snap.Inserts != 0 {
		t.Errorf("oversized result stored: %+v", snap)
	}
}

// TestKeyIncludesAlgorithmAndK: responses never cross algorithm or k
// boundaries.
func TestKeyIncludesAlgorithmAndK(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20, Shards: 1})
	s := c.shards[0]
	s.mu.Lock()
	c.insert(s, key{algo: core.Dynamic, q: 1, k: 2}, storeResult(1, 2))
	if s.lookup(key{algo: core.Static, q: 1, k: 2}) != nil {
		t.Error("hit across algorithms")
	}
	if s.lookup(key{algo: core.Dynamic, q: 1, k: 3}) != nil {
		t.Error("hit across k")
	}
	if s.lookup(key{algo: core.Dynamic, q: 1, k: 2, gen: 1}) != nil {
		t.Error("hit across generations")
	}
	s.mu.Unlock()
}

// countingTarget serves synthetic results and counts the queries that
// actually reach it.
type countingTarget struct {
	calls   chan int32
	partial bool
	err     error
	block   chan struct{} // non-nil: QueryContext blocks until closed or ctx done
	ctxErrs chan error    // non-nil: receives the execution ctx's state on unblock
}

func (c *countingTarget) QueryContext(ctx context.Context, a core.Algorithm, q int32, k int) (*core.Result, error) {
	if c.calls != nil {
		c.calls <- q
	}
	if c.block != nil {
		select {
		case <-c.block:
		case <-ctx.Done():
			if c.ctxErrs != nil {
				c.ctxErrs <- ctx.Err()
			}
			return nil, fmt.Errorf("countingTarget: %w", ctx.Err())
		}
	}
	if c.err != nil {
		return nil, c.err
	}
	return &core.Result{Query: q, K: k, Entries: []rank.Entry{{Node: q + 1, Rank: 1}}, Partial: c.partial}, nil
}

func (c *countingTarget) QueryManyContext(ctx context.Context, a core.Algorithm, queries []int32, k int) ([]*core.Result, error) {
	out := make([]*core.Result, len(queries))
	for i, q := range queries {
		res, err := c.QueryContext(ctx, a, q, k)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

func (c *countingTarget) Size() int     { return 2 }
func (c *countingTarget) Indexed() bool { return false }
