package cache

import (
	"context"
	"sync/atomic"

	"rkranks/internal/core"
)

// group is the reference-counted execution context shared by the flights
// one backend call produces: a single cache miss, or the whole miss set
// of one batch (which the inner backend serves with ONE QueryManyContext
// call, so the flights necessarily live and die together).
//
// The context is detached from any individual caller (WithoutCancel), so
// no single waiter's disconnect kills the flight for everyone else.
// Instead each waiter — the leader included — holds one ticket; a waiter
// that stops waiting (result delivered, or its own context canceled)
// releases its ticket, and the group context is canceled only when the
// last ticket is gone. The engine layer then stops the in-flight
// traversal and refinements within a bounded number of settles.
type group struct {
	ctx     context.Context
	cancel  context.CancelFunc
	tickets atomic.Int64
}

// newGroup derives the detached execution context from the leader's.
func newGroup(parent context.Context) *group {
	ctx, cancel := context.WithCancel(context.WithoutCancel(parent))
	return &group{ctx: ctx, cancel: cancel}
}

// join takes one waiter ticket.
func (g *group) join() { g.tickets.Add(1) }

// leave releases one waiter ticket, canceling the execution context when
// no waiter remains.
func (g *group) leave() {
	if g.tickets.Add(-1) == 0 {
		g.cancel()
	}
}

// flight is one in-progress query other callers can coalesce onto. res
// and err are written exactly once, before done is closed.
type flight struct {
	group *group
	done  chan struct{}
	res   *core.Result
	err   error
}

func newFlight(g *group) *flight {
	return &flight{group: g, done: make(chan struct{})}
}

// complete publishes the outcome. The caller must already have removed
// the flight from its shard's registry (under the shard lock) so no new
// waiter can join a completed flight.
func (f *flight) complete(res *core.Result, err error) {
	f.res, f.err = res, err
	close(f.done)
}

// wait blocks until the flight completes or ctx is canceled, releasing
// the caller's group ticket either way. A follower that gives up mid-
// flight gets its own context error immediately; the flight keeps
// running for the remaining waiters.
func (f *flight) wait(ctx context.Context) (*core.Result, error) {
	select {
	case <-f.done:
		f.group.leave()
		return f.res, f.err
	case <-ctx.Done():
		f.group.leave()
		return nil, ctx.Err()
	}
}
