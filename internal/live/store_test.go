package live

import (
	"context"
	"errors"
	"testing"
	"time"

	"rkranks/internal/core"
	"rkranks/internal/graph"
	"rkranks/internal/hub"
	"rkranks/internal/ridx"
	tg "rkranks/internal/testgraphs"
)

func mustStore(t *testing.T, g *graph.Graph, cfg Config) *Store {
	t.Helper()
	s, err := NewStore(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewStoreValidation(t *testing.T) {
	g := tg.Path(10)
	// A serial index is not shareable across the pool.
	serial, err := ridx.Build(g, ridx.BuildParams{Hubs: []int32{0}, M: 5, K: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStore(g, Config{Index: serial}); err == nil {
		t.Error("serial index accepted")
	}
	// Shape mismatches.
	small := ridx.NewSharded(5, 8)
	if _, err := NewStore(g, Config{Index: small}); err == nil {
		t.Error("index with wrong N accepted")
	}
	if _, err := NewStore(nil, Config{}); err == nil {
		t.Error("nil graph accepted")
	}
}

func TestStorePatchVsRebuildCounters(t *testing.T) {
	ctx := context.Background()
	s := mustStore(t, tg.Path(12), Config{PoolSize: 1})

	if gen := s.Generation(); gen != 1 {
		t.Fatalf("boot generation %d, want 1", gen)
	}

	// Weight-only: patch path.
	info, err := s.Mutate(ctx, []graph.Mutation{graph.SetWeight(0, 1, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if info.Rebuilt || info.Generation != 2 || info.Applied != 1 {
		t.Fatalf("patch info: %+v", info)
	}

	// Topology: rebuild path.
	info, err = s.Mutate(ctx, []graph.Mutation{graph.InsertEdge(0, 5, 1), graph.AddVertices(2)})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Rebuilt || info.Generation != 3 || info.Nodes != 14 {
		t.Fatalf("rebuild info: %+v", info)
	}

	snap, ok := s.MutationSnapshot().(*Snapshot)
	if !ok {
		t.Fatalf("MutationSnapshot: %T", s.MutationSnapshot())
	}
	if snap.Generation != 3 || snap.AppliedBatches != 2 || snap.AppliedOps != 3 ||
		snap.Patches != 1 || snap.Rebuilds != 1 {
		t.Fatalf("snapshot: %+v", snap)
	}

	// New vertices are queryable after the rebuild.
	if _, err := s.QueryContext(ctx, core.Dynamic, 13, 3); err != nil {
		t.Fatalf("query on added vertex: %v", err)
	}
}

func TestStoreLabelLifecycle(t *testing.T) {
	ctx := context.Background()
	g := tg.Path(16)
	roots := hub.Order(g, hub.DegreeFirst, g.N(), hub.Options{})
	labels, err := hub.BuildLabels(g, roots, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := mustStore(t, g, Config{PoolSize: 1, Labels: labels})

	if !s.HubLabeled() || s.LabelsStale() {
		t.Fatal("boot state must be labeled and fresh")
	}
	if s.HubLabelBytes() == 0 {
		t.Fatal("fresh labels report zero bytes")
	}

	if _, err := s.Mutate(ctx, []graph.Mutation{graph.SetWeight(0, 1, 2.5)}); err != nil {
		t.Fatal(err)
	}
	// HubLabel stays servable throughout (Dynamic fallback while stale).
	if !s.HubLabeled() {
		t.Fatal("HubLabeled flipped false under churn")
	}
	if _, err := s.QueryContext(ctx, core.HubLabel, 3, 4); err != nil {
		t.Fatalf("HubLabel query while stale: %v", err)
	}

	wait, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := s.AwaitLabels(wait); err != nil {
		t.Fatalf("await: %v", err)
	}
	if s.LabelsStale() {
		t.Fatal("labels still stale after AwaitLabels")
	}
	snap := s.MutationSnapshot().(*Snapshot)
	if snap.Relabels == 0 {
		t.Fatalf("no relabel recorded: %+v", snap)
	}
	// Relabeling must not have moved the generation (labels cannot change
	// answers).
	if s.Generation() != 2 {
		t.Fatalf("relabel moved generation to %d", s.Generation())
	}
}

func TestStoreRelabelDisabled(t *testing.T) {
	ctx := context.Background()
	g := tg.Path(10)
	roots := hub.Order(g, hub.DegreeFirst, g.N(), hub.Options{})
	labels, err := hub.BuildLabels(g, roots, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := mustStore(t, g, Config{PoolSize: 1, Labels: labels, Relabel: RelabelParams{Disable: true}})
	if _, err := s.Mutate(ctx, []graph.Mutation{graph.SetWeight(0, 1, 9)}); err != nil {
		t.Fatal(err)
	}
	// Labels stay stale forever, but HubLabel keeps answering via the
	// fallback.
	if !s.LabelsStale() {
		t.Fatal("labels not stale after mutation")
	}
	res, err := s.QueryContext(ctx, core.HubLabel, 2, 3)
	if err != nil {
		t.Fatalf("HubLabel with relabel disabled: %v", err)
	}
	if res.Generation != 2 {
		t.Fatalf("generation %d, want 2", res.Generation)
	}
}

func TestStoreBatchAtomicity(t *testing.T) {
	ctx := context.Background()
	s := mustStore(t, tg.Path(8), Config{PoolSize: 1})
	// Valid op followed by an invalid one: nothing applies.
	_, err := s.Mutate(ctx, []graph.Mutation{
		graph.SetWeight(0, 1, 5),
		graph.InsertEdge(0, 99, 1),
	})
	if !errors.Is(err, core.ErrInvalidArgument) {
		t.Fatalf("want ErrInvalidArgument, got %v", err)
	}
	if !errors.Is(err, graph.ErrBadMutation) {
		t.Fatalf("cause not preserved: %v", err)
	}
	if s.Generation() != 1 {
		t.Fatalf("failed batch advanced generation to %d", s.Generation())
	}
	res, err := s.QueryContext(ctx, core.Dynamic, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Weight 5 from the rejected batch must not be visible: on the path
	// graph 0-1-2..., node 1 still ranks 0 first at the original weight.
	if res.Generation != 1 {
		t.Fatalf("result stamped %d after rejected batch", res.Generation)
	}
}

func TestStoreIndexAcrossRebuild(t *testing.T) {
	ctx := context.Background()
	g := tg.Path(20)
	ix := ridx.NewSharded(g.N(), 10)
	s := mustStore(t, g, Config{PoolSize: 1, Index: ix})
	if !s.Indexed() {
		t.Fatal("store not indexed")
	}
	// Topology mutation swaps in a fresh empty index; Indexed queries must
	// keep working (and re-learn).
	if _, err := s.Mutate(ctx, []graph.Mutation{graph.InsertEdge(0, 10, 0.5)}); err != nil {
		t.Fatal(err)
	}
	if !s.Indexed() {
		t.Fatal("rebuild dropped the index")
	}
	want, err := s.QueryContext(ctx, core.Dynamic, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.QueryContext(ctx, core.Indexed, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Entries {
		if got.Entries[i] != want.Entries[i] {
			t.Fatalf("indexed diverged after rebuild: %v vs %v", got.Entries, want.Entries)
		}
	}
}
