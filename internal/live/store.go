// Package live serves reverse k-ranks queries over a graph that mutates
// while serving: the evolving-workload pillar of the ROADMAP. A Store
// wraps the immutable-graph machinery (graph.Graph, core.Pool,
// ridx.Index, hub.Labels) behind an epoch model:
//
//   - Reads: every query runs against one immutable state snapshot —
//     graph, pool, index, labels, generation — loaded atomically at entry.
//     Hot loops stay lock-free; the only synchronization a query pays is
//     one RLock on the epoch barrier for its duration, which is what lets
//     writers exclude readers per mutation batch.
//   - Cheap writes (weight-only batches): the writer takes the exclusive
//     epoch barrier, quiesces the engine pool, patches the CSR arrays and
//     packed views in place (byte-identical to a rebuild — see
//     graph.PatchWeight), invalidates the dynamic index, and publishes a
//     new state at generation+1. No allocation proportional to the graph.
//   - Expensive writes (topology changes): the replacement graph, pool,
//     and index are built OUTSIDE the barrier while the old state keeps
//     serving, then swapped in atomically. Engines observe swaps between
//     queries, never mid-query: an in-flight query holds its snapshot and
//     finishes on the old, internally consistent state.
//   - Hub labels: a mutation makes any labeling stale, so the new state
//     drops it and HubLabel queries transparently fall back to the
//     Dynamic engine — byte-identical results by the HubLabel contract —
//     until a background relabel completes and swaps a labeled pool back
//     in (same generation: installing labels cannot change answers).
//
// Every applied batch advances the store's generation and calls
// Index.Invalidate (which bumps the index generation), so response caches
// keyed on Generation orphan all pre-mutation entries. Results are
// stamped with their snapshot's generation; a cluster coordinator uses
// the stamps to refuse merges across generations.
//
// The correctness contract — asserted by the oracle tests — is that after
// any mutation schedule, query results are byte-identical to a
// from-scratch build of the mutated graph, for every engine.
package live

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rkranks/internal/core"
	"rkranks/internal/graph"
	"rkranks/internal/hub"
	"rkranks/internal/obs"
	"rkranks/internal/ridx"
)

// RelabelParams configures the background hub relabeling that follows a
// mutation when the store was built with labels. The zero value derives
// Count from the initial labeling and uses the random strategy.
type RelabelParams struct {
	// Count is the number of hub roots (<= 0: the initial labeling's
	// count, or |V| without one).
	Count int
	// Strategy orders the roots (hub.Random is the zero value).
	Strategy hub.Strategy
	// Workers bounds build parallelism (<= 0 uses GOMAXPROCS).
	Workers int
	// Samples and Seed configure root selection (see hub.Options).
	Samples int
	Seed    int64
	// Disable keeps serving HubLabel queries through the Dynamic fallback
	// forever after the first mutation instead of relabeling.
	Disable bool
}

// Config configures NewStore.
type Config struct {
	// Options are the engine options every state's pool is built with.
	// Options.Labels is ignored (pass Labels below); Options.Candidates
	// is ignored when CandidateFunc is set.
	Options core.Options
	// PoolSize sizes each state's engine pool (<= 0 derives a default).
	PoolSize int
	// Index optionally attaches a concurrency-safe dynamic index,
	// enabling Indexed queries. Weight-only batches invalidate it in
	// place; topology changes replace it with an empty index of the same
	// MaxK (it re-learns from traffic, exactly like a cold start).
	Index ridx.Index
	// Labels optionally attaches a hub labeling, enabling HubLabel
	// queries. See RelabelParams for what happens under churn.
	Labels *hub.Labels
	// Relabel tunes the background relabeling (only meaningful with
	// Labels).
	Relabel RelabelParams
	// CandidateFunc recomputes the candidate mask for each rebuilt graph
	// (cluster shard masks must cover vertices added after boot). Nil
	// uses Options.Candidates, extended with true for added vertices.
	CandidateFunc func(*graph.Graph) ([]bool, error)
	// Metrics mirrors the mutation counters into the shared instrument
	// catalog for /metrics. The store keeps its own atomics as well: in
	// an in-process live cluster every shard store shares one catalog
	// (process-wide totals) while MutationSnapshot stays per-shard.
	Metrics *obs.Metrics
}

// state is one immutable serving epoch. Everything a query touches hangs
// off one state pointer, so a swap can never be observed mid-query.
type state struct {
	gen    uint64
	g      *graph.Graph
	edges  *graph.EdgeStore
	pool   *core.Pool
	idx    ridx.Index
	labels *hub.Labels
	// opts are the base engine options this state's pool was built with
	// (Labels stripped; Candidates/Counted sized to g). Relabel installs
	// reuse them to build the labeled replacement pool.
	opts core.Options
}

// MutateInfo reports one applied batch.
type MutateInfo struct {
	// Applied is the number of mutations applied (always the whole
	// batch: batches are atomic).
	Applied int
	// Generation is the store generation after the batch.
	Generation uint64
	// Rebuilt reports the expensive path (graph rebuilt and swapped);
	// false means the in-place weight patch.
	Rebuilt bool
	// Nodes and Edges describe the graph after the batch.
	Nodes int
	Edges int64
}

// Snapshot is the /statsz mutation section (api.Snapshot.Mutations).
type Snapshot struct {
	Generation     uint64 `json:"generation"`
	AppliedBatches uint64 `json:"applied_batches"`
	AppliedOps     uint64 `json:"applied_ops"`
	Patches        uint64 `json:"patches"`
	Rebuilds       uint64 `json:"rebuilds"`
	Relabels       uint64 `json:"relabels"`
	LabelsStale    bool   `json:"labels_stale"`
}

// Store is the live mutable backend. It serves the same query surface as
// core.Pool (so it satisfies server.Backend and cache.Target unchanged)
// plus Mutate, and is safe for any mix of concurrent queries and
// mutation batches.
type Store struct {
	cfg        Config
	hubLabeled bool // labels configured at construction; HubLabel stays servable
	maxK       int  // index MaxK, preserved across rebuilds (0 = no index)

	// mutateMu serializes mutation batches and relabel installs.
	mutateMu sync.Mutex
	// stateMu is the epoch barrier: queries hold RLock for their
	// duration, writers take Lock to patch in place or swap states. The
	// write section is short — a weight patch or a pointer store — so
	// readers are never held out for a rebuild.
	stateMu sync.RWMutex
	state   atomic.Pointer[state]

	batches  atomic.Uint64
	ops      atomic.Uint64
	patches  atomic.Uint64
	rebuilds atomic.Uint64
	relabels atomic.Uint64

	// om mirrors the counters above into the shared catalog (never nil;
	// standalone instruments when Config.Metrics is unset).
	om *obs.Metrics

	relabeling atomic.Bool
}

// NewStore builds a live store serving g.
func NewStore(g *graph.Graph, cfg Config) (*Store, error) {
	if g == nil {
		return nil, fmt.Errorf("live: NewStore requires a graph")
	}
	if cfg.Index != nil {
		if !cfg.Index.Concurrent() {
			return nil, fmt.Errorf("live: Config.Index must be concurrency-safe (ridx.ShardedIndex)")
		}
		if cfg.Index.N() != g.N() {
			return nil, fmt.Errorf("live: index covers %d nodes, graph has %d", cfg.Index.N(), g.N())
		}
	}
	if cfg.Labels != nil && cfg.Labels.N() != g.N() {
		return nil, fmt.Errorf("live: labels cover %d nodes, graph has %d", cfg.Labels.N(), g.N())
	}
	s := &Store{cfg: cfg, hubLabeled: cfg.Labels != nil, om: cfg.Metrics}
	if s.om == nil {
		s.om = obs.NewMetrics(nil)
	}
	if cfg.Index != nil {
		s.maxK = cfg.Index.MaxK()
	}
	opts, err := s.resolveOptions(g)
	if err != nil {
		return nil, err
	}
	// Generations start at 1: on the wire, stamp 0 means "backend without
	// live mutations", which is what lets a cluster merge live and static
	// shard answers without false skew.
	st := &state{gen: 1, g: g, edges: graph.NewEdgeStore(g), idx: cfg.Index, labels: cfg.Labels, opts: opts}
	if st.pool, err = s.buildPool(st.g, opts, st.idx, st.labels); err != nil {
		return nil, err
	}
	s.state.Store(st)
	return s, nil
}

// resolveOptions sizes the base options (Candidates/Counted masks) to g.
func (s *Store) resolveOptions(g *graph.Graph) (core.Options, error) {
	opts := s.cfg.Options
	opts.Labels = nil
	if s.cfg.CandidateFunc != nil {
		mask, err := s.cfg.CandidateFunc(g)
		if err != nil {
			return core.Options{}, fmt.Errorf("live: candidate mask: %w", err)
		}
		opts.Candidates = mask
	} else {
		opts.Candidates = extendMask(opts.Candidates, g.N())
	}
	opts.Counted = extendMask(opts.Counted, g.N())
	return opts, nil
}

// extendMask grows a class mask to n nodes; vertices added after boot
// join the class (they are fresh, unclassified nodes — excluding them
// silently would make them unqueryable forever).
func extendMask(mask []bool, n int) []bool {
	if mask == nil || len(mask) >= n {
		return mask
	}
	out := make([]bool, n)
	copy(out, mask)
	for i := len(mask); i < n; i++ {
		out[i] = true
	}
	return out
}

// buildPool constructs one state's engine pool.
func (s *Store) buildPool(g *graph.Graph, opts core.Options, idx ridx.Index, labels *hub.Labels) (*core.Pool, error) {
	opts.Labels = labels
	if idx != nil {
		return core.NewPoolWithIndex(g, opts, s.cfg.PoolSize, idx)
	}
	return core.NewPool(g, opts, s.cfg.PoolSize), nil
}

// --- query surface (server.Backend / cache.Target) ----------------------

// QueryContext answers one query against the current state snapshot,
// stamping the result with the snapshot's generation. HubLabel queries
// run through the Dynamic fallback while the labeling is stale
// (byte-identical results by the HubLabel contract).
func (s *Store) QueryContext(ctx context.Context, a core.Algorithm, q int32, k int) (*core.Result, error) {
	// The live.snapshot span measures the wait for the epoch barrier —
	// the only time a query can be held out by a mutation batch.
	tr := obs.FromContext(ctx)
	sp := tr.Begin(obs.StageLiveSnapshot)
	s.stateMu.RLock()
	defer s.stateMu.RUnlock()
	st := s.state.Load()
	sp.SetAttr("generation", int64(st.gen))
	if s.hubLabeled && st.labels == nil {
		sp.SetAttr("labels_stale", 1)
	}
	tr.End(sp)
	res, err := st.pool.QueryContext(ctx, s.mapAlgorithm(st, a), q, k)
	if err != nil {
		return nil, err
	}
	res.Generation = st.gen
	return res, nil
}

// QueryManyContext is the batch entry point; one snapshot serves the
// whole batch, so every result carries the same generation.
func (s *Store) QueryManyContext(ctx context.Context, a core.Algorithm, queries []int32, k int) ([]*core.Result, error) {
	tr := obs.FromContext(ctx)
	sp := tr.Begin(obs.StageLiveSnapshot)
	s.stateMu.RLock()
	defer s.stateMu.RUnlock()
	st := s.state.Load()
	sp.SetAttr("generation", int64(st.gen))
	tr.End(sp)
	results, err := st.pool.QueryManyContext(ctx, s.mapAlgorithm(st, a), queries, k)
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		if r != nil {
			r.Generation = st.gen
		}
	}
	return results, nil
}

// mapAlgorithm routes HubLabel to Dynamic while the labeling is stale.
// When the store never had labels the request passes through so the pool
// rejects it with the usual typed error.
func (s *Store) mapAlgorithm(st *state, a core.Algorithm) core.Algorithm {
	if a == core.HubLabel && st.labels == nil && s.hubLabeled {
		return core.Dynamic
	}
	return a
}

// Size implements server.Backend (constant across swaps).
func (s *Store) Size() int { return s.state.Load().pool.Size() }

// Indexed implements server.Backend.
func (s *Store) Indexed() bool { return s.state.Load().idx != nil }

// HubLabeled reports whether HubLabel queries are servable. It stays
// true while the labeling is stale — the Dynamic fallback keeps the
// algorithm available with identical results.
func (s *Store) HubLabeled() bool { return s.hubLabeled }

// HubLabelBytes reports the current labeling's footprint (0 while stale).
func (s *Store) HubLabelBytes() int64 {
	if l := s.state.Load().labels; l != nil {
		return l.Bytes()
	}
	return 0
}

// CSRBytes reports the current graph's packed-view footprint.
func (s *Store) CSRBytes() int64 { return s.state.Load().g.CSRBytes() }

// Graph returns the current graph snapshot (serving-layer metadata).
func (s *Store) Graph() *graph.Graph { return s.state.Load().g }

// Generation implements the response-cache probe: the store generation,
// advanced once per applied batch. Monotone for the store's lifetime;
// starts at 1 (0 is the wire's "no live backend" stamp).
func (s *Store) Generation() uint64 { return s.state.Load().gen }

// LabelsStale reports that HubLabel queries are currently served through
// the Dynamic fallback.
func (s *Store) LabelsStale() bool {
	return s.hubLabeled && s.state.Load().labels == nil
}

// MutationSnapshot implements the server /statsz probe.
func (s *Store) MutationSnapshot() any {
	return &Snapshot{
		Generation:     s.Generation(),
		AppliedBatches: s.batches.Load(),
		AppliedOps:     s.ops.Load(),
		Patches:        s.patches.Load(),
		Rebuilds:       s.rebuilds.Load(),
		Relabels:       s.relabels.Load(),
		LabelsStale:    s.LabelsStale(),
	}
}

// --- mutation path ------------------------------------------------------

// Mutate applies one atomic batch: either every mutation applies and the
// generation advances by one, or the store is untouched and a typed
// validation error (wrapping core.ErrInvalidArgument) reports why.
// Batches are serialized; queries keep serving the pre-batch state until
// the swap and are never interrupted mid-query.
func (s *Store) Mutate(ctx context.Context, ms []graph.Mutation) (MutateInfo, error) {
	if len(ms) == 0 {
		return MutateInfo{}, fmt.Errorf("live: empty mutation batch: %w", core.ErrInvalidArgument)
	}
	start := time.Now()
	s.mutateMu.Lock()
	defer s.mutateMu.Unlock()
	if err := ctx.Err(); err != nil {
		return MutateInfo{}, err
	}
	cur := s.state.Load()

	// Validate-and-apply against a clone so a mid-batch failure leaves
	// the store untouched (batch atomicity).
	next := cur.edges.Clone()
	for i, m := range ms {
		if err := next.Apply(m); err != nil {
			return MutateInfo{}, fmt.Errorf("live: mutation %d: %w (%w)", i, err, core.ErrInvalidArgument)
		}
	}

	var info MutateInfo
	var err error
	if graph.WeightOnly(ms) {
		info, err = s.applyPatch(cur, next, ms)
	} else {
		info, err = s.applyRebuild(cur, next)
	}
	if err != nil {
		return MutateInfo{}, err
	}
	s.batches.Add(1)
	s.ops.Add(uint64(len(ms)))
	s.om.MutationBatches.Inc()
	s.om.MutationOps.Add(int64(len(ms)))
	if info.Rebuilt {
		s.om.MutationRebuilds.Inc()
	} else {
		s.om.MutationPatches.Inc()
	}
	s.om.MutationApplySeconds.Observe(time.Since(start).Seconds())
	info.Applied = len(ms)
	if s.hubLabeled && !s.cfg.Relabel.Disable {
		s.kickRelabel()
	}
	return info, nil
}

// applyPatch is the cheap write path: weight-only batches patch the CSR
// arrays in place under the exclusive epoch barrier. The pool quiesce
// inside the barrier is defense in depth — with every query holding the
// barrier's RLock no engine can be borrowed here — and documents the
// invariant the patch relies on: no traversal may be running.
func (s *Store) applyPatch(cur *state, next *graph.EdgeStore, ms []graph.Mutation) (MutateInfo, error) {
	s.stateMu.Lock()
	release := cur.pool.Quiesce()
	for _, m := range ms {
		cur.g.PatchWeight(m.U, m.V, m.Weight)
	}
	if cur.idx != nil {
		cur.idx.Invalidate()
	}
	st := &state{
		gen:   cur.gen + 1,
		g:     cur.g,
		edges: next,
		pool:  cur.pool,
		idx:   cur.idx,
		opts:  cur.opts,
		// labels: nil — weight changes stale any labeling.
	}
	s.state.Store(st)
	release()
	s.stateMu.Unlock()
	s.patches.Add(1)
	return MutateInfo{Generation: st.gen, Nodes: st.g.N(), Edges: st.g.M()}, nil
}

// applyRebuild is the expensive write path: topology changed, so the
// graph, pool, and index are rebuilt outside the barrier (the old state
// keeps serving) and swapped in atomically. The dynamic index restarts
// empty at the same MaxK — its facts are graph-dependent and re-learned
// from traffic — and any labeling is dropped for the background relabel.
func (s *Store) applyRebuild(cur *state, next *graph.EdgeStore) (MutateInfo, error) {
	g2 := next.Build()
	opts, err := s.resolveOptions(g2)
	if err != nil {
		return MutateInfo{}, fmt.Errorf("%w (%w)", err, core.ErrInvalidArgument)
	}
	var idx2 ridx.Index
	if cur.idx != nil {
		idx2 = ridx.NewSharded(g2.N(), s.maxK)
	}
	pool2, err := s.buildPool(g2, opts, idx2, nil)
	if err != nil {
		return MutateInfo{}, err
	}
	st := &state{gen: cur.gen + 1, g: g2, edges: next, pool: pool2, idx: idx2, opts: opts}
	s.stateMu.Lock()
	s.state.Store(st)
	s.stateMu.Unlock()
	s.rebuilds.Add(1)
	return MutateInfo{Generation: st.gen, Rebuilt: true, Nodes: g2.N(), Edges: g2.M()}, nil
}

// --- background relabel -------------------------------------------------

// kickRelabel ensures exactly one background relabel goroutine is alive
// while the labeling is stale. The post-clear re-check closes the race
// where a mutation lands between the goroutine's last staleness check and
// its flag clear — whichever side loses the CAS, someone owns the rebuild.
func (s *Store) kickRelabel() {
	if !s.relabeling.CompareAndSwap(false, true) {
		return
	}
	go func() {
		for {
			s.relabelUntilFresh()
			s.relabeling.Store(false)
			if s.state.Load().labels != nil {
				return
			}
			if !s.relabeling.CompareAndSwap(false, true) {
				return // a newer mutation's kick took over
			}
		}
	}()
}

// relabelUntilFresh rebuilds the hub labeling for the current graph and
// swaps in a labeled pool, repeating if mutations moved the graph on
// while the build ran. Installing labels keeps the generation: HubLabel
// results are byte-identical to Dynamic's, so cached answers stay valid.
func (s *Store) relabelUntilFresh() {
	for {
		st := s.state.Load()
		if st.labels != nil {
			return
		}
		labels, err := s.buildLabels(st.g)
		if err != nil {
			return // keep the Dynamic fallback; the next mutation retries
		}
		s.mutateMu.Lock()
		cur := s.state.Load()
		if cur != st {
			s.mutateMu.Unlock()
			continue // graph moved on; rebuild against the new state
		}
		pool2, err := s.buildPool(cur.g, cur.opts, cur.idx, labels)
		if err != nil {
			s.mutateMu.Unlock()
			return
		}
		fresh := &state{gen: cur.gen, g: cur.g, edges: cur.edges, pool: pool2, idx: cur.idx, labels: labels, opts: cur.opts}
		s.stateMu.Lock()
		s.state.Store(fresh)
		s.stateMu.Unlock()
		s.relabels.Add(1)
		s.om.MutationRelabels.Inc()
		s.mutateMu.Unlock()
		return
	}
}

// buildLabels runs the configured relabeling over g.
func (s *Store) buildLabels(g *graph.Graph) (*hub.Labels, error) {
	p := s.cfg.Relabel
	count := p.Count
	if count <= 0 {
		if s.cfg.Labels != nil {
			count = s.cfg.Labels.HubCount()
		} else {
			count = g.N()
		}
	}
	if count > g.N() {
		count = g.N()
	}
	roots := hub.Order(g, p.Strategy, count, hub.Options{Samples: p.Samples, Seed: p.Seed, Workers: p.Workers})
	return hub.BuildLabels(g, roots, p.Workers)
}

// AwaitLabels blocks until the labeling is fresh or ctx expires; tests
// and operators use it to observe relabel completion deterministically.
func (s *Store) AwaitLabels(ctx context.Context) error {
	for s.LabelsStale() {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
		if !s.relabeling.Load() && s.LabelsStale() {
			// No relabel in flight (e.g. an earlier build failed): kick one.
			s.kickRelabel()
		}
	}
	return nil
}
