package hub

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// On-disk hub-labeling format: the magic string, a version word, a fixed
// header (node count, directedness, hub count, slab entry counts), then
// the flat slabs verbatim in little-endian order. Everything after the
// header is exactly the in-memory representation, so Write/Read round-trip
// byte-identically and loading is one validation pass plus bulk reads —
// no reconstruction. Bump labelVersion on any layout change; readers
// reject versions they do not understand rather than guessing.
const (
	labelMagic   = "RKHL"
	labelVersion = 1
)

// maxLabelChunk bounds single allocations while reading untrusted entry
// counts: slabs are read in chunks so a corrupt header fails on a short
// read instead of a giant up-front allocation.
const maxLabelChunk = 1 << 20

// Write serializes the labeling.
func (l *Labels) Write(w io.Writer) error {
	if _, err := io.WriteString(w, labelMagic); err != nil {
		return err
	}
	directed := uint64(0)
	inEntries := uint64(0)
	if l.directed {
		directed = 1
		inEntries = uint64(len(l.inHub))
	}
	hdr := []uint64{
		labelVersion,
		uint64(l.n),
		directed,
		uint64(len(l.hubs)),
		uint64(len(l.outHub)),
		inEntries, // 0 for undirected: the in slabs alias the out slabs
		uint64(len(l.invNode)),
	}
	for _, h := range hdr {
		if err := binary.Write(w, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	slabs := []any{l.hubs, l.hubOrd, l.outOff, l.outHub, l.outDist}
	if l.directed {
		slabs = append(slabs, l.inOff, l.inHub, l.inDist)
	}
	slabs = append(slabs, l.invOff, l.invNode, l.invDist)
	for _, s := range slabs {
		if err := binary.Write(w, binary.LittleEndian, s); err != nil {
			return err
		}
	}
	return nil
}

// ReadLabels deserializes a labeling written by Write. The caller is
// responsible for checking the labeling matches its graph (N, Directed);
// this function only validates internal consistency.
func ReadLabels(r io.Reader) (*Labels, error) {
	magic := make([]byte, len(labelMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, err
	}
	if string(magic) != labelMagic {
		return nil, fmt.Errorf("hub: bad label magic %q", magic)
	}
	var hdr [7]uint64
	for i := range hdr {
		if err := binary.Read(r, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, err
		}
	}
	if hdr[0] != labelVersion {
		return nil, fmt.Errorf("hub: unsupported label version %d (want %d)", hdr[0], labelVersion)
	}
	n, directed, hubs, outE, inE, invE := hdr[1], hdr[2], hdr[3], hdr[4], hdr[5], hdr[6]
	if n > math.MaxInt32 || hubs == 0 || hubs > n || directed > 1 ||
		outE > math.MaxInt32 || inE > math.MaxInt32 || invE > math.MaxInt32 {
		return nil, fmt.Errorf("hub: corrupt label header: n=%d directed=%d hubs=%d out=%d in=%d inv=%d",
			n, directed, hubs, outE, inE, invE)
	}
	if directed == 0 && inE != 0 {
		return nil, fmt.Errorf("hub: corrupt label header: undirected labeling with %d in-entries", inE)
	}
	l := &Labels{n: int32(n), directed: directed == 1}
	var err error
	if l.hubs, err = readInt32s(r, int(hubs)); err != nil {
		return nil, err
	}
	if l.hubOrd, err = readInt32s(r, int(n)); err != nil {
		return nil, err
	}
	if l.outOff, err = readInt32s(r, int(n)+1); err != nil {
		return nil, err
	}
	if l.outHub, err = readInt32s(r, int(outE)); err != nil {
		return nil, err
	}
	if l.outDist, err = readFloat64s(r, int(outE)); err != nil {
		return nil, err
	}
	if l.directed {
		if l.inOff, err = readInt32s(r, int(n)+1); err != nil {
			return nil, err
		}
		if l.inHub, err = readInt32s(r, int(inE)); err != nil {
			return nil, err
		}
		if l.inDist, err = readFloat64s(r, int(inE)); err != nil {
			return nil, err
		}
	} else {
		l.inOff, l.inHub, l.inDist = l.outOff, l.outHub, l.outDist
	}
	if l.invOff, err = readInt32s(r, int(hubs)+1); err != nil {
		return nil, err
	}
	if l.invNode, err = readInt32s(r, int(invE)); err != nil {
		return nil, err
	}
	if l.invDist, err = readFloat64s(r, int(invE)); err != nil {
		return nil, err
	}
	if err := l.validate(); err != nil {
		return nil, err
	}
	return l, nil
}

// validate cross-checks the deserialized slabs so later queries can index
// without bounds anxiety: offsets must be monotone and end at the slab
// length, hub ordinals and node ids in range, hubOrd consistent with hubs.
func (l *Labels) validate() error {
	for j, rt := range l.hubs {
		if rt < 0 || rt >= l.n {
			return fmt.Errorf("hub: label root %d out of range", rt)
		}
		if l.hubOrd[rt] != int32(j) {
			return fmt.Errorf("hub: root %d has ordinal %d, want %d", rt, l.hubOrd[rt], j)
		}
	}
	for v, ord := range l.hubOrd {
		if ord < -1 || int(ord) >= len(l.hubs) {
			return fmt.Errorf("hub: node %d has ordinal %d out of range", v, ord)
		}
		if ord >= 0 && l.hubs[ord] != int32(v) {
			return fmt.Errorf("hub: node %d claims ordinal %d held by %d", v, ord, l.hubs[ord])
		}
	}
	if err := checkOffsets(l.outOff, len(l.outHub), "out"); err != nil {
		return err
	}
	if err := checkOffsets(l.inOff, len(l.inHub), "in"); err != nil {
		return err
	}
	if err := checkOffsets(l.invOff, len(l.invNode), "inverted"); err != nil {
		return err
	}
	for _, h := range l.outHub {
		if h < 0 || int(h) >= len(l.hubs) {
			return fmt.Errorf("hub: out-label hub ordinal %d out of range", h)
		}
	}
	for _, h := range l.inHub {
		if h < 0 || int(h) >= len(l.hubs) {
			return fmt.Errorf("hub: in-label hub ordinal %d out of range", h)
		}
	}
	for _, t := range l.invNode {
		if t < 0 || t >= l.n {
			return fmt.Errorf("hub: inverted-list node %d out of range", t)
		}
	}
	return nil
}

func checkOffsets(off []int32, entries int, what string) error {
	if len(off) == 0 || off[0] != 0 || int(off[len(off)-1]) != entries {
		return fmt.Errorf("hub: corrupt %s-label offsets", what)
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("hub: non-monotone %s-label offsets at %d", what, i)
		}
	}
	return nil
}

// readInt32s reads c little-endian int32s in bounded chunks.
func readInt32s(r io.Reader, c int) ([]int32, error) {
	out := make([]int32, 0, minInt(c, maxLabelChunk))
	for c > 0 {
		chunk := minInt(c, maxLabelChunk)
		out = append(out, make([]int32, chunk)...)
		if err := binary.Read(r, binary.LittleEndian, out[len(out)-chunk:]); err != nil {
			return nil, err
		}
		c -= chunk
	}
	return out, nil
}

// readFloat64s reads c little-endian float64s in bounded chunks.
func readFloat64s(r io.Reader, c int) ([]float64, error) {
	out := make([]float64, 0, minInt(c, maxLabelChunk))
	for c > 0 {
		chunk := minInt(c, maxLabelChunk)
		out = append(out, make([]float64, chunk)...)
		if err := binary.Read(r, binary.LittleEndian, out[len(out)-chunk:]); err != nil {
			return nil, err
		}
		c -= chunk
	}
	return out, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
