// Package hub implements the hub-selection strategies of Section 5.1 of the
// paper: Random (baseline), Degree First (highest out-degree), and
// Closeness First (highest approximate closeness centrality, estimated by
// sampling as in Eppstein-Wang / the paper's reference [1]).
package hub

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"rkranks/internal/graph"
	"rkranks/internal/sssp"
)

// Strategy identifies a hub-selection heuristic.
type Strategy int

const (
	// Random selects hubs uniformly at random (the paper's baseline).
	Random Strategy = iota
	// DegreeFirst selects the nodes with the highest out-degree.
	DegreeFirst
	// ClosenessFirst selects the nodes with the highest approximate
	// closeness centrality.
	ClosenessFirst
)

// ParseStrategy maps a user-facing name to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "random":
		return Random, nil
	case "degree":
		return DegreeFirst, nil
	case "closeness":
		return ClosenessFirst, nil
	}
	return 0, fmt.Errorf("hub: unknown strategy %q (want random|degree|closeness)", name)
}

// String returns the canonical strategy name.
func (s Strategy) String() string {
	switch s {
	case Random:
		return "random"
	case DegreeFirst:
		return "degree"
	case ClosenessFirst:
		return "closeness"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Options tunes Select.
type Options struct {
	// Samples is the number of SSSP sources used to approximate closeness
	// centrality; 0 picks a default that grows slowly with graph size.
	Samples int
	// Seed drives all randomness (sampling and Random strategy).
	Seed int64
}

// Select returns h hub nodes chosen by the given strategy, sorted by id.
// h is clamped to the node count.
func Select(g *graph.Graph, s Strategy, h int, opts Options) []int32 {
	n := g.N()
	if h > n {
		h = n
	}
	if h <= 0 {
		return nil
	}
	var hubs []int32
	switch s {
	case Random:
		hubs = randomHubs(n, h, opts.Seed)
	case DegreeFirst:
		hubs = topBy(n, h, func(v int32) float64 { return float64(g.OutDegree(v)) })
	case ClosenessFirst:
		hubs = topBy(n, h, closenessScores(g, opts))
	default:
		panic(fmt.Sprintf("hub: unknown strategy %d", s))
	}
	sort.Slice(hubs, func(i, j int) bool { return hubs[i] < hubs[j] })
	return hubs
}

func randomHubs(n, h int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	hubs := make([]int32, h)
	for i := 0; i < h; i++ {
		hubs[i] = int32(perm[i])
	}
	return hubs
}

// topBy returns the h nodes with the highest score, breaking ties toward
// smaller ids for determinism.
func topBy(n, h int, score func(int32) float64) []int32 {
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		si, sj := score(ids[i]), score(ids[j])
		if si != sj {
			return si > sj
		}
		return ids[i] < ids[j]
	})
	return append([]int32(nil), ids[:h]...)
}

// closenessScores estimates closeness centrality C(v) = 1 / sum_u d(u, v)
// by running full SSSPs from a small random sample of sources and summing
// the observed distances per target. Unreached targets are penalized with
// the largest finite distance seen, so disconnected fringe nodes score low.
func closenessScores(g *graph.Graph, opts Options) func(int32) float64 {
	n := g.N()
	samples := opts.Samples
	if samples <= 0 {
		samples = defaultSamples(n)
	}
	if samples > n {
		samples = n
	}
	rng := rand.New(rand.NewSource(opts.Seed ^ 0x5eed))
	perm := rng.Perm(n)

	farness := make([]float64, n)
	dist := make([]float64, n)
	s := sssp.New(g)
	for i := 0; i < samples; i++ {
		src := int32(perm[i])
		sssp.AllDistances(s, src, dist)
		maxFinite := 0.0
		for _, d := range dist {
			if !math.IsInf(d, 1) && d > maxFinite {
				maxFinite = d
			}
		}
		penalty := 2 * (maxFinite + 1)
		for v := 0; v < n; v++ {
			d := dist[v]
			if math.IsInf(d, 1) {
				d = penalty
			}
			farness[v] += d
		}
	}
	return func(v int32) float64 {
		f := farness[v]
		if f <= 0 {
			return math.Inf(1) // isolated sample set; arbitrary high score
		}
		return 1 / f
	}
}

func defaultSamples(n int) int {
	switch {
	case n <= 64:
		return n
	case n <= 4096:
		return 32
	default:
		return 16
	}
}
