// Package hub implements the hub-selection strategies of Section 5.1 of the
// paper: Random (baseline), Degree First (highest out-degree), and
// Closeness First (highest approximate closeness centrality, estimated by
// sampling as in Eppstein-Wang / the paper's reference [1]).
package hub

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"rkranks/internal/graph"
	"rkranks/internal/sssp"
)

// Strategy identifies a hub-selection heuristic.
type Strategy int

const (
	// Random selects hubs uniformly at random (the paper's baseline).
	Random Strategy = iota
	// DegreeFirst selects the nodes with the highest out-degree.
	DegreeFirst
	// ClosenessFirst selects the nodes with the highest approximate
	// closeness centrality.
	ClosenessFirst
)

// ParseStrategy maps a user-facing name to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "random":
		return Random, nil
	case "degree":
		return DegreeFirst, nil
	case "closeness":
		return ClosenessFirst, nil
	}
	return 0, fmt.Errorf("hub: unknown strategy %q (want random|degree|closeness)", name)
}

// String returns the canonical strategy name.
func (s Strategy) String() string {
	switch s {
	case Random:
		return "random"
	case DegreeFirst:
		return "degree"
	case ClosenessFirst:
		return "closeness"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Options tunes Select and Order.
type Options struct {
	// Samples is the number of SSSP sources used to approximate closeness
	// centrality; 0 picks a default that grows slowly with graph size.
	Samples int
	// Seed drives all randomness (sampling and Random strategy).
	Seed int64
	// Workers bounds the goroutines running closeness-sampling SSSPs;
	// <= 0 uses GOMAXPROCS. Scores are identical for every worker count.
	Workers int
}

// Select returns h hub nodes chosen by the given strategy, sorted by id.
// h is clamped to the node count.
func Select(g *graph.Graph, s Strategy, h int, opts Options) []int32 {
	hubs := Order(g, s, h, opts)
	sort.Slice(hubs, func(i, j int) bool { return hubs[i] < hubs[j] })
	return hubs
}

// Order returns h hub nodes in strategy-priority order — most preferred
// first (highest degree, highest closeness, or random draw order) — which
// is the root order label construction wants: earlier roots prune later
// searches, so the most central nodes must come first. Select is Order
// followed by an id sort. h is clamped to the node count.
func Order(g *graph.Graph, s Strategy, h int, opts Options) []int32 {
	n := g.N()
	if h > n {
		h = n
	}
	if h <= 0 {
		return nil
	}
	switch s {
	case Random:
		return randomHubs(n, h, opts.Seed)
	case DegreeFirst:
		return topBy(n, h, func(v int32) float64 { return float64(g.OutDegree(v)) })
	case ClosenessFirst:
		return topBy(n, h, closenessScores(g, opts))
	default:
		panic(fmt.Sprintf("hub: unknown strategy %d", s))
	}
}

func randomHubs(n, h int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	hubs := make([]int32, h)
	for i := 0; i < h; i++ {
		hubs[i] = int32(perm[i])
	}
	return hubs
}

// topBy returns the h nodes with the highest score, breaking ties toward
// smaller ids for determinism.
func topBy(n, h int, score func(int32) float64) []int32 {
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		si, sj := score(ids[i]), score(ids[j])
		if si != sj {
			return si > sj
		}
		return ids[i] < ids[j]
	})
	return append([]int32(nil), ids[:h]...)
}

// closenessScores estimates closeness centrality C(v) = 1 / sum_u d(u, v)
// by running full SSSPs from a small random sample of sources and summing
// the observed distances per target. Unreached targets are penalized with
// the largest finite distance seen, so disconnected fringe nodes score low.
//
// The sample SSSPs run on a bounded worker pool (the shared-counter
// pattern of core.FanOut) — they dominate hub-selection boot cost on road
// graphs — but the farness accumulation stays serial in sample order, so
// the floating-point sums and therefore the selected hubs are identical
// for every worker count.
func closenessScores(g *graph.Graph, opts Options) func(int32) float64 {
	n := g.N()
	samples := opts.Samples
	if samples <= 0 {
		samples = defaultSamples(n)
	}
	if samples > n {
		samples = n
	}
	rng := rand.New(rand.NewSource(opts.Seed ^ 0x5eed))
	perm := rng.Perm(n)

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > samples {
		workers = samples
	}

	farness := make([]float64, n)
	// One distance array per wave slot; waves of size `workers` run their
	// SSSPs concurrently, then a serial pass folds each slot into farness
	// in sample order.
	dists := make([][]float64, workers)
	searches := make([]*sssp.Search, workers)
	for i := range dists {
		dists[i] = make([]float64, n)
		searches[i] = sssp.New(g)
	}
	for lo := 0; lo < samples; lo += workers {
		hi := lo + workers
		if hi > samples {
			hi = samples
		}
		var wg sync.WaitGroup
		for w := 0; w < hi-lo; w++ {
			wg.Add(1)
			go func(slot int) {
				defer wg.Done()
				sssp.AllDistances(searches[slot], int32(perm[lo+slot]), dists[slot])
			}(w)
		}
		wg.Wait()
		for i := lo; i < hi; i++ {
			dist := dists[i-lo]
			maxFinite := 0.0
			for _, d := range dist {
				if !math.IsInf(d, 1) && d > maxFinite {
					maxFinite = d
				}
			}
			penalty := 2 * (maxFinite + 1)
			for v := 0; v < n; v++ {
				d := dist[v]
				if math.IsInf(d, 1) {
					d = penalty
				}
				farness[v] += d
			}
		}
	}
	return func(v int32) float64 {
		f := farness[v]
		if f <= 0 {
			return math.Inf(1) // isolated sample set; arbitrary high score
		}
		return 1 / f
	}
}

func defaultSamples(n int) int {
	switch {
	case n <= 64:
		return n
	case n <= 4096:
		return 32
	default:
		return 16
	}
}
