package hub

import (
	"testing"

	"rkranks/internal/gen"
	"rkranks/internal/graph"
	tg "rkranks/internal/testgraphs"
)

func assertValidHubSet(t *testing.T, hubs []int32, h, n int) {
	t.Helper()
	if len(hubs) != h {
		t.Fatalf("got %d hubs, want %d", len(hubs), h)
	}
	seen := map[int32]bool{}
	for i, v := range hubs {
		if v < 0 || int(v) >= n {
			t.Fatalf("hub %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate hub %d", v)
		}
		seen[v] = true
		if i > 0 && hubs[i-1] >= v {
			t.Fatalf("hubs not sorted: %v", hubs)
		}
	}
}

func TestRandomHubs(t *testing.T) {
	g := gen.GNM(50, 100, false, 1)
	hubs := Select(g, Random, 10, Options{Seed: 3})
	assertValidHubSet(t, hubs, 10, 50)
	again := Select(g, Random, 10, Options{Seed: 3})
	for i := range hubs {
		if hubs[i] != again[i] {
			t.Fatal("random selection not deterministic for a fixed seed")
		}
	}
	other := Select(g, Random, 10, Options{Seed: 4})
	same := true
	for i := range hubs {
		if hubs[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical hub sets")
	}
}

func TestDegreeFirstPicksHighestDegrees(t *testing.T) {
	// Star: node 0 has degree 5, spokes degree 1.
	g := tg.Star([]float64{1, 1, 1, 1, 1})
	hubs := Select(g, DegreeFirst, 1, Options{})
	if len(hubs) != 1 || hubs[0] != 0 {
		t.Fatalf("hubs = %v, want [0]", hubs)
	}
	// Ties break toward smaller ids.
	hubs = Select(g, DegreeFirst, 3, Options{})
	assertValidHubSet(t, hubs, 3, g.N())
	if hubs[0] != 0 || hubs[1] != 1 || hubs[2] != 2 {
		t.Errorf("tie-break order: %v", hubs)
	}
}

func TestClosenessFirstPicksCenter(t *testing.T) {
	// Path 0-1-2-3-4: node 2 has minimum farness.
	g := tg.Path(5)
	hubs := Select(g, ClosenessFirst, 1, Options{Samples: 5})
	if len(hubs) != 1 || hubs[0] != 2 {
		t.Fatalf("closeness hub = %v, want [2]", hubs)
	}
}

func TestClosenessHandlesDisconnected(t *testing.T) {
	b := graph.NewBuilder(false)
	b.EnsureNodes(6)
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(1, 2, 1)
	// 3,4,5 isolated
	g := b.Finalize()
	hubs := Select(g, ClosenessFirst, 2, Options{Samples: 6})
	assertValidHubSet(t, hubs, 2, 6)
	for _, h := range hubs {
		if h > 2 {
			t.Errorf("isolated node %d chosen over connected ones", h)
		}
	}
}

func TestSelectClamps(t *testing.T) {
	g := tg.Path(4)
	hubs := Select(g, Random, 100, Options{})
	if len(hubs) != 4 {
		t.Errorf("clamp failed: %d hubs", len(hubs))
	}
	if hubs := Select(g, Random, 0, Options{}); hubs != nil {
		t.Errorf("h=0 returned %v", hubs)
	}
}

func TestParseStrategy(t *testing.T) {
	for name, want := range map[string]Strategy{
		"random": Random, "degree": DegreeFirst, "closeness": ClosenessFirst,
	} {
		got, err := ParseStrategy(name)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v", name, got, err)
		}
		if got.String() != name {
			t.Errorf("String() = %q, want %q", got.String(), name)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("bogus strategy accepted")
	}
	if s := Strategy(99).String(); s == "" {
		t.Error("unknown strategy has empty String")
	}
}

func TestDefaultSamplesScaling(t *testing.T) {
	if defaultSamples(10) != 10 {
		t.Error("tiny graphs should sample everything")
	}
	if s := defaultSamples(1000); s != 32 {
		t.Errorf("mid-size samples = %d", s)
	}
	if s := defaultSamples(1e6); s != 16 {
		t.Errorf("large samples = %d", s)
	}
}

func TestDegreeFirstOnDirected(t *testing.T) {
	g := tg.Cycle(5) // every node has out-degree 1
	hubs := Select(g, DegreeFirst, 2, Options{})
	assertValidHubSet(t, hubs, 2, 5)
	if hubs[0] != 0 || hubs[1] != 1 {
		t.Errorf("uniform-degree tie-break: %v", hubs)
	}
}
