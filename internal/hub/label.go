package hub

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"rkranks/internal/graph"
	"rkranks/internal/sssp"
)

// This file extends the package from hub *selection* to full 2-hop label
// construction (the ReHub direction): a pruned landmark labeling built
// over the graph's CSR views, stored in flat int32/float64 slabs, and
// queryable without touching the graph. Every label entry's distance is
// the length of a real path, so label-derived distances are upper bounds
// on true shortest-path distances — exact whenever one endpoint is a root
// (the pruned-labeling cover invariant) — which is what lets the HubLabel
// engine (internal/core) use label scans as certified rank lower bounds
// without ever risking the canonical result.

// labEntry is one in-construction label entry: a hub ordinal (position in
// the root order) and the shortest-path distance to or from that hub.
// Ordinals, not node ids, so entries appended in commit order are already
// sorted and two labels merge with a single linear pass.
type labEntry struct {
	ord  int32
	dist float64
}

// Labels is an immutable pruned 2-hop hub labeling. For every node u it
// stores an out-label (hubs h with d(u, h)) and an in-label (hubs h with
// d(h, u)); for undirected graphs the two are one shared slab. It also
// keeps, per hub, the inverted in-list — every node carrying that hub in
// its in-label, sorted by distance — which is the access path of the
// HubLabel engine's rank scans. Labels are read-only after construction
// and safe to share across any number of engines and pools.
type Labels struct {
	n        int32
	directed bool
	hubs     []int32 // root node ids, in build (priority) order
	hubOrd   []int32 // node id -> ordinal in hubs, -1 for non-roots

	// Out-labels in CSR layout: node u's entries occupy
	// outHub/outDist[outOff[u]:outOff[u+1]], sorted by (distance, hub
	// ordinal) ascending — distance-major so the engine's threshold scans
	// stop at the first too-far hub instead of filtering all of them.
	outOff  []int32
	outHub  []int32
	outDist []float64

	// In-labels, same layout. Alias the out slabs when undirected.
	inOff  []int32
	inHub  []int32
	inDist []float64

	// Inverted in-lists: hub ordinal j's entries occupy
	// invNode/invDist[invOff[j]:invOff[j+1]], sorted by (dist, node).
	invOff  []int32
	invNode []int32
	invDist []float64
}

// waveSize is the number of root searches batched per parallel wave. It is
// a constant — NOT derived from the worker count — so the wave partition,
// and with it every prune decision and the final labeling, is identical
// regardless of how many workers run the searches.
const waveSize = 32

// BuildLabels constructs a pruned 2-hop labeling over g rooted at roots,
// in order: earlier roots prune later searches, so roots should arrive in
// priority order (see Order), most central first. workers bounds the
// goroutines running root searches (<= 0 uses GOMAXPROCS); the result is
// byte-identical for every worker count. With len(roots) == g.N() the
// labeling is complete (label distances equal true distances for every
// reachable pair); smaller root sets trade coverage for footprint.
func BuildLabels(g *graph.Graph, roots []int32, workers int) (*Labels, error) {
	n := g.N()
	if len(roots) == 0 {
		return nil, fmt.Errorf("hub: BuildLabels needs at least one root")
	}
	hubOrd := make([]int32, n)
	for i := range hubOrd {
		hubOrd[i] = -1
	}
	for j, r := range roots {
		if r < 0 || int(r) >= n {
			return nil, fmt.Errorf("hub: root %d out of range [0,%d)", r, n)
		}
		if hubOrd[r] >= 0 {
			return nil, fmt.Errorf("hub: duplicate root %d", r)
		}
		hubOrd[r] = int32(j)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	b := &labelBuilder{
		g:        g,
		directed: g.Directed(),
		roots:    roots,
		out:      make([][]labEntry, n),
	}
	if b.directed {
		b.in = make([][]labEntry, n)
	} else {
		b.in = b.out
	}
	b.fwdKept = make([][]nodeDist, len(roots))

	// Per-worker search state, reused across waves.
	if workers > waveSize {
		workers = waveSize
	}
	states := make([]*searchState, workers)
	for i := range states {
		states[i] = newSearchState(g, len(roots))
	}

	scratch := newSearchState(g, len(roots)) // serial commit-time re-filter
	results := make([]waveResult, waveSize)
	for lo := 0; lo < len(roots); lo += waveSize {
		hi := lo + waveSize
		if hi > len(roots) {
			hi = len(roots)
		}
		wave := roots[lo:hi]
		// Parallel phase: every root in the wave searches against the
		// labels committed by previous waves only — a frozen snapshot, so
		// scheduling cannot influence what any search sees.
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers && w < len(wave); w++ {
			wg.Add(1)
			go func(st *searchState) {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(wave) {
						return
					}
					results[i] = b.searchRoot(st, wave[i])
				}
			}(states[w])
		}
		wg.Wait()
		// Serial phase: commit in root order, re-filtering each root's
		// survivors against everything committed so far — including the
		// earlier roots of this same wave, which the parallel searches
		// could not see. Commit order is fixed, so the labeling is
		// deterministic for any worker count.
		for i := range wave {
			b.commit(scratch, int32(lo+i), results[i])
			results[i] = waveResult{}
		}
	}

	return b.assemble(hubOrd)
}

// nodeDist is one settled (node, distance) pair of a root search.
type nodeDist struct {
	node int32
	dist float64
}

// waveResult carries one root search's surviving settles to the commit
// phase: fwd holds d(root, v) pairs (in-label candidates), rev holds
// d(v, root) pairs (out-label candidates; nil for undirected graphs,
// where fwd serves both directions).
type waveResult struct {
	fwd []nodeDist
	rev []nodeDist
}

// searchState is the per-worker workspace: a Dijkstra search plus a dense
// ordinal-indexed distance array for O(|label|) cover tests.
type searchState struct {
	s       *sssp.Search
	hubDist []float64 // ordinal -> distance from/to the current root
	touched []int32   // ordinals written into hubDist, for cheap reset
}

func newSearchState(g *graph.Graph, hubs int) *searchState {
	st := &searchState{
		s:       sssp.NewLite(g),
		hubDist: make([]float64, hubs),
	}
	for i := range st.hubDist {
		st.hubDist[i] = math.Inf(1)
	}
	return st
}

// load primes hubDist from a root's own label (the left leg of every
// 2-hop cover test); release undoes it.
func (st *searchState) load(label []labEntry) {
	for _, e := range label {
		st.hubDist[e.ord] = e.dist
		st.touched = append(st.touched, e.ord)
	}
}

func (st *searchState) release() {
	for _, ord := range st.touched {
		st.hubDist[ord] = math.Inf(1)
	}
	st.touched = st.touched[:0]
}

type labelBuilder struct {
	g        *graph.Graph
	directed bool
	roots    []int32
	out      [][]labEntry // out-label under construction, per node
	in       [][]labEntry // in-label; aliases out when undirected
	fwdKept  [][]nodeDist // committed forward survivors per root (inverted lists)
}

// searchRoot runs the pruned Dijkstra(s) of one root against the labels
// committed by previous waves. Read-only with respect to builder state.
func (b *labelBuilder) searchRoot(st *searchState, root int32) waveResult {
	var res waveResult
	res.fwd = b.prunedSearch(st, root, false, nil)
	if b.directed {
		res.rev = b.prunedSearch(st, root, true, nil)
	}
	return res
}

// prunedSearch settles nodes from root in distance order, skipping (and
// not expanding through) every node the committed labeling already covers
// at that distance — the standard pruned-landmark-labeling rule. reverse
// selects the transpose traversal (out-label construction on directed
// graphs). When out is non-nil the survivors are appended to it (commit-
// time refiltering reuses the same cover test through coveredAt).
func (b *labelBuilder) prunedSearch(st *searchState, root int32, reverse bool, out []nodeDist) []nodeDist {
	// Left leg of the cover test: for a forward search, paths root -> r ->
	// v need r in the root's OUT-label and v's IN-label; transposed for a
	// reverse search.
	rootLabel, nodeSide := b.out[root], b.in
	if reverse {
		rootLabel, nodeSide = b.in[root], b.out
	}
	st.load(rootLabel)
	defer st.release()
	if reverse {
		st.s.ResetReverse(root)
	} else {
		st.s.Reset(root)
	}
	for {
		v, d, ok := st.s.Pop()
		if !ok {
			return out
		}
		if covered(st.hubDist, nodeSide[v], d) {
			continue // pruned: neither labeled nor expanded
		}
		out = append(out, nodeDist{v, d})
		st.s.Expand(v, d)
	}
}

// covered reports whether some committed hub r certifies a 2-hop path of
// length <= d: hubDist holds the root-side leg per ordinal, label the
// node-side legs. Prune-on-equality keeps labels minimal and preserves
// the cover invariant (the certifying path is itself no longer than d).
func covered(hubDist []float64, label []labEntry, d float64) bool {
	for _, e := range label {
		if hubDist[e.ord]+e.dist <= d {
			return true
		}
	}
	return false
}

// commit re-filters one root's wave survivors against everything
// committed so far — including earlier roots of the same wave — and
// appends what remains to the per-node labels. Runs serially in root
// order; every committed entry has a strictly smaller ordinal than ord,
// so appended entries keep each label sorted by ordinal for free.
func (b *labelBuilder) commit(st *searchState, ord int32, res waveResult) {
	root := b.roots[ord]

	st.load(b.out[root])
	for _, nd := range res.fwd {
		if covered(st.hubDist, b.in[nd.node], nd.dist) {
			continue
		}
		b.in[nd.node] = append(b.in[nd.node], labEntry{ord, nd.dist})
		b.fwdKept[ord] = append(b.fwdKept[ord], nd)
	}
	st.release()

	if !b.directed {
		return
	}
	st.load(b.in[root])
	for _, nd := range res.rev {
		if covered(st.hubDist, b.out[nd.node], nd.dist) {
			continue
		}
		b.out[nd.node] = append(b.out[nd.node], labEntry{ord, nd.dist})
	}
	st.release()
}

// assemble flattens the per-node label slices into the final slabs.
func (b *labelBuilder) assemble(hubOrd []int32) (*Labels, error) {
	n := b.g.N()
	l := &Labels{
		n:        int32(n),
		directed: b.directed,
		hubs:     append([]int32(nil), b.roots...),
		hubOrd:   hubOrd,
	}
	var err error
	if l.outOff, l.outHub, l.outDist, err = flatten(b.out); err != nil {
		return nil, err
	}
	if b.directed {
		if l.inOff, l.inHub, l.inDist, err = flatten(b.in); err != nil {
			return nil, err
		}
	} else {
		l.inOff, l.inHub, l.inDist = l.outOff, l.outHub, l.outDist
	}

	// Inverted in-lists, sorted by (dist, node) so the engine's threshold
	// scans are prefix scans. The forward survivors arrive in settle order
	// (distance ascending); the sort only canonicalizes equal-distance
	// ties by node id.
	total := 0
	for _, kept := range b.fwdKept {
		total += len(kept)
	}
	if total > math.MaxInt32 {
		return nil, fmt.Errorf("hub: labeling has %d in-entries, exceeding int32 offsets", total)
	}
	l.invOff = make([]int32, len(b.roots)+1)
	l.invNode = make([]int32, 0, total)
	l.invDist = make([]float64, 0, total)
	for j, kept := range b.fwdKept {
		sort.Slice(kept, func(a, b int) bool {
			if kept[a].dist != kept[b].dist {
				return kept[a].dist < kept[b].dist
			}
			return kept[a].node < kept[b].node
		})
		for _, nd := range kept {
			l.invNode = append(l.invNode, nd.node)
			l.invDist = append(l.invDist, nd.dist)
		}
		l.invOff[j+1] = int32(len(l.invNode))
	}
	return l, nil
}

// flatten converts per-node entry slices to CSR slabs, sorting each
// node's entries by (distance, ordinal) ascending (see the Labels field
// docs for why distance-major).
func flatten(lists [][]labEntry) (off, hubs []int32, dists []float64, err error) {
	total := 0
	for _, lst := range lists {
		total += len(lst)
	}
	if total > math.MaxInt32 {
		return nil, nil, nil, fmt.Errorf("hub: labeling has %d entries, exceeding int32 offsets", total)
	}
	off = make([]int32, len(lists)+1)
	hubs = make([]int32, 0, total)
	dists = make([]float64, 0, total)
	for v, lst := range lists {
		sort.Slice(lst, func(x, y int) bool {
			if lst[x].dist != lst[y].dist {
				return lst[x].dist < lst[y].dist
			}
			return lst[x].ord < lst[y].ord
		})
		for _, e := range lst {
			hubs = append(hubs, e.ord)
			dists = append(dists, e.dist)
		}
		off[v+1] = int32(len(hubs))
	}
	return off, hubs, dists, nil
}

// N returns the node count of the labeled graph.
func (l *Labels) N() int { return int(l.n) }

// Directed reports the labeled graph's edge orientation.
func (l *Labels) Directed() bool { return l.directed }

// HubCount returns the number of roots.
func (l *Labels) HubCount() int { return len(l.hubs) }

// Hubs returns the root node ids in build (priority) order. The caller
// must not modify the returned slice.
func (l *Labels) Hubs() []int32 { return l.hubs }

// Entries returns the total number of stored label entries (out plus in;
// an undirected labeling's shared slab is counted once).
func (l *Labels) Entries() int64 {
	e := int64(len(l.outHub))
	if l.directed {
		e += int64(len(l.inHub))
	}
	return e
}

// Bytes reports the labeling's memory footprint: every slab it retains,
// the figure /statsz exposes as hub_label_bytes.
func (l *Labels) Bytes() int64 {
	b := int64(len(l.hubs))*4 + int64(len(l.hubOrd))*4
	b += int64(len(l.outOff)+len(l.outHub))*4 + int64(len(l.outDist))*8
	if l.directed {
		b += int64(len(l.inOff)+len(l.inHub))*4 + int64(len(l.inDist))*8
	}
	b += int64(len(l.invOff)+len(l.invNode))*4 + int64(len(l.invDist))*8
	return b
}

// OutLabel returns node u's out-label: parallel slices of hub ordinals
// and distances d(u, hub), sorted by (distance, ordinal) ascending.
// Callers must not modify them.
func (l *Labels) OutLabel(u int32) (ords []int32, dists []float64) {
	lo, hi := l.outOff[u], l.outOff[u+1]
	return l.outHub[lo:hi], l.outDist[lo:hi]
}

// InLabel returns node u's in-label: hub ordinals and distances
// d(hub, u), sorted by (distance, ordinal) ascending. Callers must not
// modify the returned slices.
func (l *Labels) InLabel(u int32) (ords []int32, dists []float64) {
	lo, hi := l.inOff[u], l.inOff[u+1]
	return l.inHub[lo:hi], l.inDist[lo:hi]
}

// Inv exposes the raw inverted-list slabs (offsets by hub ordinal, then
// nodes and distances sorted by (distance, node) within each ordinal's
// range). The HubLabel engine's inner loop reads these directly — one
// bounds-checked slice access per probe instead of a HubList call per
// hub. Callers must not modify the returned slices.
func (l *Labels) Inv() (off, nodes []int32, dists []float64) {
	return l.invOff, l.invNode, l.invDist
}

// HubList returns hub ordinal j's inverted in-list — every node t whose
// in-label carries j, with d(hub_j, t) — sorted by (distance, node).
// Callers must not modify the returned slices.
func (l *Labels) HubList(j int32) (nodes []int32, dists []float64) {
	lo, hi := l.invOff[j], l.invOff[j+1]
	return l.invNode[lo:hi], l.invDist[lo:hi]
}

// HubOrdinal returns u's position in the root order, or -1 when u is not
// a root.
func (l *Labels) HubOrdinal(u int32) int32 { return l.hubOrd[u] }

// Dist returns the label-derived distance from u to v: the best 2-hop
// path through a shared hub. It is an upper bound on the true distance
// for every pair, and equal to it (within floating-point tolerance) for
// certified pairs — see Certified. ok is false when the labels share no
// hub, which for a COMPLETE labeling (HubCount == N) means v is
// unreachable from u.
func (l *Labels) Dist(u, v int32) (float64, bool) {
	oh, od := l.OutLabel(u)
	ih, id := l.InLabel(v)
	// Labels are distance-sorted, not ordinal-sorted, so the join goes
	// through a scratch table. Dist serves oracles, tests, and tooling —
	// the engine's hot path reads the inverted slabs instead — so the
	// per-call allocation is fine.
	left := make(map[int32]float64, len(oh))
	for i, h := range oh {
		left[h] = od[i]
	}
	best := math.Inf(1)
	found := false
	for j, h := range ih {
		if dl, ok := left[h]; ok {
			if d := dl + id[j]; d < best {
				best = d
			}
			found = true
		}
	}
	return best, found
}

// Certified reports whether the labeling certifies Dist(u, v) as the
// exact shortest-path distance (up to floating-point rounding): true when
// either endpoint is a root, by the pruned-labeling cover invariant —
// every pruned entry was covered by a 2-hop path of no greater length
// through an earlier root.
func (l *Labels) Certified(u, v int32) bool {
	return l.hubOrd[u] >= 0 || l.hubOrd[v] >= 0
}
