package hub

import (
	"bytes"
	"math"
	"testing"

	"rkranks/internal/gen"
	"rkranks/internal/graph"
	"rkranks/internal/sssp"
	tg "rkranks/internal/testgraphs"
)

// relTol is the oracle comparison tolerance: label entries are sums of
// real path weights, so they can differ from the reference Dijkstra's sum
// by accumulated ulps, never by more than a relative hair.
const relTol = 1e-9

func closeEnough(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= relTol*scale || diff == 0
}

// labelGraphs is the fuzz corpus the oracle tests sweep: random sparse
// and dense, directed, bichromatic-shaped (skewed), and disconnected.
func labelGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	disconnected := func() *graph.Graph {
		b := graph.NewBuilder(false)
		b.EnsureNodes(60)
		// Two components plus 10 isolated nodes.
		for i := int32(0); i < 24; i++ {
			b.MustAddEdge(i, i+1, float64(i%7)+0.5)
		}
		for i := int32(30); i < 49; i++ {
			b.MustAddEdge(i, i+1, 1.25)
		}
		return b.Finalize()
	}
	return map[string]*graph.Graph{
		"gnm-sparse":   gen.GNM(80, 160, false, 11),
		"gnm-dense":    gen.GNM(60, 600, false, 12),
		"gnm-directed": gen.GNM(70, 420, true, 13),
		"dblp-like":    gen.DBLPLike(gen.DBLPLikeParams{Nodes: 90, AttachPerNode: 3, Seed: 14}),
		"disconnected": disconnected(),
	}
}

// oracleDistances computes the true distance matrix row for src.
func oracleRow(g *graph.Graph, s *sssp.Search, src int32) []float64 {
	row := make([]float64, g.N())
	for i := range row {
		row[i] = math.Inf(1)
	}
	s.Reset(src)
	for {
		v, d, ok := s.Pop()
		if !ok {
			break
		}
		row[v] = d
		s.Expand(v, d)
	}
	return row
}

// TestLabelsMatchDijkstraOracle: for every graph in the corpus and both a
// partial (H = N/4) and a complete (H = N) labeling, Dist agrees with a
// reference Dijkstra on every certified pair — exactly the invariant the
// HubLabel engine's soundness rests on. For the complete labeling every
// pair is certified and ok == false must coincide with unreachability.
func TestLabelsMatchDijkstraOracle(t *testing.T) {
	for name, g := range labelGraphs(t) {
		t.Run(name, func(t *testing.T) {
			s := sssp.New(g)
			n := int32(g.N())
			for _, h := range []int{g.N() / 4, g.N()} {
				if h < 1 {
					h = 1
				}
				roots := Order(g, DegreeFirst, h, Options{Seed: 5})
				labels, err := BuildLabels(g, roots, 0)
				if err != nil {
					t.Fatal(err)
				}
				complete := h == g.N()
				for u := int32(0); u < n; u++ {
					truth := oracleRow(g, s, u)
					for v := int32(0); v < n; v++ {
						got, ok := labels.Dist(u, v)
						reachable := !math.IsInf(truth[v], 1)
						if ok && (!reachable || got < truth[v]*(1-relTol)) {
							// Upper-bound property holds for EVERY pair, even
							// uncertified ones: label entries are real paths.
							t.Fatalf("h=%d: Dist(%d,%d)=%g below true %g", h, u, v, got, truth[v])
						}
						if !labels.Certified(u, v) {
							continue
						}
						if !reachable {
							if ok {
								t.Fatalf("h=%d: Dist(%d,%d)=%g but unreachable", h, u, v, got)
							}
							continue
						}
						if !ok {
							if complete {
								t.Fatalf("h=%d: no label path for certified reachable (%d,%d)", h, u, v)
							}
							continue
						}
						if !closeEnough(got, truth[v]) {
							t.Fatalf("h=%d: Dist(%d,%d)=%g, true %g", h, u, v, got, truth[v])
						}
					}
				}
				if complete {
					// Every pair certified: the cover invariant extended to
					// the full root set.
					for u := int32(0); u < n; u++ {
						for v := int32(0); v < n; v++ {
							if !labels.Certified(u, v) {
								t.Fatalf("complete labeling left (%d,%d) uncertified", u, v)
							}
						}
					}
				}
			}
		})
	}
}

// TestBuildLabelsDeterministicAcrossWorkers: the wave-parallel build
// commits root searches in ordinal order, so the serialized labeling is
// byte-identical for every worker count.
func TestBuildLabelsDeterministicAcrossWorkers(t *testing.T) {
	for name, g := range labelGraphs(t) {
		roots := Order(g, DegreeFirst, g.N()/2+1, Options{Seed: 9})
		var want []byte
		for _, workers := range []int{1, 2, 3, 8} {
			labels, err := BuildLabels(g, roots, workers)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := labels.Write(&buf); err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = buf.Bytes()
				continue
			}
			if !bytes.Equal(want, buf.Bytes()) {
				t.Fatalf("%s: labeling differs between worker counts (workers=%d)", name, workers)
			}
		}
	}
}

// TestLabelIORoundTrip: Write -> ReadLabels -> Write reproduces the exact
// bytes, and the loaded labeling answers Dist identically.
func TestLabelIORoundTrip(t *testing.T) {
	for name, g := range labelGraphs(t) {
		roots := Order(g, DegreeFirst, g.N()/3+1, Options{Seed: 21})
		labels, err := BuildLabels(g, roots, 2)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := labels.Write(&buf); err != nil {
			t.Fatal(err)
		}
		raw := append([]byte(nil), buf.Bytes()...)
		loaded, err := ReadLabels(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if loaded.N() != labels.N() || loaded.Directed() != labels.Directed() ||
			loaded.HubCount() != labels.HubCount() || loaded.Entries() != labels.Entries() ||
			loaded.Bytes() != labels.Bytes() {
			t.Fatalf("%s: metadata changed across round trip", name)
		}
		var again bytes.Buffer
		if err := loaded.Write(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, again.Bytes()) {
			t.Fatalf("%s: round trip not byte-identical", name)
		}
		for u := int32(0); u < int32(g.N()); u += 3 {
			for v := int32(0); v < int32(g.N()); v += 5 {
				d1, ok1 := labels.Dist(u, v)
				d2, ok2 := loaded.Dist(u, v)
				if ok1 != ok2 || (ok1 && d1 != d2) {
					t.Fatalf("%s: Dist(%d,%d) changed across round trip", name, u, v)
				}
			}
		}
	}
}

// TestReadLabelsRejectsCorruption: the loader refuses wrong magic, wrong
// version, truncation, and offset tables that do not validate, instead of
// serving silently wrong distances.
func TestReadLabelsRejectsCorruption(t *testing.T) {
	g := gen.GNM(40, 120, false, 31)
	labels, err := BuildLabels(g, Order(g, DegreeFirst, 10, Options{}), 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := labels.Write(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	mutate := func(name string, f func(b []byte) []byte) {
		b := append([]byte(nil), good...)
		if _, err := ReadLabels(bytes.NewReader(f(b))); err == nil {
			t.Errorf("%s: corrupted labeling accepted", name)
		}
	}
	mutate("bad magic", func(b []byte) []byte { b[0] = 'X'; return b })
	mutate("bad version", func(b []byte) []byte { b[4] = 0xFF; return b })
	mutate("truncated header", func(b []byte) []byte { return b[:10] })
	mutate("truncated slabs", func(b []byte) []byte { return b[:len(b)-9] })
	mutate("huge hub count", func(b []byte) []byte {
		// Header word 3 (after magic + version + n) is the hub count.
		for i := 4 + 24; i < 4+32; i++ {
			b[i] = 0xFF
		}
		return b
	})
	if _, err := ReadLabels(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

// TestBuildLabelsValidation: malformed root lists are refused.
func TestBuildLabelsValidation(t *testing.T) {
	g := tg.Path(5)
	if _, err := BuildLabels(g, []int32{0, 99}, 0); err == nil {
		t.Error("out-of-range root accepted")
	}
	if _, err := BuildLabels(g, []int32{1, 1}, 0); err == nil {
		t.Error("duplicate root accepted")
	}
	if _, err := BuildLabels(g, []int32{-1}, 0); err == nil {
		t.Error("negative root accepted")
	}
	if _, err := BuildLabels(g, nil, 0); err == nil {
		t.Error("empty root list accepted")
	}
}

// TestOrderAgreesWithSelect: Select is Order plus an id sort — same set,
// different arrangement — and Order respects the strategy's priority.
func TestOrderAgreesWithSelect(t *testing.T) {
	g := gen.DBLPLike(gen.DBLPLikeParams{Nodes: 80, AttachPerNode: 3, Seed: 41})
	for _, s := range []Strategy{Random, DegreeFirst, ClosenessFirst} {
		order := Order(g, s, 12, Options{Seed: 3, Samples: 20})
		sel := Select(g, s, 12, Options{Seed: 3, Samples: 20})
		if len(order) != len(sel) {
			t.Fatalf("%v: Order %d hubs, Select %d", s, len(order), len(sel))
		}
		inOrder := map[int32]bool{}
		for _, v := range order {
			inOrder[v] = true
		}
		for _, v := range sel {
			if !inOrder[v] {
				t.Fatalf("%v: Select hub %d missing from Order", s, v)
			}
		}
	}
	// Degree-first order leads with the highest-degree node.
	star := tg.Star([]float64{1, 1, 1, 1})
	if order := Order(star, DegreeFirst, 3, Options{}); order[0] != 0 {
		t.Errorf("degree order = %v, want hub 0 first", order)
	}
}

// TestClosenessScoresWorkerDeterminism: the parallel closeness sweep
// accumulates farness in sample order, so hub choice is identical for
// every worker count.
func TestClosenessScoresWorkerDeterminism(t *testing.T) {
	g := gen.GNM(120, 480, false, 51)
	var want []int32
	for _, workers := range []int{1, 2, 4, 16} {
		got := Order(g, ClosenessFirst, 15, Options{Seed: 7, Samples: 40, Workers: workers})
		if want == nil {
			want = got
			continue
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("workers=%d changed closeness order", workers)
			}
		}
	}
}

// TestLabelAccessors: the slab accessors agree with each other — every
// out-label entry appears in its hub's inverted in-list and vice versa
// (undirected labeling: out == in).
func TestLabelAccessors(t *testing.T) {
	g := gen.GNM(50, 200, false, 61)
	roots := Order(g, DegreeFirst, 20, Options{Seed: 1})
	labels, err := BuildLabels(g, roots, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := labels.Hubs(); len(got) != 20 || got[0] != roots[0] {
		t.Fatalf("Hubs() = %v, want prefix of %v", got, roots)
	}
	for i, r := range roots {
		if labels.HubOrdinal(r) != int32(i) {
			t.Fatalf("HubOrdinal(%d) = %d, want %d", r, labels.HubOrdinal(r), i)
		}
	}
	type key struct {
		ord  int32
		node int32
	}
	inv := map[key]float64{}
	invOff, invNode, invDist := labels.Inv()
	for j := int32(0); j < int32(labels.HubCount()); j++ {
		nodes, dists := labels.HubList(j)
		if len(nodes) != int(invOff[j+1]-invOff[j]) {
			t.Fatalf("HubList(%d) disagrees with Inv offsets", j)
		}
		for x, node := range nodes {
			inv[key{j, node}] = dists[x]
			if invNode[invOff[j]+int32(x)] != node || invDist[invOff[j]+int32(x)] != dists[x] {
				t.Fatalf("Inv slab disagrees with HubList(%d)", j)
			}
		}
	}
	var entries int64
	for u := int32(0); u < int32(g.N()); u++ {
		ords, dists := labels.InLabel(u)
		oOrds, oDists := labels.OutLabel(u)
		if len(ords) != len(oOrds) {
			t.Fatalf("undirected labeling: in/out labels differ at %d", u)
		}
		for i := range ords {
			if ords[i] != oOrds[i] || dists[i] != oDists[i] {
				t.Fatalf("undirected labeling: in/out entries differ at %d", u)
			}
			d, ok := inv[key{ords[i], u}]
			if !ok || d != dists[i] {
				t.Fatalf("label entry (%d, hub %d) missing from inverted list", u, ords[i])
			}
			entries++
		}
	}
	if entries != labels.Entries() {
		t.Fatalf("Entries() = %d, accessors saw %d", labels.Entries(), entries)
	}
	if int64(len(inv)) != entries {
		t.Fatalf("inverted lists hold %d entries, labels hold %d", len(inv), entries)
	}
}
