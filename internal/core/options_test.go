package core

import (
	"testing"

	"rkranks/internal/gen"
	tg "rkranks/internal/testgraphs"
)

func TestParseAlgorithm(t *testing.T) {
	for name, want := range map[string]Algorithm{
		"naive": Naive, "static": Static, "dynamic": Dynamic, "indexed": Indexed,
		"hublabel": HubLabel,
	} {
		got, err := ParseAlgorithm(name)
		if err != nil || got != want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", name, got, err)
		}
		if got.String() != name {
			t.Errorf("String() = %q, want %q", got.String(), name)
		}
	}
	if _, err := ParseAlgorithm("bogus"); err == nil {
		t.Error("bogus algorithm accepted")
	}
	if Algorithm(77).String() == "" {
		t.Error("unknown algorithm empty String")
	}
}

func TestParseBounds(t *testing.T) {
	cases := map[string]Bounds{
		"parent": BoundParent,
		"count":  BoundParent | BoundCount,
		"height": BoundParent | BoundHeight,
		"three":  BoundsAll,
		"all":    BoundsAll,
	}
	for name, want := range cases {
		got, err := ParseBounds(name)
		if err != nil || got != want {
			t.Errorf("ParseBounds(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseBounds("nope"); err == nil {
		t.Error("bad bounds accepted")
	}
}

func TestBoundsString(t *testing.T) {
	cases := map[Bounds]string{
		BoundParent:               "parent",
		BoundParent | BoundCount:  "count",
		BoundParent | BoundHeight: "height",
		BoundsAll:                 "three",
		BoundHeight:               "height", // falls through the named cases? no: alone renders component list
	}
	// The named four:
	for b, want := range cases {
		if b == BoundHeight {
			continue
		}
		if got := b.String(); got != want {
			t.Errorf("%08b String = %q, want %q", b, got, want)
		}
	}
	if got := BoundHeight.String(); got != "height" {
		t.Errorf("BoundHeight alone = %q", got)
	}
	if got := Bounds(0).String(); got != "none" {
		t.Errorf("zero bounds = %q", got)
	}
	if got := (BoundHeight | BoundCount).String(); got != "height+count" {
		t.Errorf("combo = %q", got)
	}
}

func TestEffectiveBounds(t *testing.T) {
	und := tg.Toy()
	dir := tg.Cycle(4)

	o := Options{}
	if b := o.effectiveBounds(und); b != BoundsAll {
		t.Errorf("default undirected = %v", b)
	}
	if b := o.effectiveBounds(dir); b&BoundCount != 0 {
		t.Error("count bound survived a directed graph")
	}
	if b := o.effectiveBounds(dir); b&(BoundParent|BoundHeight) != BoundParent|BoundHeight {
		t.Error("directed graph lost parent/height")
	}

	counted := make([]bool, und.N())
	bi := Options{Counted: counted}
	b := bi.effectiveBounds(und)
	if b&BoundCount != 0 || b&BoundHeight != 0 {
		t.Errorf("bichromatic kept unsound bounds: %v", b)
	}
	if b&BoundParent == 0 {
		t.Error("bichromatic lost the parent bound")
	}

	cand := make([]bool, und.N())
	biC := Options{Candidates: cand}
	if b := biC.effectiveBounds(und); b&BoundCount != 0 {
		t.Error("candidate-restricted graph kept count bound")
	}
	if b := biC.effectiveBounds(und); b&BoundHeight == 0 {
		t.Error("height is sound when all nodes are counted")
	}

	explicit := Options{Bounds: BoundParent}
	if b := explicit.effectiveBounds(und); b != BoundParent {
		t.Errorf("explicit bounds overridden: %v", b)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Refinements: 1, RefineSettled: 10, TreeSettled: 2, PrunedByBound: 3,
		IndexHits: 4, SeededFromIndex: 5, HeightWins: 6, CountWins: 7, ParentWins: 8, RefineAborted: 9}
	b := a
	a.Add(b)
	if a.Refinements != 2 || a.RefineSettled != 20 || a.TreeSettled != 4 ||
		a.PrunedByBound != 6 || a.IndexHits != 8 || a.SeededFromIndex != 10 ||
		a.HeightWins != 12 || a.CountWins != 14 || a.ParentWins != 16 || a.RefineAborted != 18 {
		t.Errorf("Add result: %+v", a)
	}
}

func TestNewEnginePanicsOnBadClassLengths(t *testing.T) {
	g := tg.Toy()
	defer func() {
		if recover() == nil {
			t.Error("short Candidates accepted")
		}
	}()
	NewEngine(g, Options{Candidates: make([]bool, 3)})
}

func TestSetIndexPanicsOnSizeMismatch(t *testing.T) {
	g := tg.Toy()
	other := gen.GNM(20, 30, false, 1)
	e := NewEngine(g, Options{})
	ixGraph := other
	_ = ixGraph
	defer func() {
		if recover() == nil {
			t.Error("mismatched index accepted")
		}
	}()
	// Build a tiny index over the wrong node count.
	e.SetIndex(mustIndex(t, other))
}
