package core

import (
	"fmt"
	"math"
	"strings"

	"rkranks/internal/rank"
)

// Stats records the work an engine performed for one query. The counters
// mirror the paper's performance metrics: Refinements is the "Rank
// Refinement" column reported throughout Section 6, and the bound-win
// counters feed the Table 11 analysis.
//
// Under intra-query parallelism (Options.RefineWorkers > 0) every decision
// counter is still byte-identical to a serial run — speculation never
// changes what the engine decides, only when the work runs — but
// RefineSettled can exceed the serial count (a worker running against a
// stale prune bound settles further before aborting), and the
// Speculative* counters become nonzero. Results never differ.
// The json tags define the wire schema internal/server exposes in query
// responses and /statsz aggregates; like the stats.Table tags they are a
// frozen format — add fields if needed, never rename these keys.
type Stats struct {
	// Refinements counts GetRank invocations (partial Dijkstra searches).
	Refinements int `json:"refinements"`
	// RefineSettled counts nodes settled across all rank refinements.
	RefineSettled int64 `json:"refine_settled"`
	// RefineAborted counts refinements that hit the kRank early-exit.
	RefineAborted int `json:"refine_aborted"`
	// TreeSettled counts nodes dequeued from the SDS-tree traversal.
	TreeSettled int `json:"tree_settled"`
	// PrunedByBound counts candidates skipped because their Theorem-2
	// lower bound (possibly including the Check Dictionary) reached kRank.
	PrunedByBound int `json:"pruned_by_bound"`
	// IndexHits counts candidates whose exact rank came from the Reverse
	// Rank Dictionary, avoiding a refinement.
	IndexHits int `json:"index_hits"`
	// SeededFromIndex counts result entries seeded from the Reverse Rank
	// Dictionary before traversal started.
	SeededFromIndex int `json:"seeded_from_index"`
	// HeightWins / CountWins / ParentWins attribute, for every candidate
	// whose lower bound was evaluated, which Theorem-2 component was the
	// maximum (ties attributed in the order height, count, parent).
	HeightWins int64 `json:"height_wins"`
	CountWins  int64 `json:"count_wins"`
	ParentWins int64 `json:"parent_wins"`
	// SpeculativeRefinements counts refinements launched onto worker
	// goroutines by the intra-query parallel pipeline
	// (Options.RefineWorkers > 0); always 0 for serial queries.
	SpeculativeRefinements int `json:"speculative_refinements"`
	// SpeculativeWasted counts the subset of speculative refinements whose
	// results were discarded because, by the time serial order reached the
	// candidate, the Theorem-2 bound pruned it or an index hit answered it.
	SpeculativeWasted int `json:"speculative_wasted"`
	// SpeculativeStolen counts launched refinements no worker had started
	// by the time serial order needed (or discarded) them; the coordinator
	// reclaimed them, so any needed ranks were computed inline. High values
	// mean the workers are starved — fewer RefineWorkers would do.
	SpeculativeStolen int `json:"speculative_stolen"`
	// SharedTraversals counts refinements resolved by replaying a settle
	// log stored by an earlier query of the same batch instead of running
	// a fresh search (batch execution only — see batchexec.go; always 0
	// for standalone queries). Like the speculative counters, replays
	// change effort accounting, never decisions: a replayed refinement
	// contributes 0 to RefineSettled because no nodes were settled for it.
	SharedTraversals int `json:"batch_shared_traversals"`
	// LabelPruned counts HubLabel candidates pruned because the hub-label
	// scan alone certified Rank > kRank — no Dijkstra work at all (always 0
	// for the other engines).
	LabelPruned int `json:"label_pruned"`
	// LabelFallbacks counts HubLabel candidates the labeling could not
	// disqualify, which therefore fell back to a CSR Dijkstra rank
	// refinement. LabelFallbacks / (LabelFallbacks + LabelPruned) is the
	// fallback rate /statsz reports.
	LabelFallbacks int `json:"label_fallbacks"`
	// LabelScanned counts inverted-list entries visited by hub-label scans.
	LabelScanned int64 `json:"label_entries_scanned"`
}

// Add accumulates other into s (used when averaging over query batches).
func (s *Stats) Add(other Stats) {
	s.Refinements += other.Refinements
	s.RefineSettled += other.RefineSettled
	s.RefineAborted += other.RefineAborted
	s.TreeSettled += other.TreeSettled
	s.PrunedByBound += other.PrunedByBound
	s.IndexHits += other.IndexHits
	s.SeededFromIndex += other.SeededFromIndex
	s.HeightWins += other.HeightWins
	s.CountWins += other.CountWins
	s.ParentWins += other.ParentWins
	s.SpeculativeRefinements += other.SpeculativeRefinements
	s.SpeculativeWasted += other.SpeculativeWasted
	s.SpeculativeStolen += other.SpeculativeStolen
	s.SharedTraversals += other.SharedTraversals
	s.LabelPruned += other.LabelPruned
	s.LabelFallbacks += other.LabelFallbacks
	s.LabelScanned += other.LabelScanned
}

// Result is the answer to one reverse k-ranks query.
//
// Entries is canonical: the minimum K candidates by (rank, node id),
// independent of engine, traversal order, pruning, index state, and —
// for cluster-merged results — shard layout. Every exclusion an engine
// performs is backed by a bound that strictly exceeds the final k-th
// (rank, node id) pair, so boundary ties always tie-break into the
// result by node id rather than by evaluation order.
type Result struct {
	// Query is the query node q.
	Query int32
	// K is the requested result size.
	K int
	// Entries holds the result nodes with their exact Rank(p, q) values,
	// ordered by (rank, node id). len(Entries) < K only when fewer than K
	// nodes can reach q.
	Entries []rank.Entry
	// Partial marks a result assembled from an incomplete candidate set:
	// a cluster coordinator answered in degraded mode while one or more
	// shard backends were unavailable, so entries owned by those shards
	// may be missing. Single-node engines never set it.
	Partial bool
	// Generation stamps the graph generation the answer was computed on.
	// Engines and pools leave it 0; a live mutable backend stamps every
	// result with the generation of the state snapshot it served from, and
	// a cluster coordinator refuses to merge shard answers whose stamps
	// differ (a merge across two graph generations would be silently
	// wrong). It rides the wire as QueryResponse.Generation.
	Generation uint64
	// Stats describes the work performed.
	Stats Stats
	// Trace holds the per-node decision log when Engine.SetTracing is
	// enabled, nil otherwise.
	Trace []TraceEvent
}

// Floor is a certified exclusive bound, in (rank, node id) result order,
// on every candidate a query evaluated but did not return: each withheld
// candidate either cannot reach the query node at all or orders strictly
// after (Rank, Node). A cluster coordinator uses shard floors to certify
// a merged global top-k without transferring every shard's full result
// (see internal/cluster).
type Floor struct {
	// Rank and Node are the k-th returned entry (the floor's witness).
	Rank int32
	Node int32
	// Exhausted reports that the query returned every candidate able to
	// reach the query node: nothing was withheld, the floor is vacuous.
	Exhausted bool
}

// Floor derives the rank floor a full result certifies: a result shorter
// than K exhausted its candidate class, and a full one withholds only
// candidates ordering strictly after its last entry — a consequence of
// Entries being the canonical minimum K by (rank, node id).
func (r *Result) Floor() Floor {
	if len(r.Entries) < r.K {
		return Floor{Exhausted: true}
	}
	last := r.Entries[len(r.Entries)-1]
	return Floor{Rank: last.Rank, Node: last.Node}
}

// Clears reports whether the floor certifies that every withheld
// candidate orders strictly after cutoff in (rank, node id) order — the
// condition under which a shard that returned this floor cannot change a
// merged result whose k-th entry is cutoff.
func (f Floor) Clears(cutoff rank.Entry) bool {
	if f.Exhausted {
		return true
	}
	if f.Rank != cutoff.Rank {
		return f.Rank > cutoff.Rank
	}
	return f.Node >= cutoff.Node
}

// KRank returns the largest rank in the result (the k-th top rank), or 0
// for an empty result.
func (r *Result) KRank() int32 {
	if len(r.Entries) == 0 {
		return 0
	}
	return r.Entries[len(r.Entries)-1].Rank
}

// Nodes returns just the result node ids, in result order.
func (r *Result) Nodes() []int32 {
	out := make([]int32, len(r.Entries))
	for i, e := range r.Entries {
		out[i] = e.Node
	}
	return out
}

// String renders a compact human-readable summary.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "reverse %d-ranks of %d:", r.K, r.Query)
	for _, e := range r.Entries {
		fmt.Fprintf(&b, " %d(rank %d)", e.Node, e.Rank)
	}
	return b.String()
}

// kRankInf is the kRank value while the result heap is not yet full: no
// candidate can be pruned until k results exist.
const kRankInf = int32(math.MaxInt32)

// resultHeap maintains the current best-k (node, rank) entries as a
// max-heap ordered by (rank, node id): the root is the entry that would be
// evicted next. The (rank, node) tie-break makes every engine
// deterministic.
type resultHeap struct {
	k       int
	entries []rank.Entry
}

func (h *resultHeap) reset(k int) {
	h.k = k
	if cap(h.entries) < k {
		h.entries = make([]rank.Entry, 0, k)
	}
	h.entries = h.entries[:0]
}

// kRank returns the current pruning threshold: the worst retained rank once
// k entries exist, +inf before that.
func (h *resultHeap) kRank() int32 {
	if len(h.entries) < h.k {
		return kRankInf
	}
	return h.entries[0].Rank
}

func worse(a, b rank.Entry) bool {
	if a.Rank != b.Rank {
		return a.Rank > b.Rank
	}
	return a.Node > b.Node
}

// offer inserts (node, r), evicting the worst entry when full. It reports
// whether the entry was retained.
func (h *resultHeap) offer(node, r int32) bool {
	e := rank.Entry{Node: node, Rank: r}
	if len(h.entries) < h.k {
		h.entries = append(h.entries, e)
		h.up(len(h.entries) - 1)
		return true
	}
	if !worse(h.entries[0], e) {
		return false
	}
	h.entries[0] = e
	h.down(0)
	return true
}

func (h *resultHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !worse(h.entries[i], h.entries[p]) {
			break
		}
		h.entries[i], h.entries[p] = h.entries[p], h.entries[i]
		i = p
	}
}

func (h *resultHeap) down(i int) {
	n := len(h.entries)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		c := l
		if r := l + 1; r < n && worse(h.entries[r], h.entries[l]) {
			c = r
		}
		if !worse(h.entries[c], h.entries[i]) {
			return
		}
		h.entries[i], h.entries[c] = h.entries[c], h.entries[i]
		i = c
	}
}

// sorted returns the entries ordered by (rank, node id) ascending.
func (h *resultHeap) sorted() []rank.Entry {
	out := append([]rank.Entry(nil), h.entries...)
	rank.SortEntries(out)
	return out
}

// len returns the number of retained entries.
func (h *resultHeap) len() int { return len(h.entries) }

// sortedInto is sorted writing into a caller-provided buffer (batch mode's
// chunked entry slab) instead of a fresh allocation. buf must be empty
// with capacity len().
func (h *resultHeap) sortedInto(buf []rank.Entry) []rank.Entry {
	out := append(buf, h.entries...)
	rank.SortEntries(out)
	return out
}
