package core

import (
	"strings"
	"testing"

	"rkranks/internal/ridx"
	tg "rkranks/internal/testgraphs"
)

// TestTraceWorkedExample: the dynamic trace of Alice's reverse 2-ranks
// query must read exactly like the paper's Section-4 walkthrough — Bob,
// Eric, Caroline refined; Frank, Sid, George pruned by bounds.
func TestTraceWorkedExample(t *testing.T) {
	g := tg.Toy()
	e := NewEngine(g, Options{})
	e.SetTracing(true)
	res, err := e.Query(Dynamic, tg.Alice, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 6 {
		t.Fatalf("trace has %d events: %v", len(res.Trace), res.Trace)
	}
	type want struct {
		node   int32
		action TraceAction
	}
	wants := []want{
		{tg.Bob, TraceRefined},
		{tg.Eric, TraceRefined},
		{tg.Caroline, TraceRefined},
		{tg.Frank, TracePrunedByBound},
		{tg.Sid, TracePrunedByBound},
		{tg.George, TracePrunedByBound},
	}
	for i, w := range wants {
		ev := res.Trace[i]
		if ev.Node != w.node || ev.Action != w.action {
			t.Errorf("event %d = %v, want %s %s", i, ev, tg.ToyNames[w.node], w.action)
		}
	}
	// Eric was refined (rank 6 > kRank 4 would be known only after
	// Caroline); his subtree still expanded because rank 6 was within the
	// then-current kRank (heap not yet full at refinement time).
	if !res.Trace[0].Expanded || !res.Trace[1].Expanded {
		t.Error("early refinements should expand")
	}
	if res.Trace[3].Expanded {
		t.Error("pruned node expanded")
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	g := tg.Toy()
	e := NewEngine(g, Options{})
	res, err := e.Query(Dynamic, tg.Alice, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Error("trace recorded without SetTracing")
	}
	// Toggling off again stops recording.
	e.SetTracing(true)
	if res, _ = e.Query(Dynamic, tg.Alice, 2); len(res.Trace) == 0 {
		t.Error("enabled trace empty")
	}
	e.SetTracing(false)
	if res, _ = e.Query(Dynamic, tg.Alice, 2); res.Trace != nil {
		t.Error("disabled trace still recorded")
	}
}

func TestTraceIndexedActions(t *testing.T) {
	g := tg.Toy()
	e := NewEngine(g, Options{})
	ix, err := ridx.Build(g, ridx.BuildParams{
		Hubs: []int32{tg.Alice, tg.Bob, tg.Caroline, tg.Sid, tg.Eric, tg.Frank, tg.George},
		M:    6, K: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.SetIndex(ix)
	e.SetTracing(true)
	res, err := e.Query(Indexed, tg.Alice, 2)
	if err != nil {
		t.Fatal(err)
	}
	var joined strings.Builder
	for _, ev := range res.Trace {
		joined.WriteString(ev.String())
		joined.WriteByte('\n')
	}
	s := joined.String()
	if !strings.Contains(s, "seeded") && !strings.Contains(s, "index-hit") {
		t.Errorf("indexed trace shows no index activity:\n%s", s)
	}
}

func TestTraceActionStrings(t *testing.T) {
	names := map[TraceAction]string{
		TraceRefined:       "refined",
		TraceRefineAborted: "refine-aborted",
		TracePrunedByBound: "pruned-by-bound",
		TraceIndexHit:      "index-hit",
		TraceSeeded:        "seeded",
		TracePassThrough:   "pass-through",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d String = %q, want %q", a, a.String(), want)
		}
	}
	if TraceAction(99).String() == "" {
		t.Error("unknown action empty")
	}
}
