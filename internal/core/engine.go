package core

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"rkranks/internal/graph"
	"rkranks/internal/hub"
	"rkranks/internal/obs"
	"rkranks/internal/rank"
	"rkranks/internal/ridx"
	"rkranks/internal/sssp"
)

// Engine evaluates reverse k-ranks queries against one graph. It owns
// reusable per-query workspaces (Dijkstra searches plus epoch-stamped
// node arrays), so queries after the first allocate nothing.
// Options.RefineWorkers > 0 additionally starts that many persistent
// worker goroutines on the engine's first query; they park between
// queries and exit when the engine is garbage collected (parallel.go).
//
// An Engine is not safe for concurrent use; create one per goroutine. An
// attached index is both read and written by Indexed queries (that is the
// point of the dynamic index): concurrent engines may share one index if
// and only if it is a concurrency-safe implementation (ridx.ShardedIndex,
// reported by Index.Concurrent) — a Pool built with NewPoolWithIndex
// arranges exactly that. A ridx.SerialIndex must stay private to one
// engine. Intra-query refine workers never touch the index (all index
// traffic stays on the coordinating goroutine), so RefineWorkers composes
// with either index implementation.
type Engine struct {
	g      *graph.Graph
	opts   Options
	idx    ridx.Index
	labels *hub.Labels // from Options.Labels; enables HubLabel queries

	tree *sssp.Search // transpose traversal from q (SDS-tree)
	rf   *refiner     // serial refinement workspace (see refiner.go)
	par  *parallelState

	epoch   uint32
	lcount  []int32 // Lemma-4 visit counters
	lstamp  []uint32
	nrank   []int32 // recorded rank (or lower bound) of processed nodes
	nstamp  []uint32
	ostamp  []uint32 // nodes already offered to the result heap
	lbseen  []uint32 // hub-label scan dedupe stamps (lazily allocated)
	lbepoch uint32   // epoch for lbseen; bumped once per label scan
	sseq    []int32  // SDS-tree pop sequence numbers (see markTreeSettled)
	sstamp  []uint32
	seq     int32 // pops so far this query
	scratch []settleRec

	heap  resultHeap
	stats Stats
	q     int32
	k     int

	// arena is the shared-traversal batch scratch, non-nil only between
	// BeginBatch/EndBatch (see batchexec.go). batch retains the allocation
	// across batches so a pool slot's arena is built once.
	arena *batchArena
	batch *batchArena

	tracing  bool
	traceLog []TraceEvent

	// stop is the current query's cancellation flag, non-nil only for
	// QueryContext calls whose context can actually be canceled. It is a
	// fresh allocation per such query so a context firing late (after the
	// query returned) writes to a stale object instead of poisoning the
	// next query. Refiners poll it on a coarse settle cadence; the
	// traversal loops poll it per pop.
	stop *atomic.Bool

	// per-query feature switches
	bounds   Bounds
	useLc    bool // maintain lcount during refinements
	indexing bool // feed refinements back into the index
}

type settleRec struct {
	node int32
	dist float64
	rank int32
}

// NewEngine returns an engine over g with the given options.
func NewEngine(g *graph.Graph, opts Options) *Engine {
	n := g.N()
	if opts.Candidates != nil && len(opts.Candidates) != n {
		panic(fmt.Sprintf("core: Candidates length %d != n %d", len(opts.Candidates), n))
	}
	if opts.Counted != nil && len(opts.Counted) != n {
		panic(fmt.Sprintf("core: Counted length %d != n %d", len(opts.Counted), n))
	}
	if l := opts.Labels; l != nil {
		if l.N() != n {
			panic(fmt.Sprintf("core: labels cover %d nodes, graph has %d", l.N(), n))
		}
		if l.Directed() != g.Directed() {
			panic(fmt.Sprintf("core: labels directed=%v, graph directed=%v", l.Directed(), g.Directed()))
		}
	}
	return &Engine{
		g:      g,
		opts:   opts,
		labels: opts.Labels,
		tree:   sssp.New(g),
		rf:     newRefiner(g),
		lcount: make([]int32, n),
		lstamp: make([]uint32, n),
		nrank:  make([]int32, n),
		nstamp: make([]uint32, n),
		ostamp: make([]uint32, n),
		sseq:   make([]int32, n),
		sstamp: make([]uint32, n),
	}
}

// Graph returns the engine's graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Options returns the engine's options.
func (e *Engine) Options() Options { return e.opts }

// SetIndex attaches (or detaches, with nil) the dynamic index used by
// Indexed queries. The index must cover the engine's graph.
func (e *Engine) SetIndex(ix ridx.Index) {
	if ix != nil && ix.N() != e.g.N() {
		panic(fmt.Sprintf("core: index covers %d nodes, graph has %d", ix.N(), e.g.N()))
	}
	e.idx = ix
}

// Index returns the attached index, if any.
func (e *Engine) Index() ridx.Index { return e.idx }

// Query runs algorithm a for query node q with result size k.
func (e *Engine) Query(a Algorithm, q int32, k int) (*Result, error) {
	return e.QueryContext(context.Background(), a, q, k)
}

// QueryContext is Query with cancellation: when ctx is canceled or its
// deadline passes, the traversal and every in-flight rank refinement
// (including speculative worker runs) stop within a bounded number of
// settles and the call returns ctx's error. A canceled query leaves the
// engine (and any shared index) in a consistent state — cancellation
// discards work, it never applies partial results — so the engine is
// immediately reusable.
func (e *Engine) QueryContext(ctx context.Context, a Algorithm, q int32, k int) (*Result, error) {
	if err := validateRequest(a, k); err != nil {
		return nil, err
	}
	if err := e.checkArgs(q); err != nil {
		return nil, err
	}
	if a == Indexed {
		if e.idx == nil {
			return nil, fmt.Errorf("core: Indexed query requires SetIndex: %w", ErrIndexRequired)
		}
		if k > e.idx.MaxK() {
			return nil, fmt.Errorf("core: k=%d exceeds index K=%d: %w", k, e.idx.MaxK(), ErrInvalidK)
		}
	}
	if a == HubLabel && e.labels == nil {
		return nil, fmt.Errorf("core: HubLabel query requires Options.Labels: %w", ErrLabelsRequired)
	}
	e.stop = nil
	if ctx.Done() != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: query not started: %w", err)
		}
		flag := new(atomic.Bool)
		e.stop = flag
		defer context.AfterFunc(ctx, func() { flag.Store(true) })()
	}
	// Engine time is one span: label.scan for HubLabel (label pruning
	// interleaved with fallback refinement), engine.refine otherwise. The
	// span machinery is nil-safe and allocation-free, so an untraced
	// context costs one Value lookup and the traced path stays inside the
	// steady-state alloc budget (see TestTracedQueryAllocations).
	tr := obs.FromContext(ctx)
	stage := obs.StageEngineRefine
	if a == HubLabel {
		stage = obs.StageLabelScan
	}
	sp := tr.Begin(stage)
	res := e.dispatch(a, q, k)
	if sp != nil {
		sp.SetAttr("refinements", int64(e.stats.Refinements))
		sp.SetAttr("pruned_by_bound", int64(e.stats.PrunedByBound))
		if a == HubLabel {
			sp.SetAttr("label_pruned", int64(e.stats.LabelPruned))
			sp.SetAttr("label_fallbacks", int64(e.stats.LabelFallbacks))
		} else {
			sp.SetAttr("index_hits", int64(e.stats.IndexHits))
			sp.SetAttr("tree_settled", int64(e.stats.TreeSettled))
		}
		tr.End(sp)
	}
	if e.stopped() {
		return nil, fmt.Errorf("core: query canceled: %w", ctx.Err())
	}
	return res, nil
}

// dispatch routes a validated query to its engine implementation. HubLabel
// always runs serially, even with RefineWorkers set: label pruning removes
// exactly the refinements the speculative pipeline would overlap, so the
// workers would mostly produce wasted speculation.
func (e *Engine) dispatch(a Algorithm, q int32, k int) *Result {
	if a == HubLabel {
		return e.hubLabel(q, k)
	}
	if e.opts.refineWorkers() > 0 {
		if a == Naive {
			return e.naiveParallel(q, k)
		}
		return e.treeParallel(a, q, k)
	}
	switch a {
	case Naive:
		return e.naive(q, k)
	case Static:
		return e.static(q, k)
	case Dynamic:
		return e.dynamic(q, k)
	default:
		return e.indexed(q, k)
	}
}

// stopped reports whether the current query's context has been canceled.
func (e *Engine) stopped() bool {
	return e.stop != nil && e.stop.Load()
}

func (e *Engine) checkArgs(q int32) error {
	if q < 0 || int(q) >= e.g.N() {
		return fmt.Errorf("core: query node %d out of range [0,%d): %w", q, e.g.N(), ErrInvalidQueryNode)
	}
	if e.opts.Counted != nil && !e.opts.Counted[q] {
		return fmt.Errorf("core: bichromatic query node %d is not in the counted class V2: %w", q, ErrInvalidQueryNode)
	}
	return nil
}

// begin resets per-query state.
func (e *Engine) begin(q int32, k int, a Algorithm) {
	e.epoch++
	if e.epoch == 0 {
		clear(e.lstamp)
		clear(e.nstamp)
		clear(e.ostamp)
		clear(e.sstamp)
		e.epoch = 1
	}
	e.q = q
	e.k = k
	e.seq = 0
	e.heap.reset(k)
	e.stats = Stats{}
	e.traceLog = nil
	e.bounds = e.opts.effectiveBounds(e.g)
	e.useLc = a != Naive && a != Static && e.bounds&BoundCount != 0
	e.indexing = a == Indexed
	e.rf.prepare(q, e.opts.Counted, e.opts.DisableDistanceCutoff, e.stop)
}

func (e *Engine) candidate(v int32) bool {
	return e.opts.Candidates == nil || e.opts.Candidates[v]
}

func (e *Engine) counted(v int32) bool {
	return e.opts.Counted == nil || e.opts.Counted[v]
}

// markTreeSettled records the pop order of the SDS-tree traversal and
// returns v's sequence number. The Lemma-4 bookkeeping asks "was t settled
// when candidate p was refined?"; under speculative refinement nodes are
// popped (and marked) before earlier candidates' side effects are applied,
// so the engine compares pop sequence numbers instead of consulting the
// tree's live settled set — which reproduces the serial answer exactly.
func (e *Engine) markTreeSettled(v int32) int32 {
	e.seq++
	e.sseq[v] = e.seq
	e.sstamp[v] = e.epoch
	return e.seq
}

// treeSettledBefore reports whether v was popped from the SDS-tree at or
// before pop sequence number seq of the current query.
func (e *Engine) treeSettledBefore(v int32, seq int32) bool {
	return e.sstamp[v] == e.epoch && e.sseq[v] <= seq
}

// descBound converts a certified lower bound on Rank(v, q) into one valid
// for every SDS-tree descendant of v (generalized Lemma 1).
//
// In monochromatic graphs the bound transfers unchanged. In bichromatic
// mode, when v itself is NOT in the counted class, the transfer loses
// exactly one: a descendant w can be a counted member of v's
// strictly-closer set while v contributes nothing to w's (the set
// S_v \ {w} injects into S_w, but v itself does not), so
// Rank(w) >= Rank(v) - 1 is all Lemma 1 guarantees. The loss applies once
// per bound origin — not per hop — because S_v \ {w} injects into S_w for
// a descendant at any depth; recorded descendant bounds therefore pass
// through intermediate nodes unchanged (see setDescBound/passThrough).
// The paper does not discuss this case; applying the unadjusted bound can
// wrongly prune true results (caught by the randomized bichromatic oracle
// test), while re-applying it per hop destroys pruning on long
// candidate-class chains such as road networks.
func (e *Engine) descBound(v, bound int32) int32 {
	if e.opts.Counted == nil || e.opts.Counted[v] {
		return bound
	}
	if bound <= 1 {
		return 0
	}
	return bound - 1
}

// setDescBound records a certified lower bound on the rank of every
// SDS-tree descendant of v, consulted by its children at dequeue time.
func (e *Engine) setDescBound(v, bound int32) {
	e.nrank[v] = bound
	e.nstamp[v] = e.epoch
}

// parentBound returns the certified lower bound that v's SDS-tree parent
// imposes on Rank(v, q): the parent's recorded descendant bound (0 when
// the parent is the query node itself).
func (e *Engine) parentBound(v int32) int32 {
	p := e.tree.Parent(v)
	if p < 0 || p == e.q {
		return 0
	}
	if e.nstamp[p] != e.epoch {
		return 0
	}
	return e.nrank[p]
}

func (e *Engine) lcountOf(v int32) int32 {
	if e.lstamp[v] != e.epoch {
		return 0
	}
	return e.lcount[v]
}

func (e *Engine) bumpLcount(v int32) {
	if e.lstamp[v] != e.epoch {
		e.lstamp[v] = e.epoch
		e.lcount[v] = 1
		return
	}
	e.lcount[v]++
}

// offer adds an exact (node, rank) pair to the result heap, at most once
// per node per query (the indexed engine can discover a node's rank both
// from the seeded dictionary and from the traversal).
func (e *Engine) offer(node, r int32) bool {
	if e.ostamp[node] == e.epoch {
		return false
	}
	e.ostamp[node] = e.epoch
	return e.heap.offer(node, r)
}

// finish assembles the Result. In batch mode the Result and its entries
// come from the arena's chunked slabs — one allocation per chunk instead
// of two per query — because results escape to the caller and must not
// alias engine scratch.
func (e *Engine) finish() *Result {
	if a := e.arena; a != nil {
		var entries []rank.Entry // nil when empty, like sorted()
		if n := e.heap.len(); n > 0 {
			entries = e.heap.sortedInto(a.entryBuf(n))
		}
		res := a.newResult()
		*res = Result{Query: e.q, K: e.k, Entries: entries, Stats: e.stats, Trace: e.traceLog}
		return res
	}
	return &Result{Query: e.q, K: e.k, Entries: e.heap.sorted(), Stats: e.stats, Trace: e.traceLog}
}

// refineAndSettle runs the shared refine/offer/expand tail of the three
// SDS-tree engines for a dequeued candidate; seq is the candidate's pop
// sequence number (markTreeSettled).
func (e *Engine) refineAndSettle(v int32, d float64, seq int32) {
	bound, exact := e.refine(v, d, seq)
	e.settleRefined(v, d, bound, exact)
}

// settleRefined applies the result-heap, descendant-bound, and expansion
// decisions for a refined candidate. Subtree pruning uses the
// descendant-transferred bound (see descBound), not v's own.
func (e *Engine) settleRefined(v int32, d float64, bound int32, exact bool) {
	db := e.descBound(v, bound)
	e.setDescBound(v, db)
	if exact && bound <= e.heap.kRank() {
		e.offer(v, bound)
	}
	// Skipping expansion is sound only once descendants provably cannot
	// enter the canonical result: they rank at least descBound(v, bound),
	// so the subtree is cut exactly when that bound strictly exceeds
	// kRank. The comparison is tie-inclusive (db <= kRank expands)
	// because a descendant tying the k-th rank can still tie-break in by
	// node id — the canonical-result invariant the cluster merge needs.
	// In monochromatic graphs db == bound, matching Algorithm 1.
	expand := db <= e.heap.kRank()
	if expand {
		e.tree.Expand(v, d)
	}
	if e.tracing {
		action := TraceRefined
		if !exact {
			action = TraceRefineAborted
		}
		e.trace(v, d, action, bound, expand)
	}
}

// refine computes Rank(p, q) by a serial partial Dijkstra from p and
// applies its side effects (see refiner.run for the search itself and
// applyRefineLog for the effects). dpq is d(p, q) when known, +Inf
// otherwise; seq is p's pop sequence number (0 outside a tree traversal).
// Returns the exact rank with exact=true, or a certified lower bound with
// exact=false (kRank abort), or rank.Unreachable when p cannot reach q.
func (e *Engine) refine(p int32, dpq float64, seq int32) (bound int32, exact bool) {
	e.stats.Refinements++
	kRank := e.heap.kRank()
	if a := e.arena; a != nil {
		// Batch mode: try to resolve this refinement from a settle log a
		// previous query in the batch stored for p. A successful replay
		// yields the decision triple and log prefix a fresh serial run
		// would have produced byte-for-byte (see batchexec.go), so the
		// applied side effects are identical; only RefineSettled differs
		// (a replay settles nothing — like the speculative pipeline, the
		// effort counters describe work actually performed).
		cut := refineCutoff(dpq, e.opts.DisableDistanceCutoff)
		if out, log, ok := a.replay(p, e.q, dpq, cut, kRank); ok {
			a.shared++
			e.stats.SharedTraversals++
			if out.aborted {
				e.stats.RefineAborted++
			}
			e.applyRefineLog(p, log, out.bound, out.exact, out.stopLevel, seq)
			return out.bound, out.exact
		}
	}
	if a := e.arena; a != nil && a.hot(p) {
		// Hot candidate: the batch keeps missing p's stored coverage, so
		// settle its whole component once. The complete log answers this
		// refinement (scanSettleLog with this query's stop rules — the
		// exact decision a bounded run would reach) and, once stored,
		// every later refinement of p in the batch.
		var out refineResult
		out, e.scratch = e.rf.runExhaustive(p, e.scratch[:0])
		e.stats.RefineSettled += out.settled
		if out.stopped {
			return 0, false
		}
		a.store(p, math.Inf(1), true, e.scratch)
		cut := refineCutoff(dpq, e.opts.DisableDistanceCutoff)
		res, log, _ := scanSettleLog(e.scratch, e.q, cut, kRank, true, math.Inf(1))
		if res.aborted {
			e.stats.RefineAborted++
		}
		e.applyRefineLog(p, log, res.bound, res.exact, res.stopLevel, seq)
		return res.bound, res.exact
	}
	var out refineResult
	out, e.scratch = e.rf.run(p, dpq, kRank, nil, nil, e.scratch[:0])
	e.stats.RefineSettled += out.settled
	if out.stopped {
		// The query's context was canceled mid-refinement: the truncated
		// log must not feed the Lemma-4 counters or the index (its stop
		// point is meaningless), so apply nothing. Returning the trivial
		// lower bound keeps any state the caller still touches sound; the
		// traversal loop notices the flag and abandons the query.
		return 0, false
	}
	if out.aborted {
		e.stats.RefineAborted++
	}
	if a := e.arena; a != nil {
		a.spend(p, out.settled)
		exhausted := !out.exact && !out.aborted
		a.store(p, refineCutoff(dpq, e.opts.DisableDistanceCutoff), exhausted, e.scratch)
	}
	e.applyRefineLog(p, e.scratch, out.bound, out.exact, out.stopLevel, seq)
	return out.bound, out.exact
}

// applyRefineLog applies the side effects of a refinement of p, gated by
// the engine's per-query switches:
//
//   - useLc: every settled counted node proven strictly closer to p than q
//     gets its Lemma-4 visit counter bumped;
//   - indexing: every settled counted node's exact rank from p feeds the
//     Reverse Rank Dictionary, and p's Check Dictionary bound is raised.
//
// seq is p's pop sequence number: nodes popped from the SDS-tree at or
// before it never read their counter again — and for them the lemma's
// d(p,q) <= d(t,q) precondition no longer holds — so they are skipped
// (Lemma 3/4). In parallel mode the log and (bound, exact, stopLevel) come
// from replayRefinement, so the effects applied here are byte-identical to
// a serial run's.
func (e *Engine) applyRefineLog(p int32, log []settleRec, bound int32, exact bool, stopLevel float64, seq int32) {
	if !e.useLc && !e.indexing {
		return
	}
	for _, rec := range log {
		if rec.node == e.q {
			continue
		}
		if e.useLc && rec.dist < stopLevel && !e.treeSettledBefore(rec.node, seq) {
			e.bumpLcount(rec.node)
		}
		if e.indexing {
			e.idx.Offer(rec.node, p, rec.rank)
		}
	}
	if e.indexing {
		if exact {
			e.idx.Offer(e.q, p, bound)
		}
		// Any node not settled by this search ranks at least as high
		// as the last settled one (see ridx package docs). The raise
		// must come after the Offers above: on a shared concurrent
		// index, a reader that sees this bound must also see the
		// witness entries it exempts (readers load Check first).
		e.idx.RaiseCheck(p, bound)
	}
}
