package core

import "math"

// naive is the Section 2 baseline: evaluate Rank(p, q) for every candidate
// node p by a partial Dijkstra from p, keeping the best k in a heap. The
// only optimization retained from the paper's description is the running
// kRank bound inside each refinement ("the top-k of these ranks are
// maintained in a heap").
func (e *Engine) naive(q int32, k int) *Result {
	e.begin(q, k, Naive)
	n := int32(e.g.N())
	for p := int32(0); p < n; p++ {
		if e.stopped() {
			break
		}
		if p == q || !e.candidate(p) {
			continue
		}
		bound, exact := e.refine(p, math.Inf(1), 0)
		if exact && bound <= e.heap.kRank() {
			e.offer(p, bound)
		}
	}
	return e.finish()
}

// static is the basic SDS-tree framework (Section 3, Algorithm 1): traverse
// the transpose graph from q in distance order; rank-refine every dequeued
// candidate immediately; expand a node's children only while it can still
// qualify (Theorem 1: descendants rank no better than their ancestors).
func (e *Engine) static(q int32, k int) *Result {
	e.begin(q, k, Static)
	e.tree.ResetReverse(q)
	for {
		v, d, ok := e.tree.Pop()
		if !ok || e.stopped() {
			break
		}
		seq := e.markTreeSettled(v)
		e.stats.TreeSettled++
		if v == q {
			e.tree.Expand(v, d)
			continue
		}
		if !e.candidate(v) {
			e.passThrough(v, d)
			continue
		}
		e.refineAndSettle(v, d, seq)
	}
	return e.finish()
}

// dynamic is the Dynamic Bounded SDS-tree (Section 4): the candidacy
// decision is delayed to dequeue time and a Theorem-2 lower bound —
// max(height, parent rank, visit count) — skips the refinement entirely
// when it already exceeds kRank. The comparison is strict so that
// candidates tying the k-th rank are still refined and tie-break through
// the result heap: every engine then returns the canonical minimum k
// entries by (rank, node id), independent of traversal and pruning order
// — the invariant the cluster coordinator's shard merge relies on.
func (e *Engine) dynamic(q int32, k int) *Result {
	e.begin(q, k, Dynamic)
	e.tree.ResetReverse(q)
	for {
		v, d, ok := e.tree.Pop()
		if !ok || e.stopped() {
			break
		}
		seq := e.markTreeSettled(v)
		e.stats.TreeSettled++
		if v == q {
			e.tree.Expand(v, d)
			continue
		}
		if !e.candidate(v) {
			e.passThrough(v, d)
			continue
		}
		lb := e.lowerBound(v, 0)
		if lb > e.heap.kRank() {
			e.skipCandidate(v, d, lb)
			continue // prune the refinement (Theorem 2)
		}
		e.refineAndSettle(v, d, seq)
	}
	return e.finish()
}

// skipCandidate records a candidate disqualified by its lower bound. Its
// subtree is usually pruned too (Theorem 1), except in bichromatic mode
// where an uncounted node's descendants may rank one better than the node
// itself (see descBound) and must still be explored. The recorded
// descendant bound keeps the parent's (which passes through v unweakened)
// when that is stronger than v's own adjusted bound. Expansion is
// tie-inclusive (db <= kRank): a descendant tying the k-th rank could
// still tie-break into the canonical result, so only a strictly worse
// certified bound may cut the subtree.
func (e *Engine) skipCandidate(v int32, d float64, lb int32) {
	db := e.descBound(v, lb)
	if pb := e.parentBound(v); pb > db {
		db = pb
	}
	e.setDescBound(v, db)
	e.stats.PrunedByBound++
	expand := db <= e.heap.kRank()
	if expand {
		e.tree.Expand(v, d)
	}
	e.trace(v, d, TracePrunedByBound, lb, expand)
}

// indexed is the Dynamic Bounded SDS-tree with the Check / Reverse-Rank
// dictionaries (Section 5, Algorithms 3-4). The result heap is seeded from
// the Reverse Rank Dictionary of q; candidates whose exact rank the
// dictionary already knows skip refinement, and the Check Dictionary joins
// the Theorem-2 lower bound. Refinements feed their discoveries back into
// the index, so subsequent queries get faster (Table 14).
func (e *Engine) indexed(q int32, k int) *Result {
	e.begin(q, k, Indexed)
	e.seedFromIndex()
	e.tree.ResetReverse(q)
	for {
		v, d, ok := e.tree.Pop()
		if !ok || e.stopped() {
			break
		}
		seq := e.markTreeSettled(v)
		e.stats.TreeSettled++
		if v == q {
			e.tree.Expand(v, d)
			continue
		}
		if !e.candidate(v) {
			e.passThrough(v, d)
			continue
		}
		// Read Check BEFORE LookupRank. Check(v) only bounds Rank(v, q)
		// when q is not recorded in Reverse(q) with source v, and index
		// writers publish the witness entry before raising the bound
		// (Offer, then RaiseCheck — see applyRefineLog). Reading in the
		// matching order guarantees that a bound covering the (v, q)
		// exception is always read together with its visible witness; the
		// reverse order could, on a shared concurrent index, observe a
		// freshly raised bound while missing the just-offered exact rank
		// and wrongly prune a true result.
		check := e.idx.Check(v)
		if r, known := e.idx.LookupRank(q, v); known {
			e.indexHit(v, d, r)
			continue
		}
		lb := e.lowerBound(v, check)
		if lb > e.heap.kRank() {
			e.skipCandidate(v, d, lb)
			continue
		}
		e.refineAndSettle(v, d, seq)
	}
	return e.finish()
}

// seedFromIndex primes the result heap from the Reverse Rank Dictionary of
// the query node before traversal starts (Algorithm 3, line 1).
func (e *Engine) seedFromIndex() {
	for _, en := range e.idx.Reverse(e.q) {
		if e.candidate(en.Node) && e.offer(en.Node, en.Rank) {
			e.stats.SeededFromIndex++
			e.trace(en.Node, 0, TraceSeeded, en.Rank, false)
		}
	}
}

// indexHit handles a dequeued candidate whose exact rank the Reverse Rank
// Dictionary already knows, skipping its refinement. Like settleRefined,
// expansion is decided on the tie-inclusive descendant bound so the
// canonical result never loses a boundary tie to the index shortcut.
func (e *Engine) indexHit(v int32, d float64, r int32) {
	e.stats.IndexHits++
	db := e.descBound(v, r)
	e.setDescBound(v, db)
	if r <= e.heap.kRank() {
		e.offer(v, r)
	}
	expand := db <= e.heap.kRank()
	if expand {
		e.tree.Expand(v, d)
	}
	e.trace(v, d, TraceIndexHit, r, expand)
}

// passThrough handles a dequeued node outside the candidate class V1
// (bichromatic queries): it cannot be a result, but shortest paths of
// candidates run through it. Its descendants are also descendants of its
// parent, so the parent's descendant bound passes through unweakened
// (no per-hop loss), and the subtree is pruned once that bound already
// disqualifies everything below.
func (e *Engine) passThrough(v int32, d float64) {
	pb := e.parentBound(v)
	e.setDescBound(v, pb)
	expand := pb <= e.heap.kRank()
	if expand {
		e.tree.Expand(v, d)
	}
	e.trace(v, d, TracePassThrough, pb, expand)
}

// lowerBound evaluates the Theorem-2 lower bound of a candidate about to be
// refined, extended with the Check Dictionary bound for the indexed engine,
// and attributes the win for the Table 11 analysis. Tie attribution order:
// height, count, parent (check-dictionary wins are folded into the final
// max without attribution, mirroring the paper's three-component table).
func (e *Engine) lowerBound(v, check int32) int32 {
	return e.lowerBoundAt(v, check, true)
}

// lowerBoundAt is lowerBound with the Table-11 win attribution optional:
// the speculative coordinator evaluates the bound twice per candidate —
// once on stale state to decide whether launching a refinement could be
// worthwhile, once at apply time for the real (serial-order) decision —
// and only the latter may touch the stats.
func (e *Engine) lowerBoundAt(v, check int32, attribute bool) int32 {
	var height, count, parent int32
	if e.bounds&BoundHeight != 0 {
		height = e.tree.Depth(v)
	}
	if e.bounds&BoundCount != 0 {
		count = e.lcountOf(v)
	}
	if e.bounds&BoundParent != 0 {
		parent = e.parentBound(v)
	}
	if attribute {
		switch {
		case height >= count && height >= parent:
			e.stats.HeightWins++
		case count >= parent:
			e.stats.CountWins++
		default:
			e.stats.ParentWins++
		}
	}
	lb := height
	if count > lb {
		lb = count
	}
	if parent > lb {
		lb = parent
	}
	if check > lb {
		lb = check
	}
	return lb
}
