package core

import (
	"math/rand"
	"testing"

	"rkranks/internal/rank"
)

// TestResultHeapAgainstReference drives the heap with random offer streams
// and compares against sorting the whole stream.
func TestResultHeapAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(8)
		n := rng.Intn(40)
		var h resultHeap
		h.reset(k)
		var all []rank.Entry
		seen := map[int32]bool{}
		for i := 0; i < n; i++ {
			node := int32(rng.Intn(100))
			if seen[node] {
				continue
			}
			seen[node] = true
			e := rank.Entry{Node: node, Rank: int32(1 + rng.Intn(10))}
			all = append(all, e)
			h.offer(e.Node, e.Rank)
		}
		rank.SortEntries(all)
		want := all
		if len(want) > k {
			want = want[:k]
		}
		got := h.sorted()
		if len(got) != len(want) {
			t.Fatalf("trial %d: size %d want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v want %v", trial, got, want)
			}
		}
		if len(all) >= k && len(want) > 0 && h.kRank() != want[len(want)-1].Rank {
			t.Fatalf("trial %d: kRank %d want %d", trial, h.kRank(), want[len(want)-1].Rank)
		}
	}
}
