package core_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"rkranks/internal/core"
	"rkranks/internal/gen"
	"rkranks/internal/hub"
	"rkranks/internal/workload"
)

// TestHubLabelMatchesDynamic: the label-pruned engine returns entries
// byte-identical to Dynamic's across edge orientation, labeling coverage
// (complete, quarter, single-hub), seeds, and k — the canonical-result
// contract that lets shard merging, floors, and caches treat the two
// engines interchangeably.
func TestHubLabelMatchesDynamic(t *testing.T) {
	var pruned, fallbacks int
	for _, directed := range []bool{false, true} {
		for _, hdiv := range []int{1, 4, 100} {
			for seed := int64(1); seed <= 3; seed++ {
				g := gen.GNM(300, 1200, directed, seed)
				h := 300 / hdiv
				if h < 1 {
					h = 1
				}
				roots := hub.Order(g, hub.DegreeFirst, h, hub.Options{Seed: seed})
				labels, err := hub.BuildLabels(g, roots, 4)
				if err != nil {
					t.Fatal(err)
				}
				ed := core.NewEngine(g, core.Options{})
				eh := core.NewEngine(g, core.Options{Labels: labels})
				for _, q := range workload.Random(g, 20, seed+7) {
					for _, k := range []int{1, 3, 10} {
						rd, err := ed.Query(core.Dynamic, q, k)
						if err != nil {
							t.Fatal(err)
						}
						rh, err := eh.Query(core.HubLabel, q, k)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(rd.Entries, rh.Entries) {
							t.Fatalf("directed=%v h=%d seed=%d q=%d k=%d:\ndyn: %v\nhub: %v",
								directed, h, seed, q, k, rd.Entries, rh.Entries)
						}
						if rd.Stats.LabelPruned != 0 || rd.Stats.LabelFallbacks != 0 {
							t.Fatal("Dynamic moved the label counters")
						}
						pruned += rh.Stats.LabelPruned
						fallbacks += rh.Stats.LabelFallbacks
					}
				}
			}
		}
	}
	// The matrix includes complete labelings on dense graphs: if the label
	// scan never pruned anything there, the engine is just Dynamic with
	// extra steps and the test is vacuous.
	if pruned == 0 {
		t.Error("label scan never pruned a candidate across the whole matrix")
	}
	if fallbacks == 0 {
		t.Error("no candidate ever fell back to refinement (partial labelings must miss)")
	}
}

// TestHubLabelBichromatic: with candidate and counted class masks the
// label bound counts only counted-class nodes (the union scan; tier 1 is
// skipped), and results still match Dynamic exactly.
func TestHubLabelBichromatic(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g := gen.GNM(250, 1000, false, seed+40)
		rng := rand.New(rand.NewSource(seed))
		candidates := make([]bool, g.N())
		counted := make([]bool, g.N())
		for i := range candidates {
			candidates[i] = rng.Intn(3) != 0
			counted[i] = rng.Intn(2) == 0
		}
		// Bichromatic queries must come from the counted class.
		queries := workload.Random(g, 15, seed+9)
		for _, q := range queries {
			counted[q] = true
		}
		roots := hub.Order(g, hub.DegreeFirst, g.N()/2, hub.Options{Seed: seed})
		labels, err := hub.BuildLabels(g, roots, 2)
		if err != nil {
			t.Fatal(err)
		}
		opts := core.Options{Candidates: candidates, Counted: counted}
		ed := core.NewEngine(g, opts)
		opts.Labels = labels
		eh := core.NewEngine(g, opts)
		for _, q := range queries {
			rd, err := ed.Query(core.Dynamic, q, 5)
			if err != nil {
				t.Fatal(err)
			}
			rh, err := eh.Query(core.HubLabel, q, 5)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rd.Entries, rh.Entries) {
				t.Fatalf("seed=%d q=%d:\ndyn: %v\nhub: %v", seed, q, rd.Entries, rh.Entries)
			}
		}
	}
}

// TestHubLabelDisconnected: isolated nodes and multiple components —
// where unreachability interacts with both the SDS traversal and the
// label scan — still produce Dynamic-identical results.
func TestHubLabelDisconnected(t *testing.T) {
	g := gen.GNM(200, 90, false, 77) // far fewer edges than nodes: many isolated
	roots := hub.Order(g, hub.DegreeFirst, g.N(), hub.Options{})
	labels, err := hub.BuildLabels(g, roots, 0)
	if err != nil {
		t.Fatal(err)
	}
	ed := core.NewEngine(g, core.Options{})
	eh := core.NewEngine(g, core.Options{Labels: labels})
	for q := int32(0); q < int32(g.N()); q += 7 {
		for _, k := range []int{1, 5, 50} {
			rd, err := ed.Query(core.Dynamic, q, k)
			if err != nil {
				t.Fatal(err)
			}
			rh, err := eh.Query(core.HubLabel, q, k)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rd.Entries, rh.Entries) {
				t.Fatalf("q=%d k=%d:\ndyn: %v\nhub: %v", q, k, rd.Entries, rh.Entries)
			}
		}
	}
}

// TestHubLabelRequiresLabels: a HubLabel query without Options.Labels is
// refused with the typed error family at both the engine and the pool
// boundary, before any work runs.
func TestHubLabelRequiresLabels(t *testing.T) {
	g := gen.GNM(50, 150, false, 3)
	e := core.NewEngine(g, core.Options{})
	if _, err := e.Query(core.HubLabel, 0, 5); !errors.Is(err, core.ErrLabelsRequired) {
		t.Fatalf("engine error = %v, want ErrLabelsRequired", err)
	} else if !errors.Is(err, core.ErrInvalidArgument) {
		t.Fatalf("error %v does not wrap ErrInvalidArgument", err)
	}
	pool := core.NewPool(g, core.Options{}, 1)
	if _, err := pool.Query(core.HubLabel, 0, 5); !errors.Is(err, core.ErrLabelsRequired) {
		t.Fatalf("pool error = %v, want ErrLabelsRequired", err)
	}
	if _, err := pool.QueryMany(core.HubLabel, []int32{0, 1}, 5); !errors.Is(err, core.ErrLabelsRequired) {
		t.Fatalf("batch error = %v, want ErrLabelsRequired", err)
	}
	if pool.HubLabeled() {
		t.Error("label-free pool claims HubLabeled")
	}
	if pool.HubLabelBytes() != 0 {
		t.Error("label-free pool reports nonzero HubLabelBytes")
	}
}

// TestHubLabelEngineMismatchPanics: attaching a labeling built for a
// different graph is a construction bug, caught at NewEngine like the
// other option invariants.
func TestHubLabelEngineMismatchPanics(t *testing.T) {
	small := gen.GNM(30, 60, false, 5)
	big := gen.GNM(40, 80, false, 5)
	labels, err := hub.BuildLabels(small, hub.Order(small, hub.DegreeFirst, 5, hub.Options{}), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("NewEngine accepted a labeling for a different graph")
		}
	}()
	core.NewEngine(big, core.Options{Labels: labels})
}

// TestHubLabelPool: pooled and batch execution over a shared labeling
// return the same canonical entries as a standalone engine, and the
// capability probes report the labeling.
func TestHubLabelPool(t *testing.T) {
	g := gen.GNM(200, 900, false, 13)
	labels, err := hub.BuildLabels(g, hub.Order(g, hub.DegreeFirst, g.N(), hub.Options{}), 4)
	if err != nil {
		t.Fatal(err)
	}
	pool := core.NewPool(g, core.Options{Labels: labels}, 4)
	if !pool.HubLabeled() {
		t.Fatal("pool does not report HubLabeled")
	}
	if pool.HubLabelBytes() != labels.Bytes() {
		t.Fatalf("HubLabelBytes = %d, want %d", pool.HubLabelBytes(), labels.Bytes())
	}
	queries := workload.Random(g, 40, 17)
	batch, err := pool.QueryManyContext(context.Background(), core.HubLabel, queries, 8)
	if err != nil {
		t.Fatal(err)
	}
	ref := core.NewEngine(g, core.Options{Labels: labels})
	for i, q := range queries {
		want, err := ref.Query(core.HubLabel, q, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Entries, batch[i].Entries) {
			t.Fatalf("q=%d: batch result differs from standalone", q)
		}
	}
}
