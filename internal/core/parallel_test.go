package core

import (
	"fmt"
	"reflect"
	"testing"

	"rkranks/internal/gen"
	"rkranks/internal/graph"
	"rkranks/internal/hub"
	"rkranks/internal/ridx"
)

// decisionStats projects the Stats fields that must be byte-identical
// between a serial run and a speculative parallel run (everything except
// RefineSettled and the Speculative* counters — see the Stats docs).
type decisionStats struct {
	refinements, refineAborted, treeSettled, pruned, hits, seeded int
	heightWins, countWins, parentWins                             int64
}

func decisionsOf(s Stats) decisionStats {
	return decisionStats{
		refinements: s.Refinements, refineAborted: s.RefineAborted,
		treeSettled: s.TreeSettled, pruned: s.PrunedByBound,
		hits: s.IndexHits, seeded: s.SeededFromIndex,
		heightWins: s.HeightWins, countWins: s.CountWins, parentWins: s.ParentWins,
	}
}

// buildTestIndex returns a fresh serial index for g (cloned per engine run
// so every run starts from identical dictionaries — Indexed queries mutate
// their index, and determinism is only defined against equal start states).
func buildTestIndex(t *testing.T, g *graph.Graph, maxK int, candidates, counted []bool) *ridx.SerialIndex {
	t.Helper()
	ix, err := ridx.Build(g, ridx.BuildParams{
		Hubs:    hub.Select(g, hub.DegreeFirst, g.N()/10+1, hub.Options{Seed: 9}),
		M:       g.N() / 5,
		K:       maxK,
		Counted: counted, Candidates: candidates,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// zeroWeightGraph builds a graph containing zero-weight edges and dense
// distance ties: the speculation barrier must stall (never overtake the
// serial pop order) instead of mis-speculating through them.
func zeroWeightGraph() *graph.Graph {
	b := graph.NewBuilder(false)
	b.EnsureNodes(40)
	for i := 0; i+1 < 40; i++ {
		w := 1.0
		switch i % 4 {
		case 1:
			w = 0 // zero-weight edge: child floor collapses to d(parent)
		case 2:
			w = 2
		}
		b.MustAddEdge(int32(i), int32(i+1), w)
	}
	for i := 0; i+7 < 40; i += 5 {
		b.MustAddEdge(int32(i), int32(i+7), 3) // shortcuts -> equidistant ties
	}
	return b.Finalize()
}

// TestRefineWorkersDeterminism is the contract of the speculative parallel
// pipeline: for every algorithm, graph shape, and worker count, the result
// entries, trace, and decision counters are byte-identical to a serial run.
// CI runs this under -race, which also proves the coordinator/worker
// protocol is data-race-free.
func TestRefineWorkersDeterminism(t *testing.T) {
	graphs := testGraphs()
	graphs["zero-weight-ties"] = zeroWeightGraph()
	graphs["road"] = func() *graph.Graph {
		g, _ := gen.RoadNetwork(gen.RoadNetworkParams{Rows: 10, Cols: 10, KeepProb: 0.4, Stores: 8, Seed: 41})
		return g
	}()
	const maxK = 12
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			ix := buildTestIndex(t, g, maxK, nil, nil)
			for _, algo := range []Algorithm{Naive, Static, Dynamic, Indexed} {
				for q := int32(0); q < int32(g.N()); q += 13 {
					for _, k := range []int{1, 5, maxK} {
						serial := runOnce(t, g, Options{}, ix, algo, q, k)
						for _, workers := range []int{1, 4} {
							par := runOnce(t, g, Options{RefineWorkers: workers}, ix, algo, q, k)
							label := fmt.Sprintf("%v q=%d k=%d workers=%d", algo, q, k, workers)
							if !reflect.DeepEqual(serial.Entries, par.Entries) {
								t.Fatalf("%s: entries diverged\nserial:   %v\nparallel: %v", label, serial.Entries, par.Entries)
							}
							if !reflect.DeepEqual(serial.Trace, par.Trace) {
								t.Fatalf("%s: trace diverged (%d vs %d events)", label, len(serial.Trace), len(par.Trace))
							}
							if ds, dp := decisionsOf(serial.Stats), decisionsOf(par.Stats); ds != dp {
								t.Fatalf("%s: decision stats diverged\nserial:   %+v\nparallel: %+v", label, ds, dp)
							}
							if par.Stats.RefineSettled < serial.Stats.RefineSettled && par.Stats.SpeculativeWasted == 0 {
								t.Errorf("%s: parallel settled fewer nodes (%d) than serial (%d) without discards",
									label, par.Stats.RefineSettled, serial.Stats.RefineSettled)
							}
						}
					}
				}
			}
		})
	}
}

func runOnce(t *testing.T, g *graph.Graph, opts Options, ix *ridx.SerialIndex, algo Algorithm, q int32, k int) *Result {
	t.Helper()
	e := NewEngine(g, opts)
	e.SetTracing(true)
	if algo == Indexed {
		e.SetIndex(ix.Clone())
	}
	res, err := e.Query(algo, q, k)
	if err != nil {
		t.Fatalf("%v q=%d k=%d: %v", algo, q, k, err)
	}
	return res
}

// TestRefineWorkersDeterminismBichromatic covers the pass-through and
// descendant-bound adjustment paths (Definitions 3-4) under speculation.
func TestRefineWorkersDeterminismBichromatic(t *testing.T) {
	g, stores := gen.RoadNetwork(gen.RoadNetworkParams{Rows: 8, Cols: 8, KeepProb: 0.4, Stores: 10, Seed: 31})
	candidates, counted := gen.StoreClasses(g.N(), stores)
	opts := Options{Candidates: candidates, Counted: counted}
	ix := buildTestIndex(t, g, 8, candidates, counted)
	for _, algo := range []Algorithm{Naive, Static, Dynamic, Indexed} {
		for _, q := range stores {
			for _, k := range []int{1, 3, 8} {
				serial := runBi(t, g, opts, ix, algo, q, k)
				for _, workers := range []int{1, 4} {
					popts := opts
					popts.RefineWorkers = workers
					par := runBi(t, g, popts, ix, algo, q, k)
					if !reflect.DeepEqual(serial.Entries, par.Entries) {
						t.Fatalf("bi/%v q=%d k=%d workers=%d: entries diverged\nserial:   %v\nparallel: %v",
							algo, q, k, workers, serial.Entries, par.Entries)
					}
					if ds, dp := decisionsOf(serial.Stats), decisionsOf(par.Stats); ds != dp {
						t.Fatalf("bi/%v q=%d k=%d workers=%d: decision stats diverged\nserial:   %+v\nparallel: %+v",
							algo, q, k, workers, ds, dp)
					}
				}
			}
		}
	}
}

func runBi(t *testing.T, g *graph.Graph, opts Options, ix *ridx.SerialIndex, algo Algorithm, q int32, k int) *Result {
	t.Helper()
	e := NewEngine(g, opts)
	if algo == Indexed {
		e.SetIndex(ix.Clone())
	}
	res, err := e.Query(algo, q, k)
	if err != nil {
		t.Fatalf("%v q=%d k=%d: %v", algo, q, k, err)
	}
	return res
}

// TestRefineWorkersRepeatedIndexed: the evolving shared dictionaries must
// evolve identically under speculation — a divergence in index feedback
// would compound across queries, so run a sequence on ONE index per mode
// and compare after every query.
func TestRefineWorkersRepeatedIndexed(t *testing.T) {
	g := gen.DBLPLike(gen.DBLPLikeParams{Nodes: 120, AttachPerNode: 3, Seed: 21})
	seed := buildTestIndex(t, g, 10, nil, nil)
	serialEng := NewEngine(g, Options{})
	serialEng.SetIndex(seed.Clone())
	parEng := NewEngine(g, Options{RefineWorkers: 3})
	parEng.SetIndex(seed.Clone())
	for round := 0; round < 2; round++ {
		for q := int32(0); q < int32(g.N()); q += 5 {
			k := 1 + int(q)%10
			rs, err := serialEng.Query(Indexed, q, k)
			if err != nil {
				t.Fatal(err)
			}
			rp, err := parEng.Query(Indexed, q, k)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rs.Entries, rp.Entries) {
				t.Fatalf("round=%d q=%d k=%d: entries diverged\nserial:   %v\nparallel: %v",
					round, q, k, rs.Entries, rp.Entries)
			}
			if ds, dp := decisionsOf(rs.Stats), decisionsOf(rp.Stats); ds != dp {
				t.Fatalf("round=%d q=%d k=%d: decision stats diverged\nserial:   %+v\nparallel: %+v",
					round, q, k, ds, dp)
			}
		}
	}
	if se, pe := serialEng.Index().Entries(), parEng.Index().Entries(); se != pe {
		t.Errorf("index entry counts diverged after identical traffic: serial %d, parallel %d", se, pe)
	}
}

// TestRefineWorkersGOMAXPROCS covers the RefineWorkers < 0 resolution and
// a pooled engine with intra-query workers.
func TestRefineWorkersGOMAXPROCS(t *testing.T) {
	g := gen.GNM(60, 90, false, 1)
	e := NewEngine(g, Options{RefineWorkers: -1})
	res, err := e.Query(Dynamic, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := NewEngine(g, Options{}).Query(Dynamic, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Entries, res.Entries) {
		t.Fatalf("GOMAXPROCS workers diverged: %v vs %v", serial.Entries, res.Entries)
	}

	pool := NewPool(g, Options{RefineWorkers: 2}, 2)
	results, err := pool.QueryMany(Dynamic, []int32{1, 2, 3, 4, 5, 6, 7}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		want, err := NewEngine(g, Options{}).Query(Dynamic, int32(i+1), 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Entries, r.Entries) {
			t.Fatalf("pooled parallel query %d diverged", i+1)
		}
	}
}
