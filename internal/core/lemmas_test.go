package core

import (
	"testing"

	"rkranks/internal/rank"
	"rkranks/internal/sssp"
)

// These tests verify the paper's lemmas directly on random (tie-heavy)
// graphs — the foundations every pruning decision rests on.

// TestLemma1ParentRankMonotone: on the full shortest-path tree toward q,
// Rank(child, q) >= Rank(parent, q) (Lemma 1 / Theorem 1).
func TestLemma1ParentRankMonotone(t *testing.T) {
	for _, directed := range []bool{false, true} {
		g := tieHeavyGraph(41, directed)
		tree := sssp.New(g)
		ref := sssp.New(g)
		for q := int32(0); int(q) < g.N(); q += 7 {
			tree.ResetReverse(q)
			for {
				v, _, ok := tree.Next()
				if !ok {
					break
				}
				p := tree.Parent(v)
				if v == q || p < 0 || p == q {
					continue
				}
				rv := rank.Of(ref, v, q)
				rp := rank.Of(ref, p, q)
				if rv < rp {
					t.Fatalf("directed=%v q=%d: Rank(%d)=%d < Rank(parent %d)=%d",
						directed, q, v, rv, p, rp)
				}
			}
		}
	}
}

// TestLemma2HeightBound: Rank(v, q) >= depth of v in the SDS tree.
func TestLemma2HeightBound(t *testing.T) {
	for _, directed := range []bool{false, true} {
		g := tieHeavyGraph(42, directed)
		tree := sssp.New(g)
		ref := sssp.New(g)
		for q := int32(0); int(q) < g.N(); q += 9 {
			tree.ResetReverse(q)
			for {
				v, _, ok := tree.Next()
				if !ok {
					break
				}
				if v == q {
					continue
				}
				rv := rank.Of(ref, v, q)
				if rv < tree.Depth(v) {
					t.Fatalf("directed=%v q=%d: Rank(%d)=%d < depth %d",
						directed, q, v, rv, tree.Depth(v))
				}
			}
		}
	}
}

// TestLemma4LcountBound: after a dynamic query on an undirected graph,
// every visit counter the engine accumulated is a valid lower bound on the
// node's true rank — even under pervasive distance ties, where the paper's
// step-counting version of the lemma can overcount.
func TestLemma4LcountBound(t *testing.T) {
	g := tieHeavyGraph(43, false)
	e := NewEngine(g, Options{})
	s := sssp.New(g)
	// k = |V| keeps the result heap unfilled, so no subtree is ever pruned
	// and every dequeued distance is exact; under those conditions every
	// accumulated counter must satisfy the lemma unconditionally. (With
	// pruning, counters of provably-non-result nodes may overshoot their
	// true rank; the engine only ever uses them to prune those same
	// non-result nodes, which the oracle tests cover.)
	for q := int32(0); int(q) < g.N(); q += 5 {
		if _, err := e.Query(Dynamic, q, g.N()); err != nil {
			t.Fatal(err)
		}
		for v := int32(0); int(v) < g.N(); v++ {
			if v == q || e.lstamp[v] != e.epoch {
				continue
			}
			lc := e.lcount[v]
			truth := rank.Of(s, v, q)
			if truth != rank.Unreachable && lc > truth {
				t.Fatalf("q=%d: lcount[%d]=%d exceeds Rank=%d", q, v, lc, truth)
			}
		}
	}
}

// TestCheckDictionaryBound: after indexed queries, Check(u) is a valid
// lower bound on Rank(u, w) for every node w absent from u's entries in
// the Reverse Rank Dictionary (the ridx package's certified semantics).
func TestCheckDictionaryBound(t *testing.T) {
	g := tieHeavyGraph(44, false)
	e := NewEngine(g, Options{})
	e.SetIndex(mustIndex(t, g))
	s := sssp.New(g)
	for q := int32(0); int(q) < g.N(); q += 6 {
		if _, err := e.Query(Indexed, q, 5); err != nil {
			t.Fatal(err)
		}
	}
	ix := e.Index()
	for u := int32(0); int(u) < g.N(); u++ {
		c := ix.Check(u)
		if c == 0 {
			continue
		}
		for w := int32(0); int(w) < g.N(); w++ {
			if w == u {
				continue
			}
			if _, recorded := ix.LookupRank(w, u); recorded {
				continue
			}
			// Skip pairs where enough better sources fill w's list: the
			// certified semantics only promise the bound when u's absence
			// is not due to eviction by maxK better entries.
			if len(ix.Reverse(w)) >= ix.MaxK() {
				continue
			}
			truth := rank.Of(s, u, w)
			if truth < c {
				t.Fatalf("Check(%d)=%d but Rank(%d,%d)=%d", u, c, u, w, truth)
			}
		}
	}
}
