package core

import (
	"testing"

	"rkranks/internal/rank"
	tg "rkranks/internal/testgraphs"
)

// TestToyRankMatrix pins the reconstruction of Figure 1 against the paper's
// published Table 1: every Rank(s, t) must match exactly.
func TestToyRankMatrix(t *testing.T) {
	g := tg.Toy()
	got := rank.Matrix(g)
	for s := range tg.ToyRankMatrix {
		for d, want := range tg.ToyRankMatrix[s] {
			if got[s][d] != want {
				t.Errorf("Rank(%s, %s) = %d, want %d",
					tg.ToyNames[s], tg.ToyNames[d], got[s][d], want)
			}
		}
	}
}

// TestToyExample1 pins the worked queries of Example 1: the reverse 2-ranks
// query of Alice returns {Bob, Caroline} and of Eric returns {Bob, Sid}.
func TestToyExample1(t *testing.T) {
	g := tg.Toy()
	for _, algo := range []Algorithm{Naive, Static, Dynamic} {
		e := NewEngine(g, Options{})
		res, err := e.Query(algo, tg.Alice, 2)
		if err != nil {
			t.Fatalf("%v Alice: %v", algo, err)
		}
		wantEntries(t, algo.String()+"/Alice", res,
			[]rank.Entry{{Node: tg.Bob, Rank: 3}, {Node: tg.Caroline, Rank: 4}})

		res, err = e.Query(algo, tg.Eric, 2)
		if err != nil {
			t.Fatalf("%v Eric: %v", algo, err)
		}
		wantEntries(t, algo.String()+"/Eric", res,
			[]rank.Entry{{Node: tg.Bob, Rank: 1}, {Node: tg.Sid, Rank: 1}})
	}
}

// TestToyDynamicPrunes checks the Section-4 worked example: the dynamic
// engine answers Alice's reverse 2-ranks query with exactly three rank
// refinements (Bob, Eric, Caroline), pruning Frank, Sid and George, while
// the static engine refines all six other researchers.
func TestToyDynamicPrunes(t *testing.T) {
	g := tg.Toy()
	e := NewEngine(g, Options{})

	res, err := e.Query(Static, tg.Alice, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Refinements != 6 {
		t.Errorf("static refinements = %d, want 6", res.Stats.Refinements)
	}

	res, err = e.Query(Dynamic, tg.Alice, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Refinements != 3 {
		t.Errorf("dynamic refinements = %d, want 3 (Bob, Eric, Caroline)", res.Stats.Refinements)
	}
	if res.Stats.PrunedByBound != 3 {
		t.Errorf("dynamic pruned = %d, want 3 (Frank, Sid, George)", res.Stats.PrunedByBound)
	}
}

// TestToyBruteForceOracle cross-checks the brute-force oracle itself on the
// toy graph for every query node and k.
func TestToyBruteForceOracle(t *testing.T) {
	g := tg.Toy()
	for q := int32(0); q < int32(g.N()); q++ {
		for k := 1; k <= g.N(); k++ {
			oracle := rank.BruteForceReverse(g, q, k)
			want := k
			if want > g.N()-1 {
				want = g.N() - 1
			}
			if len(oracle) != want {
				t.Fatalf("oracle size for q=%d k=%d: %d, want %d", q, k, len(oracle), want)
			}
			for _, e := range oracle {
				if e.Rank != tg.ToyRankMatrix[e.Node][q] {
					t.Errorf("oracle rank(%d,%d)=%d, want %d", e.Node, q, e.Rank, tg.ToyRankMatrix[e.Node][q])
				}
			}
		}
	}
}

func wantEntries(t *testing.T, label string, res *Result, want []rank.Entry) {
	t.Helper()
	if len(res.Entries) != len(want) {
		t.Fatalf("%s: got %v, want %v", label, res.Entries, want)
	}
	for i := range want {
		if res.Entries[i] != want[i] {
			t.Errorf("%s: entry %d = %v, want %v", label, i, res.Entries[i], want[i])
		}
	}
}
