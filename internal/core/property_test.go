package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"rkranks/internal/graph"
	"rkranks/internal/hub"
	"rkranks/internal/rank"
	"rkranks/internal/ridx"
	tg "rkranks/internal/testgraphs"
)

func mustIndex(t testing.TB, g *graph.Graph) *ridx.SerialIndex {
	t.Helper()
	ix, err := ridx.Build(g, ridx.BuildParams{
		Hubs: hub.Select(g, hub.DegreeFirst, g.N()/8+1, hub.Options{}),
		M:    g.N()/4 + 1,
		K:    16,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// tieHeavyGraph builds a random graph whose weights come from {1, 2}, so
// distance ties are pervasive — the hardest regime for the tie-aware rank
// bounds (Lemmas 2-4) and the refinement's early abort.
func tieHeavyGraph(seed int64, directed bool) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 10 + rng.Intn(40)
	b := graph.NewBuilder(directed)
	b.SetDedupe(true)
	b.EnsureNodes(n)
	m := n * (1 + rng.Intn(5))
	for i := 0; i < m; i++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u != v {
			b.MustAddEdge(u, v, float64(1+rng.Intn(2)))
		}
	}
	return b.Finalize()
}

// TestTieHeavyEnginesMatchOracle is the adversarial tie property test: on
// graphs where almost every distance collides, every engine must still
// produce a valid reverse k-ranks answer.
func TestTieHeavyEnginesMatchOracle(t *testing.T) {
	check := func(seed int64, directed bool) bool {
		g := tieHeavyGraph(seed, directed)
		e := NewEngine(g, Options{})
		e.SetIndex(mustIndex(t, g))
		rng := rand.New(rand.NewSource(seed ^ 99))
		for trial := 0; trial < 4; trial++ {
			q := int32(rng.Intn(g.N()))
			k := 1 + rng.Intn(10)
			oracle := rank.BruteForceReverse(g, q, k)
			for _, algo := range []Algorithm{Static, Dynamic, Indexed} {
				res, err := e.Query(algo, q, k)
				if err != nil {
					t.Logf("%v: %v", algo, err)
					return false
				}
				if len(res.Entries) != len(oracle) {
					t.Logf("seed=%d %v q=%d k=%d size %d want %d (%v vs %v)",
						seed, algo, q, k, len(res.Entries), len(oracle), res.Entries, oracle)
					return false
				}
				for i := range oracle {
					if res.Entries[i].Rank != oracle[i].Rank {
						t.Logf("seed=%d %v q=%d k=%d ranks %v vs %v",
							seed, algo, q, k, res.Entries, oracle)
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(func(seed int64) bool { return check(seed, false) }, cfg); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(seed int64) bool { return check(seed, true) }, cfg); err != nil {
		t.Error(err)
	}
}

// TestZeroWeightEdges: zero-weight edges create distance-0 tie clusters;
// ranks must stay consistent with the oracle.
func TestZeroWeightEdges(t *testing.T) {
	b := graph.NewBuilder(false)
	b.EnsureNodes(6)
	b.MustAddEdge(0, 1, 0)
	b.MustAddEdge(1, 2, 0)
	b.MustAddEdge(2, 3, 1)
	b.MustAddEdge(3, 4, 0)
	b.MustAddEdge(4, 5, 2)
	g := b.Finalize()
	e := NewEngine(g, Options{})
	for q := int32(0); int(q) < g.N(); q++ {
		for _, k := range []int{1, 3, 5} {
			oracle := rank.BruteForceReverse(g, q, k)
			for _, algo := range []Algorithm{Naive, Static, Dynamic} {
				res, err := e.Query(algo, q, k)
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Entries) != len(oracle) {
					t.Fatalf("%v q=%d k=%d: %v vs %v", algo, q, k, res.Entries, oracle)
				}
				for i := range oracle {
					if res.Entries[i].Rank != oracle[i].Rank {
						t.Fatalf("%v q=%d k=%d: %v vs %v", algo, q, k, res.Entries, oracle)
					}
				}
			}
		}
	}
}

// TestSingleNodeAndTinyGraphs exercises degenerate shapes.
func TestSingleNodeAndTinyGraphs(t *testing.T) {
	b := graph.NewBuilder(false)
	b.AddNode()
	g := b.Finalize()
	e := NewEngine(g, Options{})
	res, err := e.Query(Dynamic, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 0 {
		t.Errorf("single node produced %v", res.Entries)
	}

	two := tg.Path(2)
	e2 := NewEngine(two, Options{})
	res, err = e2.Query(Static, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 || res.Entries[0].Rank != 1 {
		t.Errorf("2-path result %v", res.Entries)
	}
}

// TestIsolatedQueryNode: a node nobody can reach has an empty result.
func TestIsolatedQueryNode(t *testing.T) {
	b := graph.NewBuilder(true)
	b.EnsureNodes(4)
	b.MustAddEdge(3, 0, 1) // 3 can reach 0; nothing reaches 3... except nothing
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(1, 2, 1)
	g := b.Finalize()
	e := NewEngine(g, Options{})
	for _, algo := range []Algorithm{Naive, Static, Dynamic} {
		res, err := e.Query(algo, 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Entries) != 0 {
			t.Errorf("%v: unreachable query node got %v", algo, res.Entries)
		}
	}
}

// TestSelfLoopsIgnoredByRanks: self-loops never change shortest paths.
func TestSelfLoopsIgnoredByRanks(t *testing.T) {
	b := graph.NewBuilder(false)
	b.EnsureNodes(3)
	b.MustAddEdge(0, 0, 0.1)
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(1, 2, 1)
	g := b.Finalize()
	e := NewEngine(g, Options{})
	res, err := e.Query(Dynamic, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []rank.Entry{{Node: 1, Rank: 1}, {Node: 2, Rank: 2}}
	for i := range want {
		if res.Entries[i] != want[i] {
			t.Fatalf("got %v, want %v", res.Entries, want)
		}
	}
}

// TestLargeKExceedsGraph: k larger than the reachable set returns everyone.
func TestLargeKExceedsGraph(t *testing.T) {
	g := tg.Toy()
	e := NewEngine(g, Options{})
	res, err := e.Query(Dynamic, tg.Alice, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 6 {
		t.Errorf("k=100 returned %d entries", len(res.Entries))
	}
}

// TestEngineReuseAcrossGraph: many interleaved queries on one engine (the
// epoch machinery) never leak state between queries.
func TestEngineReuseInterleaved(t *testing.T) {
	g := tieHeavyGraph(7, false)
	e := NewEngine(g, Options{})
	e.SetIndex(mustIndex(t, g))
	type key struct {
		algo Algorithm
		q    int32
		k    int
	}
	first := map[key]string{}
	for round := 0; round < 3; round++ {
		for _, algo := range []Algorithm{Static, Dynamic} {
			for q := int32(0); int(q) < g.N(); q += 5 {
				k := 1 + int(q)%7
				res, err := e.Query(algo, q, k)
				if err != nil {
					t.Fatal(err)
				}
				s := fmt.Sprint(res.Entries)
				kk := key{algo, q, k}
				if prev, ok := first[kk]; ok && prev != s {
					t.Fatalf("round %d %v q=%d k=%d drifted: %s vs %s", round, algo, q, k, prev, s)
				}
				first[kk] = s
			}
		}
	}
}
