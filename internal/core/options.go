// Package core implements the reverse k-ranks query engines of the paper:
// the brute-force baseline (Section 2), the static SDS-tree filter-and-
// refine framework (Section 3), the Dynamic Bounded SDS-tree (Section 4),
// and the index-assisted engine (Section 5). All engines operate on the
// same graph substrate and produce byte-identical canonical results — the
// minimum k entries by (rank, node id) — differing only in how much work
// they avoid.
package core

import (
	"fmt"
	"runtime"

	"rkranks/internal/graph"
	"rkranks/internal/hub"
)

// Algorithm selects a query engine.
type Algorithm int

const (
	// Naive evaluates Rank(p, q) for every node p (Section 2 baseline).
	Naive Algorithm = iota
	// Static is the basic SDS-tree filter-and-refine framework
	// (Section 3, Algorithm 1).
	Static
	// Dynamic is the Dynamic Bounded SDS-tree (Section 4, Theorem 2).
	Dynamic
	// Indexed is Dynamic plus the Check / Reverse-Rank dictionaries
	// (Section 5, Algorithms 3-4). Requires Engine.SetIndex.
	Indexed
	// HubLabel is Dynamic plus rank lower bounds derived from a precomputed
	// pruned 2-hop hub labeling (the ReHub direction): candidates whose
	// label scan already certifies rank > kRank are pruned without any
	// Dijkstra work, and only uncertified candidates fall back to CSR rank
	// refinement. Requires Options.Labels.
	HubLabel
)

// ParseAlgorithm maps a user-facing name to an Algorithm.
func ParseAlgorithm(name string) (Algorithm, error) {
	switch name {
	case "naive":
		return Naive, nil
	case "static":
		return Static, nil
	case "dynamic":
		return Dynamic, nil
	case "indexed":
		return Indexed, nil
	case "hublabel":
		return HubLabel, nil
	}
	return 0, fmt.Errorf("core: unknown algorithm %q (want naive|static|dynamic|indexed|hublabel)", name)
}

// String returns the canonical algorithm name.
func (a Algorithm) String() string {
	switch a {
	case Naive:
		return "naive"
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Indexed:
		return "indexed"
	case HubLabel:
		return "hublabel"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Bounds is a bitmask of the Theorem-2 lower-bound components used by the
// dynamic engines. The parent-rank bound (Lemma 1) is the backbone of the
// method; height (Lemma 2) and visit-count (Lemma 4) are optional
// tighteners, ablated in Tables 12-13 of the paper.
type Bounds uint8

const (
	// BoundParent uses Rank(parent(p), q) as a lower bound (Lemma 1).
	BoundParent Bounds = 1 << iota
	// BoundHeight uses p's depth in the SDS-tree (Lemma 2).
	BoundHeight
	// BoundCount uses the number of times p was settled during earlier
	// rank refinements (Lemma 4; undirected monochromatic graphs only).
	BoundCount

	// BoundsAll enables every component (the paper's Dynamic-Three).
	BoundsAll = BoundParent | BoundHeight | BoundCount
)

// ParseBounds maps a comma-free compact spec ("parent", "count", "height",
// "three") — the paper's ablation names — to a Bounds mask.
func ParseBounds(name string) (Bounds, error) {
	switch name {
	case "parent":
		return BoundParent, nil
	case "count":
		return BoundParent | BoundCount, nil
	case "height":
		return BoundParent | BoundHeight, nil
	case "three", "all":
		return BoundsAll, nil
	}
	return 0, fmt.Errorf("core: unknown bound strategy %q (want parent|count|height|three)", name)
}

// String renders the paper's ablation name for the mask.
func (b Bounds) String() string {
	switch b {
	case BoundParent:
		return "parent"
	case BoundParent | BoundCount:
		return "count"
	case BoundParent | BoundHeight:
		return "height"
	case BoundsAll:
		return "three"
	}
	s := ""
	if b&BoundParent != 0 {
		s += "+parent"
	}
	if b&BoundHeight != 0 {
		s += "+height"
	}
	if b&BoundCount != 0 {
		s += "+count"
	}
	if s == "" {
		return "none"
	}
	return s[1:]
}

// Options configures an Engine.
type Options struct {
	// Bounds selects the Theorem-2 components for the dynamic engines.
	// Zero means BoundsAll. Components that are unsound for the graph
	// (count on directed or bichromatic graphs, height on bichromatic
	// graphs) are disabled automatically.
	Bounds Bounds

	// Candidates restricts the result class V1 for bichromatic queries
	// (Definition 4): only nodes with Candidates[v] == true may appear in
	// results. Nil makes every node a candidate (monochromatic).
	Candidates []bool

	// Counted restricts the rank-counting class V2 for bichromatic queries
	// (Definition 3): Rank(s, t) counts only nodes with Counted[v] == true.
	// Nil counts every node.
	Counted []bool

	// DisableDistanceCutoff turns off the refinement frontier bound
	// (Algorithm 2's "push only nodes nearer than d(p, q)"). Results are
	// unchanged; refinements just carry a larger queue. Exists for the
	// ablation benchmark — leave it false in production.
	DisableDistanceCutoff bool

	// RefineWorkers enables intra-query parallel rank refinement: the
	// SDS-tree traversal stays on the calling goroutine while up to this
	// many worker goroutines speculatively run the rank refinements of
	// candidates inside a bounded lookahead window (see parallel.go).
	// Results are byte-identical to a serial run — speculation only ever
	// costs extra settled nodes, reflected in Stats.RefineSettled and the
	// Stats.Speculative* counters. 0 (the default) refines serially on
	// the calling goroutine; < 0 uses runtime.GOMAXPROCS(0).
	//
	// RefineWorkers cuts the latency of an individual query; a Pool cuts
	// the latency of a backlog. When both are in play, budget
	// (pool size) x (1 + RefineWorkers) against the machine — NewPool
	// does this automatically for default-sized pools.
	RefineWorkers int

	// Labels attaches a precomputed pruned 2-hop hub labeling
	// (hub.BuildLabels / hub.ReadLabels) and enables the HubLabel engine.
	// The labeling must cover the same graph the engine queries (same node
	// count and direction — NewEngine panics otherwise, mirroring the
	// candidate-slice length checks). Labels are read-only and safely
	// shared by every engine, pool, and shard built from the same Options.
	Labels *hub.Labels
}

// refineWorkers resolves the RefineWorkers option to an effective worker
// count.
func (o *Options) refineWorkers() int {
	if o.RefineWorkers < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.RefineWorkers
}

func (o *Options) bichromatic() bool { return o.Candidates != nil || o.Counted != nil }

// effectiveBounds disables components whose lemmas do not hold for the
// graph: Lemma 4 (count) requires an undirected monochromatic graph
// (the paper's footnote 1), and Lemma 2 (height) counts every hop on the
// path, which is only a rank bound when every node is counted.
func (o *Options) effectiveBounds(g *graph.Graph) Bounds {
	b := o.Bounds
	if b == 0 {
		b = BoundsAll
	}
	if g.Directed() || o.bichromatic() {
		b &^= BoundCount
	}
	if o.Counted != nil {
		b &^= BoundHeight
	}
	return b
}
