package core

import (
	"math"
	"reflect"
	"testing"

	"rkranks/internal/gen"
	"rkranks/internal/hub"
	"rkranks/internal/ridx"
)

// batchQueries builds a query list with duplicates and non-monotone order,
// the shapes that exercise shared-traversal replay: repeated queries replay
// whole refinement sets, nearby queries replay prefixes.
func batchQueries(n int) []int32 {
	var qs []int32
	for v := int32(0); v < int32(n); v += 3 {
		qs = append(qs, v)
	}
	for v := int32(n) - 1; v >= 0; v -= 4 {
		qs = append(qs, v)
	}
	qs = append(qs, qs[:len(qs)/2]...) // duplicates
	return qs
}

// TestBatchByteIdentity asserts the tentpole contract: a shared-traversal
// batch returns, query for query, byte-identical results to standalone
// per-query execution — for every algorithm, across pool sizes. For the
// index-free algorithms even the decision stats must match (replay changes
// effort counters only: RefineSettled and SharedTraversals); Indexed
// results are canonical but its stats depend on index state, which evolves
// with execution order.
func TestBatchByteIdentity(t *testing.T) {
	const k = 5
	for name, g := range testGraphs() {
		t.Run(name, func(t *testing.T) {
			qs := batchQueries(g.N())
			ix, err := ridx.BuildSharded(g, ridx.BuildParams{
				Hubs: hub.Select(g, hub.DegreeFirst, g.N()/10+1, hub.Options{Seed: 9}),
				M:    g.N() / 5,
				K:    8,
			}, 0)
			if err != nil {
				t.Fatal(err)
			}
			labels, err := hub.BuildLabels(g, hub.Order(g, hub.DegreeFirst, g.N(), hub.Options{Seed: 9}), 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range []Algorithm{Naive, Static, Dynamic, Indexed, HubLabel} {
				opts := Options{}
				if a == HubLabel {
					opts.Labels = labels
				}
				// Standalone reference: a fresh engine per query.
				want := make([]*Result, len(qs))
				for i, q := range qs {
					e := NewEngine(g, opts)
					if a == Indexed {
						e.SetIndex(ix)
					}
					res, err := e.Query(a, q, k)
					if err != nil {
						t.Fatal(err)
					}
					want[i] = res
				}
				for _, size := range []int{1, 3} {
					var p *Pool
					if a == Indexed {
						p, err = NewPoolWithIndex(g, Options{}, size, ix)
						if err != nil {
							t.Fatal(err)
						}
					} else {
						p = NewPool(g, opts, size)
					}
					got, err := p.QueryMany(a, qs, k)
					if err != nil {
						t.Fatal(err)
					}
					for i := range qs {
						if !reflect.DeepEqual(got[i].Entries, want[i].Entries) {
							t.Fatalf("%s/%v size=%d query %d: batch entries %v, standalone %v",
								name, a, size, qs[i], got[i].Entries, want[i].Entries)
						}
						if a == Indexed {
							continue
						}
						gs, ws := got[i].Stats, want[i].Stats
						// Neutralize the documented effort-only divergences.
						gs.RefineSettled, ws.RefineSettled = 0, 0
						gs.SharedTraversals, ws.SharedTraversals = 0, 0
						if gs != ws {
							t.Fatalf("%s/%v size=%d query %d: batch decision stats %+v, standalone %+v",
								name, a, size, qs[i], gs, ws)
						}
					}
				}
			}
		})
	}
}

// TestBatchSharesTraversals asserts the executor actually engages: a batch
// repeating one query on a single-engine pool must serve the repeat's
// refinements by replay, not fresh searches.
func TestBatchSharesTraversals(t *testing.T) {
	g := gen.DBLPLike(gen.DBLPLikeParams{Nodes: 200, AttachPerNode: 4, Seed: 3})
	p := NewPool(g, Options{}, 1)
	qs := []int32{17, 42, 17, 42, 17}
	got, err := p.QueryMany(Dynamic, qs, 8)
	if err != nil {
		t.Fatal(err)
	}
	var shared, refs int
	for _, r := range got {
		shared += r.Stats.SharedTraversals
		refs += r.Stats.Refinements
	}
	if shared == 0 {
		t.Fatalf("no shared traversals across %d refinements of a repeating batch", refs)
	}
	if got[0].Stats.SharedTraversals != 0 {
		t.Errorf("first query of the batch replayed %d refinements; nothing was stored yet",
			got[0].Stats.SharedTraversals)
	}
	// Repeats of an identical query replay every refinement: identical
	// cutoffs, identical kRank evolution, so every stored log covers.
	last := got[len(got)-1].Stats
	if last.SharedTraversals != last.Refinements {
		t.Errorf("repeat query replayed %d of %d refinements; identical repeats should replay all",
			last.SharedTraversals, last.Refinements)
	}
	for i, r := range got {
		if !reflect.DeepEqual(r.Entries, got[i%2].Entries) {
			t.Errorf("repeat %d diverged: %v vs %v", i, r.Entries, got[i%2].Entries)
		}
	}
}

// TestBatchBichromatic runs batches under candidate/counted classes, where
// replay must respect the counted filter and the descBound adjustments.
func TestBatchBichromatic(t *testing.T) {
	g, stores := gen.RoadNetwork(gen.RoadNetworkParams{Rows: 8, Cols: 8, KeepProb: 0.6, Stores: 12, Seed: 31})
	candidates, counted := gen.StoreClasses(g.N(), stores)
	opts := Options{Candidates: candidates, Counted: counted}
	var qs []int32
	for v := 0; v < g.N(); v++ {
		if counted[v] {
			qs = append(qs, int32(v))
		}
	}
	qs = append(qs, qs...)
	for _, a := range []Algorithm{Naive, Static, Dynamic} {
		want := make([]*Result, len(qs))
		for i, q := range qs {
			res, err := NewEngine(g, opts).Query(a, q, 4)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = res
		}
		p := NewPool(g, opts, 2)
		got, err := p.QueryMany(a, qs, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range qs {
			if !reflect.DeepEqual(got[i].Entries, want[i].Entries) {
				t.Fatalf("%v query %d: batch %v, standalone %v", a, qs[i], got[i].Entries, want[i].Entries)
			}
		}
	}
}

// TestBatchWithRefineWorkers runs batches on engines with the speculative
// intra-query pipeline enabled; the arena's replay hook sits on the inline
// path only, and results must stay canonical.
func TestBatchWithRefineWorkers(t *testing.T) {
	g := gen.DBLPLike(gen.DBLPLikeParams{Nodes: 150, AttachPerNode: 4, Seed: 7})
	qs := batchQueries(g.N())
	for _, a := range []Algorithm{Naive, Dynamic} {
		want := make([]*Result, len(qs))
		for i, q := range qs {
			res, err := NewEngine(g, Options{}).Query(a, q, 6)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = res
		}
		p := NewPool(g, Options{RefineWorkers: 2}, 2)
		got, err := p.QueryMany(a, qs, 6)
		if err != nil {
			t.Fatal(err)
		}
		for i := range qs {
			if !reflect.DeepEqual(got[i].Entries, want[i].Entries) {
				t.Fatalf("%v query %d: batch %v, standalone %v", a, qs[i], got[i].Entries, want[i].Entries)
			}
		}
	}
}

// TestArenaReplayRules unit-tests the replay scan against hand-built logs.
func TestArenaReplayRules(t *testing.T) {
	a := newBatchArena(10)
	a.begin()
	// Candidate 1's stored run: counted settles at dist 1, 2, 2, 3; ranks
	// tie-aware; ran with cutoff 3.5, exhausted its frontier.
	log := []settleRec{{node: 4, dist: 1, rank: 1}, {node: 5, dist: 2, rank: 2},
		{node: 6, dist: 2, rank: 2}, {node: 7, dist: 3, rank: 4}}
	a.store(1, 3.5, true, log)

	// Exact hit: query 6 stops at its own record.
	out, pre, ok := a.replay(1, 6, 3.5, 3.5, kRankInf)
	if !ok || !out.exact || out.bound != 2 || out.stopLevel != 2 || len(pre) != 3 {
		t.Fatalf("exact replay: out=%+v prefix=%d ok=%v", out, len(pre), ok)
	}
	// Abort: threshold 3 is reached by node 7's settle (strictly-closer 3).
	out, pre, ok = a.replay(1, 9, 3.5, 3.5, 3)
	if !ok || !out.aborted || out.bound != 4 || len(pre) != 4 {
		t.Fatalf("abort replay: out=%+v prefix=%d ok=%v", out, len(pre), ok)
	}
	// Narrower cutoff: a query with cutoff 1.5 exhausts after node 4.
	out, pre, ok = a.replay(1, 9, 1.5, 1.5, kRankInf)
	if !ok || out.exact || out.bound != int32(math.MaxInt32) || len(pre) != 1 {
		t.Fatalf("cutoff replay: out=%+v prefix=%d ok=%v", out, len(pre), ok)
	}
	// Exhausted coverage: cutoff equal to the stored one resolves
	// Unreachable; a wider one does not (the stored run may have dropped
	// frontier nodes between the cutoffs).
	if out, pre, ok = a.replay(1, 9, 3.5, 3.5, kRankInf); !ok || out.bound != int32(math.MaxInt32) || len(pre) != 4 {
		t.Fatalf("exhausted replay: out=%+v prefix=%d ok=%v", out, len(pre), ok)
	}
	if _, _, ok = a.replay(1, 9, 4.0, 4.0, kRankInf); ok {
		t.Fatal("replay resolved beyond stored coverage")
	}
	// Unknown candidate.
	if _, _, ok = a.replay(2, 9, 3.5, 3.5, kRankInf); ok {
		t.Fatal("replay hit for a candidate never stored")
	}
	// A non-exhausted stored log (early exact stop) must not resolve
	// Unreachable off its end.
	a.store(3, 10, false, log[:2])
	if _, _, ok = a.replay(3, 9, 10, 10, kRankInf); ok {
		t.Fatal("replay resolved off the end of a truncated log")
	}
	// The O(1) fast-miss guard must not fire when q's record sits exactly
	// at the log's coverage edge (d(p, q) equal to the last settle level).
	if out, pre, ok = a.replay(3, 5, 2.0, 2.0, kRankInf); !ok || !out.exact || out.bound != 2 || len(pre) != 2 {
		t.Fatalf("edge-of-coverage replay: out=%+v prefix=%d ok=%v", out, len(pre), ok)
	}
	// Shorter logs never replace longer ones; longer ones do replace.
	a.store(1, 2.0, false, log[:1])
	if ref := a.refs[1]; ref.n != 4 || !ref.exhausted {
		t.Fatalf("shorter log replaced a longer one: %+v", ref)
	}
	a.store(3, 10, false, log)
	if ref := a.refs[3]; ref.n != 4 {
		t.Fatalf("longer log did not replace: %+v", ref)
	}
	// begin invalidates everything stored.
	a.begin()
	if _, _, ok := a.replay(1, 6, 3.5, 3.5, kRankInf); ok {
		t.Fatal("replay hit across batch boundary")
	}
}
