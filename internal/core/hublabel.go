package core

// hubLabel is the Dynamic Bounded SDS-tree augmented with rank lower
// bounds read off a precomputed pruned 2-hop hub labeling (Options.Labels;
// the ReHub direction of PAPERS.md): before paying for a candidate's rank
// refinement, the engine counts counted nodes the labeling proves strictly
// closer to the candidate than the query node. When that count alone
// reaches kRank the candidate is disqualified — and, because the count is
// a certified lower bound, its SDS-subtree is cut by exactly the same
// tie-inclusive rule as every other Theorem-2 prune — without settling a
// single Dijkstra node. Only candidates the labeling cannot disqualify
// fall back to the CSR rank refinement, so every rank that reaches the
// result heap comes from the same refinement code path as Dynamic's and
// the canonical minimum-k-by-(rank, node) contract — shard-merge
// byte-identity, rank-floor certification, response-cache reuse — carries
// over unchanged.
func (e *Engine) hubLabel(q int32, k int) *Result {
	e.begin(q, k, HubLabel)
	e.tree.ResetReverse(q)
	for {
		v, d, ok := e.tree.Pop()
		if !ok || e.stopped() {
			break
		}
		seq := e.markTreeSettled(v)
		e.stats.TreeSettled++
		if v == q {
			e.tree.Expand(v, d)
			continue
		}
		if !e.candidate(v) {
			e.passThrough(v, d)
			continue
		}
		lb := e.lowerBound(v, 0)
		kRank := e.heap.kRank()
		if lb > kRank {
			e.skipCandidate(v, d, lb) // the plain Theorem-2 prune (as Dynamic)
			continue
		}
		if kRank != kRankInf {
			// The cheap Theorem-2 components did not disqualify v; scan the
			// labeling before conceding a refinement. Skipped while the
			// heap is short of k entries (kRank == kRankInf): nothing can
			// be pruned yet, and an unbounded count would walk entire
			// inverted lists.
			if lbl := e.labelBound(v, d, kRank); lbl > kRank {
				e.stats.LabelPruned++
				e.skipCandidate(v, d, lbl)
				continue
			}
		}
		e.stats.LabelFallbacks++
		e.refineAndSettle(v, d, seq)
	}
	return e.finish()
}

// labelBound returns a certified lower bound on Rank(p, q) from the hub
// labeling: 1 + the number of distinct counted nodes t != p with a
// label-certified d(p, t) < d(p, q). Label distances are real path
// lengths, hence upper bounds on true distances, so every node counted is
// genuinely strictly closer than q and the result is sound — it can only
// undercount. Counting stops at kRank (the caller prunes on lb > kRank,
// so kRank + 1 is as useful as the exact count and bounds the scan).
//
// dpq is v's SDS-tree pop distance d(p, q). The comparison threshold is
// deflated by the same relative epsilon sssp.Cutoff inflates by: a label
// path and the refiner's reverse-summed path can disagree by an ulp, and
// a node counted here that the refiner would rank as tied (not strictly
// closer) would break byte-identity with Dynamic. Deflation only forfeits
// genuine strictly-closer nodes within a hair of d(p, q) — weakening the
// bound, never unsounding it.
// The scan is two-tier. Tier 1 never touches individual entries: one
// hub's qualifying prefix is already a set of DISTINCT nodes, so its
// length minus one (p itself may sit in it) is a sound count all by
// itself, and the max over p's hubs costs only a binary search per hub.
// In the monochromatic case it alone certifies the vast majority of
// prunes. Only when that max falls short — and every node is potentially
// counted — does tier 2 walk the prefixes to count their union, deduping
// across hubs with an epoch-stamped array and stopping as soon as the
// count reaches kRank. Bichromatic queries skip tier 1 (a prefix length
// counts nodes outside the counted class) and go straight to tier 2.
func (e *Engine) labelBound(p int32, dpq float64, kRank int32) int32 {
	thr := dpq - dpq*1e-9
	ords, dists := e.labels.OutLabel(p)
	invOff, invNode, invDist := e.labels.Inv()
	if e.opts.Counted == nil {
		// The prune needs count >= kRank, and one hub's qualifying prefix
		// needs length kRank+1 to certify that (its entries are distinct
		// nodes; minus one because p itself may sit in it). The in-list is
		// distance-sorted, so that reduces to ONE probe per hub: does the
		// entry at index kRank still clear the threshold?
		for i, j := range ords {
			dph := dists[i]
			if dph >= thr {
				break // the label is distance-sorted: every later hub is farther
			}
			lo, hi := invOff[j], invOff[j+1]
			if hi-lo > kRank && dph+invDist[lo+kRank] < thr {
				return kRank + 1
			}
		}
	}

	if e.lbseen == nil {
		e.lbseen = make([]uint32, e.g.N())
	}
	e.lbepoch++
	if e.lbepoch == 0 {
		clear(e.lbseen)
		e.lbepoch = 1
	}
	count := int32(0)
	for i, j := range ords {
		dph := dists[i]
		if dph >= thr {
			break
		}
		lo, hi := invOff[j], invOff[j+1]
		if hi == lo || dph+invDist[lo] >= thr {
			continue
		}
		for x := lo; x < hi; x++ {
			if dph+invDist[x] >= thr {
				break
			}
			e.stats.LabelScanned++
			t := invNode[x]
			if t == p || e.lbseen[t] == e.lbepoch || !e.counted(t) {
				continue
			}
			e.lbseen[t] = e.lbepoch
			count++
			if count >= kRank {
				return kRank + 1
			}
		}
	}
	return count + 1
}
