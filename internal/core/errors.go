package core

import (
	"errors"
	"fmt"
)

// Sentinel errors for request validation and admission, designed for
// errors.Is dispatch at serving boundaries (internal/server maps
// ErrInvalidArgument to HTTP 400 and context errors to 504). Every
// validation failure the engine or pool reports wraps ErrInvalidArgument,
// and the more specific sentinels below additionally wrap it, so callers
// can branch as coarsely or finely as they need.
var (
	// ErrInvalidArgument is the root of every request-validation error.
	ErrInvalidArgument = errors.New("invalid argument")

	// ErrUnknownAlgorithm reports an Algorithm value outside the four
	// defined engines.
	ErrUnknownAlgorithm = fmt.Errorf("unknown algorithm: %w", ErrInvalidArgument)

	// ErrInvalidK reports a result size k < 1, or one exceeding the
	// attached index's MaxK for Indexed queries.
	ErrInvalidK = fmt.Errorf("invalid k: %w", ErrInvalidArgument)

	// ErrInvalidQueryNode reports a query node outside [0, N), or outside
	// the counted class for bichromatic queries.
	ErrInvalidQueryNode = fmt.Errorf("invalid query node: %w", ErrInvalidArgument)

	// ErrIndexRequired reports an Indexed query against an engine without
	// SetIndex, or a pool built without NewPoolWithIndex.
	ErrIndexRequired = fmt.Errorf("index required: %w", ErrInvalidArgument)

	// ErrLabelsRequired reports a HubLabel query against an engine or pool
	// built without Options.Labels.
	ErrLabelsRequired = fmt.Errorf("hub labels required: %w", ErrInvalidArgument)
)

// ValidateRequest checks the (algorithm, k) pair every query entry point
// shares, with the same typed errors the engine and pool report. Serving
// layers that fan a query out to several pools (internal/cluster) call it
// once up front so a malformed request never reaches a shard.
func ValidateRequest(a Algorithm, k int) error { return validateRequest(a, k) }

// validateRequest checks the (algorithm, k) pair every query entry point
// shares. The pool performs it before borrowing an engine, so a malformed
// request is rejected immediately instead of occupying a permit.
func validateRequest(a Algorithm, k int) error {
	switch a {
	case Naive, Static, Dynamic, Indexed, HubLabel:
	default:
		return fmt.Errorf("core: algorithm %d: %w", int(a), ErrUnknownAlgorithm)
	}
	if k < 1 {
		return fmt.Errorf("core: k must be >= 1, got %d: %w", k, ErrInvalidK)
	}
	return nil
}
