package core

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"rkranks/internal/gen"
	"rkranks/internal/graph"
	"rkranks/internal/hub"
	"rkranks/internal/rank"
	"rkranks/internal/ridx"
	"rkranks/internal/sssp"
)

// checkValidResult asserts that res is a correct reverse k-ranks answer per
// Definition 2: every reported rank is truthful (re-verified from scratch),
// the result has the right size, and the multiset of ranks matches the
// oracle's (tie groups may resolve to different nodes; any resolution is a
// valid answer).
func checkValidResult(t *testing.T, g *graph.Graph, label string, res *Result, oracle []rank.Entry) {
	t.Helper()
	if len(res.Entries) != len(oracle) {
		t.Fatalf("%s: got %d entries, want %d (got %v, oracle %v)",
			label, len(res.Entries), len(oracle), res.Entries, oracle)
	}
	s := sssp.New(g)
	for i, e := range res.Entries {
		if truth := rank.Of(s, e.Node, res.Query); truth != e.Rank {
			t.Errorf("%s: entry %d reports Rank(%d,%d)=%d, truth %d",
				label, i, e.Node, res.Query, e.Rank, truth)
		}
		if i > 0 && !lessEntry(res.Entries[i-1], e) {
			t.Errorf("%s: entries not in (rank, node) order at %d: %v", label, i, res.Entries)
		}
	}
	for i := range oracle {
		if res.Entries[i].Rank != oracle[i].Rank {
			t.Fatalf("%s: rank multiset mismatch at %d: got %v, oracle %v",
				label, i, res.Entries, oracle)
		}
	}
}

func lessEntry(a, b rank.Entry) bool {
	if a.Rank != b.Rank {
		return a.Rank < b.Rank
	}
	return a.Node < b.Node
}

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"undirected-sparse": gen.GNM(60, 90, false, 1),
		"undirected-dense":  gen.GNM(50, 400, false, 2),
		"directed-sparse":   gen.GNM(60, 150, true, 3),
		"directed-dense":    gen.GNM(40, 400, true, 4),
		"disconnected":      gen.GNM(70, 45, false, 5),
		"dblp-like":         gen.DBLPLike(gen.DBLPLikeParams{Nodes: 80, AttachPerNode: 3, Seed: 6}),
		"epinions-like":     gen.EpinionsLike(gen.EpinionsLikeParams{Nodes: 80, OutPerNode: 3, BackEdgeProb: 0.3, Seed: 7}),
	}
}

// TestEnginesMatchOracle verifies every engine against the brute-force
// oracle on a spread of random topologies, query nodes, and k values.
func TestEnginesMatchOracle(t *testing.T) {
	for name, g := range testGraphs() {
		t.Run(name, func(t *testing.T) {
			e := NewEngine(g, Options{})
			maxK := 12
			ix, err := ridx.Build(g, ridx.BuildParams{
				Hubs: hub.Select(g, hub.DegreeFirst, g.N()/10+1, hub.Options{Seed: 9}),
				M:    g.N() / 5,
				K:    maxK,
			})
			if err != nil {
				t.Fatal(err)
			}
			e.SetIndex(ix)
			for q := int32(0); q < int32(g.N()); q += 7 {
				for _, k := range []int{1, 2, 5, maxK} {
					oracle := rank.BruteForceReverse(g, q, k)
					for _, algo := range []Algorithm{Naive, Static, Dynamic, Indexed} {
						res, err := e.Query(algo, q, k)
						if err != nil {
							t.Fatalf("%v q=%d k=%d: %v", algo, q, k, err)
						}
						checkValidResult(t, g, fmt.Sprintf("%s/%v q=%d k=%d", name, algo, q, k), res, oracle)
					}
				}
			}
		})
	}
}

// TestBoundStrategiesMatchOracle runs the dynamic engine under each Table
// 12/13 bound ablation and checks validity: weaker bounds must never change
// answers, only work.
func TestBoundStrategiesMatchOracle(t *testing.T) {
	g := gen.GNM(70, 200, false, 11)
	for _, spec := range []string{"parent", "count", "height", "three"} {
		b, err := ParseBounds(spec)
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(g, Options{Bounds: b})
		for q := int32(0); q < int32(g.N()); q += 5 {
			for _, k := range []int{1, 3, 8} {
				oracle := rank.BruteForceReverse(g, q, k)
				res, err := e.Query(Dynamic, q, k)
				if err != nil {
					t.Fatal(err)
				}
				checkValidResult(t, g, fmt.Sprintf("bounds=%s q=%d k=%d", spec, q, k), res, oracle)
			}
		}
	}
}

// TestIndexedRepeatedQueries runs a long randomized query sequence against
// one evolving index: the dynamic updates of Section 5.3 must never corrupt
// answers, and refinement counts should not grow as the index absorbs
// queries.
func TestIndexedRepeatedQueries(t *testing.T) {
	g := gen.DBLPLike(gen.DBLPLikeParams{Nodes: 120, AttachPerNode: 3, Seed: 21})
	ix, err := ridx.Build(g, ridx.BuildParams{
		Hubs: hub.Select(g, hub.DegreeFirst, 12, hub.Options{}),
		M:    24, K: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(g, Options{})
	e.SetIndex(ix)
	for round := 0; round < 3; round++ {
		for q := int32(0); q < int32(g.N()); q += 3 {
			k := 1 + int(q)%10
			oracle := rank.BruteForceReverse(g, q, k)
			res, err := e.Query(Indexed, q, k)
			if err != nil {
				t.Fatal(err)
			}
			checkValidResult(t, g, fmt.Sprintf("round=%d q=%d k=%d", round, q, k), res, oracle)
		}
	}
}

// bruteBichromatic is the oracle for Definitions 3-4: for every candidate
// p in V1, count the V2 nodes strictly closer to p than q.
func bruteBichromatic(g *graph.Graph, q int32, k int, candidates, counted []bool) []rank.Entry {
	s := sssp.New(g)
	dist := make([]float64, g.N())
	var all []rank.Entry
	for p := 0; p < g.N(); p++ {
		if int32(p) == q || !candidates[p] {
			continue
		}
		sssp.AllDistances(s, int32(p), dist)
		if math.IsInf(dist[q], 1) {
			continue
		}
		cnt := int32(0)
		for v := 0; v < g.N(); v++ {
			if int32(v) == q || v == p || !counted[v] {
				continue
			}
			if dist[v] < dist[q] {
				cnt++
			}
		}
		all = append(all, rank.Entry{Node: int32(p), Rank: cnt + 1})
	}
	rank.SortEntries(all)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// TestBichromaticMatchesOracle exercises Definitions 3-4 on a small road
// network with store nodes as the query class.
func TestBichromaticMatchesOracle(t *testing.T) {
	g, stores := gen.RoadNetwork(gen.RoadNetworkParams{Rows: 8, Cols: 8, KeepProb: 0.4, Stores: 10, Seed: 31})
	candidates, counted := gen.StoreClasses(g.N(), stores)
	opts := Options{Candidates: candidates, Counted: counted}
	e := NewEngine(g, opts)
	ix, err := ridx.Build(g, ridx.BuildParams{
		Hubs:    hub.Select(g, hub.DegreeFirst, 12, hub.Options{}),
		M:       20,
		K:       8,
		Counted: counted, Candidates: candidates,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.SetIndex(ix)
	for _, q := range stores {
		for _, k := range []int{1, 3, 8} {
			oracle := bruteBichromatic(g, q, k, candidates, counted)
			for _, algo := range []Algorithm{Naive, Static, Dynamic, Indexed} {
				res, err := e.Query(algo, q, k)
				if err != nil {
					t.Fatalf("%v q=%d k=%d: %v", algo, q, k, err)
				}
				label := fmt.Sprintf("bi/%v q=%d k=%d", algo, q, k)
				if len(res.Entries) != len(oracle) {
					t.Fatalf("%s: size %d want %d (%v vs %v)", label, len(res.Entries), len(oracle), res.Entries, oracle)
				}
				for i := range oracle {
					if res.Entries[i].Rank != oracle[i].Rank {
						t.Fatalf("%s: ranks %v, oracle %v", label, res.Entries, oracle)
					}
					if !candidates[res.Entries[i].Node] {
						t.Errorf("%s: non-candidate %d in result", label, res.Entries[i].Node)
					}
				}
			}
		}
	}
}

// TestQueryArgumentValidation covers the error paths.
func TestQueryArgumentValidation(t *testing.T) {
	g := gen.GNM(10, 20, false, 1)
	e := NewEngine(g, Options{})
	if _, err := e.Query(Dynamic, -1, 3); err == nil {
		t.Error("negative query node accepted")
	}
	if _, err := e.Query(Dynamic, 99, 3); err == nil {
		t.Error("out-of-range query node accepted")
	}
	if _, err := e.Query(Dynamic, 0, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := e.Query(Indexed, 0, 3); err == nil {
		t.Error("indexed query without index accepted")
	}
	ix, err := ridx.Build(g, ridx.BuildParams{Hubs: []int32{0}, M: 5, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	e.SetIndex(ix)
	if _, err := e.Query(Indexed, 0, 3); err == nil {
		t.Error("k above index K accepted")
	}
	if _, err := e.Query(Algorithm(42), 0, 3); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

// TestResultDeterminism: repeated identical queries produce bit-identical
// results and equal work counters (for index-free engines).
func TestResultDeterminism(t *testing.T) {
	g := gen.GNM(80, 240, false, 13)
	e := NewEngine(g, Options{})
	for _, algo := range []Algorithm{Static, Dynamic} {
		a, err := e.Query(algo, 5, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.Query(algo, 5, 7)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(a.Entries) != fmt.Sprint(b.Entries) || a.Stats != b.Stats {
			t.Errorf("%v: nondeterministic: %+v vs %+v", algo, a, b)
		}
	}
}

// TestStatsMonotonicity checks the headline efficiency claim on a
// power-law graph: dynamic never refines more than static, and indexed
// never refines more than dynamic (averaged over queries).
func TestStatsMonotonicity(t *testing.T) {
	g := gen.DBLPLike(gen.DBLPLikeParams{Nodes: 300, AttachPerNode: 4, Seed: 17})
	ix, err := ridx.Build(g, ridx.BuildParams{
		Hubs: hub.Select(g, hub.DegreeFirst, 30, hub.Options{}),
		M:    60, K: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(g, Options{})
	e.SetIndex(ix)
	var static, dynamic, indexed int
	for q := int32(0); q < 300; q += 11 {
		rs, err := e.Query(Static, q, 10)
		if err != nil {
			t.Fatal(err)
		}
		rd, err := e.Query(Dynamic, q, 10)
		if err != nil {
			t.Fatal(err)
		}
		ri, err := e.Query(Indexed, q, 10)
		if err != nil {
			t.Fatal(err)
		}
		static += rs.Stats.Refinements
		dynamic += rd.Stats.Refinements
		indexed += ri.Stats.Refinements
	}
	if dynamic > static {
		t.Errorf("dynamic refinements %d > static %d", dynamic, static)
	}
	if indexed > dynamic {
		t.Errorf("indexed refinements %d > dynamic %d", indexed, dynamic)
	}
	t.Logf("refinements: static=%d dynamic=%d indexed=%d", static, dynamic, indexed)
}

// TestNodesHelper covers Result accessors.
func TestNodesHelper(t *testing.T) {
	r := &Result{Query: 1, K: 2, Entries: []rank.Entry{{Node: 4, Rank: 2}, {Node: 9, Rank: 3}}}
	nodes := r.Nodes()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	if nodes[0] != 4 || nodes[1] != 9 {
		t.Errorf("Nodes() = %v", nodes)
	}
	if r.KRank() != 3 {
		t.Errorf("KRank() = %d", r.KRank())
	}
	if (&Result{}).KRank() != 0 {
		t.Error("empty KRank != 0")
	}
	if r.String() == "" {
		t.Error("empty String()")
	}
}
