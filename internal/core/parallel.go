// Intra-query parallel refinement (Options.RefineWorkers > 0).
//
// PR 1 made throughput scale by pooling engines; this file makes a SINGLE
// query scale. The paper's cost model (Sections 3-5) shows rank
// refinements dominate query time, and refinements are independent
// partial Dijkstra searches coupled only through the kRank prune bound —
// so they can run speculatively on worker goroutines while the SDS-tree
// pop loop stays serial on the coordinator.
//
// The scheme preserves byte-identical results relative to a serial run:
//
//   - POP ORDER. The coordinator pops ahead of unapplied ("in-flight")
//     entries only when the peeked distance is strictly below every
//     in-flight node's child floor d(u) + minArc(u) (the smallest weight
//     of u's transpose arcs). A pending expansion can only insert — or
//     decrease-key — nodes at or above that floor, so a pop below it is
//     provably the serial-order pop, including the (dist, id) tie-break.
//     Equal distances stall rather than speculate.
//
//   - DECISIONS. Whether a popped candidate is pruned (Theorem 2),
//     answered by the index, or refined is decided at APPLY time, in pop
//     order, against fully serial state (kRank, Lemma-4 counters,
//     descendant bounds, dictionaries). Workers never touch any of it.
//
//   - REFINEMENTS. Workers run the partial Dijkstra side-effect-free
//     against a live atomic kRank snapshot. The snapshot is monotone
//     nonincreasing and always >= the serial threshold at apply time, so
//     a speculative search stops at or after the serial stopping point;
//     replayRefinement then recovers the serial (bound, exact, log
//     prefix) from the worker's settle log, and the coordinator applies
//     heap offers, descendant bounds, Lemma-4 bumps, and index
//     Offer/RaiseCheck feedback in deterministic pop order.
//
//   - SPECULATION POLICY. A refinement is launched at pop time unless the
//     stale state already proves it pointless: the Theorem-2 components
//     only grow and kRank only falls, so stale-prunable implies
//     prunable-at-apply and skipping such a launch never forfeits a
//     needed refinement. The rare converse (an index entry seen at pop
//     time but evicted by apply time) falls back to an inline serial
//     refinement.
//
//   - WORK STEALING. Jobs are claimed with a CAS by whoever executes them
//     first. When serial order reaches a candidate whose job no worker
//     has started — workers saturated, or a loaded/small machine — the
//     coordinator reclaims it and refines inline instead of sleeping, so
//     the pipeline degrades gracefully toward plain serial execution
//     (same asymptotics, a few atomics of overhead) rather than
//     serializing on scheduler wake-ups. On GOMAXPROCS=1 this makes
//     RefineWorkers > 0 nearly free instead of pathological.
//
// Consequently Result.Entries, Result.Trace, and all decision counters
// (TreeSettled, PrunedByBound, IndexHits, Refinements, RefineAborted,
// bound wins) are byte-identical to a serial run for all four algorithms;
// only RefineSettled (speculative searches may settle further before
// aborting) and the Speculative* counters differ. A stale kRank costs
// extra settled nodes, never wrong answers.
//
// Worker goroutines are started once per engine and park on the job
// channel between queries; a runtime cleanup closes the channel when the
// engine becomes unreachable. Refiner parameters are re-prepared between
// queries, which is race-free because a query never ends with jobs in
// flight (every completion token is consumed before finish).
package core

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"weak"

	"rkranks/internal/graph"
	"rkranks/internal/rank"
)

// lookaheadSlack is added to 2x the worker count to size the speculation
// window: enough in-flight candidates to keep every worker busy while the
// coordinator applies, without letting snapshots go very stale.
const lookaheadSlack = 2

// parallelState is the per-engine machinery for intra-query parallel
// refinement: one refiner per worker, a window-sized slab of jobs, the
// pending ring, and the per-node child floors for the safe-pop rule.
// Built lazily on the first parallel query.
type parallelState struct {
	workers  int
	refiners []*refiner
	jobsSlab []refineJob
	jobs     chan *refineJob // persistent; workers range over it
	free     []*refineJob    // tokens consumed, ready for reuse
	zombies  []*refineJob    // stolen/unstarted jobs whose token is pending
	ring     []pendingEntry
	minArc   []float64    // min transpose-arc weight per node (+Inf: leaf)
	kRank    atomic.Int32 // live prune-bound snapshot read by workers
}

// refineJob carries one speculative refinement between the coordinator
// and a worker. claimed is CAS-taken by whoever executes the job (worker
// or stealing coordinator); done is a 1-buffered completion token the
// worker always sends after dequeueing, and ready records that the
// coordinator has consumed it.
type refineJob struct {
	p       int32
	dpq     float64
	claimed atomic.Bool
	cancel  atomic.Bool
	done    chan struct{}
	ready   bool
	out     refineResult
	log     []settleRec
}

// pendingEntry is one popped-but-unapplied SDS-tree node (or, for the
// naive pipeline, one candidate id with d unused).
type pendingEntry struct {
	v   int32
	d   float64
	seq int32
	job *refineJob // nil: no speculative refinement launched
}

func newParallelState(g *graph.Graph, workers int) *parallelState {
	window := 2*workers + lookaheadSlack
	ps := &parallelState{
		workers:  workers,
		refiners: make([]*refiner, workers),
		jobsSlab: make([]refineJob, window),
		jobs:     make(chan *refineJob, window),
		free:     make([]*refineJob, 0, window),
		zombies:  make([]*refineJob, 0, window),
		ring:     make([]pendingEntry, window),
		minArc:   minTransposeArcShared(g),
	}
	for i := range ps.refiners {
		ps.refiners[i] = newRefiner(g)
	}
	for i := range ps.jobsSlab {
		ps.jobsSlab[i].done = make(chan struct{}, 1)
	}
	for i := 0; i < workers; i++ {
		rf := ps.refiners[i]
		go func() {
			for j := range ps.jobs {
				if j.claimed.CompareAndSwap(false, true) {
					j.out, j.log = rf.run(j.p, j.dpq, ps.kRank.Load(), &ps.kRank, &j.cancel, j.log[:0])
				}
				j.done <- struct{}{}
			}
		}()
	}
	return ps
}

// minArcCache shares the per-node child floors between every engine over
// the same (immutable) graph — a pool of P engines pays one O(N+M) scan
// and holds one array instead of P. Keys are weak pointers and entries are
// purged by a cleanup when the graph is collected, so the cache never
// keeps a graph alive.
var minArcCache sync.Map // weak.Pointer[graph.Graph] -> []float64

func minTransposeArcShared(g *graph.Graph) []float64 {
	key := weak.Make(g)
	if v, ok := minArcCache.Load(key); ok {
		return v.([]float64)
	}
	m := minTransposeArc(g)
	if v, loaded := minArcCache.LoadOrStore(key, m); loaded {
		return v.([]float64)
	}
	runtime.AddCleanup(g, func(k weak.Pointer[graph.Graph]) { minArcCache.Delete(k) }, key)
	return m
}

// minTransposeArc computes, per node, the smallest weight of any transpose
// out-arc: a floor on how far above d(u) node u's SDS-tree expansion can
// inject (or decrease-key) frontier entries. Leaves get +Inf and never
// block speculation; zero-weight arcs make the floor d(u) itself, which
// degrades that subtree to serial order — still correct, just unsped.
func minTransposeArc(g *graph.Graph) []float64 {
	out := make([]float64, g.N())
	for v := range out {
		m := math.Inf(1)
		_, ws := g.RNeighbors(int32(v))
		for _, w := range ws {
			if w < m {
				m = w
			}
		}
		out[v] = m
	}
	return out
}

// parState returns the engine's parallel machinery, built (and its worker
// goroutines started) on first use.
func (e *Engine) parState() *parallelState {
	if e.par == nil {
		e.par = newParallelState(e.g, e.opts.refineWorkers())
		// Workers park on the job channel between queries; when the
		// engine becomes unreachable the cleanup closes the channel and
		// they exit. The cleanup captures only the channel, so it never
		// keeps the engine alive.
		runtime.AddCleanup(e, func(ch chan *refineJob) { close(ch) }, e.par.jobs)
	}
	return e.par
}

// beginParallel prepares the per-query parallel state. Safe because the
// previous query consumed every completion token, so no worker can be
// touching a refiner or job.
func (e *Engine) beginParallel() *parallelState {
	ps := e.parState()
	for _, rf := range ps.refiners {
		rf.prepare(e.q, e.opts.Counted, e.opts.DisableDistanceCutoff, e.stop)
	}
	ps.kRank.Store(e.heap.kRank())
	ps.free = ps.free[:0]
	for i := range ps.jobsSlab {
		ps.free = append(ps.free, &ps.jobsSlab[i])
	}
	ps.zombies = ps.zombies[:0]
	return ps
}

// endParallel consumes the completion tokens of stolen jobs so the next
// query (or engine reuse) starts with a quiescent slab. The workers are
// alive, so every token arrives as soon as the channel drains.
func (e *Engine) endParallel(ps *parallelState) {
	for _, j := range ps.zombies {
		waitJob(j)
	}
	ps.zombies = ps.zombies[:0]
}

// acquireJob returns a reusable job slot, reclaiming stolen jobs whose
// tokens have since arrived; nil when none is available (the caller then
// skips speculation — the candidate will be refined inline at apply time).
func (ps *parallelState) acquireJob() *refineJob {
	if len(ps.free) == 0 {
		zs := ps.zombies[:0]
		for _, j := range ps.zombies {
			if pollJob(j) {
				ps.free = append(ps.free, j)
			} else {
				zs = append(zs, j)
			}
		}
		ps.zombies = zs
		if len(ps.free) == 0 {
			return nil
		}
	}
	j := ps.free[len(ps.free)-1]
	ps.free = ps.free[:len(ps.free)-1]
	return j
}

func pollJob(j *refineJob) bool {
	if j.ready {
		return true
	}
	select {
	case <-j.done:
		j.ready = true
		return true
	default:
		return false
	}
}

func waitJob(j *refineJob) {
	if !j.ready {
		<-j.done
		j.ready = true
	}
}

// treeParallel runs the Static, Dynamic, or Indexed engine with
// speculative parallel refinement. See the comment at the top of this
// file for the scheme and its determinism argument.
func (e *Engine) treeParallel(algo Algorithm, q int32, k int) *Result {
	e.begin(q, k, algo)
	if algo == Indexed {
		e.seedFromIndex()
	}
	e.tree.ResetReverse(q)
	ps := e.beginParallel()

	window := len(ps.ring)
	ring := ps.ring
	head, count := 0, 0

	for !e.stopped() {
		// Eagerly apply every finished head: earlier side effects tighten
		// kRank and the Lemma-4 counters, which both sharpens later
		// submission decisions and lets in-flight workers abort sooner.
		for count > 0 && !e.stopped() {
			en := &ring[head]
			if en.job != nil && !pollJob(en.job) {
				break
			}
			e.applyEntry(algo, en, ps)
			head = (head + 1) % window
			count--
		}
		if e.stopped() {
			break
		}
		if count < window {
			if v, d, ok := e.tree.Peek(); ok && (count == 0 || d < specBarrier(ring, head, count, window, ps.minArc)) {
				e.tree.Pop()
				seq := e.markTreeSettled(v)
				en := pendingEntry{v: v, d: d, seq: seq}
				en.job = e.maybeSpeculate(algo, v, d, ps)
				ring[(head+count)%window] = en
				count++
				continue
			}
		}
		if count > 0 {
			e.applyEntry(algo, &ring[head], ps)
			head = (head + 1) % window
			count--
			continue
		}
		break // frontier exhausted, nothing pending
	}

	e.drainPending(ps, ring, head, count, window)
	e.endParallel(ps)
	return e.finish()
}

// drainPending discards every popped-but-unapplied entry — the
// cancellation exit path (count is always 0 on a normal exit). Discarded
// jobs are canceled or reclaimed, never applied, so a canceled query
// cannot feed truncated refinement logs into the heap, the Lemma-4
// counters, or a shared index.
func (e *Engine) drainPending(ps *parallelState, ring []pendingEntry, head, count, window int) {
	for i := 0; i < count; i++ {
		en := &ring[(head+i)%window]
		e.discardJob(ps, en.job)
		en.job = nil
	}
}

// specBarrier returns the exclusive distance bound below which the next
// tree pop is provably the serial-order pop: every in-flight entry u may
// still expand at apply time, injecting children no closer than
// d(u) + minArc(u). Ties must stall — an injected child at exactly the
// peeked distance could carry a smaller id and would pop first serially.
func specBarrier(ring []pendingEntry, head, count, window int, minArc []float64) float64 {
	barrier := math.Inf(1)
	for i := 0; i < count; i++ {
		en := &ring[(head+i)%window]
		if b := en.d + minArc[en.v]; b < barrier {
			barrier = b
		}
	}
	return barrier
}

// maybeSpeculate decides, on stale (pop-time) state, whether refining v is
// potentially needed, and if so launches a worker job for it. Skipping is
// safe exactly when the stale state already PROVES the apply-time decision
// (see the file comment); when in doubt it launches and lets applyEntry
// discard.
func (e *Engine) maybeSpeculate(algo Algorithm, v int32, d float64, ps *parallelState) *refineJob {
	if v == e.q || !e.candidate(v) {
		return nil
	}
	if algo != Static {
		var check int32
		if e.indexing {
			check = e.idx.Check(v)
			if _, known := e.idx.LookupRank(e.q, v); known {
				return nil
			}
		}
		if e.lowerBoundAt(v, check, false) > e.heap.kRank() {
			return nil // already provably pruned at apply time
		}
	}
	j := ps.acquireJob()
	if j == nil {
		return nil
	}
	e.submitJob(ps, j, v, d)
	return j
}

func (e *Engine) submitJob(ps *parallelState, j *refineJob, p int32, dpq float64) {
	j.p, j.dpq = p, dpq
	j.ready = false
	j.claimed.Store(false)
	j.cancel.Store(false)
	e.stats.SpeculativeRefinements++
	ps.jobs <- j // never blocks: the channel is window-buffered
}

// applyEntry processes one pending entry in pop order against fully
// serial state, mirroring the serial engines' dequeue handling decision
// for decision.
func (e *Engine) applyEntry(algo Algorithm, en *pendingEntry, ps *parallelState) {
	v, d := en.v, en.d
	e.stats.TreeSettled++
	switch {
	case v == e.q:
		e.discardJob(ps, en.job)
		e.tree.Expand(v, d)
	case !e.candidate(v):
		e.discardJob(ps, en.job)
		e.passThrough(v, d)
	default:
		e.applyCandidate(algo, en, ps)
	}
	en.job = nil
	ps.kRank.Store(e.heap.kRank())
}

func (e *Engine) applyCandidate(algo Algorithm, en *pendingEntry, ps *parallelState) {
	v, d := en.v, en.d
	var check int32
	if e.indexing {
		check = e.idx.Check(v) // before LookupRank; see indexed()
		if r, known := e.idx.LookupRank(e.q, v); known {
			e.discardJob(ps, en.job)
			e.indexHit(v, d, r)
			return
		}
	}
	if algo != Static {
		if lb := e.lowerBound(v, check); lb > e.heap.kRank() {
			e.discardJob(ps, en.job)
			e.skipCandidate(v, d, lb)
			return
		}
	}
	j := en.job
	if j == nil {
		// Speculation was skipped (stale index hit since evicted, or no
		// free job slot); refine inline with exact serial semantics.
		e.refineAndSettle(v, d, en.seq)
		return
	}
	if e.stealJob(ps, j) {
		e.refineAndSettle(v, d, en.seq)
		return
	}
	waitJob(j)
	if j.out.stopped {
		// The worker stopped mid-search because the query's context was
		// canceled; its log is truncated below any serial stop point and
		// must not be replayed or applied. The coordinator sees the stop
		// flag on its next loop check and abandons the query.
		ps.free = append(ps.free, j)
		return
	}
	bound, exact, stopLevel, n := e.replayAndAccount(j)
	e.applyRefineLog(v, j.log[:n], bound, exact, stopLevel, en.seq)
	ps.free = append(ps.free, j)
	e.settleRefined(v, d, bound, exact)
}

// stealJob reclaims a launched refinement no worker has started yet: the
// coordinator refines inline rather than sleeping until a worker gets
// scheduled. Reports whether the steal succeeded (the job's result must
// then be ignored; only its completion token is still owed).
func (e *Engine) stealJob(ps *parallelState, j *refineJob) bool {
	if !j.claimed.CompareAndSwap(false, true) {
		return false
	}
	e.stats.SpeculativeStolen++
	ps.zombies = append(ps.zombies, j)
	return true
}

// replayAndAccount waits for a worker-executed refinement, replays its log
// against the serial prune bound, and applies the serial work accounting
// (shared by the tree and naive apply paths so the parity rules live in
// one place).
func (e *Engine) replayAndAccount(j *refineJob) (bound int32, exact bool, stopLevel float64, n int) {
	waitJob(j)
	bound, exact, stopLevel, n = replayRefinement(e.q, j.log, e.heap.kRank())
	e.stats.Refinements++
	e.stats.RefineSettled += j.out.settled
	if !exact && bound != rank.Unreachable {
		e.stats.RefineAborted++
	}
	return bound, exact, stopLevel, n
}

// discardJob cancels a speculative refinement whose result the
// serial-order decision made unnecessary. The coordinator never blocks on
// it: an unstarted job is reclaimed outright, and a running one is parked
// on the zombie list (its worker notices the cancel flag within a bounded
// number of settles) so the serial pop loop keeps moving.
func (e *Engine) discardJob(ps *parallelState, j *refineJob) {
	if j == nil {
		return
	}
	if e.stealJob(ps, j) {
		// Reclaimed before any worker touched it: nothing ran, nothing
		// is wasted; only the completion token is still owed.
		return
	}
	j.cancel.Store(true)
	e.stats.SpeculativeWasted++
	ps.zombies = append(ps.zombies, j)
}

// naiveParallel pipelines the Section-2 baseline: every candidate needs a
// refinement and refinements are fully independent, so the window simply
// streams candidate ids through the workers while offers are applied in
// id order — reproducing the serial result byte-for-byte via the same
// replay (and the same inline/steal fallbacks) as the tree engines.
func (e *Engine) naiveParallel(q int32, k int) *Result {
	e.begin(q, k, Naive)
	ps := e.beginParallel()

	window := len(ps.ring)
	ring := ps.ring
	head, count := 0, 0
	n := int32(e.g.N())
	next := int32(0)
	inf := math.Inf(1)
	for !e.stopped() {
		for count < window && next < n {
			p := next
			next++
			if p == q || !e.candidate(p) {
				continue
			}
			en := pendingEntry{v: p, d: inf}
			if j := ps.acquireJob(); j != nil {
				e.submitJob(ps, j, p, inf)
				en.job = j
			}
			ring[(head+count)%window] = en
			count++
		}
		if count == 0 {
			break
		}
		en := &ring[head]
		head = (head + 1) % window
		count--
		e.applyNaive(en, ps)
		en.job = nil
		ps.kRank.Store(e.heap.kRank())
	}

	e.drainPending(ps, ring, head, count, window)
	e.endParallel(ps)
	return e.finish()
}

func (e *Engine) applyNaive(en *pendingEntry, ps *parallelState) {
	j := en.job
	var bound int32
	var exact bool
	switch {
	case j == nil:
		bound, exact = e.refine(en.v, en.d, 0)
	case e.stealJob(ps, j):
		bound, exact = e.refine(en.v, en.d, 0)
	default:
		waitJob(j)
		if j.out.stopped {
			// Canceled mid-search (see applyCandidate): discard unread.
			ps.free = append(ps.free, j)
			return
		}
		bound, exact, _, _ = e.replayAndAccount(j)
		ps.free = append(ps.free, j)
	}
	if exact && bound <= e.heap.kRank() {
		e.offer(en.v, bound)
	}
}
