package core

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"rkranks/internal/gen"
	"rkranks/internal/rank"
	"rkranks/internal/ridx"
)

func TestPoolMatchesSerialEngine(t *testing.T) {
	g := gen.DBLPLike(gen.DBLPLikeParams{Nodes: 200, AttachPerNode: 4, Seed: 3})
	pool := NewPool(g, Options{}, 4)
	if pool.Size() != 4 {
		t.Fatalf("Size = %d", pool.Size())
	}
	serial := NewEngine(g, Options{})

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for q := int32(0); q < 64; q++ {
		wg.Add(1)
		go func(q int32) {
			defer wg.Done()
			res, err := pool.Query(Dynamic, q, 5)
			if err != nil {
				errs <- err
				return
			}
			want, err := serialResult(serial, q)
			if err != nil {
				errs <- err
				return
			}
			if fmt.Sprint(res.Entries) != want {
				errs <- fmt.Errorf("q=%d: %v != %s", q, res.Entries, want)
			}
		}(q)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

var serialMu sync.Mutex

func serialResult(e *Engine, q int32) (string, error) {
	serialMu.Lock()
	defer serialMu.Unlock()
	res, err := e.Query(Dynamic, q, 5)
	if err != nil {
		return "", err
	}
	return fmt.Sprint(res.Entries), nil
}

func TestPoolRejectsIndexedWithoutIndex(t *testing.T) {
	g := gen.GNM(20, 40, false, 1)
	pool := NewPool(g, Options{}, 2)
	if _, err := pool.Query(Indexed, 0, 2); err == nil {
		t.Error("index-free pool accepted an Indexed query")
	}
}

func TestNewPoolWithIndexValidation(t *testing.T) {
	g := gen.GNM(20, 40, false, 1)
	serial, err := ridx.Build(g, ridx.BuildParams{Hubs: []int32{0, 1}, M: 5, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPoolWithIndex(g, Options{}, 2, serial); err == nil {
		t.Error("pool accepted a serial (non-concurrent) index")
	}
	if _, err := NewPoolWithIndex(g, Options{}, 2, nil); err == nil {
		t.Error("pool accepted a nil index")
	}
	var typedNil *ridx.ShardedIndex
	if _, err := NewPoolWithIndex(g, Options{}, 2, typedNil); err == nil {
		t.Error("pool accepted a typed-nil sharded index")
	}
	other := gen.GNM(10, 20, false, 2)
	wrong, err := ridx.BuildSharded(other, ridx.BuildParams{Hubs: []int32{0}, M: 3, K: 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPoolWithIndex(g, Options{}, 2, wrong); err == nil {
		t.Error("pool accepted an index over a different graph")
	}
	ok := serial.Clone().Sharded()
	pool, err := NewPoolWithIndex(g, Options{}, 2, ok)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Index() != ridx.Index(ok) {
		t.Error("pool does not expose the shared index")
	}
}

// TestPoolIndexedMatchesSerial issues the same Indexed query stream twice:
// concurrently through a pool sharing one ShardedIndex, and serially on a
// dedicated engine with its own copy of the seed index. Results are exact
// and deterministically tie-broken, so the entry sets must agree even
// though the shared index evolves under a racy interleaving. Run with
// -race this is the concurrency proof for pooled Indexed queries.
func TestPoolIndexedMatchesSerial(t *testing.T) {
	g := gen.DBLPLike(gen.DBLPLikeParams{Nodes: 300, AttachPerNode: 4, Seed: 11})
	params := ridx.BuildParams{Hubs: []int32{0, 7, 19, 42, 63, 99}, M: 60, K: 6}
	seed, err := ridx.Build(g, params)
	if err != nil {
		t.Fatal(err)
	}
	shared := seed.Clone().Sharded()
	pool, err := NewPoolWithIndex(g, Options{}, 8, shared)
	if err != nil {
		t.Fatal(err)
	}

	queries := make([]int32, 96)
	for i := range queries {
		queries[i] = int32((i * 17) % g.N())
	}

	serialEng := NewEngine(g, Options{})
	serialEng.SetIndex(seed)
	want := make([]string, len(queries))
	for i, q := range queries {
		res, err := serialEng.Query(Indexed, q, 5)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = fmt.Sprint(res.Entries)
	}

	// >= 8 goroutines hammer the pool concurrently (one per query, bounded
	// inside by the 8 pooled engines).
	var wg sync.WaitGroup
	errs := make(chan error, len(queries))
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q int32) {
			defer wg.Done()
			res, err := pool.Query(Indexed, q, 5)
			if err != nil {
				errs <- err
				return
			}
			if got := fmt.Sprint(res.Entries); got != want[i] {
				errs <- fmt.Errorf("q=%d: concurrent %s != serial %s", q, got, want[i])
			}
		}(i, q)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The shared index must have learned from the traffic (dynamic
	// refinement is the point of pooling Indexed queries).
	if shared.Entries() < seed.Entries() {
		t.Errorf("shared index shrank: %d < %d", shared.Entries(), seed.Entries())
	}

	// QueryMany over the same stream, exercising the bounded-worker path.
	results, err := pool.QueryMany(Indexed, queries, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if got := fmt.Sprint(res.Entries); got != want[i] {
			t.Errorf("QueryMany q=%d: %s != %s", queries[i], got, want[i])
		}
	}
}

// TestQueryManyBoundedWorkers: a batch much larger than the pool must not
// spawn a goroutine per query.
func TestQueryManyBoundedWorkers(t *testing.T) {
	g := gen.GNM(40, 120, false, 5)
	pool := NewPool(g, Options{}, 2)
	queries := make([]int32, 5000)
	for i := range queries {
		queries[i] = int32(i % g.N())
	}
	before := runtime.NumGoroutine()
	results, err := pool.QueryMany(Dynamic, queries, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(queries) {
		t.Fatalf("results = %d", len(results))
	}
	// NumGoroutine is sampled after Wait, so this is a smoke check that
	// nothing leaked rather than a strict concurrency bound.
	if after := runtime.NumGoroutine(); after > before+pool.Size() {
		t.Errorf("goroutines leaked: %d -> %d", before, after)
	}
	for i, res := range results {
		if res == nil || res.Query != queries[i] {
			t.Fatalf("result %d = %v, want query %d", i, res, queries[i])
		}
	}
}

func TestPoolDefaultSize(t *testing.T) {
	g := gen.GNM(10, 20, false, 1)
	pool := NewPool(g, Options{}, 0)
	if pool.Size() < 1 {
		t.Errorf("default size = %d", pool.Size())
	}
}

func TestQueryMany(t *testing.T) {
	g := gen.GNM(60, 180, false, 9)
	pool := NewPool(g, Options{}, 3)
	queries := []int32{5, 10, 15, 20, 25, 30}
	results, err := pool.QueryMany(Dynamic, queries, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(queries) {
		t.Fatalf("results = %d", len(results))
	}
	for i, res := range results {
		if res.Query != queries[i] {
			t.Errorf("result %d is for query %d, want %d", i, res.Query, queries[i])
		}
		oracle := rank.BruteForceReverse(g, queries[i], 4)
		if len(res.Entries) != len(oracle) {
			t.Errorf("q=%d: size %d want %d", queries[i], len(res.Entries), len(oracle))
		}
	}
}

func TestQueryManyPropagatesError(t *testing.T) {
	g := gen.GNM(10, 20, false, 2)
	pool := NewPool(g, Options{}, 2)
	if _, err := pool.QueryMany(Dynamic, []int32{1, 99}, 2); err == nil {
		t.Error("out-of-range query did not error")
	}
}

// TestPoolPermitAccounting: the occupancy gauges track borrowed engines —
// the hook response-cache tests use to prove coalesced duplicates admit
// one permit.
func TestPoolPermitAccounting(t *testing.T) {
	g := gen.GNM(60, 180, false, 9)
	pool := NewPool(g, Options{}, 3)
	if pool.Occupancy() != 0 || pool.PeakOccupancy() != 0 {
		t.Fatalf("fresh pool occupancy = %d peak %d", pool.Occupancy(), pool.PeakOccupancy())
	}
	if _, err := pool.QueryMany(Dynamic, []int32{1, 2, 3, 4, 5, 6}, 3); err != nil {
		t.Fatal(err)
	}
	if got := pool.Occupancy(); got != 0 {
		t.Errorf("idle pool occupancy = %d, want 0", got)
	}
	peak := pool.PeakOccupancy()
	if peak < 1 || peak > 3 {
		t.Errorf("peak occupancy = %d, want within [1, pool size 3]", peak)
	}
}
