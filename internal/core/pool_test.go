package core

import (
	"fmt"
	"sync"
	"testing"

	"rkranks/internal/gen"
	"rkranks/internal/rank"
)

func TestPoolMatchesSerialEngine(t *testing.T) {
	g := gen.DBLPLike(gen.DBLPLikeParams{Nodes: 200, AttachPerNode: 4, Seed: 3})
	pool := NewPool(g, Options{}, 4)
	if pool.Size() != 4 {
		t.Fatalf("Size = %d", pool.Size())
	}
	serial := NewEngine(g, Options{})

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for q := int32(0); q < 64; q++ {
		wg.Add(1)
		go func(q int32) {
			defer wg.Done()
			res, err := pool.Query(Dynamic, q, 5)
			if err != nil {
				errs <- err
				return
			}
			want, err := serialResult(serial, q)
			if err != nil {
				errs <- err
				return
			}
			if fmt.Sprint(res.Entries) != want {
				errs <- fmt.Errorf("q=%d: %v != %s", q, res.Entries, want)
			}
		}(q)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

var serialMu sync.Mutex

func serialResult(e *Engine, q int32) (string, error) {
	serialMu.Lock()
	defer serialMu.Unlock()
	res, err := e.Query(Dynamic, q, 5)
	if err != nil {
		return "", err
	}
	return fmt.Sprint(res.Entries), nil
}

func TestPoolRejectsIndexed(t *testing.T) {
	g := gen.GNM(20, 40, false, 1)
	pool := NewPool(g, Options{}, 2)
	if _, err := pool.Query(Indexed, 0, 2); err == nil {
		t.Error("pool accepted an Indexed query")
	}
}

func TestPoolDefaultSize(t *testing.T) {
	g := gen.GNM(10, 20, false, 1)
	pool := NewPool(g, Options{}, 0)
	if pool.Size() < 1 {
		t.Errorf("default size = %d", pool.Size())
	}
}

func TestQueryMany(t *testing.T) {
	g := gen.GNM(60, 180, false, 9)
	pool := NewPool(g, Options{}, 3)
	queries := []int32{5, 10, 15, 20, 25, 30}
	results, err := pool.QueryMany(Dynamic, queries, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(queries) {
		t.Fatalf("results = %d", len(results))
	}
	for i, res := range results {
		if res.Query != queries[i] {
			t.Errorf("result %d is for query %d, want %d", i, res.Query, queries[i])
		}
		oracle := rank.BruteForceReverse(g, queries[i], 4)
		if len(res.Entries) != len(oracle) {
			t.Errorf("q=%d: size %d want %d", queries[i], len(res.Entries), len(oracle))
		}
	}
}

func TestQueryManyPropagatesError(t *testing.T) {
	g := gen.GNM(10, 20, false, 2)
	pool := NewPool(g, Options{}, 2)
	if _, err := pool.QueryMany(Dynamic, []int32{1, 99}, 2); err == nil {
		t.Error("out-of-range query did not error")
	}
}
