package core

import (
	"math"
	"sync/atomic"

	"rkranks/internal/graph"
	"rkranks/internal/rank"
	"rkranks/internal/sssp"
)

// refiner owns the workspace for rank refinements (Algorithms 2 and 4): a
// forward Dijkstra search plus the per-query parameters the inner loop
// needs. The engine's serial path uses one refiner; the speculative
// parallel path (parallel.go) gives each worker goroutine its own, so one
// engine can run Options.RefineWorkers refinements concurrently.
//
// A refiner performs NO side effects: it only settles nodes and records
// counted settles in a log. All engine-state mutations (result-heap
// offers, Lemma-4 counters, index feedback) are derived from the log
// afterwards — by Engine.applyRefineLog on the coordinating goroutine —
// which is what makes speculative execution safe.
type refiner struct {
	ref *sssp.Search

	// Per-query parameters, fixed by prepare before any run.
	q       int32
	counted []bool
	noCut   bool
	// stop is the engine-level cancellation flag (QueryContext), nil when
	// the query cannot be canceled. Distinct from the per-job cancel flag:
	// stop abandons the whole query, cancel discards one speculative run.
	stop *atomic.Bool
}

func newRefiner(g *graph.Graph) *refiner {
	// The refinement loop only consumes settle order and distances, never
	// the shortest-path tree, so the lite search (no parent/depth writes)
	// is safe and shaves a store off every successful relaxation.
	return &refiner{ref: sssp.NewLite(g)}
}

// prepare binds the refiner to one query's parameters. In parallel mode
// this happens before the worker goroutines start, so the fields are
// plain (non-atomic) reads afterwards.
func (r *refiner) prepare(q int32, counted []bool, noCut bool, stop *atomic.Bool) {
	r.q = q
	r.counted = counted
	r.noCut = noCut
	r.stop = stop
}

// refineCutoff derives the push bound a refinement uses from the known
// d(p, q): the ulp-inflated cutoff, or +Inf when distance cutoffs are
// disabled. Shared between the search itself (run) and the batch arena's
// replay gate (batchexec.go), which must agree on it exactly.
func refineCutoff(dpq float64, noCut bool) float64 {
	if noCut {
		return math.Inf(1)
	}
	return sssp.Cutoff(dpq)
}

// refineResult describes one rank-refinement run. A run stopped by its
// cancel flag returns a truncated result that callers discard unread.
type refineResult struct {
	bound     int32   // exact rank (exact) or certified lower bound
	exact     bool    // q was settled; bound is Rank(p, q)
	stopLevel float64 // distance level the search stopped at (+Inf: exhausted)
	settled   int64   // nodes settled by this search
	aborted   bool    // hit the kRank early-exit
	stopped   bool    // query-level cancellation fired; log is truncated
}

// run computes Rank(p, q) by partial Dijkstra from p (Algorithm 2 / 4).
//
// dpq is d(p, q) when known (from the SDS-tree pop), +Inf otherwise; it
// bounds queue pushes, since nodes farther than q never settle before q.
//
// kRank is the abort threshold: the search stops as soon as the
// strictly-closer count reaches it, because then Rank(p, q) > kRank and p
// cannot enter the result (Definition 2). When live is non-nil (a
// speculative worker run) the threshold is refreshed from it at every
// counted settle; the live bound is monotone nonincreasing and every value
// the worker observes is >= the serial threshold at apply time, so the
// returned log always extends at least to the serial stopping point — the
// invariant replayRefinement depends on. cancel (non-nil iff live is)
// stops a run whose result is no longer needed.
//
// The (node, dist, rank) log of counted settles is appended to log's
// backing array and returned; the caller owns it until the next run with
// the same slice.
func (r *refiner) run(p int32, dpq float64, kRank int32, live *atomic.Int32, cancel *atomic.Bool, log []settleRec) (refineResult, []settleRec) {
	dpq = refineCutoff(dpq, r.noCut)
	r.ref.Reset(p)
	out := refineResult{stopLevel: math.Inf(1)}
	strictBelow := 0
	settledCounted := 0
	level := math.Inf(-1)
	for {
		v, d, ok := r.ref.PopExpandBounded(dpq)
		if !ok {
			// Whole component settled without reaching q: all strictly
			// closer (only possible for the naive engine; SDS-tree pops
			// always reach q).
			out.bound, out.exact = rank.Unreachable, false
			return out, log
		}
		out.settled++
		if r.stop != nil && out.settled&63 == 0 && r.stop.Load() {
			// Engine-level cancellation (QueryContext): the query is being
			// abandoned, so stop the search where it stands. The truncated
			// log is marked and never replayed or applied.
			out.stopped = true
			return out, log
		}
		if v == p {
			continue
		}
		if r.counted != nil && !r.counted[v] {
			// Long uncounted stretches (sparse bichromatic classes) never
			// reach the per-counted-settle cancel check below, so poll the
			// flag on a coarse settle cadence too — the coordinator
			// discards without blocking and relies on this bound.
			if cancel != nil && out.settled&63 == 0 && cancel.Load() {
				return out, log
			}
			continue
		}
		if d > level {
			strictBelow = settledCounted
			level = d
		}
		rr := int32(strictBelow + 1)
		if v == r.q {
			out.bound, out.exact, out.stopLevel = rr, true, d
			return out, append(log, settleRec{v, d, rr})
		}
		settledCounted++
		log = append(log, settleRec{v, d, rr})
		if live != nil {
			kRank = live.Load()
			if cancel.Load() {
				return out, log
			}
		}
		if int32(strictBelow) >= kRank {
			// Rank(p, q) >= strictBelow+1 > kRank: p cannot qualify.
			out.bound, out.exact, out.stopLevel = rr, false, d
			out.aborted = true
			return out, log
		}
	}
}

// runExhaustive settles p's entire reachable component, logging every
// counted settle — no push bound, no query stop, no abort threshold. The
// batch arena's hot-candidate path (batchexec.go) uses it when a batch
// keeps re-searching the same candidate with ever-wider cutoffs: one full
// search whose log replays every later refinement of p, including the one
// that triggered it (scanSettleLog applies the query's stop rules to the
// complete log). Records are appended exactly as run would append them for
// a query that never stops, so the log is a superset of every bounded
// run's log from p: query nodes are counted class members (checkArgs), so
// their records carry the same (dist, rank) a bounded run returning at
// them would record.
func (r *refiner) runExhaustive(p int32, log []settleRec) (refineResult, []settleRec) {
	r.ref.Reset(p)
	out := refineResult{stopLevel: math.Inf(1)}
	strictBelow := 0
	settledCounted := 0
	level := math.Inf(-1)
	for {
		v, d, ok := r.ref.PopExpandBounded(math.Inf(1))
		if !ok {
			return out, log
		}
		out.settled++
		if r.stop != nil && out.settled&63 == 0 && r.stop.Load() {
			out.stopped = true
			return out, log
		}
		if v == p {
			continue
		}
		if r.counted != nil && !r.counted[v] {
			continue
		}
		if d > level {
			strictBelow = settledCounted
			level = d
		}
		settledCounted++
		log = append(log, settleRec{v, d, int32(strictBelow + 1)})
	}
}

// replayRefinement re-derives, from a speculative run's settle log, exactly
// what a serial refinement with threshold kRank would have returned: the
// (bound, exact) pair, the stop level, and the length n of the log prefix
// the serial run would have recorded.
//
// This is sound because the Dijkstra settle order — and with it every
// logged (node, dist, rank) triple — is independent of the threshold; the
// threshold only decides where the search STOPS. The worker ran with
// thresholds that were all >= kRank (the prune bound is monotone
// nonincreasing over a query, and the worker ran before this apply point),
// so the log is a superset of the serial one: scanning it in order and
// applying the serial stop rules recovers the serial outcome bit-for-bit.
func replayRefinement(q int32, log []settleRec, kRank int32) (bound int32, exact bool, stopLevel float64, n int) {
	for i, rec := range log {
		if rec.node == q {
			return rec.rank, true, rec.dist, i + 1
		}
		// rec.rank-1 is the strictly-closer count when rec settled; the
		// serial run checks it against the threshold after logging.
		if rec.rank-1 >= kRank {
			return rec.rank, false, rec.dist, i + 1
		}
	}
	// The worker exhausted p's component without finding q; the serial run
	// (threshold <= every threshold the worker saw) would have done the
	// same, or aborted inside the log — which the loop above would have
	// caught.
	return rank.Unreachable, false, math.Inf(1), len(log)
}
