package core

import (
	"fmt"
	"testing"

	"rkranks/internal/rank"
)

// TestCutoffAblationAgreesEverywhere: the refinement frontier cutoff is a
// pure optimization — disabling it must never change any engine's answer
// on any topology, including tie-heavy and directed graphs.
func TestCutoffAblationAgreesEverywhere(t *testing.T) {
	for _, directed := range []bool{false, true} {
		g := tieHeavyGraph(77, directed)
		plain := NewEngine(g, Options{})
		ablate := NewEngine(g, Options{DisableDistanceCutoff: true})
		for q := int32(0); int(q) < g.N(); q += 4 {
			for _, k := range []int{1, 4, 9} {
				for _, algo := range []Algorithm{Static, Dynamic} {
					a, err := plain.Query(algo, q, k)
					if err != nil {
						t.Fatal(err)
					}
					b, err := ablate.Query(algo, q, k)
					if err != nil {
						t.Fatal(err)
					}
					if fmt.Sprint(a.Entries) != fmt.Sprint(b.Entries) {
						t.Fatalf("directed=%v %v q=%d k=%d: cutoff changed results: %v vs %v",
							directed, algo, q, k, a.Entries, b.Entries)
					}
					// Work may differ, correctness may not.
					if a.Stats.Refinements != b.Stats.Refinements {
						t.Fatalf("directed=%v %v q=%d k=%d: cutoff changed refinement count %d vs %d",
							directed, algo, q, k, a.Stats.Refinements, b.Stats.Refinements)
					}
				}
			}
		}
	}
}

// TestCutoffDoesNotChangeSettles: the cutoff drops only queue pushes of
// nodes that could never settle before the refinement target (Dijkstra
// settles in distance order and stops at q), so settle counts must be
// *exactly* equal with and without it — the saving is queue pressure, not
// settles.
func TestCutoffDoesNotChangeSettles(t *testing.T) {
	g := tieHeavyGraph(78, false)
	plain := NewEngine(g, Options{})
	ablate := NewEngine(g, Options{DisableDistanceCutoff: true})
	var with, without int64
	for q := int32(0); int(q) < g.N(); q += 3 {
		a, err := plain.Query(Dynamic, q, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ablate.Query(Dynamic, q, 5)
		if err != nil {
			t.Fatal(err)
		}
		with += a.Stats.RefineSettled
		without += b.Stats.RefineSettled
		_ = rank.Entry{}
	}
	if without != with {
		t.Errorf("settle counts differ: with cutoff %d, without %d", with, without)
	}
}
