package core

import (
	"context"
	"testing"

	"rkranks/internal/gen"
	"rkranks/internal/obs"
)

// TestSteadyStateAllocations: after warm-up, a query's allocations are a
// small constant (result assembly only) regardless of how much of the
// graph it touches — the epoch-reset workspaces must not reallocate. This
// holds for the serial engine and for the speculative parallel pipeline
// (persistent workers, reusable job slab and ring).
func TestSteadyStateAllocations(t *testing.T) {
	g := gen.DBLPLike(gen.DBLPLikeParams{Nodes: 2000, AttachPerNode: 5, Seed: 5})
	for _, workers := range []int{0, 2} {
		e := NewEngine(g, Options{RefineWorkers: workers})
		// Warm up: grow the refinement scratch and heap to their
		// high-water marks across a few representative queries.
		for q := int32(0); q < 50; q += 5 {
			if _, err := e.Query(Dynamic, q, 10); err != nil {
				t.Fatal(err)
			}
		}
		const perQueryBudget = 2 // Result struct + sorted entries copy, nothing else
		avg := testing.AllocsPerRun(20, func() {
			if _, err := e.Query(Dynamic, 25, 10); err != nil {
				t.Fatal(err)
			}
		})
		if avg > perQueryBudget {
			t.Errorf("workers=%d: steady-state allocations per query = %.1f, budget %d", workers, avg, perQueryBudget)
		}
	}
}

// TestTracedQueryAllocations: threading a request trace through the
// engine must not widen the steady-state budget — spans live in the
// trace's fixed arrays and attributes are typed int64s, so the traced
// query costs exactly what the untraced one does.
func TestTracedQueryAllocations(t *testing.T) {
	g := gen.DBLPLike(gen.DBLPLikeParams{Nodes: 2000, AttachPerNode: 5, Seed: 5})
	e := NewEngine(g, Options{})
	tr := obs.NewTrace("alloc-test", "query")
	defer tr.Release()
	ctx := obs.ContextWithTrace(context.Background(), tr)
	for q := int32(0); q < 50; q += 5 {
		if _, err := e.QueryContext(ctx, Dynamic, q, 10); err != nil {
			t.Fatal(err)
		}
	}
	const perQueryBudget = 2 // identical to the untraced gate
	avg := testing.AllocsPerRun(20, func() {
		tr.Reset("alloc-test", "query")
		if _, err := e.QueryContext(ctx, Dynamic, 25, 10); err != nil {
			t.Fatal(err)
		}
	})
	if avg > perQueryBudget {
		t.Errorf("traced steady-state allocations per query = %.1f, budget %d", avg, perQueryBudget)
	}
}

// TestBatchAllocations: in batch mode the per-query Result and entry
// allocations are amortized away by the arena's chunked slabs, so a warm
// batch averages well under one allocation per query.
func TestBatchAllocations(t *testing.T) {
	g := gen.DBLPLike(gen.DBLPLikeParams{Nodes: 2000, AttachPerNode: 5, Seed: 5})
	e := NewEngine(g, Options{})
	qs := make([]int32, 100)
	for i := range qs {
		qs[i] = int32(i % 40)
	}
	run := func() {
		e.BeginBatch()
		defer e.EndBatch()
		for _, q := range qs {
			if _, err := e.Query(Dynamic, q, 10); err != nil {
				t.Fatal(err)
			}
		}
	}
	run() // warm up scratch high-water marks
	avg := testing.AllocsPerRun(5, run) / float64(len(qs))
	// Chunked slabs: ~len(qs)/arenaResultChunk Result chunks plus entry
	// chunks per batch, amortizing to a fraction of an alloc per query.
	if avg > 0.5 {
		t.Errorf("batch steady-state allocations per query = %.2f, want < 0.5", avg)
	}
}
