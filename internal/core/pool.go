package core

import (
	"fmt"
	"runtime"
	"sync"

	"rkranks/internal/graph"
)

// Pool serves reverse k-ranks queries concurrently. Engines are not safe
// for concurrent use (they own per-query workspaces), so the pool keeps one
// engine per permit and hands them out to callers.
//
// Pools support the index-free algorithms (Naive, Static, Dynamic), which
// only read the shared graph. Indexed queries mutate their index as a side
// effect — that is the point of the Section-5 dynamic index — so they are
// deliberately not poolable; run them on a dedicated Engine.
type Pool struct {
	engines chan *Engine
}

// NewPool returns a pool of size engines over g (size <= 0 uses
// runtime.GOMAXPROCS(0)).
func NewPool(g *graph.Graph, opts Options, size int) *Pool {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	p := &Pool{engines: make(chan *Engine, size)}
	for i := 0; i < size; i++ {
		p.engines <- NewEngine(g, opts)
	}
	return p
}

// Size returns the number of engines in the pool.
func (p *Pool) Size() int { return cap(p.engines) }

// Query borrows an engine, runs the query, and returns the engine to the
// pool. Safe for concurrent use.
func (p *Pool) Query(a Algorithm, q int32, k int) (*Result, error) {
	if a == Indexed {
		return nil, fmt.Errorf("core: Indexed queries mutate their index and cannot run on a Pool; use a dedicated Engine")
	}
	e := <-p.engines
	defer func() { p.engines <- e }()
	return e.Query(a, q, k)
}

// QueryMany evaluates one query per element of queries concurrently and
// returns the results in input order. The first error (if any) is
// returned; remaining queries still run to completion.
func (p *Pool) QueryMany(a Algorithm, queries []int32, k int) ([]*Result, error) {
	results := make([]*Result, len(queries))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q int32) {
			defer wg.Done()
			res, err := p.Query(a, q, k)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			results[i] = res
		}(i, q)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}
