package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"rkranks/internal/graph"
	"rkranks/internal/hub"
	"rkranks/internal/ridx"
)

// Pool serves reverse k-ranks queries concurrently. Engines are not safe
// for concurrent use (they own per-query workspaces), so the pool keeps one
// engine per permit and hands them out to callers.
//
// The index-free algorithms (Naive, Static, Dynamic) only read the shared
// graph and are always poolable. Indexed queries additionally read and
// write their index — that is the point of the Section-5 dynamic index —
// so they are accepted only when the pool was built over a concurrency-safe
// index (NewPoolWithIndex with a ridx.ShardedIndex): all engines then share
// that one index, and every query's refinements make it better for the
// whole pool.
type Pool struct {
	engines chan *Engine
	g       *graph.Graph
	idx     ridx.Index  // shared concurrency-safe index, nil for index-free pools
	labels  *hub.Labels // shared read-only hub labeling (Options.Labels), nil without one

	// Permit accounting: occupied counts engines currently borrowed, peak
	// is the high-water mark since construction. A response cache sitting
	// in front of the pool coalesces duplicate queries onto one leader, and
	// these gauges are how tests (and /statsz readers) verify that N
	// concurrent duplicates really did admit a single engine permit.
	occupied atomic.Int64
	peak     atomic.Int64
}

// NewPool returns a pool of size engines over g. size <= 0 picks a default
// that budgets runtime.GOMAXPROCS(0) across engines and their intra-query
// refine workers: GOMAXPROCS / (1 + Options.RefineWorkers), at least 1.
// The pool serves the index-free algorithms; use NewPoolWithIndex to serve
// Indexed queries too.
func NewPool(g *graph.Graph, opts Options, size int) *Pool {
	return newPool(g, opts, size, nil)
}

// NewPoolWithIndex returns a pool whose engines share ix, making Indexed
// the recommended algorithm for every query: concurrent queries all read
// the same dictionaries and feed their refinements back into them. The
// index must be concurrency-safe (ix.Concurrent(), i.e. a
// ridx.ShardedIndex — build one with ridx.BuildSharded or convert a loaded
// serial index with Sharded); a serial index is rejected rather than
// silently racing.
func NewPoolWithIndex(g *graph.Graph, opts Options, size int, ix ridx.Index) (*Pool, error) {
	// The type assertion also catches a typed-nil *ShardedIndex boxed in
	// the interface, which would pass the plain nil check and panic later.
	if sh, ok := ix.(*ridx.ShardedIndex); ix == nil || (ok && sh == nil) {
		return nil, fmt.Errorf("core: NewPoolWithIndex requires an index; use NewPool for index-free pools")
	}
	if !ix.Concurrent() {
		return nil, fmt.Errorf("core: pooled Indexed queries need a concurrency-safe index (ridx.ShardedIndex); this index must stay private to one engine")
	}
	if ix.N() != g.N() {
		return nil, fmt.Errorf("core: index covers %d nodes, graph has %d", ix.N(), g.N())
	}
	return newPool(g, opts, size, ix), nil
}

func newPool(g *graph.Graph, opts Options, size int, ix ridx.Index) *Pool {
	if size <= 0 {
		// Budget the machine across engines AND their intra-query refine
		// workers: an engine with RefineWorkers = w occupies up to 1+w
		// cores while serving a query, so a default-sized pool shrinks
		// accordingly instead of oversubscribing.
		size = runtime.GOMAXPROCS(0) / (1 + opts.refineWorkers())
		if size < 1 {
			size = 1
		}
	}
	p := &Pool{engines: make(chan *Engine, size), g: g, idx: ix, labels: opts.Labels}
	for i := 0; i < size; i++ {
		e := NewEngine(g, opts)
		if ix != nil {
			e.SetIndex(ix)
		}
		p.engines <- e
	}
	return p
}

// Size returns the number of engines in the pool.
func (p *Pool) Size() int { return cap(p.engines) }

// CSRBytes reports the memory footprint of the packed CSR views every
// engine in the pool traverses (they share one copy per graph — see
// graph.Packed). 0 until a query has forced the views to build. The
// serving layer probes this capability for /statsz.
func (p *Pool) CSRBytes() int64 { return p.g.CSRBytes() }

// Index returns the shared index, or nil for an index-free pool.
func (p *Pool) Index() ridx.Index { return p.idx }

// Indexed reports whether the pool serves Indexed queries (it was built
// with NewPoolWithIndex over a shared concurrency-safe index). It is the
// server.Backend capability probe, shared with cluster coordinators.
func (p *Pool) Indexed() bool { return p.idx != nil }

// HubLabeled reports whether the pool serves HubLabel queries (its engines
// were built with Options.Labels). Like Indexed, it is a serving-layer
// capability probe, shared with cluster coordinators.
func (p *Pool) HubLabeled() bool { return p.labels != nil }

// HubLabelBytes reports the memory footprint of the shared hub labeling,
// 0 without one. The serving layer probes this capability for /statsz.
func (p *Pool) HubLabelBytes() int64 {
	if p.labels == nil {
		return 0
	}
	return p.labels.Bytes()
}

// Generation reports the pool's answer-set generation: the shared index's
// generation counter, or 0 for index-free pools. Response caches key
// entries on it so a bumped generation (an index swapped or invalidated
// wholesale) orphans every cached answer computed before the bump.
// Ordinary query refinements do NOT move it — dictionary updates are
// monotone exact facts that can never change a canonical result.
func (p *Pool) Generation() uint64 {
	if p.idx == nil {
		return 0
	}
	return p.idx.Generation()
}

// Quiesce takes every engine out of the pool and returns a release func
// that puts them back: an exclusive epoch barrier for writers that must
// mutate shared state (the graph's CSR arrays, the index's dictionaries)
// no query may be reading. It blocks until every in-flight query has
// returned its engine; queries arriving meanwhile block in their normal
// engine wait (respecting their contexts) until release. Readers pay
// nothing for the capability — their hot loops stay lock-free, and the
// engine channel they already go through is the barrier.
func (p *Pool) Quiesce() (release func()) {
	engines := make([]*Engine, cap(p.engines))
	for i := range engines {
		engines[i] = <-p.engines
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			for _, e := range engines {
				p.engines <- e
			}
		})
	}
}

// Occupancy returns how many engines are currently borrowed.
func (p *Pool) Occupancy() int { return int(p.occupied.Load()) }

// PeakOccupancy returns the most engines ever borrowed at once.
func (p *Pool) PeakOccupancy() int { return int(p.peak.Load()) }

// acquire records an engine borrow; release returns it.
func (p *Pool) acquire() {
	n := p.occupied.Add(1)
	for {
		peak := p.peak.Load()
		if n <= peak || p.peak.CompareAndSwap(peak, n) {
			return
		}
	}
}

func (p *Pool) release() { p.occupied.Add(-1) }

// validate rejects malformed requests at the pool boundary — before an
// engine permit is consumed — with typed errors (errors.Is against
// ErrInvalidArgument and its refinements), so servers can map them to
// client-fault responses without string matching.
func (p *Pool) validate(a Algorithm, k int) error {
	if err := validateRequest(a, k); err != nil {
		return err
	}
	if a == Indexed && p.idx == nil {
		return fmt.Errorf("core: Indexed queries need a shared concurrency-safe index; build the pool with NewPoolWithIndex: %w", ErrIndexRequired)
	}
	if a == HubLabel && p.labels == nil {
		return fmt.Errorf("core: HubLabel queries need a hub labeling; build the pool with Options.Labels: %w", ErrLabelsRequired)
	}
	return nil
}

// Query borrows an engine, runs the query, and returns the engine to the
// pool. Safe for concurrent use.
func (p *Pool) Query(a Algorithm, q int32, k int) (*Result, error) {
	return p.QueryContext(context.Background(), a, q, k)
}

// QueryContext is Query with cancellation: waiting for a free engine and
// the query itself both respect ctx. A request that is invalid (unknown
// algorithm, k < 1, Indexed on an index-free pool) is rejected with a
// typed error before it can occupy an engine.
func (p *Pool) QueryContext(ctx context.Context, a Algorithm, q int32, k int) (*Result, error) {
	if err := p.validate(a, k); err != nil {
		return nil, err
	}
	var e *Engine
	select {
	case e = <-p.engines:
	default:
		select {
		case e = <-p.engines:
		case <-ctx.Done():
			return nil, fmt.Errorf("core: waiting for a pool engine: %w", ctx.Err())
		}
	}
	p.acquire()
	defer func() {
		p.release()
		p.engines <- e
	}()
	return e.QueryContext(ctx, a, q, k)
}

// QueryMany evaluates one query per element of queries concurrently and
// returns the results in input order. Concurrency is bounded by the pool
// size — workers pull queries from a shared counter, so a million-query
// batch costs pool-size goroutines, not a million. The first error (if
// any) is returned; remaining queries still run to completion.
func (p *Pool) QueryMany(a Algorithm, queries []int32, k int) ([]*Result, error) {
	return p.QueryManyContext(context.Background(), a, queries, k)
}

// QueryManyContext is QueryMany with cancellation. The batch is validated
// once up front (typed errors, nothing runs on a malformed request); after
// cancellation, queries not yet started are skipped and the context error
// is returned.
//
// Execution is engine-affine: each worker borrows one engine for its whole
// share of the batch (instead of per query) and brackets it with
// BeginBatch/EndBatch, so consecutive queries on that engine share
// refinement traversal work through the engine's arena (batchexec.go) and
// assemble results from chunked slabs. Results are byte-identical to the
// per-query path — replays reproduce serial refinements exactly — which is
// what lets cluster.LocalShard.QueryBatch inherit the sharing for free.
func (p *Pool) QueryManyContext(ctx context.Context, a Algorithm, queries []int32, k int) ([]*Result, error) {
	if err := p.validate(a, k); err != nil {
		return nil, err
	}
	results := make([]*Result, len(queries))
	workers := p.Size()
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var e *Engine
			select {
			case e = <-p.engines:
			default:
				select {
				case e = <-p.engines:
				case <-ctx.Done():
					setErr(fmt.Errorf("core: waiting for a pool engine: %w", ctx.Err()))
					return
				}
			}
			p.acquire()
			e.BeginBatch()
			defer func() {
				e.EndBatch()
				p.release()
				p.engines <- e
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				res, err := e.QueryContext(ctx, a, queries[i], k)
				if err != nil {
					setErr(err)
					if ctx.Err() != nil {
						return // canceled: stop pulling new queries
					}
					continue
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// FanOut evaluates query for every element of queries on at most workers
// goroutines (a shared-counter pull, so a million-element batch costs
// workers goroutines) and returns the results in input order. The first
// error is returned; remaining queries still run, except after ctx
// cancellation, when unstarted queries are skipped. It is the one batch
// fan-out loop behind Pool.QueryManyContext and the cluster coordinator's
// — the subtle parts (first-error capture, continue-on-error, cancel
// short-circuit) live here once.
func FanOut(ctx context.Context, workers int, queries []int32, query func(context.Context, int32) (*Result, error)) ([]*Result, error) {
	results := make([]*Result, len(queries))
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				res, err := query(ctx, queries[i])
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					if ctx.Err() != nil {
						return // canceled: stop pulling new queries
					}
					continue
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}
