package core

import (
	"math"

	"rkranks/internal/rank"
)

// Shared-traversal batch execution.
//
// Every refinement from a candidate p runs the same forward Dijkstra: its
// settle order and every logged (node, dist, rank) triple depend only on p,
// the graph, and the counted class — never on which query is being
// answered. The query determines only where the search STOPS: finding the
// query node (exact), reaching the kRank abort threshold, or exhausting
// the frontier. replayRefinement (refiner.go) already exploits this within
// one query to re-derive serial outcomes from speculative worker logs; the
// batch arena extends the same argument across the queries of a batch.
//
// When a Pool executes a batch, each engine keeps the settle logs of the
// refinements it has run and, before launching a fresh search from p,
// scans the stored log with the current query's stop rules. The scan
// either resolves the refinement — producing the exact (bound, exact,
// stopLevel) triple and log prefix a fresh serial run would have produced,
// byte-for-byte — or reports that the stored log does not extend far
// enough, in which case the engine runs the search normally and stores the
// longer log. Side effects (Lemma-4 counters, index feedback) are applied
// from the replayed prefix through the same applyRefineLog used
// everywhere else, so batch execution is indistinguishable from per-query
// execution in everything but elapsed time.

const (
	// arenaSlabCap bounds the settle records one arena retains per batch
	// (16 MiB of settleRec). When full, stored logs keep serving replays
	// but no new logs are added — a coverage limit, never a correctness
	// one.
	arenaSlabCap = 1 << 20
	// arenaResultChunk / arenaEntryChunk size the result-assembly slabs:
	// one allocation per chunk instead of two per query. Chunks escape
	// with the results they back, so they are dropped (not recycled) at
	// batch end.
	arenaResultChunk = 256
	arenaEntryChunk  = 4096
	// hotMisses is the coverage-miss floor for declaring a candidate hot:
	// its next fresh run settles the entire reachable component
	// (refiner.runExhaustive) so every later refinement of it in the
	// batch replays. The first "miss" is just the first sighting, so the
	// floor is reached on the first genuine coverage failure; hot
	// additionally requires the spent-settles gate below.
	hotMisses = 2
	// missNeverExhaust marks a hot candidate whose exhaustive log did not
	// fit in the slab: retrying exhaustion would run the full search on
	// every miss without ever amortizing it, so fall back to bounded runs.
	missNeverExhaust = uint8(0xFF)
)

// logRef locates one candidate's stored settle log in the arena slab.
type logRef struct {
	off       int32
	n         int32
	cutoff    float64 // push bound the stored run used (refineCutoff)
	exhausted bool    // the run emptied its frontier (settled everything within cutoff)
	misses    uint8   // replay coverage misses this batch (see hotMisses)
	spent     int64   // settles spent on fresh bounded runs of p this batch
}

// batchArena is the per-pool-slot scratch one engine reuses across the
// queries of a batch: the shared-traversal log store plus chunked result
// slabs. It is owned by exactly one engine and accessed only from that
// engine's goroutine.
type batchArena struct {
	refs  []logRef
	stamp []uint32
	epoch uint32
	slab  []settleRec

	shared int64 // replays served this batch

	results []Result
	entries []rank.Entry
}

func newBatchArena(n int) *batchArena {
	return &batchArena{
		refs:  make([]logRef, n),
		stamp: make([]uint32, n),
	}
}

// begin invalidates all stored logs (O(1), epoch bump) and rewinds the
// record slab for a new batch.
func (a *batchArena) begin() {
	a.epoch++
	if a.epoch == 0 {
		clear(a.stamp)
		a.epoch = 1
	}
	a.slab = a.slab[:0]
	a.shared = 0
	a.results, a.entries = nil, nil
}

// end drops the result slabs: their chunks escaped inside returned
// Results, so they must not be recycled into the next batch.
func (a *batchArena) end() {
	a.results, a.entries = nil, nil
}

// store retains the settle log of a completed (never canceled) refinement
// from p, replacing a stored log only when the new one covers more of p's
// canonical settle sequence. Logs from the same candidate are always
// prefixes of one another below their respective coverage (settle order is
// cutoff- and threshold-invariant), so "longer or exhausted-with-a-wider-
// cutoff" is a total replacement order.
func (a *batchArena) store(p int32, cutoff float64, exhausted bool, log []settleRec) {
	var misses uint8
	var spent int64
	if a.stamp[p] == a.epoch {
		old := a.refs[p]
		misses, spent = old.misses, old.spent
		covers := int32(len(log)) > old.n ||
			(exhausted && (!old.exhausted || cutoff > old.cutoff))
		if !covers {
			return
		}
	}
	if len(a.slab)+len(log) > arenaSlabCap {
		if exhausted && math.IsInf(cutoff, 1) && a.stamp[p] == a.epoch {
			// A full-component log that cannot be retained must not be
			// recomputed on every future miss.
			a.refs[p].misses = missNeverExhaust
		}
		return
	}
	off := int32(len(a.slab))
	a.slab = append(a.slab, log...)
	a.refs[p] = logRef{off: off, n: int32(len(log)), cutoff: cutoff, exhausted: exhausted, misses: misses, spent: spent}
	a.stamp[p] = a.epoch
}

// spend accrues the settle cost of a fresh bounded run from p — the
// currency of the hot gate's rent-vs-buy comparison.
func (a *batchArena) spend(p int32, settled int64) {
	if a.stamp[p] == a.epoch {
		a.refs[p].spent += settled
	}
}

// hot reports whether the next fresh run from p should settle its whole
// component instead of stopping at this query's cutoff. Two conditions:
// the batch has genuinely missed p's stored coverage (hotMisses), and the
// settles already spent on p's bounded runs reach the graph order — an
// upper estimate of what one exhaustive run costs. The second is the
// ski-rental rule: exhausting then costs at most what p has already
// consumed, so a batch never pays more than ~2x the unshared refinement
// cost of any candidate, while hot candidates get every later refinement
// for a log scan. Only meaningful immediately after a replay miss, which
// stamps p's slot.
func (a *batchArena) hot(p int32) bool {
	r := a.refs[p]
	return r.misses == hotMisses && r.spent >= int64(len(a.refs))/2
}

// replay resolves a refinement of p for query q with push bound cutoff and
// abort threshold kRank against p's stored log, if any. On ok it returns
// exactly what a fresh serial run would have: the refineResult decision
// triple (settled is 0 — no search ran) and the log prefix that run would
// have recorded, ready for applyRefineLog. ok is false when no stored log
// exists or it stops short of where this query's run would.
//
// The scan applies the serial stop rules of refiner.run in stored order:
//
//   - a record beyond the cutoff means every counted settle within the
//     cutoff has already been scanned (records are nondecreasing in dist
//     and complete below the stored run's stop point), so a fresh run
//     would empty its frontier without reaching q: Unreachable;
//   - q's own record resolves exactly (the record is part of the serial
//     log, mirroring refiner.run's append-then-return);
//   - rec.rank-1 is the strictly-closer count when rec settled; reaching
//     kRank aborts after logging, exactly like the serial check.
func (a *batchArena) replay(p, q int32, dpq, cutoff float64, kRank int32) (out refineResult, log []settleRec, ok bool) {
	if a.stamp[p] != a.epoch {
		// First sighting of p this batch: stamp an empty slot so coverage
		// misses can be counted toward the hot-candidate threshold.
		a.stamp[p] = a.epoch
		a.refs[p] = logRef{cutoff: math.Inf(-1), misses: 1}
		return out, nil, false
	}
	ref := a.refs[p]
	if !(ref.exhausted && ref.cutoff >= cutoff) {
		// Fast miss: the scan can only succeed on a stop event, and the
		// log's last record bounds all three kinds. Distances and ranks
		// are nondecreasing along the log, so if every record is within
		// the cutoff (no beyond-cutoff witness), the peak strictly-closer
		// count never reaches the abort threshold, and the coverage ends
		// before d(p, q) — where q's own record would have to sit — no
		// stop event exists and the full scan is a wasted walk. dpq is
		// +Inf when unknown (naive engine), which disables the q test.
		var last settleRec
		if ref.n > 0 {
			last = a.slab[ref.off+ref.n-1]
		}
		if last.dist <= cutoff && last.dist < dpq && last.rank-1 < kRank {
			if ref.misses < hotMisses {
				a.refs[p].misses++
			}
			return out, nil, false
		}
	}
	out, log, ok = scanSettleLog(a.slab[ref.off:ref.off+ref.n], q, cutoff, kRank, ref.exhausted, ref.cutoff)
	if !ok && ref.misses < hotMisses {
		a.refs[p].misses++
	}
	return out, log, ok
}

// scanSettleLog resolves a refinement for query q (push bound cutoff, abort
// threshold kRank) against a settle log from p covering distances up to
// storedCutoff (exhausted: the frontier emptied within it). It is the
// decision core of replay, shared with the hot-candidate path, which scans
// the full-component log it just recorded (exhausted=true, +Inf cutoff).
func scanSettleLog(recs []settleRec, q int32, cutoff float64, kRank int32, exhausted bool, storedCutoff float64) (out refineResult, log []settleRec, ok bool) {
	for i, rec := range recs {
		if rec.dist > cutoff {
			return refineResult{bound: rank.Unreachable, stopLevel: math.Inf(1)}, recs[:i], true
		}
		if rec.node == q {
			return refineResult{bound: rec.rank, exact: true, stopLevel: rec.dist}, recs[:i+1], true
		}
		if rec.rank-1 >= kRank {
			return refineResult{bound: rec.rank, stopLevel: rec.dist, aborted: true}, recs[:i+1], true
		}
	}
	if exhausted && storedCutoff >= cutoff {
		// The stored run settled everything reachable within a bound at
		// least as wide as ours and never saw q; a fresh run exhausts too.
		return refineResult{bound: rank.Unreachable, stopLevel: math.Inf(1)}, recs, true
	}
	// The stored log ends (early exact/abort stop, or a narrower cutoff)
	// before this query's run would stop: not enough coverage to decide.
	return out, nil, false
}

// newResult hands out one Result from the chunked result slab.
func (a *batchArena) newResult() *Result {
	if len(a.results) == cap(a.results) {
		a.results = make([]Result, 0, arenaResultChunk)
	}
	a.results = a.results[:len(a.results)+1]
	return &a.results[len(a.results)-1]
}

// entryBuf hands out an empty entry slice with capacity n from the chunked
// entry slab, capped so appends past n cannot clobber a neighbor's entries.
func (a *batchArena) entryBuf(n int) []rank.Entry {
	if cap(a.entries)-len(a.entries) < n {
		c := arenaEntryChunk
		if c < n {
			c = n
		}
		a.entries = make([]rank.Entry, 0, c)
	}
	off := len(a.entries)
	a.entries = a.entries[:off+n]
	return a.entries[off : off : off+n]
}

// BeginBatch attaches the engine's per-pool-slot arena for a batch of
// queries: refinement settle logs are shared across the batch's queries
// and results are assembled from chunked slabs. The arena itself (the
// directory arrays and record slab) is allocated once per engine and
// recycled across batches. Paired with EndBatch.
func (e *Engine) BeginBatch() {
	if e.batch == nil {
		e.batch = newBatchArena(e.g.N())
	}
	e.batch.begin()
	e.arena = e.batch
}

// EndBatch detaches the arena, returning the engine to plain per-query
// execution, and reports how many refinements the batch served by shared-
// traversal replay instead of a fresh search.
func (e *Engine) EndBatch() (shared int64) {
	if e.arena == nil {
		return 0
	}
	shared = e.arena.shared
	e.arena.end()
	e.arena = nil
	return shared
}
