package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"rkranks/internal/gen"
	"rkranks/internal/ridx"
)

func ctxTestGraph() *gen.DBLPLikeParams {
	return &gen.DBLPLikeParams{Nodes: 1500, AttachPerNode: 5, Seed: 11}
}

// TestQueryContextAlreadyDone: a context that is done before the call never
// starts the query.
func TestQueryContextAlreadyDone(t *testing.T) {
	g := gen.DBLPLike(*ctxTestGraph())
	e := NewEngine(g, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.QueryContext(ctx, Dynamic, 0, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestQueryContextDeadline: an expiring deadline aborts the heavy naive
// engine mid-query and reports DeadlineExceeded.
func TestQueryContextDeadline(t *testing.T) {
	// Large k keeps the heap from filling, so naive refinements cannot
	// abort early — the query takes far longer than the deadline and the
	// cancellation path must fire.
	g := gen.DBLPLike(gen.DBLPLikeParams{Nodes: 4000, AttachPerNode: 5, Seed: 11})
	e := NewEngine(g, Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := e.QueryContext(ctx, Naive, 0, 200)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, not bounded", elapsed)
	}
}

// TestEngineReusableAfterCancel: abandoning a query mid-flight leaves the
// engine consistent — the next (uncanceled) query returns byte-identical
// results to a fresh engine, for the serial and the speculative pipeline.
func TestEngineReusableAfterCancel(t *testing.T) {
	g := gen.DBLPLike(*ctxTestGraph())
	for _, workers := range []int{0, 2} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			e := NewEngine(g, Options{RefineWorkers: workers})
			for q := int32(0); q < 8; q++ {
				ctx, cancel := context.WithTimeout(context.Background(), 500*time.Microsecond)
				_, err := e.QueryContext(ctx, Dynamic, q, 10)
				cancel()
				if err != nil && !errors.Is(err, context.DeadlineExceeded) {
					t.Fatalf("q=%d: unexpected error %v", q, err)
				}
				// err == nil: the query beat the deadline — equally fine.
			}
			fresh := NewEngine(g, Options{})
			for q := int32(0); q < 8; q++ {
				got, err := e.Query(Dynamic, q, 10)
				if err != nil {
					t.Fatal(err)
				}
				want, err := fresh.Query(Dynamic, q, 10)
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(got.Entries) != fmt.Sprint(want.Entries) {
					t.Fatalf("q=%d: entries diverged after cancellation: %v != %v", q, got.Entries, want.Entries)
				}
			}
		})
	}
}

// TestIndexNotPoisonedByCancel: canceled Indexed queries must not feed
// truncated refinement state into the shared index — subsequent queries
// through the same index still agree with the index-free oracle.
func TestIndexNotPoisonedByCancel(t *testing.T) {
	g := gen.DBLPLike(*ctxTestGraph())
	sh, err := ridx.BuildSharded(g, ridx.BuildParams{Hubs: []int32{0, 1, 2, 3, 4}, M: 100, K: 20}, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(g, Options{RefineWorkers: 2})
	e.SetIndex(sh)
	for q := int32(0); q < 12; q++ {
		ctx, cancel := context.WithTimeout(context.Background(), 500*time.Microsecond)
		_, err := e.QueryContext(ctx, Indexed, q, 10)
		cancel()
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("q=%d: unexpected error %v", q, err)
		}
	}
	oracle := NewEngine(g, Options{})
	for q := int32(0); q < 12; q++ {
		got, err := e.Query(Indexed, q, 10)
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.Query(Dynamic, q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got.Entries) != fmt.Sprint(want.Entries) {
			t.Fatalf("q=%d: indexed-after-cancel diverged from oracle: %v != %v", q, got.Entries, want.Entries)
		}
	}
}

// TestPoolQueryContextWaiting: a caller canceled while waiting for a free
// engine gets the context error instead of blocking forever.
func TestPoolQueryContextWaiting(t *testing.T) {
	g := gen.DBLPLike(*ctxTestGraph())
	pool := NewPool(g, Options{}, 1)

	release := make(chan struct{})
	acquired := make(chan struct{})
	go func() {
		// Occupy the single engine directly through the pool with a slow
		// naive query; signal once it must have started.
		close(acquired)
		_, _ = pool.Query(Naive, 0, 5)
		close(release)
	}()
	<-acquired
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	_, err := pool.QueryContext(ctx, Dynamic, 1, 5)
	// Either the slow query still held the engine (waiting error) or it
	// finished and our deadline hit mid-query; both must surface ctx's
	// error, never hang.
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded (or success)", err)
	}
	<-release
}

// TestQueryManyContextCancel: cancellation mid-batch returns the context
// error rather than running the batch to completion.
func TestQueryManyContextCancel(t *testing.T) {
	g := gen.DBLPLike(*ctxTestGraph())
	pool := NewPool(g, Options{}, 2)
	queries := make([]int32, 64)
	for i := range queries {
		queries[i] = int32(i)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	_, err := pool.QueryManyContext(ctx, Naive, queries, 5)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}
