package core

import (
	"errors"
	"testing"

	"rkranks/internal/gen"
	"rkranks/internal/ridx"
)

// TestPoolValidationTable: malformed requests are rejected at the pool
// boundary with typed errors, before any engine permit is consumed.
func TestPoolValidationTable(t *testing.T) {
	g := gen.DBLPLike(gen.DBLPLikeParams{Nodes: 120, AttachPerNode: 3, Seed: 5})
	pool := NewPool(g, Options{}, 1)

	cases := []struct {
		name string
		algo Algorithm
		q    int32
		k    int
		want error
	}{
		{"unknown algorithm", Algorithm(42), 0, 5, ErrUnknownAlgorithm},
		{"negative algorithm", Algorithm(-1), 0, 5, ErrUnknownAlgorithm},
		{"k zero", Dynamic, 0, 0, ErrInvalidK},
		{"k negative", Naive, 0, -3, ErrInvalidK},
		{"indexed without index", Indexed, 0, 5, ErrIndexRequired},
		{"query node negative", Dynamic, -1, 5, ErrInvalidQueryNode},
		{"query node out of range", Dynamic, int32(g.N()), 5, ErrInvalidQueryNode},
		{"valid", Dynamic, 0, 5, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := pool.Query(tc.algo, tc.q, tc.k)
			if tc.want == nil {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v, want %v", err, tc.want)
			}
			if !errors.Is(err, ErrInvalidArgument) {
				t.Errorf("error %v does not wrap ErrInvalidArgument", err)
			}
		})
	}
}

// TestQueryManyValidation: a malformed batch fails fast with a typed error
// instead of running (or partially running) the workload.
func TestQueryManyValidation(t *testing.T) {
	g := gen.DBLPLike(gen.DBLPLikeParams{Nodes: 120, AttachPerNode: 3, Seed: 5})
	pool := NewPool(g, Options{}, 2)
	queries := []int32{0, 1, 2, 3}

	if _, err := pool.QueryMany(Algorithm(9), queries, 5); !errors.Is(err, ErrUnknownAlgorithm) {
		t.Errorf("unknown algorithm: got %v", err)
	}
	if _, err := pool.QueryMany(Dynamic, queries, 0); !errors.Is(err, ErrInvalidK) {
		t.Errorf("k=0: got %v", err)
	}
	if _, err := pool.QueryMany(Indexed, queries, 5); !errors.Is(err, ErrIndexRequired) {
		t.Errorf("indexed without index: got %v", err)
	}
	if _, err := pool.QueryMany(Dynamic, queries, 5); err != nil {
		t.Errorf("valid batch: %v", err)
	}
}

// TestEngineValidationTable mirrors the pool table on a bare engine,
// including the index-specific k cap.
func TestEngineValidationTable(t *testing.T) {
	g := gen.DBLPLike(gen.DBLPLikeParams{Nodes: 120, AttachPerNode: 3, Seed: 5})
	ix, err := ridx.Build(g, ridx.BuildParams{Hubs: []int32{0, 1, 2}, M: 20, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(g, Options{})
	e.SetIndex(ix)

	cases := []struct {
		name string
		algo Algorithm
		q    int32
		k    int
		want error
	}{
		{"unknown algorithm", Algorithm(7), 0, 5, ErrUnknownAlgorithm},
		{"k zero", Dynamic, 0, 0, ErrInvalidK},
		{"k beyond index K", Indexed, 0, 11, ErrInvalidK},
		{"query out of range", Static, 9999, 5, ErrInvalidQueryNode},
		{"valid indexed", Indexed, 0, 10, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := e.Query(tc.algo, tc.q, tc.k)
			if tc.want == nil {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v, want %v", err, tc.want)
			}
		})
	}
}
