package core

import "fmt"

// TraceAction classifies what the engine did with a dequeued node.
type TraceAction uint8

const (
	// TraceRefined: a rank refinement ran and produced an exact rank.
	TraceRefined TraceAction = iota
	// TraceRefineAborted: the refinement hit the kRank early exit; only a
	// lower bound is known.
	TraceRefineAborted
	// TracePrunedByBound: the Theorem-2 lower bound (plus Check
	// Dictionary, for the indexed engine) disqualified the node without a
	// refinement.
	TracePrunedByBound
	// TraceIndexHit: the Reverse Rank Dictionary knew the exact rank.
	TraceIndexHit
	// TraceSeeded: the node entered the result heap from the dictionary
	// before traversal started (its Dist is unknown and reported as 0).
	TraceSeeded
	// TracePassThrough: a non-candidate node (bichromatic mode) was
	// forwarded with its parent's bound.
	TracePassThrough
)

// String returns a compact action name.
func (a TraceAction) String() string {
	switch a {
	case TraceRefined:
		return "refined"
	case TraceRefineAborted:
		return "refine-aborted"
	case TracePrunedByBound:
		return "pruned-by-bound"
	case TraceIndexHit:
		return "index-hit"
	case TraceSeeded:
		return "seeded"
	case TracePassThrough:
		return "pass-through"
	}
	return fmt.Sprintf("TraceAction(%d)", uint8(a))
}

// TraceEvent records one engine decision; a query's event sequence
// explains exactly why each node was or was not refined.
type TraceEvent struct {
	// Node is the dequeued node.
	Node int32
	// Dist is d(Node, q) at dequeue time (0 for seeded entries).
	Dist float64
	// Action says what happened.
	Action TraceAction
	// Bound is the rank value the decision used: the exact rank for
	// Refined/IndexHit/Seeded, the certified lower bound otherwise.
	Bound int32
	// Expanded reports whether the node's subtree was explored further.
	Expanded bool
}

// String renders one event.
func (ev TraceEvent) String() string {
	return fmt.Sprintf("%s node=%d d=%.4g bound=%d expanded=%v",
		ev.Action, ev.Node, ev.Dist, ev.Bound, ev.Expanded)
}

// SetTracing enables or disables decision tracing. When enabled, each
// Result carries the per-node decision log in Result.Trace. Tracing
// allocates; leave it off in production loops.
func (e *Engine) SetTracing(on bool) { e.tracing = on }

func (e *Engine) trace(node int32, dist float64, a TraceAction, bound int32, expanded bool) {
	if !e.tracing {
		return
	}
	e.traceLog = append(e.traceLog, TraceEvent{
		Node: node, Dist: dist, Action: a, Bound: bound, Expanded: expanded,
	})
}
