package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rkranks/internal/graph"
)

// TestBichromaticQuick is the randomized Definitions-3/4 property test:
// arbitrary graphs with arbitrary (possibly overlapping, possibly empty)
// class assignments must match the brute-force bichromatic oracle for
// every engine.
func TestBichromaticQuick(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(25)
		directed := rng.Intn(2) == 0
		b := graph.NewBuilder(directed)
		b.SetDedupe(true)
		b.EnsureNodes(n)
		m := n * (1 + rng.Intn(4))
		for i := 0; i < m; i++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u != v {
				b.MustAddEdge(u, v, float64(1+rng.Intn(4)))
			}
		}
		g := b.Finalize()

		candidates := make([]bool, n)
		counted := make([]bool, n)
		var queryPool []int32
		for v := 0; v < n; v++ {
			candidates[v] = rng.Intn(3) > 0 // ~2/3 candidates
			counted[v] = rng.Intn(3) > 0    // classes may overlap
			if counted[v] {
				queryPool = append(queryPool, int32(v))
			}
		}
		if len(queryPool) == 0 {
			return true // nothing to query
		}
		e := NewEngine(g, Options{Candidates: candidates, Counted: counted})
		for trial := 0; trial < 3; trial++ {
			q := queryPool[rng.Intn(len(queryPool))]
			k := 1 + rng.Intn(6)
			oracle := bruteBichromatic(g, q, k, candidates, counted)
			for _, algo := range []Algorithm{Naive, Static, Dynamic} {
				res, err := e.Query(algo, q, k)
				if err != nil {
					t.Logf("seed=%d %v: %v", seed, algo, err)
					return false
				}
				if len(res.Entries) != len(oracle) {
					t.Logf("seed=%d %v q=%d k=%d: %v vs oracle %v", seed, algo, q, k, res.Entries, oracle)
					return false
				}
				for i := range oracle {
					if res.Entries[i].Rank != oracle[i].Rank {
						t.Logf("seed=%d %v q=%d k=%d: %v vs oracle %v", seed, algo, q, k, res.Entries, oracle)
						return false
					}
					if !candidates[res.Entries[i].Node] {
						t.Logf("seed=%d %v: non-candidate in result", seed, algo)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
