package core

import (
	"math/rand"
	"testing"

	"rkranks/internal/graph"
	"rkranks/internal/rank"
	tg "rkranks/internal/testgraphs"
)

// entriesEqual compares entry slices element-wise, treating nil and empty
// as equal.
func entriesEqual(a, b []rank.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCanonicalBoundaryTies pins the canonical-result invariant the
// cluster merge depends on: every engine returns exactly the minimum k
// entries by (rank, node id) — byte-identical to the brute-force oracle,
// node ids included — even on tie-heavy graphs where many candidates
// share the k-th rank and pruning order would otherwise pick the winner.
func TestCanonicalBoundaryTies(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		for _, directed := range []bool{false, true} {
			g := tieHeavyGraph(seed, directed)
			e := NewEngine(g, Options{})
			e.SetIndex(mustIndex(t, g))
			rng := rand.New(rand.NewSource(seed * 31))
			for trial := 0; trial < 3; trial++ {
				q := int32(rng.Intn(g.N()))
				k := 1 + rng.Intn(10)
				oracle := rank.BruteForceReverse(g, q, k)
				for _, algo := range []Algorithm{Naive, Static, Dynamic, Indexed} {
					res, err := e.Query(algo, q, k)
					if err != nil {
						t.Fatalf("seed=%d %v q=%d k=%d: %v", seed, algo, q, k, err)
					}
					if !entriesEqual(res.Entries, oracle) {
						t.Fatalf("seed=%d directed=%v %v q=%d k=%d not canonical:\n got  %v\n want %v",
							seed, directed, algo, q, k, res.Entries, oracle)
					}
				}
			}
		}
	}
}

// TestCanonicalRestrictedCandidates checks the canonical invariant under a
// Candidates mask — the configuration a cluster vertex shard runs: the
// result must be the canonical top-k of the masked candidate set with
// ranks still counted over the whole graph.
func TestCanonicalRestrictedCandidates(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g := tieHeavyGraph(seed, false)
		n := g.N()
		rng := rand.New(rand.NewSource(seed*7 + 3))
		mask := make([]bool, n)
		for v := range mask {
			mask[v] = rng.Intn(2) == 0
		}
		e := NewEngine(g, Options{Candidates: mask})
		q := int32(rng.Intn(n))
		k := 1 + rng.Intn(8)
		full := rank.BruteForceReverse(g, q, n)
		want := make([]rank.Entry, 0, k)
		for _, en := range full {
			if mask[en.Node] && len(want) < k {
				want = append(want, en)
			}
		}
		for _, algo := range []Algorithm{Naive, Static, Dynamic} {
			res, err := e.Query(algo, q, k)
			if err != nil {
				t.Fatalf("seed=%d %v: %v", seed, algo, err)
			}
			if !entriesEqual(res.Entries, want) {
				t.Fatalf("seed=%d %v q=%d k=%d masked not canonical:\n got  %v\n want %v",
					seed, algo, q, k, res.Entries, want)
			}
		}
	}
}

// TestResultFloor covers the rank-floor derivation and its certification
// predicate.
func TestResultFloor(t *testing.T) {
	g := tg.Toy()
	e := NewEngine(g, Options{})

	res, err := e.Query(Dynamic, tg.Alice, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Floor()
	if f.Exhausted {
		t.Fatalf("full result reported exhausted floor: %+v", f)
	}
	if f.Rank != 4 || f.Node != tg.Caroline {
		t.Errorf("floor = %+v, want witness (Caroline, 4)", f)
	}
	// The floor clears any cutoff at or after its witness, and nothing
	// before it.
	if !f.Clears(rank.Entry{Node: tg.Caroline, Rank: 4}) {
		t.Error("floor should clear its own witness")
	}
	if !f.Clears(rank.Entry{Node: tg.Bob, Rank: 3}) {
		t.Error("floor should clear a strictly better cutoff")
	}
	if f.Clears(rank.Entry{Node: tg.George, Rank: 4}) {
		t.Error("floor must not clear a same-rank cutoff with a larger node id: a withheld candidate could order between them")
	}
	if f.Clears(rank.Entry{Node: tg.Sid, Rank: 6}) {
		t.Error("floor must not clear a worse cutoff")
	}

	// k exceeding the reachable candidate count: everything was returned.
	res, err = e.Query(Dynamic, tg.Alice, 100)
	if err != nil {
		t.Fatal(err)
	}
	f = res.Floor()
	if !f.Exhausted {
		t.Errorf("short result should report an exhausted floor, got %+v", f)
	}
	if !f.Clears(rank.Entry{Node: 0, Rank: 1}) {
		t.Error("exhausted floor clears every cutoff")
	}
}

// TestCanonicalTieAtPruneBound constructs the exact regression the strict
// prune fixes: a candidate whose Theorem-2 lower bound equals both its
// exact rank and the final kRank, with a node id that should tie-break it
// INTO the result. Pre-canonical engines pruned it.
func TestCanonicalTieAtPruneBound(t *testing.T) {
	// Star-ish graph engineered so two nodes share the boundary rank.
	b := graph.NewBuilder(false)
	b.EnsureNodes(6)
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(1, 2, 1)
	b.MustAddEdge(1, 3, 1)
	b.MustAddEdge(2, 4, 1)
	b.MustAddEdge(3, 5, 1)
	g := b.Finalize()
	e := NewEngine(g, Options{})
	for q := int32(0); int(q) < g.N(); q++ {
		for k := 1; k <= g.N(); k++ {
			oracle := rank.BruteForceReverse(g, q, k)
			for _, algo := range []Algorithm{Naive, Static, Dynamic} {
				res, err := e.Query(algo, q, k)
				if err != nil {
					t.Fatal(err)
				}
				if !entriesEqual(res.Entries, oracle) {
					t.Fatalf("%v q=%d k=%d: got %v, want %v", algo, q, k, res.Entries, oracle)
				}
			}
		}
	}
}
