package experiments

import (
	"fmt"
	"time"

	"rkranks/internal/core"
	"rkranks/internal/graph"
	"rkranks/internal/hub"
	"rkranks/internal/stats"
	"rkranks/internal/workload"
)

// HubLabelBench extends the paper's evaluation in the ReHub direction
// (see PAPERS.md): reverse k-ranks answered from a precomputed pruned
// 2-hop hub labeling instead of per-candidate Dijkstra refinements. For
// each dataset it builds a COMPLETE labeling (one root per node, degree
// first — exact label distances for every reachable pair, the strongest
// query-time pruning and the configuration the committed baseline gates),
// then times the same workload on Dynamic and on HubLabel, reporting the
// one-off build cost, the labeling footprint, per-query latency
// percentiles, how many Dijkstra refinements each engine paid, how many
// candidates the label scan alone disqualified, and the headline mean
// speedup. Results are byte-identical between the two engines — only the
// work columns and the wall clock move.
func (r *Runner) HubLabelBench() (*stats.Table, error) {
	t := stats.NewTable("HubLabel: answering from a pruned 2-hop labeling vs Dynamic",
		"dataset", "engine", "build (s)", "label bytes", "p50 (ms)", "p99 (ms)",
		"refinements", "label prunes", "speedup vs dynamic")
	k := defaultK(r.cfg.Ks)
	road, _ := r.Road()
	sets := []struct {
		name string
		g    *graph.Graph
	}{
		{"dblp", r.DBLP()},
		{"road", road},
	}
	for _, s := range sets {
		queries := workload.Random(s.g, r.cfg.Queries, r.cfg.Seed+37)

		buildStart := time.Now()
		roots := hub.Order(s.g, hub.DegreeFirst, s.g.N(), hub.Options{Seed: r.cfg.Seed + 7})
		labels, err := hub.BuildLabels(s.g, roots, 0)
		if err != nil {
			return nil, err
		}
		buildSec := time.Since(buildStart).Seconds()

		dyn, err := timeEngine(core.NewEngine(s.g, core.Options{}), core.Dynamic, queries, k)
		if err != nil {
			return nil, err
		}
		hl, err := timeEngine(core.NewEngine(s.g, core.Options{Labels: labels}), core.HubLabel, queries, k)
		if err != nil {
			return nil, err
		}

		t.Add(s.name, "dynamic", "0.000", 0,
			fmt.Sprintf("%.4f", 1000*stats.Percentile(dyn.durs, 50)),
			fmt.Sprintf("%.4f", 1000*stats.Percentile(dyn.durs, 99)),
			dyn.stats.Refinements, dyn.stats.LabelPruned, "1.00x")
		t.Add(s.name, "hublabel", fmt.Sprintf("%.3f", buildSec), labels.Bytes(),
			fmt.Sprintf("%.4f", 1000*stats.Percentile(hl.durs, 50)),
			fmt.Sprintf("%.4f", 1000*stats.Percentile(hl.durs, 99)),
			hl.stats.Refinements, hl.stats.LabelPruned,
			fmt.Sprintf("%.2fx", stats.Mean(dyn.durs)/stats.Mean(hl.durs)))
	}
	t.Note("%d queries, k=%d; complete labeling (H = |V|, degree first); both engines return byte-identical results", r.cfg.Queries, k)
	return t, nil
}

// timedRun is one engine's pass over the workload: per-query durations in
// seconds plus the summed work counters.
type timedRun struct {
	durs  []float64
	stats core.Stats
}

// timeEngine times queries one at a time on e, after an untimed warm-up
// pass that brings every workspace (heap storage, stamped arrays, the
// label-scan dedupe array) to its high-water mark.
func timeEngine(e *core.Engine, algo core.Algorithm, queries []int32, k int) (timedRun, error) {
	var tr timedRun
	for _, q := range queries {
		if _, err := e.Query(algo, q, k); err != nil {
			return tr, err
		}
	}
	tr.durs = make([]float64, 0, len(queries))
	for _, q := range queries {
		start := time.Now()
		res, err := e.Query(algo, q, k)
		if err != nil {
			return tr, err
		}
		tr.durs = append(tr.durs, time.Since(start).Seconds())
		tr.stats.Add(res.Stats)
	}
	return tr, nil
}
