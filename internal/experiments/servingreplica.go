package experiments

import (
	"context"
	"errors"
	"fmt"
	"time"

	"rkranks/internal/cluster"
	"rkranks/internal/core"
	"rkranks/internal/obs"
	"rkranks/internal/stats"
	"rkranks/internal/workload"
)

// deadReplica wraps a shard backend whose query path always fails — the
// experiment's stand-in for a crashed replica. The group marks it
// unhealthy on the first attempt (FailureThreshold 1) and, with a
// retry backoff far longer than the run, never probes it again, so the
// failover count is exactly one per shard group regardless of machine
// speed: a deterministic column benchdiff can gate strictly.
type deadReplica struct {
	cluster.ShardBackend
}

var errReplicaDead = errors.New("experiments: replica down")

func (d *deadReplica) Query(ctx context.Context, a core.Algorithm, q int32, k int) (*core.Result, error) {
	return nil, errReplicaDead
}

func (d *deadReplica) QueryBatch(ctx context.Context, a core.Algorithm, queries []int32, k int) ([]*core.Result, error) {
	return nil, errReplicaDead
}

// ServingReplica measures replica-set serving (internal/cluster's
// ReplicaGroup): the same scatter-gather workload as serving_cluster,
// but with each shard served by a two-replica group whose first replica
// is dead. Answers stay byte-identical and non-Partial — the healthy
// sibling absorbs every query after one counted failover per group —
// so the work counters (failovers, transferred entries, refinements)
// are deterministic for a fixed seed and benchdiff gates them; the
// latency column carries wall-clock noise and is gated laxly.
func (r *Runner) ServingReplica() (*stats.Table, error) {
	t := stats.NewTable("Serving from replica sets: transparent failover with one dead replica per shard group (Dynamic)",
		"dataset", "shards", "replicas", "mean (ms)",
		"failovers", "transferred (entries)", "short-circuited", "refinements")
	k := maxK(r.cfg.Ks)
	g := r.DBLP()
	queries := workload.Random(g, r.cfg.Queries, r.cfg.Seed+47)

	for _, shards := range shardSweep(r.cfg.Workers) {
		om := obs.NewMetrics(nil)
		cfg := cluster.Config{
			Metrics:          om,
			FailureThreshold: 1,
			RetryBackoff:     time.Hour,
		}
		backends := make([]cluster.ShardBackend, shards)
		for i := 0; i < shards; i++ {
			members := make([]cluster.ShardBackend, 2)
			for j := range members {
				ls, err := cluster.NewLocalShard(g, core.Options{}, cluster.DegreeBalanced{}, shards, i, 1, nil)
				if err != nil {
					return nil, err
				}
				if j == 0 {
					members[j] = &deadReplica{ShardBackend: ls}
				} else {
					members[j] = ls
				}
			}
			rg, err := cluster.NewReplicaGroup(members, cfg)
			if err != nil {
				return nil, err
			}
			backends[i] = rg
		}
		coord, err := cluster.New(backends, cfg)
		if err != nil {
			return nil, err
		}
		mean, refinements, err := runClusterBatch(coord, queries, k)
		if err != nil {
			return nil, err
		}
		cs := coord.ClusterSnapshot().(*cluster.Snapshot)
		t.Add("dblp", shards, 2,
			fmt.Sprintf("%.3f", 1000*mean),
			om.ReplicaFailovers.Value(),
			cs.EntriesTransferred, cs.ShortCircuited, refinements)
		_ = coord.Close()
	}
	t.Note("%d queries per point, k=%d; replica 0 of every group is dead, results stay byte-identical and non-Partial", len(queries), k)
	t.Note("failovers counts queries that attempted a dead replica before a sibling answered: exactly one per group (threshold 1, backoff > run)")
	return t, nil
}
