package experiments

import (
	"fmt"
	"math"

	"rkranks/internal/core"
	"rkranks/internal/gen"
	"rkranks/internal/sssp"
	"rkranks/internal/stats"
	"rkranks/internal/topk"
)

// CaseStudy reproduces the Figure-5 comparison (Section 6.2.2): for the two
// closest competing stores on the road network, contrast three queries —
// the store's nearest community (top-1), the communities whose nearest
// store it is (reverse top-1, unbounded size), and the reverse 1-ranks
// answer (fixed size). The paper's observation: top-1 can hand both rivals
// the same community, reverse top-1 sizes are lopsided, and reverse
// k-ranks gives each store a usable fixed-size target list.
func (r *Runner) CaseStudy() (*stats.Table, error) {
	g, stores := r.Road()
	candidates, counted := gen.StoreClasses(g.N(), stores)

	// Closest store pair = the contested market.
	s := sssp.New(g)
	best := math.Inf(1)
	a, b := stores[0], stores[1]
	for _, u := range stores {
		s.Reset(u)
		for {
			v, d, ok := s.Next()
			if !ok {
				break
			}
			if v != u && counted[v] {
				if d < best {
					best, a, b = d, u, v
				}
				break // first store settled is the nearest one
			}
		}
	}

	eng := core.NewEngine(g, core.Options{Candidates: candidates, Counted: counted})
	t := stats.NewTable("Figure 5 case study: two competing stores",
		"store", "nearest community (top-1)", "reverse top-1 size", "reverse 1-ranks", "reverse 3-ranks")
	for _, q := range []int32{a, b} {
		var nearest string
		for _, e := range topk.TopK(g, q, len(stores)+1) {
			if !counted[e.Node] {
				nearest = fmt.Sprintf("%d", e.Node)
				break
			}
		}
		rt1 := topk.ReverseTopKBichromatic(g, q, 1, candidates, counted)
		r1, err := eng.Query(core.Dynamic, q, 1)
		if err != nil {
			return nil, err
		}
		r3, err := eng.Query(core.Dynamic, q, 3)
		if err != nil {
			return nil, err
		}
		t.Add(q, nearest, len(rt1), fmt.Sprint(r1.Nodes()), fmt.Sprint(r3.Nodes()))
	}
	t.Note("stores %d and %d are %.3f travel minutes apart", a, b, best)
	t.Note("paper: top-1 of both stores was community B; reverse top-1 sizes were 2 vs 5; reverse 1-ranks gave B and A")
	return t, nil
}
