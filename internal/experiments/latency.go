package experiments

import (
	"fmt"
	"time"

	"rkranks/internal/core"
	"rkranks/internal/graph"
	"rkranks/internal/stats"
	"rkranks/internal/workload"
)

// Latency goes beyond the paper's evaluation in the direction orthogonal
// to Serving: where Serving measures the aggregate throughput of many
// concurrent queries, Latency measures how fast ONE query finishes when
// its rank refinements run on Options.RefineWorkers speculative workers
// (see core/parallel.go). Queries are issued strictly one at a time and
// timed individually; each sweep point reports p50/p99/mean and the mean
// speedup over the serial engine. Results are byte-identical across the
// sweep — only the wall clock moves.
func (r *Runner) Latency() (*stats.Table, error) {
	t := stats.NewTable("Latency: intra-query parallel refinement (Dynamic, one query at a time)",
		"dataset", "refine workers", "p50 (s)", "p99 (s)", "mean (s)", "speedup vs serial")
	k := defaultK(r.cfg.Ks)
	road, _ := r.Road()
	sets := []struct {
		name string
		g    *graph.Graph
	}{
		{"dblp", r.DBLP()},
		{"road", road},
	}
	for _, s := range sets {
		queries := workload.Random(s.g, r.cfg.Queries, r.cfg.Seed+29)
		var base float64
		for _, w := range refineSweep(r.cfg.RefineWorkers) {
			e := core.NewEngine(s.g, core.Options{RefineWorkers: w})
			// Untimed warm-up so workspaces reach their high-water marks.
			if _, err := e.Query(core.Dynamic, queries[0], k); err != nil {
				return nil, err
			}
			durs := make([]float64, 0, len(queries))
			for _, q := range queries {
				start := time.Now()
				if _, err := e.Query(core.Dynamic, q, k); err != nil {
					return nil, err
				}
				durs = append(durs, time.Since(start).Seconds())
			}
			mean := stats.Mean(durs)
			if w == 0 {
				base = mean
			}
			t.Add(s.name, w,
				fmt.Sprintf("%.6f", stats.Percentile(durs, 50)),
				fmt.Sprintf("%.6f", stats.Percentile(durs, 99)),
				fmt.Sprintf("%.6f", mean),
				fmt.Sprintf("%.2fx", base/mean))
		}
	}
	t.Note("%d queries per point, k=%d; workers=0 is the serial engine; results are byte-identical at every point", r.cfg.Queries, k)
	return t, nil
}

// refineSweep returns the RefineWorkers axis: the serial engine (0), then
// the same powers-of-two sweep the serving experiment uses.
func refineSweep(max int) []int {
	return append([]int{0}, workerSweep(max)...)
}
