package experiments

import (
	"fmt"
	"runtime"
	"time"

	"rkranks/internal/core"
	"rkranks/internal/graph"
	"rkranks/internal/stats"
	"rkranks/internal/workload"
)

// Latency goes beyond the paper's evaluation in the direction orthogonal
// to Serving: where Serving measures the aggregate throughput of many
// concurrent queries, Latency measures how fast ONE query finishes when
// its rank refinements run on Options.RefineWorkers speculative workers
// (see core/parallel.go). Queries are issued strictly one at a time and
// timed individually; the workload runs as one shared-traversal batch per
// sweep point (the steady serving configuration — see Pool.QueryManyContext),
// and each point reports p50/p99/mean, the mean speedup over the serial
// engine, and the steady-state allocation cost per query measured by
// runtime.ReadMemStats deltas over the timed loop. Results are
// byte-identical across the sweep — only the wall clock and the
// allocation columns move.
func (r *Runner) Latency() (*stats.Table, error) {
	t := stats.NewTable("Latency: intra-query parallel refinement (Dynamic, one query at a time)",
		"dataset", "refine workers", "p50 (s)", "p99 (s)", "mean (s)", "speedup vs serial",
		"allocs/query", "bytes/query")
	k := defaultK(r.cfg.Ks)
	road, _ := r.Road()
	sets := []struct {
		name string
		g    *graph.Graph
	}{
		{"dblp", r.DBLP()},
		{"road", road},
	}
	for _, s := range sets {
		queries := workload.Random(s.g, r.cfg.Queries, r.cfg.Seed+29)
		var base float64
		for _, w := range refineSweep(r.cfg.RefineWorkers) {
			e := core.NewEngine(s.g, core.Options{RefineWorkers: w})
			// Untimed warm-up batch so every workspace (heap storage,
			// stamped arrays, arena slabs) reaches its high-water mark
			// before the allocation deltas are read.
			e.BeginBatch()
			for _, q := range queries {
				if _, err := e.Query(core.Dynamic, q, k); err != nil {
					return nil, err
				}
			}
			e.EndBatch()
			durs := make([]float64, 0, len(queries))
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			e.BeginBatch()
			for _, q := range queries {
				start := time.Now()
				if _, err := e.Query(core.Dynamic, q, k); err != nil {
					return nil, err
				}
				durs = append(durs, time.Since(start).Seconds())
			}
			e.EndBatch()
			runtime.ReadMemStats(&after)
			nq := float64(len(durs))
			mean := stats.Mean(durs)
			if w == 0 {
				base = mean
			}
			t.Add(s.name, w,
				fmt.Sprintf("%.6f", stats.Percentile(durs, 50)),
				fmt.Sprintf("%.6f", stats.Percentile(durs, 99)),
				fmt.Sprintf("%.6f", mean),
				fmt.Sprintf("%.2fx", base/mean),
				fmt.Sprintf("%.2f", float64(after.Mallocs-before.Mallocs)/nq),
				fmt.Sprintf("%.1f", float64(after.TotalAlloc-before.TotalAlloc)/nq))
		}
	}
	t.Note("%d queries per point, k=%d; workers=0 is the serial engine; each point runs as one shared-traversal batch; results are byte-identical at every point", r.cfg.Queries, k)
	return t, nil
}

// refineSweep returns the RefineWorkers axis: the serial engine (0), then
// the same powers-of-two sweep the serving experiment uses.
func refineSweep(max int) []int {
	return append([]int{0}, workerSweep(max)...)
}

// SteadyStateAllocs measures the per-query allocation cost of the warm
// batch-serving hot path: one engine over the DBLP-like graph, Dynamic at
// the default k, the standard random workload run once untimed (so every
// workspace reaches its high-water mark) and then again inside a
// runtime.ReadMemStats window. This is the `allocs_per_query` /
// `bytes_per_query` pair rkbench stamps into its JSON reports — the
// invocation-level summary of the arena + stamped-array zero-alloc claim,
// complementing the per-sweep-point columns in the latency table.
func (r *Runner) SteadyStateAllocs() (allocsPerQuery, bytesPerQuery float64, err error) {
	g := r.DBLP()
	e := core.NewEngine(g, core.Options{})
	k := defaultK(r.cfg.Ks)
	queries := workload.Random(g, r.cfg.Queries, r.cfg.Seed+31)
	run := func() error {
		e.BeginBatch()
		defer e.EndBatch()
		for _, q := range queries {
			if _, err := e.Query(core.Dynamic, q, k); err != nil {
				return err
			}
		}
		return nil
	}
	if err = run(); err != nil {
		return 0, 0, err
	}
	runtime.GC() // settle warm-up garbage so the window sees only steady state
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if err = run(); err != nil {
		return 0, 0, err
	}
	runtime.ReadMemStats(&after)
	n := float64(len(queries))
	return float64(after.Mallocs-before.Mallocs) / n, float64(after.TotalAlloc-before.TotalAlloc) / n, nil
}
