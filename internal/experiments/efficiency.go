package experiments

import (
	"fmt"

	"rkranks/internal/core"
	"rkranks/internal/hub"
	"rkranks/internal/stats"
	"rkranks/internal/workload"
)

// Figure6 reproduces the headline efficiency comparison (Figure 6 a-d):
// average query time and average rank-refinement count as functions of k,
// for the Static SDS-tree, Dynamic SDS-tree, and Dynamic+Index engines, on
// the DBLP-like and Epinions-like graphs. One table per dataset, matching
// the figure's four panels (time panel columns + refinement panel columns).
func (r *Runner) Figure6() ([]*stats.Table, error) {
	var out []*stats.Table
	for _, ds := range []string{"dblp", "epinions"} {
		g, err := r.graphByName(ds)
		if err != nil {
			return nil, err
		}
		queries := r.queriesFor(g)
		ix, _, err := r.buildIndex(g, r.cfg.HubFrac, r.cfg.IndexFrac, r.cfg.Strategy, nil, nil)
		if err != nil {
			return nil, err
		}
		eng := core.NewEngine(g, core.Options{})

		t := stats.NewTable(
			fmt.Sprintf("Figure 6 (%s-like): query time and rank refinements vs k", ds),
			"k",
			"static time (s)", "dynamic time (s)", "indexed time (s)",
			"static refine", "dynamic refine", "indexed refine")
		for _, k := range r.sortedKs() {
			bs, err := runBatch(eng, core.Static, queries, k)
			if err != nil {
				return nil, err
			}
			bd, err := runBatch(eng, core.Dynamic, queries, k)
			if err != nil {
				return nil, err
			}
			// Fresh index clone per k so one sweep point doesn't warm the
			// next (the paper measures each setting independently).
			eng.SetIndex(ix.Clone())
			bi, err := runBatch(eng, core.Indexed, queries, k)
			if err != nil {
				return nil, err
			}
			eng.SetIndex(nil)
			t.Add(k, bs.AvgTime, bd.AvgTime, bi.AvgTime, bs.AvgRefine, bd.AvgRefine, bi.AvgRefine)
		}
		t.Note("%d nodes, %d edges, %d queries per point", g.N(), g.M(), len(queries))
		out = append(out, t)
	}
	return out, nil
}

// NaiveGap reproduces the Section 6.3.1 naive-baseline comparison: the
// brute-force method refines every node of the graph, the framework
// refines a few hundred. The paper reports 701s / 75,878 refinements for
// naive on Epinions at k=1 versus seconds for the framework.
func (r *Runner) NaiveGap() (*stats.Table, error) {
	g := r.Epinions()
	n := r.cfg.NaiveQueries
	if n < 1 {
		n = 1
	}
	queries := workload.Random(g, n, r.cfg.Seed+17)
	eng := core.NewEngine(g, core.Options{})

	t := stats.NewTable("Section 6.3.1: naive baseline vs framework (Epinions-like, k=1)",
		"method", "avg query time (s)", "avg rank refinements")
	for _, algo := range []core.Algorithm{core.Naive, core.Static, core.Dynamic} {
		b, err := runBatch(eng, algo, queries, 1)
		if err != nil {
			return nil, err
		}
		t.Add(algo.String(), b.AvgTime, b.AvgRefine)
	}
	t.Note("%d queries; paper: naive=701.18s with 75,878 refinements on real Epinions", len(queries))
	return t, nil
}

// HubSweep reproduces Tables 6-7: the effect of the hub percentage h on
// index size, average query time, and rank refinements.
func (r *Runner) HubSweep(ds string) (*stats.Table, error) {
	g, err := r.graphByName(ds)
	if err != nil {
		return nil, err
	}
	queries := r.queriesFor(g)
	k := defaultK(r.cfg.Ks)
	t := stats.NewTable(
		fmt.Sprintf("Tables 6/7: effect of hub percentage h (%s-like, k=%d)", ds, k),
		"h", "index size (bytes)", "query time (s)", "rank refinement")
	for _, h := range r.cfg.HFracs {
		ix, _, err := r.buildIndex(g, h, r.cfg.IndexFrac, r.cfg.Strategy, nil, nil)
		if err != nil {
			return nil, err
		}
		eng := core.NewEngine(g, core.Options{})
		eng.SetIndex(ix)
		b, err := runBatch(eng, core.Indexed, queries, k)
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("%.2f", h), ix.SizeBytes(), b.AvgTime, b.AvgRefine)
	}
	t.Note("paper: query time and refinements fall monotonically as h grows; size barely moves")
	return t, nil
}

// IndexSweep reproduces Tables 8-9: the effect of the per-hub index
// percentage m.
func (r *Runner) IndexSweep(ds string) (*stats.Table, error) {
	g, err := r.graphByName(ds)
	if err != nil {
		return nil, err
	}
	queries := r.queriesFor(g)
	k := defaultK(r.cfg.Ks)
	t := stats.NewTable(
		fmt.Sprintf("Tables 8/9: effect of index percentage m (%s-like, k=%d)", ds, k),
		"m", "index size (bytes)", "query time (s)", "rank refinement")
	for _, m := range r.cfg.MFracs {
		ix, _, err := r.buildIndex(g, r.cfg.HubFrac, m, r.cfg.Strategy, nil, nil)
		if err != nil {
			return nil, err
		}
		eng := core.NewEngine(g, core.Options{})
		eng.SetIndex(ix)
		b, err := runBatch(eng, core.Indexed, queries, k)
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("%.2f", m), ix.SizeBytes(), b.AvgTime, b.AvgRefine)
	}
	t.Note("paper: gentle monotone improvement as m grows")
	return t, nil
}

// Table10 reproduces the hub-selection strategy comparison: Random vs
// Degree First vs Closeness First on both datasets.
func (r *Runner) Table10() (*stats.Table, error) {
	k := defaultK(r.cfg.Ks)
	t := stats.NewTable(fmt.Sprintf("Table 10: hub selection strategies (k=%d)", k),
		"dataset", "metric", "random", "degree first", "closeness first")
	for _, ds := range []string{"dblp", "epinions"} {
		g, err := r.graphByName(ds)
		if err != nil {
			return nil, err
		}
		queries := r.queriesFor(g)
		var times [3]string
		var refs [3]string
		for i, strat := range []hub.Strategy{hub.Random, hub.DegreeFirst, hub.ClosenessFirst} {
			ix, _, err := r.buildIndex(g, r.cfg.HubFrac, r.cfg.IndexFrac, strat, nil, nil)
			if err != nil {
				return nil, err
			}
			eng := core.NewEngine(g, core.Options{})
			eng.SetIndex(ix)
			b, err := runBatch(eng, core.Indexed, queries, k)
			if err != nil {
				return nil, err
			}
			times[i] = stats.Seconds(b.AvgTime)
			refs[i] = fmt.Sprintf("%.3f", b.AvgRefine)
		}
		t.Add(ds, "query time (s)", times[0], times[1], times[2])
		t.Add(ds, "rank refinement", refs[0], refs[1], refs[2])
	}
	t.Note("paper: Degree First wins, Closeness First close behind, Random worst")
	return t, nil
}

// defaultK returns the paper's default k (10 when present, else the middle
// of the axis).
func defaultK(ks []int) int {
	for _, k := range ks {
		if k == 10 {
			return k
		}
	}
	return ks[len(ks)/2]
}
