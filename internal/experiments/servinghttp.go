package experiments

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"rkranks/internal/api"
	"rkranks/internal/core"
	"rkranks/internal/server"
	"rkranks/internal/stats"
	"rkranks/internal/workload"
)

// ServingHTTP measures the full serving stack — HTTP decode, admission,
// pool dispatch, engine, JSON encode — under open-loop load: a fixed
// arrival rate regardless of completions, which is what real traffic does
// and what exposes queueing collapse past saturation. The experiment first
// calibrates the stack's closed-loop capacity, then sweeps offered load
// from comfortably below it to past it, reporting goodput and latency
// percentiles per point. Admission control converts overload into 429s
// instead of latency: past capacity, goodput should plateau (not
// collapse) while rejects absorb the excess.
func (r *Runner) ServingHTTP() (*stats.Table, error) {
	t := stats.NewTable("Serving over HTTP: open-loop offered load vs goodput and latency (Indexed, shared concurrent index)",
		"dataset", "offered (qps)", "achieved (qps)", "ok", "rejected", "timeout", "p50 (ms)", "p99 (ms)")
	k := defaultK(r.cfg.Ks)
	g := r.DBLP()
	seed, _, err := r.buildIndex(g, r.cfg.HubFrac, r.cfg.IndexFrac, r.cfg.Strategy, nil, nil)
	if err != nil {
		return nil, err
	}
	shared := seed.Clone().Sharded()
	pool, err := core.NewPoolWithIndex(g, core.Options{}, r.cfg.Workers, shared)
	if err != nil {
		return nil, err
	}
	srv, err := server.New(server.Config{
		Pool:           pool,
		Graph:          g,
		DefaultTimeout: 2 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	queries := workload.Random(g, 4*r.cfg.Queries, r.cfg.Seed+31)

	// Calibrate: closed-loop burst through the same HTTP stack estimates
	// the capacity the sweep brackets.
	capacity, err := calibrateHTTP(ts.URL, queries, k)
	if err != nil {
		return nil, err
	}

	window := servingWindow(r.cfg.Queries)
	for _, frac := range []float64{0.5, 0.9, 1.5} {
		rate := capacity * frac
		if rate < 1 {
			rate = 1
		}
		res, err := server.RunLoad(context.Background(), server.LoadConfig{
			URL:       ts.URL,
			Algorithm: "indexed",
			Queries:   queries,
			K:         k,
			Rate:      rate,
			Duration:  window,
			Timeout:   2 * time.Second,
			Seed:      r.cfg.Seed + 37,
		})
		if err != nil {
			return nil, err
		}
		t.Add("dblp",
			fmt.Sprintf("%.0f", res.Offered),
			fmt.Sprintf("%.0f", res.Achieved),
			res.OK, res.Rejected, res.Deadline,
			fmt.Sprintf("%.2f", res.P50),
			fmt.Sprintf("%.2f", res.P99))
	}
	t.Note("calibrated capacity ~%.0f qps (closed loop); offered sweeps 0.5x/0.9x/1.5x of it over %v windows", capacity, window)
	t.Note("past saturation, admission control sheds load as 429s; goodput should plateau rather than collapse")
	return t, nil
}

// calibrateHTTP estimates end-to-end closed-loop throughput: one batch
// request per pool worker's worth of queries, timed.
func calibrateHTTP(url string, queries []int32, k int) (float64, error) {
	c := api.NewClient(url)
	n := len(queries)
	if n > 64 {
		n = 64
	}
	// Warm up connections and engine workspaces.
	if _, err := c.Query(context.Background(), "indexed", queries[0], k, 0); err != nil {
		return 0, err
	}
	start := time.Now()
	if _, err := c.Batch(context.Background(), "indexed", queries[:n], k, 30*time.Second); err != nil {
		return 0, err
	}
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return float64(n), nil
	}
	return float64(n) / elapsed, nil
}

// servingWindow scales the per-point measurement window with the
// configured workload size: long enough at bench scale for stable
// percentiles, short enough at the Small test scale to keep the suite
// fast.
func servingWindow(queries int) time.Duration {
	w := time.Duration(queries) * 25 * time.Millisecond
	if w < 300*time.Millisecond {
		w = 300 * time.Millisecond
	}
	if w > 3*time.Second {
		w = 3 * time.Second
	}
	return w
}
