package experiments

import (
	"fmt"
	"sort"
	"time"

	"rkranks/internal/core"
	"rkranks/internal/gen"
	"rkranks/internal/graph"
	"rkranks/internal/hub"
	"rkranks/internal/ridx"
	"rkranks/internal/stats"
	"rkranks/internal/workload"
)

// Runner executes experiments against lazily built, cached datasets.
type Runner struct {
	cfg Config

	dblp        *graph.Graph
	epinions    *graph.Graph
	epinionsUnd *graph.Graph
	road        *graph.Graph
	stores      []int32
}

// NewRunner returns a Runner for the configuration.
func NewRunner(cfg Config) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Runner{cfg: cfg}, nil
}

// Config returns the runner's configuration.
func (r *Runner) Config() Config { return r.cfg }

// DBLP returns the cached DBLP-like graph.
func (r *Runner) DBLP() *graph.Graph {
	if r.dblp == nil {
		r.dblp = gen.DBLPLike(gen.DBLPLikeParams{
			Nodes:             r.cfg.DBLPNodes,
			AttachPerNode:     r.cfg.DBLPAttach,
			ExtraCollabFactor: 0.5,
			Seed:              r.cfg.Seed,
		})
	}
	return r.dblp
}

// Epinions returns the cached Epinions-like graph.
func (r *Runner) Epinions() *graph.Graph {
	if r.epinions == nil {
		r.epinions = gen.EpinionsLike(gen.EpinionsLikeParams{
			Nodes:        r.cfg.EpinionsNodes,
			OutPerNode:   r.cfg.EpinionsOut,
			BackEdgeProb: 0.3,
			Seed:         r.cfg.Seed + 1,
		})
	}
	return r.epinions
}

// EpinionsUndirected returns the symmetrized Epinions-like graph, used by
// the bound experiments (Tables 11-13) where the Lemma-4 count bound must
// be applicable.
func (r *Runner) EpinionsUndirected() *graph.Graph {
	if r.epinionsUnd == nil {
		r.epinionsUnd = gen.EpinionsLike(gen.EpinionsLikeParams{
			Nodes:        r.cfg.EpinionsNodes,
			OutPerNode:   r.cfg.EpinionsOut,
			BackEdgeProb: 0.3,
			Undirected:   true,
			Seed:         r.cfg.Seed + 1,
		})
	}
	return r.epinionsUnd
}

// Road returns the cached road network and its store nodes.
func (r *Runner) Road() (*graph.Graph, []int32) {
	if r.road == nil {
		r.road, r.stores = gen.RoadNetwork(gen.RoadNetworkParams{
			Rows: r.cfg.RoadRows, Cols: r.cfg.RoadCols,
			KeepProb: 0.25, Stores: r.cfg.Stores,
			Seed: r.cfg.Seed + 2,
		})
	}
	return r.road, r.stores
}

// buildIndex constructs an index with the runner's default (or overridden)
// parameters for the given graph. For bichromatic graphs pass the class
// slices; only candidate hubs may contribute entries (see ridx).
func (r *Runner) buildIndex(g *graph.Graph, hFrac, mFrac float64, strat hub.Strategy, candidates, counted []bool) (*ridx.SerialIndex, time.Duration, error) {
	h := frac(g.N(), hFrac)
	m := frac(g.N(), mFrac)
	start := time.Now()
	hubs := hub.Select(g, strat, h, hub.Options{Seed: r.cfg.Seed + 7})
	ix, err := ridx.Build(g, ridx.BuildParams{
		Hubs: hubs, M: m, K: r.cfg.KMax,
		Counted: counted, Candidates: candidates,
	})
	return ix, time.Since(start), err
}

func frac(n int, f float64) int {
	v := int(float64(n) * f)
	if v < 1 {
		v = 1
	}
	if v > n {
		v = n
	}
	return v
}

// batch aggregates a query workload's cost.
type batch struct {
	AvgTime   time.Duration
	AvgRefine float64
	Stats     core.Stats // summed over queries
	Queries   int
}

// runBatch evaluates each query with the engine and averages cost metrics.
// The workload runs as one shared-traversal batch: candidate refinements
// whose settle logs were recorded earlier in the batch are replayed from
// the engine arena instead of re-searching the graph. Results and the
// decision statistics reported by the experiments are byte-identical to
// per-query execution (asserted in core's batch tests); only the wall
// clock and the effort counters move.
func runBatch(e *core.Engine, algo core.Algorithm, queries []int32, k int) (batch, error) {
	var b batch
	var total time.Duration
	e.BeginBatch()
	defer e.EndBatch()
	for _, q := range queries {
		start := time.Now()
		res, err := e.Query(algo, q, k)
		if err != nil {
			return b, fmt.Errorf("%v q=%d k=%d: %w", algo, q, k, err)
		}
		total += time.Since(start)
		b.Stats.Add(res.Stats)
		b.Queries++
	}
	if b.Queries > 0 {
		b.AvgTime = total / time.Duration(b.Queries)
		b.AvgRefine = float64(b.Stats.Refinements) / float64(b.Queries)
	}
	return b, nil
}

// Experiment names, in paper order; "serving", "latency", "serving_http",
// "serving_cluster", "serving_batch", and "hublabel" extend the paper's
// evaluation with the pooled-concurrency throughput study, the
// intra-query parallel refinement latency study, the HTTP serving-stack
// load sweep, the sharded scatter-gather study (rank-floor pruning vs
// naive gather across shard counts, through internal/cluster), the
// batch-scatter plus response-cache study (internal/cache over
// internal/cluster), the replica-set failover study ("serving_replica":
// ReplicaGroup serving with a dead replica per group), and the
// hub-label engine study (precomputed 2-hop label pruning vs Dynamic,
// through internal/hub); "mutation" measures the live-mutation pipeline
// (weight patches vs rebuild swaps, through internal/live).
var names = []string{
	"table3", "table4", "figure5",
	"figure6", "naive",
	"table6", "table7", "table8", "table9", "table10",
	"table11", "table12", "table13",
	"table14", "table15",
	"figure7",
	"serving",
	"latency",
	"serving_http",
	"serving_cluster",
	"serving_batch",
	"serving_replica",
	"hublabel",
	"mutation",
}

// Names lists all experiment identifiers in paper order.
func Names() []string { return append([]string(nil), names...) }

// Run dispatches an experiment by name.
func (r *Runner) Run(name string) ([]*stats.Table, error) {
	switch name {
	case "table3":
		t, err := r.Table3()
		return wrap(t), err
	case "table4":
		t, err := r.Table4()
		return wrap(t), err
	case "figure5":
		t, err := r.CaseStudy()
		return wrap(t), err
	case "figure6":
		return r.Figure6()
	case "naive":
		t, err := r.NaiveGap()
		return wrap(t), err
	case "table6":
		t, err := r.HubSweep("dblp")
		return wrap(t), err
	case "table7":
		t, err := r.HubSweep("epinions")
		return wrap(t), err
	case "table8":
		t, err := r.IndexSweep("dblp")
		return wrap(t), err
	case "table9":
		t, err := r.IndexSweep("epinions")
		return wrap(t), err
	case "table10":
		t, err := r.Table10()
		return wrap(t), err
	case "table11":
		t, err := r.Table11()
		return wrap(t), err
	case "table12":
		t, err := r.BoundAblation(true)
		return wrap(t), err
	case "table13":
		t, err := r.BoundAblation(false)
		return wrap(t), err
	case "table14":
		t, err := r.Table14()
		return wrap(t), err
	case "table15":
		t, err := r.Table15()
		return wrap(t), err
	case "figure7":
		return r.Figure7()
	case "serving":
		t, err := r.Serving()
		return wrap(t), err
	case "latency":
		t, err := r.Latency()
		return wrap(t), err
	case "serving_http":
		t, err := r.ServingHTTP()
		return wrap(t), err
	case "serving_cluster":
		t, err := r.ServingCluster()
		return wrap(t), err
	case "serving_batch":
		t, err := r.ServingBatch()
		return wrap(t), err
	case "serving_replica":
		t, err := r.ServingReplica()
		return wrap(t), err
	case "hublabel":
		t, err := r.HubLabelBench()
		return wrap(t), err
	case "mutation":
		t, err := r.Mutation()
		return wrap(t), err
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", name, names)
}

func wrap(t *stats.Table) []*stats.Table {
	if t == nil {
		return nil
	}
	return []*stats.Table{t}
}

// graphByName resolves the dataset axis used by several experiments.
func (r *Runner) graphByName(name string) (*graph.Graph, error) {
	switch name {
	case "dblp":
		return r.DBLP(), nil
	case "epinions":
		return r.Epinions(), nil
	case "epinions-und":
		return r.EpinionsUndirected(), nil
	}
	return nil, fmt.Errorf("experiments: unknown dataset %q", name)
}

// queriesFor returns the default random workload for a graph.
func (r *Runner) queriesFor(g *graph.Graph) []int32 {
	return workload.Random(g, r.cfg.Queries, r.cfg.Seed+13)
}

// sortedKs returns the configured k axis in ascending order.
func (r *Runner) sortedKs() []int {
	ks := append([]int(nil), r.cfg.Ks...)
	sort.Ints(ks)
	return ks
}
