// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6) on the synthetic stand-in datasets described in
// DESIGN.md §4. Each experiment returns a stats.Table whose rows mirror the
// paper's; EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"

	"rkranks/internal/hub"
)

// Config sizes the datasets and workloads. The paper ran on graphs of up to
// 1.3M nodes with 1000 queries per setting; the defaults here are scaled so
// the full suite finishes in minutes while preserving every comparison's
// shape. All randomness derives from Seed.
type Config struct {
	// DBLP-like collaboration graph (undirected, power-law, avg deg ~14).
	DBLPNodes  int
	DBLPAttach int

	// Epinions-like trust graph (directed, power-law, Zipf weights).
	EpinionsNodes int
	EpinionsOut   int

	// SF-like road network (undirected near-planar grid) with store nodes.
	RoadRows, RoadCols, Stores int

	// Queries per measurement point.
	Queries int
	// NaiveQueries caps the workload for the brute-force baseline.
	NaiveQueries int

	// Ks is the swept result-size axis (Table 5: 5..100).
	Ks []int
	// KMax is the index's K (must cover max(Ks)).
	KMax int

	// HubFrac (h) and IndexFrac (m) are the default index parameters;
	// HFracs/MFracs are the sweep axes of Tables 6-9 and 15.
	HubFrac, IndexFrac float64
	HFracs, MFracs     []float64

	// Strategy is the default hub-selection strategy (Table 5: Degree
	// First).
	Strategy hub.Strategy

	// Workers is the maximum worker count the serving experiment sweeps
	// to (<= 0 uses GOMAXPROCS).
	Workers int

	// RefineWorkers is the maximum intra-query refine worker count the
	// latency experiment sweeps to (<= 0 uses GOMAXPROCS).
	RefineWorkers int

	Seed int64
}

// Validate reports configuration inconsistencies.
func (c Config) Validate() error {
	if c.DBLPNodes < 2 || c.EpinionsNodes < 2 || c.RoadRows < 2 || c.RoadCols < 2 {
		return fmt.Errorf("experiments: dataset sizes too small: %+v", c)
	}
	if len(c.Ks) == 0 {
		return fmt.Errorf("experiments: no k values configured")
	}
	for _, k := range c.Ks {
		if k > c.KMax {
			return fmt.Errorf("experiments: k=%d exceeds KMax=%d", k, c.KMax)
		}
	}
	if c.Queries < 1 {
		return fmt.Errorf("experiments: Queries must be >= 1")
	}
	return nil
}

// Small returns a test-sized configuration (sub-second experiments).
func Small() Config {
	return Config{
		DBLPNodes: 700, DBLPAttach: 5,
		EpinionsNodes: 600, EpinionsOut: 3,
		RoadRows: 24, RoadCols: 24, Stores: 40,
		Queries: 12, NaiveQueries: 4,
		Ks: []int{5, 10, 20}, KMax: 20,
		HubFrac: 0.1, IndexFrac: 0.1,
		HFracs:        []float64{0.03, 0.1, 0.15},
		MFracs:        []float64{0.03, 0.1, 0.15},
		Strategy:      hub.DegreeFirst,
		Workers:       4,
		RefineWorkers: 4,
		Seed:          1,
	}
}

// Default returns the bench-sized configuration used by cmd/rkbench and the
// root benchmarks: large enough for the paper's effects to show, small
// enough for the full suite to run in minutes.
func Default() Config {
	return Config{
		DBLPNodes: 12000, DBLPAttach: 7,
		EpinionsNodes: 8000, EpinionsOut: 3,
		RoadRows: 100, RoadCols: 100, Stores: 408,
		Queries: 60, NaiveQueries: 6,
		Ks: []int{5, 10, 20, 50, 100}, KMax: 100,
		HubFrac: 0.1, IndexFrac: 0.1,
		HFracs:   []float64{0.03, 0.05, 0.07, 0.1, 0.15},
		MFracs:   []float64{0.03, 0.05, 0.07, 0.1, 0.15},
		Strategy: hub.DegreeFirst,
		Seed:     20170321, // EDBT 2017 started March 21
	}
}
