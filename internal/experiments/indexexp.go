package experiments

import (
	"fmt"
	"time"

	"rkranks/internal/core"
	"rkranks/internal/stats"
	"rkranks/internal/workload"
)

// Table14 reproduces the index-update study: a fixed query stream is
// answered by the indexed engine, with the index reset every batch of
// total/n queries for n = 6, 3, 2, 1. The fewer resets, the more the index
// has evolved by the time later queries arrive, so average time and
// refinement counts fall. Batch sizes scale with the configured workload
// (the paper used 6,000 queries).
func (r *Runner) Table14() (*stats.Table, error) {
	t := stats.NewTable("Table 14: results with index update",
		"dataset", "queries per reset", "query time (s)", "rank refinement")
	k := defaultK(r.cfg.Ks)
	for _, ds := range []string{"dblp", "epinions"} {
		g, err := r.graphByName(ds)
		if err != nil {
			return nil, err
		}
		total := 6 * r.cfg.Queries
		queries := workload.Random(g, total, r.cfg.Seed+19)
		base, _, err := r.buildIndex(g, r.cfg.HubFrac, r.cfg.IndexFrac, r.cfg.Strategy, nil, nil)
		if err != nil {
			return nil, err
		}
		for _, splits := range []int{6, 3, 2, 1} {
			per := total / splits
			eng := core.NewEngine(g, core.Options{})
			var sumTime time.Duration
			var sumRefine int64
			for s := 0; s < splits; s++ {
				eng.SetIndex(base.Clone()) // index reset for this split
				b, err := runBatch(eng, core.Indexed, queries[s*per:(s+1)*per], k)
				if err != nil {
					return nil, err
				}
				sumTime += b.AvgTime * time.Duration(b.Queries)
				sumRefine += int64(b.Stats.Refinements)
			}
			t.Add(ds, per,
				sumTime/time.Duration(total),
				fmt.Sprintf("%.3f", float64(sumRefine)/float64(total)))
		}
	}
	t.Note("paper: both metrics fall monotonically as the per-reset batch grows")
	return t, nil
}

// Table15 reproduces the index-construction cost grid: build time for each
// (h, m) combination of Tables 6-9, on both datasets. The paper reports
// hours on the real graphs; shapes (superlinear growth in both h and m)
// carry over.
func (r *Runner) Table15() (*stats.Table, error) {
	t := stats.NewTable("Table 15: index construction time",
		"h", "m", "dblp build (s)", "epinions build (s)")
	type hm struct{ h, m float64 }
	var grid []hm
	for _, h := range r.cfg.HFracs {
		grid = append(grid, hm{h, r.cfg.IndexFrac})
	}
	for _, m := range r.cfg.MFracs {
		if m != r.cfg.IndexFrac {
			grid = append(grid, hm{r.cfg.HubFrac, m})
		}
	}
	dblp := r.DBLP()
	epi := r.Epinions()
	for _, p := range grid {
		_, dDur, err := r.buildIndex(dblp, p.h, p.m, r.cfg.Strategy, nil, nil)
		if err != nil {
			return nil, err
		}
		_, eDur, err := r.buildIndex(epi, p.h, p.m, r.cfg.Strategy, nil, nil)
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("%.2f", p.h), fmt.Sprintf("%.2f", p.m), dDur, eDur)
	}
	t.Note("paper reports hours on the real 1.3M-node DBLP; construction scales ~linearly in h and in m")
	return t, nil
}
