package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"time"

	"rkranks/internal/cache"
	"rkranks/internal/cluster"
	"rkranks/internal/core"
	"rkranks/internal/graph"
	"rkranks/internal/rank"
	"rkranks/internal/server"
	"rkranks/internal/stats"
	"rkranks/internal/workload"
)

// servingBatchShards fixes the cluster width of the serving_batch sweep:
// wide enough that batch scatter has RPCs to save, narrow enough that
// the Small scale stays fast.
const servingBatchShards = 2

// ServingBatch measures the two layers PR 5 adds on top of the sharded
// coordinator — batch scatter (one RPC per shard per batch instead of
// per query) and the coalescing response cache — against the uncached
// per-query-scatter baseline (the PR-4 stack), sweeping batch size and
// duplicate rate. The shards are REMOTE: real rkserve-style HTTP
// backends behind the wire protocol, so every scatter round trip pays
// genuine HTTP + JSON cost — the cost batch scatter exists to amortize
// (and what a per-query scatter pays once per shard per QUERY). Every
// merged result is asserted byte-identical to the baseline's before it
// counts.
//
// Hit rate, coalesced, and rpcs/query are deterministic for a fixed seed
// (sequential batches, serial per-shard pools), so benchdiff gates them
// machine-independently; the goodput and latency columns carry
// wall-clock noise and are gated laxly.
func (r *Runner) ServingBatch() (*stats.Table, error) {
	t := stats.NewTable("Batch scatter + coalescing response cache vs per-query uncached scatter (Dynamic, remote HTTP shards)",
		"dataset", "batch", "dup (%)", "goodput (q/s)", "baseline (q/s)", "speedup",
		"p99 (ms)", "hit rate (%)", "coalesced", "rpcs/query")
	k := defaultK(r.cfg.Ks)
	g := r.DBLP()
	n := 8 * r.cfg.Queries

	for _, batch := range []int{8, 32} {
		for _, dup := range []float64{0, 0.5} {
			stream := duplicateStream(g, n, dup, r.cfg.Seed+53)

			shards, shutdown, err := remoteShardBackends(g)
			if err != nil {
				return nil, err
			}
			coord, err := cluster.New(shards, cluster.Config{})
			if err != nil {
				shutdown()
				return nil, err
			}
			cached, err := cache.NewBackend(coord, cache.Config{MaxBytes: 8 << 20})
			if err != nil {
				shutdown()
				return nil, err
			}
			baseShards, baseShutdown, err := remoteShardBackends(g)
			if err != nil {
				shutdown()
				return nil, err
			}
			baseline, err := cluster.New(baseShards, cluster.Config{PerQueryScatter: true})
			if err != nil {
				shutdown()
				baseShutdown()
				return nil, err
			}

			baseRes, baseElapsed, _, err := runBatchStream(baseline, stream, batch, k)
			if err == nil {
				var gotRes []*core.Result
				var elapsed time.Duration
				var p99 float64
				gotRes, elapsed, p99, err = runBatchStream(cached, stream, batch, k)
				if err == nil {
					for i := range stream {
						if !sameEntries(gotRes[i].Entries, baseRes[i].Entries) {
							err = fmt.Errorf("serving_batch: cached batch scatter diverged from baseline at query %d", stream[i])
							break
						}
					}
					if err == nil {
						cs := cached.CacheSnapshot().(*cache.Snapshot)
						cl := coord.ClusterSnapshot().(*cluster.Snapshot)
						rpcsPerQuery := 0.0
						if cl.BatchQueries > 0 {
							rpcsPerQuery = float64(cl.BatchRPCs) / float64(cl.BatchQueries)
						}
						goodput := float64(n) / elapsed.Seconds()
						baseGoodput := float64(n) / baseElapsed.Seconds()
						t.Add("dblp", batch, fmt.Sprintf("%.0f", 100*dup),
							fmt.Sprintf("%.0f", goodput),
							fmt.Sprintf("%.0f", baseGoodput),
							fmt.Sprintf("%.2fx", goodput/baseGoodput),
							fmt.Sprintf("%.2f", p99),
							fmt.Sprintf("%.0f%%", 100*cs.HitRate),
							cs.Coalesced, fmt.Sprintf("%.2f", rpcsPerQuery))
					}
				}
			}
			_ = coord.Close()
			_ = baseline.Close()
			shutdown()
			baseShutdown()
			if err != nil {
				return nil, err
			}
		}
	}
	t.Note("%d queries per point over %d remote HTTP shards; duplicates repeat a uniformly random earlier stream position", n, servingBatchShards)
	t.Note("every cached+batched result is asserted byte-identical to the uncached per-query baseline before it counts")
	t.Note("goodput gains compound: the cache elides duplicate engine work (bounding speedup at 1/(1-dup) on one core), batch scatter amortizes per-RPC cost and keeps every shard busy — the pipelining term needs multiple cores to show in wall clock")
	return t, nil
}

// remoteShardBackends boots one masked rkserve-equivalent HTTP server
// per shard over g (index-free Dynamic: every duplicate costs the
// baseline full engine work, so the cache's contribution is measured
// clean of the learning index's own memoization) and dials each as a
// RemoteShard, returning the backends plus a shutdown func.
func remoteShardBackends(g *graph.Graph) ([]cluster.ShardBackend, func(), error) {
	var servers []*httptest.Server
	shutdown := func() {
		for _, ts := range servers {
			ts.Close()
		}
	}
	backends := make([]cluster.ShardBackend, servingBatchShards)
	for i := range backends {
		mask, err := cluster.ShardMask(g, cluster.DegreeBalanced{}, servingBatchShards, i, nil)
		if err != nil {
			shutdown()
			return nil, nil, err
		}
		pool := core.NewPool(g, core.Options{Candidates: mask}, 1)
		srv, err := server.New(server.Config{Pool: pool, Graph: g})
		if err != nil {
			shutdown()
			return nil, nil, err
		}
		ts := httptest.NewServer(srv.Handler())
		servers = append(servers, ts)
		rs, err := cluster.NewRemoteShard(context.Background(), ts.URL, cluster.RemoteExpect{Nodes: g.N()})
		if err != nil {
			shutdown()
			return nil, nil, err
		}
		backends[i] = rs
	}
	return backends, shutdown, nil
}

// sameEntries reports byte-identity of two canonical results.
func sameEntries(a, b []rank.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// duplicateStream builds a query stream where EXACTLY round(dup * n)
// positions repeat a uniformly random earlier position and the rest
// draw fresh queries — the duplicate-rate label is exact, not a
// coin-flip expectation. Repeats landing inside one batch exercise
// coalescing; repeats across batches exercise the cache.
func duplicateStream(g *graph.Graph, n int, dup float64, seed int64) []int32 {
	fresh := workload.Random(g, n, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	repeats := int(dup*float64(n) + 0.5)
	// Choose which positions repeat: a shuffle of 1..n-1, first `repeats`
	// win (position 0 has nothing to repeat).
	isRepeat := make([]bool, n)
	perm := rng.Perm(n - 1)
	for _, p := range perm[:min(repeats, n-1)] {
		isRepeat[p+1] = true
	}
	stream := make([]int32, n)
	next := 0
	for i := range stream {
		if isRepeat[i] {
			stream[i] = stream[rng.Intn(i)]
		} else {
			stream[i] = fresh[next]
			next++
		}
	}
	return stream
}

// runBatchStream issues the stream in fixed-size batches, returning the
// per-query results, total elapsed time, and the p99 per-batch latency
// in milliseconds.
func runBatchStream(b batchBackend, stream []int32, batch, k int) ([]*core.Result, time.Duration, float64, error) {
	results := make([]*core.Result, 0, len(stream))
	var lats []float64
	start := time.Now()
	for lo := 0; lo < len(stream); lo += batch {
		hi := min(lo+batch, len(stream))
		t0 := time.Now()
		rs, err := b.QueryManyContext(context.Background(), core.Dynamic, stream[lo:hi], k)
		if err != nil {
			return nil, 0, 0, err
		}
		lats = append(lats, time.Since(t0).Seconds())
		results = append(results, rs...)
	}
	return results, time.Since(start), 1000 * stats.Percentile(lats, 99), nil
}

// batchBackend is the slice of the backend surface runBatchStream needs.
type batchBackend interface {
	QueryManyContext(ctx context.Context, a core.Algorithm, queries []int32, k int) ([]*core.Result, error)
}
