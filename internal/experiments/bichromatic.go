package experiments

import (
	"rkranks/internal/core"
	"rkranks/internal/gen"
	"rkranks/internal/stats"
	"rkranks/internal/workload"
)

// Figure7 reproduces the bichromatic road-network experiment (Figure 7 a-b):
// reverse k-ranks queries where the query node is a store and the results
// are community (road) nodes, comparing Static, Dynamic, and Dynamic+Index
// over k. The paper's observations: for small k the dynamic machinery's
// overhead can exceed its savings, and on this sparse graph the index is
// much more effective than on the dense social graphs.
func (r *Runner) Figure7() ([]*stats.Table, error) {
	g, stores := r.Road()
	candidates, counted := gen.StoreClasses(g.N(), stores)
	opts := core.Options{Candidates: candidates, Counted: counted}

	queryPool := workload.Class(counted)
	queries := workload.RandomFrom(queryPool, r.cfg.Queries, r.cfg.Seed+23)

	// Hubs for the bichromatic index are candidate-side nodes; rank lists
	// count only store nodes, exactly like query-time refinements.
	ix, _, err := r.buildIndex(g, r.cfg.HubFrac, r.cfg.IndexFrac, r.cfg.Strategy, candidates, counted)
	if err != nil {
		return nil, err
	}

	eng := core.NewEngine(g, opts)
	t := stats.NewTable("Figure 7: bichromatic reverse k-ranks on the road network",
		"k",
		"static time (s)", "dynamic time (s)", "indexed time (s)",
		"static refine", "dynamic refine", "indexed refine")
	ks := r.sortedKs()
	for _, k := range ks {
		if k > len(stores)-1 {
			break // ranks are bounded by the store count
		}
		bs, err := runBatch(eng, core.Static, queries, k)
		if err != nil {
			return nil, err
		}
		bd, err := runBatch(eng, core.Dynamic, queries, k)
		if err != nil {
			return nil, err
		}
		eng.SetIndex(ix.Clone())
		bi, err := runBatch(eng, core.Indexed, queries, k)
		if err != nil {
			return nil, err
		}
		eng.SetIndex(nil)
		t.Add(k, bs.AvgTime, bd.AvgTime, bi.AvgTime, bs.AvgRefine, bd.AvgRefine, bi.AvgRefine)
	}
	t.Note("%d road nodes, %d stores, %d queries per point", g.N(), len(stores), len(queries))
	return []*stats.Table{t}, nil
}
