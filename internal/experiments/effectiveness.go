package experiments

import (
	"fmt"

	"rkranks/internal/stats"
	"rkranks/internal/topk"
)

// Table3 reproduces the reverse top-k result-size study (Table 3): for each
// k, the largest result-set size, the number of query nodes with empty
// results, with small (<= 5) results, and with large (>= 100) results. The
// paper's point — reverse top-k result sizes are wildly unbalanced, with a
// persistent mass of empty results and a growing tail of huge ones — is a
// structural property of power-law proximity graphs and reproduces at any
// scale.
func (r *Runner) Table3() (*stats.Table, error) {
	g := r.DBLP()
	ks := r.sortedKs()
	kmax := ks[len(ks)-1]
	lists := topk.Lists(g, kmax)

	t := stats.NewTable("Table 3: Reverse Top-k Result Set Size (DBLP-like)",
		"k", "largest set size", "# of empty set", "# of small set (<=5)", "# of large set (>=100)")
	for _, k := range ks {
		sizes := topk.ReverseSizes(lists, k)
		st := topk.Sizes(sizes, k, 5, 100)
		t.Add(k, st.Largest, st.Empty, st.Small, st.Large)
	}
	t.Note("%d nodes; paper Table 3 used DBLP with 1,314,050 nodes", g.N())
	return t, nil
}

// Table4 reproduces the top-k agreement-rate study (Table 4): the fraction
// of top-k relationships that are mutual. The paper reports under-50%%
// agreement, falling as k grows.
func (r *Runner) Table4() (*stats.Table, error) {
	g := r.DBLP()
	ks := r.sortedKs()
	kmax := ks[len(ks)-1]
	lists := topk.Lists(g, kmax)

	t := stats.NewTable("Table 4: Agreement Rate of Top-k Queries (DBLP-like)",
		"k", "agreement rate (%)")
	for _, k := range ks {
		rate := topk.AgreementRate(lists, k)
		t.Add(k, fmt.Sprintf("%.2f", 100*rate))
	}
	t.Note("paper: 48.53%% at k=5 falling to 35.65%% at k=100")
	return t, nil
}
