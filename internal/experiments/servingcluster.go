package experiments

import (
	"fmt"
	"time"

	"rkranks/internal/cluster"
	"rkranks/internal/core"
	"rkranks/internal/stats"
	"rkranks/internal/workload"
)

// ServingCluster measures the scatter-gather coordinator (internal/
// cluster) against the same workload a single node serves: per-query
// latency across shard counts, and — the point of the rank-floor merge —
// how many result entries actually cross the shard boundary versus the
// naive full-k gather. Entries-transferred, short-circuits, escalations,
// and the summed refinement counters are deterministic for a fixed seed
// (serial per-shard pools, index-free Dynamic engine), so benchdiff gates
// them machine-independently; the latency column carries wall-clock noise
// and is gated laxly.
func (r *Runner) ServingCluster() (*stats.Table, error) {
	t := stats.NewTable("Serving from a sharded cluster: rank-floor scatter-gather vs naive full-k gather (Dynamic)",
		"dataset", "partitioner", "shards", "mean (ms)",
		"transferred (entries)", "naive gather (entries)", "saved (%)",
		"short-circuited", "escalations", "refinements")
	k := maxK(r.cfg.Ks)
	g := r.DBLP()
	queries := workload.Random(g, r.cfg.Queries, r.cfg.Seed+43)

	for _, shards := range shardSweep(r.cfg.Workers) {
		pruned, err := cluster.NewLocal(g, core.Options{}, cluster.DegreeBalanced{}, shards, 1, nil, cluster.Config{})
		if err != nil {
			return nil, err
		}
		naive, err := cluster.NewLocal(g, core.Options{}, cluster.DegreeBalanced{}, shards, 1, nil, cluster.Config{NaiveGather: true})
		if err != nil {
			return nil, err
		}
		mean, refinements, err := runClusterBatch(pruned, queries, k)
		if err != nil {
			return nil, err
		}
		if _, _, err := runClusterBatch(naive, queries, k); err != nil {
			return nil, err
		}
		ps := pruned.ClusterSnapshot().(*cluster.Snapshot)
		ns := naive.ClusterSnapshot().(*cluster.Snapshot)
		saved := 0.0
		if ns.EntriesTransferred > 0 {
			saved = 100 * (1 - float64(ps.EntriesTransferred)/float64(ns.EntriesTransferred))
		}
		t.Add("dblp", "degree", shards,
			fmt.Sprintf("%.3f", 1000*mean),
			ps.EntriesTransferred, ns.EntriesTransferred,
			fmt.Sprintf("%.0f%%", saved),
			ps.ShortCircuited, ps.Escalations, refinements)
		_ = pruned.Close()
		_ = naive.Close()
	}
	t.Note("%d queries per point, k=%d; every row's merged results are byte-identical to a single node's", len(queries), k)
	t.Note("transferred counts result entries crossing the shard boundary; naive gather always moves shards*k per query")
	return t, nil
}

// runClusterBatch runs the workload one query at a time, returning the
// mean latency in seconds and the refinement count summed over the
// measured queries (the shard-work counter benchdiff gates).
func runClusterBatch(c *cluster.Coordinator, queries []int32, k int) (float64, int64, error) {
	// Warm-up: engine workspaces reach their high-water marks untimed.
	// (The warm-up query also lands in the transfer counters, same on
	// the pruned and naive sides.)
	if _, err := c.Query(core.Dynamic, queries[0], k); err != nil {
		return 0, 0, err
	}
	var refinements int64
	start := time.Now()
	for _, q := range queries {
		res, err := c.Query(core.Dynamic, q, k)
		if err != nil {
			return 0, 0, err
		}
		refinements += int64(res.Stats.Refinements)
	}
	return time.Since(start).Seconds() / float64(len(queries)), refinements, nil
}

// shardSweep returns the shard-count axis: 1 (the single-node baseline
// through the coordinator), then powers of two up to max(4, workers).
func shardSweep(workers int) []int {
	max := workers
	if max < 4 {
		max = 4
	}
	sweep := []int{1}
	for s := 2; s <= max; s *= 2 {
		sweep = append(sweep, s)
	}
	return sweep
}

// maxK returns the largest configured k: the regime where rank-floor
// pruning has the most transfer to save.
func maxK(ks []int) int {
	m := ks[0]
	for _, k := range ks {
		if k > m {
			m = k
		}
	}
	return m
}
