package experiments

import (
	"context"
	"fmt"
	"testing"

	"rkranks/internal/cache"
	"rkranks/internal/cluster"
	"rkranks/internal/core"
	"rkranks/internal/hub"
)

// TestHubLabelShardCacheBatchEquivalence is this PR's acceptance check:
// HubLabel answers — computed from the precomputed 2-hop labeling — are
// byte-identical to single-node Dynamic answers across every serving
// topology: 1/2/4/8 shards, per-query and batch scatter, with and
// without a response cache in front (cached entries are exercised by
// querying everything twice). The labeling is shared by all shards
// through core.Options, exactly as rkcluster wires it.
func TestHubLabelShardCacheBatchEquivalence(t *testing.T) {
	r, err := NewRunner(Small())
	if err != nil {
		t.Fatal(err)
	}
	g := r.DBLP()
	queries := r.queriesFor(g)
	k := defaultK(r.cfg.Ks)

	roots := hub.Order(g, hub.DegreeFirst, g.N(), hub.Options{Seed: r.cfg.Seed + 7})
	labels, err := hub.BuildLabels(g, roots, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: single-node Dynamic, no labeling involved at all.
	ref := core.NewEngine(g, core.Options{})
	want := make([]*core.Result, len(queries))
	for i, q := range queries {
		if want[i], err = ref.Query(core.Dynamic, q, k); err != nil {
			t.Fatal(err)
		}
	}

	ctx := context.Background()
	check := func(cfg string, got []*core.Result) {
		t.Helper()
		for i := range queries {
			if len(got[i].Entries) != len(want[i].Entries) {
				t.Fatalf("%s q=%d: %d vs %d entries", cfg, queries[i], len(got[i].Entries), len(want[i].Entries))
			}
			for j := range want[i].Entries {
				if got[i].Entries[j] != want[i].Entries[j] {
					t.Fatalf("%s q=%d diverged at %d:\n got  %v\n want %v",
						cfg, queries[i], j, got[i].Entries, want[i].Entries)
				}
			}
		}
	}

	for _, shards := range []int{1, 2, 4, 8} {
		coord, err := cluster.NewLocal(g, core.Options{Labels: labels},
			cluster.DegreeBalanced{}, shards, 2, nil, cluster.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for _, cached := range []bool{false, true} {
			var backend interface {
				QueryContext(context.Context, core.Algorithm, int32, int) (*core.Result, error)
				QueryManyContext(context.Context, core.Algorithm, []int32, int) ([]*core.Result, error)
			} = coord
			if cached {
				cb, err := cache.NewBackend(coord, cache.Config{MaxBytes: 1 << 20})
				if err != nil {
					t.Fatal(err)
				}
				backend = cb
			}
			// Two rounds: with the cache on, round two answers from memory
			// and must still be byte-identical.
			for round := 0; round < 2; round++ {
				cfg := fmt.Sprintf("shards=%d cached=%v round=%d perquery", shards, cached, round)
				got := make([]*core.Result, len(queries))
				for i, q := range queries {
					if got[i], err = backend.QueryContext(ctx, core.HubLabel, q, k); err != nil {
						t.Fatalf("%s: %v", cfg, err)
					}
				}
				check(cfg, got)

				cfg = fmt.Sprintf("shards=%d cached=%v round=%d batch", shards, cached, round)
				batch, err := backend.QueryManyContext(ctx, core.HubLabel, queries, k)
				if err != nil {
					t.Fatalf("%s: %v", cfg, err)
				}
				check(cfg, batch)
			}
		}
		if !coord.HubLabeled() {
			t.Errorf("shards=%d: coordinator does not report HubLabeled", shards)
		}
		if got := coord.HubLabelBytes(); got != int64(shards)*labels.Bytes() {
			t.Errorf("shards=%d: HubLabelBytes = %d, want %d per shard", shards, got, labels.Bytes())
		}
		if err := coord.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestHubLabelBenchShape: the hublabel experiment's qualitative claims at
// Small scale — the labeling absorbs most of Dynamic's refinements on the
// skewed-degree dblp family, the prune counter moves, and the footprint
// column is populated.
func TestHubLabelBenchShape(t *testing.T) {
	r, err := NewRunner(Small())
	if err != nil {
		t.Fatal(err)
	}
	tab, err := r.HubLabelBench()
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string][]string{}
	for _, row := range tab.Rows {
		rows[row[0]+"/"+row[1]] = row
	}
	for _, ds := range []string{"dblp", "road"} {
		dyn, hl := rows[ds+"/dynamic"], rows[ds+"/hublabel"]
		if dyn == nil || hl == nil {
			t.Fatalf("missing %s rows in %v", ds, tab.Rows)
		}
		if cellFloat(t, hl[6]) >= cellFloat(t, dyn[6]) {
			t.Errorf("%s: hublabel refined no less than dynamic (%s vs %s)", ds, hl[6], dyn[6])
		}
		if cellFloat(t, hl[7]) <= 0 {
			t.Errorf("%s: label scan pruned nothing", ds)
		}
		if cellFloat(t, hl[3]) <= 0 {
			t.Errorf("%s: label bytes column empty", ds)
		}
	}
}
