package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsRun executes every experiment at the Small scale and
// sanity-checks the emitted tables.
func TestAllExperimentsRun(t *testing.T) {
	r, err := NewRunner(Small())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			tables, err := r.Run(name)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s: no tables", name)
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Errorf("%s: empty table %q", name, tab.Title)
				}
				s := tab.String()
				if !strings.Contains(s, tab.Headers[0]) {
					t.Errorf("%s: render missing header", name)
				}
			}
		})
	}
}

// TestRunUnknown covers the error path.
func TestRunUnknown(t *testing.T) {
	r, err := NewRunner(Small())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run("table99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestConfigValidate covers configuration validation.
func TestConfigValidate(t *testing.T) {
	good := Small()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Small()
	bad.Ks = []int{999}
	if err := bad.Validate(); err == nil {
		t.Error("k > KMax accepted")
	}
	bad = Small()
	bad.DBLPNodes = 0
	if err := bad.Validate(); err == nil {
		t.Error("tiny dataset accepted")
	}
	bad = Small()
	bad.Queries = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero queries accepted")
	}
	bad = Small()
	bad.Ks = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty Ks accepted")
	}
}
