package experiments

import (
	"fmt"
	"runtime"
	"time"

	"rkranks/internal/core"
	"rkranks/internal/stats"
	"rkranks/internal/workload"
)

// Serving goes beyond the paper's single-threaded evaluation: it measures
// the aggregate throughput of pooled Indexed queries against one shared
// concurrency-safe index, sweeping the worker count. Each sweep point gets
// a fresh copy of the same seed index so points are comparable (the shared
// index learns from its own traffic, not a predecessor's), and every
// worker's refinements feed the dictionaries all workers read.
func (r *Runner) Serving() (*stats.Table, error) {
	t := stats.NewTable("Serving: pooled Indexed throughput (shared concurrent index)",
		"dataset", "workers", "queries", "aggregate QPS", "speedup vs 1")
	k := defaultK(r.cfg.Ks)
	sweep := workerSweep(r.cfg.Workers)
	for _, ds := range []string{"dblp", "epinions"} {
		g, err := r.graphByName(ds)
		if err != nil {
			return nil, err
		}
		seed, _, err := r.buildIndex(g, r.cfg.HubFrac, r.cfg.IndexFrac, r.cfg.Strategy, nil, nil)
		if err != nil {
			return nil, err
		}
		// Enough queries that pool dispatch overhead amortizes at every
		// sweep point.
		queries := workload.Random(g, 8*r.cfg.Queries, r.cfg.Seed+23)
		var base float64
		for _, workers := range sweep {
			shared := seed.Clone().Sharded()
			pool, err := core.NewPoolWithIndex(g, core.Options{}, workers, shared)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if _, err := pool.QueryMany(core.Indexed, queries, k); err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			qps := float64(len(queries)) / elapsed.Seconds()
			if workers == 1 {
				base = qps
			}
			t.Add(ds, workers, len(queries),
				fmt.Sprintf("%.0f", qps), fmt.Sprintf("%.2fx", qps/base))
		}
	}
	t.Note("single shared ridx.ShardedIndex per sweep point; every query's refinements are visible to all workers")
	return t, nil
}

// workerSweep returns the worker counts to measure: powers of two up to
// max (<= 0 uses GOMAXPROCS), always ending at max itself.
func workerSweep(max int) []int {
	if max <= 0 {
		max = runtime.GOMAXPROCS(0)
	}
	sweep := []int{1}
	for w := 2; w < max; w *= 2 {
		sweep = append(sweep, w)
	}
	if max > 1 {
		sweep = append(sweep, max)
	}
	return sweep
}
