package experiments

import (
	"fmt"

	"rkranks/internal/core"
	"rkranks/internal/stats"
	"rkranks/internal/workload"
)

// Table11 reproduces the bound analysis of Theorem 2: for every candidate
// node evaluated by the Dynamic-Three engine, which lower-bound component
// (height, count, parent rank) was the maximum. Run on the Epinions-like
// graph over random queries, per the paper; note that count is disabled on
// directed graphs (footnote 1), so the directed run attributes wins among
// height and parent only — we therefore also report the undirected DBLP-like
// attribution where all three compete.
func (r *Runner) Table11() (*stats.Table, error) {
	t := stats.NewTable("Table 11: bound analysis of Theorem 2 (% of candidates won)",
		"dataset", "k", "height wins", "count wins", "parent wins")
	ks := append([]int{1}, r.sortedKs()...)
	for _, ds := range []string{"dblp", "epinions-und"} {
		g, err := r.graphByName(ds)
		if err != nil {
			return nil, err
		}
		queries := r.queriesFor(g)
		eng := core.NewEngine(g, core.Options{Bounds: core.BoundsAll})
		for _, k := range ks {
			b, err := runBatch(eng, core.Dynamic, queries, k)
			if err != nil {
				return nil, err
			}
			total := b.Stats.HeightWins + b.Stats.CountWins + b.Stats.ParentWins
			if total == 0 {
				total = 1
			}
			pct := func(x int64) string { return fmt.Sprintf("%.2f%%", 100*float64(x)/float64(total)) }
			t.Add(ds, k, pct(b.Stats.HeightWins), pct(b.Stats.CountWins), pct(b.Stats.ParentWins))
		}
	}
	t.Note("paper (Epinions): height dominates at k=1 (87.74%%), parent dominates at k=100 (91.82%%), count stays small")
	return t, nil
}

// BoundAblation reproduces Tables 12-13: the Dynamic SDS-tree under the
// four bound strategies (Dynamic-Parent / -Count / -Height / -Three),
// evaluated on the 1000 highest-degree (Table 12) or lowest-degree
// (Table 13) query nodes of the Epinions-like graph.
func (r *Runner) BoundAblation(maxDegree bool) (*stats.Table, error) {
	g := r.EpinionsUndirected()
	var queries []int32
	title := "Table 13: bound strategies on min-degree queries (Epinions-like, undirected)"
	if maxDegree {
		queries = workload.MaxDegree(g, r.cfg.Queries)
		title = "Table 12: bound strategies on max-degree queries (Epinions-like, undirected)"
	} else {
		queries = workload.MinDegree(g, r.cfg.Queries)
	}
	ks := append([]int{1}, r.sortedKs()...)
	t := stats.NewTable(title, append([]string{"strategy", "metric"}, kHeaders(ks)...)...)
	for _, spec := range []string{"parent", "count", "height", "three"} {
		bounds, err := core.ParseBounds(spec)
		if err != nil {
			return nil, err
		}
		eng := core.NewEngine(g, core.Options{Bounds: bounds})
		times := make([]interface{}, 0, len(ks)+2)
		refs := make([]interface{}, 0, len(ks)+2)
		times = append(times, "dynamic-"+spec, "query time (s)")
		refs = append(refs, "dynamic-"+spec, "rank refinement")
		for _, k := range ks {
			b, err := runBatch(eng, core.Dynamic, queries, k)
			if err != nil {
				return nil, err
			}
			times = append(times, stats.Seconds(b.AvgTime))
			refs = append(refs, fmt.Sprintf("%.3f", b.AvgRefine))
		}
		t.Add(times...)
		t.Add(refs...)
	}
	t.Note("run on the symmetrized Epinions-like graph so the Lemma-4 count bound is applicable")
	t.Note("paper: height helps most on max-degree queries at small k; differences shrink on min-degree queries")
	return t, nil
}

func kHeaders(ks []int) []string {
	hs := make([]string, len(ks))
	for i, k := range ks {
		hs[i] = fmt.Sprintf("k=%d", k)
	}
	return hs
}
