package experiments

import (
	"testing"

	"rkranks/internal/cluster"
	"rkranks/internal/core"
)

// TestFigure6QuerySetClusterEquivalence is the PR's acceptance check: a
// 4-shard in-process cluster answers the FULL figure6 query set — both
// datasets, every configured k, Static/Dynamic/Indexed — with results
// byte-identical to a single-node Pool.Query.
func TestFigure6QuerySetClusterEquivalence(t *testing.T) {
	r, err := NewRunner(Small())
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range []string{"dblp", "epinions"} {
		g, err := r.graphByName(ds)
		if err != nil {
			t.Fatal(err)
		}
		queries := r.queriesFor(g)

		seed, _, err := r.buildIndex(g, r.cfg.HubFrac, r.cfg.IndexFrac, r.cfg.Strategy, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		single, err := core.NewPoolWithIndex(g, core.Options{}, 2, seed.Clone().Sharded())
		if err != nil {
			t.Fatal(err)
		}
		coord, err := cluster.NewLocal(g, core.Options{}, cluster.DegreeBalanced{}, 4, 1,
			seed.Clone().Sharded(), cluster.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range []core.Algorithm{core.Static, core.Dynamic, core.Indexed} {
			for _, k := range r.sortedKs() {
				for _, q := range queries {
					want, err := single.Query(algo, q, k)
					if err != nil {
						t.Fatal(err)
					}
					got, err := coord.Query(algo, q, k)
					if err != nil {
						t.Fatalf("%s %v q=%d k=%d: %v", ds, algo, q, k, err)
					}
					if len(got.Entries) != len(want.Entries) {
						t.Fatalf("%s %v q=%d k=%d: %d vs %d entries", ds, algo, q, k, len(got.Entries), len(want.Entries))
					}
					for i := range want.Entries {
						if got.Entries[i] != want.Entries[i] {
							t.Fatalf("%s %v q=%d k=%d diverged at %d:\n cluster %v\n single  %v",
								ds, algo, q, k, i, got.Entries, want.Entries)
						}
					}
				}
			}
		}
		if err := coord.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
