package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"rkranks/internal/core"
	"rkranks/internal/graph"
	"rkranks/internal/live"
	"rkranks/internal/stats"
	"rkranks/internal/workload"
)

// Mutation measures the live-mutation pipeline (internal/live): the cost
// of landing mutation batches through the store's two write paths —
// in-place weight patches under the epoch barrier vs full
// rebuild-and-swap for topology changes — and what each does to query
// latency served concurrently with the churn. The "none" row is the
// no-churn control: the same query workload on an identical store that
// never mutates, so the query columns isolate the serving cost of churn
// from the serving cost of the store itself.
func (r *Runner) Mutation() (*stats.Table, error) {
	t := stats.NewTable("Live mutations: weight patches vs rebuild swaps under query load",
		"dataset", "path", "batches", "apply p50 (ms)", "apply p99 (ms)",
		"query p50 (ms)", "query p95 (ms)")
	ctx := context.Background()
	k := defaultK(r.cfg.Ks)
	rng := rand.New(rand.NewSource(r.cfg.Seed + 41))

	base := r.DBLP()
	queries := workload.Random(base, r.cfg.Queries, r.cfg.Seed+43)

	// Existing pairs feed the weight patches; the edge set lets the
	// rebuild path draw fresh (absent) pairs for inserts.
	var pairs [][2]int32
	edgeSet := map[[2]int32]bool{}
	norm := func(u, v int32) [2]int32 {
		if u > v {
			u, v = v, u
		}
		return [2]int32{u, v}
	}
	base.Edges(func(e graph.Edge) bool {
		edgeSet[norm(e.From, e.To)] = true
		pairs = append(pairs, [2]int32{e.From, e.To})
		return true
	})
	freshPair := func() (int32, int32) {
		for {
			u, v := int32(rng.Intn(base.N())), int32(rng.Intn(base.N()))
			if u == v || edgeSet[norm(u, v)] {
				continue
			}
			edgeSet[norm(u, v)] = true
			return u, v
		}
	}

	patchBatches := r.cfg.Queries
	rebuildBatches := r.cfg.Queries / 4
	if rebuildBatches < 3 {
		rebuildBatches = 3
	}
	const opsPerPatch = 8

	var inserted [][2]int32
	plans := []struct {
		name    string
		batches int
		make    func(i int) []graph.Mutation // nil: no-churn control
	}{
		{"none", patchBatches, nil},
		{"weight-patch", patchBatches, func(int) []graph.Mutation {
			ms := make([]graph.Mutation, 0, opsPerPatch)
			for j := 0; j < opsPerPatch; j++ {
				p := pairs[rng.Intn(len(pairs))]
				ms = append(ms, graph.SetWeight(p[0], p[1], 0.25+rng.Float64()*4))
			}
			return ms
		}},
		{"rebuild", rebuildBatches, func(i int) []graph.Mutation {
			// Alternate inserting a fresh pair and deleting the last one,
			// so the graph never drifts far from the baseline topology.
			if i%2 == 1 && len(inserted) > 0 {
				p := inserted[len(inserted)-1]
				inserted = inserted[:len(inserted)-1]
				delete(edgeSet, norm(p[0], p[1]))
				return []graph.Mutation{graph.DeleteEdge(p[0], p[1])}
			}
			u, v := freshPair()
			inserted = append(inserted, [2]int32{u, v})
			return []graph.Mutation{graph.InsertEdge(u, v, 0.5+rng.Float64()*2)}
		}},
	}

	for _, pl := range plans {
		// Each path gets a private store over a byte-identical copy:
		// weight patches rewrite the CSR in place and must not touch the
		// runner's cached graph or a sibling row's store.
		s, err := live.NewStore(graph.NewEdgeStore(base).Build(), live.Config{PoolSize: 1})
		if err != nil {
			return nil, err
		}
		// Untimed warm-up pass: bring every engine workspace to its
		// high-water mark before the clocks start.
		for _, q := range queries {
			if _, err := s.QueryContext(ctx, core.Dynamic, q, k); err != nil {
				return nil, err
			}
		}
		var applyDurs, queryDurs []float64
		qi := 0
		for i := 0; i < pl.batches; i++ {
			if pl.make != nil {
				ms := pl.make(i)
				start := time.Now()
				if _, err := s.Mutate(ctx, ms); err != nil {
					return nil, err
				}
				applyDurs = append(applyDurs, time.Since(start).Seconds())
			}
			// Queries interleave with the batches, so they always hit the
			// just-published state (cold dynamic index, fresh epoch).
			for j := 0; j < 4; j++ {
				q := queries[qi%len(queries)]
				qi++
				start := time.Now()
				if _, err := s.QueryContext(ctx, core.Dynamic, q, k); err != nil {
					return nil, err
				}
				queryDurs = append(queryDurs, time.Since(start).Seconds())
			}
		}
		wantGen := uint64(1)
		if pl.make != nil {
			wantGen += uint64(pl.batches)
		}
		if got := s.Generation(); got != wantGen {
			return nil, fmt.Errorf("experiments: %s path ended at generation %d, want %d", pl.name, got, wantGen)
		}
		applyP50, applyP99 := "0.0000", "0.0000"
		if len(applyDurs) > 0 {
			applyP50 = fmt.Sprintf("%.4f", 1000*stats.Percentile(applyDurs, 50))
			applyP99 = fmt.Sprintf("%.4f", 1000*stats.Percentile(applyDurs, 99))
		}
		t.Add("dblp", pl.name, pl.batches, applyP50, applyP99,
			fmt.Sprintf("%.4f", 1000*stats.Percentile(queryDurs, 50)),
			fmt.Sprintf("%.4f", 1000*stats.Percentile(queryDurs, 95)))
	}
	t.Note("k=%d; weight batches carry %d SetWeight ops, rebuild batches one insert/delete toggle; 4 Dynamic queries after every batch, each against the freshly published generation", k, opsPerPatch)
	return t, nil
}
