package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// These tests assert the paper's qualitative claims — the shapes EXPERIMENTS.md
// records — hold at the Small scale, so a regression that flips an ordering
// (e.g. dynamic refining more than static) fails CI rather than silently
// producing a wrong table.

func smallRunner(t *testing.T) *Runner {
	t.Helper()
	r, err := NewRunner(Small())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func cellFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(s), "%"), 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}

// TestFigure6Shape: static >= dynamic >= indexed refinements at every k,
// and refinements grow with k for every engine.
func TestFigure6Shape(t *testing.T) {
	r := smallRunner(t)
	tables, err := r.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range tables {
		var prev [3]float64
		for i, row := range tab.Rows {
			static := cellFloat(t, row[4])
			dynamic := cellFloat(t, row[5])
			indexed := cellFloat(t, row[6])
			if dynamic > static {
				t.Errorf("%s row %s: dynamic refines more than static (%.1f > %.1f)", tab.Title, row[0], dynamic, static)
			}
			if indexed > dynamic {
				t.Errorf("%s row %s: indexed refines more than dynamic (%.1f > %.1f)", tab.Title, row[0], indexed, dynamic)
			}
			if i > 0 {
				if static < prev[0] || dynamic < prev[1] {
					t.Errorf("%s row %s: refinements shrank as k grew", tab.Title, row[0])
				}
			}
			prev = [3]float64{static, dynamic, indexed}
		}
	}
}

// TestNaiveGapShape: the naive baseline refines orders of magnitude more
// than the framework (the paper's 701s-vs-seconds claim, in refinement
// counts).
func TestNaiveGapShape(t *testing.T) {
	r := smallRunner(t)
	tab, err := r.NaiveGap()
	if err != nil {
		t.Fatal(err)
	}
	var naive, static, dynamic float64
	for _, row := range tab.Rows {
		v := cellFloat(t, row[2])
		switch row[0] {
		case "naive":
			naive = v
		case "static":
			static = v
		case "dynamic":
			dynamic = v
		}
	}
	if naive < 10*static {
		t.Errorf("naive (%.0f) not clearly above static (%.0f)", naive, static)
	}
	if static < dynamic {
		t.Errorf("static (%.1f) below dynamic (%.1f)", static, dynamic)
	}
}

// TestHubSweepShape: refinements fall (weakly) as h grows (Tables 6-7).
func TestHubSweepShape(t *testing.T) {
	r := smallRunner(t)
	for _, ds := range []string{"dblp", "epinions"} {
		tab, err := r.HubSweep(ds)
		if err != nil {
			t.Fatal(err)
		}
		var prev float64 = 1e18
		for _, row := range tab.Rows {
			ref := cellFloat(t, row[3])
			if ref > prev+1e-9 {
				t.Errorf("%s: refinements rose from %.2f to %.2f as h grew", ds, prev, ref)
			}
			prev = ref
		}
	}
}

// TestTable11Shape: win percentages sum to ~100 per row, and the parent
// share grows with k (the paper's headline Table-11 trend).
func TestTable11Shape(t *testing.T) {
	r := smallRunner(t)
	tab, err := r.Table11()
	if err != nil {
		t.Fatal(err)
	}
	lastParent := map[string]float64{}
	for _, row := range tab.Rows {
		sum := cellFloat(t, row[2]) + cellFloat(t, row[3]) + cellFloat(t, row[4])
		if sum < 99.5 || sum > 100.5 {
			t.Errorf("row %v: wins sum to %.2f", row, sum)
		}
		ds := row[0]
		parent := cellFloat(t, row[4])
		if prev, ok := lastParent[ds]; ok && parent < prev-25 {
			t.Errorf("%s: parent share collapsed from %.1f to %.1f as k grew", ds, prev, parent)
		}
		lastParent[ds] = parent
	}
}

// TestTable14Shape: refinements fall monotonically as resets get rarer.
func TestTable14Shape(t *testing.T) {
	r := smallRunner(t)
	tab, err := r.Table14()
	if err != nil {
		t.Fatal(err)
	}
	prev := map[string]float64{}
	for _, row := range tab.Rows {
		ds := row[0]
		ref := cellFloat(t, row[3])
		if p, ok := prev[ds]; ok && ref > p+1e-9 {
			t.Errorf("%s: refinements rose from %.2f to %.2f with fewer resets", ds, p, ref)
		}
		prev[ds] = ref
	}
}

// TestBoundAblationShape: dynamic-three never refines more than
// dynamic-parent at the same k (extra bounds only prune more).
func TestBoundAblationShape(t *testing.T) {
	r := smallRunner(t)
	for _, maxDeg := range []bool{true, false} {
		tab, err := r.BoundAblation(maxDeg)
		if err != nil {
			t.Fatal(err)
		}
		refs := map[string][]float64{}
		for _, row := range tab.Rows {
			if row[1] != "rank refinement" {
				continue
			}
			for _, c := range row[2:] {
				refs[row[0]] = append(refs[row[0]], cellFloat(t, c))
			}
		}
		parent, three := refs["dynamic-parent"], refs["dynamic-three"]
		if len(parent) == 0 || len(parent) != len(three) {
			t.Fatalf("missing rows: %v", refs)
		}
		for i := range parent {
			if three[i] > parent[i]+1e-9 {
				t.Errorf("maxDeg=%v k-index %d: three (%.2f) refines more than parent (%.2f)",
					maxDeg, i, three[i], parent[i])
			}
		}
	}
}

// TestFigure5Shape: the case study returns one row per competing store,
// each with a nonempty fixed-size reverse k-ranks answer.
func TestFigure5Shape(t *testing.T) {
	r := smallRunner(t)
	tab, err := r.CaseStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("want 2 store rows, got %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[3] == "[]" || row[4] == "[]" {
			t.Errorf("store %s has an empty reverse k-ranks answer: %v", row[0], row)
		}
		if strings.Count(row[4], " ") != 2 {
			t.Errorf("store %s reverse 3-ranks is not size 3: %q", row[0], row[4])
		}
	}
}

// TestExperimentsDeterminism: the same config produces identical tables
// for timing-free columns (here: Table 3, which has no timing at all).
func TestExperimentsDeterminism(t *testing.T) {
	a, err := smallRunner(t).Table3()
	if err != nil {
		t.Fatal(err)
	}
	b, err := smallRunner(t).Table3()
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("Table 3 not deterministic:\n%s\nvs\n%s", a, b)
	}
}

// TestLatencyShape: the latency sweep covers both datasets, starts at the
// serial engine (workers=0, speedup 1.00x), and every cell parses. No
// ordering is asserted between sweep points — wall-clock speedup depends
// on the core count of the host — only that the experiment produces a
// well-formed sweep.
func TestLatencyShape(t *testing.T) {
	cfg := Small()
	cfg.Queries = 4
	cfg.RefineWorkers = 2
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := r.Latency()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, row := range tab.Rows {
		seen[row[0]]++
		if row[1] == "0" && !strings.HasPrefix(row[5], "1.00x") {
			t.Errorf("serial row has speedup %q, want 1.00x", row[5])
		}
		for _, cell := range row[2:5] {
			if cellFloat(t, cell) < 0 {
				t.Errorf("negative latency cell %q in row %v", cell, row)
			}
		}
		if !strings.HasSuffix(row[5], "x") {
			t.Errorf("speedup cell %q not in Nx form", row[5])
		}
	}
	if seen["dblp"] < 3 || seen["road"] < 3 {
		t.Errorf("expected >= 3 sweep points per dataset, got %v", seen)
	}
}

// TestServingHTTPShape: the HTTP load sweep produces one row per offered
// point with ascending offered load, successful requests at every point,
// and coherent percentiles. No throughput ordering is asserted — achieved
// qps depends on the host — only well-formedness of the sweep.
func TestServingHTTPShape(t *testing.T) {
	cfg := Small()
	cfg.Queries = 6
	cfg.Workers = 2
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := r.ServingHTTP()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("want 3 offered-load rows, got %d", len(tab.Rows))
	}
	prevOffered := -1.0
	for _, row := range tab.Rows {
		offered := cellFloat(t, row[1])
		if offered <= prevOffered {
			t.Errorf("offered load not ascending: %v", tab.Rows)
		}
		prevOffered = offered
		if ok := cellFloat(t, row[3]); ok <= 0 {
			t.Errorf("row %v: no successful requests", row)
		}
		if p50, p99 := cellFloat(t, row[6]), cellFloat(t, row[7]); p99+1e-9 < p50 {
			t.Errorf("row %v: p99 %.2f below p50 %.2f", row, p99, p50)
		}
	}
}

// TestServingBatchShape: the batch+cache sweep produces well-formed rows
// whose deterministic columns behave — zero hits without duplicates, a
// substantial hit rate at 50% duplicates, and fewer batch RPCs per query
// than the shard count (the whole point of batch scatter). Wall-clock
// columns (goodput, speedup, p99) are only checked to parse: their
// magnitudes depend on the host.
func TestServingBatchShape(t *testing.T) {
	cfg := Small()
	cfg.Queries = 6 // 48-query streams keep the sweep fast under -race
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := r.ServingBatch()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (2 batch sizes x 2 duplicate rates)", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		dup := cellFloat(t, row[2])
		hit := cellFloat(t, row[7])
		rpcs := cellFloat(t, row[9])
		speedup := cellFloat(t, strings.TrimSuffix(row[5], "x"))
		if cellFloat(t, row[3]) <= 0 || cellFloat(t, row[4]) <= 0 || speedup <= 0 {
			t.Errorf("row %v: non-positive wall-clock cells", row)
		}
		if dup == 0 && hit != 0 {
			t.Errorf("row %v: hits without duplicates", row)
		}
		if dup == 50 && hit < 20 {
			t.Errorf("row %v: hit rate %v%% too low for 50%% duplicates", row, hit)
		}
		if rpcs >= 2 {
			t.Errorf("row %v: %v RPCs per query — batch scatter saved nothing over one-per-shard-per-query", row, rpcs)
		}
	}
}
