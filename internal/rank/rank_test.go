package rank

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rkranks/internal/gen"
	"rkranks/internal/graph"
	"rkranks/internal/sssp"
	tg "rkranks/internal/testgraphs"
)

func TestOfMatchesToyTable(t *testing.T) {
	g := tg.Toy()
	s := sssp.New(g)
	for src := range tg.ToyRankMatrix {
		for dst, want := range tg.ToyRankMatrix[src] {
			if got := Of(s, int32(src), int32(dst)); got != want {
				t.Errorf("Rank(%s,%s) = %d, want %d", tg.ToyNames[src], tg.ToyNames[dst], got, want)
			}
		}
	}
}

func TestOfSelfIsZero(t *testing.T) {
	g := tg.Path(3)
	s := sssp.New(g)
	if r := Of(s, 1, 1); r != 0 {
		t.Errorf("Rank(v,v) = %d", r)
	}
}

func TestOfUnreachable(t *testing.T) {
	b := graph.NewBuilder(false)
	b.EnsureNodes(4)
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(2, 3, 1)
	g := b.Finalize()
	s := sssp.New(g)
	if r := Of(s, 0, 3); r != Unreachable {
		t.Errorf("cross-component rank = %d", r)
	}
}

func TestOfDirectedAsymmetry(t *testing.T) {
	g := tg.Cycle(5)
	s := sssp.New(g)
	// From 0, node 1 is nearest (rank 1); from 1, node 0 is farthest.
	if r := Of(s, 0, 1); r != 1 {
		t.Errorf("Rank(0,1) = %d", r)
	}
	if r := Of(s, 1, 0); r != 4 {
		t.Errorf("Rank(1,0) = %d", r)
	}
}

func TestTiesShareRank(t *testing.T) {
	g := tg.Star([]float64{1, 1, 1, 5})
	s := sssp.New(g)
	for _, spoke := range []int32{1, 2, 3} {
		if r := Of(s, 0, spoke); r != 1 {
			t.Errorf("Rank(0,%d) = %d, want 1 (tie)", spoke, r)
		}
	}
	if r := Of(s, 0, 4); r != 4 {
		t.Errorf("Rank(0,4) = %d, want 4", r)
	}
}

// TestMatrixAgreesWithOf: the batch matrix and per-pair computation must be
// identical on arbitrary graphs (including tie-heavy integer weights).
func TestMatrixAgreesWithOf(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(16)
		b := graph.NewBuilder(rng.Intn(2) == 0)
		b.EnsureNodes(n)
		for i := 0; i < 3*n; i++ {
			// Integer weights force plenty of ties.
			b.MustAddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), float64(1+rng.Intn(3)))
		}
		g := b.Finalize()
		m := Matrix(g)
		s := sssp.New(g)
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if m[src][dst] != Of(s, int32(src), int32(dst)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestOfBoundedExactWhenUnderBound(t *testing.T) {
	g := tg.Toy()
	s := sssp.New(g)
	for src := range tg.ToyRankMatrix {
		for dst, want := range tg.ToyRankMatrix[src] {
			if src == dst {
				continue
			}
			r, exact := OfBounded(s, int32(src), int32(dst), 100, math.Inf(1))
			if !exact || r != want {
				t.Errorf("OfBounded(%d,%d) = %d/%v, want %d/true", src, dst, r, exact, want)
			}
		}
	}
}

func TestOfBoundedAbortIsLowerBound(t *testing.T) {
	g := gen.GNM(50, 200, false, 4)
	s := sssp.New(g)
	for src := int32(0); src < 50; src += 5 {
		for dst := int32(1); dst < 50; dst += 7 {
			if src == dst {
				continue
			}
			truth := Of(s, src, dst)
			for _, maxRank := range []int32{1, 3, 10} {
				r, exact := OfBounded(s, src, dst, maxRank, math.Inf(1))
				if exact {
					if r != truth {
						t.Fatalf("exact mismatch: %d vs %d", r, truth)
					}
					if truth > maxRank+1 {
						t.Fatalf("claimed exact %d beyond abort bound %d", truth, maxRank)
					}
				} else if truth != Unreachable {
					if r > truth {
						t.Fatalf("abort bound %d exceeds truth %d", r, truth)
					}
					if truth <= maxRank {
						t.Fatalf("aborted although truth %d <= maxRank %d", truth, maxRank)
					}
				}
			}
		}
	}
}

func TestOfBoundedSelf(t *testing.T) {
	g := tg.Path(3)
	s := sssp.New(g)
	if r, exact := OfBounded(s, 1, 1, 5, math.Inf(1)); r != 0 || !exact {
		t.Errorf("OfBounded self = %d/%v", r, exact)
	}
}

func TestBruteForceReverseProperties(t *testing.T) {
	g := gen.GNM(40, 120, true, 8)
	s := sssp.New(g)
	for q := int32(0); q < 40; q += 5 {
		res := BruteForceReverse(g, q, 7)
		if len(res) > 7 {
			t.Fatalf("size %d", len(res))
		}
		for i, e := range res {
			if e.Node == q {
				t.Error("query node in its own result")
			}
			if Of(s, e.Node, q) != e.Rank {
				t.Errorf("oracle rank lies: %v", e)
			}
			if i > 0 && (res[i-1].Rank > e.Rank || (res[i-1].Rank == e.Rank && res[i-1].Node > e.Node)) {
				t.Error("oracle order broken")
			}
		}
	}
}

func TestSortEntries(t *testing.T) {
	es := []Entry{{Node: 5, Rank: 2}, {Node: 1, Rank: 2}, {Node: 9, Rank: 1}}
	SortEntries(es)
	want := []Entry{{Node: 9, Rank: 1}, {Node: 1, Rank: 2}, {Node: 5, Rank: 2}}
	for i := range want {
		if es[i] != want[i] {
			t.Fatalf("got %v", es)
		}
	}
}

func TestMatrixUnreachableAndDiagonal(t *testing.T) {
	b := graph.NewBuilder(true)
	b.EnsureNodes(3)
	b.MustAddEdge(0, 1, 1)
	g := b.Finalize()
	m := Matrix(g)
	if m[0][0] != 0 || m[1][1] != 0 {
		t.Error("diagonal not zero")
	}
	if m[1][0] != Unreachable {
		t.Errorf("m[1][0] = %d, want Unreachable", m[1][0])
	}
	if m[0][2] != Unreachable || m[2][0] != Unreachable {
		t.Error("isolated node reachable")
	}
	if m[0][1] != 1 {
		t.Errorf("m[0][1] = %d", m[0][1])
	}
}
