// Package rank computes graph ranks per Definition 1 of the paper:
// Rank(s, t) = 1 + |{p : d(s, p) < d(s, t)}| — the position of t in s's
// list of nodes ordered by shortest-path distance, with equidistant nodes
// sharing a rank.
//
// The functions here are exact and unbounded; they serve as the reference
// oracle for the optimized engines in internal/core and as the substrate
// for the effectiveness analytics of Section 6.2.
package rank

import (
	"math"
	"slices"
	"sort"

	"rkranks/internal/graph"
	"rkranks/internal/sssp"
)

// Unreachable is the rank reported when no path exists.
const Unreachable = int32(math.MaxInt32)

// Of computes Rank(src, dst) exactly by running Dijkstra from src until dst
// settles. It returns Unreachable when dst cannot be reached. Rank(s, s)
// is 0 by convention (a node does not rank itself).
func Of(s *sssp.Search, src, dst int32) int32 {
	if src == dst {
		return 0
	}
	s.Reset(src)
	strictBelow := 0
	settledOthers := 0
	level := math.Inf(-1)
	for {
		v, d, ok := s.Next()
		if !ok {
			return Unreachable
		}
		if v == src {
			continue
		}
		if d > level {
			strictBelow = settledOthers
			level = d
		}
		if v == dst {
			return int32(strictBelow + 1)
		}
		settledOthers++
	}
}

// OfBounded computes Rank(src, dst) like Of but aborts as soon as the rank
// provably exceeds maxRank, returning (bound, false) where bound is a
// certified lower bound. When maxDist is finite it also bounds queue pushes
// (callers that know d(src, dst) up front, e.g. from an SDS-tree pop, pass
// it to shrink the frontier).
func OfBounded(s *sssp.Search, src, dst int32, maxRank int32, maxDist float64) (r int32, exact bool) {
	if src == dst {
		return 0, true
	}
	s.Reset(src)
	strictBelow := int32(0)
	settledOthers := int32(0)
	level := math.Inf(-1)
	for {
		v, d, ok := s.Pop()
		if !ok {
			return Unreachable, false
		}
		if v == src {
			s.ExpandBounded(v, d, maxDist)
			continue
		}
		if d > level {
			strictBelow = settledOthers
			level = d
		}
		if v == dst {
			return strictBelow + 1, true
		}
		settledOthers++
		if strictBelow >= maxRank {
			return strictBelow + 1, false
		}
		s.ExpandBounded(v, d, maxDist)
	}
}

// OfBoundedIn is OfBounded restricted to a counted node class (Definition
// 3): only nodes with counted[v] == true contribute to the rank. A nil
// class counts every node, making it identical to OfBounded. dst should
// belong to the counted class (its own settle always terminates the
// search).
func OfBoundedIn(s *sssp.Search, src, dst int32, maxRank int32, maxDist float64, counted []bool) (r int32, exact bool) {
	if counted == nil {
		return OfBounded(s, src, dst, maxRank, maxDist)
	}
	if src == dst {
		return 0, true
	}
	s.Reset(src)
	strictBelow := int32(0)
	settledCounted := int32(0)
	level := math.Inf(-1)
	for {
		v, d, ok := s.Pop()
		if !ok {
			return Unreachable, false
		}
		if v == src {
			s.ExpandBounded(v, d, maxDist)
			continue
		}
		if counted[v] || v == dst {
			if d > level {
				strictBelow = settledCounted
				level = d
			}
			if v == dst {
				return strictBelow + 1, true
			}
			settledCounted++
			if strictBelow >= maxRank {
				return strictBelow + 1, false
			}
		}
		s.ExpandBounded(v, d, maxDist)
	}
}

// Entry pairs a node with a rank value.
type Entry struct {
	Node int32
	Rank int32
}

// Matrix computes the full |V|×|V| rank matrix: m[s][t] = Rank(s, t), with
// 0 on the diagonal and Unreachable where no path exists. Intended for
// small graphs (tests and analytics); cost is O(|V| · SSSP).
func Matrix(g *graph.Graph) [][]int32 {
	n := g.N()
	m := make([][]int32, n)
	s := sssp.New(g)
	dist := make([]float64, n)
	order := make([]int32, 0, n)
	for src := 0; src < n; src++ {
		row := make([]int32, n)
		sssp.AllDistances(s, int32(src), dist)
		order = order[:0]
		for v := 0; v < n; v++ {
			if v != src && !math.IsInf(dist[v], 1) {
				order = append(order, int32(v))
			} else if v != src {
				row[v] = Unreachable
			}
		}
		sort.Slice(order, func(i, j int) bool {
			di, dj := dist[order[i]], dist[order[j]]
			if di != dj {
				return di < dj
			}
			return order[i] < order[j]
		})
		strictBelow := 0
		level := math.Inf(-1)
		for i, v := range order {
			if dist[v] > level {
				strictBelow = i
				level = dist[v]
			}
			row[v] = int32(strictBelow + 1)
		}
		m[src] = row
	}
	return m
}

// BruteForceReverse computes the exact reverse k-ranks result for q by
// evaluating Rank(p, q) for every node p. It is the correctness oracle the
// optimized engines are tested against. Results are the k reachable nodes
// with the smallest ranks, ordered by (rank, node id); fewer than k entries
// are returned when fewer than k nodes can reach q.
func BruteForceReverse(g *graph.Graph, q int32, k int) []Entry {
	s := sssp.New(g)
	all := make([]Entry, 0, g.N())
	for p := 0; p < g.N(); p++ {
		if int32(p) == q {
			continue
		}
		r := Of(s, int32(p), q)
		if r == Unreachable {
			continue
		}
		all = append(all, Entry{Node: int32(p), Rank: r})
	}
	SortEntries(all)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// SortEntries orders entries by (rank, node id), the canonical result order
// used across all engines. slices.SortFunc rather than sort.Slice: this
// runs once per query on the hot result path, and the non-reflect sort is
// allocation-free.
func SortEntries(es []Entry) {
	slices.SortFunc(es, func(a, b Entry) int {
		if a.Rank != b.Rank {
			return int(a.Rank - b.Rank)
		}
		return int(a.Node - b.Node)
	})
}
