// Package stats provides the small aggregation and table-rendering helpers
// the experiment harness uses to print paper-style result tables.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Mean returns the arithmetic mean of xs (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median of xs (NaN for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) using nearest-rank.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(math.Ceil(p/100*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Seconds formats a duration as fractional seconds like the paper's tables.
func Seconds(d time.Duration) string {
	return fmt.Sprintf("%.6f", d.Seconds())
}

// Table is a simple aligned text table. The json tags define the schema
// of rkbench's BENCH_<experiment>.json artifacts — machine-readable
// records of the perf trajectory — so they are part of a frozen format:
// add fields if needed, never rename these keys.
type Table struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes"`
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; cells are stringified with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case time.Duration:
			row[i] = Seconds(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote rendered under the table.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v != 0 && math.Abs(v) < 0.001:
		return fmt.Sprintf("%.3g", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}
