package stats

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Errorf("Mean = %g", m)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) not NaN")
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{5, 1, 3}); m != 3 {
		t.Errorf("odd Median = %g", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("even Median = %g", m)
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("Median(nil) not NaN")
	}
	// Median must not mutate its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 {
		t.Error("Median sorted its input")
	}
}

func TestStddev(t *testing.T) {
	if s := Stddev([]float64{2, 2, 2}); s != 0 {
		t.Errorf("constant Stddev = %g", s)
	}
	if s := Stddev([]float64{1, 3}); s != 1 {
		t.Errorf("Stddev = %g, want 1", s)
	}
	if !math.IsNaN(Stddev(nil)) {
		t.Error("Stddev(nil) not NaN")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := map[float64]float64{0: 10, 20: 10, 50: 30, 100: 50}
	for p, want := range cases {
		if got := Percentile(xs, p); got != want {
			t.Errorf("P%g = %g, want %g", p, got, want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile(nil) not NaN")
	}
}

func TestSeconds(t *testing.T) {
	if s := Seconds(1500 * time.Millisecond); s != "1.500000" {
		t.Errorf("Seconds = %q", s)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Demo", "name", "value")
	tab.Add("alpha", 3.14159)
	tab.Add("beta", 42)
	tab.Add("gamma", 2*time.Second)
	tab.Note("a note with %d placeholder", 1)
	out := tab.String()
	for _, want := range []string{"Demo", "name", "alpha", "3.1416", "42", "2.000000", "note: a note with 1 placeholder"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	// Columns align: header and rule share width.
	lines := strings.Split(out, "\n")
	if len(lines) < 3 || len(lines[1]) != len(lines[2]) {
		t.Errorf("misaligned rule:\n%s", out)
	}
}

func TestFormatFloatRanges(t *testing.T) {
	cases := map[float64]string{
		math.NaN(): "-",
		0.0000005:  "5e-07",
		12345.6:    "12345.6",
		1.5:        "1.5000",
		0:          "0.0000",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%g) = %q, want %q", in, got, want)
		}
	}
}
