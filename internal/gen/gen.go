// Package gen produces the synthetic datasets the experiments run on. The
// paper evaluates on three real graphs we do not have (DBLP, Epinions, the
// San Francisco road network); each generator here reproduces the
// structural properties that drive reverse k-ranks behaviour on its real
// counterpart — degree skew, directedness, weight distribution, and (for
// the road network) planar low-degree topology. See DESIGN.md §4 for the
// substitution rationale.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"rkranks/internal/graph"
)

// DBLPLikeParams configures DBLPLike.
type DBLPLikeParams struct {
	Nodes int // number of authors
	// AttachPerNode is the number of collaborations sampled per arriving
	// author (preferential attachment); repeated pairs model repeated
	// co-authorship. The paper's DBLP graph has average degree ~14.
	AttachPerNode int
	// ExtraCollabFactor adds Nodes*factor additional collaborations between
	// existing authors, thickening the core like long careers do.
	ExtraCollabFactor float64
	Seed              int64
}

// DBLPLike generates an undirected collaboration graph via preferential
// attachment with repeat collaborations, then assigns the paper's DBLP edge
// weight: 1/#papers(u,v) + log2(deg u) + log2(deg v), normalized into
// (0, 1]. Connected by construction.
func DBLPLike(p DBLPLikeParams) *graph.Graph {
	if p.Nodes < 2 {
		panic("gen: DBLPLike needs >= 2 nodes")
	}
	if p.AttachPerNode < 1 {
		p.AttachPerNode = 7
	}
	rng := rand.New(rand.NewSource(p.Seed))

	type pair struct{ a, b int32 }
	papers := make(map[pair]int)
	deg := make([]int, p.Nodes)
	collab := func(u, v int32) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		k := pair{u, v}
		if papers[k] == 0 {
			deg[u]++
			deg[v]++
		}
		papers[k]++
	}

	// Preferential attachment over a repeated-endpoint urn.
	urn := make([]int32, 0, p.Nodes*p.AttachPerNode*2)
	urn = append(urn, 0, 1)
	collab(0, 1)
	for v := 2; v < p.Nodes; v++ {
		for a := 0; a < p.AttachPerNode; a++ {
			t := urn[rng.Intn(len(urn))]
			collab(int32(v), t)
			urn = append(urn, int32(v), t)
		}
	}
	extra := int(float64(p.Nodes) * p.ExtraCollabFactor)
	for i := 0; i < extra; i++ {
		u := urn[rng.Intn(len(urn))]
		v := urn[rng.Intn(len(urn))]
		collab(u, v)
	}

	// Paper's DBLP weighting, normalized so weights land in (0, 1].
	b := graph.NewBuilder(false)
	b.EnsureNodes(p.Nodes)
	maxRaw := 0.0
	raws := make(map[pair]float64, len(papers))
	for k, cnt := range papers {
		raw := 1/float64(cnt) + math.Log2(float64(deg[k.a])+1) + math.Log2(float64(deg[k.b])+1)
		raws[k] = raw
		if raw > maxRaw {
			maxRaw = raw
		}
	}
	for k, raw := range raws {
		b.MustAddEdge(k.a, k.b, raw/maxRaw)
	}
	return b.Finalize()
}

// EpinionsLikeParams configures EpinionsLike.
type EpinionsLikeParams struct {
	Nodes int
	// OutPerNode is the number of trust statements issued per arriving
	// user. The real Epinions graph has average degree ~6.7.
	OutPerNode int
	// BackEdgeProb adds a reciprocal trust edge with this probability.
	BackEdgeProb float64
	// ZipfS is the Zipf skewness for edge weights; the paper samples
	// weights from Zipf with alpha = 2.
	ZipfS float64
	// ZipfMax caps the sampled weight values.
	ZipfMax uint64
	// Undirected symmetrizes the trust edges. The paper's Epinions graph is
	// directed, but its Lemma-4 (count bound) experiments require an
	// undirected graph; this flag builds the same topology undirected.
	Undirected bool
	Seed       int64
}

// EpinionsLike generates a directed trust graph: preferential attachment on
// in-degree (popular reviewers attract trust), optional reciprocal edges,
// and Zipf-distributed positive weights, as the paper synthesizes for the
// real Epinions topology.
func EpinionsLike(p EpinionsLikeParams) *graph.Graph {
	if p.Nodes < 2 {
		panic("gen: EpinionsLike needs >= 2 nodes")
	}
	if p.OutPerNode < 1 {
		p.OutPerNode = 3
	}
	if p.ZipfS <= 1 {
		p.ZipfS = 2
	}
	if p.ZipfMax == 0 {
		p.ZipfMax = 1000
	}
	rng := rand.New(rand.NewSource(p.Seed))
	zipf := rand.NewZipf(rng, p.ZipfS, 1, p.ZipfMax)
	weight := func() float64 { return float64(zipf.Uint64() + 1) }

	b := graph.NewBuilder(!p.Undirected)
	b.SetDedupe(true)
	b.EnsureNodes(p.Nodes)
	urn := []int32{0, 1}
	b.MustAddEdge(1, 0, weight())
	for v := 2; v < p.Nodes; v++ {
		for a := 0; a < p.OutPerNode; a++ {
			t := urn[rng.Intn(len(urn))]
			if t == int32(v) {
				continue
			}
			b.MustAddEdge(int32(v), t, weight())
			if rng.Float64() < p.BackEdgeProb {
				b.MustAddEdge(t, int32(v), weight())
			}
			urn = append(urn, t)
		}
		urn = append(urn, int32(v))
	}
	return b.Finalize()
}

// RoadNetworkParams configures RoadNetwork.
type RoadNetworkParams struct {
	Rows, Cols int
	// KeepProb is the probability of keeping a non-tree grid edge; the SF
	// road network's average degree is ~2.5, far below a full grid's ~4,
	// reflecting long road chains. A spanning tree is always kept, so the
	// network stays connected.
	KeepProb float64
	// Stores is the number of store nodes to mark (the paper's SF dataset
	// has 408 stores among ~321k road nodes).
	Stores int
	Seed   int64
}

// RoadNetwork generates an undirected perturbed-grid road network with
// travel-time weights and returns it together with the sampled store node
// ids (for bichromatic queries). Store ids are sorted and distinct.
func RoadNetwork(p RoadNetworkParams) (*graph.Graph, []int32) {
	if p.Rows < 2 || p.Cols < 2 {
		panic("gen: RoadNetwork needs a grid of at least 2x2")
	}
	if p.KeepProb <= 0 {
		p.KeepProb = 0.25
	}
	rng := rand.New(rand.NewSource(p.Seed))
	n := p.Rows * p.Cols
	id := func(r, c int) int32 { return int32(r*p.Cols + c) }
	travel := func() float64 { return 0.5 + rng.Float64() } // minutes per segment

	b := graph.NewBuilder(false)
	b.EnsureNodes(n)
	// Spanning tree: serpentine path through the grid keeps everything
	// reachable regardless of how many cross edges are dropped.
	for r := 0; r < p.Rows; r++ {
		for c := 0; c+1 < p.Cols; c++ {
			b.MustAddEdge(id(r, c), id(r, c+1), travel())
		}
		if r+1 < p.Rows {
			c := 0
			if r%2 == 1 {
				c = p.Cols - 1
			}
			b.MustAddEdge(id(r, c), id(r+1, c), travel())
		}
	}
	// Random subset of the remaining vertical edges.
	for r := 0; r+1 < p.Rows; r++ {
		for c := 0; c < p.Cols; c++ {
			onTree := (r%2 == 1 && c == 0) || (r%2 == 0 && c == p.Cols-1)
			if onTree {
				continue
			}
			if rng.Float64() < p.KeepProb {
				b.MustAddEdge(id(r, c), id(r+1, c), travel())
			}
		}
	}
	g := b.Finalize()

	stores := make([]int32, 0, p.Stores)
	if p.Stores > 0 {
		k := p.Stores
		if k > n {
			k = n
		}
		perm := rng.Perm(n)
		for _, v := range perm[:k] {
			stores = append(stores, int32(v))
		}
		sort.Slice(stores, func(i, j int) bool { return stores[i] < stores[j] })
	}
	return g, stores
}

// GNM generates a uniform random graph with n nodes and m edges (no
// self-loops; parallel edges collapse to the lighter one). Used by property
// tests to exercise the engines on arbitrary topologies, including
// disconnected ones.
func GNM(n, m int, directed bool, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(directed)
	b.SetDedupe(true)
	b.EnsureNodes(n)
	for i := 0; i < m; i++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u == v {
			continue
		}
		b.MustAddEdge(u, v, 0.05+rng.Float64())
	}
	return b.Finalize()
}

// StoreClasses converts a store list into the bichromatic class slices
// expected by core.Options: stores form the counted/query class V2 and all
// other nodes form the candidate class V1.
func StoreClasses(n int, stores []int32) (candidates, counted []bool) {
	candidates = make([]bool, n)
	counted = make([]bool, n)
	for i := range candidates {
		candidates[i] = true
	}
	for _, s := range stores {
		candidates[s] = false
		counted[s] = true
	}
	return candidates, counted
}

// Named builds the synthetic graph a serving command's -gen flag selects
// (dblp|epinions|road|gnm). The parameter choices live here ONCE because
// rkserve shards and a rkcluster coordinator must load graphs that agree
// node for node and edge for edge: two per-command copies drifting apart
// would pass the coordinator's node-count check and still merge silently
// wrong.
func Named(kind string, nodes int, seed int64) (*graph.Graph, error) {
	switch kind {
	case "dblp":
		return DBLPLike(DBLPLikeParams{Nodes: nodes, AttachPerNode: 7, ExtraCollabFactor: 0.5, Seed: seed}), nil
	case "epinions":
		return EpinionsLike(EpinionsLikeParams{Nodes: nodes, OutPerNode: 3, BackEdgeProb: 0.3, Seed: seed}), nil
	case "road":
		g, _ := RoadNetwork(RoadNetworkParams{Rows: 100, Cols: 100, KeepProb: 0.25, Stores: 100, Seed: seed})
		return g, nil
	case "gnm":
		return GNM(nodes, 3*nodes, false, seed), nil
	}
	return nil, fmt.Errorf("gen: unknown graph kind %q (want dblp|epinions|road|gnm)", kind)
}
