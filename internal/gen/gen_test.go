package gen

import (
	"math"
	"testing"

	"rkranks/internal/graph"
	"rkranks/internal/sssp"
)

func connected(g *graph.Graph) bool {
	if g.N() == 0 {
		return true
	}
	s := sssp.New(g)
	s.Reset(0)
	count := 0
	for {
		_, _, ok := s.Next()
		if !ok {
			break
		}
		count++
	}
	return count == g.N()
}

func TestDBLPLikeShape(t *testing.T) {
	g := DBLPLike(DBLPLikeParams{Nodes: 500, AttachPerNode: 5, ExtraCollabFactor: 0.5, Seed: 1})
	if g.N() != 500 {
		t.Fatalf("N = %d", g.N())
	}
	if g.Directed() {
		t.Error("DBLP-like must be undirected")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !connected(g) {
		t.Error("preferential attachment graph disconnected")
	}
	avgDeg := 2 * float64(g.M()) / float64(g.N())
	if avgDeg < 5 || avgDeg > 20 {
		t.Errorf("avg degree %.1f outside DBLP-ish range", avgDeg)
	}
	// Power-law-ish: max degree far above average.
	_, maxDeg := g.MaxOutDegreeNode()
	if float64(maxDeg) < 3*avgDeg {
		t.Errorf("max degree %d not skewed vs avg %.1f", maxDeg, avgDeg)
	}
	// Paper weighting normalizes into (0, 1].
	g.Edges(func(e graph.Edge) bool {
		if e.Weight <= 0 || e.Weight > 1 {
			t.Errorf("weight %g outside (0,1]", e.Weight)
			return false
		}
		return true
	})
}

func TestDBLPLikeDeterministic(t *testing.T) {
	a := DBLPLike(DBLPLikeParams{Nodes: 200, AttachPerNode: 4, Seed: 9})
	b := DBLPLike(DBLPLikeParams{Nodes: 200, AttachPerNode: 4, Seed: 9})
	if a.M() != b.M() || a.TotalWeight() != b.TotalWeight() {
		t.Error("same seed produced different graphs")
	}
	c := DBLPLike(DBLPLikeParams{Nodes: 200, AttachPerNode: 4, Seed: 10})
	if a.M() == c.M() && a.TotalWeight() == c.TotalWeight() {
		t.Error("different seeds produced identical graphs")
	}
}

func TestEpinionsLikeShape(t *testing.T) {
	g := EpinionsLike(EpinionsLikeParams{Nodes: 400, OutPerNode: 3, BackEdgeProb: 0.3, Seed: 2})
	if !g.Directed() {
		t.Error("Epinions-like must be directed by default")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Zipf weights are positive integers >= 1.
	g.Edges(func(e graph.Edge) bool {
		if e.Weight < 1 || e.Weight != math.Trunc(e.Weight) {
			t.Errorf("weight %g is not a positive integer", e.Weight)
			return false
		}
		return true
	})
	und := EpinionsLike(EpinionsLikeParams{Nodes: 400, OutPerNode: 3, Undirected: true, Seed: 2})
	if und.Directed() {
		t.Error("Undirected flag ignored")
	}
}

func TestEpinionsZipfSkew(t *testing.T) {
	g := EpinionsLike(EpinionsLikeParams{Nodes: 2000, OutPerNode: 3, Seed: 3})
	ones, total := 0, 0
	g.Edges(func(e graph.Edge) bool {
		total++
		if e.Weight == 1 {
			ones++
		}
		return true
	})
	if frac := float64(ones) / float64(total); frac < 0.5 {
		t.Errorf("Zipf(2) should concentrate mass at 1; got %.2f", frac)
	}
}

func TestRoadNetworkShape(t *testing.T) {
	g, stores := RoadNetwork(RoadNetworkParams{Rows: 20, Cols: 25, KeepProb: 0.25, Stores: 30, Seed: 4})
	if g.N() != 500 {
		t.Fatalf("N = %d", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !connected(g) {
		t.Error("road network disconnected despite spanning tree")
	}
	avgDeg := 2 * float64(g.M()) / float64(g.N())
	if avgDeg < 1.8 || avgDeg > 3.2 {
		t.Errorf("avg degree %.2f outside road-network range", avgDeg)
	}
	if len(stores) != 30 {
		t.Fatalf("stores = %d", len(stores))
	}
	for i := 1; i < len(stores); i++ {
		if stores[i] <= stores[i-1] {
			t.Fatal("stores not sorted/unique")
		}
	}
	g.Edges(func(e graph.Edge) bool {
		if e.Weight < 0.5 || e.Weight > 1.5 {
			t.Errorf("travel time %g outside [0.5, 1.5]", e.Weight)
			return false
		}
		return true
	})
}

func TestRoadNetworkStoreClamp(t *testing.T) {
	g, stores := RoadNetwork(RoadNetworkParams{Rows: 2, Cols: 3, Stores: 100, Seed: 1})
	if len(stores) != g.N() {
		t.Errorf("stores = %d, want clamped to %d", len(stores), g.N())
	}
}

func TestGNMProperties(t *testing.T) {
	g := GNM(100, 300, false, 5)
	if g.N() != 100 {
		t.Fatalf("N = %d", g.N())
	}
	if g.M() > 300 {
		t.Errorf("M = %d exceeds requested edges", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g.Edges(func(e graph.Edge) bool {
		if e.From == e.To {
			t.Error("self-loop generated")
		}
		return true
	})
	d := GNM(100, 300, true, 5)
	if !d.Directed() {
		t.Error("directed flag ignored")
	}
}

func TestStoreClasses(t *testing.T) {
	candidates, counted := StoreClasses(6, []int32{1, 4})
	for v := 0; v < 6; v++ {
		isStore := v == 1 || v == 4
		if counted[v] != isStore {
			t.Errorf("counted[%d] = %v", v, counted[v])
		}
		if candidates[v] != !isStore {
			t.Errorf("candidates[%d] = %v", v, candidates[v])
		}
	}
}

func TestGeneratorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"dblp":     func() { DBLPLike(DBLPLikeParams{Nodes: 1}) },
		"epinions": func() { EpinionsLike(EpinionsLikeParams{Nodes: 1}) },
		"road":     func() { RoadNetwork(RoadNetworkParams{Rows: 1, Cols: 5}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: tiny size accepted", name)
				}
			}()
			fn()
		}()
	}
}
