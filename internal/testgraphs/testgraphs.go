// Package testgraphs provides shared test fixtures, most importantly the
// paper's running example (Figure 1): seven researchers whose full rank
// matrix is published as Table 1, giving us exact golden values for every
// rank computation and for the worked reverse k-ranks queries.
package testgraphs

import "rkranks/internal/graph"

// Toy node ids, in the column order of Table 1 of the paper.
const (
	Alice = int32(iota)
	Bob
	Caroline
	Sid
	Eric
	Frank
	George
)

// ToyNames maps toy node ids to the paper's researcher names.
var ToyNames = []string{"Alice", "Bob", "Caroline", "Sid", "Eric", "Frank", "George"}

// Toy reconstructs the Figure-1 graph. The edge weights below reproduce the
// paper's Table 1 rank matrix exactly, including both tie groups
// (Bob/Caroline tie at rank 2 from Sid; Sid/George distances from Alice are
// 2.2 vs 2.3).
func Toy() *graph.Graph {
	b := graph.NewBuilder(false)
	for _, name := range ToyNames {
		b.AddLabeledNode(name)
	}
	edges := []struct {
		u, v int32
		w    float64
	}{
		{Alice, Bob, 1.0},
		{Bob, Eric, 0.2},
		{Bob, Caroline, 0.3},
		{Caroline, Sid, 1.2},
		{Eric, Frank, 0.9},
		{Eric, Sid, 1.0},
		{Eric, George, 1.1},
		{Frank, George, 0.2},
	}
	for _, e := range edges {
		b.MustAddEdge(e.u, e.v, e.w)
	}
	return b.Finalize()
}

// ToyRankMatrix is Table 1 of the paper: entry [s][t] is Rank(s, t), with 0
// on the diagonal (a node does not rank itself).
var ToyRankMatrix = [][]int32{
	//          Alice Bob Caroline Sid Eric Frank George
	/*Alice*/ {0, 1, 3, 5, 2, 4, 6},
	/*Bob*/ {3, 0, 2, 5, 1, 4, 6},
	/*Caroline*/ {4, 1, 0, 3, 2, 5, 6},
	/*Sid*/ {6, 2, 2, 0, 1, 4, 5},
	/*Eric*/ {6, 1, 2, 4, 0, 3, 5},
	/*Frank*/ {6, 3, 4, 5, 2, 0, 1},
	/*George*/ {6, 3, 4, 5, 2, 1, 0},
}

// Path returns a weighted path graph 0-1-2-...-(n-1) with unit weights.
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(false)
	b.EnsureNodes(n)
	for i := 0; i+1 < n; i++ {
		b.MustAddEdge(int32(i), int32(i+1), 1)
	}
	return b.Finalize()
}

// Star returns a star graph: node 0 connected to 1..n-1 with the given
// weights (len(weights) == n-1).
func Star(weights []float64) *graph.Graph {
	b := graph.NewBuilder(false)
	b.EnsureNodes(len(weights) + 1)
	for i, w := range weights {
		b.MustAddEdge(0, int32(i+1), w)
	}
	return b.Finalize()
}

// Cycle returns a directed cycle 0 -> 1 -> ... -> n-1 -> 0 with unit
// weights.
func Cycle(n int) *graph.Graph {
	b := graph.NewBuilder(true)
	b.EnsureNodes(n)
	for i := 0; i < n; i++ {
		b.MustAddEdge(int32(i), int32((i+1)%n), 1)
	}
	return b.Finalize()
}
