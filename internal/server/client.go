package server

import "rkranks/internal/api"

// The typed HTTP client and the wire documents moved to internal/api (the
// one home of the v1 protocol) and are promoted to the public surface as
// rkranks.Client. These aliases keep existing server.Client callers
// compiling; new code should import the api package (or use rkranks.Client)
// directly.
type (
	// Client is a typed HTTP client for a Server.
	//
	// Deprecated: use api.Client (publicly rkranks.Client).
	Client = api.Client
	// StatusError reports a non-2xx response.
	//
	// Deprecated: use api.StatusError.
	StatusError = api.StatusError
	// QueryResponse is the /v1/query response document.
	//
	// Deprecated: use api.QueryResponse.
	QueryResponse = api.QueryResponse
	// BatchResponse is the /v1/batch response document.
	//
	// Deprecated: use api.BatchResponse.
	BatchResponse = api.BatchResponse
	// Entry is one (node, rank) result pair on the wire.
	//
	// Deprecated: use api.Entry.
	Entry = api.Entry
)

// NewClient returns a client for a server at base.
//
// Deprecated: use api.NewClient (publicly rkranks.NewClient).
func NewClient(base string) *Client { return api.NewClient(base) }
