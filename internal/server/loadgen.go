package server

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"rkranks/internal/api"
	"rkranks/internal/stats"
)

// LoadConfig drives RunLoad, an open-loop load generator: requests are
// launched on a fixed arrival schedule regardless of how fast responses
// come back, which is what exposes queueing collapse — a closed loop
// (wait-then-send) self-throttles and hides it (the coordinated-omission
// trap).
type LoadConfig struct {
	// URL is the server base, e.g. "http://127.0.0.1:8080".
	URL string
	// Algorithm is the per-request algorithm; empty uses the server
	// default.
	Algorithm string
	// Queries is the query-node population, sampled uniformly per request.
	Queries []int32
	// K is the per-request result size.
	K int
	// Rate is the offered load in requests/second.
	Rate float64
	// Duration is how long arrivals are generated.
	Duration time.Duration
	// Timeout is the per-request deadline passed to the server (and
	// enforced client-side at 2x); <= 0 means 5s.
	Timeout time.Duration
	// MaxOutstanding caps concurrently outstanding requests; arrivals
	// beyond it are dropped client-side and counted as Shed. <= 0 means
	// 4096.
	MaxOutstanding int
	// Seed drives query sampling.
	Seed int64
}

// LoadResult aggregates one load run.
type LoadResult struct {
	Offered  float64       // configured arrival rate (req/s)
	Sent     int           // requests actually launched
	Shed     int           // arrivals dropped client-side (MaxOutstanding)
	OK       int           // HTTP 200
	Rejected int           // HTTP 429 (server admission)
	Deadline int           // HTTP 504 / client-side timeout
	Errors   int           // everything else
	Elapsed  time.Duration // arrival window plus drain
	Achieved float64       // OK / Elapsed (goodput, req/s)

	// Latency percentiles over successful requests, in milliseconds.
	P50, P90, P99, Mean float64
}

// RunLoad generates cfg.Rate arrivals/second against cfg.URL for
// cfg.Duration, waits for stragglers, and aggregates. ctx cancels the run
// early (the partial result is still returned).
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadResult, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 4096
	}
	client := NewClient(cfg.URL)
	rng := rand.New(rand.NewSource(cfg.Seed))

	res := &LoadResult{Offered: cfg.Rate}
	var (
		mu        sync.Mutex
		latencies []float64
		wg        sync.WaitGroup
	)
	outstanding := make(chan struct{}, cfg.MaxOutstanding)

	interval := time.Duration(float64(time.Second) / cfg.Rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	start := time.Now()
	total := int(cfg.Rate * cfg.Duration.Seconds())

	// Deadline-scheduled arrivals (the wrk2 scheme): arrival i is due at
	// start + i*interval, and every overdue arrival launches immediately
	// rather than being skipped. A time.Ticker would silently DROP missed
	// ticks, stretching the schedule exactly when the system slows down —
	// the coordinated-omission trap an open-loop generator exists to
	// avoid.
arrivals:
	for i := 0; i < total; i++ {
		due := start.Add(time.Duration(i) * interval)
		if wait := time.Until(due); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				break arrivals
			}
		} else if ctx.Err() != nil {
			break arrivals
		}
		q := cfg.Queries[rng.Intn(len(cfg.Queries))]
		select {
		case outstanding <- struct{}{}:
		default:
			res.Shed++
			continue
		}
		res.Sent++
		wg.Add(1)
		go func(q int32) {
			defer wg.Done()
			defer func() { <-outstanding }()
			// Client-side cap at 2x the server deadline: a hung connection
			// must not stall the drain below.
			rctx, cancel := context.WithTimeout(context.Background(), 2*cfg.Timeout)
			defer cancel()
			reqStart := time.Now()
			_, err := client.Query(rctx, api.Algorithm(cfg.Algorithm), q, cfg.K, cfg.Timeout)
			lat := time.Since(reqStart).Seconds()
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				res.OK++
				latencies = append(latencies, lat)
			case isStatus(err, 429):
				res.Rejected++
			case isStatus(err, 504), rctx.Err() != nil:
				res.Deadline++
			default:
				res.Errors++
			}
		}(q)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	if res.Elapsed > 0 {
		res.Achieved = float64(res.OK) / res.Elapsed.Seconds()
	}
	if len(latencies) > 0 {
		res.P50 = 1000 * stats.Percentile(latencies, 50)
		res.P90 = 1000 * stats.Percentile(latencies, 90)
		res.P99 = 1000 * stats.Percentile(latencies, 99)
		res.Mean = 1000 * stats.Mean(latencies)
	}
	return res, ctx.Err()
}

func isStatus(err error, status int) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Status == status
}
