package server

import (
	"context"
	"testing"
	"time"
)

// TestRunLoadAgainstServer: the open-loop generator against a live test
// server produces coherent aggregates.
func TestRunLoadAgainstServer(t *testing.T) {
	_, ts, g := newTestServer(t, Config{}, false)
	queries := make([]int32, 64)
	for i := range queries {
		queries[i] = int32(i % g.N())
	}
	res, err := RunLoad(context.Background(), LoadConfig{
		URL:      ts.URL,
		Queries:  queries,
		K:        5,
		Rate:     200,
		Duration: 300 * time.Millisecond,
		Timeout:  2 * time.Second,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 || res.OK == 0 {
		t.Fatalf("no traffic flowed: %+v", res)
	}
	if res.OK+res.Rejected+res.Deadline+res.Errors != res.Sent {
		t.Errorf("outcome counts do not add up: %+v", res)
	}
	if res.Achieved <= 0 || res.P99+1e-9 < res.P50 {
		t.Errorf("aggregates malformed: %+v", res)
	}
}

// TestRunLoadSheds: a tiny outstanding cap on an overloaded server sheds
// client-side instead of ballooning goroutines.
func TestRunLoadSheds(t *testing.T) {
	_, ts, _ := newTestServerOn(t, Config{MaxInFlight: 1, MaxQueue: 1}, false, slowGraph())
	res, err := RunLoad(context.Background(), LoadConfig{
		URL:            ts.URL,
		Algorithm:      "naive",
		Queries:        []int32{0, 1, 2},
		K:              400,
		Rate:           500,
		Duration:       300 * time.Millisecond,
		Timeout:        2 * time.Second,
		MaxOutstanding: 2,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Errorf("expected client-side shedding with MaxOutstanding=2: %+v", res)
	}
}

// TestRunLoadContextCancel: canceling the run context stops arrivals
// early and still returns the partial aggregate.
func TestRunLoadContextCancel(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, false)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := RunLoad(ctx, LoadConfig{
		URL:      ts.URL,
		Queries:  []int32{0, 1},
		K:        5,
		Rate:     50,
		Duration: 30 * time.Second,
		Seed:     7,
	})
	if err == nil {
		t.Fatal("expected ctx error")
	}
	if res == nil {
		t.Fatal("partial result missing")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancel did not stop arrivals: ran %v", elapsed)
	}
}
