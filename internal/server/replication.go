// Index replication endpoints: a leader serves its dynamic index so
// replicas and cold-started shards inherit learned state instead of
// re-deriving it query by query.
//
//	GET /v1/index/snapshot          binary ridx format + cursor headers
//	GET /v1/index/deltas?since=N    JSON batch of refinement deltas
//
// Both bypass admission control like /statsz: replication traffic must
// keep flowing while the query path is saturated, or a struggling
// replica could never catch up and rejoin. The capability is probed
// through the backend's Unwrap chain — a pool whose shared index is
// wrapped in ridx.Replicated answers; everything else (clusters, live
// stores, unreplicated pools) gets 501 unimplemented.
package server

import (
	"net/http"
	"strconv"
	"time"

	"rkranks/internal/api"
	"rkranks/internal/ridx"
)

// maxDeltaBatch bounds one /v1/index/deltas response; followers loop
// until Next stops advancing.
const maxDeltaBatch = 8192

// replicatedIndex probes the backend for a replication-capable index.
func (s *Server) replicatedIndex() (*ridx.Replicated, bool) {
	src, ok := probeBackend[interface{ Index() ridx.Index }](s.backend)
	if !ok {
		return nil, false
	}
	repl, ok := src.Index().(*ridx.Replicated)
	return repl, ok
}

func (s *Server) handleIndexSnapshot(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	r, tr := s.begin(w, r, routeOther)
	defer tr.Release()
	repl, ok := s.replicatedIndex()
	if !ok {
		s.reject(w, r, start, http.StatusNotImplemented, codeUnimplemented,
			"backend serves no replicated index")
		return
	}
	snap, seq, gen := repl.SnapshotState()
	w.Header().Set(api.HeaderIndexSeq, strconv.FormatUint(seq, 10))
	w.Header().Set(api.HeaderIndexGeneration, strconv.FormatUint(gen, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	// Header already sent; a mid-body write error just truncates the
	// stream, which the follower's ridx.ReadSharded detects.
	_ = snap.Write(w)
	s.om.IndexSnapshotsServed.Inc()
	s.observe(r, start, http.StatusOK, nil, 0)
}

func (s *Server) handleIndexDeltas(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	r, tr := s.begin(w, r, routeOther)
	defer tr.Release()
	repl, ok := s.replicatedIndex()
	if !ok {
		s.reject(w, r, start, http.StatusNotImplemented, codeUnimplemented,
			"backend serves no replicated index")
		return
	}
	since, err := strconv.ParseUint(r.URL.Query().Get("since"), 10, 64)
	if err != nil {
		s.reject(w, r, start, http.StatusBadRequest, codeInvalidArgument,
			"since must be a uint64 delta cursor")
		return
	}
	max := maxDeltaBatch
	if raw := r.URL.Query().Get("max"); raw != "" {
		m, err := strconv.Atoi(raw)
		if err != nil || m < 1 {
			s.reject(w, r, start, http.StatusBadRequest, codeInvalidArgument,
				"max must be a positive integer")
			return
		}
		if m < max {
			max = m
		}
	}
	ds, next, reachable := repl.DeltasSince(since, max)
	resp := api.IndexDeltasResponse{
		Since:            since,
		Next:             next,
		IndexGeneration:  repl.Generation(),
		SnapshotRequired: !reachable,
		Deltas:           api.DeltasOf(ds),
		RequestID:        tr.ID(),
	}
	s.om.IndexDeltasServed.Add(int64(len(ds)))
	s.respond(w, r, start, http.StatusOK, resp, nil, 0)
}

// replicationSnapshot fills the /statsz replication section when the
// backend serves a replicated index.
func (s *Server) replicationSnapshot() *api.ReplicationSnapshot {
	repl, ok := s.replicatedIndex()
	if !ok {
		return nil
	}
	return &api.ReplicationSnapshot{
		IndexSeq:             repl.Seq(),
		IndexGeneration:      repl.Generation(),
		IndexSnapshotsServed: s.om.IndexSnapshotsServed.Value(),
		IndexDeltasServed:    s.om.IndexDeltasServed.Value(),
		IndexSnapshotsLoaded: s.om.IndexSnapshotsLoaded.Value(),
		IndexDeltasApplied:   s.om.IndexDeltasApplied.Value(),
	}
}
