package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"rkranks/internal/api"
	"rkranks/internal/core"
	"rkranks/internal/ridx"
)

// newReplicatedServer boots a server whose pool's shared index is
// wrapped in ridx.Replicated — the leader configuration of the index
// replication endpoints. Returns the wrapper so tests can drive
// refinement directly.
func newReplicatedServer(t *testing.T, logCap int) (*ridx.Replicated, *httptest.Server) {
	t.Helper()
	g := testGraph()
	sh, err := ridx.BuildSharded(g, ridx.BuildParams{Hubs: []int32{0, 1, 2, 3}, M: 40, K: 50}, 0)
	if err != nil {
		t.Fatal(err)
	}
	repl := ridx.NewReplicated(sh, logCap)
	pool, err := core.NewPoolWithIndex(g, core.Options{}, 2, repl)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Pool: pool, Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return repl, ts
}

// indexStateEqual compares full dictionary state between two indexes.
func indexStateEqual(t *testing.T, got, want ridx.Index) {
	t.Helper()
	if got.N() != want.N() {
		t.Fatalf("N: %d vs %d", got.N(), want.N())
	}
	for u := int32(0); u < int32(want.N()); u++ {
		if g, w := got.Check(u), want.Check(u); g != w {
			t.Fatalf("Check(%d) = %d, want %d", u, g, w)
		}
	}
	for v := int32(0); v < int32(want.N()); v++ {
		g, w := got.Reverse(v), want.Reverse(v)
		if len(g) != len(w) {
			t.Fatalf("Reverse(%d): %v vs %v", v, g, w)
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("Reverse(%d)[%d]: %v vs %v", v, i, g[i], w[i])
			}
		}
	}
}

// TestIndexReplicationUnimplemented: a backend without a Replicated
// index answers 501 on both endpoints, in the v1 error envelope.
func TestIndexReplicationUnimplemented(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, true) // plain sharded index, no Replicated wrapper
	c := api.NewClient(ts.URL)

	if _, _, _, err := c.IndexSnapshot(context.Background()); !isUnimplemented(err) {
		t.Fatalf("snapshot on unreplicated backend: %v, want 501 unimplemented", err)
	}
	if _, err := c.IndexDeltas(context.Background(), 0, 0); !isUnimplemented(err) {
		t.Fatalf("deltas on unreplicated backend: %v, want 501 unimplemented", err)
	}
}

func isUnimplemented(err error) bool {
	var se *api.StatusError
	return errors.As(err, &se) && se.Status == http.StatusNotImplemented && se.Code == api.CodeUnimplemented
}

// TestIndexSnapshotRoundTrip: the snapshot body streams the ridx on-disk
// format with cursor headers; a ReadSharded of it reproduces the
// leader's exact dictionary state, and /statsz grows a replication
// section counting the serve.
func TestIndexSnapshotRoundTrip(t *testing.T) {
	repl, ts := newReplicatedServer(t, 0)
	for i := int32(0); i < 50; i++ {
		repl.Offer(i%40, (i+3)%40, i+1)
		if i%5 == 0 {
			repl.RaiseCheck(i%40, i/2+1)
		}
	}

	c := api.NewClient(ts.URL)
	body, seq, gen, err := c.IndexSnapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer body.Close()
	if seq != repl.Seq() {
		t.Errorf("X-Index-Seq = %d, want %d", seq, repl.Seq())
	}
	if gen != repl.Generation() {
		t.Errorf("X-Index-Generation = %d, want %d", gen, repl.Generation())
	}
	follower, err := ridx.ReadSharded(body)
	if err != nil {
		t.Fatal(err)
	}
	indexStateEqual(t, follower, repl)

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Replication == nil {
		t.Fatal("statsz has no replication section on a replicated backend")
	}
	if snap.Replication.IndexSnapshotsServed < 1 {
		t.Errorf("index_snapshots_served = %d, want >= 1", snap.Replication.IndexSnapshotsServed)
	}
	if snap.Replication.IndexSeq != repl.Seq() {
		t.Errorf("statsz index_seq = %d, want %d", snap.Replication.IndexSeq, repl.Seq())
	}
}

// TestIndexDeltasCursor: deltas stream from a cursor in bounded batches
// until Next stops advancing; replaying them onto a bootstrap snapshot
// converges on the leader's state.
func TestIndexDeltasCursor(t *testing.T) {
	repl, ts := newReplicatedServer(t, 0)
	c := api.NewClient(ts.URL)

	body, seq, _, err := c.IndexSnapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	follower, err := ridx.ReadSharded(body)
	body.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Leader learns after the snapshot was cut.
	for i := int32(0); i < 60; i++ {
		repl.Offer((i*7)%40, (i+11)%40, i%30+1)
	}

	cursor := seq
	for {
		resp, err := c.IndexDeltas(context.Background(), cursor, 13)
		if err != nil {
			t.Fatal(err)
		}
		if resp.SnapshotRequired {
			t.Fatalf("cursor %d unexpectedly fell off the log", cursor)
		}
		if resp.Since != cursor {
			t.Fatalf("since echoed %d, want %d", resp.Since, cursor)
		}
		if len(resp.Deltas) == 0 {
			break
		}
		if len(resp.Deltas) > 13 {
			t.Fatalf("batch of %d exceeds max=13", len(resp.Deltas))
		}
		ds, err := api.DecodeDeltas(resp.Deltas)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range ds {
			switch d.Op {
			case ridx.DeltaOffer:
				follower.Offer(d.V, d.U, d.R)
			case ridx.DeltaCheck:
				follower.RaiseCheck(d.U, d.R)
			}
		}
		cursor = resp.Next
	}
	indexStateEqual(t, follower, repl)
}

// TestIndexDeltasTruncation: a cursor older than the bounded log reports
// snapshot_required with the resume cursor, instead of silently skipping
// the missed deltas.
func TestIndexDeltasTruncation(t *testing.T) {
	repl, ts := newReplicatedServer(t, 8)
	for i := int32(0); i < 30; i++ {
		repl.Offer(i%40, (i+1)%40, i+1)
	}
	c := api.NewClient(ts.URL)
	resp, err := c.IndexDeltas(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.SnapshotRequired {
		t.Fatal("cursor 0 on a cap-8 log must require a snapshot")
	}
	if len(resp.Deltas) != 0 {
		t.Fatalf("snapshot_required response carried %d deltas", len(resp.Deltas))
	}
	if resp.Next != repl.Seq() {
		t.Errorf("resume cursor = %d, want Seq %d", resp.Next, repl.Seq())
	}
}

// TestIndexDeltasValidation: malformed cursors are the caller's fault.
func TestIndexDeltasValidation(t *testing.T) {
	_, ts := newReplicatedServer(t, 0)
	for _, url := range []string{
		ts.URL + "/v1/index/deltas",           // missing since
		ts.URL + "/v1/index/deltas?since=abc", // non-numeric
		ts.URL + "/v1/index/deltas?since=0&max=0",
		ts.URL + "/v1/index/deltas?since=0&max=-3",
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		var e api.ErrorBody
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || e.Code != api.CodeInvalidArgument {
			t.Errorf("%s: status %d code %q, want 400 invalid_argument", url, resp.StatusCode, e.Code)
		}
	}
}
