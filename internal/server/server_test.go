package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"rkranks/internal/api"
	"rkranks/internal/core"
	"rkranks/internal/gen"
	"rkranks/internal/graph"
	"rkranks/internal/rank"
	"rkranks/internal/ridx"
	"rkranks/internal/sssp"
)

func testGraph() *graph.Graph {
	return gen.DBLPLike(gen.DBLPLikeParams{Nodes: 400, AttachPerNode: 4, Seed: 9})
}

// slowGraph is big enough that a naive large-k query takes hundreds of
// milliseconds — long enough to observe admission and drain mid-flight.
func slowGraph() *graph.Graph {
	return gen.DBLPLike(gen.DBLPLikeParams{Nodes: 3000, AttachPerNode: 5, Seed: 9})
}

// newTestServer boots a Server over a fresh pool (with a shared concurrent
// index when withIndex) behind httptest.
func newTestServer(t *testing.T, cfg Config, withIndex bool) (*Server, *httptest.Server, *graph.Graph) {
	t.Helper()
	return newTestServerOn(t, cfg, withIndex, testGraph())
}

func newTestServerOn(t *testing.T, cfg Config, withIndex bool, g *graph.Graph) (*Server, *httptest.Server, *graph.Graph) {
	t.Helper()
	var pool *core.Pool
	if withIndex {
		sh, err := ridx.BuildSharded(g, ridx.BuildParams{Hubs: []int32{0, 1, 2, 3}, M: 40, K: 50}, 0)
		if err != nil {
			t.Fatal(err)
		}
		pool, err = core.NewPoolWithIndex(g, core.Options{}, 4, sh)
		if err != nil {
			t.Fatal(err)
		}
	} else {
		pool = core.NewPool(g, core.Options{}, 4)
	}
	cfg.Pool = pool
	cfg.Graph = g
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, g
}

func TestQueryEndpoint(t *testing.T) {
	_, ts, g := newTestServer(t, Config{}, false)
	c := NewClient(ts.URL)

	resp, err := c.Query(context.Background(), "dynamic", 7, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Query != 7 || resp.K != 5 || resp.Algorithm != "dynamic" {
		t.Errorf("response header wrong: %+v", resp)
	}
	if len(resp.Entries) != 5 {
		t.Fatalf("got %d entries, want 5", len(resp.Entries))
	}
	if resp.Stats == nil || resp.Stats.Refinements == 0 {
		t.Errorf("missing work stats: %+v", resp.Stats)
	}

	// The wire answer must match the engine answer exactly.
	want, err := core.NewEngine(g, core.Options{}).Query(core.Dynamic, 7, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range want.Entries {
		if resp.Entries[i].Node != e.Node || resp.Entries[i].Rank != e.Rank {
			t.Errorf("entry %d: wire %+v != engine %+v", i, resp.Entries[i], e)
		}
	}
}

func TestQueryValidationMapsTo400(t *testing.T) {
	_, ts, g := newTestServer(t, Config{}, false)
	c := NewClient(ts.URL)
	cases := []struct {
		name string
		algo string
		q    int32
		k    int
	}{
		{"unknown algorithm", "bogus", 0, 5},
		{"k zero", "dynamic", 0, 0},
		{"q out of range", "dynamic", int32(g.N() + 1), 5},
		{"indexed without index", "indexed", 0, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.Query(context.Background(), api.Algorithm(tc.algo), tc.q, tc.k, 0)
			if !isStatus(err, 400) {
				t.Fatalf("got %v, want HTTP 400", err)
			}
		})
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, ts, g := newTestServer(t, Config{}, true)
	c := NewClient(ts.URL)
	queries := []int32{1, 2, 3, 4, 5, 6, 7, 8}
	resp, err := c.Batch(context.Background(), "", queries, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Algorithm != "indexed" {
		t.Errorf("default algorithm %q, want indexed (pool has an index)", resp.Algorithm)
	}
	if len(resp.Results) != len(queries) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(queries))
	}
	oracle := core.NewEngine(g, core.Options{})
	for i, r := range resp.Results {
		if r.Query != queries[i] {
			t.Errorf("result %d out of order: %d", i, r.Query)
		}
		want, err := oracle.Query(core.Dynamic, queries[i], 5)
		if err != nil {
			t.Fatal(err)
		}
		// Rank multisets must agree (ties may resolve to different nodes).
		for j, e := range want.Entries {
			if r.Entries[j].Rank != e.Rank {
				t.Errorf("q=%d entry %d: rank %d != oracle %d", queries[i], j, r.Entries[j].Rank, e.Rank)
			}
		}
	}

	if _, err := c.Batch(context.Background(), "", nil, 5, 0); !isStatus(err, 400) {
		t.Errorf("empty batch: got %v, want 400", err)
	}
}

func TestPprofOptIn(t *testing.T) {
	_, off, _ := newTestServer(t, Config{}, false)
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without EnablePprof: status %d, want 404", resp.StatusCode)
	}

	_, on, _ := newTestServer(t, Config{EnablePprof: true}, false)
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/cmdline"} {
		resp, err := http.Get(on.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d, want 200", path, resp.StatusCode)
		}
	}
}

func TestHealthzAndStatsz(t *testing.T) {
	_, ts, g := newTestServer(t, Config{}, true)
	c := NewClient(ts.URL)
	doc, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if doc["status"] != "ok" || int(doc["graph_nodes"].(float64)) != g.N() || doc["indexed"] != true {
		t.Errorf("healthz: %v", doc)
	}

	if _, err := c.Query(context.Background(), "", 3, 5, 0); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.RequestsTotal < 1 || snap.QueriesOK < 1 {
		t.Errorf("statsz did not count the query: %+v", snap)
	}
	if snap.QueryStats.Refinements+snap.QueryStats.IndexHits+snap.QueryStats.SeededFromIndex == 0 {
		t.Errorf("statsz missing engine counters: %+v", snap.QueryStats)
	}
	if snap.Latency.Window < 1 || snap.Latency.P99 < snap.Latency.P50 {
		t.Errorf("statsz latency window malformed: %+v", snap.Latency)
	}
	if snap.PoolSize != 4 {
		t.Errorf("pool size %d, want 4", snap.PoolSize)
	}
	if snap.CSRBytes <= 0 {
		t.Errorf("csr_bytes %d, want > 0 after a served query", snap.CSRBytes)
	}

	// A batch of repeated queries must engage the shared-traversal
	// executor: the aggregated counter and the derived reuse ratio move.
	queries := make([]int32, 0, 24)
	for i := 0; i < 8; i++ {
		queries = append(queries, 3, 7, 11)
	}
	if _, err := c.Batch(context.Background(), "dynamic", queries, 5, 0); err != nil {
		t.Fatal(err)
	}
	if snap, err = c.Stats(context.Background()); err != nil {
		t.Fatal(err)
	}
	if snap.BatchSharedTraversals < 1 {
		t.Errorf("batch_shared_traversals %d, want >= 1 after a repetitive batch", snap.BatchSharedTraversals)
	}
	if snap.TraversalReuseRatio <= 0 || snap.TraversalReuseRatio > 1 {
		t.Errorf("traversal_reuse_ratio %v, want in (0, 1]", snap.TraversalReuseRatio)
	}
}

func TestDeadlineMapsTo504(t *testing.T) {
	// Naive with a huge k cannot finish in 1ms on the slow graph.
	_, ts, _ := newTestServerOn(t, Config{}, false, slowGraph())
	c := NewClient(ts.URL)
	_, err := c.Query(context.Background(), "naive", 0, 500, time.Millisecond)
	if !isStatus(err, 504) {
		t.Fatalf("got %v, want HTTP 504", err)
	}
}

func TestAdmissionControl(t *testing.T) {
	// The slow graph keeps each naive query in flight long enough that the
	// 24 concurrent arrivals genuinely overlap; on the small test graph a
	// query can finish before the next goroutine is even scheduled, so
	// nothing ever queues and nothing is shed.
	s, ts, _ := newTestServerOn(t, Config{MaxInFlight: 1, MaxQueue: 1}, false, slowGraph())
	c := NewClient(ts.URL)
	if s.cfg.MaxQueue != 1 {
		t.Fatalf("MaxQueue = %d", s.cfg.MaxQueue)
	}

	// Saturate: slow naive queries, far more than in-flight + queue slots.
	const n = 24
	var wg sync.WaitGroup
	var mu sync.Mutex
	counts := map[int]int{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Query(context.Background(), "naive", 1, 300, 2*time.Second)
			st := 200
			if err != nil {
				var se *StatusError
				if !errors.As(err, &se) {
					t.Errorf("transport error: %v", err)
					return
				}
				st = se.Status
			}
			mu.Lock()
			counts[st]++
			mu.Unlock()
		}()
	}
	wg.Wait()
	if counts[429] == 0 {
		t.Errorf("no request was shed under 24x overload of a 2-slot server: %v", counts)
	}
	if counts[200]+counts[504] == 0 {
		t.Errorf("no admitted request completed: %v", counts)
	}
}

// TestConcurrentClientsSharedIndex hammers the server from many clients
// against a pool over one shared concurrent index and cross-checks every
// response against the index-free oracle. Run under -race in CI, this is
// the server-level race test the engine-level tests cannot cover (HTTP
// handler state, admission bookkeeping, metrics).
func TestConcurrentClientsSharedIndex(t *testing.T) {
	_, ts, g := newTestServer(t, Config{MaxInFlight: 8, MaxQueue: 64}, true)
	c := NewClient(ts.URL)

	// Same result semantics the engine tests assert: the rank multiset
	// must match the index-free oracle (tie groups may resolve to
	// different nodes — any resolution is a valid answer), and every
	// reported rank must be truthful.
	oracle := core.NewEngine(g, core.Options{})
	var oracleMu sync.Mutex
	ranksFor := func(q int32) string {
		oracleMu.Lock()
		defer oracleMu.Unlock()
		res, err := oracle.Query(core.Dynamic, q, 5)
		if err != nil {
			t.Error(err)
			return ""
		}
		ranks := make([]int32, len(res.Entries))
		for i, e := range res.Entries {
			ranks[i] = e.Rank
		}
		return fmt.Sprint(ranks)
	}
	truthful := func(q int32, e Entry) bool {
		oracleMu.Lock()
		defer oracleMu.Unlock()
		return rank.Of(sssp.New(g), e.Node, q) == e.Rank
	}

	const clients, perClient = 16, 8
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				q := int32((cl*perClient + i) % g.N())
				resp, err := c.Query(context.Background(), "indexed", q, 5, 10*time.Second)
				if err != nil {
					t.Errorf("q=%d: %v", q, err)
					return
				}
				ranks := make([]int32, len(resp.Entries))
				for j, e := range resp.Entries {
					ranks[j] = e.Rank
					if !truthful(q, e) {
						t.Errorf("q=%d: served untruthful rank %+v", q, e)
						return
					}
				}
				if got, want := fmt.Sprint(ranks), ranksFor(q); want != "" && got != want {
					t.Errorf("q=%d: served ranks %s, oracle %s", q, got, want)
					return
				}
			}
		}(cl)
	}
	wg.Wait()
}

// TestDrainNoDroppedResponses is the graceful-drain contract: requests
// admitted before Drain all complete with 200, requests arriving during
// the drain are refused with 503, and Drain returns only after the last
// admitted response is written.
func TestDrainNoDroppedResponses(t *testing.T) {
	s, ts, _ := newTestServerOn(t, Config{MaxInFlight: 4, MaxQueue: 4}, false, slowGraph())
	c := NewClient(ts.URL)

	// Launch slow queries and wait until all four are admitted.
	const n = 4
	results := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(q int32) {
			_, err := c.Query(context.Background(), "naive", q, 500, 30*time.Second)
			results <- err
		}(int32(i))
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap, err := c.Stats(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if snap.InFlight >= n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("requests never became in-flight: %+v", snap)
		}
		time.Sleep(2 * time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()

	// Mid-drain traffic is refused, not dropped.
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	if _, err := c.Query(context.Background(), "dynamic", 1, 5, 0); !isStatus(err, 503) {
		t.Errorf("query during drain: got %v, want 503", err)
	}
	if _, err := c.Health(context.Background()); !isStatus(err, 503) {
		t.Errorf("healthz during drain: got %v, want 503", err)
	}

	// Every admitted request completes successfully — zero dropped.
	for i := 0; i < n; i++ {
		if err := <-results; err != nil {
			t.Errorf("in-flight request dropped during drain: %v", err)
		}
	}
	if err := <-drained; err != nil {
		t.Errorf("drain: %v", err)
	}
	// After a completed drain, nothing is in flight.
	snap, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.InFlight != 0 || !snap.Draining {
		t.Errorf("post-drain statsz: %+v", snap)
	}
}

// TestDrainIdempotent: double drain returns immediately both times.
func TestDrainIdempotent(t *testing.T) {
	s, _, _ := newTestServer(t, Config{}, false)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}
