package server

import (
	"context"
	"encoding/json"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"rkranks/internal/api"
	"rkranks/internal/obs"
)

// TestRequestIDEcho: a request carrying X-Request-Id gets the same ID on
// the response header and in the body; one without gets a generated ID.
func TestRequestIDEcho(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, false)

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/query",
		strings.NewReader(`{"algorithm":"dynamic","q":7,"k":5}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "stitch-me-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "stitch-me-42" {
		t.Errorf("response header X-Request-Id = %q, want the inbound ID", got)
	}
	var qr api.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.RequestID != "stitch-me-42" {
		t.Errorf("body request_id = %q, want the inbound ID", qr.RequestID)
	}

	resp2, err := http.Post(ts.URL+"/v1/query", "application/json",
		strings.NewReader(`{"algorithm":"dynamic","q":7,"k":5}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	gen := resp2.Header.Get("X-Request-Id")
	if !regexp.MustCompile(`^[0-9a-f]{32}$`).MatchString(gen) {
		t.Errorf("generated request ID %q, want 32 hex chars", gen)
	}
}

// TestRequestIDOnErrors: the error envelope carries the request ID too,
// so a 400 correlates with its access-log line.
func TestRequestIDOnErrors(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, false)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/query",
		strings.NewReader(`{"algorithm":"no-such-algo","q":7,"k":5}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "err-trace-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var eb api.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.RequestID != "err-trace-1" {
		t.Errorf("error envelope request_id = %q, want the inbound ID", eb.RequestID)
	}
}

// TestRequestzSpans: with a negative threshold every request is captured;
// the flight recorder's spans cover the request's stages and their
// durations fit inside the recorded total.
func TestRequestzSpans(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{SlowQueryThreshold: -1}, false)
	c := NewClient(ts.URL)
	if _, err := c.Query(context.Background(), "dynamic", 3, 8, 0); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/debug/requestz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.RecorderSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Slow) == 0 {
		t.Fatal("no slow records despite threshold <= 0")
	}
	rec := snap.Slow[0]
	if !rec.Slow {
		t.Errorf("record not marked slow: %+v", rec)
	}
	if rec.Route != "query" {
		t.Errorf("route = %q, want query", rec.Route)
	}
	if rec.RequestID == "" {
		t.Error("record has no request ID")
	}
	stages := map[string]bool{}
	var sum float64
	for _, sp := range rec.Spans {
		stages[sp.Stage] = true
		if sp.DurationMS < 0 {
			t.Errorf("span %s has negative duration %v", sp.Stage, sp.DurationMS)
		}
		sum += sp.DurationMS
	}
	if !stages["admission"] || !stages["engine.refine"] {
		t.Errorf("stages = %v, want admission and engine.refine", stages)
	}
	// Stages are sequential on a single node, so their durations must fit
	// within the recorded total (small slack: total is stamped after the
	// response body is written).
	if sum > rec.TotalMS+1 {
		t.Errorf("span durations sum to %.3fms, exceeding total %.3fms", sum, rec.TotalMS)
	}
	if want, ok := rec.Spans[len(rec.Spans)-1].Attrs["refinements"]; !ok || want == 0 {
		t.Errorf("engine span lost its decision counters: %+v", rec.Spans)
	}
}

// TestMetricsEndpoint: /metrics is valid Prometheus text carrying the
// request counters and per-stage histograms this PR exists to expose.
func TestMetricsEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{EnableMetrics: true}, false)
	c := NewClient(ts.URL)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := c.Query(ctx, "dynamic", int32(i), 5, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Batch(ctx, "dynamic", []int32{1, 2, 3}, 5, 0); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	body := readAll(t, resp)
	for _, want := range []string{
		`rkranks_requests_total{route="query"} 2`,
		`rkranks_requests_total{route="batch"} 1`,
		`rkranks_queries_ok_total 5`,
		`rkranks_stage_duration_seconds_bucket{stage="engine.refine",le="+Inf"}`,
		`rkranks_stage_duration_seconds_bucket{stage="admission",le="+Inf"}`,
		`rkranks_request_duration_seconds_count{route="query"} 2`,
		`rkranks_in_flight_requests 0`,
		`rkranks_pool_size 4`,
		`rkranks_csr_bytes`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestStatszLatencyByRoute: the /statsz percentile windows are keyed by
// route class, so batch traffic no longer skews the query window; the
// historic top-level latency_ms is the query route's.
func TestStatszLatencyByRoute(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, false)
	c := NewClient(ts.URL)
	ctx := context.Background()
	if _, err := c.Query(ctx, "dynamic", 3, 5, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Batch(ctx, "dynamic", []int32{1, 2, 3, 4}, 5, 0); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Latency.Window != 1 {
		t.Errorf("top-level latency window = %d, want 1 (query route only)", snap.Latency.Window)
	}
	if got := snap.LatencyByRoute["query"].Window; got != 1 {
		t.Errorf("query route window = %d, want 1", got)
	}
	if got := snap.LatencyByRoute["batch"].Window; got != 1 {
		t.Errorf("batch route window = %d, want 1", got)
	}
	if _, ok := snap.LatencyByRoute["mutate"]; ok {
		t.Error("mutate window present without any mutation")
	}
	if snap.RequestsTotal != 2 {
		t.Errorf("requests_total = %d, want 2 (statsz itself is uncounted)", snap.RequestsTotal)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}
