package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rkranks/internal/api"
	"rkranks/internal/cache"
	"rkranks/internal/core"
	"rkranks/internal/rank"
	tg "rkranks/internal/testgraphs"
)

// fakeBackend implements Backend (plus the optional cluster probes) so
// the server's backend abstraction is tested without a dependency on
// internal/cluster — whose own tests cover the real coordinator behind
// this same interface.
type fakeBackend struct {
	err     error
	partial bool
	shards  int
	cluster any
}

func (f *fakeBackend) QueryContext(ctx context.Context, a core.Algorithm, q int32, k int) (*core.Result, error) {
	if f.err != nil {
		return nil, f.err
	}
	return &core.Result{
		Query:   q,
		K:       k,
		Entries: []rank.Entry{{Node: q + 1, Rank: 1}},
		Partial: f.partial,
	}, nil
}

func (f *fakeBackend) QueryManyContext(ctx context.Context, a core.Algorithm, queries []int32, k int) ([]*core.Result, error) {
	out := make([]*core.Result, len(queries))
	for i, q := range queries {
		res, err := f.QueryContext(ctx, a, q, k)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

func (f *fakeBackend) Size() int            { return 2 }
func (f *fakeBackend) Indexed() bool        { return false }
func (f *fakeBackend) ShardCount() int      { return f.shards }
func (f *fakeBackend) ClusterSnapshot() any { return f.cluster }

// overloadErr mimics cluster.OverloadedError without importing it (that
// would be an import cycle from this in-package test).
type overloadErr struct{ after time.Duration }

func (e *overloadErr) Error() string                 { return "shards overloaded" }
func (e *overloadErr) HTTPStatus() (int, string)     { return http.StatusTooManyRequests, "overloaded" }
func (e *overloadErr) RetryAfterHint() time.Duration { return e.after }

// unavailableErr mimics cluster.ShardError.
type unavailableErr struct{}

func (e *unavailableErr) Error() string { return "shard 2 unavailable" }
func (e *unavailableErr) HTTPStatus() (int, string) {
	return http.StatusServiceUnavailable, "shard_unavailable"
}

func newBackendServer(t *testing.T, b Backend) *httptest.Server {
	t.Helper()
	s, err := New(Config{Backend: b, Graph: tg.Toy()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postQuery(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestBackendPartialOnWire: a degraded cluster answer surfaces the
// partial flag in the response document.
func TestBackendPartialOnWire(t *testing.T) {
	ts := newBackendServer(t, &fakeBackend{partial: true, shards: 3})
	resp := postQuery(t, ts.URL, `{"q":1,"k":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var doc queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Partial {
		t.Error("partial flag lost on the wire")
	}
}

// TestBackendRetryAfterPropagation is the satellite's server test: when
// the backend reports shard overload with a Retry-After hint (the max
// across 429ing shards), the server answers 429 carrying exactly that
// hint — not its own DefaultTimeout-derived queue estimate.
func TestBackendRetryAfterPropagation(t *testing.T) {
	b := &fakeBackend{err: &overloadErr{after: 42 * time.Second}}
	s, err := New(Config{Backend: b, Graph: tg.Toy(), DefaultTimeout: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp := postQuery(t, ts.URL, `{"q":1,"k":2}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "42" {
		t.Errorf("Retry-After = %q, want the shard max \"42\" (not the local queue estimate \"3\")", got)
	}
	var e api.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Code != "overloaded" {
		t.Errorf("code = %q", e.Code)
	}
}

// TestBackendShardUnavailableMapsTo503 covers the strict-consistency
// degradation contract.
func TestBackendShardUnavailableMapsTo503(t *testing.T) {
	ts := newBackendServer(t, &fakeBackend{err: &unavailableErr{}})
	resp := postQuery(t, ts.URL, `{"q":1,"k":2}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	var e api.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Code != "shard_unavailable" {
		t.Errorf("code = %q", e.Code)
	}
}

// TestHealthzAndStatszClusterSections: shard count on /healthz, the
// cluster document on /statsz.
func TestHealthzAndStatszClusterSections(t *testing.T) {
	cl := map[string]any{"queries": 1, "shards": []any{map[string]any{"id": 0}}}
	ts := newBackendServer(t, &fakeBackend{shards: 4, cluster: cl})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["shards"] != float64(4) {
		t.Errorf("healthz shards = %v", health["shards"])
	}
	if health["pool_size"] != float64(2) {
		t.Errorf("healthz pool_size = %v", health["pool_size"])
	}

	resp2, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp2.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	doc, ok := snap.Cluster.(map[string]any)
	if !ok {
		t.Fatalf("statsz cluster section = %#v", snap.Cluster)
	}
	if doc["queries"] != float64(1) {
		t.Errorf("cluster section lost data: %v", doc)
	}
}

// TestPoolStatszHasNoClusterSection: single-node servers must not grow a
// cluster section.
func TestPoolStatszHasNoClusterSection(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, false)
	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := json.Marshal(mustDecode(t, resp))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "\"cluster\"") {
		t.Errorf("pool statsz grew a cluster section: %s", raw)
	}
}

func mustDecode(t *testing.T, resp *http.Response) map[string]any {
	t.Helper()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestCachedBackendProbesThroughDecorator: wrapping a cluster-shaped
// backend in the response cache keeps the cluster probes working (they
// walk the Unwrap chain) and adds the cache section to /statsz with
// moving hit counters.
func TestCachedBackendProbesThroughDecorator(t *testing.T) {
	inner := &fakeBackend{shards: 3, cluster: map[string]any{"queries": 7}}
	cached, err := cache.NewBackend(inner, cache.Config{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ts := newBackendServer(t, cached)

	resp := postQuery(t, ts.URL, `{"algorithm":"dynamic","q":1,"k":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first query status %d", resp.StatusCode)
	}
	resp = postQuery(t, ts.URL, `{"algorithm":"dynamic","q":1,"k":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat query status %d", resp.StatusCode)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["shards"] != float64(3) {
		t.Errorf("healthz shards through cache decorator = %v, want 3", health["shards"])
	}

	sresp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(sresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if _, ok := snap.Cluster.(map[string]any); !ok {
		t.Errorf("cluster section lost behind the cache decorator: %#v", snap.Cluster)
	}
	doc, ok := snap.Cache.(map[string]any)
	if !ok {
		t.Fatalf("statsz cache section = %#v", snap.Cache)
	}
	if doc["hits"] != float64(1) || doc["misses"] != float64(1) {
		t.Errorf("cache counters = hits %v misses %v, want 1/1", doc["hits"], doc["misses"])
	}
}
